// Road-network analytics: the Table 1 scenario as an application. Generates
// a road-like grid, compares partition strategies for SSSP (the "play"
// panel's strategy dropdown), and prints a per-superstep trace of the
// fixed-point computation.
//
// Flags: --rows --cols --workers --source

#include <cstdio>
#include <string>

#include "apps/seq/seq_algorithms.h"
#include "apps/sssp.h"
#include "core/engine.h"
#include "graph/generators.h"
#include "partition/fragment.h"
#include "partition/partitioner.h"
#include "partition/quality.h"
#include "util/flags.h"
#include "util/string_util.h"

int main(int argc, char** argv) {
  using namespace grape;
  FlagParser flags;
  if (!flags.Parse(argc, argv).ok()) return 1;
  const auto rows = static_cast<uint32_t>(flags.GetInt("rows", 120));
  const auto cols = static_cast<uint32_t>(flags.GetInt("cols", 120));
  const auto workers = static_cast<FragmentId>(flags.GetInt("workers", 8));
  const auto source = static_cast<VertexId>(flags.GetInt("source", 0));

  auto graph = GenerateGridRoad(rows, cols, /*seed=*/7,
                                /*max_weight=*/10.0,
                                /*shortcut_fraction=*/0.01);
  if (!graph.ok()) {
    std::fprintf(stderr, "%s\n", graph.status().ToString().c_str());
    return 1;
  }
  std::printf("road network: %u intersections, %zu road segments\n",
              graph->num_vertices(), graph->num_edges() / 2);

  std::vector<double> reference = SeqDijkstra(*graph, source);

  std::printf("\n%-10s %10s %10s %12s %8s %10s\n", "Strategy", "Cut%",
              "Time(s)", "Comm", "Steps", "Correct");
  for (const std::string strategy :
       {"hash", "range", "grid2d", "metis", "voronoi"}) {
    auto partitioner = MakePartitioner(strategy);
    auto assignment = (*partitioner)->Partition(*graph, workers);
    PartitionQuality quality =
        EvaluatePartition(*graph, *assignment, workers);
    auto fg = FragmentBuilder::Build(*graph, *assignment, workers);

    GrapeEngine<SsspApp> engine(*fg, SsspApp{});
    auto out = engine.Run(SsspQuery{source});
    if (!out.ok()) {
      std::fprintf(stderr, "%s\n", out.status().ToString().c_str());
      return 1;
    }
    bool correct = out->dist == reference;
    std::printf("%-10s %9.1f%% %10.4f %12s %8u %10s\n", strategy.c_str(),
                quality.cut_fraction * 100.0,
                engine.metrics().total_seconds,
                HumanBytes(engine.metrics().bytes).c_str(),
                engine.metrics().supersteps, correct ? "yes" : "NO");
  }

  // Fine-grained analytics for the best road strategy (Fig. 3(4)).
  auto partitioner = MakePartitioner("grid2d");
  auto assignment = (*partitioner)->Partition(*graph, workers);
  auto fg = FragmentBuilder::Build(*graph, *assignment, workers);
  GrapeEngine<SsspApp> engine(*fg, SsspApp{});
  auto out = engine.Run(SsspQuery{source});
  std::printf("\nfixed-point trace (grid2d):\n%6s %12s %12s\n", "round",
              "messages", "updates");
  for (const RoundMetrics& r : engine.metrics().rounds) {
    std::printf("%6u %12llu %12llu\n", r.round,
                static_cast<unsigned long long>(r.messages),
                static_cast<unsigned long long>(r.updated_params));
  }
  return 0;
}
