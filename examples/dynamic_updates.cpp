// Incremental evaluation across graph updates — the Q(G ⊕ M) form of
// IncEval from the paper's Sec. 2.1. A road network receives batches of
// newly built road segments; after each batch the shortest-path query is
// re-answered with GrapeEngine::RunIncremental, warm-started from the
// previous fixed point, and the per-batch work is compared against
// evaluating from scratch.
//
// Flags: --rows --cols --batches

#include <cstdio>

#include "apps/seq/seq_algorithms.h"
#include "apps/sssp.h"
#include "core/engine.h"
#include "graph/generators.h"
#include "partition/fragment.h"
#include "partition/partitioner.h"
#include "util/flags.h"
#include "util/random.h"

int main(int argc, char** argv) {
  using namespace grape;
  FlagParser flags;
  if (!flags.Parse(argc, argv).ok()) return 1;
  const auto rows = static_cast<uint32_t>(flags.GetInt("rows", 90));
  const auto cols = static_cast<uint32_t>(flags.GetInt("cols", 90));
  const auto batches = static_cast<uint32_t>(flags.GetInt("batches", 5));

  auto graph = GenerateGridRoad(rows, cols, /*seed=*/55);
  if (!graph.ok()) return 1;
  const VertexId n = graph->num_vertices();
  auto partitioner = MakePartitioner("grid2d");

  // Fragment graphs live on the heap because each engine keeps a reference
  // to the one it was built over across loop iterations.
  auto fragmentize = [&](const Graph& g) {
    auto assignment = (*partitioner)->Partition(g, 8);
    auto fg = FragmentBuilder::Build(g, *assignment, 8);
    return std::make_unique<FragmentedGraph>(std::move(fg).value());
  };

  std::vector<Edge> edges = graph->ToEdgeList();
  auto fg = fragmentize(*graph);
  auto engine = std::make_unique<GrapeEngine<SsspApp>>(*fg, SsspApp{});
  auto base = engine->Run(SsspQuery{0});
  if (!base.ok()) return 1;

  uint64_t initial_updates = 0;
  for (const RoundMetrics& r : engine->metrics().rounds) {
    initial_updates += r.updated_params;
  }
  std::printf("initial evaluation: %u supersteps, %llu parameter updates\n",
              engine->metrics().supersteps,
              static_cast<unsigned long long>(initial_updates));
  std::printf("\n%7s %14s %12s %10s %10s\n", "Batch", "NewSegments",
              "ParamUpd", "Steps", "Correct");

  Rng rng(77);
  for (uint32_t batch = 1; batch <= batches; ++batch) {
    // Two random shortcut roads per batch.
    std::vector<VertexId> touched;
    for (int e = 0; e < 2; ++e) {
      auto u = static_cast<VertexId>(rng.NextBounded(n));
      auto v = static_cast<VertexId>(rng.NextBounded(n));
      if (u == v) continue;
      double w = 1.0 + static_cast<double>(rng.NextBounded(3));
      edges.push_back({u, v, w, 0});
      edges.push_back({v, u, w, 0});
      touched.push_back(u);
      touched.push_back(v);
    }
    GraphBuilder builder(true);
    for (const Edge& e : edges) builder.AddEdge(e);
    auto updated = std::move(builder).Build(n);
    if (!updated.ok()) return 1;

    auto fg_new = fragmentize(*updated);
    auto next = std::make_unique<GrapeEngine<SsspApp>>(*fg_new, SsspApp{});
    auto out = next->RunIncremental(SsspQuery{0}, *engine, touched);
    if (!out.ok()) {
      std::fprintf(stderr, "%s\n", out.status().ToString().c_str());
      return 1;
    }
    bool correct = out->dist == SeqDijkstra(*updated, 0);
    uint64_t updates = 0;
    for (const RoundMetrics& r : next->metrics().rounds) {
      updates += r.updated_params;
    }
    std::printf("%7u %14zu %12llu %10u %10s\n", batch, touched.size() / 2,
                static_cast<unsigned long long>(updates),
                next->metrics().supersteps, correct ? "yes" : "NO");
    engine = std::move(next);
    fg = std::move(fg_new);
  }
  std::printf("\nincremental batches touch a vanishing fraction of the %llu "
              "updates the initial run needed\n",
              static_cast<unsigned long long>(initial_updates));
  return 0;
}
