// Social media marketing (the paper's Fig. 4 / Example 2): evaluate the
// GPAR  "Q(x, item) => buy(x, item)"  — if at least 80% of the people x
// follows recommend the item and none of them rates it badly, recommend the
// item to x. Candidates are ranked by confidence, and the same rule is also
// cross-checked through the general SubIso machinery on a small pattern.
//
// Flags: --persons --items --support

#include <cstdio>

#include "apps/gpar.h"
#include "apps/subiso.h"
#include "core/engine.h"
#include "graph/generators.h"
#include "partition/fragment.h"
#include "partition/partitioner.h"
#include "util/flags.h"
#include "util/string_util.h"

int main(int argc, char** argv) {
  using namespace grape;
  FlagParser flags;
  if (!flags.Parse(argc, argv).ok()) return 1;

  SocialGraphOptions opts;
  opts.num_persons = static_cast<VertexId>(flags.GetInt("persons", 20000));
  opts.num_items = static_cast<VertexId>(flags.GetInt("items", 12));
  opts.seed = 99;
  auto graph = GenerateSocialGraph(opts);
  if (!graph.ok()) {
    std::fprintf(stderr, "%s\n", graph.status().ToString().c_str());
    return 1;
  }
  std::printf("social graph: %u persons, %u items, %zu edges\n",
              opts.num_persons, opts.num_items, graph->num_edges());

  auto partitioner = MakePartitioner("hash");
  auto assignment = (*partitioner)->Partition(*graph, 8);
  auto fg = FragmentBuilder::Build(*graph, *assignment, 8);

  GparQuery rule;
  rule.item = opts.num_persons;  // the flagship phone (item 0)
  rule.support = flags.GetDouble("support", 0.8);
  rule.min_followees = 3;

  GrapeEngine<GparApp> engine(*fg, GparApp{});
  auto result = engine.Run(rule);
  if (!result.ok()) {
    std::fprintf(stderr, "%s\n", result.status().ToString().c_str());
    return 1;
  }

  std::printf("\nGPAR: >= %.0f%% of followees recommend item %u, none rates "
              "it badly\n",
              rule.support * 100.0, rule.item);
  std::printf("found %zu potential customers in %.3fs over 8 workers "
              "(%s shipped)\n",
              result->candidates.size(), engine.metrics().total_seconds,
              HumanBytes(engine.metrics().bytes).c_str());
  std::printf("\n%12s %12s %12s %14s\n", "Person", "Confidence", "Followees",
              "Recommending");
  size_t shown = 0;
  for (const GparCandidate& c : result->candidates) {
    std::printf("%12u %12.3f %12u %14u\n", c.person, c.confidence,
                c.followees, c.recommending);
    if (++shown == 10) break;
  }

  // Cross-check with the general pattern matcher: person -> person -> item
  // with "follows" then "recommends" edges (one branch of the rule).
  auto pattern = Pattern::Create(
      {kPersonLabel, kPersonLabel, kItemLabel},
      {{0, 1, kFollowsLabel}, {1, 2, kRecommendsLabel}});
  if (pattern.ok()) {
    GrapeEngine<SubIsoApp> subiso(*fg, SubIsoApp{});
    auto matches = subiso.Run(SubIsoQuery{*pattern, /*max_results=*/50000});
    if (matches.ok()) {
      std::printf("\nSubIso cross-check: %zu follower->followee->item "
                  "paths matched (capped), %u supersteps\n",
                  matches->embeddings.size(), subiso.metrics().supersteps);
    }
  }
  return 0;
}
