// Plug and play (Sec. 3's walk-through): the developer view and the end-user
// view of GRAPE.
//
// Part 1 (plug): a developer writes a brand-new PIE program — here
// single-source *widest path* (maximum bottleneck bandwidth), an algorithm
// not shipped with the library — by supplying sequential PEval/IncEval and
// a max aggregate. No vertex-centric recasting, no messaging code.
//
// Part 2 (play): an end user picks programs from the registry by name and
// runs textual queries against one deployment, like the demo's play panel.

#include <cstdio>
#include <queue>

#include "apps/register_apps.h"
#include "core/aggregators.h"
#include "core/app_registry.h"
#include "core/engine.h"
#include "graph/generators.h"
#include "partition/fragment.h"
#include "partition/partitioner.h"

namespace grape {
namespace {

struct WidestPathQuery {
  VertexId source = 0;
};

struct WidestPathOutput {
  std::vector<double> bandwidth;  // by gid; 0 = unreachable
};

/// PIE program for widest (maximum-bottleneck) paths. The update parameter
/// of v is the best bottleneck bandwidth from the source, monotonically
/// *increasing*, so the aggregate function is max — the mirror image of
/// Example 1's SSSP.
class WidestPathApp {
 public:
  using QueryType = WidestPathQuery;
  using ValueType = double;
  using AggregatorType = MaxAggregator<double>;
  using PartialType = std::vector<std::pair<VertexId, double>>;
  using OutputType = WidestPathOutput;
  static constexpr MessageScope kScope = MessageScope::kToOwner;
  static constexpr bool kResetAfterFlush = false;

  ValueType InitValue() const { return 0.0; }

  void PEval(const QueryType& query, const Fragment& frag,
             ParamStore<double>& params) {
    LocalId lid = frag.Lid(query.source);
    std::priority_queue<std::pair<double, LocalId>> heap;  // max-heap
    if (lid != kInvalidLocal && frag.IsInner(lid)) {
      params.Set(lid, kInfDistance);
      heap.push({kInfDistance, lid});
    }
    Grow(frag, params, heap);
  }

  void IncEval(const QueryType&, const Fragment& frag,
               ParamStore<double>& params,
               const std::vector<LocalId>& updated) {
    std::priority_queue<std::pair<double, LocalId>> heap;
    for (LocalId lid : updated) heap.push({params.Get(lid), lid});
    Grow(frag, params, heap);
  }

  PartialType GetPartial(const QueryType&, const Fragment& frag,
                         const ParamStore<double>& params) const {
    PartialType out;
    for (LocalId lid = 0; lid < frag.num_inner(); ++lid) {
      out.emplace_back(frag.Gid(lid), params.Get(lid));
    }
    return out;
  }

  static OutputType Assemble(const QueryType&,
                             std::vector<PartialType>&& partials) {
    WidestPathOutput out;
    VertexId max_gid = 0;
    for (const auto& p : partials) {
      for (const auto& [gid, b] : p) max_gid = std::max(max_gid, gid);
    }
    out.bandwidth.assign(max_gid + 1, 0.0);
    for (const auto& p : partials) {
      for (const auto& [gid, b] : p) out.bandwidth[gid] = b;
    }
    return out;
  }

  double GlobalValue() const { return 0.0; }
  bool ShouldTerminate(uint32_t, double) const { return false; }

 private:
  static void Grow(const Fragment& frag, ParamStore<double>& params,
                   std::priority_queue<std::pair<double, LocalId>>& heap) {
    while (!heap.empty()) {
      auto [bw, v] = heap.top();
      heap.pop();
      if (bw < params.Get(v)) continue;
      for (const FragNeighbor& nb : frag.OutNeighbors(v)) {
        double nbw = std::min(bw, nb.weight);
        if (nbw > params.Get(nb.local)) {
          params.Set(nb.local, nbw);
          heap.push({nbw, nb.local});
        }
      }
    }
  }
};

}  // namespace
}  // namespace grape

int main() {
  using namespace grape;

  auto graph = GenerateGridRoad(60, 60, /*seed=*/2026, /*max_weight=*/100.0);
  if (!graph.ok()) return 1;
  auto partitioner = MakePartitioner("grid2d");
  auto assignment = (*partitioner)->Partition(*graph, 4);
  auto fg = FragmentBuilder::Build(*graph, *assignment, 4);

  // --- Part 1: plug a new PIE program and run it. ---
  GrapeEngine<WidestPathApp> engine(*fg, WidestPathApp{});
  auto widest = engine.Run(WidestPathQuery{0});
  if (!widest.ok()) return 1;
  double best = 0;
  VertexId far_v = 0;
  for (VertexId v = 1; v < widest->bandwidth.size(); ++v) {
    if (widest->bandwidth[v] > best && widest->bandwidth[v] < kInfDistance) {
      best = widest->bandwidth[v];
      far_v = v;
    }
  }
  std::printf("widest-path (plugged in as a new PIE program):\n");
  std::printf("  best reachable bandwidth %.0f at vertex %u, %u supersteps\n",
              best, far_v, engine.metrics().supersteps);

  // --- Part 2: play registered programs by name. ---
  RegisterBuiltinApps();
  std::printf("\nregistered query classes:");
  for (const std::string& name : AppRegistry::Global().Names()) {
    std::printf(" %s", name.c_str());
  }
  std::printf("\n\nplay panel:\n");
  const struct {
    const char* app;
    std::vector<std::string> args;
  } session[] = {
      {"sssp", {"source=0"}},
      {"bfs", {"source=1"}},
      {"cc", {}},
      {"pagerank", {"iters=15"}},
  };
  for (const auto& q : session) {
    auto app = AppRegistry::Global().Get(q.app);
    if (!app.ok()) continue;
    EngineMetrics metrics;
    auto answer =
        app->run(*fg, ParseQueryArgs(q.args), EngineOptions{}, &metrics);
    std::printf("  %-9s -> %s  [%u supersteps]\n", q.app,
                answer.ok() ? answer->c_str()
                            : answer.status().ToString().c_str(),
                metrics.supersteps);
  }
  return 0;
}
