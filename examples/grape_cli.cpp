// grape_cli — the demo's plug/play console as a command-line tool.
//
//   grape_cli --graph=<kind> [--scale=N|--rows=R --cols=C]
//             [--partitioner=<name>|auto] --workers=N
//             [--load=coordinator|distributed]
//             [--ckpt-every=N] [--ckpt-dir=DIR]
//             [--compute-threads=N]
//             <app> [k=v ...]
//
// Graph kinds: rmat, grid, er, community, labeled, social, ratings, or a
// path to an edge-list file (whitespace "src dst [weight] [label]").
// Apps: any registered query class (sssp, bfs, cc, pagerank, sim, dualsim,
// subiso, keyword, cf, gpar, triangle, kcore). Trailing k=v pairs are the
// query arguments.
//
// --load=distributed rebuilds the graph in place: every worker endpoint
// reads its own byte-range shard of the edge-list file and assembles its
// own fragment while rank 0 orchestrates without materializing the graph.
// Compute is remote by construction, so only the wire-codable apps (sssp,
// bfs, cc, pagerank) qualify. When --graph is a file and the partitioner
// is hash (the distributed default), rank 0 never reads the input at all —
// this is the path that scales past one machine's RAM; generated graphs
// and explicit partitioners still materialize once at rank 0 to write the
// file or compute the assignment.
//
// --ckpt-every=N checkpoints worker state every N supersteps so a killed
// worker endpoint can be respawned and the run replayed bit-identically
// from the last completed checkpoint. Checkpointing needs the workers to
// own the state, so it requires --load=distributed (remote compute).
// Images live in rank 0's memory unless --ckpt-dir=DIR persists one file
// per worker under DIR.
//
// --compute-threads=N runs each fragment's PEval/IncEval with N threads
// for apps that ship a frontier-parallel variant (sssp, cc, pagerank);
// other apps and N<=1 keep the sequential path. Answers, communication
// counters, and superstep counts are bit-identical at any N.
//
// Examples:
//   grape_cli --graph=grid --rows=200 --cols=200 --workers=8 sssp source=0
//   grape_cli --graph=social --scale=15 --workers=4 gpar item=32768
//   grape_cli --graph=labeled --workers=8 sim pattern=path3 l0=1 l1=2 l2=3
//   grape_cli --graph=/data/edges.txt --weighted=true --workers=8
//             --load=distributed --transport=tcp sssp source=0

#include <unistd.h>

#include <cstdio>
#include <string>

#include "apps/register_apps.h"
#include "core/app_registry.h"
#include "core/engine.h"
#include "graph/generators.h"
#include "graph/io.h"
#include "partition/advisor.h"
#include "partition/fragment.h"
#include "partition/partitioner.h"
#include "rt/cluster.h"
#include "rt/distributed_load.h"
#include "rt/transport.h"
#include "partition/quality.h"
#include "util/flags.h"
#include "util/string_util.h"

namespace grape {
namespace {

bool IsGeneratorKind(const std::string& kind) {
  return kind == "rmat" || kind == "grid" || kind == "er" ||
         kind == "community" || kind == "labeled" || kind == "social" ||
         kind == "ratings";
}

Result<Graph> MakeGraph(const FlagParser& flags) {
  const std::string kind = flags.GetString("graph", "rmat");
  const auto scale = static_cast<uint32_t>(flags.GetInt("scale", 13));
  const uint64_t seed = flags.GetInt("seed", 42);
  if (kind == "rmat") {
    RMatOptions opts;
    opts.scale = scale;
    opts.edge_factor =
        static_cast<uint32_t>(flags.GetInt("edge_factor", 12));
    opts.seed = seed;
    return GenerateRMat(opts);
  }
  if (kind == "grid") {
    return GenerateGridRoad(
        static_cast<uint32_t>(flags.GetInt("rows", 200)),
        static_cast<uint32_t>(flags.GetInt("cols", 200)), seed);
  }
  if (kind == "er") {
    VertexId n = 1u << scale;
    return GenerateErdosRenyi(
        n, n * static_cast<size_t>(flags.GetInt("edge_factor", 8)),
        /*directed=*/true, seed);
  }
  if (kind == "community") {
    CommunityGraphOptions opts;
    opts.num_vertices = 1u << scale;
    opts.seed = seed;
    return GenerateCommunityGraph(opts);
  }
  if (kind == "labeled") {
    LabeledGraphOptions opts;
    opts.scale = scale;
    opts.num_vertex_labels =
        static_cast<uint32_t>(flags.GetInt("labels", 8));
    opts.seed = seed;
    return GenerateLabeledGraph(opts);
  }
  if (kind == "social") {
    SocialGraphOptions opts;
    opts.num_persons = 1u << scale;
    opts.seed = seed;
    return GenerateSocialGraph(opts);
  }
  if (kind == "ratings") {
    BipartiteOptions opts;
    opts.num_users = 1u << scale;
    opts.seed = seed;
    return GenerateBipartiteRatings(opts);
  }
  // Otherwise: treat as an edge-list file path.
  EdgeListFormat format;
  format.directed = flags.GetBool("directed", true);
  format.has_weight = flags.GetBool("weighted", false);
  format.has_label = flags.GetBool("edge_labels", false);
  return LoadEdgeListFile(kind, format);
}

/// The --load=distributed path: every worker endpoint reads its own
/// byte-range shard and assembles its own fragment in place; rank 0
/// orchestrates and then runs the pure coordinator role (compute is
/// remote by construction). With a file input and the hash partitioner,
/// rank 0 touches only shard metadata — the graph never exists whole in
/// any single process.
int RunDistributed(const FlagParser& flags, const std::string& app_name,
                   const QueryArgs& args, const ClusterSpec& cluster) {
  auto app = AppRegistry::Global().Get(app_name);
  if (!app.ok()) {
    std::fprintf(stderr, "%s\n", app.status().ToString().c_str());
    return 1;
  }
  if (!app->run_distributed) {
    std::fprintf(stderr,
                 "app '%s' is not wire-codable, so it cannot run on "
                 "distributed-built fragments; pick one of sssp, bfs, cc, "
                 "pagerank — or drop --load=distributed\n",
                 app_name.c_str());
    return 2;
  }
  const auto workers = static_cast<FragmentId>(flags.GetInt("workers", 8));
  // "auto" resolves to hash here: it is the one strategy every worker can
  // derive in place from pure arithmetic, with nothing shipped.
  std::string strategy = flags.GetString("partitioner", "auto");
  if (strategy == "auto") strategy = "hash";

  const std::string kind = flags.GetString("graph", "rmat");
  DistributedLoadOptions dopt;
  std::string temp_path;
  const bool pure = !IsGeneratorKind(kind) && strategy == "hash";
  if (pure) {
    dopt.path = kind;
    dopt.format.directed = flags.GetBool("directed", true);
    dopt.format.has_weight = flags.GetBool("weighted", false);
    dopt.format.has_label = flags.GetBool("edge_labels", false);
    dopt.partitioner = "hash";
    std::printf("graph: %s (sharded; rank 0 reads no edges)\n", kind.c_str());
  } else {
    // A generated graph (or a non-hash partitioner) materializes once at
    // rank 0 — to write the shard file, or to compute the assignment.
    auto graph = MakeGraph(flags);
    if (!graph.ok()) {
      std::fprintf(stderr, "graph: %s\n",
                   graph.status().ToString().c_str());
      return 1;
    }
    if (IsGeneratorKind(kind)) {
      temp_path = "/tmp/grape_cli_" + std::to_string(getpid()) + ".txt";
      if (Status s = SaveEdgeListFile(*graph, temp_path); !s.ok()) {
        std::fprintf(stderr, "save: %s\n", s.ToString().c_str());
        return 1;
      }
      dopt.path = temp_path;
      dopt.format.directed = graph->is_directed();
      dopt.format.has_weight = true;
      dopt.format.has_label = true;
    } else {
      dopt.path = kind;
      dopt.format.directed = flags.GetBool("directed", true);
      dopt.format.has_weight = flags.GetBool("weighted", false);
      dopt.format.has_label = flags.GetBool("edge_labels", false);
    }
    if (strategy == "hash") {
      dopt.partitioner = "hash";
    } else {
      auto partitioner = MakePartitioner(strategy);
      if (!partitioner.ok()) {
        std::fprintf(stderr, "%s\n",
                     partitioner.status().ToString().c_str());
        return 1;
      }
      auto assignment = (*partitioner)->Partition(*graph, workers);
      if (!assignment.ok()) {
        std::fprintf(stderr, "%s\n",
                     assignment.status().ToString().c_str());
        return 1;
      }
      dopt.partitioner = "explicit";
      dopt.assignment = std::move(*assignment);
    }
    GraphProfile profile = ProfileGraph(*graph);
    std::printf("graph: %s\n", profile.ToString().c_str());
  }
  std::printf("partitioner: %s (distributed build)\n", strategy.c_str());

  const std::string transport = flags.GetString("transport", "inproc");
  auto world = MakeClusterTransport(transport, workers + 1, cluster);
  if (!world.ok()) {
    std::fprintf(stderr, "transport: %s\n",
                 world.status().ToString().c_str());
    return 1;
  }
  WallTimer load_timer;
  auto meta = DistributedLoad(world->get(), dopt);
  if (!meta.ok()) {
    std::fprintf(stderr, "distributed load: %s\n",
                 meta.status().ToString().c_str());
    if (!temp_path.empty()) std::remove(temp_path.c_str());
    return 1;
  }
  std::printf(
      "distributed load: %u fragments, %u vertices, %llu edge lines in "
      "%.2fs (shard %.2fs + build %.2fs; coordinator data frames: %llu)\n",
      meta->num_fragments, meta->total_vertices,
      static_cast<unsigned long long>(meta->total_edges),
      load_timer.ElapsedSeconds(), meta->shard_seconds, meta->build_seconds,
      static_cast<unsigned long long>(meta->coordinator_data_frames));

  EngineOptions options;
  options.transport = world->get();
  options.remote_app = app_name;
  options.load_mode = "distributed";
  options.checkpoint.every_k =
      static_cast<uint32_t>(flags.GetInt("ckpt-every", 0));
  options.checkpoint.dir = flags.GetString("ckpt-dir", "");
  options.compute_threads =
      static_cast<uint32_t>(flags.GetInt("compute-threads", 0));
  std::printf("running '%s' (%s) on %u workers over %s (remote compute)...\n",
              app->name.c_str(), app->description.c_str(), workers,
              transport.c_str());
  EngineMetrics metrics;
  auto answer = app->run_distributed(*meta, args, options, &metrics);
  if (!temp_path.empty()) std::remove(temp_path.c_str());
  if (!answer.ok()) {
    std::fprintf(stderr, "%s\n", answer.status().ToString().c_str());
    return 1;
  }
  std::printf("\nanswer : %s\n", answer->c_str());
  std::printf("engine : %s\n", metrics.ToString().c_str());
  if (metrics.rounds.size() > 1) {
    std::printf("rounds :");
    for (const RoundMetrics& r : metrics.rounds) {
      std::printf(" %llu",
                  static_cast<unsigned long long>(r.updated_params));
    }
    std::printf("  (parameter updates per superstep)\n");
  }
  return 0;
}

int Run(int argc, char** argv) {
  FlagParser flags;
  Status parsed = flags.Parse(argc, argv);
  if (!parsed.ok()) {
    std::fprintf(stderr, "%s\n", parsed.ToString().c_str());
    return 2;
  }
  RegisterBuiltinApps();

  auto cluster = ClusterSpec::FromFlags(flags);
  if (!cluster.ok()) {
    std::fprintf(stderr, "cluster: %s\n",
                 cluster.status().ToString().c_str());
    return 2;
  }
  // A non-zero rank is a pure tcp endpoint process: no graph, no app —
  // it joins the mesh at hosts[0] and relays frames until rank 0 is done.
  int endpoint_exit = 0;
  if (RanAsClusterEndpoint(*cluster, flags.GetString("transport", "inproc"),
                           &endpoint_exit)) {
    return endpoint_exit;
  }

  if (flags.positional().empty()) {
    std::fprintf(stderr, "usage: grape_cli --graph=<kind> [--workers=N] "
                         "[--transport=inproc|socket|tcp] "
                         "[--load=coordinator|distributed] "
                         "[--ckpt-every=N --ckpt-dir=DIR] "
                         "[--compute-threads=N] "
                         "[--rank=N --hosts=a:p,b:p,...] "
                         "<app> [k=v ...]\nregistered apps:");
    for (const std::string& name : AppRegistry::Global().Names()) {
      std::fprintf(stderr, " %s", name.c_str());
    }
    std::fprintf(stderr, "\n");
    return 2;
  }
  const std::string app_name = flags.positional()[0];
  QueryArgs args = ParseQueryArgs({flags.positional().begin() + 1,
                                   flags.positional().end()});

  const std::string load = flags.GetString("load", "coordinator");
  if (load != "coordinator" && load != "distributed") {
    std::fprintf(stderr, "--load must be coordinator or distributed\n");
    return 2;
  }
  if (flags.GetInt("ckpt-every", 0) > 0 && load != "distributed") {
    std::fprintf(stderr,
                 "--ckpt-every checkpoints worker state, so the workers "
                 "must own the state: pass --load=distributed\n");
    return 2;
  }
  if (load == "distributed") {
    return RunDistributed(flags, app_name, args, *cluster);
  }

  auto graph = MakeGraph(flags);
  if (!graph.ok()) {
    std::fprintf(stderr, "graph: %s\n", graph.status().ToString().c_str());
    return 1;
  }
  GraphProfile profile = ProfileGraph(*graph);
  std::printf("graph: %s\n", profile.ToString().c_str());

  std::string strategy = flags.GetString("partitioner", "auto");
  if (strategy == "auto") {
    PartitionAdvice advice = AdvisePartitioner(profile);
    strategy = advice.strategy;
    std::printf("partitioner: %s (auto: %s)\n", strategy.c_str(),
                advice.rationale.c_str());
  }
  const auto workers = static_cast<FragmentId>(flags.GetInt("workers", 8));

  auto partitioner = MakePartitioner(strategy);
  if (!partitioner.ok()) {
    std::fprintf(stderr, "%s\n", partitioner.status().ToString().c_str());
    return 1;
  }
  WallTimer prep_timer;
  auto assignment = (*partitioner)->Partition(*graph, workers);
  if (!assignment.ok()) {
    std::fprintf(stderr, "%s\n", assignment.status().ToString().c_str());
    return 1;
  }
  PartitionQuality quality = EvaluatePartition(*graph, *assignment, workers);
  auto fg = FragmentBuilder::Build(*graph, *assignment, workers);
  if (!fg.ok()) {
    std::fprintf(stderr, "%s\n", fg.status().ToString().c_str());
    return 1;
  }
  std::printf("partition: %s in %.2fs\n", quality.ToString().c_str(),
              prep_timer.ElapsedSeconds());

  auto app = AppRegistry::Global().Get(app_name);
  if (!app.ok()) {
    std::fprintf(stderr, "%s\n", app.status().ToString().c_str());
    return 1;
  }
  const std::string transport = flags.GetString("transport", "inproc");
  auto world = MakeClusterTransport(transport, workers + 1, *cluster);
  if (!world.ok()) {
    std::fprintf(stderr, "transport: %s\n",
                 world.status().ToString().c_str());
    return 1;
  }
  EngineOptions options;
  options.transport = world->get();
  options.compute_threads =
      static_cast<uint32_t>(flags.GetInt("compute-threads", 0));

  std::printf("running '%s' (%s) on %u workers over %s...\n",
              app->name.c_str(), app->description.c_str(), workers,
              transport.c_str());
  EngineMetrics metrics;
  auto answer = app->run(*fg, args, options, &metrics);
  if (!answer.ok()) {
    std::fprintf(stderr, "%s\n", answer.status().ToString().c_str());
    return 1;
  }
  std::printf("\nanswer : %s\n", answer->c_str());
  std::printf("engine : %s\n", metrics.ToString().c_str());
  if (metrics.rounds.size() > 1) {
    std::printf("rounds :");
    for (const RoundMetrics& r : metrics.rounds) {
      std::printf(" %llu",
                  static_cast<unsigned long long>(r.updated_params));
    }
    std::printf("  (parameter updates per superstep)\n");
  }
  return 0;
}

}  // namespace
}  // namespace grape

int main(int argc, char** argv) { return grape::Run(argc, argv); }
