// Keyword search over a labelled knowledge-graph-like network (query class
// "Keyword" from the paper's library): find entities within a bounded
// distance of *all* requested keywords, ranked by their worst-case keyword
// distance — and contrast the result with per-keyword reachability.
//
// Flags: --scale --radius --k0 --k1

#include <cstdio>

#include "apps/keyword.h"
#include "apps/seq/seq_algorithms.h"
#include "core/engine.h"
#include "graph/generators.h"
#include "partition/fragment.h"
#include "partition/partitioner.h"
#include "util/flags.h"

int main(int argc, char** argv) {
  using namespace grape;
  FlagParser flags;
  if (!flags.Parse(argc, argv).ok()) return 1;

  LabeledGraphOptions opts;
  opts.scale = static_cast<uint32_t>(flags.GetInt("scale", 12));
  opts.edge_factor = 8;
  opts.num_vertex_labels = 12;
  opts.seed = 321;
  auto graph = GenerateLabeledGraph(opts);
  if (!graph.ok()) {
    std::fprintf(stderr, "%s\n", graph.status().ToString().c_str());
    return 1;
  }

  KeywordQuery query;
  query.keywords = {static_cast<Label>(flags.GetInt("k0", 2)),
                    static_cast<Label>(flags.GetInt("k1", 7))};
  query.radius = flags.GetDouble("radius", 5.0);

  auto partitioner = MakePartitioner("metis");
  auto assignment = (*partitioner)->Partition(*graph, 8);
  auto fg = FragmentBuilder::Build(*graph, *assignment, 8);

  GrapeEngine<KeywordApp> engine(*fg, KeywordApp{});
  auto result = engine.Run(query);
  if (!result.ok()) {
    std::fprintf(stderr, "%s\n", result.status().ToString().c_str());
    return 1;
  }

  size_t label_counts[2] = {0, 0};
  for (VertexId v = 0; v < graph->num_vertices(); ++v) {
    for (int k = 0; k < 2; ++k) {
      if (graph->vertex_label(v) == query.keywords[k]) ++label_counts[k];
    }
  }
  std::printf("graph: %u vertices; keyword %u on %zu vertices, keyword %u "
              "on %zu vertices\n",
              graph->num_vertices(), query.keywords[0], label_counts[0],
              query.keywords[1], label_counts[1]);
  std::printf("query: vertices reachable from BOTH keywords within %.1f\n",
              query.radius);
  std::printf("answers: %zu vertices (%u supersteps)\n",
              result->matches.size(), engine.metrics().supersteps);

  std::printf("\ntop answers (score = worst keyword distance):\n");
  std::printf("%10s %10s", "vertex", "score");
  for (Label k : query.keywords) std::printf("   d(kw %u)", k);
  std::printf("\n");
  size_t shown = 0;
  for (const KeywordMatch& m : result->matches) {
    std::printf("%10u %10.2f", m.vertex, m.score);
    for (double d : m.dist) std::printf(" %9.2f", d);
    std::printf("\n");
    if (++shown == 10) break;
  }
  return 0;
}
