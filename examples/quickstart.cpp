// Quickstart: the complete GRAPE workflow in one file.
//
//   1. Build (or load) a graph.
//   2. Pick a partition strategy and fragment the graph ("play" panel).
//   3. Run a plugged-in PIE program — here SSSP, the paper's Example 1 —
//      and inspect the answer plus the engine's execution metrics.
//
// Build & run:
//   cmake -B build -G Ninja && cmake --build build
//   ./build/quickstart [--transport=inproc|socket|tcp]
//                      [--compute=local|remote]
//                      [--load=coordinator|distributed]
//                      [--ckpt-every=N] [--ckpt-dir=DIR]
//
// --transport picks the message-passing substrate: "inproc" (default)
// keeps every rank in this process; "socket" forks one endpoint process
// per rank and ships the same payloads over local sockets; "tcp" meshes
// endpoint processes over TCP — same answer, same communication
// counters, real process boundaries.
//
// --compute picks where PEval/IncEval execute: "local" (default) runs
// them inline in this (rank-0) process; "remote" serializes each
// fragment to its rank's worker host — the endpoint process on
// socket/tcp, an in-process worker thread on inproc — which computes and
// ships back messages and a final partial. Same answer, same counters,
// real compute placement.
//
// --load picks how the fragments come to exist: "coordinator" (default)
// loads and partitions the whole graph in this process; "distributed"
// writes the graph to an edge-list file and rebuilds it in place — every
// worker reads its own byte-range shard and assembles its own fragment,
// while rank 0 orchestrates without ever materializing the graph
// (requires --compute=remote; the file path must be readable by every
// endpoint, which auto-spawned local worlds always satisfy).
//
// --ckpt-every=N checkpoints worker state every N supersteps so a
// SIGKILLed worker can be respawned and the run replayed bit-identically
// from the last completed checkpoint (requires --compute=remote).
// Checkpoints live in coordinator memory by default; --ckpt-dir=DIR
// writes one file per worker under DIR instead.
//
// --chaos-kill-rank=R demonstrates recovery: SIGKILL rank R's endpoint
// process from the second superstep's boundary, then let the engine
// detect the death, respawn the world, and finish — the printed
// distances must match an unharmed run. The kill fires from inside the
// run because the whole query takes milliseconds: no external kill can
// land mid-superstep reliably (this is what CI's chaos job uses;
// requires --ckpt-every with a forking transport).
//
// Multi-machine tcp (the world here is 4 ranks: 3 workers + P0):
//   machine0$ ./build/quickstart --transport=tcp --rank=0
//                --hosts=machine0:9000,machine1:0,machine2:0,machine3:0
//   machineN$ ./build/quickstart --transport=tcp --rank=N --hosts=...same...
// Rank 0 runs the engine and the rendezvous listener at hosts[0]; every
// other rank is a pure endpoint process that joins, relays frames, and
// exits when rank 0 finishes. Without --hosts, tcp auto-spawns all
// endpoints locally on loopback.

#include <signal.h>
#include <unistd.h>

#include <cstdio>
#include <string>

#include "apps/register_apps.h"
#include "apps/sssp.h"
#include "core/engine.h"
#include "graph/graph.h"
#include "graph/io.h"
#include "partition/fragment.h"
#include "partition/partitioner.h"
#include "rt/cluster.h"
#include "rt/distributed_load.h"
#include "rt/transport.h"
#include "util/flags.h"

int main(int argc, char** argv) {
  using namespace grape;

  FlagParser flags;
  if (Status s = flags.Parse(argc, argv); !s.ok()) {
    std::fprintf(stderr, "flags: %s\n", s.ToString().c_str());
    return 2;
  }
  const std::string transport = flags.GetString("transport", "inproc");
  const std::string compute = flags.GetString("compute", "local");
  if (compute != "local" && compute != "remote") {
    std::fprintf(stderr, "--compute must be local or remote\n");
    return 2;
  }
  const std::string load = flags.GetString("load", "coordinator");
  if (load != "coordinator" && load != "distributed") {
    std::fprintf(stderr, "--load must be coordinator or distributed\n");
    return 2;
  }
  if (load == "distributed" && compute != "remote") {
    std::fprintf(stderr,
                 "--load=distributed leaves rank 0 without fragments, so "
                 "PEval/IncEval must run on the workers: pass "
                 "--compute=remote\n");
    return 2;
  }
  const int64_t compute_threads = flags.GetInt("compute-threads", 0);
  if (compute_threads < 0) {
    std::fprintf(stderr, "--compute-threads must be >= 0\n");
    return 2;
  }
  const int64_t ckpt_every = flags.GetInt("ckpt-every", 0);
  const std::string ckpt_dir = flags.GetString("ckpt-dir", "");
  if (ckpt_every < 0) {
    std::fprintf(stderr, "--ckpt-every must be >= 0\n");
    return 2;
  }
  if (ckpt_every > 0 && compute != "remote") {
    std::fprintf(stderr,
                 "--ckpt-every checkpoints worker state, so the workers "
                 "must own the state: pass --compute=remote\n");
    return 2;
  }
  const int64_t chaos_kill_rank = flags.GetInt("chaos-kill-rank", -1);
  if (chaos_kill_rank >= 0 &&
      (ckpt_every <= 0 || transport == "inproc")) {
    std::fprintf(stderr,
                 "--chaos-kill-rank kills an endpoint process, so it needs "
                 "--ckpt-every=N and a forking transport (socket or tcp)\n");
    return 2;
  }
  auto cluster = ClusterSpec::FromFlags(flags);
  if (!cluster.ok()) {
    std::fprintf(stderr, "cluster: %s\n",
                 cluster.status().ToString().c_str());
    return 2;
  }
  // Worker hosts (endpoint processes, incl. the ones forked at transport
  // creation) resolve PIE programs by name: register before anything can
  // fork or serve. Idempotent and cheap, so done unconditionally.
  RegisterBuiltinWorkerApps();
  // With --rank > 0 this process is a cluster endpoint, not the engine:
  // it serves its rank's place in the tcp mesh until rank 0 finishes —
  // and, under --compute=remote, runs its rank's PEval/IncEval.
  int endpoint_exit = 0;
  if (RanAsClusterEndpoint(*cluster, transport, &endpoint_exit)) {
    return endpoint_exit;
  }

  // A tiny weighted road map: 8 intersections, bidirectional streets.
  GraphBuilder builder(/*directed=*/true);
  const struct {
    VertexId a, b;
    double w;
  } streets[] = {{0, 1, 4}, {0, 2, 1}, {2, 1, 2}, {1, 3, 5}, {2, 3, 8},
                 {3, 4, 3}, {4, 5, 2}, {3, 5, 7}, {5, 6, 1}, {6, 7, 2},
                 {4, 7, 6}};
  for (const auto& s : streets) {
    builder.AddEdge(s.a, s.b, s.w);
    builder.AddEdge(s.b, s.a, s.w);
  }
  auto graph = std::move(builder).Build();
  if (!graph.ok()) {
    std::fprintf(stderr, "build failed: %s\n",
                 graph.status().ToString().c_str());
    return 1;
  }

  // Partition onto 3 workers with the multilevel (METIS-style) strategy.
  auto partitioner = MakePartitioner("metis");
  auto assignment = (*partitioner)->Partition(*graph, 3);

  // The substrate: 3 workers + coordinator P0 = 4 ranks.
  auto world = MakeClusterTransport(transport, 4, *cluster);
  if (!world.ok()) {
    std::fprintf(stderr, "transport: %s\n",
                 world.status().ToString().c_str());
    return 1;
  }
  EngineOptions options;
  options.transport = world->get();
  options.load_mode = load;
  options.compute_threads = static_cast<uint32_t>(compute_threads);
  if (compute == "remote") options.remote_app = "sssp";
  options.checkpoint.every_k = static_cast<uint32_t>(ckpt_every);
  options.checkpoint.dir = ckpt_dir;
  bool chaos_killed = false;
  if (chaos_kill_rank >= 0) {
    Transport* tp = world->get();
    options.on_superstep = [&chaos_killed, tp,
                            chaos_kill_rank](uint32_t superstep) {
      if (chaos_killed || superstep < 2) return;
      auto pids = tp->endpoint_process_ids();
      if (static_cast<size_t>(chaos_kill_rank) < pids.size() &&
          pids[static_cast<size_t>(chaos_kill_rank)] > 0) {
        ::kill(static_cast<pid_t>(pids[static_cast<size_t>(chaos_kill_rank)]),
               SIGKILL);
        chaos_killed = true;
      }
    };
  }

  // "Plug": SsspApp wraps sequential Dijkstra (PEval) and incremental
  // shortest paths (IncEval) with a min aggregate — nothing else.
  // "Play": run the fixed-point computation for a query.
  Result<SsspOutput> result = Status::Internal("query never ran");
  EngineMetrics metrics;
  if (load == "distributed") {
    // Round-trip the street map through an edge-list file so every
    // worker can read its own shard and assemble its own fragment —
    // rank 0 ships only the partition assignment, never the graph.
    const std::string path =
        "/tmp/grape_quickstart_streets_" + std::to_string(getpid()) + ".txt";
    if (Status s = SaveEdgeListFile(*graph, path); !s.ok()) {
      std::fprintf(stderr, "save: %s\n", s.ToString().c_str());
      return 1;
    }
    DistributedLoadOptions dopt;
    dopt.path = path;
    dopt.format.directed = true;
    dopt.format.has_weight = true;
    dopt.format.has_label = true;
    dopt.partitioner = "explicit";
    dopt.assignment = *assignment;
    auto meta = DistributedLoad(world->get(), dopt);
    if (!meta.ok()) {
      std::fprintf(stderr, "distributed load: %s\n",
                   meta.status().ToString().c_str());
      std::remove(path.c_str());
      return 1;
    }
    std::printf(
        "distributed load: %llu edges sharded to 3 workers "
        "(shard %.3fs, build %.3fs, coordinator data frames: %llu)\n\n",
        (unsigned long long)meta->total_edges, meta->shard_seconds,
        meta->build_seconds, (unsigned long long)meta->coordinator_data_frames);
    GrapeEngine<SsspApp> engine(*meta, options);
    result = engine.Run(SsspQuery{0});
    metrics = engine.metrics();
    std::remove(path.c_str());
  } else {
    auto fragments = FragmentBuilder::Build(*graph, *assignment, 3);
    if (!fragments.ok()) {
      std::fprintf(stderr, "fragmentation failed: %s\n",
                   fragments.status().ToString().c_str());
      return 1;
    }
    GrapeEngine<SsspApp> engine(*fragments, SsspApp{}, options);
    result = engine.Run(SsspQuery{0});
    metrics = engine.metrics();
  }
  if (!result.ok()) {
    std::fprintf(stderr, "query failed: %s\n",
                 result.status().ToString().c_str());
    return 1;
  }

  std::printf("shortest distances from intersection 0:\n");
  for (VertexId v = 0; v < result->dist.size(); ++v) {
    std::printf("  0 -> %u : %.1f\n", v, result->dist[v]);
  }
  std::printf("\ntransport: %s, compute: %s, load: %s\n",
              (*world)->name().c_str(), compute.c_str(), load.c_str());
  std::printf("engine: %s\n", metrics.ToString().c_str());
  std::printf("rounds: PEval + %u IncEval supersteps to the fixed point\n",
              metrics.supersteps - 1);
  return 0;
}
