// grape_serve: the resident query-serving daemon. Loads a graph once,
// keeps the fragments resident in the worker endpoints, and answers
// client queries (serve/protocol.h over loopback TCP) until killed —
// the "load once, query forever" complement to the one-shot examples.
//
//   ./build/grape_serve [--transport=inproc|socket|tcp]
//                       [--load=coordinator|distributed]
//                       [--workers=N] [--rows=R] [--cols=C]
//                       [--port=P] [--batch-window-ms=W]
//                       [--selftest] [--verbose]
//
// The demo graph is a rows x cols weighted road grid (large diameter, so
// point queries do real superstep work). --load=coordinator materializes
// it here and ships each fragment to its worker once per epoch;
// --load=distributed round-trips it through an edge-list file that the
// workers shard and assemble themselves — rank 0 never holds the graph.
//
// Queries arriving within --batch-window-ms of each other fuse: compatible
// same-class queries become one multi-source superstep wave (one lane per
// query), and CC/PageRank reads are answered from a per-epoch cache.
// Answers are bit-identical to one-at-a-time execution either way
// (tests/serving_test.cc pins this).
//
// --selftest starts the server, runs a sequential client pass, replays
// the same queries from concurrent clients, then streams a mutation
// batch (insert a shortcut, watch the answers move, delete it, watch the
// original bits come back) — and exits 0 only if every check agrees
// bit-for-bit. This is what CI's serve smoke job runs.
//
// Daemon mode prints "serving on 127.0.0.1:<port>" and blocks until
// SIGINT/SIGTERM. Cluster flags (--rank/--hosts/--cluster-token) work as
// in quickstart: rank > 0 processes serve as transport endpoints.

#include <signal.h>
#include <unistd.h>

#include <atomic>
#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include "apps/register_apps.h"
#include "graph/generators.h"
#include "graph/io.h"
#include "partition/fragment.h"
#include "partition/partitioner.h"
#include "rt/cluster.h"
#include "rt/distributed_load.h"
#include "rt/transport.h"
#include "serve/client.h"
#include "serve/serve.h"
#include "util/flags.h"

namespace {

std::atomic<bool> g_stop{false};

void HandleSignal(int) { g_stop.store(true); }

/// Sequential pass vs concurrent pass over the same mixed query set;
/// returns false (after printing what diverged) unless every answer pair
/// is bit-identical and the cached classes actually hit their cache.
bool RunSelfTest(grape::ServeServer& server, uint32_t num_clients,
                 grape::VertexId num_vertices) {
  using namespace grape;
  const uint16_t port = server.port();
  const std::vector<VertexId> sources = {0, 7, 13, 42, 99, 128};

  // Sequential reference: one client, one query at a time.
  auto ref = ServeClient::Connect(port);
  if (!ref.ok()) {
    std::fprintf(stderr, "selftest connect: %s\n",
                 ref.status().ToString().c_str());
    return false;
  }
  std::vector<std::vector<double>> ref_dist;
  std::vector<std::vector<uint32_t>> ref_depth;
  for (VertexId s : sources) {
    auto d = ref->Sssp(s);
    auto b = ref->Bfs(s);
    if (!d.ok() || !b.ok()) {
      std::fprintf(stderr, "selftest sequential query failed: %s / %s\n",
                   d.status().ToString().c_str(),
                   b.status().ToString().c_str());
      return false;
    }
    ref_dist.push_back(std::move(*d));
    ref_depth.push_back(std::move(*b));
  }
  auto ref_cc = ref->ComponentLabels();
  auto ref_pr = ref->PageRank();
  if (!ref_cc.ok() || !ref_pr.ok()) {
    std::fprintf(stderr, "selftest cc/pagerank failed: %s / %s\n",
                 ref_cc.status().ToString().c_str(),
                 ref_pr.status().ToString().c_str());
    return false;
  }

  // Concurrent replay: every client fires the whole mix at once, so the
  // admission window sees real overlap and fuses waves.
  std::atomic<uint32_t> mismatches{0};
  std::vector<std::thread> threads;
  for (uint32_t c = 0; c < num_clients; ++c) {
    threads.emplace_back([&, c] {
      auto client = ServeClient::Connect(port);
      if (!client.ok()) {
        mismatches.fetch_add(1);
        return;
      }
      for (size_t i = 0; i < sources.size(); ++i) {
        const size_t k = (i + c) % sources.size();  // desynchronize order
        auto d = client->Sssp(sources[k]);
        if (!d.ok() || *d != ref_dist[k]) mismatches.fetch_add(1);
        auto b = client->Bfs(sources[k]);
        if (!b.ok() || *b != ref_depth[k]) mismatches.fetch_add(1);
      }
      auto cc = client->ComponentLabels();
      if (!cc.ok() || *cc != *ref_cc) mismatches.fetch_add(1);
      auto pr = client->PageRank();
      if (!pr.ok() || *pr != *ref_pr) mismatches.fetch_add(1);
    });
  }
  for (auto& t : threads) t.join();

  const ServeStats stats = server.stats();
  std::printf(
      "selftest: %llu queries, %llu waves, %llu fused, %llu cache hits, "
      "%llu errors\n",
      (unsigned long long)stats.queries, (unsigned long long)stats.waves,
      (unsigned long long)stats.fused_queries,
      (unsigned long long)stats.cache_hits, (unsigned long long)stats.errors);
  if (mismatches.load() != 0) {
    std::fprintf(stderr,
                 "selftest FAILED: %u concurrent answers diverged from the "
                 "sequential reference\n",
                 mismatches.load());
    return false;
  }
  if (stats.cache_hits == 0) {
    std::fprintf(stderr,
                 "selftest FAILED: repeated CC/PageRank reads never hit the "
                 "epoch cache\n");
    return false;
  }

  // Mutation smoke: stream a shortcut into the resident graph, watch the
  // answers move, delete it again, watch the original bits come back.
  const VertexId far_corner = num_vertices - 1;
  MutationBatch add;
  add.InsertEdge(0, far_corner, 0.0625);
  add.InsertEdge(far_corner, 0, 0.0625);
  auto v1 = ref->Mutate(add);
  if (!v1.ok()) {
    std::fprintf(stderr, "selftest mutate(insert) failed: %s\n",
                 v1.status().ToString().c_str());
    return false;
  }
  auto warm = ref->Sssp(0);
  if (!warm.ok() || (*warm)[far_corner] != 0.0625) {
    std::fprintf(stderr,
                 "selftest FAILED: inserted shortcut not visible to SSSP\n");
    return false;
  }
  MutationBatch del;
  del.DeleteEdge(0, far_corner);
  del.DeleteEdge(far_corner, 0);
  auto v2 = ref->Mutate(del);
  if (!v2.ok()) {
    std::fprintf(stderr, "selftest mutate(delete) failed: %s\n",
                 v2.status().ToString().c_str());
    return false;
  }
  auto restored = ref->Sssp(0);
  if (!restored.ok() || *restored != ref_dist[0]) {
    std::fprintf(stderr,
                 "selftest FAILED: deleting the shortcut did not restore the "
                 "original distances bit-for-bit\n");
    return false;
  }
  std::printf("selftest: mutation stream ok (version %llu -> %llu)\n",
              (unsigned long long)*v1, (unsigned long long)*v2);

  std::printf("selftest PASSED: concurrent == sequential, bit for bit\n");
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace grape;

  FlagParser flags;
  if (Status s = flags.Parse(argc, argv); !s.ok()) {
    std::fprintf(stderr, "flags: %s\n", s.ToString().c_str());
    return 2;
  }
  const std::string transport = flags.GetString("transport", "inproc");
  const std::string load = flags.GetString("load", "coordinator");
  if (load != "coordinator" && load != "distributed") {
    std::fprintf(stderr, "--load must be coordinator or distributed\n");
    return 2;
  }
  const auto workers = static_cast<FragmentId>(flags.GetInt("workers", 3));
  const auto rows = static_cast<uint32_t>(flags.GetInt("rows", 40));
  const auto cols = static_cast<uint32_t>(flags.GetInt("cols", 40));
  const auto port = static_cast<uint16_t>(flags.GetInt("port", 0));
  const int window_ms = flags.GetInt("batch-window-ms", 2);
  const bool selftest = flags.GetBool("selftest", false);
  const bool verbose = flags.GetBool("verbose", false);

  auto cluster = ClusterSpec::FromFlags(flags);
  if (!cluster.ok()) {
    std::fprintf(stderr, "cluster: %s\n", cluster.status().ToString().c_str());
    return 2;
  }
  RegisterBuiltinWorkerApps();
  int endpoint_exit = 0;
  if (RanAsClusterEndpoint(*cluster, transport, &endpoint_exit)) {
    return endpoint_exit;
  }

  auto world = MakeClusterTransport(transport, workers + 1, *cluster);
  if (!world.ok()) {
    std::fprintf(stderr, "transport: %s\n", world.status().ToString().c_str());
    return 1;
  }

  ServeOptions opts;
  opts.transport = world->get();
  opts.num_fragments = workers;
  opts.batch_window_ms = window_ms;
  opts.listen_port = port;
  opts.verbose = verbose;
  const std::string shard_path =
      "/tmp/grape_serve_grid_" + std::to_string(getpid()) + ".txt";
  if (load == "coordinator") {
    opts.load_coordinator = [=]() -> Result<FragmentedGraph> {
      GRAPE_ASSIGN_OR_RETURN(Graph graph, GenerateGridRoad(rows, cols, 11));
      GRAPE_ASSIGN_OR_RETURN(auto partitioner, MakePartitioner("metis"));
      GRAPE_ASSIGN_OR_RETURN(auto assignment,
                             partitioner->Partition(graph, workers));
      return FragmentBuilder::Build(graph, assignment, workers);
    };
  } else {
    opts.load_distributed =
        [=](Transport* w) -> Result<DistributedGraphMeta> {
      GRAPE_ASSIGN_OR_RETURN(Graph graph, GenerateGridRoad(rows, cols, 11));
      GRAPE_RETURN_NOT_OK(SaveEdgeListFile(graph, shard_path));
      DistributedLoadOptions dopt;
      dopt.path = shard_path;
      dopt.format.directed = true;
      dopt.format.has_weight = true;
      dopt.format.has_label = true;
      return DistributedLoad(w, dopt);
    };
  }

  ServeServer server(opts);
  if (Status s = server.Start(); !s.ok()) {
    std::fprintf(stderr, "serve start: %s\n", s.ToString().c_str());
    std::remove(shard_path.c_str());
    return 1;
  }
  std::printf("serving on 127.0.0.1:%u (%s, %u workers, %s load, epoch %llu)\n",
              server.port(), (*world)->name().c_str(), workers, load.c_str(),
              (unsigned long long)server.epoch());
  std::fflush(stdout);

  int rc = 0;
  if (selftest) {
    rc = RunSelfTest(server, /*num_clients=*/4,
                     static_cast<VertexId>(rows) * cols)
             ? 0
             : 1;
  } else {
    signal(SIGINT, HandleSignal);
    signal(SIGTERM, HandleSignal);
    while (!g_stop.load()) usleep(100 * 1000);
    std::printf("shutting down\n");
  }
  server.Shutdown();
  std::remove(shard_path.c_str());
  return rc;
}
