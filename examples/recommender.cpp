// Collaborative filtering (query class "CF"): train a low-rank matrix
// factorization over a user-item rating graph with distributed SGD, then
// produce top-N item recommendations for a few users — the machine-learning
// workload of the paper's query-class library.
//
// Flags: --users --items --rank --epochs

#include <algorithm>
#include <cstdio>

#include "apps/cf.h"
#include "core/engine.h"
#include "graph/generators.h"
#include "partition/fragment.h"
#include "partition/partitioner.h"
#include "util/flags.h"

int main(int argc, char** argv) {
  using namespace grape;
  FlagParser flags;
  if (!flags.Parse(argc, argv).ok()) return 1;

  BipartiteOptions gopts;
  gopts.num_users = static_cast<VertexId>(flags.GetInt("users", 2000));
  gopts.num_items = static_cast<VertexId>(flags.GetInt("items", 200));
  gopts.ratings_per_user = 20;
  gopts.seed = 777;
  auto graph = GenerateBipartiteRatings(gopts);
  if (!graph.ok()) {
    std::fprintf(stderr, "%s\n", graph.status().ToString().c_str());
    return 1;
  }

  CfQuery query;
  query.rank = static_cast<uint32_t>(flags.GetInt("rank", 8));
  query.epochs = static_cast<uint32_t>(flags.GetInt("epochs", 12));
  query.learning_rate = 0.02;

  auto partitioner = MakePartitioner("hash");
  auto assignment = (*partitioner)->Partition(*graph, 8);
  auto fg = FragmentBuilder::Build(*graph, *assignment, 8);

  GrapeEngine<CfApp> engine(*fg, CfApp{});
  auto model = engine.Run(query);
  if (!model.ok()) {
    std::fprintf(stderr, "%s\n", model.status().ToString().c_str());
    return 1;
  }
  std::printf("trained rank-%u factorization over %u users x %u items "
              "(%u ratings/user)\n",
              query.rank, gopts.num_users, gopts.num_items,
              gopts.ratings_per_user);
  std::printf("train RMSE %.4f after %u epochs (%u supersteps)\n",
              model->train_rmse, query.epochs, engine.metrics().supersteps);

  auto predict = [&](VertexId user, VertexId item) {
    const auto& pu = model->factors[user];
    const auto& qi = model->factors[gopts.num_users + item];
    float dot = 0;
    for (uint32_t t = 0; t < query.rank; ++t) dot += pu[t] * qi[t];
    return dot;
  };
  auto rated = [&](VertexId user, VertexId item) {
    for (const Neighbor& nb : graph->OutNeighbors(user)) {
      if (nb.vertex == gopts.num_users + item) return true;
    }
    return false;
  };

  std::printf("\ntop-5 unseen-item recommendations:\n");
  for (VertexId user : {0u, 1u, 2u}) {
    std::vector<std::pair<float, VertexId>> scored;
    for (VertexId item = 0; item < gopts.num_items; ++item) {
      if (!rated(user, item)) scored.push_back({predict(user, item), item});
    }
    std::partial_sort(scored.begin(),
                      scored.begin() + std::min<size_t>(5, scored.size()),
                      scored.end(), std::greater<>());
    std::printf("  user %u:", user);
    for (size_t i = 0; i < std::min<size_t>(5, scored.size()); ++i) {
      std::printf(" item%u(%.2f)", scored[i].second, scored[i].first);
    }
    std::printf("\n");
  }
  return 0;
}
