#!/usr/bin/env python3
"""Diff two bench-all JSON runs and flag time regressions.

Usage:
    scripts/bench_compare.py BASELINE NEW [--threshold 0.15] [--strict]

BASELINE and NEW are either directories holding BENCH_*.json files (as
emitted by `cmake --build build --target bench-all`) or two individual
JSON files. Both report schemas are understood:

  * the repo's bench_report.h schema:  {"bench": ..., "rows": [...]}
    — each row keyed by (system, category), compared on time_s;
  * google-benchmark's schema:         {"benchmarks": [...]}
    — each entry keyed by name, compared on real_time.

A row regresses when its time grows by more than --threshold (default 15%)
relative to the baseline. The exit code is 0 unless --strict is given and
at least one regression was found: bench numbers are per-machine snapshots,
so CI uses the tool as a warn-only gate against the committed baseline in
bench/baseline/ while local runs comparing two runs from the same machine
can afford --strict.

Absolute-time noise floor: rows faster than --min-seconds (default 1 ms)
in the baseline are reported but never flagged, since at that scale the
variance between two runs of the *same* binary exceeds the threshold.
"""

import argparse
import json
import os
import sys

RESET = "\033[0m"
RED = "\033[31m"
GREEN = "\033[32m"
YELLOW = "\033[33m"


def load_rows(path):
    """Returns {key: seconds} for one report file, any known schema."""
    with open(path) as f:
        doc = json.load(f)
    rows = {}
    if "rows" in doc:
        for row in doc["rows"]:
            key = "{}/{}".format(row.get("system", "?"),
                                 row.get("category", "?"))
            rows[key] = float(row["time_s"])
    elif "benchmarks" in doc:
        for entry in doc["benchmarks"]:
            if entry.get("run_type") == "aggregate":
                continue
            unit = entry.get("time_unit", "ns")
            scale = {"ns": 1e-9, "us": 1e-6, "ms": 1e-3, "s": 1.0}[unit]
            rows[entry["name"]] = float(entry["real_time"]) * scale
    else:
        raise ValueError(f"{path}: unrecognized bench JSON schema")
    return rows


def collect(path):
    """Returns {report_name: {key: seconds}} for a file or directory."""
    if os.path.isdir(path):
        out = {}
        for name in sorted(os.listdir(path)):
            if name.startswith("BENCH_") and name.endswith(".json"):
                out[name] = load_rows(os.path.join(path, name))
        if not out:
            raise ValueError(f"{path}: no BENCH_*.json files found")
        return out
    return {os.path.basename(path): load_rows(path)}


def main():
    parser = argparse.ArgumentParser(
        description="Diff two bench-all JSON runs and flag regressions.")
    parser.add_argument("baseline")
    parser.add_argument("new")
    parser.add_argument("--threshold", type=float, default=0.15,
                        help="relative slowdown that counts as a regression "
                             "(default 0.15 = +15%%)")
    parser.add_argument("--min-seconds", type=float, default=1e-3,
                        help="baseline rows faster than this are never "
                             "flagged (noise floor, default 1ms)")
    parser.add_argument("--strict", action="store_true",
                        help="exit 1 when regressions were found")
    parser.add_argument("--no-color", action="store_true")
    args = parser.parse_args()

    def paint(color, text):
        if args.no_color or not sys.stdout.isatty():
            return text
        return f"{color}{text}{RESET}"

    baseline = collect(args.baseline)
    new = collect(args.new)
    if os.path.isfile(args.baseline) and os.path.isfile(args.new):
        # Two explicit files are always the same report, whatever their
        # basenames; key them identically so they actually get compared.
        baseline = {"(file)": next(iter(baseline.values()))}
        new = {"(file)": next(iter(new.values()))}

    regressions = []
    improvements = 0
    compared = 0
    for report in sorted(set(baseline) & set(new)):
        printed_header = False
        for key in sorted(set(baseline[report]) & set(new[report])):
            old_s, new_s = baseline[report][key], new[report][key]
            if old_s <= 0:
                continue
            compared += 1
            delta = (new_s - old_s) / old_s
            flagged = (delta > args.threshold and old_s >= args.min_seconds)
            noisy = old_s < args.min_seconds
            if flagged:
                regressions.append((report, key, old_s, new_s, delta))
            elif delta < -args.threshold:
                improvements += 1
            if not (flagged or abs(delta) > args.threshold):
                continue  # print only rows that moved
            if not printed_header:
                print(f"\n{report}")
                printed_header = True
            tag = ("REGRESSION" if flagged else
                   "noise?" if (noisy and delta > args.threshold) else
                   "improved")
            color = RED if flagged else YELLOW if tag == "noise?" else GREEN
            print("  {:<55} {:>12.6f}s -> {:>12.6f}s  {:+7.1%}  {}".format(
                key, old_s, new_s, delta, paint(color, tag)))

    missing = sorted(set(baseline) - set(new))
    extra = sorted(set(new) - set(baseline))
    for name in missing:
        print(paint(YELLOW, f"only in baseline: {name}"))
    for name in extra:
        print(paint(YELLOW, f"only in new run:  {name}"))

    print(f"\ncompared {compared} rows across "
          f"{len(set(baseline) & set(new))} reports: "
          f"{len(regressions)} regression(s) beyond "
          f"{args.threshold:.0%}, {improvements} improvement(s)")
    if regressions and args.strict:
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
