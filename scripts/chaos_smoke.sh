#!/usr/bin/env bash
# Chaos smoke: kill worker endpoint processes mid-run and require the
# engine to detect the death, respawn the world, restore every worker
# from the last completed checkpoint, and land on the exact same answer
# a fault-free run produces.
#
#   GRAPE_BIN_DIR=build scripts/chaos_smoke.sh
#
# Two phases:
#
# 1. Deterministic differential — quickstart's 4-process tcp world (and
#    socket) with --chaos-kill-rank: the run SIGKILLs a worker endpoint
#    from a superstep boundary (the whole query takes milliseconds, so
#    only an in-process kill lands mid-superstep reliably), recovers,
#    and every printed distance must be identical to an unharmed run.
#
# 2. External SIGKILL — a grape_cli SSSP sized to run for a few seconds
#    on a tcp world, with this script delivering a real `kill -9` to a
#    forked endpoint found via pgrep -P (scoped to OUR children — never
#    pkill by name). The kill can race the run's tail, so this phase
#    retries; each success demands a clean exit, at least one recovery,
#    and an answer + comm counters identical to the fault-free golden.
#
# Writes the total observed recovery count to $CHAOS_RECOVERIES_FILE
# (default: inside this run's scratch dir, removed on exit) so CI can
# point it somewhere durable and archive it — never into the source tree.
set -uo pipefail

cd "$(dirname "$0")/.."
BIN_DIR="${GRAPE_BIN_DIR:-build}"
for bin in quickstart grape_cli; do
  if [[ ! -x "$BIN_DIR/$bin" ]]; then
    echo "error: $BIN_DIR/$bin not found; build first" >&2
    exit 1
  fi
done
WORK_DIR="$(mktemp -d /tmp/grape_chaos_XXXXXX)"
trap 'rm -rf "$WORK_DIR"' EXIT
RECOVERIES_FILE="${CHAOS_RECOVERIES_FILE:-$WORK_DIR/chaos_recoveries.txt}"
total_recoveries=0

recoveries_in() {
  local n
  n=$(grep -o 'recoveries=[0-9]*' "$1" | head -1 | cut -d= -f2)
  echo "${n:-0}"
}

echo "== phase 1: quickstart chaos differential =="
for backend in socket tcp; do
  "$BIN_DIR/quickstart" --transport=$backend --compute=remote \
    --ckpt-every=1 > "$WORK_DIR/qs_golden.out" 2>&1 || {
      echo "FAIL: fault-free quickstart ($backend) failed" >&2
      cat "$WORK_DIR/qs_golden.out" >&2
      exit 1
    }
  if ! "$BIN_DIR/quickstart" --transport=$backend --compute=remote \
      --ckpt-every=1 --chaos-kill-rank=2 > "$WORK_DIR/qs_chaos.out" 2>&1
  then
    echo "FAIL: quickstart ($backend) did not survive the worker kill" >&2
    cat "$WORK_DIR/qs_chaos.out" >&2
    exit 1
  fi
  rec=$(recoveries_in "$WORK_DIR/qs_chaos.out")
  if [[ "$rec" -lt 1 ]]; then
    echo "FAIL: quickstart ($backend) reported no recovery" >&2
    cat "$WORK_DIR/qs_chaos.out" >&2
    exit 1
  fi
  if ! diff <(grep ' -> ' "$WORK_DIR/qs_golden.out") \
            <(grep ' -> ' "$WORK_DIR/qs_chaos.out"); then
    echo "FAIL: quickstart ($backend) distances diverged after recovery" >&2
    exit 1
  fi
  total_recoveries=$((total_recoveries + rec))
  echo "quickstart $backend OK: rank-2 endpoint killed, recovered" \
       "(${rec}x), distances identical"
done

echo "== phase 2: external SIGKILL on a live tcp run =="
ARGS=(--graph=grid --rows=200 --cols=200 --workers=3 --transport=tcp
      --load=distributed --ckpt-every=5 sssp source=0)
KILL_AFTER_SECONDS="${GRAPE_CHAOS_KILL_AFTER:-2}"
ATTEMPTS="${GRAPE_CHAOS_ATTEMPTS:-3}"

if ! "$BIN_DIR/grape_cli" "${ARGS[@]}" > "$WORK_DIR/golden.out" 2>&1; then
  echo "FAIL: fault-free grape_cli run failed:" >&2
  cat "$WORK_DIR/golden.out" >&2
  exit 1
fi
grep '^answer' "$WORK_DIR/golden.out"
# The bit-identity gate: answer plus the msgs/bytes/supersteps counters
# (times stripped — wall clock is the one thing recovery may change).
signature() {
  { grep '^answer' "$1"
    grep -o 'supersteps=[0-9]*' "$1" | head -1
    grep -o 'msgs=[0-9]* bytes=[0-9]*' "$1"; } > "$1.sig"
  echo "$1.sig"
}

ok=0
for attempt in $(seq 1 "$ATTEMPTS"); do
  echo "-- chaos attempt $attempt/$ATTEMPTS"
  "$BIN_DIR/grape_cli" "${ARGS[@]}" > "$WORK_DIR/chaos.out" 2>&1 &
  pid=$!
  victim=""
  for _ in $(seq 1 100); do
    victim=$(pgrep -P "$pid" | head -1 || true)
    [[ -n "$victim" ]] && break
    kill -0 "$pid" 2>/dev/null || break
    sleep 0.1
  done
  sleep "$KILL_AFTER_SECONDS"
  if [[ -n "$victim" ]] && kill -KILL "$victim" 2>/dev/null; then
    echo "killed endpoint pid $victim"
  else
    echo "no endpoint left to kill (run already finished?)"
  fi
  rc=0
  wait "$pid" || rc=$?
  rec=$(recoveries_in "$WORK_DIR/chaos.out")
  echo "exit=$rc recoveries=$rec"
  if [[ "$rc" -eq 0 && "$rec" -ge 1 ]]; then
    if ! diff "$(signature "$WORK_DIR/golden.out")" \
              "$(signature "$WORK_DIR/chaos.out")"; then
      echo "FAIL: recovered run diverged from the fault-free golden" >&2
      exit 1
    fi
    grep '^engine' "$WORK_DIR/chaos.out"
    total_recoveries=$((total_recoveries + rec))
    ok=1
    break
  fi
  echo "attempt inconclusive (kill raced the run); retrying"
  tail -3 "$WORK_DIR/chaos.out"
done
if [[ "$ok" -ne 1 ]]; then
  echo "FAIL: no external-kill attempt produced a clean recovered run" >&2
  cat "$WORK_DIR/chaos.out" >&2
  exit 1
fi

echo "$total_recoveries" > "$RECOVERIES_FILE"
echo "chaos smoke OK: $total_recoveries recoveries across both phases," \
     "all answers identical to fault-free goldens"
