#!/usr/bin/env bash
# Runs every bench on small default inputs and drops BENCH_<name>.json at
# the repo root, seeding the perf trajectory. Invoked by the `bench-all`
# CMake target (which exports GRAPE_BENCH_BIN_DIR), or directly:
#
#   GRAPE_BENCH_BIN_DIR=build scripts/bench_all.sh [--full]
#
# Default (smoke) inputs are deliberately small so the whole suite finishes
# in a couple of minutes; absolute numbers only need to be comparable
# across commits on the same machine, the paper-shape checks inside each
# bench do the rest. `--full` switches to paper-shaped sizes (minutes, not
# seconds) for machines where the real curves are wanted; full runs write
# BENCH_full_<name>.json so they never clobber the smoke trajectory.
set -euo pipefail

cd "$(dirname "$0")/.."
BIN_DIR="${GRAPE_BENCH_BIN_DIR:-build}"

PROFILE=smoke
for arg in "$@"; do
  case "$arg" in
    --full) PROFILE=full ;;
    *)
      echo "usage: scripts/bench_all.sh [--full]" >&2
      exit 2
      ;;
  esac
done

if [[ ! -x "${BIN_DIR}/bench_table1_sssp" ]]; then
  echo "error: ${BIN_DIR}/bench_table1_sssp not found." >&2
  echo "Build first: cmake -B build -S . && cmake --build build -j" >&2
  exit 1
fi

PREFIX=BENCH_
[[ "$PROFILE" == full ]] && PREFIX=BENCH_full_

run() {
  local name="$1"
  shift
  echo "--- bench_${name} -> ${PREFIX}${name}.json"
  "${BIN_DIR}/bench_${name}" "$@" --json "${PREFIX}${name}.json"
}

if [[ "$PROFILE" == full ]]; then
  # Paper-shaped sizes: table1 at its --full defaults (512x512 grid) with
  # remote compute so the load-phase rows time real endpoint processes.
  run table1_sssp --full --compute remote
  run fixed_point --rows 256 --cols 256 --scale 16 --workers 4
  run partition_impact --scale 16 --workers 8
  run scalability --rows 512 --cols 512 --scale 16 --max_workers 8
  run query_classes --scale 14 --workers 4
  run inceval_bounded --workers 8
  run gpar --persons 200000 --max_workers 8
  run serving --workers 4 --scale 14 --clients 16 --queries 32
else
  run table1_sssp --rows 96 --cols 96 --workers 4
  run fixed_point --rows 80 --cols 80 --scale 12 --workers 4
  run partition_impact --scale 13 --workers 8
  run scalability --rows 160 --cols 160 --scale 13 --max_workers 4
  run query_classes --scale 11 --workers 4
  run inceval_bounded --workers 4
  run gpar --persons 40000 --max_workers 4
  run serving --workers 3 --scale 11 --clients 6 --queries 12
fi

if [[ -x "${BIN_DIR}/bench_micro" ]]; then
  echo "--- bench_micro -> ${PREFIX}micro.json (google-benchmark schema)"
  "${BIN_DIR}/bench_micro" --benchmark_min_time=0.05 \
    --json "${PREFIX}micro.json"
else
  echo "--- bench_micro not built (google-benchmark missing); skipping"
fi

echo
echo "wrote:"
ls -l "${PREFIX}"*.json
