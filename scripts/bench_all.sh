#!/usr/bin/env bash
# Runs every bench on small default inputs and drops BENCH_<name>.json at
# the repo root, seeding the perf trajectory. Invoked by the `bench-all`
# CMake target (which exports GRAPE_BENCH_BIN_DIR), or directly:
#
#   GRAPE_BENCH_BIN_DIR=build scripts/bench_all.sh
#
# Inputs are deliberately small so the whole suite finishes in a couple of
# minutes; absolute numbers only need to be comparable across commits on
# the same machine, the paper-shape checks inside each bench do the rest.
set -euo pipefail

cd "$(dirname "$0")/.."
BIN_DIR="${GRAPE_BENCH_BIN_DIR:-build}"

if [[ ! -x "${BIN_DIR}/bench_table1_sssp" ]]; then
  echo "error: ${BIN_DIR}/bench_table1_sssp not found." >&2
  echo "Build first: cmake -B build -S . && cmake --build build -j" >&2
  exit 1
fi

run() {
  local name="$1"
  shift
  echo "--- bench_${name} -> BENCH_${name}.json"
  "${BIN_DIR}/bench_${name}" "$@" --json "BENCH_${name}.json"
}

run table1_sssp --rows 96 --cols 96 --workers 4
run fixed_point --rows 80 --cols 80 --scale 12 --workers 4
run partition_impact --scale 13 --workers 8
run scalability --rows 160 --cols 160 --scale 13 --max_workers 4
run query_classes --scale 11 --workers 4
run inceval_bounded --workers 4
run gpar --persons 40000 --max_workers 4

if [[ -x "${BIN_DIR}/bench_micro" ]]; then
  echo "--- bench_micro -> BENCH_micro.json (google-benchmark schema)"
  "${BIN_DIR}/bench_micro" --benchmark_min_time=0.05 \
    --json BENCH_micro.json
else
  echo "--- bench_micro not built (google-benchmark missing); skipping"
fi

echo
echo "wrote:"
ls -l BENCH_*.json
