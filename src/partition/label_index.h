#ifndef GRAPE_PARTITION_LABEL_INDEX_H_
#define GRAPE_PARTITION_LABEL_INDEX_H_

#include <span>
#include <unordered_map>
#include <vector>

#include "partition/fragment.h"

namespace grape {

/// The Index Manager role of Fig. 2: per-fragment indices that sequential
/// algorithms can exploit unchanged — the paper's point that GRAPE inherits
/// graph-level optimizations (indexing) that vertex-centric models cannot
/// express. LabelIndex maps a vertex label to the fragment's inner vertices
/// carrying it, turning the O(|F|) candidate scans of pattern matchers into
/// O(|candidates|) lookups.
class LabelIndex {
 public:
  LabelIndex() = default;

  /// Builds the index over the fragment's inner vertices.
  explicit LabelIndex(const Fragment& frag) {
    for (LocalId lid = 0; lid < frag.num_inner(); ++lid) {
      by_label_[frag.vertex_label(lid)].push_back(lid);
    }
  }

  /// Inner vertices labelled `label` (ascending local id); empty if none.
  std::span<const LocalId> InnerWithLabel(Label label) const {
    auto it = by_label_.find(label);
    if (it == by_label_.end()) return {};
    return it->second;
  }

  size_t num_labels() const { return by_label_.size(); }

 private:
  std::unordered_map<Label, std::vector<LocalId>> by_label_;
};

}  // namespace grape

#endif  // GRAPE_PARTITION_LABEL_INDEX_H_
