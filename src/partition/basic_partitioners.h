#ifndef GRAPE_PARTITION_BASIC_PARTITIONERS_H_
#define GRAPE_PARTITION_BASIC_PARTITIONERS_H_

#include <string>
#include <vector>

#include "partition/partitioner.h"

namespace grape {

/// 1-D hash partitioning: fragment = SplitMix64(gid) mod n. The default of
/// most vertex-centric systems; balanced but oblivious to locality.
class HashPartitioner : public Partitioner {
 public:
  Result<std::vector<FragmentId>> Partition(
      const Graph& graph, FragmentId num_fragments) const override;
  std::string name() const override { return "hash"; }
};

/// 1-D contiguous range partitioning over vertex ids, optionally balanced by
/// degree mass instead of vertex count. Preserves id locality (good when ids
/// encode geometry, e.g. road networks with row-major ids).
class RangePartitioner : public Partitioner {
 public:
  explicit RangePartitioner(bool balance_by_degree = true)
      : balance_by_degree_(balance_by_degree) {}

  Result<std::vector<FragmentId>> Partition(
      const Graph& graph, FragmentId num_fragments) const override;
  std::string name() const override { return "range"; }

 private:
  bool balance_by_degree_;
};

/// 2-D spatial partitioning: interprets vertex ids as row-major coordinates
/// of a sqrt(|V|) x sqrt(|V|) square and tiles it with an rp x cp fragment
/// grid (rp * cp = n). The "2D" strategy of the paper's Partition Manager;
/// near-optimal for lattice-like road networks.
class Grid2DPartitioner : public Partitioner {
 public:
  Result<std::vector<FragmentId>> Partition(
      const Graph& graph, FragmentId num_fragments) const override;
  std::string name() const override { return "grid2d"; }
};

}  // namespace grape

#endif  // GRAPE_PARTITION_BASIC_PARTITIONERS_H_
