#ifndef GRAPE_PARTITION_FRAGMENT_H_
#define GRAPE_PARTITION_FRAGMENT_H_

#include <memory>
#include <span>
#include <vector>

#include "graph/graph.h"
#include "graph/id_indexer.h"
#include "graph/mutation.h"
#include "graph/types.h"
#include "util/result.h"
#include "util/serializer.h"

namespace grape {

/// Adjacency entry inside a fragment; `local` indexes the fragment's local
/// vertex space (inner vertices first, then outer/mirror vertices).
struct FragNeighbor {
  LocalId local;
  EdgeWeight weight;
  Label label;
};

/// An edge-cut fragment F_i of a graph G (Sec. 2.2): the subgraph induced by
/// the inner vertices owned by worker P_i, together with read-only "outer"
/// copies (mirrors) of foreign endpoints of cut edges. Update parameters
/// attach to border and outer vertices; see core/param_store.h.
///
/// Local id layout: [0, num_inner) are inner vertices, [num_inner,
/// num_local) are outer vertices. Apps run *sequential* algorithms over this
/// local id space exactly as they would over a standalone graph.
class Fragment {
 public:
  Fragment() = default;

  Fragment(const Fragment&) = delete;
  Fragment& operator=(const Fragment&) = delete;
  Fragment(Fragment&&) = default;
  Fragment& operator=(Fragment&&) = default;

  FragmentId fid() const { return fid_; }
  FragmentId num_fragments() const { return num_fragments_; }
  VertexId total_num_vertices() const { return total_vertices_; }
  bool is_directed() const { return directed_; }

  LocalId num_inner() const { return num_inner_; }
  LocalId num_outer() const {
    return static_cast<LocalId>(gids_.size()) - num_inner_;
  }
  LocalId num_local() const { return static_cast<LocalId>(gids_.size()); }
  size_t num_edges() const { return out_neighbors_.size(); }

  bool IsInner(LocalId lid) const { return lid < num_inner_; }
  bool IsOuter(LocalId lid) const {
    return lid >= num_inner_ && lid < num_local();
  }

  VertexId Gid(LocalId lid) const { return gids_[lid]; }
  /// Local id of a global vertex, or kInvalidLocal if this fragment has
  /// neither an inner nor an outer copy of it.
  LocalId Lid(VertexId gid) const { return indexer_.Find(gid); }
  bool HasVertex(VertexId gid) const { return indexer_.Contains(gid); }

  /// Out-edges of a local vertex. Inner vertices carry their full global
  /// out-adjacency; outer vertices carry only their edges *into this
  /// fragment's inner set* (enough for pull-style and reverse navigation —
  /// their remaining edges live in the owner fragment).
  std::span<const FragNeighbor> OutNeighbors(LocalId lid) const {
    return {out_neighbors_.data() + out_offsets_[lid],
            out_offsets_[lid + 1] - out_offsets_[lid]};
  }
  /// In-edges. Inner vertices carry their full global in-adjacency (sources
  /// may be outer); outer vertices carry only in-edges from this fragment's
  /// inner set. For undirected fragments this aliases OutNeighbors.
  std::span<const FragNeighbor> InNeighbors(LocalId lid) const {
    if (!directed_) return OutNeighbors(lid);
    return {in_neighbors_.data() + in_offsets_[lid],
            in_offsets_[lid + 1] - in_offsets_[lid]};
  }

  size_t OutDegree(LocalId lid) const {
    return out_offsets_[lid + 1] - out_offsets_[lid];
  }
  size_t InDegree(LocalId lid) const {
    if (!directed_) return OutDegree(lid);
    return in_offsets_[lid + 1] - in_offsets_[lid];
  }

  Label vertex_label(LocalId lid) const {
    return labels_.empty() ? 0 : labels_[lid];
  }

  /// True for inner vertices incident to at least one cut edge — the
  /// paper's "border nodes" of F_i.
  bool IsBorder(LocalId lid) const {
    return IsInner(lid) && border_[lid] != 0;
  }
  /// Count of inner border vertices.
  LocalId num_border() const { return num_border_; }

  /// Fragments holding an outer copy of inner vertex `lid` (targets of
  /// owner-to-mirror messages).
  std::span<const FragmentId> MirrorFragments(LocalId lid) const {
    return {mirror_frags_.data() + mirror_offsets_[lid],
            mirror_offsets_[lid + 1] - mirror_offsets_[lid]};
  }

  /// Destination-local ids paired with MirrorFragments(lid): entry k is the
  /// local id of this vertex *inside* fragment MirrorFragments(lid)[k].
  /// Precomputed at build time so owner-to-mirror flushes never hash a gid.
  std::span<const LocalId> MirrorDstLids(LocalId lid) const {
    return {mirror_dst_lids_.data() + mirror_offsets_[lid],
            mirror_offsets_[lid + 1] - mirror_offsets_[lid]};
  }

  /// Owner fragment of an arbitrary global vertex (shared routing table).
  FragmentId OwnerOf(VertexId gid) const { return (*owner_)[gid]; }

  /// Local id of `gid` inside its *owner* fragment (shared routing table,
  /// one entry per global vertex). This is the dst_lid of every owner-bound
  /// message, so the receiving fragment indexes its parameter store
  /// directly instead of hashing the gid back to a local id.
  LocalId LidAtOwner(VertexId gid) const { return (*owner_lid_)[gid]; }

  /// Owner-route of an *outer* local vertex: destination fragment and the
  /// vertex's local id there. Dense per-outer arrays (no gid involved).
  FragmentId OuterOwner(LocalId lid) const {
    return outer_owner_frag_[lid - num_inner_];
  }
  LocalId OuterOwnerLid(LocalId lid) const {
    return outer_owner_lid_[lid - num_inner_];
  }

  const std::vector<VertexId>& gids() const { return gids_; }

  /// Serializes the complete fragment — topology, labels, border set, AND
  /// the precomputed routing plan (mirror destinations, outer owner
  /// routes, the shared owner/owner_lid tables) — so a remote worker host
  /// can run PEval/IncEval and flush messages without ever seeing the
  /// global graph. The gid→lid indexer is rebuilt on decode rather than
  /// shipped. Wire format is versioned; DecodeFrom validates every
  /// structural invariant (offset monotonicity, id ranges, table sizes)
  /// and rejects corrupt buffers with a Corruption status before touching
  /// `out` — a failed decode never leaves a half-written fragment
  /// (tests/fragment_codec_test.cc).
  void EncodeTo(Encoder& enc) const;
  static Status DecodeFrom(Decoder& dec, Fragment* out);

 private:
  friend class FragmentBuilder;

  FragmentId fid_ = 0;
  FragmentId num_fragments_ = 1;
  VertexId total_vertices_ = 0;
  bool directed_ = true;
  LocalId num_inner_ = 0;
  LocalId num_border_ = 0;

  std::vector<VertexId> gids_;  // local -> global
  IdIndexer indexer_;           // global -> local

  std::vector<size_t> out_offsets_;
  std::vector<FragNeighbor> out_neighbors_;
  std::vector<size_t> in_offsets_;
  std::vector<FragNeighbor> in_neighbors_;

  std::vector<Label> labels_;
  std::vector<uint8_t> border_;          // by inner lid
  std::vector<size_t> mirror_offsets_;   // by inner lid
  std::vector<FragmentId> mirror_frags_;
  std::vector<LocalId> mirror_dst_lids_;  // parallel to mirror_frags_

  // Owner routes of outer vertices, indexed by (lid - num_inner_).
  std::vector<FragmentId> outer_owner_frag_;
  std::vector<LocalId> outer_owner_lid_;

  /// Shared (immutable) owner table, one entry per global vertex.
  std::shared_ptr<const std::vector<FragmentId>> owner_;
  /// Shared (immutable) gid -> local id at the owner fragment.
  std::shared_ptr<const std::vector<LocalId>> owner_lid_;
};

/// A fragmented graph: all fragments plus the global routing tables the
/// coordinator uses.
struct FragmentedGraph {
  std::vector<Fragment> fragments;
  /// owner[gid] = fragment owning gid.
  std::shared_ptr<const std::vector<FragmentId>> owner;
  /// owner_lid[gid] = local id of gid inside fragments[owner[gid]]. The
  /// second half of the dense routing plan: (owner, owner_lid) addresses
  /// any global vertex's authoritative parameter slot without hashing.
  std::shared_ptr<const std::vector<LocalId>> owner_lid;
  bool directed = true;
  VertexId total_vertices = 0;

  FragmentId num_fragments() const {
    return static_cast<FragmentId>(fragments.size());
  }
};

/// One mirror-placement answer: global vertex `gid` sits at local id `lid`
/// inside the answering fragment's outer block. Owners collect these from
/// every peer that mirrors one of their inner vertices to finish the
/// owner-to-mirror routing plan (mirror_dst_lids).
struct MirrorLidEntry {
  VertexId gid;
  LocalId lid;
};

/// Splits `graph` into `num_fragments` edge-cut fragments according to
/// `assignment` (as produced by a Partitioner).
///
/// Build() is composed of two halves that are also the local steps of the
/// distributed build protocol (rt/distributed_load.h):
///
///   1. AssembleLocal — builds one fragment complete except the
///      mirror_dst_lids routing column, from any graph view that contains
///      at least every edge incident to the fragment's inner vertices with
///      per-row adjacency order equal to the full graph's. On a worker
///      endpoint that view is the mini-graph assembled from exchanged
///      shard edges; on the coordinator it is the whole graph.
///   2. MirrorAnswers / ResolveMirrorDstLids — the routing-plan exchange:
///      each fragment answers, per owner, where it placed its outer copies;
///      owners fill mirror_dst_lids from those answers.
///
/// Because Build() itself runs on these halves, the legacy coordinator path
/// and the distributed path produce bit-identical fragments by
/// construction.
class FragmentBuilder {
 public:
  static Result<FragmentedGraph> Build(
      const Graph& graph, const std::vector<FragmentId>& assignment,
      FragmentId num_fragments);

  /// Derives the shared owner_lid routing table (gid -> local id at its
  /// owner; inner ids ascend with gid within each fragment) from an owner
  /// table alone. Both the coordinator and every worker compute this with
  /// one O(total vertices) pass — it is never shipped.
  static std::vector<LocalId> OwnerLidTable(
      const std::vector<FragmentId>& owner, FragmentId num_fragments);

  /// Local-assembly half: fragment `fid`, complete except mirror_dst_lids
  /// (left kInvalidLocal until resolved). `graph` must contain every edge
  /// incident to fid's inner vertices, in whole-graph adjacency order;
  /// extra edges between foreign vertices are ignored. `owner` and
  /// `owner_lid` must be sized graph.num_vertices().
  static Result<Fragment> AssembleLocal(
      const Graph& graph,
      std::shared_ptr<const std::vector<FragmentId>> owner,
      std::shared_ptr<const std::vector<LocalId>> owner_lid, FragmentId fid,
      FragmentId num_fragments);

  /// Exchange half, outbound: for each peer fragment, the (gid, local id
  /// here) of this fragment's outer vertices owned by that peer. Entry
  /// [frag.fid()] is always empty (a fragment never mirrors its own
  /// vertices).
  static std::vector<std::vector<MirrorLidEntry>> MirrorAnswers(
      const Fragment& frag);

  /// Exchange half, inbound: fills frag's mirror_dst_lids from the answers
  /// of peer `from`, i.e. MirrorAnswers(peer)[frag.fid()]. Corruption if an
  /// answer names a vertex this fragment does not own or does not mirror
  /// into `from`.
  static Status ApplyMirrorAnswers(Fragment* frag, FragmentId from,
                                   const std::vector<MirrorLidEntry>& answers);

  /// Validates that every mirror destination was resolved (call after all
  /// peers' answers were applied).
  static Status CheckMirrorsResolved(const Fragment& frag);

  // -- Streaming mutation path (G ⊕ M over fragments) -----------------------
  //
  // Mirrors the build protocol's two halves: MutateFragment is the local
  // half (rebuild one fragment from its mutated incident edge set, routing
  // plan complete except mirror_dst_lids), and the mirror-answer exchange
  // finishes the plan. MutateFragmentedGraph runs both in-process — the
  // worker-protocol path (kTagWkMutate / kTagWkMutMirror) runs the same
  // halves across endpoints, so the two placements produce bit-identical
  // fragments by construction.

  /// Reconstructs, in gid space, every edge incident to `frag`'s inner
  /// vertices — exactly the view AssembleLocal needs to rebuild it.
  /// Undirected inner-inner edges are emitted once (lower-gid endpoint
  /// first, matching Graph::ToEdgeList).
  static std::vector<Edge> MaterializeIncidentEdges(const Fragment& frag);

  /// Local mutation half: applies `batch` to frag's incident edge view and
  /// reassembles the fragment against the unchanged shared owner tables
  /// (the vertex set is fixed; only topology moves). Inserted edges not
  /// incident to this fragment are ignored; deletions apply to whatever is
  /// present. The result's mirror_dst_lids are unresolved
  /// (kInvalidLocal) until the peer exchange. A vertex that first becomes
  /// outer through `batch` gets label 0 here — the owner knows the true
  /// label but no engine app reads labels, so answers cannot diverge.
  static Result<Fragment> MutateFragment(const Fragment& frag,
                                         const MutationBatch& batch);

  /// Whole-world mutation: every fragment rebuilt via MutateFragment, then
  /// the in-process mirror exchange. All-or-nothing — `fg` is untouched
  /// unless every fragment rebuilds and resolves.
  static Status MutateFragmentedGraph(FragmentedGraph* fg,
                                      const MutationBatch& batch);
};

}  // namespace grape

#endif  // GRAPE_PARTITION_FRAGMENT_H_
