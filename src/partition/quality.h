#ifndef GRAPE_PARTITION_QUALITY_H_
#define GRAPE_PARTITION_QUALITY_H_

#include <string>
#include <vector>

#include "graph/graph.h"
#include "graph/types.h"

namespace grape {

/// Quality metrics of an edge-cut partition; the quantities the paper's
/// Sec. 3 partition demo turns on (cross edges drive message volume).
struct PartitionQuality {
  FragmentId num_fragments = 0;
  /// Directed arcs whose endpoints live on different fragments.
  size_t cut_edges = 0;
  size_t total_edges = 0;
  double cut_fraction = 0.0;
  /// max fragment vertex count / average fragment vertex count.
  double vertex_balance = 0.0;
  /// max fragment out-degree mass / average.
  double edge_balance = 0.0;
  /// Sum over fragments of the number of distinct outer (mirror) vertices —
  /// the per-round worst-case message footprint.
  size_t replication = 0;

  std::string ToString() const;
};

PartitionQuality EvaluatePartition(const Graph& graph,
                                   const std::vector<FragmentId>& assignment,
                                   FragmentId num_fragments);

}  // namespace grape

#endif  // GRAPE_PARTITION_QUALITY_H_
