#include "partition/metis_partitioner.h"

#include <algorithm>
#include <deque>
#include <numeric>
#include <unordered_map>

#include "util/random.h"

namespace grape {

namespace {

/// Undirected weighted working graph used across coarsening levels.
struct LevelGraph {
  // adjacency[v] = (neighbor, accumulated edge weight); no self loops.
  std::vector<std::vector<std::pair<uint32_t, double>>> adjacency;
  std::vector<double> vertex_weight;

  size_t size() const { return adjacency.size(); }
};

LevelGraph FromInput(const Graph& graph) {
  LevelGraph lg;
  const VertexId n = graph.num_vertices();
  lg.adjacency.resize(n);
  lg.vertex_weight.assign(n, 1.0);
  // Symmetrize and collapse parallel edges; edge weight counts multiplicity
  // (a good proxy for communication volume over the cut).
  std::unordered_map<uint64_t, double> acc;
  acc.reserve(graph.num_edges());
  for (VertexId v = 0; v < n; ++v) {
    for (const Neighbor& nb : graph.OutNeighbors(v)) {
      if (nb.vertex == v) continue;
      VertexId a = std::min(v, nb.vertex);
      VertexId b = std::max(v, nb.vertex);
      acc[(static_cast<uint64_t>(a) << 32) | b] += 1.0;
    }
  }
  for (const auto& [key, w] : acc) {
    auto a = static_cast<uint32_t>(key >> 32);
    auto b = static_cast<uint32_t>(key & 0xffffffffu);
    lg.adjacency[a].emplace_back(b, w);
    lg.adjacency[b].emplace_back(a, w);
  }
  return lg;
}

/// One round of heavy-edge matching; match[v] = partner (or v for
/// unmatched). Returns the coarse vertex count.
size_t HeavyEdgeMatch(const LevelGraph& lg, Rng& rng,
                      std::vector<uint32_t>* coarse_id) {
  const size_t n = lg.size();
  std::vector<uint32_t> order(n);
  std::iota(order.begin(), order.end(), 0);
  std::shuffle(order.begin(), order.end(), rng);

  std::vector<uint32_t> match(n, kInvalidVertex);
  coarse_id->assign(n, kInvalidVertex);
  uint32_t next = 0;
  for (uint32_t v : order) {
    if (match[v] != kInvalidVertex) continue;
    uint32_t best = v;
    double best_w = -1.0;
    for (const auto& [u, w] : lg.adjacency[v]) {
      if (match[u] == kInvalidVertex && u != v && w > best_w) {
        best_w = w;
        best = u;
      }
    }
    match[v] = best;
    match[best] = v;
    (*coarse_id)[v] = next;
    (*coarse_id)[best] = next;
    ++next;
  }
  return next;
}

LevelGraph Coarsen(const LevelGraph& lg, const std::vector<uint32_t>& coarse_id,
                   size_t coarse_n) {
  LevelGraph out;
  out.adjacency.resize(coarse_n);
  out.vertex_weight.assign(coarse_n, 0.0);
  for (size_t v = 0; v < lg.size(); ++v) {
    out.vertex_weight[coarse_id[v]] += lg.vertex_weight[v];
  }
  // Accumulate inter-cluster edges.
  std::unordered_map<uint64_t, double> acc;
  for (size_t v = 0; v < lg.size(); ++v) {
    uint32_t cv = coarse_id[v];
    for (const auto& [u, w] : lg.adjacency[v]) {
      uint32_t cu = coarse_id[u];
      if (cu == cv) continue;
      uint32_t a = std::min(cu, cv);
      uint32_t b = std::max(cu, cv);
      acc[(static_cast<uint64_t>(a) << 32) | b] += w;
    }
  }
  for (const auto& [key, w] : acc) {
    auto a = static_cast<uint32_t>(key >> 32);
    auto b = static_cast<uint32_t>(key & 0xffffffffu);
    // Each undirected edge was visited from both sides; halve.
    out.adjacency[a].emplace_back(b, w / 2.0);
    out.adjacency[b].emplace_back(a, w / 2.0);
  }
  return out;
}

/// Greedy region growing: grow one region per fragment from a random seed
/// until it reaches its weight quota.
std::vector<FragmentId> InitialPartition(const LevelGraph& lg,
                                         FragmentId num_fragments, Rng& rng) {
  const size_t n = lg.size();
  std::vector<FragmentId> part(n, kInvalidFragment);
  double total = std::accumulate(lg.vertex_weight.begin(),
                                 lg.vertex_weight.end(), 0.0);
  double quota = total / num_fragments;

  std::vector<uint32_t> order(n);
  std::iota(order.begin(), order.end(), 0);
  std::shuffle(order.begin(), order.end(), rng);
  size_t cursor = 0;

  for (FragmentId f = 0; f < num_fragments; ++f) {
    // Find an unassigned seed.
    while (cursor < n && part[order[cursor]] != kInvalidFragment) ++cursor;
    if (cursor >= n) break;
    std::deque<uint32_t> frontier{order[cursor]};
    double grown = 0.0;
    while (!frontier.empty() && grown < quota) {
      uint32_t v = frontier.front();
      frontier.pop_front();
      if (part[v] != kInvalidFragment) continue;
      part[v] = f;
      grown += lg.vertex_weight[v];
      for (const auto& [u, w] : lg.adjacency[v]) {
        (void)w;
        if (part[u] == kInvalidFragment) frontier.push_back(u);
      }
    }
  }
  // Leftovers (disconnected remainder): least-loaded fragment.
  std::vector<double> load(num_fragments, 0.0);
  for (size_t v = 0; v < n; ++v) {
    if (part[v] != kInvalidFragment) load[part[v]] += lg.vertex_weight[v];
  }
  for (size_t v = 0; v < n; ++v) {
    if (part[v] == kInvalidFragment) {
      auto f = static_cast<FragmentId>(
          std::min_element(load.begin(), load.end()) - load.begin());
      part[v] = f;
      load[f] += lg.vertex_weight[v];
    }
  }
  return part;
}

/// Boundary refinement: positive-gain greedy moves with a balance cap.
void Refine(const LevelGraph& lg, FragmentId num_fragments, double imbalance,
            uint32_t passes, std::vector<FragmentId>* part) {
  const size_t n = lg.size();
  std::vector<double> load(num_fragments, 0.0);
  double total = 0.0;
  for (size_t v = 0; v < n; ++v) {
    load[(*part)[v]] += lg.vertex_weight[v];
    total += lg.vertex_weight[v];
  }
  const double cap = imbalance * total / num_fragments;

  std::vector<double> conn(num_fragments, 0.0);
  std::vector<FragmentId> touched;
  for (uint32_t pass = 0; pass < passes; ++pass) {
    size_t moves = 0;
    for (size_t v = 0; v < n; ++v) {
      FragmentId cur = (*part)[v];
      touched.clear();
      bool boundary = false;
      for (const auto& [u, w] : lg.adjacency[v]) {
        FragmentId fu = (*part)[u];
        if (conn[fu] == 0.0) touched.push_back(fu);
        conn[fu] += w;
        if (fu != cur) boundary = true;
      }
      if (boundary) {
        double internal = conn[cur];
        FragmentId best = cur;
        double best_gain = 0.0;
        for (FragmentId f : touched) {
          if (f == cur) continue;
          if (load[f] + lg.vertex_weight[v] > cap) continue;
          double gain = conn[f] - internal;
          if (gain > best_gain) {
            best_gain = gain;
            best = f;
          }
        }
        if (best != cur) {
          load[cur] -= lg.vertex_weight[v];
          load[best] += lg.vertex_weight[v];
          (*part)[v] = best;
          ++moves;
        }
      }
      for (FragmentId f : touched) conn[f] = 0.0;
    }
    if (moves == 0) break;
  }
}

}  // namespace

Result<std::vector<FragmentId>> MetisPartitioner::Partition(
    const Graph& graph, FragmentId num_fragments) const {
  if (num_fragments == 0) {
    return Status::InvalidArgument("num_fragments must be positive");
  }
  const VertexId n = graph.num_vertices();
  if (num_fragments == 1) return std::vector<FragmentId>(n, 0);
  if (n == 0) return std::vector<FragmentId>{};

  Rng rng(options_.seed);
  std::vector<LevelGraph> levels;
  std::vector<std::vector<uint32_t>> projections;  // fine -> coarse per level
  levels.push_back(FromInput(graph));

  const size_t target =
      std::max<size_t>(64, static_cast<size_t>(options_.coarsen_factor) *
                               num_fragments);
  while (levels.back().size() > target) {
    std::vector<uint32_t> coarse_id;
    size_t coarse_n = HeavyEdgeMatch(levels.back(), rng, &coarse_id);
    if (coarse_n >= levels.back().size() * 95 / 100) break;  // stalled
    LevelGraph next = Coarsen(levels.back(), coarse_id, coarse_n);
    projections.push_back(std::move(coarse_id));
    levels.push_back(std::move(next));
  }

  std::vector<FragmentId> part =
      InitialPartition(levels.back(), num_fragments, rng);
  Refine(levels.back(), num_fragments, options_.imbalance,
         options_.refine_passes, &part);

  // Uncoarsen: project and refine at every level.
  for (size_t level = levels.size() - 1; level-- > 0;) {
    const std::vector<uint32_t>& proj = projections[level];
    std::vector<FragmentId> finer(levels[level].size());
    for (size_t v = 0; v < finer.size(); ++v) finer[v] = part[proj[v]];
    part = std::move(finer);
    Refine(levels[level], num_fragments, options_.imbalance,
           options_.refine_passes, &part);
  }
  return part;
}

}  // namespace grape
