#include "partition/quality.h"

#include <algorithm>
#include <cstdio>
#include <unordered_set>

namespace grape {

std::string PartitionQuality::ToString() const {
  char buf[256];
  std::snprintf(buf, sizeof(buf),
                "fragments=%u cut=%zu/%zu (%.1f%%) v-balance=%.3f "
                "e-balance=%.3f replication=%zu",
                num_fragments, cut_edges, total_edges, cut_fraction * 100.0,
                vertex_balance, edge_balance, replication);
  return buf;
}

PartitionQuality EvaluatePartition(const Graph& graph,
                                   const std::vector<FragmentId>& assignment,
                                   FragmentId num_fragments) {
  PartitionQuality q;
  q.num_fragments = num_fragments;
  q.total_edges = graph.num_edges();

  std::vector<size_t> vertex_count(num_fragments, 0);
  std::vector<size_t> edge_count(num_fragments, 0);
  // Mirrors of v: set of foreign fragments adjacent to v.
  std::vector<std::unordered_set<uint64_t>> mirror_keys(1);
  std::unordered_set<uint64_t>& mirrors = mirror_keys[0];

  for (VertexId v = 0; v < graph.num_vertices(); ++v) {
    FragmentId fv = assignment[v];
    vertex_count[fv]++;
    edge_count[fv] += graph.OutDegree(v);
    for (const Neighbor& nb : graph.OutNeighbors(v)) {
      FragmentId fu = assignment[nb.vertex];
      if (fu != fv) {
        q.cut_edges++;
        // v is mirrored into fu's fragment? No: u=nb.vertex is mirrored into
        // fv (the owner of the edge source). Count (vertex, host) pairs.
        mirrors.insert((static_cast<uint64_t>(nb.vertex) << 20) | fv);
        mirrors.insert((static_cast<uint64_t>(v) << 20) | fu);
      }
    }
  }
  q.replication = mirrors.size();
  q.cut_fraction =
      q.total_edges == 0
          ? 0.0
          : static_cast<double>(q.cut_edges) / static_cast<double>(q.total_edges);

  auto balance = [&](const std::vector<size_t>& counts) {
    size_t total = 0;
    size_t max_count = 0;
    for (size_t c : counts) {
      total += c;
      max_count = std::max(max_count, c);
    }
    if (total == 0) return 0.0;
    double avg = static_cast<double>(total) / counts.size();
    return static_cast<double>(max_count) / avg;
  };
  q.vertex_balance = balance(vertex_count);
  q.edge_balance = balance(edge_count);
  return q;
}

}  // namespace grape
