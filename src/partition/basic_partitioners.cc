#include "partition/basic_partitioners.h"

#include <cmath>

#include "util/random.h"

namespace grape {

Result<std::vector<FragmentId>> HashPartitioner::Partition(
    const Graph& graph, FragmentId num_fragments) const {
  if (num_fragments == 0) {
    return Status::InvalidArgument("num_fragments must be positive");
  }
  std::vector<FragmentId> assignment(graph.num_vertices());
  for (VertexId v = 0; v < graph.num_vertices(); ++v) {
    assignment[v] = static_cast<FragmentId>(SplitMix64(v) % num_fragments);
  }
  return assignment;
}

Result<std::vector<FragmentId>> RangePartitioner::Partition(
    const Graph& graph, FragmentId num_fragments) const {
  if (num_fragments == 0) {
    return Status::InvalidArgument("num_fragments must be positive");
  }
  const VertexId n = graph.num_vertices();
  std::vector<FragmentId> assignment(n, 0);
  if (n == 0) return assignment;

  if (!balance_by_degree_) {
    for (VertexId v = 0; v < n; ++v) {
      assignment[v] = static_cast<FragmentId>(
          static_cast<uint64_t>(v) * num_fragments / n);
    }
    return assignment;
  }

  // Sweep ids in order, cutting a new range whenever the running degree mass
  // exceeds the per-fragment quota. Every fragment gets a non-empty range
  // while ids remain.
  double total_mass = 0;
  for (VertexId v = 0; v < n; ++v) {
    total_mass += 1.0 + static_cast<double>(graph.OutDegree(v));
  }
  double quota = total_mass / num_fragments;
  double acc = 0;
  FragmentId current = 0;
  for (VertexId v = 0; v < n; ++v) {
    assignment[v] = current;
    acc += 1.0 + static_cast<double>(graph.OutDegree(v));
    if (acc >= quota * (current + 1) && current + 1 < num_fragments &&
        n - v - 1 >= num_fragments - current - 1) {
      ++current;
    }
  }
  return assignment;
}

Result<std::vector<FragmentId>> Grid2DPartitioner::Partition(
    const Graph& graph, FragmentId num_fragments) const {
  if (num_fragments == 0) {
    return Status::InvalidArgument("num_fragments must be positive");
  }
  const VertexId n = graph.num_vertices();
  std::vector<FragmentId> assignment(n, 0);
  if (n == 0) return assignment;

  // Factor n_fragments = rp * cp with rp as close to sqrt as possible.
  FragmentId rp = static_cast<FragmentId>(
      std::floor(std::sqrt(static_cast<double>(num_fragments))));
  while (rp > 1 && num_fragments % rp != 0) --rp;
  FragmentId cp = num_fragments / rp;

  const auto side =
      static_cast<VertexId>(std::ceil(std::sqrt(static_cast<double>(n))));
  for (VertexId v = 0; v < n; ++v) {
    VertexId row = v / side;
    VertexId col = v % side;
    auto fr = static_cast<FragmentId>(
        std::min<uint64_t>(static_cast<uint64_t>(row) * rp / side, rp - 1));
    auto fc = static_cast<FragmentId>(
        std::min<uint64_t>(static_cast<uint64_t>(col) * cp / side, cp - 1));
    assignment[v] = fr * cp + fc;
  }
  return assignment;
}

}  // namespace grape
