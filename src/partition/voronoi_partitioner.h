#ifndef GRAPE_PARTITION_VORONOI_PARTITIONER_H_
#define GRAPE_PARTITION_VORONOI_PARTITIONER_H_

#include <string>
#include <vector>

#include "partition/partitioner.h"

namespace grape {

/// Graph-Voronoi-diagram partitioner in the style of Blogel's GVD block
/// partitioner (Yan et al., PVLDB 2014): sample seeds, grow Voronoi cells by
/// multi-source BFS, re-seed any unreached region, then pack cells onto
/// fragments by greedy least-loaded assignment. Produces many small blocks
/// with ragged boundaries — realistic for block-centric systems, and the
/// partition-quality contrast to GRAPE's METIS/2D strategies that the
/// paper's Table 1 reflects.
class VoronoiPartitioner : public Partitioner {
 public:
  struct Options {
    /// Voronoi cells created per fragment (Blogel runs many blocks per
    /// worker).
    uint32_t cells_per_fragment = 16;
    uint64_t seed = 99;
  };

  VoronoiPartitioner() = default;
  explicit VoronoiPartitioner(const Options& options) : options_(options) {}

  Result<std::vector<FragmentId>> Partition(
      const Graph& graph, FragmentId num_fragments) const override;
  std::string name() const override { return "voronoi"; }

 private:
  Options options_;
};

}  // namespace grape

#endif  // GRAPE_PARTITION_VORONOI_PARTITIONER_H_
