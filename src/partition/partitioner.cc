#include "partition/partitioner.h"

#include "partition/basic_partitioners.h"
#include "partition/metis_partitioner.h"
#include "partition/streaming_partitioners.h"
#include "partition/voronoi_partitioner.h"

namespace grape {

Result<std::unique_ptr<Partitioner>> MakePartitioner(const std::string& name) {
  if (name == "hash") return std::unique_ptr<Partitioner>(new HashPartitioner);
  if (name == "range") {
    return std::unique_ptr<Partitioner>(new RangePartitioner);
  }
  if (name == "grid2d") {
    return std::unique_ptr<Partitioner>(new Grid2DPartitioner);
  }
  if (name == "ldg") return std::unique_ptr<Partitioner>(new LdgPartitioner);
  if (name == "fennel") {
    return std::unique_ptr<Partitioner>(new FennelPartitioner);
  }
  if (name == "metis") {
    return std::unique_ptr<Partitioner>(new MetisPartitioner);
  }
  if (name == "voronoi") {
    return std::unique_ptr<Partitioner>(new VoronoiPartitioner);
  }
  return Status::NotFound("unknown partition strategy: " + name);
}

std::vector<std::string> BuiltinPartitionerNames() {
  return {"hash", "range", "grid2d", "ldg", "fennel", "metis", "voronoi"};
}

}  // namespace grape
