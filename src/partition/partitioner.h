#ifndef GRAPE_PARTITION_PARTITIONER_H_
#define GRAPE_PARTITION_PARTITIONER_H_

#include <memory>
#include <string>
#include <vector>

#include "graph/graph.h"
#include "graph/types.h"
#include "util/result.h"

namespace grape {

/// Strategy interface of the Partition Manager (Fig. 2). A partitioner maps
/// every vertex to a fragment id in [0, num_fragments); fragments are
/// edge-cut: each vertex has exactly one owner and cut edges induce mirror
/// ("outer") copies.
class Partitioner {
 public:
  virtual ~Partitioner() = default;

  /// Returns assignment[v] = owning fragment of v, for every v in `graph`.
  virtual Result<std::vector<FragmentId>> Partition(
      const Graph& graph, FragmentId num_fragments) const = 0;

  /// Strategy name as registered in the library ("hash", "metis", ...).
  virtual std::string name() const = 0;
};

/// Looks up a built-in strategy by name: "hash", "range", "grid2d", "ldg",
/// "fennel", "metis". Mirrors the demo's play-panel dropdown; new strategies
/// can be plugged in via RegisterPartitioner.
Result<std::unique_ptr<Partitioner>> MakePartitioner(const std::string& name);

/// Names of all built-in strategies.
std::vector<std::string> BuiltinPartitionerNames();

}  // namespace grape

#endif  // GRAPE_PARTITION_PARTITIONER_H_
