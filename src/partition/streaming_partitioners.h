#ifndef GRAPE_PARTITION_STREAMING_PARTITIONERS_H_
#define GRAPE_PARTITION_STREAMING_PARTITIONERS_H_

#include <string>
#include <vector>

#include "partition/partitioner.h"

namespace grape {

/// Linear Deterministic Greedy streaming partitioner (Stanton & Kliot, KDD
/// 2012) — the "streaming-style partition algorithm [8]" of the paper.
/// Vertices arrive in id order; each is placed on the fragment maximizing
///   |N(v) ∩ P_i| * (1 - |P_i| / C)
/// where C is the per-fragment capacity.
class LdgPartitioner : public Partitioner {
 public:
  /// capacity_slack > 1 loosens the balance constraint (C = slack * |V|/n).
  explicit LdgPartitioner(double capacity_slack = 1.05)
      : capacity_slack_(capacity_slack) {}

  Result<std::vector<FragmentId>> Partition(
      const Graph& graph, FragmentId num_fragments) const override;
  std::string name() const override { return "ldg"; }

 private:
  double capacity_slack_;
};

/// Fennel streaming partitioner (Tsourakakis et al., WSDM 2014): place v on
/// the fragment maximizing |N(v) ∩ P_i| - alpha * gamma / 2 * |P_i|^(gamma-1),
/// a one-pass relaxation of modularity-style objectives. Included as an
/// extension strategy beyond the paper's built-ins.
class FennelPartitioner : public Partitioner {
 public:
  explicit FennelPartitioner(double gamma = 1.5, double balance_slack = 1.1)
      : gamma_(gamma), balance_slack_(balance_slack) {}

  Result<std::vector<FragmentId>> Partition(
      const Graph& graph, FragmentId num_fragments) const override;
  std::string name() const override { return "fennel"; }

 private:
  double gamma_;
  double balance_slack_;
};

}  // namespace grape

#endif  // GRAPE_PARTITION_STREAMING_PARTITIONERS_H_
