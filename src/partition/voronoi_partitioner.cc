#include "partition/voronoi_partitioner.h"

#include <algorithm>
#include <deque>
#include <numeric>

#include "util/random.h"

namespace grape {

Result<std::vector<FragmentId>> VoronoiPartitioner::Partition(
    const Graph& graph, FragmentId num_fragments) const {
  if (num_fragments == 0) {
    return Status::InvalidArgument("num_fragments must be positive");
  }
  const VertexId n = graph.num_vertices();
  if (n == 0) return std::vector<FragmentId>{};

  const uint32_t target_cells = std::max<uint32_t>(
      num_fragments, options_.cells_per_fragment * num_fragments);
  Rng rng(options_.seed);

  // Multi-source BFS from sampled seeds over the undirected view; cell[v] =
  // index of the closest seed.
  std::vector<uint32_t> cell(n, UINT32_MAX);
  std::deque<VertexId> frontier;
  uint32_t num_cells = 0;
  for (uint32_t c = 0; c < target_cells; ++c) {
    auto v = static_cast<VertexId>(rng.NextBounded(n));
    if (cell[v] != UINT32_MAX) continue;  // collision: skip
    cell[v] = num_cells++;
    frontier.push_back(v);
  }
  auto grow = [&] {
    while (!frontier.empty()) {
      VertexId v = frontier.front();
      frontier.pop_front();
      auto visit = [&](VertexId u) {
        if (cell[u] == UINT32_MAX) {
          cell[u] = cell[v];
          frontier.push_back(u);
        }
      };
      for (const Neighbor& nb : graph.OutNeighbors(v)) visit(nb.vertex);
      if (graph.is_directed()) {
        for (const Neighbor& nb : graph.InNeighbors(v)) visit(nb.vertex);
      }
    }
  };
  grow();
  // Re-seed disconnected leftovers until everything is covered.
  for (VertexId v = 0; v < n; ++v) {
    if (cell[v] == UINT32_MAX) {
      cell[v] = num_cells++;
      frontier.push_back(v);
      grow();
    }
  }

  // Pack cells onto fragments: biggest cell first onto the least-loaded
  // fragment (greedy multiprocessor scheduling).
  std::vector<size_t> cell_size(num_cells, 0);
  for (VertexId v = 0; v < n; ++v) cell_size[cell[v]]++;
  std::vector<uint32_t> order(num_cells);
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(), [&](uint32_t a, uint32_t b) {
    return cell_size[a] > cell_size[b];
  });
  std::vector<size_t> load(num_fragments, 0);
  std::vector<FragmentId> cell_owner(num_cells, 0);
  for (uint32_t c : order) {
    auto f = static_cast<FragmentId>(
        std::min_element(load.begin(), load.end()) - load.begin());
    cell_owner[c] = f;
    load[f] += cell_size[c];
  }

  std::vector<FragmentId> assignment(n);
  for (VertexId v = 0; v < n; ++v) assignment[v] = cell_owner[cell[v]];
  return assignment;
}

}  // namespace grape
