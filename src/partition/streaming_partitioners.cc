#include "partition/streaming_partitioners.h"

#include <cmath>

namespace grape {

namespace {

/// Counts already-placed neighbours (either direction) of v per fragment.
/// `scratch` must be zeroed on entry and is re-zeroed before returning, so
/// the sweep stays O(deg) per vertex.
void CountPlacedNeighbors(const Graph& graph,
                          const std::vector<FragmentId>& assignment,
                          VertexId v, std::vector<double>& scratch,
                          std::vector<FragmentId>& touched) {
  touched.clear();
  auto tally = [&](VertexId u) {
    FragmentId f = assignment[u];
    if (f == kInvalidFragment) return;
    if (scratch[f] == 0) touched.push_back(f);
    scratch[f] += 1.0;
  };
  for (const Neighbor& nb : graph.OutNeighbors(v)) tally(nb.vertex);
  if (graph.is_directed()) {
    for (const Neighbor& nb : graph.InNeighbors(v)) tally(nb.vertex);
  }
}

}  // namespace

Result<std::vector<FragmentId>> LdgPartitioner::Partition(
    const Graph& graph, FragmentId num_fragments) const {
  if (num_fragments == 0) {
    return Status::InvalidArgument("num_fragments must be positive");
  }
  const VertexId n = graph.num_vertices();
  std::vector<FragmentId> assignment(n, kInvalidFragment);
  std::vector<double> load(num_fragments, 0.0);
  std::vector<double> scratch(num_fragments, 0.0);
  std::vector<FragmentId> touched;
  const double capacity =
      capacity_slack_ * static_cast<double>(n) / num_fragments + 1.0;

  for (VertexId v = 0; v < n; ++v) {
    CountPlacedNeighbors(graph, assignment, v, scratch, touched);
    FragmentId best = kInvalidFragment;
    double best_score = -1.0;
    // Consider fragments containing neighbours first; fall back to the
    // least-loaded fragment when no neighbour helps (or all are full).
    for (FragmentId f : touched) {
      if (load[f] >= capacity) continue;
      double score = scratch[f] * (1.0 - load[f] / capacity);
      if (score > best_score) {
        best_score = score;
        best = f;
      }
    }
    if (best == kInvalidFragment || best_score <= 0.0) {
      FragmentId least = 0;
      for (FragmentId f = 1; f < num_fragments; ++f) {
        if (load[f] < load[least]) least = f;
      }
      if (best == kInvalidFragment) best = least;
      // Prefer the least-loaded fragment on score ties at zero.
      if (best_score <= 0.0) best = least;
    }
    assignment[v] = best;
    load[best] += 1.0;
    for (FragmentId f : touched) scratch[f] = 0.0;
  }
  return assignment;
}

Result<std::vector<FragmentId>> FennelPartitioner::Partition(
    const Graph& graph, FragmentId num_fragments) const {
  if (num_fragments == 0) {
    return Status::InvalidArgument("num_fragments must be positive");
  }
  const VertexId n = graph.num_vertices();
  std::vector<FragmentId> assignment(n, kInvalidFragment);
  if (n == 0) return assignment;

  const double m = static_cast<double>(graph.num_edges());
  const double alpha =
      m * std::pow(static_cast<double>(num_fragments), gamma_ - 1.0) /
      std::pow(static_cast<double>(n), gamma_);
  const double capacity =
      balance_slack_ * static_cast<double>(n) / num_fragments + 1.0;

  std::vector<double> load(num_fragments, 0.0);
  std::vector<double> scratch(num_fragments, 0.0);
  std::vector<FragmentId> touched;

  for (VertexId v = 0; v < n; ++v) {
    CountPlacedNeighbors(graph, assignment, v, scratch, touched);
    FragmentId best = 0;
    double best_score = -std::numeric_limits<double>::infinity();
    for (FragmentId f = 0; f < num_fragments; ++f) {
      if (load[f] >= capacity) continue;
      double score = scratch[f] -
                     alpha * gamma_ / 2.0 * std::pow(load[f], gamma_ - 1.0);
      if (score > best_score) {
        best_score = score;
        best = f;
      }
    }
    assignment[v] = best;
    load[best] += 1.0;
    for (FragmentId f : touched) scratch[f] = 0.0;
  }
  return assignment;
}

}  // namespace grape
