#ifndef GRAPE_PARTITION_METIS_PARTITIONER_H_
#define GRAPE_PARTITION_METIS_PARTITIONER_H_

#include <string>
#include <vector>

#include "partition/partitioner.h"

namespace grape {

/// Multilevel k-way partitioner in the METIS mould, filling the role METIS
/// plays in the paper's Sec. 3 partition-impact demo:
///   1. Coarsening by heavy-edge matching (collapsing matched pairs and
///      accumulating vertex/edge weights) until the graph is small.
///   2. Initial partition by greedy region growing on the coarsest graph.
///   3. Uncoarsening with boundary Fiduccia–Mattheyses-style refinement
///      (positive-gain moves subject to a balance constraint) at each level.
/// It is not a re-implementation of the METIS library, but it delivers the
/// property the experiments depend on: substantially lower edge cut than
/// hash/streaming strategies at comparable balance.
class MetisPartitioner : public Partitioner {
 public:
  struct Options {
    /// Stop coarsening when the graph has <= coarsen_factor * num_fragments
    /// vertices (with a floor of 64).
    uint32_t coarsen_factor = 30;
    /// Maximum allowed fragment weight as a multiple of the average.
    double imbalance = 1.05;
    /// Refinement sweeps per level.
    uint32_t refine_passes = 6;
    uint64_t seed = 42;
  };

  MetisPartitioner() = default;
  explicit MetisPartitioner(const Options& options) : options_(options) {}

  Result<std::vector<FragmentId>> Partition(
      const Graph& graph, FragmentId num_fragments) const override;
  std::string name() const override { return "metis"; }

 private:
  Options options_;
};

}  // namespace grape

#endif  // GRAPE_PARTITION_METIS_PARTITIONER_H_
