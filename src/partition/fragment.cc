#include "partition/fragment.h"

#include <algorithm>
#include <unordered_set>

namespace grape {

Result<FragmentedGraph> FragmentBuilder::Build(
    const Graph& graph, const std::vector<FragmentId>& assignment,
    FragmentId num_fragments) {
  const VertexId n = graph.num_vertices();
  if (assignment.size() != n) {
    return Status::InvalidArgument("assignment size != vertex count");
  }
  if (num_fragments == 0) {
    return Status::InvalidArgument("num_fragments must be positive");
  }
  for (FragmentId f : assignment) {
    if (f >= num_fragments) {
      return Status::InvalidArgument("assignment references unknown fragment");
    }
  }

  FragmentedGraph out;
  out.directed = graph.is_directed();
  out.total_vertices = n;
  out.owner = std::make_shared<const std::vector<FragmentId>>(assignment);

  // Inner vertex lists (ascending gid for deterministic local ids).
  std::vector<std::vector<VertexId>> inner(num_fragments);
  for (VertexId v = 0; v < n; ++v) inner[assignment[v]].push_back(v);

  // Routing plan, part 1: every vertex's local id at its owner. Inner local
  // ids are positions in the (ascending) inner list, so this is known
  // before any fragment is materialized.
  auto owner_lid = std::make_shared<std::vector<LocalId>>(n, kInvalidLocal);
  for (FragmentId f = 0; f < num_fragments; ++f) {
    for (size_t i = 0; i < inner[f].size(); ++i) {
      (*owner_lid)[inner[f][i]] = static_cast<LocalId>(i);
    }
  }
  out.owner_lid = owner_lid;

  // Outer vertex sets per fragment + mirror lists per gid.
  std::vector<std::unordered_set<VertexId>> outer(num_fragments);
  std::vector<uint8_t> is_border(n, 0);
  for (VertexId u = 0; u < n; ++u) {
    FragmentId fu = assignment[u];
    for (const Neighbor& nb : graph.OutNeighbors(u)) {
      FragmentId fv = assignment[nb.vertex];
      if (fv == fu) continue;
      is_border[u] = 1;
      is_border[nb.vertex] = 1;
      outer[fu].insert(nb.vertex);   // fu mirrors the foreign target
      if (graph.is_directed()) {
        outer[fv].insert(u);         // fv mirrors the foreign source
      }
    }
  }

  std::vector<std::vector<FragmentId>> mirrors_by_gid(n);
  for (FragmentId f = 0; f < num_fragments; ++f) {
    for (VertexId gid : outer[f]) mirrors_by_gid[gid].push_back(f);
  }
  for (auto& m : mirrors_by_gid) std::sort(m.begin(), m.end());

  out.fragments.resize(num_fragments);
  for (FragmentId f = 0; f < num_fragments; ++f) {
    Fragment& frag = out.fragments[f];
    frag.fid_ = f;
    frag.num_fragments_ = num_fragments;
    frag.total_vertices_ = n;
    frag.directed_ = graph.is_directed();
    frag.owner_ = out.owner;
    frag.owner_lid_ = out.owner_lid;

    frag.num_inner_ = static_cast<LocalId>(inner[f].size());
    frag.gids_ = inner[f];
    std::vector<VertexId> outer_sorted(outer[f].begin(), outer[f].end());
    std::sort(outer_sorted.begin(), outer_sorted.end());
    frag.gids_.insert(frag.gids_.end(), outer_sorted.begin(),
                      outer_sorted.end());
    for (VertexId gid : frag.gids_) frag.indexer_.GetOrInsert(gid);

    const LocalId num_local = frag.num_local();
    const LocalId ni = frag.num_inner_;

    // Local out-CSR. Inner rows: full global out-adjacency. Outer rows:
    // edges from the outer vertex into this fragment's inner set (derived
    // from the in-edges of inner vertices), so apps can navigate both
    // directions across the border.
    frag.out_offsets_.assign(num_local + 1, 0);
    for (LocalId i = 0; i < ni; ++i) {
      frag.out_offsets_[i + 1] = graph.OutDegree(frag.gids_[i]);
    }
    if (graph.is_directed()) {
      for (LocalId i = 0; i < ni; ++i) {
        for (const Neighbor& nb : graph.InNeighbors(frag.gids_[i])) {
          LocalId src = frag.indexer_.Find(nb.vertex);
          if (src != kInvalidLocal && src >= ni) frag.out_offsets_[src + 1]++;
        }
      }
    } else {
      // Undirected: outer rows list neighbours inside the inner set.
      for (LocalId i = 0; i < ni; ++i) {
        for (const Neighbor& nb : graph.OutNeighbors(frag.gids_[i])) {
          LocalId other = frag.indexer_.Find(nb.vertex);
          if (other != kInvalidLocal && other >= ni) {
            frag.out_offsets_[other + 1]++;
          }
        }
      }
    }
    for (LocalId i = 0; i < num_local; ++i) {
      frag.out_offsets_[i + 1] += frag.out_offsets_[i];
    }
    frag.out_neighbors_.resize(frag.out_offsets_[num_local]);
    {
      std::vector<size_t> cursor(frag.out_offsets_.begin(),
                                 frag.out_offsets_.end() - 1);
      for (LocalId i = 0; i < ni; ++i) {
        for (const Neighbor& nb : graph.OutNeighbors(frag.gids_[i])) {
          LocalId target = frag.indexer_.Find(nb.vertex);
          frag.out_neighbors_[cursor[i]++] =
              FragNeighbor{target, nb.weight, nb.label};
        }
      }
      if (graph.is_directed()) {
        for (LocalId i = 0; i < ni; ++i) {
          for (const Neighbor& nb : graph.InNeighbors(frag.gids_[i])) {
            LocalId src = frag.indexer_.Find(nb.vertex);
            if (src != kInvalidLocal && src >= ni) {
              frag.out_neighbors_[cursor[src]++] =
                  FragNeighbor{i, nb.weight, nb.label};
            }
          }
        }
      } else {
        for (LocalId i = 0; i < ni; ++i) {
          for (const Neighbor& nb : graph.OutNeighbors(frag.gids_[i])) {
            LocalId other = frag.indexer_.Find(nb.vertex);
            if (other != kInvalidLocal && other >= ni) {
              frag.out_neighbors_[cursor[other]++] =
                  FragNeighbor{i, nb.weight, nb.label};
            }
          }
        }
      }
    }

    if (graph.is_directed()) {
      // Local in-CSR. Inner rows: full global in-adjacency. Outer rows:
      // in-edges from the inner set (reverse of inner out-edges that cross).
      frag.in_offsets_.assign(num_local + 1, 0);
      for (LocalId i = 0; i < ni; ++i) {
        frag.in_offsets_[i + 1] = graph.InDegree(frag.gids_[i]);
      }
      for (LocalId i = 0; i < ni; ++i) {
        for (const Neighbor& nb : graph.OutNeighbors(frag.gids_[i])) {
          LocalId dst = frag.indexer_.Find(nb.vertex);
          if (dst != kInvalidLocal && dst >= ni) frag.in_offsets_[dst + 1]++;
        }
      }
      for (LocalId i = 0; i < num_local; ++i) {
        frag.in_offsets_[i + 1] += frag.in_offsets_[i];
      }
      frag.in_neighbors_.resize(frag.in_offsets_[num_local]);
      std::vector<size_t> cursor(frag.in_offsets_.begin(),
                                 frag.in_offsets_.end() - 1);
      for (LocalId i = 0; i < ni; ++i) {
        for (const Neighbor& nb : graph.InNeighbors(frag.gids_[i])) {
          LocalId source = frag.indexer_.Find(nb.vertex);
          frag.in_neighbors_[cursor[i]++] =
              FragNeighbor{source, nb.weight, nb.label};
        }
      }
      for (LocalId i = 0; i < ni; ++i) {
        for (const Neighbor& nb : graph.OutNeighbors(frag.gids_[i])) {
          LocalId dst = frag.indexer_.Find(nb.vertex);
          if (dst != kInvalidLocal && dst >= ni) {
            frag.in_neighbors_[cursor[dst]++] =
                FragNeighbor{i, nb.weight, nb.label};
          }
        }
      }
    }

    if (graph.has_vertex_labels()) {
      frag.labels_.resize(num_local);
      for (LocalId i = 0; i < num_local; ++i) {
        frag.labels_[i] = graph.vertex_label(frag.gids_[i]);
      }
    }

    frag.border_.assign(ni, 0);
    frag.num_border_ = 0;
    frag.mirror_offsets_.assign(ni + 1, 0);
    for (LocalId i = 0; i < ni; ++i) {
      VertexId gid = frag.gids_[i];
      if (is_border[gid]) {
        frag.border_[i] = 1;
        ++frag.num_border_;
      }
      frag.mirror_offsets_[i + 1] =
          frag.mirror_offsets_[i] + mirrors_by_gid[gid].size();
    }
    frag.mirror_frags_.resize(frag.mirror_offsets_[ni]);
    for (LocalId i = 0; i < ni; ++i) {
      std::copy(mirrors_by_gid[frag.gids_[i]].begin(),
                mirrors_by_gid[frag.gids_[i]].end(),
                frag.mirror_frags_.begin() + frag.mirror_offsets_[i]);
    }

    // Routing plan, part 2: owner routes of this fragment's outer vertices.
    // The owner tables are global, so this needs no other fragment.
    frag.outer_owner_frag_.resize(frag.num_outer());
    frag.outer_owner_lid_.resize(frag.num_outer());
    for (LocalId i = ni; i < num_local; ++i) {
      VertexId gid = frag.gids_[i];
      frag.outer_owner_frag_[i - ni] = assignment[gid];
      frag.outer_owner_lid_[i - ni] = (*owner_lid)[gid];
    }
  }

  // Routing plan, part 3: destination-local ids of mirror copies. A mirror
  // of gid inside fragment m sits in m's (sorted) outer block, so its local
  // id there is only known once every fragment's vertex list exists —
  // resolved here, once, so the per-superstep flush never hashes.
  for (FragmentId f = 0; f < num_fragments; ++f) {
    Fragment& frag = out.fragments[f];
    frag.mirror_dst_lids_.resize(frag.mirror_frags_.size());
    size_t k = 0;
    for (LocalId i = 0; i < frag.num_inner_; ++i) {
      VertexId gid = frag.gids_[i];
      for (; k < frag.mirror_offsets_[i + 1]; ++k) {
        const Fragment& dst = out.fragments[frag.mirror_frags_[k]];
        frag.mirror_dst_lids_[k] = dst.indexer_.Find(gid);
      }
    }
  }
  return out;
}

}  // namespace grape
