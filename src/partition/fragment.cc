#include "partition/fragment.h"

#include <algorithm>
#include <cstdint>
#include <string>
#include <unordered_set>
#include <utility>

namespace grape {

namespace {

// Fragment wire format (see Fragment::EncodeTo). Versioned so a mixed
// cluster fails loudly instead of misparsing.
constexpr uint32_t kFragmentMagic = 0x47524647;  // "GFRG"
constexpr uint32_t kFragmentVersion = 1;

/// size_t CSR offsets travel as explicit u64s: the wire format must not
/// depend on the host's size_t width.
void EncodeOffsets(Encoder& enc, const std::vector<size_t>& offsets) {
  enc.WriteVarint(offsets.size());
  for (size_t v : offsets) enc.WriteU64(static_cast<uint64_t>(v));
}

Status DecodeOffsets(Decoder& dec, std::vector<size_t>* out) {
  uint64_t n = 0;
  GRAPE_RETURN_NOT_OK(dec.ReadVarint(&n));
  if (n > dec.Remaining() / sizeof(uint64_t)) {
    return Status::Corruption("offset table extends past end of buffer");
  }
  out->clear();
  out->reserve(n);
  for (uint64_t i = 0; i < n; ++i) {
    uint64_t v = 0;
    GRAPE_RETURN_NOT_OK(dec.ReadU64(&v));
    out->push_back(static_cast<size_t>(v));
  }
  return Status::OK();
}

/// FragNeighbor has padding, so adjacency ships as three parallel pod
/// arrays (deterministic bytes, no uninitialized padding on the wire).
void EncodeNeighbors(Encoder& enc, const std::vector<FragNeighbor>& nbrs) {
  enc.WriteVarint(nbrs.size());
  for (const FragNeighbor& nb : nbrs) enc.WritePod(nb.local);
  for (const FragNeighbor& nb : nbrs) enc.WritePod(nb.weight);
  for (const FragNeighbor& nb : nbrs) enc.WritePod(nb.label);
}

Status DecodeNeighbors(Decoder& dec, std::vector<FragNeighbor>* out) {
  uint64_t n = 0;
  GRAPE_RETURN_NOT_OK(dec.ReadVarint(&n));
  constexpr size_t kWireBytes =
      sizeof(LocalId) + sizeof(EdgeWeight) + sizeof(Label);
  if (n > dec.Remaining() / kWireBytes) {
    return Status::Corruption("neighbor table extends past end of buffer");
  }
  out->assign(n, FragNeighbor{});
  for (uint64_t i = 0; i < n; ++i) {
    GRAPE_RETURN_NOT_OK(dec.ReadPod(&(*out)[i].local));
  }
  for (uint64_t i = 0; i < n; ++i) {
    GRAPE_RETURN_NOT_OK(dec.ReadPod(&(*out)[i].weight));
  }
  for (uint64_t i = 0; i < n; ++i) {
    GRAPE_RETURN_NOT_OK(dec.ReadPod(&(*out)[i].label));
  }
  return Status::OK();
}

/// One CSR's structural invariants: offsets cover every local vertex,
/// start at zero, never decrease, end exactly at the adjacency size, and
/// every adjacency entry stays inside the local id space.
Status ValidateCsr(const char* what, const std::vector<size_t>& offsets,
                   const std::vector<FragNeighbor>& nbrs, size_t num_local) {
  if (offsets.size() != num_local + 1) {
    return Status::Corruption(std::string(what) + " offsets sized " +
                              std::to_string(offsets.size()) + " for " +
                              std::to_string(num_local) + " local vertices");
  }
  if (offsets.front() != 0 || offsets.back() != nbrs.size()) {
    return Status::Corruption(std::string(what) +
                              " offsets do not frame the adjacency");
  }
  for (size_t i = 0; i + 1 < offsets.size(); ++i) {
    if (offsets[i] > offsets[i + 1]) {
      return Status::Corruption(std::string(what) +
                                " offsets are not monotone");
    }
  }
  for (const FragNeighbor& nb : nbrs) {
    if (nb.local >= num_local) {
      return Status::Corruption(std::string(what) +
                                " adjacency references local id " +
                                std::to_string(nb.local) + " outside " +
                                std::to_string(num_local) + " vertices");
    }
  }
  return Status::OK();
}

}  // namespace

void Fragment::EncodeTo(Encoder& enc) const {
  enc.WriteU32(kFragmentMagic);
  enc.WriteU32(kFragmentVersion);
  enc.WriteU32(fid_);
  enc.WriteU32(num_fragments_);
  enc.WriteU32(total_vertices_);
  enc.WriteU8(directed_ ? 1 : 0);
  enc.WriteU32(num_inner_);
  enc.WriteU32(num_border_);
  enc.WritePodVector(gids_);
  EncodeOffsets(enc, out_offsets_);
  EncodeNeighbors(enc, out_neighbors_);
  if (directed_) {
    EncodeOffsets(enc, in_offsets_);
    EncodeNeighbors(enc, in_neighbors_);
  }
  enc.WritePodVector(labels_);
  enc.WritePodVector(border_);
  EncodeOffsets(enc, mirror_offsets_);
  enc.WritePodVector(mirror_frags_);
  enc.WritePodVector(mirror_dst_lids_);
  enc.WritePodVector(outer_owner_frag_);
  enc.WritePodVector(outer_owner_lid_);
  enc.WritePodVector(*owner_);
  enc.WritePodVector(*owner_lid_);
}

Status Fragment::DecodeFrom(Decoder& dec, Fragment* out) {
  uint32_t magic = 0, version = 0;
  GRAPE_RETURN_NOT_OK(dec.ReadU32(&magic));
  GRAPE_RETURN_NOT_OK(dec.ReadU32(&version));
  if (magic != kFragmentMagic) {
    return Status::Corruption("not a serialized fragment (bad magic)");
  }
  if (version != kFragmentVersion) {
    return Status::Corruption("fragment wire version " +
                              std::to_string(version) + " (expected " +
                              std::to_string(kFragmentVersion) + ")");
  }

  // Decode into a scratch fragment; `out` is only assigned after every
  // invariant holds, so a corrupt buffer can never be half-accepted.
  Fragment f;
  uint8_t directed = 0;
  GRAPE_RETURN_NOT_OK(dec.ReadU32(&f.fid_));
  GRAPE_RETURN_NOT_OK(dec.ReadU32(&f.num_fragments_));
  GRAPE_RETURN_NOT_OK(dec.ReadU32(&f.total_vertices_));
  GRAPE_RETURN_NOT_OK(dec.ReadU8(&directed));
  f.directed_ = directed != 0;
  GRAPE_RETURN_NOT_OK(dec.ReadU32(&f.num_inner_));
  GRAPE_RETURN_NOT_OK(dec.ReadU32(&f.num_border_));
  GRAPE_RETURN_NOT_OK(dec.ReadPodVector(&f.gids_));
  GRAPE_RETURN_NOT_OK(DecodeOffsets(dec, &f.out_offsets_));
  GRAPE_RETURN_NOT_OK(DecodeNeighbors(dec, &f.out_neighbors_));
  if (f.directed_) {
    GRAPE_RETURN_NOT_OK(DecodeOffsets(dec, &f.in_offsets_));
    GRAPE_RETURN_NOT_OK(DecodeNeighbors(dec, &f.in_neighbors_));
  }
  GRAPE_RETURN_NOT_OK(dec.ReadPodVector(&f.labels_));
  GRAPE_RETURN_NOT_OK(dec.ReadPodVector(&f.border_));
  GRAPE_RETURN_NOT_OK(DecodeOffsets(dec, &f.mirror_offsets_));
  GRAPE_RETURN_NOT_OK(dec.ReadPodVector(&f.mirror_frags_));
  GRAPE_RETURN_NOT_OK(dec.ReadPodVector(&f.mirror_dst_lids_));
  GRAPE_RETURN_NOT_OK(dec.ReadPodVector(&f.outer_owner_frag_));
  GRAPE_RETURN_NOT_OK(dec.ReadPodVector(&f.outer_owner_lid_));
  auto owner = std::make_shared<std::vector<FragmentId>>();
  auto owner_lid = std::make_shared<std::vector<LocalId>>();
  GRAPE_RETURN_NOT_OK(dec.ReadPodVector(owner.get()));
  GRAPE_RETURN_NOT_OK(dec.ReadPodVector(owner_lid.get()));
  f.owner_ = std::move(owner);
  f.owner_lid_ = std::move(owner_lid);

  // Structural validation. A decoded fragment is fed straight to app
  // code, so every cross-reference must be in range.
  if (f.num_fragments_ == 0 || f.fid_ >= f.num_fragments_) {
    return Status::Corruption("fragment id " + std::to_string(f.fid_) +
                              " outside a world of " +
                              std::to_string(f.num_fragments_));
  }
  const size_t num_local = f.gids_.size();
  if (f.num_inner_ > num_local) {
    return Status::Corruption("num_inner " + std::to_string(f.num_inner_) +
                              " exceeds " + std::to_string(num_local) +
                              " local vertices");
  }
  for (VertexId gid : f.gids_) {
    if (gid >= f.total_vertices_) {
      return Status::Corruption("fragment lists gid " + std::to_string(gid) +
                                " outside the graph");
    }
  }
  GRAPE_RETURN_NOT_OK(
      ValidateCsr("out", f.out_offsets_, f.out_neighbors_, num_local));
  if (f.directed_) {
    GRAPE_RETURN_NOT_OK(
        ValidateCsr("in", f.in_offsets_, f.in_neighbors_, num_local));
  }
  if (!f.labels_.empty() && f.labels_.size() != num_local) {
    return Status::Corruption("label table sized " +
                              std::to_string(f.labels_.size()) + " for " +
                              std::to_string(num_local) + " vertices");
  }
  if (f.border_.size() != f.num_inner_) {
    return Status::Corruption("border table sized " +
                              std::to_string(f.border_.size()) + " for " +
                              std::to_string(f.num_inner_) +
                              " inner vertices");
  }
  LocalId border_count = 0;
  for (uint8_t b : f.border_) {
    if (b > 1) return Status::Corruption("border flags must be 0/1");
    border_count += b;
  }
  if (border_count != f.num_border_) {
    return Status::Corruption("num_border " + std::to_string(f.num_border_) +
                              " disagrees with " +
                              std::to_string(border_count) +
                              " flagged border vertices");
  }
  if (f.mirror_offsets_.size() != static_cast<size_t>(f.num_inner_) + 1 ||
      f.mirror_offsets_.front() != 0 ||
      f.mirror_offsets_.back() != f.mirror_frags_.size() ||
      f.mirror_frags_.size() != f.mirror_dst_lids_.size()) {
    return Status::Corruption("mirror routing tables do not line up");
  }
  for (size_t i = 0; i + 1 < f.mirror_offsets_.size(); ++i) {
    if (f.mirror_offsets_[i] > f.mirror_offsets_[i + 1]) {
      return Status::Corruption("mirror offsets are not monotone");
    }
  }
  for (FragmentId m : f.mirror_frags_) {
    if (m >= f.num_fragments_) {
      return Status::Corruption("mirror route names fragment " +
                                std::to_string(m) + " outside the world");
    }
  }
  const size_t num_outer = num_local - f.num_inner_;
  if (f.outer_owner_frag_.size() != num_outer ||
      f.outer_owner_lid_.size() != num_outer) {
    return Status::Corruption("outer owner routes sized " +
                              std::to_string(f.outer_owner_frag_.size()) +
                              "/" +
                              std::to_string(f.outer_owner_lid_.size()) +
                              " for " + std::to_string(num_outer) +
                              " outer vertices");
  }
  for (FragmentId o : f.outer_owner_frag_) {
    if (o >= f.num_fragments_) {
      return Status::Corruption("outer owner route names fragment " +
                                std::to_string(o) + " outside the world");
    }
  }
  if (f.owner_->size() != f.total_vertices_ ||
      f.owner_lid_->size() != f.total_vertices_) {
    return Status::Corruption("shared owner tables sized " +
                              std::to_string(f.owner_->size()) + "/" +
                              std::to_string(f.owner_lid_->size()) +
                              " for " + std::to_string(f.total_vertices_) +
                              " vertices");
  }
  for (FragmentId o : *f.owner_) {
    if (o >= f.num_fragments_) {
      return Status::Corruption("owner table names fragment " +
                                std::to_string(o) + " outside the world");
    }
  }

  // Rebuild the gid->lid indexer (insertion order == local id order).
  for (VertexId gid : f.gids_) f.indexer_.GetOrInsert(gid);
  if (f.indexer_.size() != f.gids_.size()) {
    return Status::Corruption("fragment lists a duplicate gid");
  }

  *out = std::move(f);
  return Status::OK();
}

std::vector<LocalId> FragmentBuilder::OwnerLidTable(
    const std::vector<FragmentId>& owner, FragmentId num_fragments) {
  // Inner local ids are positions in each fragment's ascending-gid inner
  // list, so one counting pass over ascending gids yields every vertex's
  // local id at its owner.
  std::vector<LocalId> table(owner.size(), kInvalidLocal);
  std::vector<LocalId> next(num_fragments, 0);
  for (VertexId v = 0; v < owner.size(); ++v) {
    table[v] = next[owner[v]]++;
  }
  return table;
}

Result<Fragment> FragmentBuilder::AssembleLocal(
    const Graph& graph, std::shared_ptr<const std::vector<FragmentId>> owner,
    std::shared_ptr<const std::vector<LocalId>> owner_lid, FragmentId fid,
    FragmentId num_fragments) {
  const VertexId n = graph.num_vertices();
  if (num_fragments == 0) {
    return Status::InvalidArgument("num_fragments must be positive");
  }
  if (fid >= num_fragments) {
    return Status::InvalidArgument("fragment id outside the world");
  }
  if (!owner || owner->size() != n || !owner_lid || owner_lid->size() != n) {
    return Status::InvalidArgument("owner tables are not sized to the graph");
  }
  const std::vector<FragmentId>& assignment = *owner;

  Fragment frag;
  frag.fid_ = fid;
  frag.num_fragments_ = num_fragments;
  frag.total_vertices_ = n;
  frag.directed_ = graph.is_directed();
  frag.owner_ = owner;
  frag.owner_lid_ = owner_lid;

  // Inner vertices: ascending gid for deterministic local ids.
  std::vector<VertexId> inner;
  for (VertexId v = 0; v < n; ++v) {
    if (assignment[v] == fid) inner.push_back(v);
  }
  frag.num_inner_ = static_cast<LocalId>(inner.size());

  // Outer set, border flags, and mirror lists — all derivable from the
  // in/out rows of this fragment's inner vertices alone (undirected rows
  // carry both directions, so InNeighbors aliasing OutNeighbors is enough):
  //   - outer: foreign endpoints adjacent to the inner set;
  //   - border: inner vertices with at least one foreign neighbor;
  //   - mirrors of inner gid: the owners of its foreign neighbors, i.e.
  //     exactly the fragments holding an outer copy of gid.
  std::unordered_set<VertexId> outer;
  std::vector<std::vector<FragmentId>> mirrors(inner.size());
  frag.border_.assign(frag.num_inner_, 0);
  frag.num_border_ = 0;
  for (size_t i = 0; i < inner.size(); ++i) {
    const VertexId gid = inner[i];
    auto visit = [&](const Neighbor& nb) {
      if (assignment[nb.vertex] == fid) return;
      outer.insert(nb.vertex);
      mirrors[i].push_back(assignment[nb.vertex]);
    };
    for (const Neighbor& nb : graph.OutNeighbors(gid)) visit(nb);
    if (graph.is_directed()) {
      for (const Neighbor& nb : graph.InNeighbors(gid)) visit(nb);
    }
    auto& m = mirrors[i];
    std::sort(m.begin(), m.end());
    m.erase(std::unique(m.begin(), m.end()), m.end());
    if (!m.empty()) {
      frag.border_[i] = 1;
      ++frag.num_border_;
    }
  }

  frag.gids_ = std::move(inner);
  std::vector<VertexId> outer_sorted(outer.begin(), outer.end());
  std::sort(outer_sorted.begin(), outer_sorted.end());
  frag.gids_.insert(frag.gids_.end(), outer_sorted.begin(),
                    outer_sorted.end());
  for (VertexId gid : frag.gids_) frag.indexer_.GetOrInsert(gid);

  const LocalId num_local = frag.num_local();
  const LocalId ni = frag.num_inner_;

  // Local out-CSR. Inner rows: full global out-adjacency. Outer rows:
  // edges from the outer vertex into this fragment's inner set (derived
  // from the in-edges of inner vertices), so apps can navigate both
  // directions across the border.
  frag.out_offsets_.assign(num_local + 1, 0);
  for (LocalId i = 0; i < ni; ++i) {
    frag.out_offsets_[i + 1] = graph.OutDegree(frag.gids_[i]);
  }
  if (graph.is_directed()) {
    for (LocalId i = 0; i < ni; ++i) {
      for (const Neighbor& nb : graph.InNeighbors(frag.gids_[i])) {
        LocalId src = frag.indexer_.Find(nb.vertex);
        if (src != kInvalidLocal && src >= ni) frag.out_offsets_[src + 1]++;
      }
    }
  } else {
    // Undirected: outer rows list neighbours inside the inner set.
    for (LocalId i = 0; i < ni; ++i) {
      for (const Neighbor& nb : graph.OutNeighbors(frag.gids_[i])) {
        LocalId other = frag.indexer_.Find(nb.vertex);
        if (other != kInvalidLocal && other >= ni) {
          frag.out_offsets_[other + 1]++;
        }
      }
    }
  }
  for (LocalId i = 0; i < num_local; ++i) {
    frag.out_offsets_[i + 1] += frag.out_offsets_[i];
  }
  frag.out_neighbors_.resize(frag.out_offsets_[num_local]);
  {
    std::vector<size_t> cursor(frag.out_offsets_.begin(),
                               frag.out_offsets_.end() - 1);
    for (LocalId i = 0; i < ni; ++i) {
      for (const Neighbor& nb : graph.OutNeighbors(frag.gids_[i])) {
        LocalId target = frag.indexer_.Find(nb.vertex);
        frag.out_neighbors_[cursor[i]++] =
            FragNeighbor{target, nb.weight, nb.label};
      }
    }
    if (graph.is_directed()) {
      for (LocalId i = 0; i < ni; ++i) {
        for (const Neighbor& nb : graph.InNeighbors(frag.gids_[i])) {
          LocalId src = frag.indexer_.Find(nb.vertex);
          if (src != kInvalidLocal && src >= ni) {
            frag.out_neighbors_[cursor[src]++] =
                FragNeighbor{i, nb.weight, nb.label};
          }
        }
      }
    } else {
      for (LocalId i = 0; i < ni; ++i) {
        for (const Neighbor& nb : graph.OutNeighbors(frag.gids_[i])) {
          LocalId other = frag.indexer_.Find(nb.vertex);
          if (other != kInvalidLocal && other >= ni) {
            frag.out_neighbors_[cursor[other]++] =
                FragNeighbor{i, nb.weight, nb.label};
          }
        }
      }
    }
  }

  if (graph.is_directed()) {
    // Local in-CSR. Inner rows: full global in-adjacency. Outer rows:
    // in-edges from the inner set (reverse of inner out-edges that cross).
    frag.in_offsets_.assign(num_local + 1, 0);
    for (LocalId i = 0; i < ni; ++i) {
      frag.in_offsets_[i + 1] = graph.InDegree(frag.gids_[i]);
    }
    for (LocalId i = 0; i < ni; ++i) {
      for (const Neighbor& nb : graph.OutNeighbors(frag.gids_[i])) {
        LocalId dst = frag.indexer_.Find(nb.vertex);
        if (dst != kInvalidLocal && dst >= ni) frag.in_offsets_[dst + 1]++;
      }
    }
    for (LocalId i = 0; i < num_local; ++i) {
      frag.in_offsets_[i + 1] += frag.in_offsets_[i];
    }
    frag.in_neighbors_.resize(frag.in_offsets_[num_local]);
    std::vector<size_t> cursor(frag.in_offsets_.begin(),
                               frag.in_offsets_.end() - 1);
    for (LocalId i = 0; i < ni; ++i) {
      for (const Neighbor& nb : graph.InNeighbors(frag.gids_[i])) {
        LocalId source = frag.indexer_.Find(nb.vertex);
        frag.in_neighbors_[cursor[i]++] =
            FragNeighbor{source, nb.weight, nb.label};
      }
    }
    for (LocalId i = 0; i < ni; ++i) {
      for (const Neighbor& nb : graph.OutNeighbors(frag.gids_[i])) {
        LocalId dst = frag.indexer_.Find(nb.vertex);
        if (dst != kInvalidLocal && dst >= ni) {
          frag.in_neighbors_[cursor[dst]++] =
              FragNeighbor{i, nb.weight, nb.label};
        }
      }
    }
  }

  if (graph.has_vertex_labels()) {
    frag.labels_.resize(num_local);
    for (LocalId i = 0; i < num_local; ++i) {
      frag.labels_[i] = graph.vertex_label(frag.gids_[i]);
    }
  }

  frag.mirror_offsets_.assign(ni + 1, 0);
  for (LocalId i = 0; i < ni; ++i) {
    frag.mirror_offsets_[i + 1] = frag.mirror_offsets_[i] + mirrors[i].size();
  }
  frag.mirror_frags_.resize(frag.mirror_offsets_[ni]);
  for (LocalId i = 0; i < ni; ++i) {
    std::copy(mirrors[i].begin(), mirrors[i].end(),
              frag.mirror_frags_.begin() + frag.mirror_offsets_[i]);
  }
  // Destination-local ids are only known to the mirroring fragments;
  // resolved by the exchange half (ApplyMirrorAnswers).
  frag.mirror_dst_lids_.assign(frag.mirror_frags_.size(), kInvalidLocal);

  // Routing plan, part 2: owner routes of this fragment's outer vertices.
  // The owner tables are global, so this needs no other fragment.
  frag.outer_owner_frag_.resize(frag.num_outer());
  frag.outer_owner_lid_.resize(frag.num_outer());
  for (LocalId i = ni; i < num_local; ++i) {
    VertexId gid = frag.gids_[i];
    frag.outer_owner_frag_[i - ni] = assignment[gid];
    frag.outer_owner_lid_[i - ni] = (*owner_lid)[gid];
  }
  return frag;
}

std::vector<std::vector<MirrorLidEntry>> FragmentBuilder::MirrorAnswers(
    const Fragment& frag) {
  std::vector<std::vector<MirrorLidEntry>> answers(frag.num_fragments());
  for (LocalId i = frag.num_inner_; i < frag.num_local(); ++i) {
    answers[frag.outer_owner_frag_[i - frag.num_inner_]].push_back(
        MirrorLidEntry{frag.gids_[i], i});
  }
  return answers;
}

Status FragmentBuilder::ApplyMirrorAnswers(
    Fragment* frag, FragmentId from,
    const std::vector<MirrorLidEntry>& answers) {
  for (const MirrorLidEntry& entry : answers) {
    if (entry.gid >= frag->total_vertices_ ||
        (*frag->owner_)[entry.gid] != frag->fid_) {
      return Status::Corruption("mirror answer for gid " +
                                std::to_string(entry.gid) +
                                " which fragment " +
                                std::to_string(frag->fid_) + " does not own");
    }
    const LocalId i = (*frag->owner_lid_)[entry.gid];
    const auto begin = frag->mirror_frags_.begin() + frag->mirror_offsets_[i];
    const auto end = frag->mirror_frags_.begin() + frag->mirror_offsets_[i + 1];
    const auto it = std::lower_bound(begin, end, from);
    if (it == end || *it != from) {
      return Status::Corruption(
          "fragment " + std::to_string(from) + " answered for gid " +
          std::to_string(entry.gid) + " it is not known to mirror");
    }
    frag->mirror_dst_lids_[it - frag->mirror_frags_.begin()] = entry.lid;
  }
  return Status::OK();
}

Status FragmentBuilder::CheckMirrorsResolved(const Fragment& frag) {
  for (size_t k = 0; k < frag.mirror_dst_lids_.size(); ++k) {
    if (frag.mirror_dst_lids_[k] == kInvalidLocal) {
      return Status::Corruption("fragment " + std::to_string(frag.fid_) +
                                " mirror route " + std::to_string(k) +
                                " (to fragment " +
                                std::to_string(frag.mirror_frags_[k]) +
                                ") was never answered");
    }
  }
  return Status::OK();
}

std::vector<Edge> FragmentBuilder::MaterializeIncidentEdges(
    const Fragment& frag) {
  std::vector<Edge> edges;
  edges.reserve(frag.num_edges());
  const LocalId ni = frag.num_inner_;
  if (frag.directed_) {
    for (LocalId i = 0; i < ni; ++i) {
      const VertexId g = frag.gids_[i];
      // Inner out-rows are the full global out-adjacency; inner in-rows
      // add the arcs arriving from outer sources (inner sources were
      // already covered by their own out-rows).
      for (const FragNeighbor& nb : frag.OutNeighbors(i)) {
        edges.push_back(Edge{g, frag.gids_[nb.local], nb.weight, nb.label});
      }
      for (const FragNeighbor& nb : frag.InNeighbors(i)) {
        if (nb.local >= ni) {
          edges.push_back(Edge{frag.gids_[nb.local], g, nb.weight, nb.label});
        }
      }
    }
  } else {
    for (LocalId i = 0; i < ni; ++i) {
      const VertexId g = frag.gids_[i];
      for (const FragNeighbor& nb : frag.OutNeighbors(i)) {
        // Inner-inner edges appear in both endpoints' rows; emit from the
        // lower gid only. Inner-outer edges have one inner endpoint.
        if (nb.local < ni && frag.gids_[nb.local] < g) continue;
        edges.push_back(Edge{g, frag.gids_[nb.local], nb.weight, nb.label});
      }
    }
  }
  return edges;
}

Result<Fragment> FragmentBuilder::MutateFragment(const Fragment& frag,
                                                 const MutationBatch& batch) {
  GRAPE_RETURN_NOT_OK(batch.Validate(frag.total_vertices_));
  std::vector<Edge> edges = MaterializeIncidentEdges(frag);
  const FragmentId fid = frag.fid_;
  const std::vector<FragmentId>& owner = *frag.owner_;
  ApplyMutationsToEdges(&edges, batch, frag.directed_, [&](const Edge& e) {
    return owner[e.src] == fid || owner[e.dst] == fid;
  });

  GraphBuilder builder(frag.directed_);
  builder.ReserveEdges(edges.size());
  for (const Edge& e : edges) builder.AddEdge(e);
  if (!frag.labels_.empty()) {
    for (LocalId i = 0; i < frag.num_local(); ++i) {
      builder.SetVertexLabel(frag.gids_[i], frag.labels_[i]);
    }
  }
  if (frag.total_vertices_ > 0) builder.AddVertex(frag.total_vertices_ - 1);
  auto local = std::move(builder).Build(frag.total_vertices_);
  if (!local.ok()) return local.status();
  return AssembleLocal(*local, frag.owner_, frag.owner_lid_, fid,
                       frag.num_fragments_);
}

Status FragmentBuilder::MutateFragmentedGraph(FragmentedGraph* fg,
                                              const MutationBatch& batch) {
  const FragmentId n = fg->num_fragments();
  std::vector<Fragment> rebuilt;
  rebuilt.reserve(n);
  for (const Fragment& frag : fg->fragments) {
    auto f = MutateFragment(frag, batch);
    if (!f.ok()) return f.status();
    rebuilt.push_back(std::move(f).value());
  }
  for (FragmentId m = 0; m < n; ++m) {
    auto answers = MirrorAnswers(rebuilt[m]);
    for (FragmentId f = 0; f < n; ++f) {
      if (f == m) continue;
      GRAPE_RETURN_NOT_OK(ApplyMirrorAnswers(&rebuilt[f], m, answers[f]));
    }
  }
  for (const Fragment& frag : rebuilt) {
    GRAPE_RETURN_NOT_OK(CheckMirrorsResolved(frag));
  }
  // Element-wise: the vector's buffer (and thus each Fragment's address)
  // must survive — engines hold `const Fragment*` into it across queries.
  for (FragmentId f = 0; f < n; ++f) {
    fg->fragments[f] = std::move(rebuilt[f]);
  }
  return Status::OK();
}

Result<FragmentedGraph> FragmentBuilder::Build(
    const Graph& graph, const std::vector<FragmentId>& assignment,
    FragmentId num_fragments) {
  const VertexId n = graph.num_vertices();
  if (assignment.size() != n) {
    return Status::InvalidArgument("assignment size != vertex count");
  }
  if (num_fragments == 0) {
    return Status::InvalidArgument("num_fragments must be positive");
  }
  for (FragmentId f : assignment) {
    if (f >= num_fragments) {
      return Status::InvalidArgument("assignment references unknown fragment");
    }
  }

  FragmentedGraph out;
  out.directed = graph.is_directed();
  out.total_vertices = n;
  out.owner = std::make_shared<const std::vector<FragmentId>>(assignment);
  out.owner_lid = std::make_shared<const std::vector<LocalId>>(
      OwnerLidTable(assignment, num_fragments));

  // The coordinator path is the distributed protocol run in one process:
  // assemble every fragment locally against the whole graph, then exchange
  // the mirror-placement answers that finish the routing plan. Running on
  // the same halves is what keeps the two paths bit-identical.
  out.fragments.reserve(num_fragments);
  for (FragmentId f = 0; f < num_fragments; ++f) {
    auto frag =
        AssembleLocal(graph, out.owner, out.owner_lid, f, num_fragments);
    if (!frag.ok()) return frag.status();
    out.fragments.push_back(std::move(frag).value());
  }
  for (FragmentId m = 0; m < num_fragments; ++m) {
    auto answers = MirrorAnswers(out.fragments[m]);
    for (FragmentId f = 0; f < num_fragments; ++f) {
      if (f == m) continue;
      GRAPE_RETURN_NOT_OK(
          ApplyMirrorAnswers(&out.fragments[f], m, answers[f]));
    }
  }
  for (const Fragment& frag : out.fragments) {
    GRAPE_RETURN_NOT_OK(CheckMirrorsResolved(frag));
  }
  return out;
}

}  // namespace grape
