#include "partition/advisor.h"

#include <cmath>
#include <cstdio>

namespace grape {

std::string GraphProfile::ToString() const {
  char buf[160];
  std::snprintf(buf, sizeof(buf),
                "|V|=%u |E|=%zu avg_deg=%.1f degree_cv=%.2f id_locality=%.2f",
                num_vertices, num_edges, avg_degree, degree_cv, id_locality);
  return buf;
}

GraphProfile ProfileGraph(const Graph& graph) {
  GraphProfile p;
  p.num_vertices = graph.num_vertices();
  p.num_edges = graph.num_edges();
  if (p.num_vertices == 0) return p;
  p.avg_degree =
      static_cast<double>(p.num_edges) / static_cast<double>(p.num_vertices);

  double sum_sq = 0;
  for (VertexId v = 0; v < p.num_vertices; ++v) {
    double d = static_cast<double>(graph.OutDegree(v)) - p.avg_degree;
    sum_sq += d * d;
  }
  double stddev = std::sqrt(sum_sq / p.num_vertices);
  p.degree_cv = p.avg_degree > 0 ? stddev / p.avg_degree : 0;

  const auto window = static_cast<VertexId>(
      2.0 * std::sqrt(static_cast<double>(p.num_vertices)) + 1);
  size_t local_edges = 0;
  for (VertexId v = 0; v < p.num_vertices; ++v) {
    for (const Neighbor& nb : graph.OutNeighbors(v)) {
      VertexId gap = nb.vertex > v ? nb.vertex - v : v - nb.vertex;
      if (gap <= window) ++local_edges;
    }
  }
  p.id_locality = p.num_edges > 0
                      ? static_cast<double>(local_edges) /
                            static_cast<double>(p.num_edges)
                      : 0;
  return p;
}

PartitionAdvice AdvisePartitioner(const GraphProfile& p) {
  if (p.num_vertices < 4096) {
    return {"hash",
            "graph is small: partition quality cannot pay for itself"};
  }
  if (p.id_locality > 0.8 && p.degree_cv < 0.5) {
    return {"grid2d",
            "ids encode spatial locality with uniform degrees (lattice/road "
            "regime): 2-D tiling gives near-minimal cuts for free"};
  }
  if (p.degree_cv < 1.5) {
    return {"metis",
            "moderate skew: the offline multilevel partitioner can exploit "
            "community structure"};
  }
  return {"ldg",
          "heavy-tailed degrees: offline coarsening degrades, so use the "
          "streaming greedy partitioner"};
}

PartitionAdvice AdvisePartitioner(const Graph& graph) {
  return AdvisePartitioner(ProfileGraph(graph));
}

}  // namespace grape
