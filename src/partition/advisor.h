#ifndef GRAPE_PARTITION_ADVISOR_H_
#define GRAPE_PARTITION_ADVISOR_H_

#include <string>

#include "graph/graph.h"

namespace grape {

/// Structural statistics the advisor bases its recommendation on.
struct GraphProfile {
  VertexId num_vertices = 0;
  size_t num_edges = 0;
  double avg_degree = 0;
  /// Coefficient of variation of the degree distribution (skew measure;
  /// power-law graphs score >> 1, lattices ~0).
  double degree_cv = 0;
  /// Fraction of edges whose endpoint ids are within ~2*sqrt(|V|) of each
  /// other — high for row-major lattices and id-clustered graphs.
  double id_locality = 0;

  std::string ToString() const;
};

struct PartitionAdvice {
  std::string strategy;
  std::string rationale;
};

/// Computes the profile in one pass over the edges.
GraphProfile ProfileGraph(const Graph& graph);

/// The Load Balancer role of Fig. 2: picks a partition strategy from the
/// workload's structure — spatial tiling for lattice-like graphs, the
/// multilevel partitioner for community-rich graphs worth an offline cut,
/// and cheap hashing for small or hopelessly skewed inputs.
PartitionAdvice AdvisePartitioner(const Graph& graph);
PartitionAdvice AdvisePartitioner(const GraphProfile& profile);

}  // namespace grape

#endif  // GRAPE_PARTITION_ADVISOR_H_
