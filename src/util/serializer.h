#ifndef GRAPE_UTIL_SERIALIZER_H_
#define GRAPE_UTIL_SERIALIZER_H_

#include <cstdint>
#include <cstring>
#include <string>
#include <type_traits>
#include <vector>

#include "util/status.h"

namespace grape {

/// Append-only binary encoder. All inter-worker messages in the runtime are
/// physically serialized through Encoder/Decoder, which is what makes the
/// communication-volume numbers reported by the benchmarks honest.
class Encoder {
 public:
  Encoder() = default;

  /// Adopts a recycled buffer (e.g. from a BufferPool): the encoder starts
  /// logically empty but keeps the vector's capacity, so steady-state reuse
  /// encodes without heap allocation.
  explicit Encoder(std::vector<uint8_t>&& recycled) : buf_(std::move(recycled)) {
    buf_.clear();
  }

  void WriteU8(uint8_t v) { buf_.push_back(v); }

  /// Little-endian fixed-width integers.
  void WriteU32(uint32_t v) { AppendRaw(&v, sizeof(v)); }
  void WriteU64(uint64_t v) { AppendRaw(&v, sizeof(v)); }
  void WriteI32(int32_t v) { AppendRaw(&v, sizeof(v)); }
  void WriteI64(int64_t v) { AppendRaw(&v, sizeof(v)); }
  void WriteDouble(double v) { AppendRaw(&v, sizeof(v)); }
  void WriteFloat(float v) { AppendRaw(&v, sizeof(v)); }
  void WriteBool(bool v) { WriteU8(v ? 1 : 0); }

  /// LEB128 variable-length encoding; small values dominate graph messages
  /// (local degrees, hop counts), so this is the default for counters.
  void WriteVarint(uint64_t v) {
    while (v >= 0x80) {
      buf_.push_back(static_cast<uint8_t>(v) | 0x80);
      v >>= 7;
    }
    buf_.push_back(static_cast<uint8_t>(v));
  }

  void WriteString(const std::string& s) {
    WriteVarint(s.size());
    AppendRaw(s.data(), s.size());
  }

  /// Any trivially-copyable value as raw little-endian bytes.
  template <typename T>
  void WritePod(const T& v) {
    static_assert(std::is_trivially_copyable_v<T>);
    AppendRaw(&v, sizeof(v));
  }

  /// Vector of trivially-copyable elements, length-prefixed.
  template <typename T>
  void WritePodVector(const std::vector<T>& v) {
    static_assert(std::is_trivially_copyable_v<T>);
    WriteVarint(v.size());
    AppendRaw(v.data(), v.size() * sizeof(T));
  }

  /// Unprefixed block of trivially-copyable elements: one memcpy, no
  /// per-element dispatch. The caller owns the framing (element count).
  template <typename T>
  void WritePodSpan(const T* data, size_t n) {
    static_assert(std::is_trivially_copyable_v<T>);
    AppendRaw(data, n * sizeof(T));
  }

  const std::vector<uint8_t>& buffer() const { return buf_; }
  std::vector<uint8_t> TakeBuffer() { return std::move(buf_); }
  size_t size() const { return buf_.size(); }
  void Clear() { buf_.clear(); }

 private:
  void AppendRaw(const void* data, size_t n) {
    const auto* p = static_cast<const uint8_t*>(data);
    buf_.insert(buf_.end(), p, p + n);
  }

  std::vector<uint8_t> buf_;
};

/// Bounds-checked reader over a byte buffer produced by Encoder. Every Read*
/// returns a Status so truncated or corrupt buffers surface as errors rather
/// than undefined behaviour.
class Decoder {
 public:
  Decoder(const uint8_t* data, size_t size) : data_(data), size_(size) {}
  explicit Decoder(const std::vector<uint8_t>& buf)
      : Decoder(buf.data(), buf.size()) {}

  Status ReadU8(uint8_t* out) { return ReadRaw(out, sizeof(*out)); }
  Status ReadU32(uint32_t* out) { return ReadRaw(out, sizeof(*out)); }
  Status ReadU64(uint64_t* out) { return ReadRaw(out, sizeof(*out)); }
  Status ReadI32(int32_t* out) { return ReadRaw(out, sizeof(*out)); }
  Status ReadI64(int64_t* out) { return ReadRaw(out, sizeof(*out)); }
  Status ReadDouble(double* out) { return ReadRaw(out, sizeof(*out)); }
  Status ReadFloat(float* out) { return ReadRaw(out, sizeof(*out)); }

  Status ReadBool(bool* out) {
    uint8_t b = 0;
    GRAPE_RETURN_NOT_OK(ReadU8(&b));
    *out = (b != 0);
    return Status::OK();
  }

  Status ReadVarint(uint64_t* out) {
    uint64_t result = 0;
    int shift = 0;
    while (true) {
      if (pos_ >= size_) {
        return Status::Corruption("varint extends past end of buffer");
      }
      uint8_t byte = data_[pos_++];
      if (shift >= 63 && byte > 1) {
        return Status::Corruption("varint overflows uint64");
      }
      result |= static_cast<uint64_t>(byte & 0x7f) << shift;
      if ((byte & 0x80) == 0) break;
      shift += 7;
    }
    *out = result;
    return Status::OK();
  }

  Status ReadString(std::string* out) {
    uint64_t n = 0;
    GRAPE_RETURN_NOT_OK(ReadVarint(&n));
    if (n > Remaining()) {
      return Status::Corruption("string extends past end of buffer");
    }
    out->assign(reinterpret_cast<const char*>(data_ + pos_), n);
    pos_ += n;
    return Status::OK();
  }

  template <typename T>
  Status ReadPod(T* out) {
    static_assert(std::is_trivially_copyable_v<T>);
    return ReadRaw(out, sizeof(*out));
  }

  /// Counterpart of WritePodSpan: fills `n` elements starting at `out` with
  /// one bounds-checked memcpy.
  template <typename T>
  Status ReadPodSpan(T* out, size_t n) {
    static_assert(std::is_trivially_copyable_v<T>);
    if (n > Remaining() / sizeof(T)) {
      return Status::Corruption("pod span extends past end of buffer");
    }
    return ReadRaw(out, n * sizeof(T));
  }

  template <typename T>
  Status ReadPodVector(std::vector<T>* out) {
    static_assert(std::is_trivially_copyable_v<T>);
    uint64_t n = 0;
    GRAPE_RETURN_NOT_OK(ReadVarint(&n));
    if (n * sizeof(T) > Remaining()) {
      return Status::Corruption("vector extends past end of buffer");
    }
    out->resize(n);
    std::memcpy(out->data(), data_ + pos_, n * sizeof(T));
    pos_ += n * sizeof(T);
    return Status::OK();
  }

  size_t Remaining() const { return size_ - pos_; }
  bool AtEnd() const { return pos_ == size_; }
  size_t position() const { return pos_; }

 private:
  Status ReadRaw(void* out, size_t n) {
    if (n > Remaining()) {
      return Status::Corruption("read past end of buffer");
    }
    std::memcpy(out, data_ + pos_, n);
    pos_ += n;
    return Status::OK();
  }

  const uint8_t* data_;
  size_t size_;
  size_t pos_ = 0;
};

}  // namespace grape

#endif  // GRAPE_UTIL_SERIALIZER_H_
