#ifndef GRAPE_UTIL_TIMER_H_
#define GRAPE_UTIL_TIMER_H_

#include <chrono>
#include <cstdint>

namespace grape {

/// Monotonic wall-clock timer with microsecond resolution.
class WallTimer {
 public:
  WallTimer() { Restart(); }

  void Restart() { start_ = Clock::now(); }

  /// Elapsed time since construction or the last Restart(), in seconds.
  double ElapsedSeconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  double ElapsedMillis() const { return ElapsedSeconds() * 1e3; }
  int64_t ElapsedMicros() const {
    return std::chrono::duration_cast<std::chrono::microseconds>(Clock::now() -
                                                                 start_)
        .count();
  }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

/// Accumulates elapsed time into a double (seconds) on destruction. Used to
/// attribute time to phases (e.g. PEval vs IncEval) without littering call
/// sites with timer arithmetic.
class ScopedTimer {
 public:
  explicit ScopedTimer(double* accumulator) : accumulator_(accumulator) {}
  ~ScopedTimer() { *accumulator_ += timer_.ElapsedSeconds(); }

  ScopedTimer(const ScopedTimer&) = delete;
  ScopedTimer& operator=(const ScopedTimer&) = delete;

 private:
  double* accumulator_;
  WallTimer timer_;
};

}  // namespace grape

#endif  // GRAPE_UTIL_TIMER_H_
