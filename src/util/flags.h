#ifndef GRAPE_UTIL_FLAGS_H_
#define GRAPE_UTIL_FLAGS_H_

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "util/status.h"

namespace grape {

/// Minimal command-line flag parser for the examples and benchmark
/// harnesses: `--name=value` or `--name value`; bare `--flag` sets a bool.
class FlagParser {
 public:
  /// Parses argv; unknown arguments without a leading "--" are collected as
  /// positional arguments.
  Status Parse(int argc, const char* const* argv);

  bool Has(const std::string& name) const;

  std::string GetString(const std::string& name,
                        const std::string& default_value) const;
  int64_t GetInt(const std::string& name, int64_t default_value) const;
  double GetDouble(const std::string& name, double default_value) const;
  bool GetBool(const std::string& name, bool default_value) const;

  const std::vector<std::string>& positional() const { return positional_; }

 private:
  std::map<std::string, std::string> values_;
  std::vector<std::string> positional_;
};

}  // namespace grape

#endif  // GRAPE_UTIL_FLAGS_H_
