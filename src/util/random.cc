#include "util/random.h"

#include <cmath>

namespace grape {

double Rng::NextGaussian() {
  // Box–Muller transform; u1 must be non-zero for the log.
  double u1 = 0.0;
  do {
    u1 = NextDouble();
  } while (u1 <= 1e-300);
  double u2 = NextDouble();
  return std::sqrt(-2.0 * std::log(u1)) * std::cos(2.0 * M_PI * u2);
}

}  // namespace grape
