#include "util/logging.h"

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <mutex>

namespace grape {

namespace {

std::atomic<int> g_level{static_cast<int>(LogLevel::kInfo)};
std::atomic<Logger::Sink> g_sink{nullptr};
std::mutex g_stderr_mutex;

}  // namespace

std::string_view LogLevelToString(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO";
    case LogLevel::kWarning:
      return "WARN";
    case LogLevel::kError:
      return "ERROR";
    case LogLevel::kFatal:
      return "FATAL";
  }
  return "?";
}

void Logger::SetLevel(LogLevel level) {
  g_level.store(static_cast<int>(level), std::memory_order_relaxed);
}

LogLevel Logger::GetLevel() {
  return static_cast<LogLevel>(g_level.load(std::memory_order_relaxed));
}

void Logger::SetSink(Sink sink) { g_sink.store(sink); }

void Logger::Log(LogLevel level, const std::string& message) {
  Sink sink = g_sink.load();
  if (sink != nullptr) {
    sink(level, message);
    return;
  }
  std::lock_guard<std::mutex> lock(g_stderr_mutex);
  std::fprintf(stderr, "[%s] %s\n",
               std::string(LogLevelToString(level)).c_str(), message.c_str());
}

LogMessage::LogMessage(LogLevel level, const char* file, int line)
    : level_(level) {
  // Strip directories from __FILE__ for compact records.
  std::string_view path(file);
  size_t slash = path.find_last_of('/');
  if (slash != std::string_view::npos) path.remove_prefix(slash + 1);
  stream_ << path << ":" << line << "] ";
}

LogMessage::~LogMessage() {
  Logger::Log(level_, stream_.str());
  if (level_ == LogLevel::kFatal) {
    std::abort();
  }
}

}  // namespace grape
