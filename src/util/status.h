#ifndef GRAPE_UTIL_STATUS_H_
#define GRAPE_UTIL_STATUS_H_

#include <ostream>
#include <string>
#include <string_view>
#include <utility>

namespace grape {

/// Error codes used across the library. Mirrors the conventions of
/// storage-engine codebases (RocksDB/Arrow): cheap to construct in the OK
/// case, carries a message otherwise.
enum class StatusCode : int {
  kOk = 0,
  kInvalidArgument = 1,
  kNotFound = 2,
  kIOError = 3,
  kOutOfRange = 4,
  kFailedPrecondition = 5,
  kCorruption = 6,
  kUnimplemented = 7,
  kInternal = 8,
  kCancelled = 9,
  kUnavailable = 10,
};

/// Returns a human-readable name such as "InvalidArgument".
std::string_view StatusCodeToString(StatusCode code);

/// A Status encapsulates the success or failure of an operation, optionally
/// with an error message. Functions that can fail return Status (or
/// Result<T>, see result.h) instead of throwing exceptions.
class Status {
 public:
  Status() = default;
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  Status(const Status&) = default;
  Status& operator=(const Status&) = default;
  Status(Status&&) = default;
  Status& operator=(Status&&) = default;

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status IOError(std::string msg) {
    return Status(StatusCode::kIOError, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status FailedPrecondition(std::string msg) {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }
  static Status Corruption(std::string msg) {
    return Status(StatusCode::kCorruption, std::move(msg));
  }
  static Status Unimplemented(std::string msg) {
    return Status(StatusCode::kUnimplemented, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status Cancelled(std::string msg) {
    return Status(StatusCode::kCancelled, std::move(msg));
  }
  static Status Unavailable(std::string msg) {
    return Status(StatusCode::kUnavailable, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  bool IsInvalidArgument() const {
    return code_ == StatusCode::kInvalidArgument;
  }
  bool IsNotFound() const { return code_ == StatusCode::kNotFound; }
  bool IsIOError() const { return code_ == StatusCode::kIOError; }
  bool IsOutOfRange() const { return code_ == StatusCode::kOutOfRange; }
  bool IsFailedPrecondition() const {
    return code_ == StatusCode::kFailedPrecondition;
  }
  bool IsCorruption() const { return code_ == StatusCode::kCorruption; }
  bool IsUnimplemented() const { return code_ == StatusCode::kUnimplemented; }
  bool IsInternal() const { return code_ == StatusCode::kInternal; }
  bool IsCancelled() const { return code_ == StatusCode::kCancelled; }
  bool IsUnavailable() const { return code_ == StatusCode::kUnavailable; }

  /// "OK" or "<Code>: <message>".
  std::string ToString() const;

  bool operator==(const Status& other) const {
    return code_ == other.code_ && message_ == other.message_;
  }

 private:
  StatusCode code_ = StatusCode::kOk;
  std::string message_;
};

std::ostream& operator<<(std::ostream& os, const Status& s);

/// Propagates a non-OK status to the caller.
#define GRAPE_RETURN_NOT_OK(expr)            \
  do {                                       \
    ::grape::Status _st = (expr);            \
    if (!_st.ok()) return _st;               \
  } while (false)

}  // namespace grape

#endif  // GRAPE_UTIL_STATUS_H_
