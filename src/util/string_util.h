#ifndef GRAPE_UTIL_STRING_UTIL_H_
#define GRAPE_UTIL_STRING_UTIL_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace grape {

/// Splits `s` on `delim`, omitting empty pieces when `skip_empty` is true.
std::vector<std::string> Split(std::string_view s, char delim,
                               bool skip_empty = false);

/// Joins `pieces` with `sep`.
std::string Join(const std::vector<std::string>& pieces, std::string_view sep);

/// Removes leading and trailing ASCII whitespace.
std::string_view Trim(std::string_view s);

bool StartsWith(std::string_view s, std::string_view prefix);
bool EndsWith(std::string_view s, std::string_view suffix);

/// "1.5 KB", "3.2 MB", ... for byte counts; used by bench reporters.
std::string HumanBytes(uint64_t bytes);

/// "1.2K", "3.4M" for counts.
std::string HumanCount(uint64_t count);

/// Parses a non-negative integer; returns false on malformed input.
bool ParseUint64(std::string_view s, uint64_t* out);
bool ParseDouble(std::string_view s, double* out);

}  // namespace grape

#endif  // GRAPE_UTIL_STRING_UTIL_H_
