#include "util/thread_pool.h"

#include <algorithm>
#include <atomic>
#include <memory>

namespace grape {

ThreadPool::ThreadPool(size_t num_threads) {
  if (num_threads == 0) num_threads = 1;
  threads_.reserve(num_threads);
  for (size_t i = 0; i < num_threads; ++i) {
    threads_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  cv_.notify_all();
  for (auto& t : threads_) t.join();
}

std::future<void> ThreadPool::Submit(std::function<void()> task) {
  std::packaged_task<void()> packaged(std::move(task));
  std::future<void> future = packaged.get_future();
  {
    std::lock_guard<std::mutex> lock(mu_);
    tasks_.push(std::move(packaged));
  }
  cv_.notify_one();
  return future;
}

struct ThreadPool::ForState {
  size_t begin = 0;
  size_t end = 0;
  size_t chunks = 0;
  size_t chunk_size = 0;
  const std::function<void(size_t)>* fn = nullptr;
  std::atomic<size_t> next{0};
  std::atomic<size_t> done{0};
  std::mutex mu;
  std::condition_variable cv;
};

void ThreadPool::DrainChunks(ForState& s) {
  for (;;) {
    const size_t c = s.next.fetch_add(1, std::memory_order_relaxed);
    if (c >= s.chunks) return;  // a late helper after the loop completed
    const size_t lo = s.begin + c * s.chunk_size;
    const size_t hi = std::min(s.end, lo + s.chunk_size);
    for (size_t i = lo; i < hi; ++i) (*s.fn)(i);
    if (s.done.fetch_add(1, std::memory_order_acq_rel) + 1 == s.chunks) {
      // The empty critical section orders this notify after the caller
      // either saw done == chunks or entered cv.wait (which releases mu
      // atomically), so the wakeup cannot be lost.
      { std::lock_guard<std::mutex> lock(s.mu); }
      s.cv.notify_all();
    }
  }
}

void ThreadPool::ParallelFor(size_t begin, size_t end,
                             const std::function<void(size_t)>& fn) {
  if (begin >= end) return;
  const size_t n = end - begin;
  const size_t chunks = std::min(n, threads_.size() * 4);
  if (chunks <= 1) {
    for (size_t i = begin; i < end; ++i) fn(i);
    return;
  }
  auto state = std::make_shared<ForState>();
  state->begin = begin;
  state->end = end;
  state->chunks = chunks;
  state->chunk_size = (n + chunks - 1) / chunks;
  state->fn = &fn;

  // Helpers are best-effort parallelism: the caller drains the chunk
  // counter itself, so it never blocks behind its own queued helpers —
  // the deadlock of the old future-per-chunk scheme when ParallelFor ran
  // on a pool thread. Helpers that wake up after the last chunk was
  // claimed see next >= chunks and return without touching fn.
  const size_t helpers = std::min(threads_.size(), chunks - 1);
  for (size_t h = 0; h < helpers; ++h) {
    Submit([state] { DrainChunks(*state); });
  }
  DrainChunks(*state);
  std::unique_lock<std::mutex> lock(state->mu);
  state->cv.wait(lock, [&] {
    return state->done.load(std::memory_order_acquire) == state->chunks;
  });
}

void ThreadPool::WorkerLoop() {
  while (true) {
    std::packaged_task<void()> task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_.wait(lock, [this] { return stop_ || !tasks_.empty(); });
      if (stop_ && tasks_.empty()) return;
      task = std::move(tasks_.front());
      tasks_.pop();
    }
    task();
  }
}

}  // namespace grape
