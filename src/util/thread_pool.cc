#include "util/thread_pool.h"

#include <algorithm>
#include <atomic>

namespace grape {

ThreadPool::ThreadPool(size_t num_threads) {
  if (num_threads == 0) num_threads = 1;
  threads_.reserve(num_threads);
  for (size_t i = 0; i < num_threads; ++i) {
    threads_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  cv_.notify_all();
  for (auto& t : threads_) t.join();
}

std::future<void> ThreadPool::Submit(std::function<void()> task) {
  std::packaged_task<void()> packaged(std::move(task));
  std::future<void> future = packaged.get_future();
  {
    std::lock_guard<std::mutex> lock(mu_);
    tasks_.push(std::move(packaged));
  }
  cv_.notify_one();
  return future;
}

void ThreadPool::ParallelFor(size_t begin, size_t end,
                             const std::function<void(size_t)>& fn) {
  if (begin >= end) return;
  size_t n = end - begin;
  size_t chunks = std::min(n, threads_.size() * 4);
  size_t chunk_size = (n + chunks - 1) / chunks;

  std::vector<std::future<void>> futures;
  futures.reserve(chunks);
  for (size_t c = 0; c < chunks; ++c) {
    size_t lo = begin + c * chunk_size;
    size_t hi = std::min(end, lo + chunk_size);
    if (lo >= hi) break;
    futures.push_back(Submit([lo, hi, &fn] {
      for (size_t i = lo; i < hi; ++i) fn(i);
    }));
  }
  for (auto& f : futures) f.get();
}

void ThreadPool::WorkerLoop() {
  while (true) {
    std::packaged_task<void()> task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_.wait(lock, [this] { return stop_ || !tasks_.empty(); });
      if (stop_ && tasks_.empty()) return;
      task = std::move(tasks_.front());
      tasks_.pop();
    }
    task();
  }
}

}  // namespace grape
