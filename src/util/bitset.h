#ifndef GRAPE_UTIL_BITSET_H_
#define GRAPE_UTIL_BITSET_H_

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

namespace grape {

/// Dense dynamic bitset used for frontier tracking in BFS-style algorithms
/// and for "changed" flags over fragment vertices.
class Bitset {
 public:
  Bitset() = default;
  explicit Bitset(size_t n) { Resize(n); }

  void Resize(size_t n) {
    size_ = n;
    words_.assign((n + 63) / 64, 0);
  }

  size_t size() const { return size_; }

  void Set(size_t i) { words_[i >> 6] |= (1ULL << (i & 63)); }
  void Reset(size_t i) { words_[i >> 6] &= ~(1ULL << (i & 63)); }

  /// Thread-safe Set for concurrent frontier/changed-set writers; returns
  /// whether this call flipped the bit (exactly one concurrent setter of
  /// the same bit sees true). Must not race with the plain accessors.
  bool SetAtomic(size_t i) {
    std::atomic_ref<uint64_t> word(words_[i >> 6]);
    const uint64_t mask = 1ULL << (i & 63);
    return (word.fetch_or(mask, std::memory_order_relaxed) & mask) == 0;
  }
  bool Test(size_t i) const {
    return (words_[i >> 6] >> (i & 63)) & 1ULL;
  }

  void Clear() {
    for (auto& w : words_) w = 0;
  }

  /// Sets every bit in [0, size); bits past size stay clear so Count and
  /// ForEach remain exact.
  void SetAll() {
    for (auto& w : words_) w = ~0ULL;
    const size_t tail = size_ & 63;
    if (tail != 0 && !words_.empty()) {
      words_.back() = (1ULL << tail) - 1;
    }
  }

  /// Number of set bits.
  size_t Count() const {
    size_t c = 0;
    for (uint64_t w : words_) c += __builtin_popcountll(w);
    return c;
  }

  bool Any() const {
    for (uint64_t w : words_) {
      if (w != 0) return true;
    }
    return false;
  }

  /// Calls fn(i) for each set bit in ascending order.
  template <typename Fn>
  void ForEach(Fn&& fn) const {
    for (size_t wi = 0; wi < words_.size(); ++wi) {
      uint64_t w = words_[wi];
      while (w != 0) {
        int bit = __builtin_ctzll(w);
        fn(wi * 64 + bit);
        w &= w - 1;
      }
    }
  }

  void Swap(Bitset& other) {
    words_.swap(other.words_);
    std::swap(size_, other.size_);
  }

 private:
  std::vector<uint64_t> words_;
  size_t size_ = 0;
};

}  // namespace grape

#endif  // GRAPE_UTIL_BITSET_H_
