#ifndef GRAPE_UTIL_LOGGING_H_
#define GRAPE_UTIL_LOGGING_H_

#include <sstream>
#include <string>

namespace grape {

enum class LogLevel : int {
  kDebug = 0,
  kInfo = 1,
  kWarning = 2,
  kError = 3,
  kFatal = 4,
};

std::string_view LogLevelToString(LogLevel level);

/// Process-wide logging configuration. Thread-safe; messages at or above
/// the current threshold are written to stderr. Tests can capture output by
/// installing a sink callback.
class Logger {
 public:
  using Sink = void (*)(LogLevel, const std::string&);

  static void SetLevel(LogLevel level);
  static LogLevel GetLevel();

  /// Install a sink that receives every emitted record instead of stderr.
  /// Pass nullptr to restore the default stderr sink.
  static void SetSink(Sink sink);

  static void Log(LogLevel level, const std::string& message);
};

/// Stream-style log record builder; emits on destruction. kFatal aborts.
class LogMessage {
 public:
  LogMessage(LogLevel level, const char* file, int line);
  ~LogMessage();

  LogMessage(const LogMessage&) = delete;
  LogMessage& operator=(const LogMessage&) = delete;

  std::ostringstream& stream() { return stream_; }

 private:
  LogLevel level_;
  std::ostringstream stream_;
};

#define GRAPE_LOG(level)                                               \
  if (static_cast<int>(::grape::LogLevel::level) <                     \
      static_cast<int>(::grape::Logger::GetLevel())) {                 \
  } else                                                               \
    ::grape::LogMessage(::grape::LogLevel::level, __FILE__, __LINE__)  \
        .stream()

#define GRAPE_CHECK(cond)                                                 \
  if (cond) {                                                             \
  } else                                                                  \
    ::grape::LogMessage(::grape::LogLevel::kFatal, __FILE__, __LINE__)    \
            .stream()                                                     \
        << "Check failed: " #cond " "

#define GRAPE_DCHECK(cond) assert(cond)

}  // namespace grape

#endif  // GRAPE_UTIL_LOGGING_H_
