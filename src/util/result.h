#ifndef GRAPE_UTIL_RESULT_H_
#define GRAPE_UTIL_RESULT_H_

#include <cassert>
#include <optional>
#include <utility>

#include "util/status.h"

namespace grape {

/// Result<T> holds either a value of type T or a non-OK Status describing
/// why the value could not be produced. It is the value-returning companion
/// of Status, analogous to arrow::Result.
template <typename T>
class Result {
 public:
  /// Implicit construction from a value (success).
  Result(T value) : value_(std::move(value)) {}  // NOLINT(runtime/explicit)

  /// Implicit construction from a non-OK status (failure). Constructing a
  /// Result from an OK status is a programming error.
  Result(Status status) : status_(std::move(status)) {  // NOLINT
    assert(!status_.ok() && "Result constructed from OK status");
  }

  Result(const Result&) = default;
  Result& operator=(const Result&) = default;
  Result(Result&&) = default;
  Result& operator=(Result&&) = default;

  bool ok() const { return value_.has_value(); }
  const Status& status() const { return status_; }

  const T& value() const& {
    assert(ok());
    return *value_;
  }
  T& value() & {
    assert(ok());
    return *value_;
  }
  T&& value() && {
    assert(ok());
    return std::move(*value_);
  }

  /// Returns the value, or `fallback` if this Result holds an error.
  T ValueOr(T fallback) const {
    return ok() ? *value_ : std::move(fallback);
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

 private:
  Status status_;
  std::optional<T> value_;
};

/// Assigns the value of a Result expression to `lhs`, returning the error
/// status to the caller on failure.
#define GRAPE_ASSIGN_OR_RETURN(lhs, expr)         \
  auto GRAPE_CONCAT_(res_, __LINE__) = (expr);    \
  if (!GRAPE_CONCAT_(res_, __LINE__).ok())        \
    return GRAPE_CONCAT_(res_, __LINE__).status(); \
  lhs = std::move(GRAPE_CONCAT_(res_, __LINE__)).value()

#define GRAPE_CONCAT_IMPL_(a, b) a##b
#define GRAPE_CONCAT_(a, b) GRAPE_CONCAT_IMPL_(a, b)

}  // namespace grape

#endif  // GRAPE_UTIL_RESULT_H_
