#ifndef GRAPE_UTIL_RANDOM_H_
#define GRAPE_UTIL_RANDOM_H_

#include <cstdint>
#include <limits>

namespace grape {

/// SplitMix64: statistically strong 64-bit mixer, used both as a standalone
/// generator for seeding and as the hash finalizer for partitioners.
inline uint64_t SplitMix64(uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

/// xoshiro256** — fast, high-quality PRNG. Deterministic for a given seed,
/// so every generated workload in tests and benches is reproducible.
class Rng {
 public:
  explicit Rng(uint64_t seed = 0x853c49e6748fea9bULL) { Seed(seed); }

  void Seed(uint64_t seed) {
    // Expand the seed through SplitMix64 per the xoshiro authors' advice.
    for (auto& word : state_) {
      seed = SplitMix64(seed);
      word = seed;
    }
  }

  uint64_t NextUint64() {
    uint64_t result = Rotl(state_[1] * 5, 7) * 9;
    uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = Rotl(state_[3], 45);
    return result;
  }

  /// Uniform in [0, bound). bound must be > 0.
  uint64_t NextBounded(uint64_t bound) {
    // Rejection sampling to remove modulo bias.
    uint64_t threshold = (~bound + 1) % bound;
    while (true) {
      uint64_t r = NextUint64();
      if (r >= threshold) return r % bound;
    }
  }

  /// Uniform in [lo, hi] inclusive.
  int64_t NextInt(int64_t lo, int64_t hi) {
    return lo + static_cast<int64_t>(
                    NextBounded(static_cast<uint64_t>(hi - lo) + 1));
  }

  /// Uniform double in [0, 1).
  double NextDouble() {
    return static_cast<double>(NextUint64() >> 11) * 0x1.0p-53;
  }

  /// Bernoulli trial with probability p.
  bool NextBool(double p = 0.5) { return NextDouble() < p; }

  /// Standard normal via Box–Muller (one value per call; simple and enough
  /// for workload generation).
  double NextGaussian();

  // std::uniform_random_bit_generator interface, so Rng plugs into
  // std::shuffle and <random> distributions.
  using result_type = uint64_t;
  static constexpr result_type min() { return 0; }
  static constexpr result_type max() {
    return std::numeric_limits<uint64_t>::max();
  }
  result_type operator()() { return NextUint64(); }

 private:
  static uint64_t Rotl(uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }

  uint64_t state_[4];
};

}  // namespace grape

#endif  // GRAPE_UTIL_RANDOM_H_
