#include "util/string_util.h"

#include <cctype>
#include <cerrno>
#include <cstdio>
#include <cstdlib>

namespace grape {

std::vector<std::string> Split(std::string_view s, char delim,
                               bool skip_empty) {
  std::vector<std::string> out;
  size_t start = 0;
  while (start <= s.size()) {
    size_t end = s.find(delim, start);
    if (end == std::string_view::npos) end = s.size();
    std::string_view piece = s.substr(start, end - start);
    if (!piece.empty() || !skip_empty) out.emplace_back(piece);
    if (end == s.size()) break;
    start = end + 1;
  }
  return out;
}

std::string Join(const std::vector<std::string>& pieces,
                 std::string_view sep) {
  std::string out;
  for (size_t i = 0; i < pieces.size(); ++i) {
    if (i > 0) out += sep;
    out += pieces[i];
  }
  return out;
}

std::string_view Trim(std::string_view s) {
  size_t b = 0;
  size_t e = s.size();
  while (b < e && std::isspace(static_cast<unsigned char>(s[b]))) ++b;
  while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1]))) --e;
  return s.substr(b, e - b);
}

bool StartsWith(std::string_view s, std::string_view prefix) {
  return s.size() >= prefix.size() && s.substr(0, prefix.size()) == prefix;
}

bool EndsWith(std::string_view s, std::string_view suffix) {
  return s.size() >= suffix.size() &&
         s.substr(s.size() - suffix.size()) == suffix;
}

namespace {

std::string FormatScaled(double value, const char* const* units,
                         int num_units, double base) {
  int unit = 0;
  while (value >= base && unit < num_units - 1) {
    value /= base;
    ++unit;
  }
  char buf[64];
  if (unit == 0) {
    std::snprintf(buf, sizeof(buf), "%.0f %s", value, units[unit]);
  } else {
    std::snprintf(buf, sizeof(buf), "%.2f %s", value, units[unit]);
  }
  return buf;
}

}  // namespace

std::string HumanBytes(uint64_t bytes) {
  static const char* const kUnits[] = {"B", "KB", "MB", "GB", "TB"};
  return FormatScaled(static_cast<double>(bytes), kUnits, 5, 1024.0);
}

std::string HumanCount(uint64_t count) {
  static const char* const kUnits[] = {"", "K", "M", "B"};
  return FormatScaled(static_cast<double>(count), kUnits, 4, 1000.0);
}

bool ParseUint64(std::string_view s, uint64_t* out) {
  if (s.empty()) return false;
  std::string buf(s);
  char* end = nullptr;
  errno = 0;
  unsigned long long v = std::strtoull(buf.c_str(), &end, 10);
  if (errno != 0 || end != buf.c_str() + buf.size()) return false;
  if (!buf.empty() && buf[0] == '-') return false;
  *out = v;
  return true;
}

bool ParseDouble(std::string_view s, double* out) {
  if (s.empty()) return false;
  std::string buf(s);
  char* end = nullptr;
  errno = 0;
  double v = std::strtod(buf.c_str(), &end);
  if (errno != 0 || end != buf.c_str() + buf.size()) return false;
  *out = v;
  return true;
}

}  // namespace grape
