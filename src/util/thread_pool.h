#ifndef GRAPE_UTIL_THREAD_POOL_H_
#define GRAPE_UTIL_THREAD_POOL_H_

#include <condition_variable>
#include <cstddef>
#include <functional>
#include <future>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

namespace grape {

/// Fixed-size worker pool. The PIE engine maps each logical worker P_i onto
/// a pool task per superstep; ParallelFor is used by partitioners,
/// generators, and the frontier-parallel WorkerCore for data-parallel loops.
class ThreadPool {
 public:
  explicit ThreadPool(size_t num_threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueues a task; the future resolves when it completes.
  std::future<void> Submit(std::function<void()> task);

  /// Runs fn(i) for i in [begin, end) across the pool and blocks until all
  /// iterations finish. Iterations are chunked to limit scheduling overhead.
  ///
  /// Safe to call from inside a pool task (including from another
  /// ParallelFor body): the caller claims and executes chunks itself
  /// instead of blocking on queued work, so progress never depends on a
  /// free pool thread. Pool threads only *help*; a nested call on a fully
  /// busy (even 1-thread) pool degrades to running inline. fn must not
  /// throw — worker-side failures travel as Status through the callers.
  void ParallelFor(size_t begin, size_t end,
                   const std::function<void(size_t)>& fn);

  size_t num_threads() const { return threads_.size(); }

 private:
  /// Shared state of one ParallelFor: a chunk ticket counter drained
  /// cooperatively by the caller and any helper tasks that get scheduled.
  struct ForState;
  static void DrainChunks(ForState& s);

  void WorkerLoop();

  std::vector<std::thread> threads_;
  std::queue<std::packaged_task<void()>> tasks_;
  std::mutex mu_;
  std::condition_variable cv_;
  bool stop_ = false;
};

}  // namespace grape

#endif  // GRAPE_UTIL_THREAD_POOL_H_
