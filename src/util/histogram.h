#ifndef GRAPE_UTIL_HISTOGRAM_H_
#define GRAPE_UTIL_HISTOGRAM_H_

#include <cstdint>
#include <string>
#include <vector>

namespace grape {

/// Log-bucketed histogram of non-negative values (latencies in micros,
/// message sizes in bytes, degrees). Follows the RocksDB statistics style:
/// cheap Add(), percentile queries on demand.
class Histogram {
 public:
  Histogram();

  void Add(uint64_t value);
  void Merge(const Histogram& other);
  void Clear();

  uint64_t count() const { return count_; }
  uint64_t sum() const { return sum_; }
  uint64_t min() const { return count_ == 0 ? 0 : min_; }
  uint64_t max() const { return max_; }
  double Mean() const;

  /// Approximate percentile (p in [0, 100]) via linear interpolation within
  /// the containing bucket.
  double Percentile(double p) const;
  double Median() const { return Percentile(50.0); }

  /// One-line summary: count, mean, p50/p95/p99, max.
  std::string ToString() const;

  static constexpr int kNumBuckets = 64;

 private:
  static int BucketFor(uint64_t value);
  static uint64_t BucketLimit(int bucket);

  uint64_t buckets_[kNumBuckets];
  uint64_t count_;
  uint64_t sum_;
  uint64_t min_;
  uint64_t max_;
};

}  // namespace grape

#endif  // GRAPE_UTIL_HISTOGRAM_H_
