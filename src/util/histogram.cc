#include "util/histogram.h"

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <limits>

namespace grape {

Histogram::Histogram() { Clear(); }

void Histogram::Clear() {
  std::memset(buckets_, 0, sizeof(buckets_));
  count_ = 0;
  sum_ = 0;
  min_ = std::numeric_limits<uint64_t>::max();
  max_ = 0;
}

int Histogram::BucketFor(uint64_t value) {
  // Bucket b holds values in [2^(b-1), 2^b); bucket 0 holds {0}.
  if (value == 0) return 0;
  int b = 64 - __builtin_clzll(value);
  return std::min(b, kNumBuckets - 1);
}

uint64_t Histogram::BucketLimit(int bucket) {
  if (bucket >= 63) return std::numeric_limits<uint64_t>::max();
  return (1ULL << bucket) - 1;
}

void Histogram::Add(uint64_t value) {
  buckets_[BucketFor(value)]++;
  count_++;
  sum_ += value;
  min_ = std::min(min_, value);
  max_ = std::max(max_, value);
}

void Histogram::Merge(const Histogram& other) {
  for (int i = 0; i < kNumBuckets; ++i) buckets_[i] += other.buckets_[i];
  count_ += other.count_;
  sum_ += other.sum_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

double Histogram::Mean() const {
  if (count_ == 0) return 0.0;
  return static_cast<double>(sum_) / static_cast<double>(count_);
}

double Histogram::Percentile(double p) const {
  if (count_ == 0) return 0.0;
  double threshold = count_ * (p / 100.0);
  double cumulative = 0.0;
  for (int b = 0; b < kNumBuckets; ++b) {
    cumulative += buckets_[b];
    if (cumulative >= threshold) {
      double left = (b == 0) ? 0.0 : static_cast<double>(BucketLimit(b - 1));
      double right = static_cast<double>(BucketLimit(b));
      double left_count = cumulative - buckets_[b];
      double pos =
          buckets_[b] == 0
              ? 0.0
              : (threshold - left_count) / static_cast<double>(buckets_[b]);
      double r = left + (right - left) * pos;
      return std::clamp(r, static_cast<double>(min()),
                        static_cast<double>(max_));
    }
  }
  return static_cast<double>(max_);
}

std::string Histogram::ToString() const {
  char buf[256];
  std::snprintf(buf, sizeof(buf),
                "count=%llu mean=%.2f p50=%.1f p95=%.1f p99=%.1f max=%llu",
                static_cast<unsigned long long>(count_), Mean(), Median(),
                Percentile(95.0), Percentile(99.0),
                static_cast<unsigned long long>(max_));
  return buf;
}

}  // namespace grape
