#include "util/flags.h"

#include "util/string_util.h"

namespace grape {

Status FlagParser::Parse(int argc, const char* const* argv) {
  for (int i = 1; i < argc; ++i) {
    std::string_view arg(argv[i]);
    if (!StartsWith(arg, "--")) {
      positional_.emplace_back(arg);
      continue;
    }
    arg.remove_prefix(2);
    if (arg.empty()) {
      return Status::InvalidArgument("bare '--' is not a valid flag");
    }
    size_t eq = arg.find('=');
    if (eq != std::string_view::npos) {
      values_[std::string(arg.substr(0, eq))] = std::string(arg.substr(eq + 1));
      continue;
    }
    // "--name value" form if the next token is not itself a flag;
    // otherwise a boolean switch.
    if (i + 1 < argc && !StartsWith(argv[i + 1], "--")) {
      values_[std::string(arg)] = argv[++i];
    } else {
      values_[std::string(arg)] = "true";
    }
  }
  return Status::OK();
}

bool FlagParser::Has(const std::string& name) const {
  return values_.count(name) > 0;
}

std::string FlagParser::GetString(const std::string& name,
                                  const std::string& default_value) const {
  auto it = values_.find(name);
  return it == values_.end() ? default_value : it->second;
}

int64_t FlagParser::GetInt(const std::string& name,
                           int64_t default_value) const {
  auto it = values_.find(name);
  if (it == values_.end()) return default_value;
  uint64_t v = 0;
  if (it->second.size() > 1 && it->second[0] == '-') {
    if (!ParseUint64(it->second.substr(1), &v)) return default_value;
    return -static_cast<int64_t>(v);
  }
  if (!ParseUint64(it->second, &v)) return default_value;
  return static_cast<int64_t>(v);
}

double FlagParser::GetDouble(const std::string& name,
                             double default_value) const {
  auto it = values_.find(name);
  if (it == values_.end()) return default_value;
  double v = 0;
  if (!ParseDouble(it->second, &v)) return default_value;
  return v;
}

bool FlagParser::GetBool(const std::string& name, bool default_value) const {
  auto it = values_.find(name);
  if (it == values_.end()) return default_value;
  return it->second == "true" || it->second == "1" || it->second == "yes";
}

}  // namespace grape
