#ifndef GRAPE_UTIL_BARRIER_H_
#define GRAPE_UTIL_BARRIER_H_

#include <condition_variable>
#include <cstddef>
#include <mutex>

namespace grape {

/// Reusable cyclic barrier for BSP supersteps: all `parties` threads must
/// call Wait() before any of them proceeds to the next phase.
class Barrier {
 public:
  explicit Barrier(size_t parties) : parties_(parties), waiting_(0) {}

  Barrier(const Barrier&) = delete;
  Barrier& operator=(const Barrier&) = delete;

  /// Blocks until all parties arrive. Returns true for exactly one caller
  /// per generation (the "serial" thread), which may run a coordinator step.
  bool Wait() {
    std::unique_lock<std::mutex> lock(mu_);
    size_t gen = generation_;
    if (++waiting_ == parties_) {
      ++generation_;
      waiting_ = 0;
      cv_.notify_all();
      return true;
    }
    cv_.wait(lock, [this, gen] { return generation_ != gen; });
    return false;
  }

 private:
  const size_t parties_;
  size_t waiting_;
  size_t generation_ = 0;
  std::mutex mu_;
  std::condition_variable cv_;
};

}  // namespace grape

#endif  // GRAPE_UTIL_BARRIER_H_
