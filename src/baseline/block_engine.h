#ifndef GRAPE_BASELINE_BLOCK_ENGINE_H_
#define GRAPE_BASELINE_BLOCK_ENGINE_H_

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "baseline/transport.h"
#include "partition/fragment.h"
#include "rt/comm_world.h"
#include "util/thread_pool.h"
#include "util/timer.h"

namespace grape {

struct BlockMetrics {
  uint32_t supersteps = 0;
  double seconds = 0;
  uint64_t messages = 0;
  uint64_t bytes = 0;
  uint64_t vertex_messages = 0;
};

struct BlockOptions {
  uint32_t num_threads = 0;
  uint32_t max_supersteps = 1000000;
};

/// Block-centric ("think like a graph") engine in the Blogel mould: each
/// superstep a block program (B-compute) runs over a whole block = fragment,
/// then cross-block messages are exchanged vertex-to-vertex. Differences
/// from GRAPE that the benchmarks surface:
///   - messages go per cross-edge, uncombined, with no coordinator-side
///     aggregate-function conflict resolution;
///   - B-compute is a full local evaluation each superstep, not a bounded
///     incremental one (no IncEval).
///
/// A program Prog supplies:
///   using MessageType = ...; using VertexValueType = ...;
///   VertexValueType InitValue(VertexId gid, VertexId num_vertices) const;
///   // Returns true if the block is still active (sent or changed values).
///   bool BCompute(const Fragment& frag, std::vector<VertexValueType>& vals,
///                 const std::unordered_map<LocalId,
///                                          std::vector<MessageType>>& inbox,
///                 uint32_t superstep, VertexMessageBus<MessageType>* bus);
template <typename Prog>
class BlockCentricEngine {
 public:
  using Msg = typename Prog::MessageType;
  using Val = typename Prog::VertexValueType;

  BlockCentricEngine(const FragmentedGraph& fg, Prog prog,
                     BlockOptions options = {})
      : fg_(fg),
        prog_(std::move(prog)),
        options_(options),
        world_(fg.num_fragments()),
        pool_(options.num_threads == 0 ? fg.num_fragments()
                                       : options.num_threads) {}

  Status Run() {
    WallTimer timer;
    metrics_ = BlockMetrics{};
    world_.ResetStats();
    const FragmentId n = fg_.num_fragments();

    values_.assign(n, {});
    buses_.clear();
    statuses_.assign(n, Status::OK());
    for (FragmentId i = 0; i < n; ++i) {
      const Fragment& frag = fg_.fragments[i];
      values_[i].resize(frag.num_inner());
      for (LocalId v = 0; v < frag.num_inner(); ++v) {
        values_[i][v] = prog_.InitValue(frag.Gid(v), frag.total_num_vertices());
      }
      buses_.emplace_back(&world_, &fg_, i);
    }

    uint32_t superstep = 0;
    uint64_t pending = 1;
    std::vector<uint8_t> block_active(n, 1);
    while (superstep < options_.max_supersteps) {
      bool any_active = pending > 0;
      for (FragmentId i = 0; i < n; ++i) any_active |= (block_active[i] != 0);
      if (!any_active && superstep > 0) break;

      // Compute and flush in separate phases so messages are only visible
      // in the next superstep (BSP delivery semantics).
      pool_.ParallelFor(0, n, [&, superstep](size_t i) {
        const Fragment& frag = fg_.fragments[i];
        std::unordered_map<LocalId, std::vector<Msg>> inbox;
        auto recv = buses_[i].Receive(frag, &inbox);
        if (!recv.ok()) {
          statuses_[i] = recv.status();
          return;
        }
        // A block runs when it has input (or in the first superstep).
        if (superstep == 0 || !inbox.empty()) {
          block_active[i] = prog_.BCompute(frag, values_[i], inbox, superstep,
                                           &buses_[i])
                                ? 1
                                : 0;
        } else {
          block_active[i] = 0;
        }
      });
      pool_.ParallelFor(0, n, [&](size_t i) {
        Status s = buses_[i].Flush();
        if (!s.ok()) statuses_[i] = s;
      });
      for (FragmentId i = 0; i < n; ++i) {
        GRAPE_RETURN_NOT_OK(statuses_[i]);
      }
      pending = 0;
      for (FragmentId i = 0; i < n; ++i) pending += world_.PendingCount(i);
      ++superstep;
      if (pending == 0) {
        bool still = false;
        for (FragmentId i = 0; i < n; ++i) still |= (block_active[i] != 0);
        if (!still) break;
      }
    }

    CommStats cs = world_.stats();
    metrics_.supersteps = superstep;
    metrics_.messages = cs.messages;
    metrics_.bytes = cs.bytes;
    for (auto& bus : buses_) metrics_.vertex_messages += bus.logical_sent();
    metrics_.seconds = timer.ElapsedSeconds();
    return Status::OK();
  }

  const Val& ValueOf(VertexId gid) const {
    FragmentId f = (*fg_.owner)[gid];
    LocalId lid = fg_.fragments[f].Lid(gid);
    return values_[f][lid];
  }

  const BlockMetrics& metrics() const { return metrics_; }

 private:
  const FragmentedGraph& fg_;
  Prog prog_;
  BlockOptions options_;
  CommWorld world_;
  ThreadPool pool_;

  std::vector<std::vector<Val>> values_;
  std::vector<VertexMessageBus<Msg>> buses_;
  std::vector<Status> statuses_;
  BlockMetrics metrics_;
};

}  // namespace grape

#endif  // GRAPE_BASELINE_BLOCK_ENGINE_H_
