#ifndef GRAPE_BASELINE_GAS_ENGINE_H_
#define GRAPE_BASELINE_GAS_ENGINE_H_

#include <cstdint>
#include <vector>

#include "core/codec.h"
#include "partition/fragment.h"
#include "rt/comm_world.h"
#include "util/bitset.h"
#include "util/thread_pool.h"
#include "util/timer.h"

namespace grape {

struct GasMetrics {
  uint32_t rounds = 0;
  double seconds = 0;
  uint64_t messages = 0;
  uint64_t bytes = 0;
  uint64_t ghost_updates = 0;
};

struct GasOptions {
  uint32_t num_threads = 0;
  uint32_t max_rounds = 1000000;
};

/// Synchronous Gather-Apply-Scatter engine in the (sync) GraphLab/PowerGraph
/// mould: data-driven per-vertex scheduling with ghost replicas. Owners of
/// changed border vertices push ghost updates to replica fragments
/// (worker-to-worker, no coordinator); a ghost update activates the ghost's
/// local out-neighbours, which gather over their in-edges next round.
///
/// A program Prog supplies:
///   using GatherType = ...; using VertexValueType = ...;
///   static constexpr bool kGatherBoth = ...;  // gather/scatter both ways?
///   VertexValueType InitValue(VertexId gid, VertexId n) const;
///   bool IsInitiallyActive(VertexId gid) const;
///   GatherType IdentityGather() const;
///   GatherType Gather(const FragNeighbor& in_edge,
///                     const VertexValueType& nbr_val) const;
///   GatherType Merge(const GatherType&, const GatherType&) const;
///   bool Apply(VertexValueType& val, const GatherType& total) const;
///
/// Initially-active vertices seed the computation by scheduling their
/// neighbours (replica fragments compute the same seeds from their ghosts'
/// deterministic InitValue, so no start-up messages are needed).
template <typename Prog>
class GasEngine {
 public:
  using Val = typename Prog::VertexValueType;

  GasEngine(const FragmentedGraph& fg, Prog prog, GasOptions options = {})
      : fg_(fg),
        prog_(std::move(prog)),
        options_(options),
        world_(fg.num_fragments()),
        pool_(options.num_threads == 0 ? fg.num_fragments()
                                       : options.num_threads) {}

  Status Run() {
    WallTimer timer;
    metrics_ = GasMetrics{};
    world_.ResetStats();
    const FragmentId n = fg_.num_fragments();

    values_.assign(n, {});
    active_.assign(n, {});
    statuses_.assign(n, Status::OK());
    pending_ghosts_.assign(n, {});
    for (FragmentId i = 0; i < n; ++i) {
      const Fragment& frag = fg_.fragments[i];
      values_[i].resize(frag.num_local());
      for (LocalId v = 0; v < frag.num_local(); ++v) {
        values_[i][v] = prog_.InitValue(frag.Gid(v), frag.total_num_vertices());
      }
      active_[i].Resize(frag.num_inner());
      for (LocalId v = 0; v < frag.num_local(); ++v) {
        if (!prog_.IsInitiallyActive(frag.Gid(v))) continue;
        if (frag.IsInner(v)) active_[i].Set(v);
        // Seed the seeds' neighbourhoods so the first gather sees them
        // (ghost copies seed their local neighbourhoods symmetrically).
        for (const FragNeighbor& e : frag.OutNeighbors(v)) {
          if (frag.IsInner(e.local)) active_[i].Set(e.local);
        }
        if (Prog::kGatherBoth) {
          for (const FragNeighbor& e : frag.InNeighbors(v)) {
            if (frag.IsInner(e.local)) active_[i].Set(e.local);
          }
        }
      }
    }

    uint32_t round = 0;
    while (round < options_.max_rounds) {
      size_t total_active = 0;
      for (FragmentId i = 0; i < n; ++i) total_active += active_[i].Count();
      uint64_t pending = 0;
      for (FragmentId i = 0; i < n; ++i) pending += world_.PendingCount(i);
      if (total_active == 0 && pending == 0) break;

      // Compute and ghost-shipping run in separate phases so updates are
      // only visible next round (synchronous GAS semantics).
      pool_.ParallelFor(0, n, [&](size_t i) {
        Status s = ComputeRound(static_cast<FragmentId>(i));
        if (!s.ok()) statuses_[i] = s;
      });
      pool_.ParallelFor(0, n, [&](size_t i) {
        Status s = ShipGhostUpdates(static_cast<FragmentId>(i));
        if (!s.ok()) statuses_[i] = s;
      });
      for (FragmentId i = 0; i < n; ++i) {
        GRAPE_RETURN_NOT_OK(statuses_[i]);
      }
      ++round;
    }

    CommStats cs = world_.stats();
    metrics_.rounds = round;
    metrics_.messages = cs.messages;
    metrics_.bytes = cs.bytes;
    metrics_.seconds = timer.ElapsedSeconds();
    return Status::OK();
  }

  const Val& ValueOf(VertexId gid) const {
    FragmentId f = (*fg_.owner)[gid];
    LocalId lid = fg_.fragments[f].Lid(gid);
    return values_[f][lid];
  }

  const GasMetrics& metrics() const { return metrics_; }

 private:
  Status ComputeRound(FragmentId i) {
    const Fragment& frag = fg_.fragments[i];
    std::vector<Val>& vals = values_[i];
    Bitset& active = active_[i];
    Bitset next(frag.num_inner());

    // (0) Apply ghost updates from the previous round; each activates the
    // ghost's local out-neighbours.
    while (auto msg = world_.TryRecv(i, kTagVertexMessage)) {
      Decoder dec(msg->payload);
      uint64_t count = 0;
      GRAPE_RETURN_NOT_OK(dec.ReadVarint(&count));
      for (uint64_t k = 0; k < count; ++k) {
        VertexId gid = 0;
        Val val{};
        GRAPE_RETURN_NOT_OK(dec.ReadU32(&gid));
        GRAPE_RETURN_NOT_OK(DecodeValue(dec, &val));
        LocalId lid = frag.Lid(gid);
        if (lid == kInvalidLocal) {
          return Status::Internal("ghost update for unknown vertex");
        }
        vals[lid] = std::move(val);
        metrics_.ghost_updates++;
        for (const FragNeighbor& e : frag.OutNeighbors(lid)) {
          if (frag.IsInner(e.local)) next.Set(e.local);
        }
        if (Prog::kGatherBoth) {
          for (const FragNeighbor& e : frag.InNeighbors(lid)) {
            if (frag.IsInner(e.local)) next.Set(e.local);
          }
        }
      }
    }
    // Merge locally re-activated vertices scheduled last round.
    active.ForEach([&next](size_t v) { next.Set(v); });
    active.Clear();

    // (1) Gather + (2) Apply for the active set; (3) Scatter activations.
    std::vector<std::pair<VertexId, Val>>& ghost_updates =
        pending_ghosts_[i];
    ghost_updates.clear();
    Bitset scheduled(frag.num_inner());
    next.ForEach([&](size_t v_index) {
      auto v = static_cast<LocalId>(v_index);
      auto total = prog_.IdentityGather();
      for (const FragNeighbor& e : frag.InNeighbors(v)) {
        total = prog_.Merge(total, prog_.Gather(e, vals[e.local]));
      }
      if (Prog::kGatherBoth && frag.is_directed()) {
        for (const FragNeighbor& e : frag.OutNeighbors(v)) {
          total = prog_.Merge(total, prog_.Gather(e, vals[e.local]));
        }
      }
      if (!prog_.Apply(vals[v], total)) return;
      // Value changed: activate local out-neighbours now, remote replicas
      // via ghost updates.
      for (const FragNeighbor& e : frag.OutNeighbors(v)) {
        if (frag.IsInner(e.local)) scheduled.Set(e.local);
      }
      if (Prog::kGatherBoth && frag.is_directed()) {
        for (const FragNeighbor& e : frag.InNeighbors(v)) {
          if (frag.IsInner(e.local)) scheduled.Set(e.local);
        }
      }
      if (frag.IsBorder(v)) {
        ghost_updates.emplace_back(frag.Gid(v), vals[v]);
      }
    });
    scheduled.ForEach([&active](size_t v) { active.Set(v); });
    return Status::OK();
  }

  /// Ships the ghost updates buffered by ComputeRound, one batch per
  /// replica fragment.
  Status ShipGhostUpdates(FragmentId i) {
    const Fragment& frag = fg_.fragments[i];
    std::vector<std::pair<VertexId, Val>>& ghost_updates = pending_ghosts_[i];
    if (ghost_updates.empty()) return Status::OK();
    std::vector<std::vector<const std::pair<VertexId, Val>*>> per_dst(
        fg_.num_fragments());
    for (const auto& update : ghost_updates) {
      LocalId lid = frag.Lid(update.first);
      for (FragmentId dst : frag.MirrorFragments(lid)) {
        per_dst[dst].push_back(&update);
      }
    }
    for (FragmentId dst = 0; dst < fg_.num_fragments(); ++dst) {
      if (per_dst[dst].empty()) continue;
      Encoder enc;
      enc.WriteVarint(per_dst[dst].size());
      for (const auto* update : per_dst[dst]) {
        enc.WriteU32(update->first);
        EncodeValue(enc, update->second);
      }
      GRAPE_RETURN_NOT_OK(
          world_.Send(i, dst, kTagVertexMessage, enc.TakeBuffer()));
    }
    ghost_updates.clear();
    return Status::OK();
  }

  const FragmentedGraph& fg_;
  Prog prog_;
  GasOptions options_;
  CommWorld world_;
  ThreadPool pool_;

  std::vector<std::vector<Val>> values_;
  std::vector<Bitset> active_;
  std::vector<Status> statuses_;
  std::vector<std::vector<std::pair<VertexId, Val>>> pending_ghosts_;
  GasMetrics metrics_;
};

}  // namespace grape

#endif  // GRAPE_BASELINE_GAS_ENGINE_H_
