#ifndef GRAPE_BASELINE_TRANSPORT_H_
#define GRAPE_BASELINE_TRANSPORT_H_

#include <unordered_map>
#include <vector>

#include "core/codec.h"
#include "partition/fragment.h"
#include "rt/transport.h"

namespace grape {

/// Vertex-addressed message transport shared by the baseline engines
/// (vertex-centric and block-centric): workers exchange (gid, payload)
/// pairs directly, one serialized batch per destination worker per
/// superstep — the Pregel/Blogel wire model, in contrast to GRAPE's
/// coordinator-aggregated update parameters.
template <typename Msg>
class VertexMessageBus {
 public:
  VertexMessageBus(Transport* world, const FragmentedGraph* fg, uint32_t self)
      : world_(world), fg_(fg), self_(self) {}

  /// Buffers a message for the owner of `dst`.
  void Send(VertexId dst, const Msg& msg) {
    outgoing_[(*fg_->owner)[dst]].emplace_back(dst, msg);
    ++logical_sent_;
  }

  /// Buffers with a combiner: per (destination vertex) at this sender, two
  /// messages combine into one (the Giraph combiner optimization).
  template <typename Combiner>
  void SendCombined(VertexId dst, const Msg& msg, Combiner&& combine) {
    auto& slot = combined_[(*fg_->owner)[dst]];
    auto [it, inserted] = slot.try_emplace(dst, msg);
    if (!inserted) {
      it->second = combine(it->second, msg);
    } else {
      ++logical_sent_;
    }
  }

  /// Serializes and ships all buffered messages. Returns how many batches
  /// were sent.
  Status Flush() {
    for (auto& [dst_worker, buffer] : combined_) {
      auto& flat = outgoing_[dst_worker];
      for (auto& [gid, msg] : buffer) flat.emplace_back(gid, msg);
      buffer.clear();
    }
    for (auto& [dst_worker, buffer] : outgoing_) {
      if (buffer.empty()) continue;
      Encoder enc;
      enc.WriteVarint(buffer.size());
      for (const auto& [gid, msg] : buffer) {
        enc.WriteU32(gid);
        EncodeValue(enc, msg);
      }
      GRAPE_RETURN_NOT_OK(
          world_->Send(self_, dst_worker, kTagVertexMessage, enc.TakeBuffer()));
      buffer.clear();
    }
    return Status::OK();
  }

  /// Drains this worker's inbox into per-local-vertex message lists.
  /// Returns the number of messages received.
  Result<size_t> Receive(const Fragment& frag,
                         std::unordered_map<LocalId, std::vector<Msg>>* inbox) {
    size_t received = 0;
    while (auto rt = world_->TryRecv(self_, kTagVertexMessage)) {
      Decoder dec(rt->payload);
      uint64_t count = 0;
      GRAPE_RETURN_NOT_OK(dec.ReadVarint(&count));
      for (uint64_t i = 0; i < count; ++i) {
        VertexId gid = 0;
        Msg msg{};
        GRAPE_RETURN_NOT_OK(dec.ReadU32(&gid));
        GRAPE_RETURN_NOT_OK(DecodeValue(dec, &msg));
        LocalId lid = frag.Lid(gid);
        if (lid == kInvalidLocal || !frag.IsInner(lid)) {
          return Status::Internal("vertex message for non-owned vertex");
        }
        (*inbox)[lid].push_back(std::move(msg));
        ++received;
      }
    }
    return received;
  }

  uint64_t logical_sent() const { return logical_sent_; }

 private:
  Transport* world_;
  const FragmentedGraph* fg_;
  uint32_t self_;
  std::unordered_map<uint32_t, std::vector<std::pair<VertexId, Msg>>>
      outgoing_;
  std::unordered_map<uint32_t, std::unordered_map<VertexId, Msg>> combined_;
  uint64_t logical_sent_ = 0;
};

}  // namespace grape

#endif  // GRAPE_BASELINE_TRANSPORT_H_
