#ifndef GRAPE_BASELINE_GAS_APPS_H_
#define GRAPE_BASELINE_GAS_APPS_H_

#include <algorithm>

#include "baseline/gas_engine.h"
#include "graph/types.h"

namespace grape {

/// GraphLab-style SSSP: gather the minimum of in-neighbour distance + edge
/// weight; apply keeps the improvement and re-schedules out-neighbours.
class GasSssp {
 public:
  using GatherType = double;
  using VertexValueType = double;
  static constexpr bool kGatherBoth = false;

  explicit GasSssp(VertexId source = 0) : source_(source) {}

  VertexValueType InitValue(VertexId gid, VertexId n) const {
    (void)n;
    return gid == source_ ? 0.0 : kInfDistance;
  }
  bool IsInitiallyActive(VertexId gid) const { return gid == source_; }

  GatherType IdentityGather() const { return kInfDistance; }
  GatherType Gather(const FragNeighbor& in_edge,
                    const VertexValueType& nbr_val) const {
    return nbr_val == kInfDistance ? kInfDistance : nbr_val + in_edge.weight;
  }
  GatherType Merge(const GatherType& a, const GatherType& b) const {
    return std::min(a, b);
  }
  bool Apply(VertexValueType& val, const GatherType& total) const {
    if (total < val) {
      val = total;
      return true;
    }
    return false;
  }

 private:
  VertexId source_;
};

/// GraphLab-style connected components: min label over both edge
/// directions.
class GasCc {
 public:
  using GatherType = VertexId;
  using VertexValueType = VertexId;
  static constexpr bool kGatherBoth = true;

  VertexValueType InitValue(VertexId gid, VertexId n) const {
    (void)n;
    return gid;
  }
  bool IsInitiallyActive(VertexId gid) const {
    (void)gid;
    return true;
  }

  GatherType IdentityGather() const { return kInvalidVertex; }
  GatherType Gather(const FragNeighbor& edge,
                    const VertexValueType& nbr_val) const {
    (void)edge;
    return nbr_val;
  }
  GatherType Merge(const GatherType& a, const GatherType& b) const {
    return std::min(a, b);
  }
  bool Apply(VertexValueType& val, const GatherType& total) const {
    if (total < val) {
      val = total;
      return true;
    }
    return false;
  }
};

}  // namespace grape

#endif  // GRAPE_BASELINE_GAS_APPS_H_
