#ifndef GRAPE_BASELINE_VC_APPS_H_
#define GRAPE_BASELINE_VC_APPS_H_

#include <algorithm>
#include <vector>

#include "baseline/vc_engine.h"
#include "graph/types.h"

namespace grape {

/// Classic Pregel SSSP: distance values with min combiner; improved
/// distances propagate along out-edges; every vertex votes to halt each
/// step and is reactivated by messages.
class VcSssp {
 public:
  using MessageType = double;
  using VertexValueType = double;
  static constexpr bool kHasCombiner = true;
  static MessageType Combine(const MessageType& a, const MessageType& b) {
    return std::min(a, b);
  }

  explicit VcSssp(VertexId source = 0) : source_(source) {}

  VertexValueType InitValue(VertexId gid, VertexId num_vertices) const {
    (void)gid;
    (void)num_vertices;
    return kInfDistance;
  }

  void Compute(VcContext<VcSssp>& ctx, const std::vector<double>& msgs) {
    double best = ctx.Value();
    if (ctx.Superstep() == 0 && ctx.Id() == source_) best = 0.0;
    for (double m : msgs) best = std::min(best, m);
    if (best < ctx.Value()) {
      ctx.Value() = best;
      for (const FragNeighbor& e : ctx.OutEdges()) {
        ctx.SendTo(ctx.GidOf(e.local), best + e.weight);
      }
    }
    ctx.VoteToHalt();
  }

 private:
  VertexId source_;
};

/// Hash-min connected components: labels propagate along both edge
/// directions until the minimum id floods each component.
class VcCc {
 public:
  using MessageType = VertexId;
  using VertexValueType = VertexId;
  static constexpr bool kHasCombiner = true;
  static MessageType Combine(const MessageType& a, const MessageType& b) {
    return std::min(a, b);
  }

  VertexValueType InitValue(VertexId gid, VertexId num_vertices) const {
    (void)num_vertices;
    return gid;
  }

  void Compute(VcContext<VcCc>& ctx, const std::vector<VertexId>& msgs) {
    VertexId best = ctx.Value();
    for (VertexId m : msgs) best = std::min(best, m);
    if (ctx.Superstep() == 0 || best < ctx.Value()) {
      ctx.Value() = best;
      for (const FragNeighbor& e : ctx.OutEdges()) {
        ctx.SendTo(ctx.GidOf(e.local), best);
      }
      for (const FragNeighbor& e : ctx.InEdges()) {
        ctx.SendTo(ctx.GidOf(e.local), best);
      }
    }
    ctx.VoteToHalt();
  }
};

/// Fixed-iteration Pregel PageRank with dropped dangling mass (the same
/// policy as PageRankApp / SeqPageRank so outputs are comparable).
class VcPageRank {
 public:
  using MessageType = double;
  using VertexValueType = double;
  static constexpr bool kHasCombiner = true;
  static MessageType Combine(const MessageType& a, const MessageType& b) {
    return a + b;
  }

  VcPageRank() = default;
  VcPageRank(double damping, uint32_t iterations)
      : damping_(damping), iterations_(iterations) {}

  VertexValueType InitValue(VertexId gid, VertexId num_vertices) const {
    (void)gid;
    return 1.0 / static_cast<double>(num_vertices);
  }

  void Compute(VcContext<VcPageRank>& ctx, const std::vector<double>& msgs) {
    const double n = static_cast<double>(ctx.NumVertices());
    if (ctx.Superstep() > 0) {
      double sum = 0.0;
      for (double m : msgs) sum += m;
      ctx.Value() = (1.0 - damping_) / n + damping_ * sum;
    }
    if (ctx.Superstep() < iterations_) {
      size_t deg = ctx.OutEdges().size();
      if (deg > 0) {
        double contribution = ctx.Value() / static_cast<double>(deg);
        for (const FragNeighbor& e : ctx.OutEdges()) {
          ctx.SendTo(ctx.GidOf(e.local), contribution);
        }
      }
    } else {
      ctx.VoteToHalt();
    }
  }

 private:
  double damping_ = 0.85;
  uint32_t iterations_ = 50;
};

}  // namespace grape

#endif  // GRAPE_BASELINE_VC_APPS_H_
