#ifndef GRAPE_BASELINE_VC_ENGINE_H_
#define GRAPE_BASELINE_VC_ENGINE_H_

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "baseline/transport.h"
#include "partition/fragment.h"
#include "rt/comm_world.h"
#include "util/bitset.h"
#include "util/thread_pool.h"
#include "util/timer.h"

namespace grape {

/// Per-vertex execution context handed to Compute (the Pregel API surface).
template <typename Prog>
class VcContext {
 public:
  using Msg = typename Prog::MessageType;
  using Val = typename Prog::VertexValueType;

  VcContext(const Fragment& frag, LocalId lid, uint32_t superstep, Val* value,
            VertexMessageBus<Msg>* bus, bool* halted)
      : frag_(frag),
        lid_(lid),
        superstep_(superstep),
        value_(value),
        bus_(bus),
        halted_(halted) {}

  VertexId Id() const { return frag_.Gid(lid_); }
  uint32_t Superstep() const { return superstep_; }
  Val& Value() { return *value_; }

  std::span<const FragNeighbor> OutEdges() const {
    return frag_.OutNeighbors(lid_);
  }
  std::span<const FragNeighbor> InEdges() const {
    return frag_.InNeighbors(lid_);
  }
  VertexId GidOf(LocalId lid) const { return frag_.Gid(lid); }
  VertexId NumVertices() const { return frag_.total_num_vertices(); }

  void SendTo(VertexId dst, const Msg& msg) {
    if constexpr (Prog::kHasCombiner) {
      bus_->SendCombined(dst, msg, &Prog::Combine);
    } else {
      bus_->Send(dst, msg);
    }
  }

  void VoteToHalt() { *halted_ = true; }

 private:
  const Fragment& frag_;
  LocalId lid_;
  uint32_t superstep_;
  Val* value_;
  VertexMessageBus<Msg>* bus_;
  bool* halted_;
};

struct VcMetrics {
  uint32_t supersteps = 0;
  double seconds = 0;
  uint64_t messages = 0;         // transport batches (wire messages)
  uint64_t bytes = 0;            // wire bytes
  uint64_t vertex_messages = 0;  // logical vertex-to-vertex messages
};

struct VcOptions {
  uint32_t num_threads = 0;
  uint32_t max_supersteps = 1000000;
};

/// Synchronous vertex-centric ("think like a vertex") engine in the
/// Pregel/Giraph mould, sharing the graph substrate and transport with
/// GRAPE so that Table 1 comparisons isolate the programming/execution
/// model: per-vertex Compute with vote-to-halt, per-edge messages (with
/// sender-side combiners when the program provides one) and no incremental
/// whole-fragment evaluation.
///
/// A program Prog supplies:
///   using MessageType = ...; using VertexValueType = ...;
///   static constexpr bool kHasCombiner = ...;
///   static MessageType Combine(const MessageType&, const MessageType&);
///   VertexValueType InitValue(VertexId gid, VertexId num_vertices) const;
///   void Compute(VcContext<Prog>& ctx, const std::vector<MessageType>&);
template <typename Prog>
class VertexCentricEngine {
 public:
  using Msg = typename Prog::MessageType;
  using Val = typename Prog::VertexValueType;

  VertexCentricEngine(const FragmentedGraph& fg, Prog prog,
                      VcOptions options = {})
      : fg_(fg),
        prog_(std::move(prog)),
        options_(options),
        world_(fg.num_fragments()),
        pool_(options.num_threads == 0 ? fg.num_fragments()
                                       : options.num_threads) {}

  /// Runs to quiescence; per-vertex values are read back with values().
  Status Run() {
    WallTimer timer;
    metrics_ = VcMetrics{};
    world_.ResetStats();
    const FragmentId n = fg_.num_fragments();

    values_.assign(n, {});
    halted_.assign(n, {});
    buses_.clear();
    statuses_.assign(n, Status::OK());
    for (FragmentId i = 0; i < n; ++i) {
      const Fragment& frag = fg_.fragments[i];
      values_[i].resize(frag.num_inner());
      for (LocalId v = 0; v < frag.num_inner(); ++v) {
        values_[i][v] = prog_.InitValue(frag.Gid(v), frag.total_num_vertices());
      }
      halted_[i].assign(frag.num_inner(), false);
      buses_.emplace_back(&world_, &fg_, i);
    }

    uint64_t active_total = 1;
    uint64_t received_total = 1;
    uint32_t superstep = 0;
    while ((active_total > 0 || received_total > 0) &&
           superstep < options_.max_supersteps) {
      std::vector<uint64_t> active(n, 0);
      std::vector<uint64_t> received(n, 0);
      // Phase 1: receive + compute. Outgoing messages stay buffered so a
      // message can never be consumed in the superstep that produced it
      // (BSP delivery semantics).
      pool_.ParallelFor(0, n, [&, superstep](size_t i) {
        const Fragment& frag = fg_.fragments[i];
        std::unordered_map<LocalId, std::vector<Msg>> inbox;
        auto recv = buses_[i].Receive(frag, &inbox);
        if (!recv.ok()) {
          statuses_[i] = recv.status();
          return;
        }
        received[i] = *recv;
        const std::vector<Msg> kNoMsgs;
        for (LocalId v = 0; v < frag.num_inner(); ++v) {
          auto it = inbox.find(v);
          const bool has_msgs = it != inbox.end();
          if (has_msgs) halted_[i][v] = false;  // message reactivates
          if (superstep == 0 || !halted_[i][v]) {
            bool halt = false;
            VcContext<Prog> ctx(frag, v, superstep, &values_[i][v],
                                &buses_[i], &halt);
            prog_.Compute(ctx, has_msgs ? it->second : kNoMsgs);
            halted_[i][v] = halt;
            if (!halt) ++active[i];
          }
        }
      });
      // Phase 2 (after the implicit barrier): ship buffered messages.
      pool_.ParallelFor(0, n, [&](size_t i) {
        Status s = buses_[i].Flush();
        if (!s.ok()) statuses_[i] = s;
      });
      for (FragmentId i = 0; i < n; ++i) {
        GRAPE_RETURN_NOT_OK(statuses_[i]);
      }
      active_total = 0;
      received_total = 0;
      for (FragmentId i = 0; i < n; ++i) active_total += active[i];
      // Messages produced this superstep are pending in mailboxes.
      for (FragmentId i = 0; i < n; ++i) {
        received_total += world_.PendingCount(i);
      }
      ++superstep;
    }

    CommStats cs = world_.stats();
    metrics_.supersteps = superstep;
    metrics_.messages = cs.messages;
    metrics_.bytes = cs.bytes;
    for (auto& bus : buses_) metrics_.vertex_messages += bus.logical_sent();
    metrics_.seconds = timer.ElapsedSeconds();
    return Status::OK();
  }

  /// value of `gid` after Run().
  const Val& ValueOf(VertexId gid) const {
    FragmentId f = (*fg_.owner)[gid];
    LocalId lid = fg_.fragments[f].Lid(gid);
    return values_[f][lid];
  }

  const VcMetrics& metrics() const { return metrics_; }

 private:
  const FragmentedGraph& fg_;
  Prog prog_;
  VcOptions options_;
  CommWorld world_;
  ThreadPool pool_;

  std::vector<std::vector<Val>> values_;
  std::vector<std::vector<bool>> halted_;
  std::vector<VertexMessageBus<Msg>> buses_;
  std::vector<Status> statuses_;
  VcMetrics metrics_;
};

}  // namespace grape

#endif  // GRAPE_BASELINE_VC_ENGINE_H_
