#ifndef GRAPE_BASELINE_BLOCK_APPS_H_
#define GRAPE_BASELINE_BLOCK_APPS_H_

#include <algorithm>
#include <unordered_map>
#include <vector>

#include "baseline/block_engine.h"
#include "graph/types.h"

namespace grape {

/// Blogel-style SSSP: B-compute applies incoming distances and then runs
/// Bellman-Ford sweeps over the whole block until the block is locally
/// stable — a full (unbounded) local evaluation each superstep, in contrast
/// to GRAPE's heap-based bounded IncEval. Each vertex improved in this
/// superstep emits one uncombined message per cross edge.
class BlockSssp {
 public:
  using MessageType = double;
  using VertexValueType = double;

  explicit BlockSssp(VertexId source = 0) : source_(source) {}

  VertexValueType InitValue(VertexId gid, VertexId num_vertices) const {
    (void)num_vertices;
    return gid == source_ ? 0.0 : kInfDistance;
  }

  bool BCompute(const Fragment& frag, std::vector<double>& vals,
                const std::unordered_map<LocalId, std::vector<double>>& inbox,
                uint32_t superstep, VertexMessageBus<double>* bus) {
    std::vector<uint8_t> improved(frag.num_inner(), superstep == 0 ? 1 : 0);
    bool changed = false;
    for (const auto& [lid, msgs] : inbox) {
      for (double m : msgs) {
        if (m < vals[lid]) {
          vals[lid] = m;
          improved[lid] = 1;
          changed = true;
        }
      }
    }
    // Bellman-Ford sweeps over all inner vertices until stable: the whole
    // block is rescanned per sweep regardless of how few vertices changed.
    bool swept = true;
    while (swept) {
      swept = false;
      for (LocalId v = 0; v < frag.num_inner(); ++v) {
        if (vals[v] == kInfDistance) continue;
        for (const FragNeighbor& e : frag.OutNeighbors(v)) {
          if (!frag.IsInner(e.local)) continue;
          double nd = vals[v] + e.weight;
          if (nd < vals[e.local]) {
            vals[e.local] = nd;
            improved[e.local] = 1;
            swept = true;
            changed = true;
          }
        }
      }
    }
    bool sent = false;
    for (LocalId v = 0; v < frag.num_inner(); ++v) {
      if (!improved[v] || vals[v] == kInfDistance) continue;
      for (const FragNeighbor& e : frag.OutNeighbors(v)) {
        if (frag.IsInner(e.local)) continue;
        bus->Send(frag.Gid(e.local), vals[v] + e.weight);
        sent = true;
      }
    }
    return changed || sent;
  }

 private:
  VertexId source_;
};

/// Blogel-style connected components: min-label flooding with full local
/// sweeps per superstep.
class BlockCc {
 public:
  using MessageType = VertexId;
  using VertexValueType = VertexId;

  VertexValueType InitValue(VertexId gid, VertexId num_vertices) const {
    (void)num_vertices;
    return gid;
  }

  bool BCompute(const Fragment& frag, std::vector<VertexId>& vals,
                const std::unordered_map<LocalId, std::vector<VertexId>>& inbox,
                uint32_t superstep, VertexMessageBus<VertexId>* bus) {
    std::vector<uint8_t> improved(frag.num_inner(), superstep == 0 ? 1 : 0);
    bool changed = false;
    for (const auto& [lid, msgs] : inbox) {
      for (VertexId m : msgs) {
        if (m < vals[lid]) {
          vals[lid] = m;
          improved[lid] = 1;
          changed = true;
        }
      }
    }
    bool swept = true;
    while (swept) {
      swept = false;
      for (LocalId v = 0; v < frag.num_inner(); ++v) {
        auto relax = [&](const FragNeighbor& e) {
          if (!frag.IsInner(e.local)) return;
          if (vals[v] < vals[e.local]) {
            vals[e.local] = vals[v];
            improved[e.local] = 1;
            swept = true;
            changed = true;
          } else if (vals[e.local] < vals[v]) {
            vals[v] = vals[e.local];
            improved[v] = 1;
            swept = true;
            changed = true;
          }
        };
        for (const FragNeighbor& e : frag.OutNeighbors(v)) relax(e);
        if (frag.is_directed()) {
          for (const FragNeighbor& e : frag.InNeighbors(v)) relax(e);
        }
      }
    }
    bool sent = false;
    for (LocalId v = 0; v < frag.num_inner(); ++v) {
      if (!improved[v]) continue;
      auto emit = [&](const FragNeighbor& e) {
        if (frag.IsInner(e.local)) return;
        bus->Send(frag.Gid(e.local), vals[v]);
        sent = true;
      };
      for (const FragNeighbor& e : frag.OutNeighbors(v)) emit(e);
      if (frag.is_directed()) {
        for (const FragNeighbor& e : frag.InNeighbors(v)) emit(e);
      }
    }
    return changed || sent;
  }
};

}  // namespace grape

#endif  // GRAPE_BASELINE_BLOCK_APPS_H_
