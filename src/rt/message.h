#ifndef GRAPE_RT_MESSAGE_H_
#define GRAPE_RT_MESSAGE_H_

#include <cstdint>
#include <vector>

#include "graph/types.h"

namespace grape {

/// Rank of the coordinator P0 in a CommWorld.
inline constexpr uint32_t kCoordinatorRank = 0;

/// A serialized message travelling between ranks. Payloads are opaque byte
/// buffers produced by Encoder; the tag distinguishes logical streams within
/// one superstep (e.g. parameter updates vs. control).
struct RtMessage {
  uint32_t from = 0;
  uint32_t to = 0;
  uint32_t tag = 0;
  std::vector<uint8_t> payload;
};

/// Message tags used by the engines.
enum MessageTag : uint32_t {
  kTagParamUpdate = 1,
  kTagControl = 2,
  kTagVertexMessage = 3,
  kTagPartialResult = 4,
};

}  // namespace grape

#endif  // GRAPE_RT_MESSAGE_H_
