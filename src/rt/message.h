#ifndef GRAPE_RT_MESSAGE_H_
#define GRAPE_RT_MESSAGE_H_

#include <cstdint>
#include <mutex>
#include <utility>
#include <vector>

#include "graph/types.h"

namespace grape {

/// Rank of the coordinator P0 in a CommWorld.
inline constexpr uint32_t kCoordinatorRank = 0;

/// A serialized message travelling between ranks. Payloads are opaque byte
/// buffers produced by Encoder; the tag distinguishes logical streams within
/// one superstep (e.g. parameter updates vs. control).
struct RtMessage {
  uint32_t from = 0;
  uint32_t to = 0;
  uint32_t tag = 0;
  std::vector<uint8_t> payload;
};

/// Message tags used by the engines.
enum MessageTag : uint32_t {
  kTagParamUpdate = 1,
  kTagControl = 2,
  kTagVertexMessage = 3,
  kTagPartialResult = 4,
};

/// Free list of payload buffers. Senders acquire a buffer, encode into it,
/// and ship it; receivers release consumed payloads back. Because vectors
/// keep their capacity across the acquire/release cycle, steady-state
/// supersteps encode and decode without touching the heap. Thread-safe: the
/// engine's workers flush and apply concurrently.
class BufferPool {
 public:
  std::vector<uint8_t> Acquire() {
    std::lock_guard<std::mutex> lock(mu_);
    if (free_.empty()) return {};
    std::vector<uint8_t> buf = std::move(free_.back());
    free_.pop_back();
    return buf;
  }

  void Release(std::vector<uint8_t>&& buf) {
    if (buf.capacity() == 0) return;
    std::lock_guard<std::mutex> lock(mu_);
    if (free_.size() >= kMaxPooled) return;  // let oversupply die
    free_.push_back(std::move(buf));
  }

  size_t pooled() const {
    std::lock_guard<std::mutex> lock(mu_);
    return free_.size();
  }

 private:
  /// Bounds pool growth after bursty rounds (e.g. PEval's first flush).
  static constexpr size_t kMaxPooled = 1024;

  mutable std::mutex mu_;
  std::vector<std::vector<uint8_t>> free_;
};

}  // namespace grape

#endif  // GRAPE_RT_MESSAGE_H_
