#include "rt/fd_registry.h"

#include <unistd.h>

namespace grape {
namespace rt_internal {

std::mutex& FdRegistryMutex() {
  static std::mutex mu;
  return mu;
}

std::set<int>& FdRegistry() {
  static std::set<int> fds;
  return fds;
}

void CloseAndUnregisterFds(const std::vector<int>& fds) {
  std::lock_guard<std::mutex> lock(FdRegistryMutex());
  for (int fd : fds) {
    close(fd);
    FdRegistry().erase(fd);
  }
}

}  // namespace rt_internal
}  // namespace grape
