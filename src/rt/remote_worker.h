#ifndef GRAPE_RT_REMOTE_WORKER_H_
#define GRAPE_RT_REMOTE_WORKER_H_

#include <unistd.h>

#include <atomic>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "core/worker_core.h"
#include "graph/mutation.h"
#include "partition/fragment.h"
#include "rt/transport.h"
#include "rt/worker_protocol.h"
#include "util/result.h"
#include "util/status.h"
#include "util/thread_pool.h"

namespace grape {

/// What one worker phase (PEval or IncEval) produced: the staged outgoing
/// buffers plus every counter the engine's metrics and termination logic
/// need (see WorkerAck in rt/worker_protocol.h).
struct WorkerPhaseOutput {
  std::vector<WorkerSend> sends;
  uint64_t dirty = 0;
  uint64_t direct_updates = 0;
  uint64_t updated_count = 0;
  uint64_t mono_violations = 0;
  double global = 0.0;
};

/// Process-wide store of fragments assembled by distributed builds
/// (rt/distributed_load.h), keyed by (build token, worker rank). A
/// kTagWkLoad frame flagged kWkLoadUseResident attaches to an entry
/// instead of decoding a shipped fragment, so the graph never leaves the
/// endpoint process. Entries are shared_ptrs: a loaded WorkerCore keeps
/// its fragment alive even across later builds.
class ResidentFragmentStore {
 public:
  static ResidentFragmentStore& Global();

  void Put(uint64_t token, uint32_t rank,
           std::shared_ptr<const Fragment> fragment);
  std::shared_ptr<const Fragment> Get(uint64_t token, uint32_t rank) const;
  /// Drops every rank's entry for one build (frees the graph once no
  /// loaded worker references it).
  void Erase(uint64_t token);

 private:
  mutable std::mutex mu_;
  std::map<std::pair<uint64_t, uint32_t>, std::shared_ptr<const Fragment>>
      fragments_;
};

/// Type-erased worker for one (app, fragment) pair — the virtual seam
/// between the generic protocol host below and the templated
/// WorkerCore<App> compute. Instantiated by name through
/// WorkerAppRegistry, so an endpoint process can host any registered PIE
/// program without compile-time knowledge of the app.
class WorkerAppServerBase {
 public:
  virtual ~WorkerAppServerBase() = default;

  /// Decodes query + fragment (the name and flags were already consumed)
  /// and initializes the parameter store. `rank` is this worker's
  /// transport rank; the shipped fragment must be fragment rank-1. `flags`
  /// is the kTagWkLoad flag byte: kWkLoadUseResident resolves a build
  /// token through ResidentFragmentStore instead of decoding a fragment;
  /// kWkLoadStashResident decodes a shipped fragment AND deposits it in
  /// the store under the token that precedes it on the wire.
  virtual Status Load(Decoder& dec, uint32_t rank, bool check_monotonicity,
                      uint8_t flags) = 0;
  /// Re-seeds this already-loaded server for the next query of a session
  /// (kTagWkQuery): decodes only the query — the fragment stays exactly
  /// as loaded — and rebuilds the core around a fresh app instance, so
  /// stateful apps drop every trace of the previous query.
  virtual Status ResetQuery(Decoder& dec, bool check_monotonicity) = 0;
  /// Frontier-parallel lane count for subsequent Load/Restore calls
  /// (kWkLoadComputeThreads). <= 1 keeps the sequential path; the host
  /// calls this before Load, so the server can size its own pool — each
  /// endpoint process parallelizes within itself, never across ranks.
  virtual void SetComputeThreads(uint32_t threads) = 0;
  virtual Status PEval(BufferPool& pool, WorkerPhaseOutput* out) = 0;
  virtual void BeginApply() = 0;
  virtual Status ApplyFrame(const std::vector<uint8_t>& payload) = 0;
  virtual Status IncEval(bool incremental, BufferPool& pool,
                         WorkerPhaseOutput* out) = 0;
  virtual Status EncodePartial(Encoder& enc) const = 0;
  virtual bool ShouldTerminate(uint32_t round, double global) const = 0;
  virtual uint32_t num_fragments() const = 0;

  /// Serializes everything a respawned worker needs to resume this one's
  /// run mid-stream: query + fragment + WorkerCore state (+ app state for
  /// CheckpointableApp programs). Only called at a superstep barrier.
  virtual Status EncodeCheckpoint(Encoder& enc) const = 0;
  /// Inverse of EncodeCheckpoint on a fresh server instance. All-or-
  /// nothing: a failure leaves the caller free to discard this instance.
  virtual Status RestoreFromCheckpoint(Decoder& dec, uint32_t rank,
                                       bool check_monotonicity) = 0;

  // Streaming mutations (kTagWkMutate .. kTagWkIncStart): the warm path
  // that rebuilds the resident fragment in place and keeps the converged
  // parameter store alive across the rebuild. Inner lids are stable under
  // edge mutation (the inner set is fixed by vertex ownership), so inner
  // values migrate by lid; the rebuilt outer set starts cold and is
  // overwritten with the owners' converged values through the
  // kTagWkMutMirror / kTagWkMutVals exchange the host drives.

  /// Decodes a MutationBatch and rebuilds this worker's fragment from its
  /// mutated incident edge view (FragmentBuilder::MutateFragment). The
  /// core is re-seated on the rebuilt fragment with inner values carried
  /// over; mirror destinations stay unresolved until the host applies the
  /// peers' kTagWkMutMirror answers. Returns the rebuilt fragment so the
  /// host can compute its own mirror answers.
  virtual Result<const Fragment*> MutateFragment(Decoder& dec,
                                                 bool check_monotonicity) = 0;
  /// Applies one peer's rebuilt mirror placements (patching this
  /// fragment's routing plan), exactly like the build path's mirror step.
  virtual Status ApplyMutMirror(FragmentId from,
                                const std::vector<MirrorLidEntry>& answers) = 0;
  /// Answers a peer's warm-value request: for each entry — a gid this
  /// worker owns, paired with the REQUESTER's local id for it — encode the
  /// converged inner value under the requester's lid (record-block wire
  /// format, the same codec parameter messages use).
  virtual Status EncodeWarmValues(const std::vector<MirrorLidEntry>& request,
                                  Encoder& enc) = 0;
  /// Absorbs an owner's kTagWkMutVals reply: OVERWRITES the addressed
  /// store slots (no aggregation — at a converged fixpoint an outer copy
  /// can be stale-high, and the owner's value is authoritative).
  virtual Status AbsorbWarmValues(Decoder& dec) = 0;
  /// Verifies the rebuilt routing plan is fully resolved, freezes the
  /// fragment (re-depositing it in ResidentFragmentStore when this load
  /// carried a token), re-baselines monotonicity tracking on the warm
  /// values, and reports the new shape for the mutate ack.
  virtual Status FinishMutation(WkBuildAck* shape) = 0;
  /// Seeds the warm IncEval's initial M_i with the local ids (inner AND
  /// outer copies) of the batch's touched vertices.
  virtual Status SeedTouched(const std::vector<VertexId>& gids) = 0;
};

/// Templated worker server: WorkerCore<App> behind the virtual seam.
template <PIEProgram App>
  requires RemoteCompatibleApp<App>
class WorkerServer final : public WorkerAppServerBase {
 public:
  using Query = typename App::QueryType;
  using Value = typename App::ValueType;

  Status Load(Decoder& dec, uint32_t rank, bool check_monotonicity,
              uint8_t flags) override {
    GRAPE_RETURN_NOT_OK(DecodeValue(dec, &query_));
    rank_ = rank;
    token_ = 0;
    if ((flags & kWkLoadUseResident) != 0) {
      uint64_t token = 0;
      GRAPE_RETURN_NOT_OK(dec.ReadU64(&token));
      resident_ = ResidentFragmentStore::Global().Get(token, rank);
      if (resident_ == nullptr) {
        return Status::NotFound(
            "no resident fragment for build token " + std::to_string(token) +
            " at rank " + std::to_string(rank) +
            " (was the distributed load run on this world?)");
      }
      token_ = token;
    } else if ((flags & kWkLoadStashResident) != 0) {
      // Ship-and-stash: decode the fragment into shared ownership and
      // deposit it under the session token, so every later load on this
      // world (another query class's engine, a post-reload session)
      // attaches by token instead of re-shipping the graph.
      uint64_t token = 0;
      GRAPE_RETURN_NOT_OK(dec.ReadU64(&token));
      auto owned = std::make_shared<Fragment>();
      GRAPE_RETURN_NOT_OK(Fragment::DecodeFrom(dec, owned.get()));
      ResidentFragmentStore::Global().Put(token, rank, owned);
      resident_ = std::move(owned);
      token_ = token;
    } else {
      GRAPE_RETURN_NOT_OK(Fragment::DecodeFrom(dec, &frag_));
      resident_.reset();
    }
    const Fragment& frag = resident_ ? *resident_ : frag_;
    if (frag.fid() + 1 != rank) {
      return Status::InvalidArgument(
          "fragment " + std::to_string(frag.fid()) + " shipped to rank " +
          std::to_string(rank) + " (worker rank must be fid + 1)");
    }
    core_.emplace(frag, App{});
    MaybeEnableParallel();
    core_->Reset(check_monotonicity);
    return Status::OK();
  }

  Status ResetQuery(Decoder& dec, bool check_monotonicity) override {
    if (!core_.has_value()) {
      return Status::FailedPrecondition(
          "session query before a successful load");
    }
    GRAPE_RETURN_NOT_OK(DecodeValue(dec, &query_));
    const Fragment& frag = resident_ ? *resident_ : frag_;
    core_.emplace(frag, App{});
    MaybeEnableParallel();
    core_->Reset(check_monotonicity);
    return Status::OK();
  }

  void SetComputeThreads(uint32_t threads) override {
    compute_threads_ = threads;
    if (threads > 1 && pool_ == nullptr) {
      pool_ = std::make_unique<ThreadPool>(threads);
    }
  }

  Status PEval(BufferPool& pool, WorkerPhaseOutput* out) override {
    core_->PEval(query_);
    return FlushInto(pool, out);
  }

  void BeginApply() override { core_->BeginApply(); }

  Status ApplyFrame(const std::vector<uint8_t>& payload) override {
    return core_->ApplyBatch(payload);
  }

  Status IncEval(bool incremental, BufferPool& pool,
                 WorkerPhaseOutput* out) override {
    core_->FinishApply();
    core_->IncEval(query_, incremental);
    return FlushInto(pool, out);
  }

  Status EncodePartial(Encoder& enc) const override {
    EncodeValue(enc, core_->GetPartial(query_));
    return Status::OK();
  }

  bool ShouldTerminate(uint32_t round, double global) const override {
    return core_->ShouldTerminate(round, global);
  }

  uint32_t num_fragments() const override {
    return (resident_ ? *resident_ : frag_).num_fragments();
  }

  Status EncodeCheckpoint(Encoder& enc) const override {
    EncodeValue(enc, query_);
    // The fragment ships whole even when it came from the resident store:
    // a post-recovery world's endpoint processes are fresh forks that
    // never saw the distributed build, so the checkpoint must be
    // self-sufficient.
    (resident_ ? *resident_ : frag_).EncodeTo(enc);
    core_->EncodeCheckpoint(enc);
    return Status::OK();
  }

  Status RestoreFromCheckpoint(Decoder& dec, uint32_t rank,
                               bool check_monotonicity) override {
    GRAPE_RETURN_NOT_OK(DecodeValue(dec, &query_));
    GRAPE_RETURN_NOT_OK(Fragment::DecodeFrom(dec, &frag_));
    resident_.reset();
    rank_ = rank;
    token_ = 0;
    if (frag_.fid() + 1 != rank) {
      return Status::InvalidArgument(
          "checkpoint of fragment " + std::to_string(frag_.fid()) +
          " restored at rank " + std::to_string(rank));
    }
    core_.emplace(frag_, App{});
    MaybeEnableParallel();
    core_->Reset(check_monotonicity);
    return core_->RestoreCheckpoint(dec);
  }

  Result<const Fragment*> MutateFragment(Decoder& dec,
                                         bool check_monotonicity) override {
    if (!core_.has_value()) {
      return Status::FailedPrecondition(
          "mutation before a successful load");
    }
    MutationBatch batch;
    GRAPE_RETURN_NOT_OK(MutationBatch::DecodeFrom(dec, &batch));
    const Fragment& old = resident_ ? *resident_ : frag_;
    auto rebuilt = FragmentBuilder::MutateFragment(old, batch);
    if (!rebuilt.ok()) return rebuilt.status();
    auto owned = std::make_shared<Fragment>(std::move(rebuilt).value());
    if (owned->num_inner() != old.num_inner()) {
      return Status::Internal(
          "edge mutation changed the inner vertex set (ownership is fixed)");
    }
    // The warm state: converged inner values survive the rebuild by lid
    // (the inner order — ascending gid among owned vertices — is a
    // function of ownership alone, which mutations never change).
    const std::vector<Value>& vals = core_->store().values();
    std::vector<Value> warm(vals.begin(), vals.begin() + old.num_inner());
    mut_frag_ = owned;
    core_.emplace(*mut_frag_, App{});
    MaybeEnableParallel();
    core_->Reset(check_monotonicity);
    ParamStore<Value>& store = core_->store();
    for (LocalId i = 0; i < old.num_inner(); ++i) {
      store.UntrackedRef(i) = std::move(warm[i]);
    }
    return static_cast<const Fragment*>(mut_frag_.get());
  }

  Status ApplyMutMirror(FragmentId from,
                        const std::vector<MirrorLidEntry>& answers) override {
    if (mut_frag_ == nullptr) {
      return Status::FailedPrecondition(
          "mutation mirror answers without a rebuilt fragment");
    }
    return FragmentBuilder::ApplyMirrorAnswers(mut_frag_.get(), from, answers);
  }

  Status EncodeWarmValues(const std::vector<MirrorLidEntry>& request,
                          Encoder& enc) override {
    if (!core_.has_value() || mut_frag_ == nullptr) {
      return Status::FailedPrecondition(
          "warm-value request without a rebuilt fragment");
    }
    const Fragment& frag = *mut_frag_;
    const ParamStore<Value>& store = core_->store();
    std::vector<uint32_t> lids;
    std::vector<Value> values;
    lids.reserve(request.size());
    values.reserve(request.size());
    for (const MirrorLidEntry& e : request) {
      const LocalId here = frag.Lid(e.gid);
      if (here == kInvalidLocal || here >= frag.num_inner()) {
        return Status::InvalidArgument(
            "warm-value request for gid " + std::to_string(e.gid) +
            " not owned by fragment " + std::to_string(frag.fid()));
      }
      lids.push_back(e.lid);  // addressed in the REQUESTER's lid space
      values.push_back(store.Get(here));
    }
    EncodeOwnedRecords(enc, lids, values);
    return Status::OK();
  }

  Status AbsorbWarmValues(Decoder& dec) override {
    if (!core_.has_value()) {
      return Status::FailedPrecondition(
          "warm values before a successful load");
    }
    std::vector<uint32_t> lids;
    std::vector<Value> values;
    GRAPE_RETURN_NOT_OK(DecodeRecordBlock(dec, &lids, &values));
    ParamStore<Value>& store = core_->store();
    for (size_t k = 0; k < lids.size(); ++k) {
      if (lids[k] >= static_cast<uint32_t>(store.size())) {
        return Status::Corruption(
            "warm value addresses lid " + std::to_string(lids[k]) +
            " outside the rebuilt fragment");
      }
      store.UntrackedRef(lids[k]) = std::move(values[k]);
    }
    return Status::OK();
  }

  Status FinishMutation(WkBuildAck* shape) override {
    if (mut_frag_ == nullptr || !core_.has_value()) {
      return Status::FailedPrecondition(
          "mutation finish without a rebuilt fragment");
    }
    GRAPE_RETURN_NOT_OK(FragmentBuilder::CheckMirrorsResolved(*mut_frag_));
    // Inner values are the previous fixpoint, outer values the owners'
    // replies: the store now matches what a local warm start holds, and
    // that — not InitValue — is the monotonicity floor the incremental
    // rounds descend from.
    core_->SyncMonotonicityBaseline();
    shape->token = token_;
    shape->num_inner = mut_frag_->num_inner();
    shape->num_local = mut_frag_->num_local();
    shape->num_arcs = mut_frag_->num_edges();
    std::shared_ptr<const Fragment> frozen = std::move(mut_frag_);
    mut_frag_.reset();
    resident_ = frozen;
    // Loads that carried a token (resident attach or ship-and-stash)
    // re-deposit under the SAME key: every other engine attached to this
    // world sees the mutated graph on its next load, without a new epoch.
    if (token_ != 0) {
      ResidentFragmentStore::Global().Put(token_, rank_, std::move(frozen));
    }
    return Status::OK();
  }

  Status SeedTouched(const std::vector<VertexId>& gids) override {
    if (!core_.has_value()) {
      return Status::FailedPrecondition(
          "warm IncEval start before a successful load");
    }
    const Fragment& frag = resident_ ? *resident_ : frag_;
    std::vector<LocalId> lids;
    lids.reserve(gids.size());
    for (VertexId gid : gids) {
      const LocalId lid = frag.Lid(gid);
      if (lid != kInvalidLocal) lids.push_back(lid);
    }
    core_->SeedUpdated(lids);
    return Status::OK();
  }

 private:
  void MaybeEnableParallel() {
    if (compute_threads_ > 1) {
      core_->EnableParallel(pool_.get(), compute_threads_);
    }
  }

  Status FlushInto(BufferPool& pool, WorkerPhaseOutput* out) {
    // updated_count is read after IncEval so the ablation's expansion of
    // M_i is visible, exactly like the engine's local RecordRound.
    out->updated_count = core_->updated().size();
    core_->Flush(pool, &out->sends);
    out->dirty = core_->flush_dirty();
    out->mono_violations = core_->monotonicity_violations();
    out->global = core_->GlobalValue();
    for (const WorkerSend& s : out->sends) {
      out->direct_updates += s.direct_updates;
    }
    return Status::OK();
  }

  Query query_{};
  Fragment frag_;
  /// Set instead of frag_ for resident loads; shared with the store so the
  /// core's fragment outlives later builds.
  std::shared_ptr<const Fragment> resident_;
  /// In-flight mutation rebuild: mutable until FinishMutation freezes it
  /// into resident_. The core already points at it (routing-plan patches
  /// from ApplyMutMirror are visible in place).
  std::shared_ptr<Fragment> mut_frag_;
  /// Transport rank and resident-store token of the current load (token 0
  /// for plain fragment ships) — FinishMutation re-deposits under them.
  uint32_t rank_ = 0;
  uint64_t token_ = 0;
  std::optional<WorkerCore<App>> core_;
  /// Frontier-parallel execution (kWkLoadComputeThreads): this endpoint's
  /// own lane pool, created on first demand and reused across reloads.
  uint32_t compute_threads_ = 0;
  std::unique_ptr<ThreadPool> pool_;
};

/// Process-wide registry of remotely instantiable PIE programs: the
/// "plug" panel an endpoint process consults when a kTagWkLoad frame
/// names an app. Populated by RegisterBuiltinWorkerApps()
/// (apps/register_apps.h) and by the engine for its own app type.
/// IMPORTANT: multi-process backends fork their endpoints at transport
/// Create time, and a fork snapshots this registry — register before
/// building the transport in any process that should host remote workers.
class WorkerAppRegistry {
 public:
  using Factory = std::function<std::unique_ptr<WorkerAppServerBase>()>;

  static WorkerAppRegistry& Global();

  void Register(const std::string& name, Factory factory);
  bool Has(const std::string& name) const;
  Result<Factory> Get(const std::string& name) const;
  std::vector<std::string> Names() const;

 private:
  mutable std::mutex mu_;
  std::map<std::string, Factory> factories_;
};

/// Registers App under `name` (idempotent overwrite).
template <typename App>
  requires RemoteCompatibleApp<App>
void RegisterRemoteWorker(const std::string& name) {
  WorkerAppRegistry::Global().Register(
      name, [] { return std::make_unique<WorkerServer<App>>(); });
}

/// The generic worker-protocol state machine for one rank: feed it every
/// worker-tagged frame addressed to the rank, it emits reply frames
/// through `emit`. Deliberately non-blocking — a frame either completes a
/// step or is buffered against the explicit per-sender delivery
/// expectations of the next kTagWkRunIncEval — so the same host runs
/// single-threaded inside a socket child's relay loop, a tcp endpoint's
/// poll loop, or an in-process worker thread.
///
/// Protocol violations (unknown app, corrupt frame, command out of order
/// — e.g. a duplicated control frame injected by a flaky substrate) are
/// answered with kTagWkError and do not kill the host; only emit failures
/// (the world is gone) return non-OK.
class RemoteWorkerHost {
 public:
  /// Ships one outbound frame (from = this rank). Must not reenter the
  /// host except through frame delivery (see endpoint relay loops).
  using Emit = std::function<Status(uint32_t to, uint32_t tag,
                                    std::vector<uint8_t> payload)>;

  /// `pool` recycles encode buffers; pass the transport's pool when the
  /// host shares a process with it, nullptr for an owned pool.
  RemoteWorkerHost(uint32_t rank, Emit emit, BufferPool* pool = nullptr);

  RemoteWorkerHost(const RemoteWorkerHost&) = delete;
  RemoteWorkerHost& operator=(const RemoteWorkerHost&) = delete;

  /// Handles one worker-protocol frame. Returns non-OK only when the
  /// host cannot continue (emit failed); the endpoint should then tear
  /// down, mirroring any other dead-peer situation.
  Status OnFrame(uint32_t from, uint32_t tag, std::vector<uint8_t> payload);

  bool shut_down() const { return shut_down_; }

 private:
  Status HandleLoad(const std::vector<uint8_t>& payload);
  /// kTagWkQuery: re-seed the loaded server for a session's next query.
  Status HandleQuery(const std::vector<uint8_t>& payload);
  Status MaybeRunIncEval();
  Status RunPhase(uint8_t phase, uint32_t round, bool incremental);
  // Fault tolerance (rt/checkpoint.h).
  Status HandleCheckpointCmd(const std::vector<uint8_t>& payload);
  /// Snapshots once this barrier's direct-frame expectations are all
  /// buffered — without consuming them, so the image captures the exact
  /// message frontier and execution continues unchanged afterwards.
  Status MaybeCheckpoint();
  Status HandleRestore(const std::vector<uint8_t>& payload);
  /// Reports a worker-side failure to the engine (code + message).
  Status EmitError(const Status& error);
  Status EmitAck(const WorkerAck& ack);

  // Distributed build steps (kTagWkShard .. kTagWkBuildAck).
  Status HandleShard(const std::vector<uint8_t>& payload);
  Status HandleBuildCmd(const std::vector<uint8_t>& payload);
  Status HandleExchange(const std::vector<uint8_t>& payload);
  Status HandleMirror(uint32_t from, std::vector<uint8_t> payload);
  /// Assembles the fragment once the build command arrived and every
  /// peer's final exchange chunk is in; sends mirror answers.
  Status MaybeAssemble();
  Status ApplyMirrorFrame(uint32_t from, const std::vector<uint8_t>& payload);
  /// Deposits the fragment and acks once every peer answered.
  Status MaybeFinishBuild();

  // Streaming mutation steps (kTagWkMutate .. kTagWkIncStart): rebuild in
  // place, then the peer-to-peer mirror-placement + warm-value exchange.
  Status HandleMutate(const std::vector<uint8_t>& payload);
  Status HandleMutMirror(uint32_t from, std::vector<uint8_t> payload);
  Status HandleMutVals(uint32_t from, std::vector<uint8_t> payload);
  /// Applies one peer's rebuilt mirror placements and answers it with the
  /// warm values for the outer copies it declared.
  Status ApplyMutMirrorFrame(uint32_t from,
                             const std::vector<uint8_t>& payload);
  Status ApplyMutValsFrame(const std::vector<uint8_t>& payload);
  /// Freezes the rebuilt fragment and acks the new shape once every
  /// peer's placements were applied AND every owner's values absorbed.
  Status MaybeFinishMutate();
  /// kTagWkIncStart: seed M_i with the touched gids and run the warm
  /// IncEval round 1 (no query frame — the store keeps its warm state).
  Status HandleIncStart(const std::vector<uint8_t>& payload);

  uint32_t rank_;
  Emit emit_;
  BufferPool owned_pool_;
  BufferPool* pool_;

  std::unique_ptr<WorkerAppServerBase> server_;
  bool check_monotonicity_ = false;
  bool shut_down_ = false;

  struct PendingFrame {
    uint32_t from;
    uint32_t tag;
    std::vector<uint8_t> payload;
  };
  std::vector<PendingFrame> pending_;  // arrival order preserved
  bool inc_pending_ = false;
  IncEvalCommand cmd_;
  bool ckpt_pending_ = false;
  WkCheckpointCommand ckpt_cmd_;

  /// One in-flight distributed build. Independent of the compute state
  /// above: a world can build the next graph while a loaded worker idles.
  struct BuildSession {
    uint64_t token = 0;
    WkShardCommand cmd;
    /// Own shard, staged until the build command routes it. Kept apart
    /// from `edges`: exchange chunks from fast peers can land before our
    /// own build command, and must never be re-routed as shard input.
    std::vector<ShardEdge> shard_edges;
    /// Exchange chunks and self-owned edges accumulate here until
    /// assembly.
    std::vector<ShardEdge> edges;
    uint64_t shard_edge_count = 0;
    VertexId total_vertices = 0;
    bool exchanging = false;   // build command processed, shard routed
    uint32_t finals_seen = 0;  // peers whose last exchange chunk arrived
    bool assembled = false;
    uint32_t mirrors_seen = 0;  // peers whose mirror answers were applied
    std::shared_ptr<const std::vector<FragmentId>> owner;
    std::shared_ptr<const std::vector<LocalId>> owner_lid;
    std::shared_ptr<Fragment> fragment;
    /// Mirror frames from peers that assembled before we did.
    std::vector<std::pair<uint32_t, std::vector<uint8_t>>> early_mirrors;
  };
  std::optional<BuildSession> build_;

  /// One in-flight streaming mutation. Peers' kTagWkMutMirror /
  /// kTagWkMutVals frames travel on different channels than the
  /// coordinator's kTagWkMutate (FIFO is per channel), so they can arrive
  /// before our own rebuild — buffered here like BuildSession's
  /// early_mirrors. The engine serializes mutations (one batch in flight
  /// per world), so no token is needed to match frames to the session.
  struct MutSession {
    bool rebuilt = false;
    uint32_t mirrors_seen = 0;
    uint32_t vals_seen = 0;
    std::vector<std::pair<uint32_t, std::vector<uint8_t>>> early_mirrors;
    std::vector<std::pair<uint32_t, std::vector<uint8_t>>> early_vals;
  };
  std::optional<MutSession> mut_;
};

/// Encodes/decodes the kTagWkError payload.
void EncodeWorkerError(Encoder& enc, const Status& error);
Status DecodeWorkerError(const std::vector<uint8_t>& payload);

/// In-process worker threads for backends without endpoint processes
/// (inproc): rank r's worker is a thread of the engine process speaking
/// the exact same protocol over the transport. RAII: construction spawns
/// (when `enable`), destruction stops and joins.
class InThreadWorkers {
 public:
  /// Poll cadence while hot / spins before backing off / cadence once
  /// idle. Defaults match the engine's await loops (EngineTimingOptions in
  /// core/engine.h); the engine passes its configured knobs through.
  InThreadWorkers(Transport* world, uint32_t num_workers, bool enable,
                  uint32_t poll_us = 50, uint32_t idle_spins = 40,
                  uint32_t idle_poll_us = 1000);
  ~InThreadWorkers();

  InThreadWorkers(const InThreadWorkers&) = delete;
  InThreadWorkers& operator=(const InThreadWorkers&) = delete;

 private:
  void Loop(Transport* world, uint32_t rank);

  std::atomic<bool> stop_{false};
  uint32_t poll_us_;
  uint32_t idle_spins_;
  uint32_t idle_poll_us_;
  std::vector<std::thread> threads_;
};

}  // namespace grape

#endif  // GRAPE_RT_REMOTE_WORKER_H_
