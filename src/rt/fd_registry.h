#ifndef GRAPE_RT_FD_REGISTRY_H_
#define GRAPE_RT_FD_REGISTRY_H_

// Process-wide registry of parent-side transport fds, shared by every
// multi-process backend (socket, tcp). A forked endpoint child must close
// ALL registered fds — not just its own transport's — or a child of
// transport B keeps an inherited dup of transport A's channel write ends
// alive, A's children never see EOF, and A's destructor blocks forever on
// its receiver threads. Backends hold FdRegistryMutex() across their whole
// Init (snapshot + forks + registration), serializing concurrent Creates
// so a fork can never miss a just-created fd.

#include <mutex>
#include <set>
#include <vector>

namespace grape {
namespace rt_internal {

std::mutex& FdRegistryMutex();

/// The registered fds. Callers must hold FdRegistryMutex().
std::set<int>& FdRegistry();

/// Closes `fds` and removes them from the registry as ONE step under the
/// registry mutex. The order matters: close-then-unregister without the
/// lock lets the kernel recycle a just-closed fd number to a concurrent
/// Create, which registers it — and the late unregister then erases the
/// other transport's entry, so later forks stop closing it and the
/// inherited-dup hang this registry exists to prevent comes back. Call
/// only when FdRegistryMutex() is NOT already held.
void CloseAndUnregisterFds(const std::vector<int>& fds);

}  // namespace rt_internal
}  // namespace grape

#endif  // GRAPE_RT_FD_REGISTRY_H_
