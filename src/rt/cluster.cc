#include "rt/cluster.h"

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <utility>

#include "rt/retry.h"
#include "rt/tcp_transport.h"
#include "util/string_util.h"

namespace grape {

std::string HostPort::ToString() const {
  return host + ":" + std::to_string(port);
}

Result<std::vector<HostPort>> ParseHostList(const std::string& spec) {
  std::vector<HostPort> hosts;
  size_t at = 0;
  while (at <= spec.size()) {
    size_t comma = spec.find(',', at);
    if (comma == std::string::npos) comma = spec.size();
    const std::string entry = spec.substr(at, comma - at);
    if (entry.empty()) {
      return Status::InvalidArgument("empty entry in host list '" + spec +
                                     "'");
    }
    HostPort hp;
    const size_t colon = entry.rfind(':');
    if (colon == std::string::npos) {
      hp.host = entry;  // port 0: pick an ephemeral mesh port
    } else {
      hp.host = entry.substr(0, colon);
      uint64_t port = 0;
      if (hp.host.empty() || !ParseUint64(entry.substr(colon + 1), &port) ||
          port > 65535) {
        return Status::InvalidArgument("bad host:port entry '" + entry +
                                       "' in host list");
      }
      hp.port = static_cast<uint16_t>(port);
    }
    hosts.push_back(std::move(hp));
    at = comma + 1;
  }
  return hosts;
}

std::string FormatHostList(const std::vector<HostPort>& hosts) {
  std::string out;
  for (size_t i = 0; i < hosts.size(); ++i) {
    if (i > 0) out += ",";
    out += hosts[i].ToString();
  }
  return out;
}

Result<ClusterSpec> ClusterSpec::FromFlags(const FlagParser& flags) {
  ClusterSpec spec;
  spec.rank = static_cast<uint32_t>(flags.GetInt("rank", 0));
  spec.token = flags.GetString("cluster-token", "");
  if (spec.token.empty()) {
    const char* env = std::getenv("GRAPE_CLUSTER_TOKEN");
    if (env != nullptr) spec.token = env;
  }
  const std::string hosts = flags.GetString("hosts", "");
  if (!hosts.empty()) {
    GRAPE_ASSIGN_OR_RETURN(spec.hosts, ParseHostList(hosts));
  }
  if (spec.hosts.empty()) {
    if (spec.rank != 0) {
      return Status::InvalidArgument(
          "--rank=" + std::to_string(spec.rank) +
          " needs --hosts: a non-zero rank is a cluster endpoint and must "
          "know the roster");
    }
  } else if (spec.rank >= spec.hosts.size()) {
    return Status::InvalidArgument(
        "--rank=" + std::to_string(spec.rank) + " outside --hosts with " +
        std::to_string(spec.hosts.size()) + " entries");
  }
  GRAPE_RETURN_NOT_OK(ValidateCoordinatorAddress(spec.hosts));
  return spec;
}

Status ValidateCoordinatorAddress(const std::vector<HostPort>& hosts) {
  if (!hosts.empty() && hosts[0].port == 0) {
    return Status::InvalidArgument(
        "hosts[0] needs an explicit port: it is the coordinator address "
        "every endpoint dials (':0' is only valid for mesh entries, ranks "
        ">= 1)");
  }
  return Status::OK();
}

bool RanAsClusterEndpoint(const ClusterSpec& spec,
                          const std::string& transport, int* exit_code) {
  if (spec.rank == 0) return false;
  if (transport != "tcp") {
    std::fprintf(stderr,
                 "--rank=%u: only --transport=tcp has cluster endpoints\n",
                 spec.rank);
    *exit_code = 2;
    return true;
  }
  Status s = RunClusterEndpoint(spec);
  if (!s.ok()) {
    std::fprintf(stderr, "endpoint: %s\n", s.ToString().c_str());
    *exit_code = 1;
    return true;
  }
  *exit_code = 0;
  return true;
}

Status RunClusterEndpoint(const ClusterSpec& spec) {
  if (spec.single_host()) {
    return Status::InvalidArgument(
        "RunClusterEndpoint needs a --hosts roster");
  }
  if (spec.rank == 0) {
    return Status::InvalidArgument(
        "rank 0 is the engine process, not a standalone endpoint");
  }
  GRAPE_RETURN_NOT_OK(ValidateCoordinatorAddress(spec.hosts));
  // A failed join (engine not up yet, a mesh peer still launching, a
  // transient network blip) retries through the shared rt/retry.h
  // schedule instead of giving up on the first attempt — hand-started
  // ranks should survive sloppy launch ordering. A cleanly finished
  // world returns immediately.
  RetryPolicy policy;
  policy.initial_backoff_ms = 200;
  policy.max_backoff_ms = 5000;
  policy.max_attempts = 5;
  RetryState retry(policy, /*deadline_ms=*/0, /*jitter_seed=*/spec.rank + 1);
  Status s;
  for (;;) {
    // Generous join budget per attempt: the operator may start ranks by
    // hand.
    s = RunTcpEndpointProcess(spec.rank,
                              static_cast<uint32_t>(spec.hosts.size()),
                              spec.hosts[0], spec.hosts[spec.rank].port,
                              /*timeout_ms=*/120000, spec.token);
    if (s.ok()) return s;
    if (!retry.BackoffOrGiveUp()) return s;
    std::fprintf(stderr, "endpoint rank %u: %s; rejoining (attempt %u)\n",
                 spec.rank, s.ToString().c_str(), retry.attempts() + 1);
  }
}

Result<std::unique_ptr<Transport>> MakeClusterTransport(
    const std::string& name, uint32_t size, const ClusterSpec& spec) {
  if (name != "tcp") {
    if (!spec.single_host()) {
      return Status::InvalidArgument("--hosts only applies to --transport=tcp");
    }
    return MakeTransport(name, size);
  }
  TcpOptions options;
  options.hosts = spec.hosts;  // empty: single-host auto-spawn
  options.cluster_token = spec.token;
  if (!options.hosts.empty() && options.hosts.size() != size) {
    return Status::InvalidArgument(
        "--hosts lists " + std::to_string(options.hosts.size()) +
        " ranks but this run needs " + std::to_string(size) +
        " (workers + coordinator)");
  }
  if (!options.hosts.empty()) options.rendezvous_timeout_ms = 120000;
  auto t = TcpTransport::Create(size, std::move(options));
  GRAPE_RETURN_NOT_OK(t.status());
  return std::unique_ptr<Transport>(std::move(t).value());
}

}  // namespace grape
