#ifndef GRAPE_RT_DISTRIBUTED_LOAD_H_
#define GRAPE_RT_DISTRIBUTED_LOAD_H_

#include <cstdint>
#include <string>
#include <vector>

#include "graph/io.h"
#include "graph/types.h"
#include "rt/transport.h"
#include "util/result.h"

namespace grape {

/// Options for a distributed graph build (see DistributedLoad below).
struct DistributedLoadOptions {
  /// Edge-list file, readable by every worker endpoint (the protocol ships
  /// byte ranges, not bytes — shared filesystem or a per-host copy).
  std::string path;
  EdgeListFormat format;
  /// Vertex-ownership policy: "hash" (SplitMix64(gid) % n, computed
  /// independently by every worker — nothing is shipped) or "explicit"
  /// (the `assignment` below rides inside each shard command; use for
  /// METIS-style partitions computed offline).
  std::string partitioner = "hash";
  /// gid -> fragment, sized total vertices. "explicit" only.
  std::vector<FragmentId> assignment;
  /// Budget for each protocol phase (shard scan, exchange+assembly)
  /// before the coordinator gives up with Unavailable.
  int timeout_ms = 120000;
  bool verbose = false;
};

/// Shape of one remotely assembled fragment, reported by its worker's
/// build ack. Everything the coordinator needs to size its routing
/// batches — and nothing more.
struct FragmentShape {
  LocalId num_inner = 0;
  LocalId num_local = 0;
  uint64_t num_arcs = 0;
};

/// What the coordinator holds after a distributed build: metadata only.
/// The fragments themselves are resident in the worker endpoints'
/// ResidentFragmentStore under `token`, keyed additionally by rank.
struct DistributedGraphMeta {
  uint64_t token = 0;
  FragmentId num_fragments = 0;
  VertexId total_vertices = 0;
  bool directed = true;
  /// Indexed by fragment id.
  std::vector<FragmentShape> shapes;
  /// Edge lines parsed across all shards (before ownership routing).
  uint64_t total_edges = 0;
  /// Load-phase timings: shard scan (everyone reading its byte range) and
  /// exchange + assembly + mirror resolution.
  double shard_seconds = 0;
  double build_seconds = 0;
  /// Edge- or mirror-bearing frames the coordinator received during the
  /// build. The protocol routes all of them worker-to-worker, so this is
  /// 0 on every conformant run — tests assert it (coordinator purity).
  uint64_t coordinator_data_frames = 0;
};

/// Builds one fragment per worker rank from `options.path` without ever
/// materializing the graph at rank 0 (the caller). Protocol
/// (rt/worker_protocol.h, kTagWkShard..kTagWkBuildAck):
///
///   1. rank 0 computes line-aligned byte ranges (ComputeShardRanges —
///      metadata only, no edge is read here) and sends each worker its
///      shard descriptor; workers scan their ranges and ack (max gid,
///      edge count).
///   2. rank 0 folds the acks into the global vertex count and broadcasts
///      it; each worker derives the ownership tables locally, streams
///      every scanned edge to the owners of its endpoints, assembles its
///      fragment from what it received (FragmentBuilder::AssembleLocal),
///      exchanges mirror placements peer-to-peer, deposits the finished
///      fragment into its process-local ResidentFragmentStore, and acks
///      its shape.
///
/// Fragments are bit-identical to a coordinator-side
/// FragmentBuilder::Build over LoadEdgeListFile(path) with the same
/// assignment — both paths run the same two build halves, and the
/// exchange key (file byte offset) restores whole-file edge order before
/// assembly (tests/distributed_load_test.cc).
///
/// `world` must be sized n+1 (rank 0 = this caller); on inproc backends
/// the function spawns in-thread workers for the duration of the build.
Result<DistributedGraphMeta> DistributedLoad(
    Transport* world, const DistributedLoadOptions& options);

}  // namespace grape

#endif  // GRAPE_RT_DISTRIBUTED_LOAD_H_
