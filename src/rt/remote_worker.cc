#include "rt/remote_worker.h"

#include <algorithm>
#include <chrono>

#include "rt/checkpoint.h"
#include "util/random.h"

namespace grape {

// --------------------------------------------------------------- registry

WorkerAppRegistry& WorkerAppRegistry::Global() {
  // Never destroyed: endpoint children and worker threads may consult it
  // during any teardown order.
  static WorkerAppRegistry& registry = *new WorkerAppRegistry();
  return registry;
}

void WorkerAppRegistry::Register(const std::string& name, Factory factory) {
  std::lock_guard<std::mutex> lock(mu_);
  factories_[name] = std::move(factory);
}

bool WorkerAppRegistry::Has(const std::string& name) const {
  std::lock_guard<std::mutex> lock(mu_);
  return factories_.count(name) > 0;
}

Result<WorkerAppRegistry::Factory> WorkerAppRegistry::Get(
    const std::string& name) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = factories_.find(name);
  if (it == factories_.end()) {
    return Status::NotFound("no remote worker registered under '" + name +
                            "' in this endpoint process");
  }
  return it->second;
}

std::vector<std::string> WorkerAppRegistry::Names() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<std::string> names;
  names.reserve(factories_.size());
  for (const auto& [name, factory] : factories_) names.push_back(name);
  return names;
}

// --------------------------------------------------------- resident store

ResidentFragmentStore& ResidentFragmentStore::Global() {
  // Never destroyed, like the registry: worker threads may deposit during
  // any teardown order.
  static ResidentFragmentStore& store = *new ResidentFragmentStore();
  return store;
}

void ResidentFragmentStore::Put(uint64_t token, uint32_t rank,
                                std::shared_ptr<const Fragment> fragment) {
  std::lock_guard<std::mutex> lock(mu_);
  fragments_[{token, rank}] = std::move(fragment);
}

std::shared_ptr<const Fragment> ResidentFragmentStore::Get(
    uint64_t token, uint32_t rank) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = fragments_.find({token, rank});
  return it == fragments_.end() ? nullptr : it->second;
}

void ResidentFragmentStore::Erase(uint64_t token) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = fragments_.lower_bound({token, 0});
  while (it != fragments_.end() && it->first.first == token) {
    it = fragments_.erase(it);
  }
}

// ------------------------------------------------------------ error frame

void EncodeWorkerError(Encoder& enc, const Status& error) {
  enc.WriteI32(static_cast<int32_t>(error.code()));
  enc.WriteString(error.message());
}

Status DecodeWorkerError(const std::vector<uint8_t>& payload) {
  Decoder dec(payload);
  int32_t code = 0;
  std::string message;
  if (!dec.ReadI32(&code).ok() || !dec.ReadString(&message).ok()) {
    return Status::Internal("remote worker failed (unparseable error frame)");
  }
  return Status(static_cast<StatusCode>(code),
                "remote worker: " + message);
}

// ------------------------------------------------------------------- host

RemoteWorkerHost::RemoteWorkerHost(uint32_t rank, Emit emit, BufferPool* pool)
    : rank_(rank),
      emit_(std::move(emit)),
      pool_(pool != nullptr ? pool : &owned_pool_) {}

Status RemoteWorkerHost::EmitError(const Status& error) {
  Encoder enc(pool_->Acquire());
  EncodeWorkerError(enc, error);
  return emit_(kCoordinatorRank, kTagWkError, enc.TakeBuffer());
}

Status RemoteWorkerHost::EmitAck(const WorkerAck& ack) {
  Encoder enc(pool_->Acquire());
  ack.EncodeTo(enc);
  return emit_(kCoordinatorRank, kTagWkAck, enc.TakeBuffer());
}

Status RemoteWorkerHost::HandleLoad(const std::vector<uint8_t>& payload) {
  Decoder dec(payload);
  std::string app_name;
  uint8_t flags = 0;
  uint32_t compute_threads = 0;
  Status parse = dec.ReadString(&app_name);
  if (parse.ok()) parse = dec.ReadU8(&flags);
  if (parse.ok() && (flags & kWkLoadComputeThreads) != 0) {
    parse = dec.ReadU32(&compute_threads);
  }
  if (!parse.ok()) return EmitError(parse);
  // A load is an implicit reload: every run begins with its own
  // kTagWkLoad, and an engine whose previous run failed mid-phase (so no
  // shutdown was sent) must still be able to start over on the same
  // world. Anything buffered for the abandoned run dies with the old
  // server. (A flaky-duplicated load frame re-loads the identical state
  // and its second ack is ignored engine-side — harmless.)
  server_.reset();
  pending_.clear();
  inc_pending_ = false;
  ckpt_pending_ = false;
  mut_.reset();
  auto factory = WorkerAppRegistry::Global().Get(app_name);
  if (!factory.ok()) return EmitError(factory.status());
  std::unique_ptr<WorkerAppServerBase> server = (*factory)();
  check_monotonicity_ = (flags & kWkLoadCheckMonotonicity) != 0;
  server->SetComputeThreads(compute_threads);
  if (Status s = server->Load(dec, rank_, check_monotonicity_, flags);
      !s.ok()) {
    return EmitError(s);
  }
  server_ = std::move(server);
  WorkerAck ack;
  ack.phase = kWkPhaseLoad;
  ack.worker_pid = static_cast<uint64_t>(getpid());
  return EmitAck(ack);
}

Status RemoteWorkerHost::HandleQuery(const std::vector<uint8_t>& payload) {
  if (server_ == nullptr) {
    return EmitError(
        Status::FailedPrecondition("session query before a successful load"));
  }
  // Sessions only advance between completed runs, so anything still
  // buffered belongs to an abandoned round; clear it exactly as a reload
  // would, minus the fragment work.
  pending_.clear();
  inc_pending_ = false;
  ckpt_pending_ = false;
  mut_.reset();
  Decoder dec(payload);
  if (Status s = server_->ResetQuery(dec, check_monotonicity_); !s.ok()) {
    return EmitError(s);
  }
  WorkerAck ack;
  ack.phase = kWkPhaseLoad;
  ack.worker_pid = static_cast<uint64_t>(getpid());
  return EmitAck(ack);
}

Status RemoteWorkerHost::RunPhase(uint8_t phase, uint32_t round,
                                  bool incremental) {
  WorkerPhaseOutput out;
  Status s = phase == kWkPhasePEval ? server_->PEval(*pool_, &out)
                                    : server_->IncEval(incremental, *pool_,
                                                       &out);
  if (!s.ok()) return EmitError(s);

  WorkerAck ack;
  ack.phase = phase;
  ack.round = round;
  ack.dirty = out.dirty;
  ack.direct_updates = out.direct_updates;
  ack.updated_count = out.updated_count;
  ack.mono_violations = out.mono_violations;
  ack.global = out.global;
  ack.worker_pid = static_cast<uint64_t>(getpid());
  for (WorkerSend& send : out.sends) {
    const bool direct = send.dst_rank != kCoordinatorRank;
    // The engine folds these into its CommStats view with the same
    // formula local mode's Send-side counting uses: payload + 16-byte
    // envelope per frame.
    ack.sent_messages++;
    ack.sent_bytes += send.payload.size() + kFrameHeaderBytes;
    if (direct) ack.direct_frames.emplace_back(send.dst_rank, 1u);
    GRAPE_RETURN_NOT_OK(emit_(send.dst_rank,
                              direct ? kTagWkDirect : kTagWkData,
                              std::move(send.payload)));
  }
  // FIFO per channel makes this ack the delivery barrier for everything
  // emitted above on the (rank, 0) channel.
  return EmitAck(ack);
}

Status RemoteWorkerHost::MaybeRunIncEval() {
  if (!inc_pending_ || server_ == nullptr) return Status::OK();

  // Are this round's deliveries complete? Coordinator batches plus the
  // per-sender direct-frame expectations from the command.
  uint32_t apply_have = 0;
  for (const PendingFrame& f : pending_) {
    if (f.tag == kTagWkApply) apply_have++;
  }
  if (apply_have < cmd_.apply_frames) return Status::OK();
  for (const auto& [from, need] : cmd_.expect_direct) {
    uint32_t have = 0;
    for (const PendingFrame& f : pending_) {
      if (f.tag == kTagWkDirect && f.from == from) have++;
    }
    if (have < need) return Status::OK();
  }

  // Consume exactly this round's frames in arrival order (a racing
  // peer's next-round refresh stays buffered: FIFO per channel means its
  // first `need` frames from a sender are that sender's current-round
  // ones), apply them, and run IncEval.
  server_->BeginApply();
  uint32_t apply_taken = 0;
  std::map<uint32_t, uint32_t> direct_quota;
  for (const auto& [from, need] : cmd_.expect_direct) {
    direct_quota[from] += need;
  }
  std::vector<PendingFrame> keep;
  Status apply_status = Status::OK();
  for (PendingFrame& f : pending_) {
    bool take = false;
    if (f.tag == kTagWkApply && apply_taken < cmd_.apply_frames) {
      take = true;
      apply_taken++;
    } else if (f.tag == kTagWkDirect) {
      auto it = direct_quota.find(f.from);
      if (it != direct_quota.end() && it->second > 0) {
        take = true;
        it->second--;
      }
    }
    if (take && apply_status.ok()) {
      apply_status = server_->ApplyFrame(f.payload);
      pool_->Release(std::move(f.payload));
    } else if (take) {
      pool_->Release(std::move(f.payload));
    } else {
      keep.push_back(std::move(f));
    }
  }
  pending_ = std::move(keep);
  inc_pending_ = false;
  if (!apply_status.ok()) return EmitError(apply_status);
  return RunPhase(kWkPhaseIncEval, cmd_.round, cmd_.incremental);
}

// ---------------------------------------------------- checkpoint / restore

Status RemoteWorkerHost::HandleCheckpointCmd(
    const std::vector<uint8_t>& payload) {
  Decoder dec(payload);
  WkCheckpointCommand cmd;
  if (Status s = WkCheckpointCommand::DecodeFrom(dec, &cmd); !s.ok()) {
    return EmitError(s);
  }
  if (server_ == nullptr) {
    return EmitError(
        Status::FailedPrecondition("checkpoint before a successful load"));
  }
  if (inc_pending_ || ckpt_pending_) {
    return EmitError(Status::FailedPrecondition(
        "checkpoint command overlapping another command"));
  }
  ckpt_cmd_ = std::move(cmd);
  ckpt_pending_ = true;
  return MaybeCheckpoint();
}

Status RemoteWorkerHost::MaybeCheckpoint() {
  if (!ckpt_pending_ || server_ == nullptr) return Status::OK();
  // The barrier: every direct frame the engine knows was emitted toward us
  // this round must already be buffered, or the image would miss part of
  // the message frontier a recovered run replays.
  for (const auto& [from, need] : ckpt_cmd_.expect_direct) {
    uint32_t have = 0;
    for (const PendingFrame& f : pending_) {
      if (f.tag == kTagWkDirect && f.from == from) have++;
    }
    if (have < need) return Status::OK();
  }
  ckpt_pending_ = false;

  CheckpointImage image;
  image.rank = rank_;
  image.round = ckpt_cmd_.round;
  Encoder state(pool_->Acquire());
  if (Status s = server_->EncodeCheckpoint(state); !s.ok()) {
    return EmitError(s);
  }
  image.state = state.TakeBuffer();
  image.pending.reserve(pending_.size());
  for (const PendingFrame& f : pending_) {
    // Copies, not moves: execution continues from the live buffers.
    image.pending.push_back(
        CheckpointImage::PendingWireFrame{f.from, f.tag, f.payload});
  }
  std::vector<uint8_t> encoded = EncodeCheckpointImage(image);

  WkCheckpointAck ack;
  ack.round = ckpt_cmd_.round;
  ack.bytes = encoded.size();
  if (ckpt_cmd_.dir.empty()) {
    ack.image = std::move(encoded);
  } else {
    CheckpointStore store(ckpt_cmd_.dir);
    if (Status s = store.Put(rank_, ckpt_cmd_.round, std::move(encoded));
        !s.ok()) {
      return EmitError(s);
    }
  }
  Encoder enc(pool_->Acquire());
  ack.EncodeTo(enc);
  return emit_(kCoordinatorRank, kTagWkCheckpointAck, enc.TakeBuffer());
}

Status RemoteWorkerHost::HandleRestore(const std::vector<uint8_t>& payload) {
  Decoder dec(payload);
  WkRestoreCommand cmd;
  if (Status s = WkRestoreCommand::DecodeFrom(dec, &cmd); !s.ok()) {
    return EmitError(s);
  }
  // A restore replaces whatever partial state this host has, exactly like
  // a load does — the previous run attempt is dead by definition.
  server_.reset();
  pending_.clear();
  inc_pending_ = false;
  ckpt_pending_ = false;
  mut_.reset();

  Result<CheckpointImage> image =
      cmd.dir.empty()
          ? DecodeCheckpointImage(cmd.image.data(), cmd.image.size())
          : CheckpointStore(cmd.dir).Get(rank_, cmd.round);
  if (!image.ok()) return EmitError(image.status());
  if (image->round != cmd.round || image->rank != rank_) {
    return EmitError(Status::InvalidArgument(
        "restore image is rank " + std::to_string(image->rank) + " round " +
        std::to_string(image->round) + ", command wants rank " +
        std::to_string(rank_) + " round " + std::to_string(cmd.round)));
  }

  auto factory = WorkerAppRegistry::Global().Get(cmd.app_name);
  if (!factory.ok()) return EmitError(factory.status());
  std::unique_ptr<WorkerAppServerBase> server = (*factory)();
  check_monotonicity_ = (cmd.flags & kWkLoadCheckMonotonicity) != 0;
  server->SetComputeThreads(cmd.compute_threads);
  Decoder state(image->state);
  if (Status s =
          server->RestoreFromCheckpoint(state, rank_, check_monotonicity_);
      !s.ok()) {
    return EmitError(s);
  }
  server_ = std::move(server);
  for (CheckpointImage::PendingWireFrame& f : image->pending) {
    pending_.push_back(PendingFrame{f.from, f.tag, std::move(f.payload)});
  }
  WorkerAck ack;
  ack.phase = kWkPhaseRestore;
  ack.round = image->round;
  ack.worker_pid = static_cast<uint64_t>(getpid());
  return EmitAck(ack);
}

// ------------------------------------------------- distributed build steps

namespace {

/// Chunk size for edge exchange: ~28 wire bytes per edge keeps frames
/// around 1 MB — large enough to amortize the envelope, small enough to
/// interleave fairly on a shared link.
constexpr size_t kExchangeChunkEdges = 32 * 1024;

}  // namespace

Status RemoteWorkerHost::HandleShard(const std::vector<uint8_t>& payload) {
  Decoder dec(payload);
  WkShardCommand cmd;
  if (Status s = WkShardCommand::DecodeFrom(dec, &cmd); !s.ok()) {
    return EmitError(s);
  }
  if (cmd.num_fragments == 0 || rank_ == 0 || rank_ > cmd.num_fragments) {
    return EmitError(Status::InvalidArgument(
        "shard command for a world of " + std::to_string(cmd.num_fragments) +
        " fragments reached rank " + std::to_string(rank_)));
  }
  // A new shard command replaces any unfinished build (the coordinator
  // abandoned it); stale frames of the old session are dropped by token.
  build_.emplace();
  build_->token = cmd.token;
  auto shard = ReadEdgeShard(cmd.path,
                             ShardRange{cmd.offset, cmd.length}, cmd.format);
  if (!shard.ok()) {
    build_.reset();
    return EmitError(shard.status());
  }
  build_->shard_edges = std::move(shard->edges);
  build_->shard_edge_count = build_->shard_edges.size();
  WkShardAck ack;
  ack.token = cmd.token;
  ack.max_vertex_plus1 = shard->max_vertex_plus1;
  ack.num_edges = build_->shard_edge_count;
  build_->cmd = std::move(cmd);
  Encoder enc(pool_->Acquire());
  ack.EncodeTo(enc);
  return emit_(kCoordinatorRank, kTagWkShardAck, enc.TakeBuffer());
}

Status RemoteWorkerHost::HandleBuildCmd(const std::vector<uint8_t>& payload) {
  Decoder dec(payload);
  uint64_t token = 0;
  VertexId total = 0;
  Status s = dec.ReadU64(&token);
  if (s.ok()) s = dec.ReadU32(&total);
  if (!s.ok()) return EmitError(s);
  if (!build_ || build_->token != token) {
    return EmitError(Status::FailedPrecondition(
        "build command for token " + std::to_string(token) +
        " without a matching shard"));
  }
  BuildSession& b = *build_;
  const uint32_t n = b.cmd.num_fragments;
  const FragmentId fid = rank_ - 1;

  // Ownership tables, derived locally: the hash policy is pure arithmetic
  // and the explicit policy shipped with the shard command. owner_lid is
  // one counting pass — never transmitted.
  auto owner = std::make_shared<std::vector<FragmentId>>();
  if (b.cmd.policy == kWkPartitionExplicit) {
    if (b.cmd.assignment.size() != total) {
      build_.reset();
      return EmitError(Status::InvalidArgument(
          "explicit assignment sized " +
          std::to_string(b.cmd.assignment.size()) + " for " +
          std::to_string(total) + " vertices"));
    }
    *owner = b.cmd.assignment;
  } else {
    owner->resize(total);
    for (VertexId v = 0; v < total; ++v) {
      (*owner)[v] = static_cast<FragmentId>(SplitMix64(v) % n);
    }
  }
  b.owner = owner;
  b.owner_lid = std::make_shared<const std::vector<LocalId>>(
      FragmentBuilder::OwnerLidTable(*owner, n));
  b.total_vertices = total;

  // Route the shard: each edge goes to the owner of each endpoint (once
  // when they coincide). Self-owned edges stay; the rest stream out in
  // chunks, closed by one final chunk per peer — even an empty one, so
  // every receiver sees exactly n-1 finals.
  std::vector<ShardEdge> shard_edges = std::move(b.shard_edges);
  b.shard_edges.clear();
  std::vector<std::vector<ShardEdge>> outbound(n);
  for (const ShardEdge& se : shard_edges) {
    if (se.edge.src >= total || se.edge.dst >= total) {
      build_.reset();
      return EmitError(Status::Corruption(
          "shard edge endpoint outside the announced vertex count"));
    }
    const FragmentId f1 = (*owner)[se.edge.src];
    const FragmentId f2 = (*owner)[se.edge.dst];
    if (f1 == fid) {
      b.edges.push_back(se);
    } else {
      outbound[f1].push_back(se);
    }
    if (f2 != f1) {
      if (f2 == fid) {
        b.edges.push_back(se);
      } else {
        outbound[f2].push_back(se);
      }
    }
  }
  shard_edges.clear();
  shard_edges.shrink_to_fit();
  for (FragmentId f = 0; f < n; ++f) {
    if (f == fid) continue;
    const std::vector<ShardEdge>& q = outbound[f];
    size_t sent = 0;
    do {
      const size_t count = std::min(kExchangeChunkEdges, q.size() - sent);
      const bool final = sent + count == q.size();
      Encoder enc(pool_->Acquire());
      EncodeExchangeChunk(enc, b.token, final, q.data() + sent, count);
      GRAPE_RETURN_NOT_OK(emit_(f + 1, kTagWkExchange, enc.TakeBuffer()));
      sent += count;
    } while (sent < q.size());
  }
  b.exchanging = true;
  return MaybeAssemble();
}

Status RemoteWorkerHost::HandleExchange(const std::vector<uint8_t>& payload) {
  // A chunk with no live session, or a stale token, belongs to an
  // abandoned build: dropped, not fatal.
  if (!build_) return Status::OK();
  Decoder dec(payload);
  uint64_t token = 0;
  bool final = false;
  std::vector<ShardEdge> chunk;
  if (Status s = DecodeExchangeChunk(dec, &token, &final, &chunk); !s.ok()) {
    return EmitError(s);
  }
  if (token != build_->token) return Status::OK();
  build_->edges.insert(build_->edges.end(), chunk.begin(), chunk.end());
  if (final) ++build_->finals_seen;
  return MaybeAssemble();
}

Status RemoteWorkerHost::MaybeAssemble() {
  if (!build_ || !build_->exchanging || build_->assembled) {
    return Status::OK();
  }
  BuildSession& b = *build_;
  const uint32_t n = b.cmd.num_fragments;
  if (b.finals_seen < n - 1) return Status::OK();
  const FragmentId fid = rank_ - 1;

  // Restore whole-file parse order (keys are line byte offsets), so the
  // mini-graph's inner adjacency rows match a coordinator build bit for
  // bit.
  std::sort(b.edges.begin(), b.edges.end(),
            [](const ShardEdge& x, const ShardEdge& y) {
              return x.key < y.key;
            });
  GraphBuilder builder(b.cmd.format.directed);
  builder.ReserveEdges(b.edges.size());
  for (const ShardEdge& se : b.edges) builder.AddEdge(se.edge);
  b.edges.clear();
  b.edges.shrink_to_fit();
  auto graph = std::move(builder).Build(b.total_vertices);
  if (!graph.ok()) {
    build_.reset();
    return EmitError(graph.status());
  }
  auto frag = FragmentBuilder::AssembleLocal(*graph, b.owner, b.owner_lid,
                                             fid, n);
  if (!frag.ok()) {
    build_.reset();
    return EmitError(frag.status());
  }
  b.fragment = std::make_shared<Fragment>(std::move(frag).value());
  b.assembled = true;

  // Mirror answers: one frame to every peer (possibly empty), the static
  // expectation that doubles as this step's delivery barrier.
  auto answers = FragmentBuilder::MirrorAnswers(*b.fragment);
  for (FragmentId f = 0; f < n; ++f) {
    if (f == fid) continue;
    Encoder enc(pool_->Acquire());
    enc.WriteU64(b.token);
    enc.WriteVarint(answers[f].size());
    for (const MirrorLidEntry& e : answers[f]) enc.WriteU32(e.gid);
    for (const MirrorLidEntry& e : answers[f]) enc.WriteU32(e.lid);
    GRAPE_RETURN_NOT_OK(emit_(f + 1, kTagWkMirror, enc.TakeBuffer()));
  }

  // Answers that raced ahead of our assembly.
  std::vector<std::pair<uint32_t, std::vector<uint8_t>>> early =
      std::move(b.early_mirrors);
  b.early_mirrors.clear();
  for (auto& [from, buffered] : early) {
    GRAPE_RETURN_NOT_OK(ApplyMirrorFrame(from, buffered));
    if (!build_) return Status::OK();  // a corrupt frame ended the session
  }
  return MaybeFinishBuild();
}

Status RemoteWorkerHost::ApplyMirrorFrame(
    uint32_t from, const std::vector<uint8_t>& payload) {
  BuildSession& b = *build_;
  Decoder dec(payload);
  uint64_t token = 0;
  if (Status s = dec.ReadU64(&token); !s.ok()) return EmitError(s);
  if (token != b.token) return Status::OK();  // stale session, drop
  uint64_t count = 0;
  if (Status s = dec.ReadVarint(&count); !s.ok()) return EmitError(s);
  std::vector<MirrorLidEntry> answers(count);
  Status s = Status::OK();
  for (uint64_t i = 0; i < count && s.ok(); ++i) {
    s = dec.ReadU32(&answers[i].gid);
  }
  for (uint64_t i = 0; i < count && s.ok(); ++i) {
    s = dec.ReadU32(&answers[i].lid);
  }
  if (s.ok()) {
    s = FragmentBuilder::ApplyMirrorAnswers(b.fragment.get(), from - 1,
                                            answers);
  }
  if (!s.ok()) {
    build_.reset();
    return EmitError(s);
  }
  ++b.mirrors_seen;
  return Status::OK();
}

Status RemoteWorkerHost::HandleMirror(uint32_t from,
                                      std::vector<uint8_t> payload) {
  if (!build_) return Status::OK();  // stale frame of an abandoned build
  if (!build_->assembled) {
    build_->early_mirrors.emplace_back(from, std::move(payload));
    return Status::OK();
  }
  GRAPE_RETURN_NOT_OK(ApplyMirrorFrame(from, payload));
  if (!build_) return Status::OK();
  return MaybeFinishBuild();
}

Status RemoteWorkerHost::MaybeFinishBuild() {
  BuildSession& b = *build_;
  if (!b.assembled || b.mirrors_seen < b.cmd.num_fragments - 1) {
    return Status::OK();
  }
  if (Status s = FragmentBuilder::CheckMirrorsResolved(*b.fragment);
      !s.ok()) {
    build_.reset();
    return EmitError(s);
  }
  WkBuildAck ack;
  ack.token = b.token;
  ack.num_inner = b.fragment->num_inner();
  ack.num_local = b.fragment->num_local();
  ack.num_arcs = b.fragment->num_edges();
  ResidentFragmentStore::Global().Put(b.token, rank_, std::move(b.fragment));
  Encoder enc(pool_->Acquire());
  ack.EncodeTo(enc);
  build_.reset();
  return emit_(kCoordinatorRank, kTagWkBuildAck, enc.TakeBuffer());
}

// ------------------------------------------------- streaming mutation steps

Status RemoteWorkerHost::HandleMutate(const std::vector<uint8_t>& payload) {
  if (server_ == nullptr) {
    return EmitError(
        Status::FailedPrecondition("mutation before a successful load"));
  }
  if (inc_pending_ || ckpt_pending_) {
    return EmitError(Status::FailedPrecondition(
        "mutation command overlapping another command"));
  }
  // Peers that mutated first may already have buffered frames for this
  // session into mut_ — keep them; only errors reset the session.
  if (!mut_) mut_.emplace();
  Decoder dec(payload);
  Result<const Fragment*> frag =
      server_->MutateFragment(dec, check_monotonicity_);
  if (!frag.ok()) {
    mut_.reset();
    return EmitError(frag.status());
  }
  mut_->rebuilt = true;

  // Our rebuilt outer placements, one frame per peer (possibly empty —
  // the static n-1 expectation doubles as the exchange's barrier). The
  // peer answers each with the warm values for the gids we declared.
  const uint32_t n = server_->num_fragments();
  const FragmentId fid = rank_ - 1;
  auto answers = FragmentBuilder::MirrorAnswers(**frag);
  for (FragmentId f = 0; f < n; ++f) {
    if (f == fid) continue;
    Encoder enc(pool_->Acquire());
    enc.WriteVarint(answers[f].size());
    for (const MirrorLidEntry& e : answers[f]) enc.WriteU32(e.gid);
    for (const MirrorLidEntry& e : answers[f]) enc.WriteU32(e.lid);
    GRAPE_RETURN_NOT_OK(emit_(f + 1, kTagWkMutMirror, enc.TakeBuffer()));
  }

  // Frames that raced ahead of our rebuild.
  auto early_mirrors = std::move(mut_->early_mirrors);
  mut_->early_mirrors.clear();
  for (auto& [peer, buffered] : early_mirrors) {
    GRAPE_RETURN_NOT_OK(ApplyMutMirrorFrame(peer, buffered));
    if (!mut_) return Status::OK();  // a bad frame ended the session
  }
  auto early_vals = std::move(mut_->early_vals);
  mut_->early_vals.clear();
  for (auto& [peer, buffered] : early_vals) {
    (void)peer;
    GRAPE_RETURN_NOT_OK(ApplyMutValsFrame(buffered));
    if (!mut_) return Status::OK();
  }
  return MaybeFinishMutate();
}

Status RemoteWorkerHost::ApplyMutMirrorFrame(
    uint32_t from, const std::vector<uint8_t>& payload) {
  Decoder dec(payload);
  uint64_t count = 0;
  Status s = dec.ReadVarint(&count);
  std::vector<MirrorLidEntry> answers;
  if (s.ok() && count > dec.Remaining() / 8) {
    s = Status::Corruption("mutation mirror frame extends past end of buffer");
  }
  if (s.ok()) {
    answers.resize(count);
    for (uint64_t i = 0; i < count && s.ok(); ++i) {
      s = dec.ReadU32(&answers[i].gid);
    }
    for (uint64_t i = 0; i < count && s.ok(); ++i) {
      s = dec.ReadU32(&answers[i].lid);
    }
  }
  if (s.ok()) s = server_->ApplyMutMirror(from - 1, answers);
  Encoder vals(pool_->Acquire());
  if (s.ok()) s = server_->EncodeWarmValues(answers, vals);
  if (!s.ok()) {
    mut_.reset();
    return EmitError(s);
  }
  ++mut_->mirrors_seen;
  return emit_(from, kTagWkMutVals, vals.TakeBuffer());
}

Status RemoteWorkerHost::ApplyMutValsFrame(
    const std::vector<uint8_t>& payload) {
  Decoder dec(payload);
  if (Status s = server_->AbsorbWarmValues(dec); !s.ok()) {
    mut_.reset();
    return EmitError(s);
  }
  ++mut_->vals_seen;
  return Status::OK();
}

Status RemoteWorkerHost::HandleMutMirror(uint32_t from,
                                         std::vector<uint8_t> payload) {
  // Without a loaded server there is no session to serve: the frame is a
  // leftover of an abandoned mutation. Drop, like a stale build mirror.
  if (server_ == nullptr) {
    pool_->Release(std::move(payload));
    return Status::OK();
  }
  if (!mut_) mut_.emplace();
  if (!mut_->rebuilt) {
    mut_->early_mirrors.emplace_back(from, std::move(payload));
    return Status::OK();
  }
  GRAPE_RETURN_NOT_OK(ApplyMutMirrorFrame(from, payload));
  if (!mut_) return Status::OK();
  return MaybeFinishMutate();
}

Status RemoteWorkerHost::HandleMutVals(uint32_t from,
                                       std::vector<uint8_t> payload) {
  if (server_ == nullptr) {
    pool_->Release(std::move(payload));
    return Status::OK();
  }
  if (!mut_) mut_.emplace();
  if (!mut_->rebuilt) {
    // Defensive: an owner's reply follows our own mirror frame, which we
    // only send after rebuilding — but a flaky substrate's duplicate
    // could arrive any time, and buffering is always safe.
    mut_->early_vals.emplace_back(from, std::move(payload));
    return Status::OK();
  }
  GRAPE_RETURN_NOT_OK(ApplyMutValsFrame(payload));
  if (!mut_) return Status::OK();
  return MaybeFinishMutate();
}

Status RemoteWorkerHost::MaybeFinishMutate() {
  if (!mut_ || !mut_->rebuilt) return Status::OK();
  const uint32_t n = server_->num_fragments();
  if (mut_->mirrors_seen < n - 1 || mut_->vals_seen < n - 1) {
    return Status::OK();
  }
  WkBuildAck ack;
  if (Status s = server_->FinishMutation(&ack); !s.ok()) {
    mut_.reset();
    return EmitError(s);
  }
  mut_.reset();
  Encoder enc(pool_->Acquire());
  ack.EncodeTo(enc);
  return emit_(kCoordinatorRank, kTagWkMutateAck, enc.TakeBuffer());
}

Status RemoteWorkerHost::HandleIncStart(const std::vector<uint8_t>& payload) {
  if (server_ == nullptr) {
    return EmitError(Status::FailedPrecondition(
        "warm IncEval start before a successful load"));
  }
  if (mut_) {
    return EmitError(Status::FailedPrecondition(
        "warm IncEval start during an unfinished mutation"));
  }
  Decoder dec(payload);
  std::vector<VertexId> touched;
  if (Status s = dec.ReadPodVector(&touched); !s.ok()) return EmitError(s);
  if (Status s = server_->SeedTouched(touched); !s.ok()) return EmitError(s);
  return RunPhase(kWkPhaseIncEval, 1, true);
}

Status RemoteWorkerHost::OnFrame(uint32_t from, uint32_t tag,
                                 std::vector<uint8_t> payload) {
  switch (tag) {
    case kTagWkShard: {
      Status s = HandleShard(payload);
      pool_->Release(std::move(payload));
      return s;
    }
    case kTagWkBuild: {
      Status s = HandleBuildCmd(payload);
      pool_->Release(std::move(payload));
      return s;
    }
    case kTagWkExchange: {
      Status s = HandleExchange(payload);
      pool_->Release(std::move(payload));
      return s;
    }
    case kTagWkMirror:
      return HandleMirror(from, std::move(payload));
    case kTagWkLoad: {
      Status s = HandleLoad(payload);
      pool_->Release(std::move(payload));
      return s;
    }
    case kTagWkQuery: {
      Status s = HandleQuery(payload);
      pool_->Release(std::move(payload));
      return s;
    }
    case kTagWkRunPEval: {
      pool_->Release(std::move(payload));
      if (server_ == nullptr) {
        return EmitError(Status::FailedPrecondition(
            "RunPEval before a successful load"));
      }
      return RunPhase(kWkPhasePEval, 1, true);
    }
    case kTagWkApply:
    case kTagWkDirect: {
      if (server_ == nullptr) {
        pool_->Release(std::move(payload));
        return EmitError(Status::FailedPrecondition(
            "parameter batch before a successful load"));
      }
      pending_.push_back(PendingFrame{from, tag, std::move(payload)});
      // At most one of the two can be armed: checkpoints only happen at
      // barriers, between a round's ack and the next round's command.
      if (ckpt_pending_) return MaybeCheckpoint();
      return MaybeRunIncEval();
    }
    case kTagWkRunIncEval: {
      if (server_ == nullptr) {
        pool_->Release(std::move(payload));
        return EmitError(Status::FailedPrecondition(
            "RunIncEval before a successful load"));
      }
      if (inc_pending_) {
        pool_->Release(std::move(payload));
        return EmitError(Status::FailedPrecondition(
            "overlapping RunIncEval commands (duplicated control frame?)"));
      }
      Decoder dec(payload);
      IncEvalCommand cmd;
      if (Status s = IncEvalCommand::DecodeFrom(dec, &cmd); !s.ok()) {
        pool_->Release(std::move(payload));
        return EmitError(s);
      }
      pool_->Release(std::move(payload));
      cmd_ = std::move(cmd);
      inc_pending_ = true;
      return MaybeRunIncEval();
    }
    case kTagWkCheckTerm: {
      Decoder dec(payload);
      uint32_t round = 0;
      double global = 0;
      Status s = dec.ReadU32(&round);
      if (s.ok()) s = dec.ReadDouble(&global);
      pool_->Release(std::move(payload));
      if (!s.ok()) return EmitError(s);
      if (server_ == nullptr) {
        return EmitError(Status::FailedPrecondition(
            "CheckTerm before a successful load"));
      }
      Encoder enc(pool_->Acquire());
      // Echo the round: a duplicated CheckTerm leaves a second vote in
      // the engine's mailbox, and an untagged stale vote would answer
      // the NEXT round's check with the previous round's verdict.
      enc.WriteU32(round);
      enc.WriteBool(server_->ShouldTerminate(round, global));
      return emit_(kCoordinatorRank, kTagWkVote, enc.TakeBuffer());
    }
    case kTagWkGetPartial: {
      pool_->Release(std::move(payload));
      if (server_ == nullptr) {
        return EmitError(Status::FailedPrecondition(
            "GetPartial before a successful load"));
      }
      Encoder enc(pool_->Acquire());
      GRAPE_RETURN_NOT_OK(server_->EncodePartial(enc));
      return emit_(kCoordinatorRank, kTagWkPartial, enc.TakeBuffer());
    }
    case kTagWkMutate: {
      Status s = HandleMutate(payload);
      pool_->Release(std::move(payload));
      return s;
    }
    case kTagWkMutMirror:
      return HandleMutMirror(from, std::move(payload));
    case kTagWkMutVals:
      return HandleMutVals(from, std::move(payload));
    case kTagWkIncStart: {
      Status s = HandleIncStart(payload);
      pool_->Release(std::move(payload));
      return s;
    }
    case kTagWkCheckpoint: {
      Status s = HandleCheckpointCmd(payload);
      pool_->Release(std::move(payload));
      return s;
    }
    case kTagWkRestore: {
      Status s = HandleRestore(payload);
      pool_->Release(std::move(payload));
      return s;
    }
    case kTagWkPing: {
      // Liveness probe: echo the payload back so the monitor can match
      // request and reply if it ever wants to.
      return emit_(kCoordinatorRank, kTagWkPong, std::move(payload));
    }
    case kTagWkShutdown: {
      pool_->Release(std::move(payload));
      // Retire the current worker but leave the host reloadable: engines
      // may run several queries over one world, and each run begins with
      // a fresh kTagWkLoad. shut_down_ only tells an in-thread host's
      // loop to exit; endpoint relay loops keep serving.
      server_.reset();
      pending_.clear();
      inc_pending_ = false;
      ckpt_pending_ = false;
      mut_.reset();
      shut_down_ = true;
      return Status::OK();
    }
    default: {
      pool_->Release(std::move(payload));
      return EmitError(Status::Internal("unexpected worker-protocol tag " +
                                        std::to_string(tag)));
    }
  }
}

// -------------------------------------------------------- in-thread hosts

InThreadWorkers::InThreadWorkers(Transport* world, uint32_t num_workers,
                                 bool enable, uint32_t poll_us,
                                 uint32_t idle_spins, uint32_t idle_poll_us)
    : poll_us_(poll_us), idle_spins_(idle_spins), idle_poll_us_(idle_poll_us) {
  if (!enable) return;
  threads_.reserve(num_workers);
  for (uint32_t rank = 1; rank <= num_workers; ++rank) {
    threads_.emplace_back([this, world, rank] { Loop(world, rank); });
  }
}

InThreadWorkers::~InThreadWorkers() {
  stop_.store(true, std::memory_order_release);
  for (std::thread& t : threads_) {
    if (t.joinable()) t.join();
  }
}

void InThreadWorkers::Loop(Transport* world, uint32_t rank) {
  RemoteWorkerHost host(
      rank,
      [world, rank](uint32_t to, uint32_t tag, std::vector<uint8_t> payload) {
        return world->Send(rank, to, tag, std::move(payload));
      },
      &world->buffer_pool());
  uint32_t idle = 0;
  for (;;) {
    std::optional<RtMessage> msg = world->TryRecv(rank);
    if (!msg) {
      // Drain-then-stop: only exit on the stop flag once the mailbox is
      // empty, so a shutdown frame sent just before our destructor is
      // consumed now instead of greeting (and instantly killing) the
      // next run's worker thread.
      if (stop_.load(std::memory_order_acquire) || !world->healthy()) break;
      // Same adaptive backoff as the engine's await loops: snappy while
      // traffic flows, slower once idle so n workers don't burn n cores.
      if (idle < idle_spins_) {
        ++idle;
        std::this_thread::sleep_for(std::chrono::microseconds(poll_us_));
      } else {
        std::this_thread::sleep_for(std::chrono::microseconds(idle_poll_us_));
      }
      continue;
    }
    idle = 0;
    if (!IsWorkerTag(msg->tag)) continue;  // stray frame; not ours
    if (!host.OnFrame(msg->from, msg->tag, std::move(msg->payload)).ok()) {
      break;  // the world is gone; nothing left to serve
    }
    if (host.shut_down()) break;
  }
}

}  // namespace grape
