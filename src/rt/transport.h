#ifndef GRAPE_RT_TRANSPORT_H_
#define GRAPE_RT_TRANSPORT_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

#include "rt/message.h"
#include "util/result.h"
#include "util/status.h"

namespace grape {

/// Aggregate communication counters. Every byte crossing a rank boundary is
/// counted here; benchmark "Comm." columns read these. All backends count
/// identically — payload bytes plus a 16-byte envelope per message — so the
/// numbers are comparable (and, for a fixed workload, bit-identical) across
/// transports.
struct CommStats {
  uint64_t messages = 0;
  uint64_t bytes = 0;

  double megabytes() const { return static_cast<double>(bytes) / (1 << 20); }
  std::string ToString() const;
};

/// The message-passing substrate under the engine: a world of `size` ranks
/// with reliable point-to-point channels, FIFO per (from, to) channel, in
/// place of the paper's MPI Controller (MPICH2). Rank 0 is conventionally
/// the coordinator P0.
///
/// Contract, shared by every backend and frozen by
/// tests/transport_conformance_test.cc:
///
///  * Send is thread-safe and never blocks indefinitely against a live
///    receiver. FIFO holds per ordered (from, to) channel; no ordering is
///    promised across channels.
///  * Delivery may be asynchronous. Flush() is the delivery barrier: when
///    it returns OK, every message from a Send that returned before the
///    Flush call is visible to TryRecv/DrainAll/PendingCount at its
///    destination. The in-process backend delivers synchronously, so its
///    Flush is a no-op; callers must still invoke it to be
///    backend-agnostic (the engine flushes between supersteps).
///  * TryRecv/DrainAll never block. Recv blocks until a message arrives or
///    the transport is closed, in which case it returns a Cancelled status
///    instead of hanging forever.
///  * Close() is idempotent, wakes every blocked Recv with Cancelled, and
///    fails subsequent Sends with Cancelled. Messages already delivered
///    remain drainable after Close.
///  * stats() counts at Send time: +1 message, +payload+16 bytes.
class Transport {
 public:
  virtual ~Transport() = default;

  virtual uint32_t size() const = 0;

  /// Backend identifier ("inproc", "socket", ...) for logs and reports.
  virtual std::string name() const = 0;

  /// Queues `payload` for delivery to `to`. Thread-safe.
  virtual Status Send(uint32_t from, uint32_t to, uint32_t tag,
                      std::vector<uint8_t> payload) = 0;

  /// Non-blocking receive: pops the oldest delivered message for `rank`
  /// (optionally filtered by tag); std::nullopt if none is pending.
  virtual std::optional<RtMessage> TryRecv(uint32_t rank) = 0;
  virtual std::optional<RtMessage> TryRecv(uint32_t rank, uint32_t tag) = 0;

  /// Blocking receive; returns Cancelled once Close() is called and the
  /// mailbox is empty.
  virtual Result<RtMessage> Recv(uint32_t rank) = 0;

  /// Drains every pending message for `rank`, in delivery order.
  virtual std::vector<RtMessage> DrainAll(uint32_t rank) = 0;

  virtual size_t PendingCount(uint32_t rank) const = 0;

  /// Delivery barrier: blocks until everything Sent so far is visible at
  /// its destination (see class contract). Returns non-OK if the transport
  /// was closed or an endpoint died while messages were in flight.
  virtual Status Flush() = 0;

  /// Shuts the transport down: wakes blocked receivers with Cancelled and
  /// fails future Sends. Idempotent; also called by destructors.
  virtual void Close() = 0;

  /// False once the transport is closed or broken (an endpoint died).
  /// Pollers that cannot block in Recv — the engine's remote-compute
  /// await loop, in-thread worker hosts — use this to stop promptly
  /// instead of waiting out a timeout against a dead world.
  virtual bool healthy() const { return true; }

  /// True when ranks are backed by endpoint OS processes that host
  /// remote-compute workers themselves (socket/tcp). False for in-process
  /// backends, where the engine spawns in-thread workers instead.
  virtual bool has_remote_endpoints() const { return false; }

  /// True when this backend can rebuild a broken world in place (respawn
  /// dead endpoints, clear mailboxes) so the engine's fault-tolerant path
  /// can retry a run. Backends without it surface the original failure.
  virtual bool supports_recovery() const { return false; }

  /// Tears down whatever is left of a broken world and brings up a fresh
  /// healthy one of the same size, in place: endpoints respawned,
  /// channels reconnected, mailboxes cleared (in-flight frames of the
  /// failed run are discarded — recovery replays from a checkpoint), and
  /// healthy() true again. Stats are NOT reset; the engine handles
  /// counter continuity itself. Only call between runs/rounds, never
  /// concurrently with Send/Recv.
  virtual Status Recover() {
    return Status::Unimplemented("transport '" + name() +
                                 "' does not support recovery");
  }

  /// Process ids of locally forked endpoint processes, indexed by rank.
  /// Feeds the engine's liveness pid probe, which turns "lease expired"
  /// into "known dead" via waitpid. Empty when the backend has no local
  /// endpoint processes to probe (inproc, tcp cluster mode).
  virtual std::vector<int64_t> endpoint_process_ids() const { return {}; }

  /// Global counters since construction or the last ResetStats().
  virtual CommStats stats() const = 0;
  virtual void ResetStats() = 0;

  /// Payload recycling shared by every rank: encode into Acquire()d
  /// buffers, Release() consumed payloads. Using the pool is optional —
  /// Send accepts any vector — but the engine's message path routes every
  /// payload through it so steady-state supersteps allocate nothing.
  virtual BufferPool& buffer_pool() = 0;
};

/// Shared machinery for transports that deliver into per-rank in-memory
/// mailboxes (both backends do; they differ in how bytes travel from Send
/// to Deliver). Implements the receive half of the Transport contract plus
/// stats, the buffer pool, and Close-wakes-receivers semantics.
class MailboxTransport : public Transport {
 public:
  uint32_t size() const override { return size_; }

  std::optional<RtMessage> TryRecv(uint32_t rank) override;
  std::optional<RtMessage> TryRecv(uint32_t rank, uint32_t tag) override;
  Result<RtMessage> Recv(uint32_t rank) override;
  std::vector<RtMessage> DrainAll(uint32_t rank) override;
  size_t PendingCount(uint32_t rank) const override;

  CommStats stats() const override;
  void ResetStats() override;
  BufferPool& buffer_pool() override { return pool_; }
  bool healthy() const override { return !closed(); }

 protected:
  explicit MailboxTransport(uint32_t size);

  /// Enqueues a message into its destination mailbox and wakes blocked
  /// receivers. Thread-safe; called by Send (inproc) or by receiver
  /// threads (socket).
  void Deliver(RtMessage msg);

  /// Stats attribution at Send time, identical across backends.
  void CountSend(size_t payload_bytes) {
    total_messages_.fetch_add(1, std::memory_order_relaxed);
    // Envelope overhead approximates an MPI header: from/to/tag + length.
    total_bytes_.fetch_add(payload_bytes + kEnvelopeBytes,
                           std::memory_order_relaxed);
  }

  /// Tag-aware counting: worker-protocol control frames are invisible to
  /// CommStats (they have no local-compute equivalent; see
  /// rt/worker_protocol.h), so remote compute reports the same counters
  /// as local compute. Backends call this instead of CountSend.
  void CountSendTagged(uint32_t tag, size_t payload_bytes);

  bool closed() const { return closed_.load(std::memory_order_acquire); }

  /// Marks the transport closed and wakes every blocked Recv. Returns
  /// false when another caller already closed it (for idempotent Close).
  bool MarkClosed();

  /// Recovery support: empties every mailbox (releasing payloads back to
  /// the pool) and clears the closed flag, returning the mailbox layer to
  /// its just-constructed state. Backends call this from Recover() after
  /// tearing down their transport-specific halves.
  void ResetForRecovery();

  static constexpr size_t kEnvelopeBytes = 16;

 private:
  struct Mailbox {
    mutable std::mutex mu;
    std::condition_variable cv;
    std::deque<RtMessage> queue;
  };

  uint32_t size_;
  std::vector<std::unique_ptr<Mailbox>> mailboxes_;
  BufferPool pool_;
  std::atomic<bool> closed_{false};
  std::atomic<uint64_t> total_messages_{0};
  std::atomic<uint64_t> total_bytes_{0};
};

/// Builds a transport backend by name: "inproc" (CommWorld, the default
/// single-process world), "socket" (forked relay processes exchanging
/// length-prefixed frames over local sockets), or "tcp" (auto-spawned
/// endpoint processes meshed over loopback TCP; for a multi-machine
/// roster use rt/cluster.h's MakeClusterTransport). This is what
/// `--transport=inproc|socket|tcp` on the benches and examples resolves
/// through.
Result<std::unique_ptr<Transport>> MakeTransport(const std::string& name,
                                                 uint32_t size);

/// Names accepted by MakeTransport, for --help strings and test matrices.
const std::vector<std::string>& TransportNames();

}  // namespace grape

#endif  // GRAPE_RT_TRANSPORT_H_
