#ifndef GRAPE_RT_NET_UTIL_H_
#define GRAPE_RT_NET_UTIL_H_

// Raw-fd I/O helpers shared by the multi-process transport backends
// (rt/socket_transport.cc, rt/tcp_transport.cc). Everything here is
// async-signal-safe — plain syscalls over caller-provided memory, no
// malloc, no stdio, no locks — because the socket/tcp endpoint children
// are forked from a multi-threaded parent and may only run code of this
// kind. EINTR is always retried; a dead peer surfaces as a return code
// (via MSG_NOSIGNAL), never as SIGPIPE.

#include <poll.h>
#include <sys/socket.h>
#include <sys/uio.h>
#include <unistd.h>

#include <cerrno>
#include <cstddef>
#include <cstdint>

namespace grape {
namespace net {

/// Reads exactly `n` bytes. Returns 1 on success, 0 on clean EOF before
/// the first byte, -1 on error or EOF mid-record.
inline int ReadFullFd(int fd, uint8_t* p, size_t n) {
  size_t got = 0;
  while (got < n) {
    ssize_t k = read(fd, p + got, n - got);
    if (k == 0) return got == 0 ? 0 : -1;
    if (k < 0) {
      if (errno == EINTR || errno == EAGAIN) continue;
      return -1;
    }
    got += static_cast<size_t>(k);
  }
  return 1;
}

/// Writes exactly `n` bytes, looping over short writes. MSG_NOSIGNAL so a
/// dead peer surfaces as EPIPE, not SIGPIPE.
inline bool WriteFullFd(int fd, const uint8_t* p, size_t n) {
  size_t put = 0;
  while (put < n) {
    ssize_t k = send(fd, p + put, n - put, MSG_NOSIGNAL);
    if (k < 0) {
      if (errno == EINTR || errno == EAGAIN) continue;
      return false;
    }
    put += static_cast<size_t>(k);
  }
  return true;
}

/// Writes every byte of an iovec array, looping over short writes that
/// can land mid-element (sendmsg so MSG_NOSIGNAL applies). Used to gather
/// a frame header with its payload into one segment.
inline bool WritevFullFd(int fd, struct iovec* iov, size_t iovcnt) {
  struct msghdr msg {};
  msg.msg_iov = iov;
  msg.msg_iovlen = iovcnt;
  for (;;) {
    ssize_t k = sendmsg(fd, &msg, MSG_NOSIGNAL);
    if (k < 0) {
      if (errno == EINTR || errno == EAGAIN) continue;
      return false;
    }
    size_t adv = static_cast<size_t>(k);
    while (msg.msg_iovlen > 0 && adv >= msg.msg_iov[0].iov_len) {
      adv -= msg.msg_iov[0].iov_len;
      ++msg.msg_iov;
      --msg.msg_iovlen;
    }
    if (msg.msg_iovlen == 0) return true;
    msg.msg_iov[0].iov_base =
        static_cast<uint8_t*>(msg.msg_iov[0].iov_base) + adv;
    msg.msg_iov[0].iov_len -= adv;
  }
}

/// Streams `n` payload bytes from `in` to `out` through `buf` without
/// buffering the whole frame. EOF mid-payload is a protocol violation.
inline bool RelayPayload(int in, int out, uint8_t* buf, size_t buf_size,
                         size_t n) {
  while (n > 0) {
    size_t want = n < buf_size ? n : buf_size;
    ssize_t k = read(in, buf, want);
    if (k <= 0) {
      if (k < 0 && (errno == EINTR || errno == EAGAIN)) continue;
      return false;
    }
    if (!WriteFullFd(out, buf, static_cast<size_t>(k))) return false;
    n -= static_cast<size_t>(k);
  }
  return true;
}

}  // namespace net
}  // namespace grape

#endif  // GRAPE_RT_NET_UTIL_H_
