#ifndef GRAPE_RT_COMM_WORLD_H_
#define GRAPE_RT_COMM_WORLD_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

#include "rt/message.h"
#include "util/status.h"

namespace grape {

/// Aggregate communication counters. Every byte crossing a rank boundary is
/// counted here; benchmark "Comm." columns read these.
struct CommStats {
  uint64_t messages = 0;
  uint64_t bytes = 0;

  double megabytes() const { return static_cast<double>(bytes) / (1 << 20); }
  std::string ToString() const;
};

/// In-process substitute for the paper's MPI Controller (MPICH2): a world of
/// `size` ranks with reliable, FIFO, thread-safe point-to-point mailboxes.
/// Rank 0 is conventionally the coordinator P0. Payloads are serialized
/// bytes, so traffic volume is measured exactly as a network transport
/// would see it; only latency/bandwidth differ from a real cluster, which
/// affects absolute times, not the relative shapes the paper reports.
class CommWorld {
 public:
  explicit CommWorld(uint32_t size);

  CommWorld(const CommWorld&) = delete;
  CommWorld& operator=(const CommWorld&) = delete;

  uint32_t size() const { return size_; }

  /// Delivers `payload` to `to`'s mailbox. Thread-safe.
  Status Send(uint32_t from, uint32_t to, uint32_t tag,
              std::vector<uint8_t> payload);

  /// Non-blocking receive: pops the oldest pending message for `rank`
  /// (optionally filtered by tag); std::nullopt if the mailbox is empty.
  std::optional<RtMessage> TryRecv(uint32_t rank);
  std::optional<RtMessage> TryRecv(uint32_t rank, uint32_t tag);

  /// Blocking receive with no timeout; used by tests exercising the
  /// channel's cross-thread semantics.
  RtMessage Recv(uint32_t rank);

  /// Drains every pending message for `rank`.
  std::vector<RtMessage> DrainAll(uint32_t rank);

  size_t PendingCount(uint32_t rank) const;

  /// Global counters since construction or the last ResetStats().
  CommStats stats() const;
  void ResetStats();

  /// Payload recycling shared by every rank: encode into Acquire()d
  /// buffers, Release() consumed payloads. Using the pool is optional —
  /// Send accepts any vector — but the engine's message path routes every
  /// payload through it so steady-state supersteps allocate nothing.
  BufferPool& buffer_pool() { return pool_; }

 private:
  struct Mailbox {
    mutable std::mutex mu;
    std::condition_variable cv;
    std::deque<RtMessage> queue;
  };

  uint32_t size_;
  std::vector<std::unique_ptr<Mailbox>> mailboxes_;
  BufferPool pool_;
  std::atomic<uint64_t> total_messages_{0};
  std::atomic<uint64_t> total_bytes_{0};
};

}  // namespace grape

#endif  // GRAPE_RT_COMM_WORLD_H_
