#ifndef GRAPE_RT_COMM_WORLD_H_
#define GRAPE_RT_COMM_WORLD_H_

#include <cstdint>
#include <string>
#include <vector>

#include "rt/transport.h"
#include "util/status.h"

namespace grape {

/// In-process Transport backend, the substitute for the paper's MPI
/// Controller (MPICH2) when every rank lives in one process: Send moves
/// the payload straight into the destination mailbox, so delivery is
/// synchronous and Flush is a no-op. Payloads are still fully serialized
/// bytes, so traffic volume is measured exactly as a network transport
/// would see it; only latency/bandwidth differ from a real cluster, which
/// affects absolute times, not the relative shapes the paper reports.
class CommWorld final : public MailboxTransport {
 public:
  explicit CommWorld(uint32_t size) : MailboxTransport(size) {}

  CommWorld(const CommWorld&) = delete;
  CommWorld& operator=(const CommWorld&) = delete;

  std::string name() const override { return "inproc"; }

  /// Delivers `payload` to `to`'s mailbox before returning. Thread-safe.
  Status Send(uint32_t from, uint32_t to, uint32_t tag,
              std::vector<uint8_t> payload) override;

  /// Delivery is synchronous, so the barrier only has to report shutdown.
  Status Flush() override {
    if (closed()) return Status::Cancelled("transport closed");
    return Status::OK();
  }

  void Close() override { MarkClosed(); }

  /// The in-process world has nothing to respawn: recovery is clearing
  /// the mailboxes and reopening. (Exercised through FlakyTransport's
  /// crash knobs — the deterministic stand-in for a killed endpoint.)
  bool supports_recovery() const override { return true; }
  Status Recover() override {
    ResetForRecovery();
    return Status::OK();
  }
};

}  // namespace grape

#endif  // GRAPE_RT_COMM_WORLD_H_
