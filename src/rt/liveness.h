#ifndef GRAPE_RT_LIVENESS_H_
#define GRAPE_RT_LIVENESS_H_

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "util/status.h"

namespace grape {

/// Coordinator-side failure detector for the fault-tolerant engine path.
///
/// Two signals feed it:
///  - `Heard(rank)` from the engine's await loops whenever any frame arrives
///    from a worker (data, ack, vote, pong — all count as proof of life);
///  - an optional pid probe (waitpid(WNOHANG) over the transport's endpoint
///    pids) so a SIGKILLed local endpoint is detected within one poll
///    interval instead of only when the next Send hits a dead socket.
///
/// The monitor never acts on its own — `Check()` returns a Status the
/// engine's bounded-time liveness loop surfaces, which then triggers the
/// recovery path when a CheckpointPolicy is enabled.
class WorkerLivenessMonitor {
 public:
  /// Probe callback: returns true when the worker serving fragment `frag`
  /// is known dead (e.g. its endpoint process was reaped).
  using PidProbe = std::function<bool(uint32_t frag)>;

  WorkerLivenessMonitor() = default;
  WorkerLivenessMonitor(uint32_t num_workers, uint64_t lease_ms);

  void Reset(uint32_t num_workers, uint64_t lease_ms);

  /// Records proof of life for fragment `frag` (0-based fragment id).
  void Heard(uint32_t frag);

  void set_pid_probe(PidProbe probe) { probe_ = std::move(probe); }

  /// True when the lease (no frame heard for `lease_ms`) makes a ping
  /// worth sending to `frag`. Resets the ping clock so callers do not
  /// flood; pings are control frames invisible to CommStats.
  bool ShouldPing(uint32_t frag);

  /// Unavailable when any worker's endpoint is known dead via the pid
  /// probe; OK otherwise. Lease expiry alone never fails the run here —
  /// the engine's own deadline handles silent hangs — so a slow IncEval
  /// is not misclassified as death.
  Status Check();

  uint64_t last_heard_ms(uint32_t frag) const;

  static uint64_t NowMs();

 private:
  uint64_t lease_ms_ = 0;
  std::vector<uint64_t> last_heard_;
  std::vector<uint64_t> last_ping_;
  PidProbe probe_;
};

}  // namespace grape

#endif  // GRAPE_RT_LIVENESS_H_
