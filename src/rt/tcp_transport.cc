#include "rt/tcp_transport.h"

#include <arpa/inet.h>
#include <netdb.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <signal.h>
#include <sys/socket.h>
#include <sys/uio.h>
#include <sys/wait.h>
#include <time.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <string>
#include <utility>

#include "core/codec.h"
#include "rt/fd_registry.h"
#include "rt/frame_decoder.h"
#include "rt/net_util.h"
#include "rt/remote_worker.h"
#include "rt/retry.h"
#include "rt/worker_protocol.h"

namespace grape {
namespace {

// ---------------------------------------------------------------------------
// Rendezvous wire protocol. Everything is fixed-size so the forked
// endpoint children can parse it with preallocated buffers only.
//
//   hello  (endpoint -> rank-0 listener), 12 bytes:
//     u32 magic, u32 rank, u32 mesh listener port (host value)
//   roster (rank-0 listener -> endpoint), 8 + n*8 bytes:
//     u32 magic, u32 n, then per rank: 4 raw bytes of in_addr (network
//     order), 2 raw bytes of in_port (network order), 2 zero bytes
//   mesh hello (dialing endpoint -> accepting endpoint), 8 bytes:
//     u32 magic, u32 dialer's rank
//
// When TcpOptions::cluster_token is set, both hellos are followed by an
// 8-byte token digest (u64, little endian) that the accepting side
// verifies before the connection can claim a rank: anyone can speak the
// 12-byte hello, so on a shared network the magic alone must not admit a
// process into the world. A missing or wrong digest is treated exactly
// like a malformed hello — dropped, loop keeps accepting — so an
// impostor cannot take a rank OR abort a legitimate launch. An empty
// token (the default) adds no bytes anywhere: the wire format stays
// byte-identical to the unauthenticated protocol.
//
// After the roster, the rendezvous connection carries nothing but
// FrameHeader frames in both directions for the life of the world.
// ---------------------------------------------------------------------------

constexpr uint32_t kHelloMagic = 0x43505247;   // "GRPC"
constexpr uint32_t kRosterMagic = 0x4f525247;  // "GRRO"
constexpr uint32_t kMeshMagic = 0x4d525247;    // "GRRM"
constexpr size_t kHelloBytes = 12;
constexpr size_t kRosterHeaderBytes = 8;
constexpr size_t kRosterEntryBytes = 8;
constexpr size_t kMeshHelloBytes = 8;
constexpr size_t kRelayChunkBytes = 64 * 1024;

void PutU32(uint8_t* p, uint32_t v) {
  p[0] = static_cast<uint8_t>(v);
  p[1] = static_cast<uint8_t>(v >> 8);
  p[2] = static_cast<uint8_t>(v >> 16);
  p[3] = static_cast<uint8_t>(v >> 24);
}

uint32_t GetU32(const uint8_t* p) {
  return static_cast<uint32_t>(p[0]) | static_cast<uint32_t>(p[1]) << 8 |
         static_cast<uint32_t>(p[2]) << 16 | static_cast<uint32_t>(p[3]) << 24;
}

constexpr size_t kTokenDigestBytes = 8;

void PutU64(uint8_t* p, uint64_t v) {
  PutU32(p, static_cast<uint32_t>(v));
  PutU32(p + 4, static_cast<uint32_t>(v >> 32));
}

uint64_t GetU64(const uint8_t* p) {
  return static_cast<uint64_t>(GetU32(p)) |
         static_cast<uint64_t>(GetU32(p + 4)) << 32;
}

/// FNV-1a over the shared secret. This is rank admission on a trusted
/// network segment, not cryptography: it keeps strangers and
/// misconfigured clusters out of the world; it does not resist an
/// attacker who can sniff a valid hello off the wire. 0 is reserved as
/// "auth disabled", so a digest that lands there is nudged off it.
uint64_t TokenDigest(const std::string& token) {
  if (token.empty()) return 0;
  uint64_t h = 14695981039346656037ull;
  for (unsigned char c : token) {
    h ^= c;
    h *= 1099511628211ull;
  }
  return h == 0 ? 1 : h;
}

int64_t MonotonicMs() {
  struct timespec ts;
  clock_gettime(CLOCK_MONOTONIC, &ts);
  return static_cast<int64_t>(ts.tv_sec) * 1000 + ts.tv_nsec / 1000000;
}

/// Peer-death budget for a machine that stops answering without sending
/// an RST (power loss, network partition): keepalives probe an idle
/// connection and TCP_USER_TIMEOUT bounds unacknowledged sends, so the
/// endpoint/receiver sees an error within ~30s instead of waiting out
/// TCP's multi-minute retransmission schedule — this is what keeps the
/// "dead endpoint surfaces within a bounded time" contract true across
/// real machines, not just for local SIGKILLs (which RST promptly).
constexpr int kPeerDeathTimeoutMs = 30000;

/// Applied to every mesh and link socket. TCP_NODELAY because frames are
/// tiny relative to TCP's coalescing timers — Nagle+delayed-ACK would add
/// ~40ms to every superstep barrier; keepalive+user-timeout per above.
void TuneSocket(int fd) {
  int one = 1;
  setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  setsockopt(fd, SOL_SOCKET, SO_KEEPALIVE, &one, sizeof(one));
  int idle = 10, interval = 5, count = 4;
  setsockopt(fd, IPPROTO_TCP, TCP_KEEPIDLE, &idle, sizeof(idle));
  setsockopt(fd, IPPROTO_TCP, TCP_KEEPINTVL, &interval, sizeof(interval));
  setsockopt(fd, IPPROTO_TCP, TCP_KEEPCNT, &count, sizeof(count));
  int user_timeout = kPeerDeathTimeoutMs;
  setsockopt(fd, IPPROTO_TCP, TCP_USER_TIMEOUT, &user_timeout,
             sizeof(user_timeout));
}

/// Dials `addr`, retrying connection refusals until `deadline_ms`
/// (CLOCK_MONOTONIC): in cluster mode endpoints may come up before the
/// engine's listener. Retries back off through rt/retry.h (capped
/// exponential with jitter, seeded by the target port so a world of
/// ranks dialing the same rendezvous de-herds) instead of a fixed-rate
/// hammer. Async-signal-safe. Returns -1 past the deadline.
int ConnectWithDeadline(const sockaddr_in& addr, int64_t deadline_ms) {
  RetryPolicy policy;
  policy.initial_backoff_ms = 10;
  policy.max_backoff_ms = 500;
  RetryState retry(policy, static_cast<uint64_t>(deadline_ms),
                   static_cast<uint64_t>(addr.sin_port) + 1);
  for (;;) {
    int fd = socket(AF_INET, SOCK_STREAM, 0);
    if (fd < 0) return -1;
    TuneSocket(fd);
    int rc = connect(fd, reinterpret_cast<const sockaddr*>(&addr),
                     sizeof(addr));
    int err = rc == 0 ? 0 : errno;
    if (err == EINTR) {
      // The interrupted connect continues asynchronously; re-calling
      // connect() would yield EALREADY/EISCONN, not a retry. Wait for
      // the outcome — within the caller's deadline — and read it from
      // SO_ERROR.
      const int64_t remain = deadline_ms - MonotonicMs();
      const int wait_ms =
          remain <= 0 ? 0
                      : static_cast<int>(remain < kPeerDeathTimeoutMs
                                             ? remain
                                             : kPeerDeathTimeoutMs);
      struct pollfd pfd = {fd, POLLOUT, 0};
      int pr;
      do {
        pr = poll(&pfd, 1, wait_ms);
      } while (pr < 0 && errno == EINTR);
      int so_err = 0;
      socklen_t len = sizeof(so_err);
      if (pr > 0 &&
          getsockopt(fd, SOL_SOCKET, SO_ERROR, &so_err, &len) == 0) {
        err = so_err;  // 0 = the connection actually completed
      } else {
        err = ETIMEDOUT;
      }
    }
    if (err == 0) return fd;
    close(fd);
    if (err != ECONNREFUSED && err != ETIMEDOUT && err != EHOSTUNREACH &&
        err != ENETUNREACH && err != EAGAIN) {
      return -1;
    }
    if (!retry.BackoffOrGiveUp()) return -1;
  }
}

/// Reads exactly `n` bytes with an absolute CLOCK_MONOTONIC deadline
/// (poll + read). Returns false on timeout, EOF, or error. Syscall-only,
/// so both the engine's rendezvous listener and the forked endpoints'
/// mesh listeners use it to bound how long an unresponsive connection
/// can hold a join phase hostage.
bool ReadFullDeadline(int fd, uint8_t* p, size_t n, int64_t deadline_ms) {
  size_t got = 0;
  while (got < n) {
    const int64_t remain = deadline_ms - MonotonicMs();
    if (remain <= 0) return false;
    struct pollfd pfd = {fd, POLLIN, 0};
    int rc = poll(&pfd, 1, static_cast<int>(remain));
    if (rc < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    if (rc == 0) return false;
    ssize_t k = read(fd, p + got, n - got);
    if (k <= 0) {
      if (k < 0 && (errno == EINTR || errno == EAGAIN)) continue;
      return false;
    }
    got += static_cast<size_t>(k);
  }
  return true;
}

/// Caps a per-connection handshake read at a few seconds so one silent
/// client serializes a join phase briefly, not until the global deadline.
int64_t HandshakeDeadline(int64_t phase_deadline_ms) {
  const int64_t cap = MonotonicMs() + 5000;
  return cap < phase_deadline_ms ? cap : phase_deadline_ms;
}

/// Reads and checks the 8-byte token digest that follows a hello when
/// auth is on; reads nothing when it is off. A short read, a timeout, and
/// a mismatch all mean the same thing: not one of ours.
bool ReadTokenDigest(int fd, uint64_t expect, int64_t deadline_ms) {
  if (expect == 0) return true;
  uint8_t buf[kTokenDigestBytes];
  if (!ReadFullDeadline(fd, buf, sizeof(buf), deadline_ms)) return false;
  return GetU64(buf) == expect;
}

/// Relays one frame: reads up to one chunk of payload from `in`, gathers
/// it with the already-read header into a single writev, then streams the
/// remainder. Returns false on peer death or EOF mid-frame.
bool RelayFrame(int in, int out, const uint8_t* header, uint8_t* buf,
                size_t buf_size, size_t len) {
  const size_t first = len < buf_size ? len : buf_size;
  size_t got = 0;
  while (got < first) {
    ssize_t k = read(in, buf + got, first - got);
    if (k <= 0) {
      if (k < 0 && (errno == EINTR || errno == EAGAIN)) continue;
      return false;
    }
    got += static_cast<size_t>(k);
  }
  struct iovec iov[2];
  iov[0].iov_base = const_cast<uint8_t*>(header);
  iov[0].iov_len = kFrameHeaderBytes;
  iov[1].iov_base = buf;
  iov[1].iov_len = got;
  if (!net::WritevFullFd(out, iov, got > 0 ? 2 : 1)) return false;
  return net::RelayPayload(in, out, buf, buf_size, len - got);
}

// ---------------------------------------------------------------------------
// The endpoint process. May be a child forked from a multi-threaded
// engine (auto-spawn and cluster rank 0), so EndpointRun only executes
// async-signal-safe code: raw syscalls over memory preallocated in the
// plan. Standalone cluster endpoints (RunTcpEndpointProcess) share the
// exact same code path.
// ---------------------------------------------------------------------------

struct EndpointPlan {
  uint32_t rank = 0;
  uint32_t n = 0;
  int64_t deadline_ms = 0;  // absolute CLOCK_MONOTONIC setup deadline
  /// TokenDigest of TcpOptions::cluster_token; 0 = auth disabled.
  /// Precomputed before fork — children only copy bytes into hellos.
  uint64_t token_digest = 0;
  sockaddr_in coord_addr{};
  sockaddr_in mesh_bind{};
  std::vector<int> close_fds;        // inherited fds this child must drop
  std::vector<uint8_t> roster_wire;  // n * kRosterEntryBytes
  std::vector<sockaddr_in> roster;   // n mesh addresses
  std::vector<int> mesh_fds;         // peer rank -> mesh fd (self: -1)
  std::vector<uint8_t> read_open;    // peer rank -> still expecting frames
  std::vector<struct pollfd> pfds;   // n + 1 slots, main relay loop
  std::vector<int> pfd_rank;         // pfds position -> peer rank (-1 = link)
  std::vector<struct pollfd> wait_pfds;  // n + 1 slots, WaitMeshWritable
  std::vector<int> wait_pfd_rank;        // (separate: it runs NESTED inside
                                         // the main loop's pfds iteration)
  std::vector<uint8_t> out_buf;      // outbound (link -> mesh) relay chunks
  std::vector<uint8_t> in_buf;       // inbound (mesh -> link) relay chunks
  /// Remote compute: lazily created by the first worker-protocol frame
  /// addressed to this rank (kTagWkLoad). From then on this endpoint is
  /// not just a relay — PEval/IncEval execute HERE, and the host's
  /// output frames leave through the mesh like any other traffic. Frames
  /// only the engine sends (remote_app mode), so pure-relay worlds never
  /// allocate. Forked auto-spawn children rely on glibc's fork handlers
  /// keeping malloc usable; standalone cluster endpoints
  /// (RunTcpEndpointProcess) involve no fork at all.
  std::unique_ptr<RemoteWorkerHost> worker;
};

void SizePlan(EndpointPlan& plan) {
  plan.roster_wire.resize(static_cast<size_t>(plan.n) * kRosterEntryBytes);
  plan.roster.resize(plan.n);
  plan.mesh_fds.assign(plan.n, -1);
  plan.read_open.assign(plan.n, 0);
  plan.pfds.resize(plan.n + 1);
  plan.pfd_rank.resize(plan.n + 1);
  plan.wait_pfds.resize(plan.n + 1);
  plan.wait_pfd_rank.resize(plan.n + 1);
  plan.out_buf.resize(kRelayChunkBytes);
  plan.in_buf.resize(kRelayChunkBytes);
}

bool MeshWriteFull(EndpointPlan& plan, int cfd, uint32_t target,
                   struct iovec* iov, size_t iovcnt);

/// Reads one frame from mesh peer `s` and relays it up the engine link
/// (which always drains: the engine's receiver thread consumes into an
/// unbounded mailbox) — or, for worker-protocol frames, hands it to this
/// endpoint's worker host. Clean peer shutdown clears read_open. Uses
/// in_buf, so it is safe to call while out_buf holds a half-sent
/// outbound chunk.
bool ServiceMeshRead(EndpointPlan& plan, int cfd, uint32_t s) {
  const int fd = plan.mesh_fds[s];
  uint8_t header[kFrameHeaderBytes];
  // The caller's poll snapshot can be stale: a nested WaitMeshWritable
  // pass may already have consumed this conn's data. Probe the first
  // byte without blocking — an empty conn is "nothing to do", not an
  // error, and must not park the relay loop in a blocking read.
  ssize_t first;
  for (;;) {
    first = recv(fd, header, 1, MSG_DONTWAIT);
    if (first >= 0) break;
    if (errno == EAGAIN || errno == EWOULDBLOCK) return true;
    if (errno != EINTR) return false;
  }
  if (first == 0) {
    plan.read_open[s] = 0;
    return true;
  }
  // One header byte is in: the peer committed a whole frame; blocking
  // for the remainder is safe.
  const int h = net::ReadFullFd(fd, header + 1, sizeof(header) - 1);
  if (h != 1) return false;
  const uint32_t from = GetU32(header + 0);
  const uint32_t to = GetU32(header + 4);
  const uint32_t tag = GetU32(header + 8);
  const uint32_t len = GetU32(header + 12);
  if (from != s || to != plan.rank || len > kMaxFramePayloadBytes) {
    return false;
  }
  // Worker-protocol frames addressed to a worker rank are consumed here —
  // remote compute happens in THIS process. Rank 0's endpoint never hosts
  // a worker: it fronts the engine, so worker output addressed to the
  // coordinator (acks, owner-bound updates, partials) relays up its link
  // like any other frame.
  if (IsWorkerTag(tag) && plan.rank != 0) {
    // Remote compute: consume the frame here instead of relaying it up.
    // The peer committed a whole frame, so blocking for the payload is
    // safe (same argument as the header remainder above).
    std::vector<uint8_t> payload(len);
    if (len > 0 && net::ReadFullFd(fd, payload.data(), len) != 1) {
      return false;
    }
    if (!plan.worker) {
      // Output frames travel the mesh exactly like engine-relayed ones:
      // over the (rank, to) connection with deadlock-free writes, so
      // acks reach the engine via endpoint 0's link and direct mirror
      // refreshes reach the destination endpoint's worker directly.
      EndpointPlan* p = &plan;
      plan.worker = std::make_unique<RemoteWorkerHost>(
          plan.rank, [p, cfd](uint32_t out_to, uint32_t out_tag,
                              std::vector<uint8_t> out_payload) {
            if (out_to >= p->n || p->mesh_fds[out_to] < 0) {
              return Status::IOError("worker output for rank " +
                                     std::to_string(out_to) +
                                     " has no mesh connection");
            }
            uint8_t out_header[kFrameHeaderBytes];
            EncodeFrameHeader(
                FrameHeader{p->rank, out_to, out_tag,
                            static_cast<uint32_t>(out_payload.size())},
                out_header);
            struct iovec iov[2];
            iov[0].iov_base = out_header;
            iov[0].iov_len = kFrameHeaderBytes;
            iov[1].iov_base = out_payload.data();
            iov[1].iov_len = out_payload.size();
            if (!MeshWriteFull(*p, cfd, out_to, iov,
                               out_payload.empty() ? 1 : 2)) {
              return Status::IOError("worker output mesh write failed");
            }
            return Status::OK();
          });
    }
    return plan.worker->OnFrame(from, tag, std::move(payload)).ok();
  }
  return RelayFrame(fd, cfd, header, plan.in_buf.data(), plan.in_buf.size(),
                    len);
}

/// Blocks until mesh conn `target` is writable — but keeps consuming
/// inbound mesh frames while waiting. This is what makes the full-duplex
/// mesh deadlock-free: if we and a peer are both mid-write on the same
/// (or a cyclically dependent) connection, each side draining its read
/// half reopens the other side's TCP window, so someone always makes
/// progress. Plain blocking writes here would let two ranks exchanging
/// more than a socket buffer of data in both directions wedge the world.
bool WaitMeshWritable(EndpointPlan& plan, int cfd, uint32_t target) {
  for (;;) {
    nfds_t live = 0;
    plan.wait_pfds[live] = {plan.mesh_fds[target], POLLOUT, 0};
    plan.wait_pfd_rank[live] = -2;
    ++live;
    for (uint32_t s = 0; s < plan.n; ++s) {
      if (!plan.read_open[s]) continue;
      plan.wait_pfds[live] = {plan.mesh_fds[s], POLLIN, 0};
      plan.wait_pfd_rank[live] = static_cast<int>(s);
      ++live;
    }
    const int rc = poll(plan.wait_pfds.data(), live, -1);
    if (rc < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    bool writable = false;
    for (nfds_t j = 0; j < live; ++j) {
      if (plan.wait_pfds[j].revents == 0) continue;
      if (plan.wait_pfd_rank[j] == -2) {
        // POLLERR/POLLHUP also end the wait: the retried send surfaces
        // the error as EPIPE.
        writable = true;
      } else if (!ServiceMeshRead(
                     plan, cfd,
                     static_cast<uint32_t>(plan.wait_pfd_rank[j]))) {
        return false;
      }
    }
    if (writable) return true;
  }
}

/// Writes a whole iovec to mesh conn `target` with MSG_DONTWAIT sends,
/// parking in WaitMeshWritable whenever the peer's window is closed.
bool MeshWriteFull(EndpointPlan& plan, int cfd, uint32_t target,
                   struct iovec* iov, size_t iovcnt) {
  struct msghdr msg {};
  msg.msg_iov = iov;
  msg.msg_iovlen = iovcnt;
  for (;;) {
    const ssize_t k =
        sendmsg(plan.mesh_fds[target], &msg, MSG_NOSIGNAL | MSG_DONTWAIT);
    if (k < 0) {
      if (errno == EINTR) continue;
      if (errno != EAGAIN && errno != EWOULDBLOCK) return false;
      if (!WaitMeshWritable(plan, cfd, target)) return false;
      continue;
    }
    size_t adv = static_cast<size_t>(k);
    while (msg.msg_iovlen > 0 && adv >= msg.msg_iov[0].iov_len) {
      adv -= msg.msg_iov[0].iov_len;
      ++msg.msg_iov;
      --msg.msg_iovlen;
    }
    if (msg.msg_iovlen == 0) return true;
    msg.msg_iov[0].iov_base =
        static_cast<uint8_t*>(msg.msg_iov[0].iov_base) + adv;
    msg.msg_iov[0].iov_len -= adv;
  }
}

/// Relays one frame from the engine link onto mesh conn `to`, streaming
/// the payload in chunks through out_buf with deadlock-free mesh writes.
bool RelayParentFrameToMesh(EndpointPlan& plan, int cfd, uint32_t to,
                            const uint8_t* header, uint32_t len) {
  uint8_t* buf = plan.out_buf.data();
  const size_t buf_size = plan.out_buf.size();
  size_t left = len;
  bool header_pending = true;
  while (header_pending || left > 0) {
    const size_t want = left < buf_size ? left : buf_size;
    size_t got = 0;
    if (want > 0) {
      const ssize_t k = read(cfd, buf, want);
      if (k <= 0) {
        if (k < 0 && (errno == EINTR || errno == EAGAIN)) continue;
        return false;  // engine died mid-frame
      }
      got = static_cast<size_t>(k);
    }
    struct iovec iov[2];
    size_t iovcnt = 0;
    if (header_pending) {
      iov[iovcnt].iov_base = const_cast<uint8_t*>(header);
      iov[iovcnt].iov_len = kFrameHeaderBytes;
      ++iovcnt;
    }
    if (got > 0) {
      iov[iovcnt].iov_base = buf;
      iov[iovcnt].iov_len = got;
      ++iovcnt;
    }
    if (!MeshWriteFull(plan, cfd, to, iov, iovcnt)) return false;
    header_pending = false;
    left -= got;
  }
  return true;
}

/// Runs the endpoint: rendezvous, mesh, then the relay loop — frames from
/// the engine link fan out over the mesh (or loop back for self-sends),
/// frames from the mesh relay up the link. Exits cleanly only after the
/// engine shut the link down AND every mesh peer finished sending, so no
/// frame in flight is ever dropped. Returns the process exit code.
/// `lfd`/`cfd` are out-params so the EndpointRun wrapper can close
/// whatever a failed join left open.
int EndpointRunBody(EndpointPlan& plan, int& lfd, int& cfd) {
  for (int fd : plan.close_fds) close(fd);

  // Mesh listener, bound before the hello so the roster only ever names
  // listeners that already exist — dialing after the roster needs no
  // retry handshake.
  lfd = socket(AF_INET, SOCK_STREAM, 0);
  if (lfd < 0) return 1;
  int one = 1;
  setsockopt(lfd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  if (bind(lfd, reinterpret_cast<const sockaddr*>(&plan.mesh_bind),
           sizeof(plan.mesh_bind)) != 0) {
    return 1;
  }
  if (listen(lfd, static_cast<int>(plan.n) + 8) != 0) return 1;
  sockaddr_in bound{};
  socklen_t blen = sizeof(bound);
  if (getsockname(lfd, reinterpret_cast<sockaddr*>(&bound), &blen) != 0) {
    return 1;
  }

  // Rendezvous: dial the rank-0 listener, report our mesh address, get
  // the frozen roster back. This connection then IS the frame link.
  cfd = ConnectWithDeadline(plan.coord_addr, plan.deadline_ms);
  if (cfd < 0) return 1;
  uint8_t hello[kHelloBytes + kTokenDigestBytes];
  PutU32(hello + 0, kHelloMagic);
  PutU32(hello + 4, plan.rank);
  PutU32(hello + 8, ntohs(bound.sin_port));
  size_t hello_len = kHelloBytes;
  if (plan.token_digest != 0) {
    PutU64(hello + kHelloBytes, plan.token_digest);
    hello_len += kTokenDigestBytes;
  }
  if (!net::WriteFullFd(cfd, hello, hello_len)) return 1;

  uint8_t rhdr[kRosterHeaderBytes];
  if (net::ReadFullFd(cfd, rhdr, sizeof(rhdr)) != 1) return 1;
  if (GetU32(rhdr) != kRosterMagic || GetU32(rhdr + 4) != plan.n) return 1;
  if (!plan.roster_wire.empty() &&
      net::ReadFullFd(cfd, plan.roster_wire.data(),
                      plan.roster_wire.size()) != 1) {
    return 1;
  }
  for (uint32_t r = 0; r < plan.n; ++r) {
    sockaddr_in& a = plan.roster[r];
    std::memset(&a, 0, sizeof(a));
    a.sin_family = AF_INET;
    const uint8_t* e = plan.roster_wire.data() + r * kRosterEntryBytes;
    std::memcpy(&a.sin_addr.s_addr, e, 4);
    std::memcpy(&a.sin_port, e + 4, 2);
  }

  // Full mesh: dial every lower rank, accept from every higher rank. One
  // TCP connection per unordered pair carries both directions.
  for (uint32_t s = 0; s < plan.rank; ++s) {
    int fd = ConnectWithDeadline(plan.roster[s], plan.deadline_ms);
    if (fd < 0) return 1;
    uint8_t mh[kMeshHelloBytes + kTokenDigestBytes];
    PutU32(mh + 0, kMeshMagic);
    PutU32(mh + 4, plan.rank);
    size_t mh_len = kMeshHelloBytes;
    if (plan.token_digest != 0) {
      PutU64(mh + kMeshHelloBytes, plan.token_digest);
      mh_len += kTokenDigestBytes;
    }
    if (!net::WriteFullFd(fd, mh, mh_len)) return 1;
    plan.mesh_fds[s] = fd;
  }
  // Accepting is hardened the same way as the rank-0 rendezvous
  // listener: this port may sit open on INADDR_ANY for the whole join
  // window, so a connection only claims a peer slot once it produces a
  // well-formed mesh hello — probes and garbage are dropped and the loop
  // keeps accepting, with the phase deadline as the backstop.
  uint32_t have = 0;
  const uint32_t need = plan.n - 1 - plan.rank;
  while (have < need) {
    const int64_t remain = plan.deadline_ms - MonotonicMs();
    if (remain <= 0) return 1;
    struct pollfd lp = {lfd, POLLIN, 0};
    const int prc = poll(&lp, 1, static_cast<int>(remain));
    if (prc < 0) {
      if (errno == EINTR) continue;
      return 1;
    }
    if (prc == 0) continue;  // re-check the deadline
    int fd;
    do {
      fd = accept(lfd, nullptr, nullptr);
    } while (fd < 0 && errno == EINTR);
    if (fd < 0) return 1;
    TuneSocket(fd);
    uint8_t mh[kMeshHelloBytes];
    if (!ReadFullDeadline(fd, mh, sizeof(mh),
                          HandshakeDeadline(plan.deadline_ms))) {
      close(fd);
      continue;
    }
    const uint32_t from = GetU32(mh + 4);
    if (GetU32(mh + 0) != kMeshMagic || from <= plan.rank || from >= plan.n ||
        plan.mesh_fds[from] >= 0 ||
        !ReadTokenDigest(fd, plan.token_digest,
                         HandshakeDeadline(plan.deadline_ms))) {
      close(fd);
      continue;
    }
    plan.mesh_fds[from] = fd;
    ++have;
  }
  close(lfd);
  lfd = -1;

  // Relay loop.
  bool link_open = true;
  for (uint32_t s = 0; s < plan.n; ++s) {
    plan.read_open[s] = (s != plan.rank && plan.mesh_fds[s] >= 0) ? 1 : 0;
  }
  for (;;) {
    nfds_t live = 0;
    if (link_open) {
      plan.pfds[live] = {cfd, POLLIN, 0};
      plan.pfd_rank[live] = -1;
      ++live;
    }
    for (uint32_t s = 0; s < plan.n; ++s) {
      if (!plan.read_open[s]) continue;
      plan.pfds[live] = {plan.mesh_fds[s], POLLIN, 0};
      plan.pfd_rank[live] = static_cast<int>(s);
      ++live;
    }
    if (live == 0) break;  // link down and every peer drained: all relayed
    int rc = poll(plan.pfds.data(), live, -1);
    if (rc < 0) {
      if (errno == EINTR) continue;
      return 1;
    }
    for (nfds_t j = 0; j < live; ++j) {
      if (plan.pfds[j].revents == 0) continue;
      uint8_t header[kFrameHeaderBytes];
      if (plan.pfd_rank[j] < 0) {
        // Engine link: a frame Sent from this rank, or engine shutdown.
        const int h = net::ReadFullFd(cfd, header, sizeof(header));
        if (h == 0) {
          // Engine called Close(): nothing more will be Sent from this
          // rank, so tell every peer this direction is done.
          link_open = false;
          for (uint32_t s = 0; s < plan.n; ++s) {
            if (s != plan.rank && plan.mesh_fds[s] >= 0) {
              shutdown(plan.mesh_fds[s], SHUT_WR);
            }
          }
          continue;
        }
        if (h < 0) return 1;
        const uint32_t from = GetU32(header + 0);
        const uint32_t to = GetU32(header + 4);
        const uint32_t len = GetU32(header + 12);
        if (from != plan.rank || to >= plan.n || len > kMaxFramePayloadBytes) {
          return 1;
        }
        if (to == plan.rank) {
          // Self-send: straight back up the link (always drains).
          if (!RelayFrame(cfd, cfd, header, plan.out_buf.data(),
                          plan.out_buf.size(), len)) {
            return 1;
          }
        } else if (plan.mesh_fds[to] < 0 ||
                   !RelayParentFrameToMesh(plan, cfd, to, header, len)) {
          return 1;
        }
      } else {
        // Mesh: a frame for this rank from peer s, or peer shutdown.
        const uint32_t s = static_cast<uint32_t>(plan.pfd_rank[j]);
        if (!ServiceMeshRead(plan, cfd, s)) return 1;
      }
    }
  }
  close(cfd);  // link EOF: the engine's receiver thread sees a clean end
  cfd = -1;
  for (uint32_t s = 0; s < plan.n; ++s) {
    if (plan.mesh_fds[s] >= 0) {
      close(plan.mesh_fds[s]);
      plan.mesh_fds[s] = -1;
    }
  }
  return 0;
}

/// EndpointRunBody + failure cleanup. Forked children _exit right after
/// this returns, but RunTcpEndpointProcess runs it in the caller's
/// process — a supervisor retrying a failed join in a loop must not leak
/// the listener, the rendezvous connection, and half a mesh per attempt.
int EndpointRun(EndpointPlan& plan) {
  int lfd = -1;
  int cfd = -1;
  const int rc = EndpointRunBody(plan, lfd, cfd);
  if (rc != 0) {
    if (lfd >= 0) close(lfd);
    if (cfd >= 0) close(cfd);
    for (int& fd : plan.mesh_fds) {
      if (fd >= 0) {
        close(fd);
        fd = -1;
      }
    }
  }
  return rc;
}

Status ResolveIPv4(const std::string& host, uint16_t port, sockaddr_in* out) {
  std::memset(out, 0, sizeof(*out));
  out->sin_family = AF_INET;
  out->sin_port = htons(port);
  struct addrinfo hints {};
  hints.ai_family = AF_INET;
  hints.ai_socktype = SOCK_STREAM;
  struct addrinfo* res = nullptr;
  const int rc = getaddrinfo(host.c_str(), nullptr, &hints, &res);
  if (rc != 0 || res == nullptr) {
    return Status::IOError("cannot resolve host '" + host +
                           "': " + gai_strerror(rc));
  }
  out->sin_addr = reinterpret_cast<sockaddr_in*>(res->ai_addr)->sin_addr;
  freeaddrinfo(res);
  return Status::OK();
}

}  // namespace

TcpTransport::TcpTransport(uint32_t size) : MailboxTransport(size) {
  links_.reserve(size);
  for (uint32_t i = 0; i < size; ++i) {
    links_.push_back(std::make_unique<Link>());
  }
}

Result<std::unique_ptr<TcpTransport>> TcpTransport::Create(
    uint32_t size, TcpOptions options) {
  if (size == 0) {
    return Status::InvalidArgument("transport size must be positive");
  }
  if (!options.hosts.empty() && options.hosts.size() != size) {
    return Status::InvalidArgument(
        "tcp roster lists " + std::to_string(options.hosts.size()) +
        " hosts for a world of " + std::to_string(size) + " ranks");
  }
  GRAPE_RETURN_NOT_OK(ValidateCoordinatorAddress(options.hosts));
  std::unique_ptr<TcpTransport> t(new TcpTransport(size));
  t->options_ = options;
  t->cluster_ = !options.hosts.empty();
  GRAPE_RETURN_NOT_OK(t->Init(options));
  return t;
}

Status TcpTransport::Init(const TcpOptions& options) {
  const uint32_t n = size();
  const bool cluster = !options.hosts.empty();

  // Advertised mesh address per rank: the --hosts entry in cluster mode
  // (resolved once, here), loopback in auto-spawn. Ports come from the
  // hellos — every mesh listener may bind ephemerally.
  std::vector<in_addr> roster_ip(n);
  for (uint32_t r = 0; r < n; ++r) {
    if (cluster) {
      sockaddr_in resolved;
      GRAPE_RETURN_NOT_OK(
          ResolveIPv4(options.hosts[r].host, 0, &resolved));
      roster_ip[r] = resolved.sin_addr;
    } else {
      roster_ip[r].s_addr = htonl(INADDR_LOOPBACK);
    }
  }

  // The rank-0 rendezvous listener. Auto-spawn stays on loopback with an
  // ephemeral port; cluster mode binds the advertised hosts[0].port on
  // every interface so remote endpoints can dial in.
  int lfd = socket(AF_INET, SOCK_STREAM, 0);
  if (lfd < 0) {
    return Status::IOError(std::string("tcp listener socket: ") +
                           std::strerror(errno));
  }
  int one = 1;
  setsockopt(lfd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in baddr{};
  baddr.sin_family = AF_INET;
  baddr.sin_port = htons(cluster ? options.hosts[0].port : 0);
  baddr.sin_addr.s_addr = htonl(cluster ? INADDR_ANY : INADDR_LOOPBACK);
  if (bind(lfd, reinterpret_cast<const sockaddr*>(&baddr), sizeof(baddr)) !=
          0 ||
      listen(lfd, static_cast<int>(n) + 8) != 0) {
    Status st = Status::IOError(std::string("tcp rendezvous listener: ") +
                                std::strerror(errno));
    close(lfd);
    return st;
  }
  sockaddr_in bound{};
  socklen_t blen = sizeof(bound);
  if (getsockname(lfd, reinterpret_cast<sockaddr*>(&bound), &blen) != 0) {
    close(lfd);
    return Status::IOError("tcp listener getsockname failed");
  }
  const uint16_t coord_port = ntohs(bound.sin_port);

  const int64_t deadline =
      MonotonicMs() + (options.rendezvous_timeout_ms > 0
                           ? options.rendezvous_timeout_ms
                           : 30000);
  const uint64_t token_digest = TokenDigest(options.cluster_token);

  std::vector<int> link_fds(n, -1);
  auto cleanup = [&](const std::string& what) {
    if (lfd >= 0) close(lfd);
    for (int fd : link_fds) {
      if (fd >= 0) close(fd);
    }
    for (pid_t pid : children_) {
      kill(pid, SIGKILL);
      waitpid(pid, nullptr, 0);
    }
    children_.clear();
    return Status::IOError("tcp transport setup failed: " + what);
  };

  // Fork the local endpoints: all n in auto-spawn, only rank 0's in
  // cluster mode (the rest are standalone RunClusterEndpoint processes
  // on their machines). Plans are fully allocated before fork. The
  // registry mutex covers only snapshot + forks — NOT the rendezvous,
  // which in cluster mode can legitimately wait minutes for hand-started
  // ranks and must not stall every other transport Create/destructor in
  // the process. The one consequence: a transport forked between our
  // accept phase and registration inherits dups of our link fds
  // unregistered — harmless for TCP, whose EOFs travel via shutdown()
  // and the child's own close, neither of which a stray dup can block
  // (unlike the socket backend's close()-signalled AF_UNIX pipes).
  {
    std::lock_guard<std::mutex> registry_lock(rt_internal::FdRegistryMutex());
    const uint32_t forks = cluster ? 1 : n;
    std::vector<EndpointPlan> plans(forks);
    for (uint32_t r = 0; r < forks; ++r) {
      EndpointPlan& plan = plans[r];
      plan.rank = r;
      plan.n = n;
      plan.deadline_ms = deadline;
      plan.token_digest = token_digest;
      std::memset(&plan.coord_addr, 0, sizeof(plan.coord_addr));
      plan.coord_addr.sin_family = AF_INET;
      plan.coord_addr.sin_port = htons(coord_port);
      plan.coord_addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
      std::memset(&plan.mesh_bind, 0, sizeof(plan.mesh_bind));
      plan.mesh_bind.sin_family = AF_INET;
      plan.mesh_bind.sin_port = 0;  // ephemeral; advertised via the roster
      plan.mesh_bind.sin_addr.s_addr =
          htonl(cluster ? INADDR_ANY : INADDR_LOOPBACK);
      SizePlan(plan);
      plan.close_fds.reserve(rt_internal::FdRegistry().size() + 1);
      for (int fd : rt_internal::FdRegistry()) plan.close_fds.push_back(fd);
      plan.close_fds.push_back(lfd);
    }
    for (uint32_t r = 0; r < forks; ++r) {
      pid_t pid = fork();
      if (pid < 0) return cleanup("fork(endpoint)");
      if (pid == 0) _exit(EndpointRun(plans[r]));
      children_.push_back(pid);
    }
  }

  // Rendezvous: collect one hello per rank, then hand every endpoint the
  // frozen roster on its own connection, which becomes the frame link.
  uint32_t joined = 0;
  std::vector<uint32_t> mesh_port(n, 0);
  while (joined < n) {
    const int64_t remain = deadline - MonotonicMs();
    if (remain <= 0) {
      return cleanup("rendezvous timed out with " + std::to_string(joined) +
                     " of " + std::to_string(n) + " endpoints joined");
    }
    struct pollfd pfd = {lfd, POLLIN, 0};
    int rc = poll(&pfd, 1, static_cast<int>(remain));
    if (rc < 0 && errno == EINTR) continue;
    if (rc <= 0) continue;  // re-check the deadline
    int fd;
    do {
      fd = accept(lfd, nullptr, nullptr);
    } while (fd < 0 && errno == EINTR);
    if (fd < 0) return cleanup(std::string("accept: ") + std::strerror(errno));
    TuneSocket(fd);
    // A connection is only an endpoint once it produces a well-formed
    // hello. Anything else — a port scanner, a health check, a stray
    // client, a duplicate rank — is dropped and the accept loop keeps
    // going: in cluster mode this listener sits on a well-known port for
    // a long window, and one probe must not abort the whole launch. The
    // per-hello read budget is capped so a connect-and-say-nothing peer
    // stalls real joins by at most a few seconds, with the overall
    // rendezvous deadline still the backstop.
    uint8_t hello[kHelloBytes];
    if (!ReadFullDeadline(fd, hello, sizeof(hello),
                          HandshakeDeadline(deadline))) {
      close(fd);
      continue;
    }
    const uint32_t rank = GetU32(hello + 4);
    const uint32_t port = GetU32(hello + 8);
    // Port 0 or >65535 would freeze an undialable mesh address into the
    // roster and burn every peer's join deadline — drop it like any
    // other malformed hello.
    // The token digest (auth enabled) is read only after the base hello
    // validates: garbage never earns the extra read, and with auth off
    // the accept path is byte-identical to the historical protocol.
    if (GetU32(hello + 0) != kHelloMagic || rank >= n ||
        link_fds[rank] >= 0 || port == 0 || port > 65535 ||
        !ReadTokenDigest(fd, token_digest, HandshakeDeadline(deadline))) {
      close(fd);
      continue;
    }
    link_fds[rank] = fd;
    mesh_port[rank] = port;
    ++joined;
  }
  std::vector<uint8_t> roster_wire(kRosterHeaderBytes +
                                   static_cast<size_t>(n) *
                                       kRosterEntryBytes);
  PutU32(roster_wire.data() + 0, kRosterMagic);
  PutU32(roster_wire.data() + 4, n);
  for (uint32_t r = 0; r < n; ++r) {
    uint8_t* e = roster_wire.data() + kRosterHeaderBytes +
                 static_cast<size_t>(r) * kRosterEntryBytes;
    std::memcpy(e, &roster_ip[r].s_addr, 4);
    const uint16_t port_be = htons(static_cast<uint16_t>(mesh_port[r]));
    std::memcpy(e + 4, &port_be, 2);
    e[6] = e[7] = 0;
  }
  for (uint32_t r = 0; r < n; ++r) {
    if (!net::WriteFullFd(link_fds[r], roster_wire.data(),
                          roster_wire.size())) {
      return cleanup("roster broadcast to rank " + std::to_string(r));
    }
  }
  close(lfd);
  lfd = -1;
  {
    std::lock_guard<std::mutex> registry_lock(rt_internal::FdRegistryMutex());
    for (uint32_t r = 0; r < n; ++r) {
      links_[r]->fd = link_fds[r];
      rt_internal::FdRegistry().insert(link_fds[r]);
    }
  }

  receivers_.reserve(n);
  for (uint32_t r = 0; r < n; ++r) {
    receivers_.emplace_back([this, r] { ReceiverLoop(r); });
  }
  return Status::OK();
}

TcpTransport::~TcpTransport() {
  Close();
  for (std::thread& t : receivers_) {
    if (t.joinable()) t.join();
  }
  std::vector<int> closed;
  for (auto& link : links_) {
    std::lock_guard<std::mutex> lock(link->mu);
    if (link->fd >= 0) {
      closed.push_back(link->fd);
      link->fd = -1;
    }
  }
  rt_internal::CloseAndUnregisterFds(closed);
  ReapChildren();
}

Status TcpTransport::Send(uint32_t from, uint32_t to, uint32_t tag,
                          std::vector<uint8_t> payload) {
  if (from >= size() || to >= size()) {
    return Status::InvalidArgument("rank out of range");
  }
  if (payload.size() > kMaxFramePayloadBytes) {
    return Status::InvalidArgument("payload exceeds the frame bound");
  }
  if (broken_.load(std::memory_order_acquire)) {
    return Status::Unavailable("tcp transport endpoint died");
  }
  if (closed()) return Status::Cancelled("transport closed");

  uint8_t header[kFrameHeaderBytes];
  EncodeFrameHeader(
      FrameHeader{from, to, tag, static_cast<uint32_t>(payload.size())},
      header);
  Link& link = *links_[from];
  {
    std::lock_guard<std::mutex> lock(link.mu);
    if (link.fd < 0 || link.shut) return Status::Cancelled("transport closed");
    // Count the frame as sent BEFORE it hits the wire (same invariant as
    // the socket backend): Flush must never observe delivered >= sent
    // while a Send that already returned is still in flight. A failed
    // write leaves sent permanently ahead, which broken_ short-circuits.
    // Worker-protocol frames are excluded: they terminate inside an
    // endpoint's worker host and can never balance the barrier.
    if (!IsWorkerTag(tag)) {
      frames_sent_.fetch_add(1, std::memory_order_acq_rel);
    }
    struct iovec iov[2];
    iov[0].iov_base = header;
    iov[0].iov_len = sizeof(header);
    iov[1].iov_base = payload.data();
    iov[1].iov_len = payload.size();
    if (!net::WritevFullFd(link.fd, iov, payload.empty() ? 1 : 2)) {
      broken_.store(true, std::memory_order_release);
      {
        std::lock_guard<std::mutex> flush_lock(flush_mu_);
      }
      flush_cv_.notify_all();
      return Status::Unavailable("tcp transport endpoint died mid-send");
    }
  }
  CountSendTagged(tag, payload.size());
  buffer_pool().Release(std::move(payload));
  return Status::OK();
}

void TcpTransport::ReceiverLoop(uint32_t rank) {
  // The fd is stable for the thread's whole life: Close() only shuts the
  // write side; the destructor close()s after joining us.
  const int fd = links_[rank]->fd;
  FrameDecoder decoder(&buffer_pool());
  std::vector<uint8_t> chunk(kRelayChunkBytes);
  bool clean = true;
  for (;;) {
    ssize_t k = read(fd, chunk.data(), chunk.size());
    if (k == 0) {
      // EOF is clean only after Close(): an endpoint never closes its
      // link while the world is live, so a premature EOF — even at a
      // frame boundary — means the endpoint process died.
      clean = closed() && decoder.Finish().ok();
      break;
    }
    if (k < 0) {
      if (errno == EINTR) continue;
      clean = false;
      break;
    }
    if (!decoder.Feed(chunk.data(), static_cast<size_t>(k)).ok()) {
      clean = false;
      break;
    }
    bool bad = false;
    while (auto msg = decoder.Next()) {
      if (msg->to != rank) {
        bad = true;
        break;
      }
      const uint32_t tag = msg->tag;
      Deliver(std::move(*msg));
      if (!IsWorkerTag(tag)) {
        // Worker-origin frames (acks, partials, owner-bound updates)
        // never entered the sent side of the Flush barrier; keep the
        // delivered side symmetric.
        {
          std::lock_guard<std::mutex> lock(flush_mu_);
          frames_delivered_.fetch_add(1, std::memory_order_acq_rel);
        }
        flush_cv_.notify_all();
      }
    }
    if (bad) {
      clean = false;
      break;
    }
  }
  if (!clean) MarkBroken("tcp endpoint died");
  {
    std::lock_guard<std::mutex> lock(flush_mu_);
  }
  flush_cv_.notify_all();
}

void TcpTransport::MarkBroken(const char*) {
  broken_.store(true, std::memory_order_release);
  MarkClosed();  // a broken substrate must not leave Recv blocked
}

Status TcpTransport::Flush() {
  std::unique_lock<std::mutex> lock(flush_mu_);
  flush_cv_.wait(lock, [this] {
    return broken_.load(std::memory_order_acquire) || closed() ||
           frames_delivered_.load(std::memory_order_acquire) >=
               frames_sent_.load(std::memory_order_acquire);
  });
  if (broken_.load(std::memory_order_acquire)) {
    return Status::Unavailable("tcp transport endpoint died in flight");
  }
  if (closed()) return Status::Cancelled("transport closed");
  return Status::OK();
}

void TcpTransport::Close() {
  std::call_once(close_once_, [this] {
    MarkClosed();
    // Shut only the write sides: endpoints see link EOF, drain the mesh,
    // and relay every in-flight frame up before closing for real. The
    // receiver threads keep the read sides until the destructor.
    for (auto& link : links_) {
      std::lock_guard<std::mutex> lock(link->mu);
      if (link->fd >= 0 && !link->shut) {
        shutdown(link->fd, SHUT_WR);
        link->shut = true;
      }
    }
    {
      std::lock_guard<std::mutex> lock(flush_mu_);
    }
    flush_cv_.notify_all();
  });
}

void TcpTransport::ReapChildren() {
  for (pid_t pid : children_) {
    waitpid(pid, nullptr, 0);
  }
  children_.clear();
}

Status TcpTransport::Recover() {
  if (cluster_) {
    // Remote endpoints are launched out-of-band (RunClusterEndpoint on
    // their machines); this process cannot respawn them.
    return Status::Unavailable(
        "tcp cluster worlds cannot be recovered in place: remote endpoints "
        "must be relaunched externally");
  }
  // Kill the whole local world: every endpoint is our fork, and their
  // deaths RST the links, unblocking any receiver still parked in read.
  for (pid_t pid : children_) kill(pid, SIGKILL);
  // Deliberately NOT Close(): close_once_ must stay armed so the eventual
  // final Close still shuts down the world Init() rebuilds below.
  MarkClosed();
  {
    std::lock_guard<std::mutex> lock(flush_mu_);
  }
  flush_cv_.notify_all();
  for (std::thread& t : receivers_) {
    if (t.joinable()) t.join();
  }
  receivers_.clear();
  std::vector<int> closed_fds;
  for (auto& link : links_) {
    std::lock_guard<std::mutex> lock(link->mu);
    if (link->fd >= 0) {
      closed_fds.push_back(link->fd);
      link->fd = -1;
    }
    link->shut = false;
  }
  rt_internal::CloseAndUnregisterFds(closed_fds);
  ReapChildren();
  // Back to just-constructed state, then bring up the fresh world.
  frames_sent_.store(0, std::memory_order_release);
  frames_delivered_.store(0, std::memory_order_release);
  broken_.store(false, std::memory_order_release);
  ResetForRecovery();  // empties mailboxes, clears the closed flag
  return Init(options_);
}

Status RunTcpEndpointProcess(uint32_t rank, uint32_t world_size,
                             const HostPort& coordinator,
                             uint16_t mesh_bind_port, int timeout_ms,
                             const std::string& cluster_token) {
  if (world_size == 0 || rank >= world_size) {
    return Status::InvalidArgument("endpoint rank " + std::to_string(rank) +
                                   " outside world of " +
                                   std::to_string(world_size));
  }
  EndpointPlan plan;
  plan.rank = rank;
  plan.n = world_size;
  plan.deadline_ms = MonotonicMs() + (timeout_ms > 0 ? timeout_ms : 30000);
  plan.token_digest = TokenDigest(cluster_token);
  GRAPE_RETURN_NOT_OK(
      ResolveIPv4(coordinator.host, coordinator.port, &plan.coord_addr));
  std::memset(&plan.mesh_bind, 0, sizeof(plan.mesh_bind));
  plan.mesh_bind.sin_family = AF_INET;
  plan.mesh_bind.sin_port = htons(mesh_bind_port);
  plan.mesh_bind.sin_addr.s_addr = htonl(INADDR_ANY);
  SizePlan(plan);
  if (EndpointRun(plan) != 0) {
    return Status::IOError(
        "tcp endpoint for rank " + std::to_string(rank) +
        " failed (coordinator unreachable, mesh peer died, or protocol "
        "error)");
  }
  return Status::OK();
}

}  // namespace grape
