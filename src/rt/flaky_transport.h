#ifndef GRAPE_RT_FLAKY_TRANSPORT_H_
#define GRAPE_RT_FLAKY_TRANSPORT_H_

#include <mutex>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "rt/transport.h"
#include "util/random.h"

namespace grape {

/// Fault plan for FlakyTransport. Rates are per-message probabilities
/// drawn from a seeded Rng, so a given (plan, seed, workload) misbehaves
/// reproducibly.
struct FlakyOptions {
  double drop_rate = 0.0;   // message vanishes; the inner transport and
                            // its stats never see it
  double dup_rate = 0.0;    // message is delivered twice
  double delay_rate = 0.0;  // message is held back one Flush epoch
  uint64_t seed = 42;
  /// When non-zero, Send starts failing with Unavailable after this many
  /// accepted sends — the hard-fault knob for error-propagation tests.
  uint64_t fail_send_after = 0;
  /// When non-zero, Flush starts failing with Unavailable after this many
  /// successful barriers — models an endpoint dying between supersteps
  /// (what a killed tcp/socket endpoint process looks like from the
  /// engine), so the barrier propagation path gets its own coverage.
  uint64_t fail_flush_after = 0;
  /// Deterministic crash knob (ISSUE 7): after this many accepted sends
  /// the whole world "dies" — Send and Flush fail with Unavailable and
  /// healthy() goes false — until Recover() heals it. One-shot: recovery
  /// disarms the knob, so the retried run proceeds cleanly. This is the
  /// SIGKILL-without-the-timing-race primitive the recovery tests build
  /// their superstep-k crash matrix on.
  uint64_t kill_after_frames = 0;
  /// One-shot partition: after `partition_after_frames` accepted sends,
  /// the next `partition_heal_frames` send attempts fail with Unavailable
  /// (the frames are lost, as on a real partition), then the link heals
  /// by itself — no Recover() needed. healthy() stays true throughout:
  /// a partition is not a death.
  uint64_t partition_after_frames = 0;
  uint64_t partition_heal_frames = 0;
};

/// Fault-injection decorator over any Transport: drops, duplicates, and
/// delays messages by seed, and can turn Send into a hard failure. Used by
/// tests/transport_fault_test.cc to prove the engine surfaces Status
/// errors (through DispatchSends/CoordinatorRoute) instead of hanging on a
/// misbehaving substrate.
///
/// Delay semantics: a delayed message is withheld from the inner transport
/// until the *next* Flush call (one barrier epoch late — exactly the
/// reordering a congested network produces between supersteps). Note that
/// this deliberately violates the Transport Flush contract, so a delayed
/// message can still be in flight when the engine's fixpoint check fires;
/// tests assert liveness and monotone degradation, not exact results.
/// Messages still held at Close are dropped.
class FlakyTransport final : public Transport {
 public:
  FlakyTransport(Transport* inner, FlakyOptions options)
      : inner_(inner), options_(options), rng_(options.seed) {}

  uint32_t size() const override { return inner_->size(); }
  std::string name() const override { return "flaky+" + inner_->name(); }

  Status Send(uint32_t from, uint32_t to, uint32_t tag,
              std::vector<uint8_t> payload) override {
    std::lock_guard<std::mutex> lock(mu_);
    if (killed_) {
      return Status::Unavailable("injected world death (kill_after_frames)");
    }
    if (options_.fail_send_after != 0 &&
        accepted_ >= options_.fail_send_after) {
      return Status::Unavailable("injected send failure after " +
                                 std::to_string(accepted_) + " sends");
    }
    if (options_.kill_after_frames != 0 &&
        accepted_ >= options_.kill_after_frames) {
      killed_ = true;
      return Status::Unavailable("injected world death after " +
                                 std::to_string(accepted_) + " frames");
    }
    if (options_.partition_after_frames != 0 &&
        accepted_ >= options_.partition_after_frames &&
        partition_lost_ < options_.partition_heal_frames) {
      ++partition_lost_;
      ++accepted_;
      return Status::Unavailable("injected partition (frame " +
                                 std::to_string(partition_lost_) + "/" +
                                 std::to_string(
                                     options_.partition_heal_frames) +
                                 " lost before heal)");
    }
    ++accepted_;
    const double roll = rng_.NextDouble();
    if (roll < options_.drop_rate) {
      ++dropped_;
      return Status::OK();
    }
    if (roll < options_.drop_rate + options_.dup_rate) {
      ++duplicated_;
      std::vector<uint8_t> copy = payload;
      GRAPE_RETURN_NOT_OK(inner_->Send(from, to, tag, std::move(copy)));
      return inner_->Send(from, to, tag, std::move(payload));
    }
    if (roll < options_.drop_rate + options_.dup_rate + options_.delay_rate) {
      ++delayed_;
      pending_.push_back(RtMessage{from, to, tag, std::move(payload)});
      return Status::OK();
    }
    return inner_->Send(from, to, tag, std::move(payload));
  }

  /// Releases messages delayed before the previous Flush, then holds this
  /// epoch's batch for the next one.
  Status Flush() override {
    std::vector<RtMessage> due;
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (killed_) {
        return Status::Unavailable(
            "injected world death (kill_after_frames)");
      }
      if (options_.fail_flush_after != 0 &&
          flushed_ >= options_.fail_flush_after) {
        return Status::Unavailable("injected flush failure after " +
                                   std::to_string(flushed_) + " barriers");
      }
      ++flushed_;
      due.swap(held_);
      held_.swap(pending_);
    }
    for (RtMessage& msg : due) {
      GRAPE_RETURN_NOT_OK(
          inner_->Send(msg.from, msg.to, msg.tag, std::move(msg.payload)));
    }
    return inner_->Flush();
  }

  std::optional<RtMessage> TryRecv(uint32_t rank) override {
    return inner_->TryRecv(rank);
  }
  std::optional<RtMessage> TryRecv(uint32_t rank, uint32_t tag) override {
    return inner_->TryRecv(rank, tag);
  }
  Result<RtMessage> Recv(uint32_t rank) override { return inner_->Recv(rank); }
  std::vector<RtMessage> DrainAll(uint32_t rank) override {
    return inner_->DrainAll(rank);
  }
  size_t PendingCount(uint32_t rank) const override {
    return inner_->PendingCount(rank);
  }
  void Close() override { inner_->Close(); }
  bool healthy() const override {
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (killed_) return false;
    }
    return inner_->healthy();
  }
  bool supports_recovery() const override {
    return inner_->supports_recovery();
  }
  /// Heals an injected death (disarming the one-shot kill knob) and
  /// recovers the inner world. Held/delayed frames of the failed run are
  /// dropped — exactly what a rebuilt real transport does.
  Status Recover() override {
    GRAPE_RETURN_NOT_OK(inner_->Recover());
    std::lock_guard<std::mutex> lock(mu_);
    killed_ = false;
    options_.kill_after_frames = 0;
    pending_.clear();
    held_.clear();
    return Status::OK();
  }
  bool has_remote_endpoints() const override {
    return inner_->has_remote_endpoints();
  }
  std::vector<int64_t> endpoint_process_ids() const override {
    return inner_->endpoint_process_ids();
  }
  CommStats stats() const override { return inner_->stats(); }
  void ResetStats() override { inner_->ResetStats(); }
  BufferPool& buffer_pool() override { return inner_->buffer_pool(); }

  uint64_t dropped() const { return dropped_; }
  uint64_t duplicated() const { return duplicated_; }
  uint64_t delayed() const { return delayed_; }
  /// Sends accepted so far — what crash tests calibrate kill_after_frames
  /// against (a clean run's total gives the frame budget to kill inside).
  uint64_t accepted() const {
    std::lock_guard<std::mutex> lock(mu_);
    return accepted_;
  }

 private:
  Transport* inner_;  // not owned; must outlive this decorator
  FlakyOptions options_;
  mutable std::mutex mu_;
  Rng rng_;
  bool killed_ = false;
  uint64_t partition_lost_ = 0;
  uint64_t accepted_ = 0;
  uint64_t flushed_ = 0;
  uint64_t dropped_ = 0;
  uint64_t duplicated_ = 0;
  uint64_t delayed_ = 0;
  std::vector<RtMessage> pending_;  // delayed in the current epoch
  std::vector<RtMessage> held_;     // due at the next Flush
};

}  // namespace grape

#endif  // GRAPE_RT_FLAKY_TRANSPORT_H_
