#ifndef GRAPE_RT_WORKER_PROTOCOL_H_
#define GRAPE_RT_WORKER_PROTOCOL_H_

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "graph/io.h"
#include "graph/types.h"
#include "util/serializer.h"
#include "util/status.h"

namespace grape {

// ---------------------------------------------------------------------------
// The remote-worker protocol: the control plane that moves PEval/IncEval
// execution out of the rank-0 engine process and into the rank's endpoint
// process (socket/tcp backends; the inproc backend hosts the same protocol
// on in-process worker threads). All frames are ordinary transport
// messages — the 16-byte FrameHeader envelope of core/codec.h — so the
// protocol rides every conformant backend unchanged.
//
// Roles and frame flow, for a world of n workers + coordinator rank 0:
//
//   engine (rank 0)                      worker host (rank r = fragment r-1)
//   ───────────────                      ──────────────────────────────────
//   kTagWkLoad {app, flags, query,
//               fragment+routing plan}─▶ instantiate app by name, decode
//                                        fragment, init ParamStore
//                        ◀─ kTagWkAck (phase=load)
//   kTagWkRunPEval ────────────────────▶ PEval + flush
//                        ◀─ kTagWkData (param updates for rank 0)
//                        ◀─ kTagWkDirect (owner→mirror refreshes, to peers)
//                        ◀─ kTagWkAck (phase=peval: dirty/global/sent...)
//   kTagWkCheckTerm {round, global} ───▶ apps_[0]'s ShouldTerminate hook
//                        ◀─ kTagWkVote
//   kTagWkApply {consolidated batch} ──▶ buffered until the matching run
//   kTagWkRunIncEval {round, expect} ──▶ apply buffered batches, IncEval,
//                                        flush (as above)
//                        ◀─ kTagWkData / kTagWkDirect / kTagWkAck
//   kTagWkGetPartial ──────────────────▶ GetPartial
//                        ◀─ kTagWkPartial {encoded partial}
//   kTagWkShutdown ────────────────────▶ worker host retires
//
// Ordering is carried entirely by the transport's FIFO-per-channel
// guarantee: a worker's data frames precede its ack on the (r, 0)
// channel, and the coordinator's apply batch precedes the matching
// RunIncEval on the (0, r) channel. Cross-sender races (a fast worker's
// round-k+1 mirror refresh overtaking a slow worker's round-k one) are
// closed by explicit per-sender expectations inside kTagWkRunIncEval.
//
// Accounting: the golden matrices require remote compute to report
// bit-identical CommStats to local compute, so control frames are
// invisible to the stats — every tag below except kTagWkApply is skipped
// by CountSend — and worker-originated data frames (kTagWkData /
// kTagWkDirect, which never pass through a rank-0 Send on multi-process
// backends) are counted by the engine from the per-phase ack's
// sent_messages/sent_bytes instead. kTagWkApply is the one remote frame
// that replaces a counted local frame (the coordinator's consolidated
// batch), so it stays counted at Send like its local twin.
// ---------------------------------------------------------------------------

enum WorkerProtocolTag : uint32_t {
  // engine -> worker (consumed inside the endpoint, never relayed up).
  kTagWkLoad = 0x101,
  kTagWkRunPEval = 0x102,
  kTagWkRunIncEval = 0x103,
  kTagWkGetPartial = 0x104,
  kTagWkShutdown = 0x105,
  kTagWkCheckTerm = 0x106,
  // engine -> worker, the coordinator's consolidated parameter batch.
  // Stats-counted: it replaces the kTagParamUpdate frame of local mode.
  kTagWkApply = 0x107,
  // worker -> engine / worker -> worker.
  kTagWkAck = 0x108,      // phase completion + per-phase counters
  kTagWkData = 0x109,     // owner-bound updates for the coordinator
  kTagWkDirect = 0x10a,   // owner-to-mirror refresh, worker to worker
  kTagWkVote = 0x10b,     // ShouldTerminate verdict
  kTagWkPartial = 0x10c,  // encoded partial answer
  kTagWkError = 0x10d,    // worker-side failure, payload = message

  // Distributed graph build (rt/distributed_load.h): rank 0 orchestrates,
  // each worker reads its byte-range shard of the edge-list file, streams
  // every edge to the owners of its endpoints, assembles its own fragment,
  // and exchanges mirror placements peer-to-peer. Rank 0 only ever sees
  // shard metadata and shape acks — never edges or fragments.
  kTagWkShard = 0x10e,     // 0 -> r: build session start + shard descriptor
  kTagWkShardAck = 0x10f,  // r -> 0: shard scanned (max gid, edge count)
  kTagWkBuild = 0x110,     // 0 -> r: global vertex count; begin exchange
  kTagWkExchange = 0x111,  // r -> s: owned-edge records (+ final marker)
  kTagWkMirror = 0x112,    // r -> s: mirror placement answers, one frame
  kTagWkBuildAck = 0x113,  // r -> 0: fragment resident (token + shape)

  // Fault tolerance (rt/checkpoint.h, rt/liveness.h): all control frames,
  // invisible to CommStats like the rest of the protocol, and only ever
  // emitted when a CheckpointPolicy is enabled — with the policy off the
  // wire traffic is byte-identical to a build without these tags.
  kTagWkCheckpoint = 0x114,     // 0 -> r: snapshot order at a barrier
  kTagWkCheckpointAck = 0x115,  // r -> 0: encoded image (or disk receipt)
  kTagWkRestore = 0x116,        // 0 -> r: rebuild state from an image
  kTagWkPing = 0x117,           // 0 -> r: liveness probe
  kTagWkPong = 0x118,           // r -> 0: probe reply (payload echoed)

  // Query sessions (core/engine.h SessionRun, the serving layer's hot
  // path): a loaded worker is handed the NEXT query without re-shipping
  // the app name or fragment — the server re-seeds its parameter store
  // from the already-resident fragment. Acked with phase=load, exactly
  // like the full load it replaces. Control frame, invisible to
  // CommStats like every other tag here.
  kTagWkQuery = 0x119,  // 0 -> r: payload = encoded query only

  // Streaming mutations (the incremental serving path): the engine ships
  // an edge-mutation batch into a live session; each worker rebuilds its
  // fragment in place from its mutated incident edge view, re-runs the
  // mirror-placement exchange peer-to-peer (same halves as the build
  // protocol), and pulls warm parameter values for its new outer set from
  // the owners — so a following kTagWkIncStart runs IncEval against
  // exactly the state a local warm start would hold. All control frames,
  // invisible to CommStats.
  kTagWkMutate = 0x11a,     // 0 -> r: encoded MutationBatch
  kTagWkMutMirror = 0x11b,  // r -> s: rebuilt mirror placements (one each)
  kTagWkMutVals = 0x11c,    // s -> r: warm values for r's outer copies
  kTagWkMutateAck = 0x11d,  // r -> 0: WkBuildAck (new shape under token)
  // 0 -> r: warm-start IncEval round 1 seeded with the batch's touched
  // vertices (payload: pod vector of gids). Re-answers the session's last
  // query — it deliberately does NOT reset the parameter store the way
  // kTagWkQuery does.
  kTagWkIncStart = 0x11e,

  kTagWkEnd_,  // exclusive upper bound
};

/// True for every frame of the worker protocol. Endpoint processes divert
/// these to their in-process worker host once one is active; transports
/// exclude them from the Flush sent/delivered accounting (they terminate
/// inside an endpoint or originate there, so the barrier would otherwise
/// count frames that can never balance).
inline bool IsWorkerTag(uint32_t tag) {
  return tag >= kTagWkLoad && tag < kTagWkEnd_;
}

/// Worker-protocol frames the CommStats counters must still see: only the
/// coordinator's consolidated apply batch, whose local-mode twin is a
/// counted Send. Everything else in the protocol is either control (no
/// local-mode equivalent) or counted via ack-reported totals.
inline bool IsStatsCountedWorkerTag(uint32_t tag) {
  return tag == kTagWkApply;
}

/// Phase discriminator inside kTagWkAck.
inline constexpr uint8_t kWkPhaseLoad = 1;
inline constexpr uint8_t kWkPhasePEval = 2;
inline constexpr uint8_t kWkPhaseIncEval = 3;
/// Ack for kTagWkRestore: the worker rebuilt query + fragment + core state
/// from a checkpoint image and re-buffered the image's pending frames.
inline constexpr uint8_t kWkPhaseRestore = 4;
/// Ack for kTagWkMutate (travels as a WkBuildAck, not a WorkerAck — the
/// coordinator needs the rebuilt shape, not phase counters).
inline constexpr uint8_t kWkPhaseMutate = 5;

/// Flag bits inside kTagWkLoad.
inline constexpr uint8_t kWkLoadCheckMonotonicity = 1u << 0;
/// The load frame carries a resident-fragment token (u64) instead of a
/// serialized fragment: the worker attaches to the fragment a distributed
/// build (kTagWkShard..kTagWkBuildAck) left in its process-local store.
inline constexpr uint8_t kWkLoadUseResident = 1u << 1;
/// A u32 compute-thread count follows the flags byte: the worker runs
/// frontier-parallel phases with that many lanes (core/parallel.h).
/// Gated on the flag so sequential runs' frames stay byte-identical to
/// what they always were. Also used inside WkRestoreCommand::flags.
inline constexpr uint8_t kWkLoadComputeThreads = 1u << 2;
/// The load frame carries BOTH a token (u64) and a serialized fragment:
/// the worker decodes the fragment, deposits it in its process-local
/// ResidentFragmentStore under the token, and loads from the deposited
/// copy. This is how a coordinator-loaded serving session makes its
/// fragments resident, so every later session on the same world (another
/// query class, a post-switch reload) attaches by token instead of
/// re-shipping the graph. Mutually exclusive with kWkLoadUseResident.
inline constexpr uint8_t kWkLoadStashResident = 1u << 3;

/// Vertex-ownership policies a distributed build can apply locally.
inline constexpr uint8_t kWkPartitionHash = 0;      // SplitMix64(gid) % n
inline constexpr uint8_t kWkPartitionExplicit = 1;  // shipped assignment

/// One phase-completion report. Every counter the local engine derives by
/// looking at its in-process worker state travels here instead: dirty
/// parameters at the last flush, the app's GlobalValue, |M_i| after
/// message application, and the exact message/byte totals of the flush
/// (payload + the 16-byte envelope per frame — the same formula CommStats
/// charges), so the engine reproduces local-mode metrics bit for bit.
struct WorkerAck {
  uint8_t phase = 0;
  uint32_t round = 0;
  uint64_t dirty = 0;             // changed+remote parameters at the flush
  uint64_t direct_updates = 0;    // records shipped worker-to-worker
  uint64_t updated_count = 0;     // |M_i| handed to IncEval this round
  uint64_t mono_violations = 0;   // monotonicity-check hits so far
  uint64_t sent_messages = 0;     // data frames emitted by this flush
  uint64_t sent_bytes = 0;        // payload + 16-byte envelope each
  double global = 0.0;            // the app's GlobalValue() after the phase
  uint64_t worker_pid = 0;        // getpid() of the executing process
  /// Direct (worker-to-worker) frames emitted this flush, per destination
  /// rank — the engine aggregates these into the next round's per-sender
  /// delivery expectations.
  std::vector<std::pair<uint32_t, uint32_t>> direct_frames;

  void EncodeTo(Encoder& enc) const {
    enc.WriteU8(phase);
    enc.WriteU32(round);
    enc.WriteU64(dirty);
    enc.WriteU64(direct_updates);
    enc.WriteU64(updated_count);
    enc.WriteU64(mono_violations);
    enc.WriteU64(sent_messages);
    enc.WriteU64(sent_bytes);
    enc.WriteDouble(global);
    enc.WriteU64(worker_pid);
    enc.WriteVarint(direct_frames.size());
    for (const auto& [rank, frames] : direct_frames) {
      enc.WriteU32(rank);
      enc.WriteU32(frames);
    }
  }

  static Status DecodeFrom(Decoder& dec, WorkerAck* out) {
    GRAPE_RETURN_NOT_OK(dec.ReadU8(&out->phase));
    GRAPE_RETURN_NOT_OK(dec.ReadU32(&out->round));
    GRAPE_RETURN_NOT_OK(dec.ReadU64(&out->dirty));
    GRAPE_RETURN_NOT_OK(dec.ReadU64(&out->direct_updates));
    GRAPE_RETURN_NOT_OK(dec.ReadU64(&out->updated_count));
    GRAPE_RETURN_NOT_OK(dec.ReadU64(&out->mono_violations));
    GRAPE_RETURN_NOT_OK(dec.ReadU64(&out->sent_messages));
    GRAPE_RETURN_NOT_OK(dec.ReadU64(&out->sent_bytes));
    GRAPE_RETURN_NOT_OK(dec.ReadDouble(&out->global));
    GRAPE_RETURN_NOT_OK(dec.ReadU64(&out->worker_pid));
    uint64_t n = 0;
    GRAPE_RETURN_NOT_OK(dec.ReadVarint(&n));
    if (n > dec.Remaining() / 8) {
      return Status::Corruption("worker ack direct-frame list overruns");
    }
    out->direct_frames.clear();
    out->direct_frames.reserve(n);
    for (uint64_t k = 0; k < n; ++k) {
      uint32_t rank = 0, frames = 0;
      GRAPE_RETURN_NOT_OK(dec.ReadU32(&rank));
      GRAPE_RETURN_NOT_OK(dec.ReadU32(&frames));
      out->direct_frames.emplace_back(rank, frames);
    }
    return Status::OK();
  }
};

/// kTagWkShard payload: everything a worker needs to read its slice of the
/// input and know the ownership policy. For the explicit policy the full
/// assignment rides along (total vertices are implied by its size); for
/// hash the worker derives ownership from the vertex count announced later
/// in kTagWkBuild.
struct WkShardCommand {
  uint64_t token = 0;
  std::string path;
  uint64_t offset = 0;
  uint64_t length = 0;
  EdgeListFormat format;
  uint32_t num_fragments = 0;
  uint8_t policy = kWkPartitionHash;
  std::vector<FragmentId> assignment;  // kWkPartitionExplicit only

  void EncodeTo(Encoder& enc) const {
    enc.WriteU64(token);
    enc.WriteString(path);
    enc.WriteU64(offset);
    enc.WriteU64(length);
    enc.WriteBool(format.directed);
    enc.WriteBool(format.has_weight);
    enc.WriteBool(format.has_label);
    enc.WriteU8(static_cast<uint8_t>(format.comment_char));
    enc.WriteU32(num_fragments);
    enc.WriteU8(policy);
    if (policy == kWkPartitionExplicit) enc.WritePodVector(assignment);
  }

  static Status DecodeFrom(Decoder& dec, WkShardCommand* out) {
    GRAPE_RETURN_NOT_OK(dec.ReadU64(&out->token));
    GRAPE_RETURN_NOT_OK(dec.ReadString(&out->path));
    GRAPE_RETURN_NOT_OK(dec.ReadU64(&out->offset));
    GRAPE_RETURN_NOT_OK(dec.ReadU64(&out->length));
    GRAPE_RETURN_NOT_OK(dec.ReadBool(&out->format.directed));
    GRAPE_RETURN_NOT_OK(dec.ReadBool(&out->format.has_weight));
    GRAPE_RETURN_NOT_OK(dec.ReadBool(&out->format.has_label));
    uint8_t comment = 0;
    GRAPE_RETURN_NOT_OK(dec.ReadU8(&comment));
    out->format.comment_char = static_cast<char>(comment);
    GRAPE_RETURN_NOT_OK(dec.ReadU32(&out->num_fragments));
    GRAPE_RETURN_NOT_OK(dec.ReadU8(&out->policy));
    out->assignment.clear();
    if (out->policy == kWkPartitionExplicit) {
      GRAPE_RETURN_NOT_OK(dec.ReadPodVector(&out->assignment));
    }
    return Status::OK();
  }
};

/// kTagWkShardAck payload: the shard scan summary rank 0 folds into the
/// global vertex count. No edge ever travels to rank 0.
struct WkShardAck {
  uint64_t token = 0;
  VertexId max_vertex_plus1 = 0;
  uint64_t num_edges = 0;

  void EncodeTo(Encoder& enc) const {
    enc.WriteU64(token);
    enc.WriteU32(max_vertex_plus1);
    enc.WriteU64(num_edges);
  }

  static Status DecodeFrom(Decoder& dec, WkShardAck* out) {
    GRAPE_RETURN_NOT_OK(dec.ReadU64(&out->token));
    GRAPE_RETURN_NOT_OK(dec.ReadU32(&out->max_vertex_plus1));
    return dec.ReadU64(&out->num_edges);
  }
};

/// kTagWkBuildAck payload: the assembled fragment's shape, so the engine
/// can size its routing batches without ever holding the fragment.
struct WkBuildAck {
  uint64_t token = 0;
  LocalId num_inner = 0;
  LocalId num_local = 0;
  uint64_t num_arcs = 0;

  void EncodeTo(Encoder& enc) const {
    enc.WriteU64(token);
    enc.WriteU32(num_inner);
    enc.WriteU32(num_local);
    enc.WriteU64(num_arcs);
  }

  static Status DecodeFrom(Decoder& dec, WkBuildAck* out) {
    GRAPE_RETURN_NOT_OK(dec.ReadU64(&out->token));
    GRAPE_RETURN_NOT_OK(dec.ReadU32(&out->num_inner));
    GRAPE_RETURN_NOT_OK(dec.ReadU32(&out->num_local));
    return dec.ReadU64(&out->num_arcs);
  }
};

/// Encodes a kTagWkExchange chunk: shard edges as parallel pod spans (the
/// ShardEdge struct has padding, so it never ships raw). `final` marks the
/// sender's last chunk to this destination; every worker sends at least one
/// final chunk to every peer, which is the receiver's delivery barrier.
inline void EncodeExchangeChunk(Encoder& enc, uint64_t token, bool final,
                                const ShardEdge* edges, size_t n) {
  enc.WriteU64(token);
  enc.WriteBool(final);
  enc.WriteVarint(n);
  for (size_t i = 0; i < n; ++i) enc.WriteU64(edges[i].key);
  for (size_t i = 0; i < n; ++i) enc.WriteU32(edges[i].edge.src);
  for (size_t i = 0; i < n; ++i) enc.WriteU32(edges[i].edge.dst);
  for (size_t i = 0; i < n; ++i) enc.WriteDouble(edges[i].edge.weight);
  for (size_t i = 0; i < n; ++i) enc.WriteU32(edges[i].edge.label);
}

/// Decodes a kTagWkExchange chunk, appending to `out`.
inline Status DecodeExchangeChunk(Decoder& dec, uint64_t* token, bool* final,
                                  std::vector<ShardEdge>* out) {
  GRAPE_RETURN_NOT_OK(dec.ReadU64(token));
  GRAPE_RETURN_NOT_OK(dec.ReadBool(final));
  uint64_t n = 0;
  GRAPE_RETURN_NOT_OK(dec.ReadVarint(&n));
  constexpr size_t kWireBytes = sizeof(uint64_t) + 2 * sizeof(VertexId) +
                                sizeof(EdgeWeight) + sizeof(Label);
  if (n > dec.Remaining() / kWireBytes) {
    return Status::Corruption("exchange chunk overruns its payload");
  }
  const size_t base = out->size();
  out->resize(base + n);
  for (size_t i = 0; i < n; ++i) {
    GRAPE_RETURN_NOT_OK(dec.ReadU64(&(*out)[base + i].key));
  }
  for (size_t i = 0; i < n; ++i) {
    GRAPE_RETURN_NOT_OK(dec.ReadU32(&(*out)[base + i].edge.src));
  }
  for (size_t i = 0; i < n; ++i) {
    GRAPE_RETURN_NOT_OK(dec.ReadU32(&(*out)[base + i].edge.dst));
  }
  for (size_t i = 0; i < n; ++i) {
    GRAPE_RETURN_NOT_OK(dec.ReadDouble(&(*out)[base + i].edge.weight));
  }
  for (size_t i = 0; i < n; ++i) {
    GRAPE_RETURN_NOT_OK(dec.ReadU32(&(*out)[base + i].edge.label));
  }
  return Status::OK();
}

/// The engine's per-round IncEval order. `apply_frames` tells the worker
/// how many coordinator batches (kTagWkApply) belong to this round, and
/// `expect_direct` how many kTagWkDirect frames to await from each peer
/// rank before applying and evaluating — the explicit BSP delivery
/// barrier that replaces local mode's transport Flush.
struct IncEvalCommand {
  uint32_t round = 0;
  bool incremental = true;
  uint32_t apply_frames = 0;
  std::vector<std::pair<uint32_t, uint32_t>> expect_direct;  // (from, frames)

  void EncodeTo(Encoder& enc) const {
    enc.WriteU32(round);
    enc.WriteBool(incremental);
    enc.WriteU32(apply_frames);
    enc.WriteVarint(expect_direct.size());
    for (const auto& [rank, frames] : expect_direct) {
      enc.WriteU32(rank);
      enc.WriteU32(frames);
    }
  }

  static Status DecodeFrom(Decoder& dec, IncEvalCommand* out) {
    GRAPE_RETURN_NOT_OK(dec.ReadU32(&out->round));
    GRAPE_RETURN_NOT_OK(dec.ReadBool(&out->incremental));
    GRAPE_RETURN_NOT_OK(dec.ReadU32(&out->apply_frames));
    uint64_t n = 0;
    GRAPE_RETURN_NOT_OK(dec.ReadVarint(&n));
    if (n > dec.Remaining() / 8) {
      return Status::Corruption("inceval command expectation list overruns");
    }
    out->expect_direct.clear();
    out->expect_direct.reserve(n);
    for (uint64_t k = 0; k < n; ++k) {
      uint32_t rank = 0, frames = 0;
      GRAPE_RETURN_NOT_OK(dec.ReadU32(&rank));
      GRAPE_RETURN_NOT_OK(dec.ReadU32(&frames));
      out->expect_direct.emplace_back(rank, frames);
    }
    return Status::OK();
  }
};

/// kTagWkCheckpoint payload: the engine's snapshot order at a superstep
/// barrier. Like IncEvalCommand, `expect_direct` is the per-sender delivery
/// barrier — the worker must hold the next round's direct frames in its
/// buffer *before* snapshotting (without consuming them), so the image
/// captures the exact message frontier a recovered run will replay.
struct WkCheckpointCommand {
  uint32_t round = 0;
  /// Empty: ship the encoded image back inside the ack (in-memory store at
  /// rank 0). Non-empty: write it to `<dir>/grape_ckpt_r<rank>.bin` on the
  /// worker's local disk and ack with a byte-count receipt only.
  std::string dir;
  std::vector<std::pair<uint32_t, uint32_t>> expect_direct;  // (from, frames)

  void EncodeTo(Encoder& enc) const {
    enc.WriteU32(round);
    enc.WriteString(dir);
    enc.WriteVarint(expect_direct.size());
    for (const auto& [rank, frames] : expect_direct) {
      enc.WriteU32(rank);
      enc.WriteU32(frames);
    }
  }

  static Status DecodeFrom(Decoder& dec, WkCheckpointCommand* out) {
    GRAPE_RETURN_NOT_OK(dec.ReadU32(&out->round));
    GRAPE_RETURN_NOT_OK(dec.ReadString(&out->dir));
    uint64_t n = 0;
    GRAPE_RETURN_NOT_OK(dec.ReadVarint(&n));
    if (n > dec.Remaining() / 8) {
      return Status::Corruption("checkpoint command expectation overruns");
    }
    out->expect_direct.clear();
    out->expect_direct.reserve(n);
    for (uint64_t k = 0; k < n; ++k) {
      uint32_t rank = 0, frames = 0;
      GRAPE_RETURN_NOT_OK(dec.ReadU32(&rank));
      GRAPE_RETURN_NOT_OK(dec.ReadU32(&frames));
      out->expect_direct.emplace_back(rank, frames);
    }
    return Status::OK();
  }
};

/// kTagWkCheckpointAck payload. In-memory mode ships the encoded
/// CheckpointImage; disk mode ships an empty image and the byte count
/// written, as a durable-write receipt.
struct WkCheckpointAck {
  uint32_t round = 0;
  uint64_t bytes = 0;
  std::vector<uint8_t> image;  // encoded CheckpointImage, or empty (disk)

  void EncodeTo(Encoder& enc) const {
    enc.WriteU32(round);
    enc.WriteU64(bytes);
    enc.WriteVarint(image.size());
    enc.WritePodSpan(image.data(), image.size());
  }

  static Status DecodeFrom(Decoder& dec, WkCheckpointAck* out) {
    GRAPE_RETURN_NOT_OK(dec.ReadU32(&out->round));
    GRAPE_RETURN_NOT_OK(dec.ReadU64(&out->bytes));
    uint64_t n = 0;
    GRAPE_RETURN_NOT_OK(dec.ReadVarint(&n));
    if (n > dec.Remaining()) {
      return Status::Corruption("checkpoint ack image overruns");
    }
    out->image.resize(n);
    return dec.ReadPodSpan(out->image.data(), n);
  }
};

/// kTagWkRestore payload: everything a freshly respawned worker host needs
/// to resume mid-run. The image travels inline (in-memory store) or the
/// worker reads it from `dir` (per-worker local disk).
struct WkRestoreCommand {
  std::string app_name;
  uint8_t flags = 0;   // kWkLoadCheckMonotonicity | kWkLoadComputeThreads
  /// Frontier-parallel lane count for the restored worker; travels (gated
  /// on kWkLoadComputeThreads, like the load frame) so a respawned worker
  /// resumes with the same execution mode it crashed with.
  uint32_t compute_threads = 0;
  uint32_t round = 0;  // the barrier to restore — a torn checkpoint can
                       // leave newer images around; the coordinator's
                       // snapshot, not the newest image, picks the round
  std::string dir;     // non-empty: load image from local disk instead
  std::vector<uint8_t> image;  // encoded CheckpointImage when dir is empty

  void EncodeTo(Encoder& enc) const {
    enc.WriteString(app_name);
    enc.WriteU8(flags);
    if (flags & kWkLoadComputeThreads) enc.WriteU32(compute_threads);
    enc.WriteU32(round);
    enc.WriteString(dir);
    enc.WriteVarint(image.size());
    enc.WritePodSpan(image.data(), image.size());
  }

  static Status DecodeFrom(Decoder& dec, WkRestoreCommand* out) {
    GRAPE_RETURN_NOT_OK(dec.ReadString(&out->app_name));
    GRAPE_RETURN_NOT_OK(dec.ReadU8(&out->flags));
    if (out->flags & kWkLoadComputeThreads) {
      GRAPE_RETURN_NOT_OK(dec.ReadU32(&out->compute_threads));
    }
    GRAPE_RETURN_NOT_OK(dec.ReadU32(&out->round));
    GRAPE_RETURN_NOT_OK(dec.ReadString(&out->dir));
    uint64_t n = 0;
    GRAPE_RETURN_NOT_OK(dec.ReadVarint(&n));
    if (n > dec.Remaining()) {
      return Status::Corruption("restore command image overruns");
    }
    out->image.resize(n);
    return dec.ReadPodSpan(out->image.data(), n);
  }
};

}  // namespace grape

#endif  // GRAPE_RT_WORKER_PROTOCOL_H_
