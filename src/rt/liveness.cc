#include "rt/liveness.h"

#include <time.h>

namespace grape {

uint64_t WorkerLivenessMonitor::NowMs() {
  struct timespec ts;
  clock_gettime(CLOCK_MONOTONIC, &ts);
  return static_cast<uint64_t>(ts.tv_sec) * 1000ULL +
         static_cast<uint64_t>(ts.tv_nsec) / 1000000ULL;
}

WorkerLivenessMonitor::WorkerLivenessMonitor(uint32_t num_workers,
                                             uint64_t lease_ms) {
  Reset(num_workers, lease_ms);
}

void WorkerLivenessMonitor::Reset(uint32_t num_workers, uint64_t lease_ms) {
  lease_ms_ = lease_ms;
  const uint64_t now = NowMs();
  last_heard_.assign(num_workers, now);
  last_ping_.assign(num_workers, now);
}

void WorkerLivenessMonitor::Heard(uint32_t frag) {
  if (frag < last_heard_.size()) last_heard_[frag] = NowMs();
}

bool WorkerLivenessMonitor::ShouldPing(uint32_t frag) {
  if (lease_ms_ == 0 || frag >= last_heard_.size()) return false;
  const uint64_t now = NowMs();
  if (now - last_heard_[frag] < lease_ms_) return false;
  if (now - last_ping_[frag] < lease_ms_) return false;
  last_ping_[frag] = now;
  return true;
}

Status WorkerLivenessMonitor::Check() {
  if (!probe_) return Status::OK();
  for (uint32_t frag = 0; frag < last_heard_.size(); ++frag) {
    if (probe_(frag)) {
      return Status::Unavailable("worker for fragment " +
                                 std::to_string(frag) +
                                 " detected dead by liveness probe");
    }
  }
  return Status::OK();
}

uint64_t WorkerLivenessMonitor::last_heard_ms(uint32_t frag) const {
  return frag < last_heard_.size() ? last_heard_[frag] : 0;
}

}  // namespace grape
