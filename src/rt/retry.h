#ifndef GRAPE_RT_RETRY_H_
#define GRAPE_RT_RETRY_H_

#include <time.h>

#include <cstdint>

namespace grape {

/// Bounded retry/backoff schedule shared by everything in the runtime that
/// waits on an unreliable peer: tcp connect/rendezvous, cluster endpoint
/// re-admission, and post-failure world respawn. Centralizing the schedule
/// means one knob set instead of scattered magic sleeps (ISSUE 7 satellite).
///
/// Deliberately allocation-free and async-signal-safe: the tcp/socket
/// backends call into this from freshly forked endpoint processes where only
/// AS-safe operations are allowed (integer math + nanosleep, no malloc, no
/// <random>). Jitter therefore comes from a tiny inline LCG seeded by the
/// caller, not from util/random.h.
struct RetryPolicy {
  /// First backoff delay. Subsequent delays multiply by backoff_multiple
  /// until capped at max_backoff_ms.
  uint64_t initial_backoff_ms = 20;
  uint64_t max_backoff_ms = 1000;
  uint32_t backoff_multiple = 2;
  /// Fraction of the delay randomized away, in percent [0, 100]. 25 means
  /// each sleep is uniform in [0.75 * delay, delay] — enough to de-thundering-
  /// herd a cluster of ranks retrying the same rendezvous point.
  uint32_t jitter_pct = 25;
  /// Hard ceiling on attempts (0 = unbounded; the deadline still applies).
  uint32_t max_attempts = 0;
};

/// Stateful retry loop driver:
///
///   RetryState retry(policy, deadline_ms, seed);
///   while (true) {
///     if (TryTheThing()) break;
///     if (!retry.BackoffOrGiveUp()) return failure;
///   }
///
/// deadline_ms is an absolute CLOCK_MONOTONIC timestamp in milliseconds
/// (0 = no deadline). BackoffOrGiveUp sleeps the next scheduled delay
/// (clamped so it never sleeps past the deadline) and returns false once the
/// deadline or the attempt cap is exhausted.
class RetryState {
 public:
  RetryState(const RetryPolicy& policy, uint64_t deadline_ms,
             uint64_t jitter_seed = 0)
      : policy_(policy),
        deadline_ms_(deadline_ms),
        next_delay_ms_(policy.initial_backoff_ms),
        lcg_(jitter_seed * 6364136223846793005ULL + 1442695040888963407ULL) {}

  static uint64_t NowMs() {
    struct timespec ts;
    clock_gettime(CLOCK_MONOTONIC, &ts);
    return static_cast<uint64_t>(ts.tv_sec) * 1000ULL +
           static_cast<uint64_t>(ts.tv_nsec) / 1000000ULL;
  }

  uint32_t attempts() const { return attempts_; }

  /// True when another attempt is allowed right now (deadline not yet
  /// passed, attempt cap not yet reached). Does not sleep.
  bool CanAttempt() const {
    if (policy_.max_attempts != 0 && attempts_ >= policy_.max_attempts) {
      return false;
    }
    return deadline_ms_ == 0 || NowMs() < deadline_ms_;
  }

  /// Records a failed attempt, sleeps the next backoff delay (jittered,
  /// clamped to the deadline), and reports whether the caller should retry.
  bool BackoffOrGiveUp() {
    ++attempts_;
    if (policy_.max_attempts != 0 && attempts_ >= policy_.max_attempts) {
      return false;
    }
    uint64_t delay = next_delay_ms_;
    if (policy_.jitter_pct > 0 && delay > 0) {
      // AS-safe LCG; shave off up to jitter_pct percent of the delay.
      lcg_ = lcg_ * 6364136223846793005ULL + 1442695040888963407ULL;
      uint64_t span = delay * policy_.jitter_pct / 100;
      if (span > 0) delay -= (lcg_ >> 33) % (span + 1);
    }
    if (deadline_ms_ != 0) {
      uint64_t now = NowMs();
      if (now >= deadline_ms_) return false;
      uint64_t remaining = deadline_ms_ - now;
      if (delay > remaining) delay = remaining;
    }
    if (delay > 0) {
      struct timespec ts;
      ts.tv_sec = static_cast<time_t>(delay / 1000);
      ts.tv_nsec = static_cast<long>((delay % 1000) * 1000000ULL);
      nanosleep(&ts, nullptr);
    }
    // Grow the schedule for next time, capped.
    uint64_t next = next_delay_ms_ * policy_.backoff_multiple;
    next_delay_ms_ =
        next > policy_.max_backoff_ms ? policy_.max_backoff_ms : next;
    return deadline_ms_ == 0 || NowMs() < deadline_ms_;
  }

 private:
  RetryPolicy policy_;
  uint64_t deadline_ms_;
  uint64_t next_delay_ms_;
  uint64_t lcg_;
  uint32_t attempts_ = 0;
};

}  // namespace grape

#endif  // GRAPE_RT_RETRY_H_
