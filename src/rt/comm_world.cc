#include "rt/comm_world.h"

#include <cstdio>
#include <memory>

#include "util/string_util.h"

namespace grape {

std::string CommStats::ToString() const {
  char buf[128];
  std::snprintf(buf, sizeof(buf), "messages=%llu bytes=%s",
                static_cast<unsigned long long>(messages),
                HumanBytes(bytes).c_str());
  return buf;
}

CommWorld::CommWorld(uint32_t size) : size_(size) {
  mailboxes_.reserve(size);
  for (uint32_t i = 0; i < size; ++i) {
    mailboxes_.push_back(std::make_unique<Mailbox>());
  }
}

Status CommWorld::Send(uint32_t from, uint32_t to, uint32_t tag,
                       std::vector<uint8_t> payload) {
  if (from >= size_ || to >= size_) {
    return Status::InvalidArgument("rank out of range");
  }
  total_messages_.fetch_add(1, std::memory_order_relaxed);
  // Envelope overhead approximates an MPI header: from/to/tag + length.
  total_bytes_.fetch_add(payload.size() + 16, std::memory_order_relaxed);
  Mailbox& box = *mailboxes_[to];
  {
    std::lock_guard<std::mutex> lock(box.mu);
    box.queue.push_back(RtMessage{from, to, tag, std::move(payload)});
  }
  box.cv.notify_one();
  return Status::OK();
}

std::optional<RtMessage> CommWorld::TryRecv(uint32_t rank) {
  Mailbox& box = *mailboxes_[rank];
  std::lock_guard<std::mutex> lock(box.mu);
  if (box.queue.empty()) return std::nullopt;
  RtMessage msg = std::move(box.queue.front());
  box.queue.pop_front();
  return msg;
}

std::optional<RtMessage> CommWorld::TryRecv(uint32_t rank, uint32_t tag) {
  Mailbox& box = *mailboxes_[rank];
  std::lock_guard<std::mutex> lock(box.mu);
  for (auto it = box.queue.begin(); it != box.queue.end(); ++it) {
    if (it->tag == tag) {
      RtMessage msg = std::move(*it);
      box.queue.erase(it);
      return msg;
    }
  }
  return std::nullopt;
}

RtMessage CommWorld::Recv(uint32_t rank) {
  Mailbox& box = *mailboxes_[rank];
  std::unique_lock<std::mutex> lock(box.mu);
  box.cv.wait(lock, [&box] { return !box.queue.empty(); });
  RtMessage msg = std::move(box.queue.front());
  box.queue.pop_front();
  return msg;
}

std::vector<RtMessage> CommWorld::DrainAll(uint32_t rank) {
  Mailbox& box = *mailboxes_[rank];
  std::lock_guard<std::mutex> lock(box.mu);
  std::vector<RtMessage> out(std::make_move_iterator(box.queue.begin()),
                             std::make_move_iterator(box.queue.end()));
  box.queue.clear();
  return out;
}

size_t CommWorld::PendingCount(uint32_t rank) const {
  const Mailbox& box = *mailboxes_[rank];
  std::lock_guard<std::mutex> lock(box.mu);
  return box.queue.size();
}

CommStats CommWorld::stats() const {
  CommStats s;
  s.messages = total_messages_.load(std::memory_order_relaxed);
  s.bytes = total_bytes_.load(std::memory_order_relaxed);
  return s;
}

void CommWorld::ResetStats() {
  total_messages_.store(0);
  total_bytes_.store(0);
}

}  // namespace grape
