#include "rt/comm_world.h"

namespace grape {

Status CommWorld::Send(uint32_t from, uint32_t to, uint32_t tag,
                       std::vector<uint8_t> payload) {
  if (from >= size() || to >= size()) {
    return Status::InvalidArgument("rank out of range");
  }
  if (closed()) return Status::Cancelled("transport closed");
  CountSendTagged(tag, payload.size());
  Deliver(RtMessage{from, to, tag, std::move(payload)});
  return Status::OK();
}

}  // namespace grape
