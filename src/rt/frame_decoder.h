#ifndef GRAPE_RT_FRAME_DECODER_H_
#define GRAPE_RT_FRAME_DECODER_H_

#include <algorithm>
#include <cstring>
#include <deque>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "core/codec.h"
#include "rt/message.h"
#include "util/status.h"

namespace grape {

/// Incremental reassembly of FrameHeader-prefixed frames from a byte
/// stream that arrives in arbitrary chunks — split headers, coalesced
/// frames, one byte at a time. This is the receive half of the tcp
/// transport's framing: a receiver thread feeds whatever read() returned
/// and pops complete frames; the decoder never blocks, never over-reads
/// past the length a header declares (trailing bytes stay buffered as the
/// start of the next frame), and surfaces a corrupt header as a sticky
/// Status instead of a giant allocation. Contract frozen by
/// tests/tcp_framing_test.cc.
///
/// Not thread-safe; each stream gets its own decoder.
class FrameDecoder {
 public:
  /// When `pool` is non-null, payload buffers are acquired from it, so a
  /// steady-state receive loop recycles instead of allocating.
  explicit FrameDecoder(BufferPool* pool = nullptr) : pool_(pool) {}

  /// Tightens the per-frame payload bound below the protocol-wide
  /// kMaxFramePayloadBytes (1 GiB). Client-facing listeners use this: a
  /// mesh peer is a trusted rank, but an arbitrary TCP client declaring a
  /// huge payload_len must produce a sticky Corruption status — before
  /// any allocation — not a 1 GiB resize. 0 restores the protocol bound.
  void set_max_payload_bytes(uint32_t bound) {
    max_payload_bytes_ = bound == 0 ? kMaxFramePayloadBytes : bound;
  }

  /// Consumes `n` bytes of stream. Completed frames queue up for Next().
  /// Returns the decoder's (sticky) status: once a header is corrupt the
  /// stream has lost sync and every later Feed fails too.
  Status Feed(const uint8_t* data, size_t n) {
    if (!status_.ok()) return status_;
    while (n > 0) {
      if (header_filled_ < kFrameHeaderBytes) {
        const size_t take = std::min(n, kFrameHeaderBytes - header_filled_);
        std::memcpy(header_ + header_filled_, data, take);
        header_filled_ += take;
        data += take;
        n -= take;
        if (header_filled_ < kFrameHeaderBytes) break;
        status_ = DecodeFrameHeader(header_, kFrameHeaderBytes, &fh_);
        if (!status_.ok()) return status_;
        if (fh_.payload_len > max_payload_bytes_) {
          status_ = Status::Corruption(
              "frame declares " + std::to_string(fh_.payload_len) +
              " payload bytes; this stream's bound is " +
              std::to_string(max_payload_bytes_));
          return status_;
        }
        payload_ = pool_ ? pool_->Acquire() : std::vector<uint8_t>{};
        payload_.resize(fh_.payload_len);
        payload_filled_ = 0;
      }
      const size_t want = fh_.payload_len - payload_filled_;
      const size_t take = std::min(n, want);
      if (take > 0) {
        std::memcpy(payload_.data() + payload_filled_, data, take);
        payload_filled_ += take;
        data += take;
        n -= take;
      }
      if (payload_filled_ == fh_.payload_len) {
        ready_.push_back(
            RtMessage{fh_.from, fh_.to, fh_.tag, std::move(payload_)});
        payload_ = {};
        header_filled_ = 0;
        payload_filled_ = 0;
      }
    }
    return Status::OK();
  }

  /// Pops the oldest completed frame; std::nullopt when more bytes are
  /// needed first.
  std::optional<RtMessage> Next() {
    if (ready_.empty()) return std::nullopt;
    RtMessage msg = std::move(ready_.front());
    ready_.pop_front();
    return msg;
  }

  /// True while bytes of an incomplete frame are buffered — i.e. EOF now
  /// would cut a frame in half.
  bool mid_frame() const { return header_filled_ > 0; }

  /// Verdict for end-of-stream: OK at a frame boundary, a Status if the
  /// stream died mid-frame or lost sync earlier.
  Status Finish() const {
    if (!status_.ok()) return status_;
    if (mid_frame()) {
      return Status::Unavailable("stream ended mid-frame (" +
                                 std::to_string(header_filled_) +
                                 " header bytes, " +
                                 std::to_string(payload_filled_) +
                                 " payload bytes in)");
    }
    return Status::OK();
  }

  /// Sticky decode status (corrupt header => not ok).
  const Status& status() const { return status_; }

  /// Completed frames waiting in Next() order.
  size_t ready_count() const { return ready_.size(); }

 private:
  BufferPool* pool_;
  uint32_t max_payload_bytes_ = kMaxFramePayloadBytes;
  uint8_t header_[kFrameHeaderBytes];
  size_t header_filled_ = 0;
  FrameHeader fh_;
  std::vector<uint8_t> payload_;
  size_t payload_filled_ = 0;
  std::deque<RtMessage> ready_;
  Status status_ = Status::OK();
};

}  // namespace grape

#endif  // GRAPE_RT_FRAME_DECODER_H_
