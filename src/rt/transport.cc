#include "rt/transport.h"

#include <cstdio>

#include "rt/comm_world.h"
#include "rt/socket_transport.h"
#include "rt/tcp_transport.h"
#include "rt/worker_protocol.h"
#include "util/string_util.h"

namespace grape {

std::string CommStats::ToString() const {
  char buf[128];
  std::snprintf(buf, sizeof(buf), "messages=%llu bytes=%s",
                static_cast<unsigned long long>(messages),
                HumanBytes(bytes).c_str());
  return buf;
}

MailboxTransport::MailboxTransport(uint32_t size) : size_(size) {
  mailboxes_.reserve(size);
  for (uint32_t i = 0; i < size; ++i) {
    mailboxes_.push_back(std::make_unique<Mailbox>());
  }
}

void MailboxTransport::Deliver(RtMessage msg) {
  Mailbox& box = *mailboxes_[msg.to];
  {
    std::lock_guard<std::mutex> lock(box.mu);
    box.queue.push_back(std::move(msg));
  }
  box.cv.notify_one();
}

std::optional<RtMessage> MailboxTransport::TryRecv(uint32_t rank) {
  Mailbox& box = *mailboxes_[rank];
  std::lock_guard<std::mutex> lock(box.mu);
  if (box.queue.empty()) return std::nullopt;
  RtMessage msg = std::move(box.queue.front());
  box.queue.pop_front();
  return msg;
}

std::optional<RtMessage> MailboxTransport::TryRecv(uint32_t rank,
                                                   uint32_t tag) {
  Mailbox& box = *mailboxes_[rank];
  std::lock_guard<std::mutex> lock(box.mu);
  for (auto it = box.queue.begin(); it != box.queue.end(); ++it) {
    if (it->tag == tag) {
      RtMessage msg = std::move(*it);
      box.queue.erase(it);
      return msg;
    }
  }
  return std::nullopt;
}

Result<RtMessage> MailboxTransport::Recv(uint32_t rank) {
  Mailbox& box = *mailboxes_[rank];
  std::unique_lock<std::mutex> lock(box.mu);
  box.cv.wait(lock, [&box, this] { return !box.queue.empty() || closed(); });
  if (box.queue.empty()) {
    return Status::Cancelled("transport closed while waiting in Recv");
  }
  RtMessage msg = std::move(box.queue.front());
  box.queue.pop_front();
  return msg;
}

std::vector<RtMessage> MailboxTransport::DrainAll(uint32_t rank) {
  Mailbox& box = *mailboxes_[rank];
  std::lock_guard<std::mutex> lock(box.mu);
  std::vector<RtMessage> out(std::make_move_iterator(box.queue.begin()),
                             std::make_move_iterator(box.queue.end()));
  box.queue.clear();
  return out;
}

size_t MailboxTransport::PendingCount(uint32_t rank) const {
  const Mailbox& box = *mailboxes_[rank];
  std::lock_guard<std::mutex> lock(box.mu);
  return box.queue.size();
}

void MailboxTransport::CountSendTagged(uint32_t tag, size_t payload_bytes) {
  if (!IsWorkerTag(tag) || IsStatsCountedWorkerTag(tag)) {
    CountSend(payload_bytes);
  }
}

CommStats MailboxTransport::stats() const {
  CommStats s;
  s.messages = total_messages_.load(std::memory_order_relaxed);
  s.bytes = total_bytes_.load(std::memory_order_relaxed);
  return s;
}

void MailboxTransport::ResetStats() {
  total_messages_.store(0);
  total_bytes_.store(0);
}

void MailboxTransport::ResetForRecovery() {
  for (auto& box : mailboxes_) {
    std::lock_guard<std::mutex> lock(box->mu);
    for (RtMessage& msg : box->queue) {
      pool_.Release(std::move(msg.payload));
    }
    box->queue.clear();
  }
  closed_.store(false, std::memory_order_release);
}

bool MailboxTransport::MarkClosed() {
  bool was = closed_.exchange(true, std::memory_order_acq_rel);
  if (was) return false;
  for (auto& box : mailboxes_) {
    // Take the lock so a Recv between its predicate check and wait cannot
    // miss the wakeup.
    std::lock_guard<std::mutex> lock(box->mu);
    box->cv.notify_all();
  }
  return true;
}

Result<std::unique_ptr<Transport>> MakeTransport(const std::string& name,
                                                 uint32_t size) {
  if (name == "inproc") {
    return std::unique_ptr<Transport>(std::make_unique<CommWorld>(size));
  }
  if (name == "socket") {
    auto t = SocketTransport::Create(size);
    GRAPE_RETURN_NOT_OK(t.status());
    return std::unique_ptr<Transport>(std::move(t).value());
  }
  if (name == "tcp") {
    auto t = TcpTransport::Create(size);
    GRAPE_RETURN_NOT_OK(t.status());
    return std::unique_ptr<Transport>(std::move(t).value());
  }
  return Status::InvalidArgument("unknown transport '" + name +
                                 "' (expected inproc|socket|tcp)");
}

const std::vector<std::string>& TransportNames() {
  static const std::vector<std::string> kNames = {"inproc", "socket", "tcp"};
  return kNames;
}

}  // namespace grape
