#include "rt/distributed_load.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <thread>
#include <utility>

#include "rt/message.h"
#include "rt/remote_worker.h"
#include "rt/worker_protocol.h"
#include "util/logging.h"
#include "util/timer.h"

namespace grape {

namespace {

/// Process-global build token source: every distributed build gets a fresh
/// token, so stale frames of an abandoned build can never be mistaken for
/// the current one, and resident fragments of different builds coexist.
std::atomic<uint64_t>& TokenCounter() {
  static std::atomic<uint64_t> counter{1};
  return counter;
}

/// One coordinator await step (mirrors the engine's CheckRemoteLiveness):
/// fail fast on a dead transport, Unavailable past the deadline,
/// otherwise yield with adaptive backoff.
Status AwaitStep(Transport* world,
                 const std::chrono::steady_clock::time_point& deadline,
                 const char* what, uint32_t* idle) {
  if (!world->healthy()) {
    return Status::Unavailable(
        std::string("transport died while awaiting ") + what);
  }
  if (std::chrono::steady_clock::now() > deadline) {
    return Status::Unavailable(std::string("timed out awaiting ") + what);
  }
  if (*idle < 40) {
    ++*idle;
    std::this_thread::sleep_for(std::chrono::microseconds(50));
  } else {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  return Status::OK();
}

/// Collects one `want_tag` frame from every worker rank, invoking
/// `on_frame(fragment, decoder)` for each. Errors (kTagWkError) abort;
/// edge- or mirror-bearing frames addressed to rank 0 are a protocol
/// violation, counted into *data_frames for the purity assertion.
template <typename OnFrame>
Status AwaitFromAllWorkers(Transport* world, uint32_t n, uint32_t want_tag,
                           int timeout_ms, const char* what,
                           uint64_t* data_frames, OnFrame on_frame) {
  std::vector<uint8_t> seen(n, 0);
  uint32_t have = 0;
  uint32_t idle = 0;
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::milliseconds(timeout_ms);
  while (have < n) {
    std::optional<RtMessage> msg = world->TryRecv(kCoordinatorRank);
    if (!msg) {
      GRAPE_RETURN_NOT_OK(AwaitStep(world, deadline, what, &idle));
      continue;
    }
    idle = 0;
    if (msg->tag == kTagWkError) {
      return DecodeWorkerError(msg->payload);
    }
    if (msg->tag == kTagWkExchange || msg->tag == kTagWkMirror) {
      ++*data_frames;  // never happens on a conformant world; see header
      world->buffer_pool().Release(std::move(msg->payload));
      continue;
    }
    if (msg->tag != want_tag || msg->from < 1 || msg->from > n ||
        seen[msg->from - 1]) {
      // Stale frame of an earlier build (or a duplicate): drop.
      world->buffer_pool().Release(std::move(msg->payload));
      continue;
    }
    Decoder dec(msg->payload);
    Status s = on_frame(msg->from - 1, dec);
    world->buffer_pool().Release(std::move(msg->payload));
    GRAPE_RETURN_NOT_OK(s);
    seen[msg->from - 1] = 1;
    have++;
  }
  return Status::OK();
}

}  // namespace

Result<DistributedGraphMeta> DistributedLoad(
    Transport* world, const DistributedLoadOptions& options) {
  if (world == nullptr) {
    return Status::InvalidArgument("distributed load requires a transport");
  }
  if (world->size() < 2) {
    return Status::InvalidArgument(
        "distributed load needs at least one worker rank");
  }
  const uint32_t n = world->size() - 1;

  uint8_t policy = kWkPartitionHash;
  if (options.partitioner == "explicit") {
    policy = kWkPartitionExplicit;
    if (options.assignment.empty()) {
      return Status::InvalidArgument(
          "explicit partitioning needs a non-empty assignment");
    }
    for (FragmentId f : options.assignment) {
      if (f >= n) {
        return Status::InvalidArgument(
            "assignment references fragment " + std::to_string(f) +
            " in a world of " + std::to_string(n));
      }
    }
  } else if (options.partitioner != "hash") {
    return Status::InvalidArgument("unknown distributed partitioner '" +
                                   options.partitioner +
                                   "' (hash|explicit)");
  }

  // Shard ranges: pure file metadata — rank 0 reads at most one line per
  // cut point to align on a boundary, never an edge.
  std::vector<ShardRange> ranges;
  GRAPE_ASSIGN_OR_RETURN(ranges, ComputeShardRanges(options.path, n));

  // A previous build or run on this world may have left worker frames
  // behind; drain them so they cannot alias into this build.
  for (uint32_t tag = kTagWkLoad; tag < kTagWkEnd_; ++tag) {
    for (uint32_t rank = 0; rank <= n; ++rank) {
      while (auto stale = world->TryRecv(rank, tag)) {
        world->buffer_pool().Release(std::move(stale->payload));
      }
    }
  }
  InThreadWorkers in_thread(world, n, !world->has_remote_endpoints());

  DistributedGraphMeta meta;
  meta.token = TokenCounter().fetch_add(1, std::memory_order_relaxed);
  meta.num_fragments = n;
  meta.directed = options.format.directed;
  meta.shapes.resize(n);

  // Phase 1: shard scan. Every worker reads its byte range and reports
  // (max gid, edge count); no edge travels here.
  WallTimer shard_timer;
  for (uint32_t i = 0; i < n; ++i) {
    WkShardCommand cmd;
    cmd.token = meta.token;
    cmd.path = options.path;
    cmd.offset = ranges[i].offset;
    cmd.length = ranges[i].length;
    cmd.format = options.format;
    cmd.num_fragments = n;
    cmd.policy = policy;
    if (policy == kWkPartitionExplicit) cmd.assignment = options.assignment;
    Encoder enc(world->buffer_pool().Acquire());
    cmd.EncodeTo(enc);
    GRAPE_RETURN_NOT_OK(
        world->Send(kCoordinatorRank, i + 1, kTagWkShard, enc.TakeBuffer()));
  }
  VertexId total = 0;
  GRAPE_RETURN_NOT_OK(AwaitFromAllWorkers(
      world, n, kTagWkShardAck, options.timeout_ms, "shard acks",
      &meta.coordinator_data_frames, [&](uint32_t frag, Decoder& dec) {
        WkShardAck ack;
        GRAPE_RETURN_NOT_OK(WkShardAck::DecodeFrom(dec, &ack));
        if (ack.token != meta.token) {
          return Status::Internal("shard ack for a different build");
        }
        total = std::max(total, ack.max_vertex_plus1);
        meta.total_edges += ack.num_edges;
        (void)frag;
        return Status::OK();
      }));
  meta.shard_seconds = shard_timer.ElapsedSeconds();

  if (policy == kWkPartitionExplicit) {
    if (total > options.assignment.size()) {
      return Status::InvalidArgument(
          "assignment covers " + std::to_string(options.assignment.size()) +
          " vertices but the input names vertex " + std::to_string(total - 1));
    }
    // Like LoadEdgeListFile + Partitioner: the vertex universe is the
    // assignment's domain, padding isolated vertices past the max gid.
    total = static_cast<VertexId>(options.assignment.size());
  }
  meta.total_vertices = total;
  if (options.verbose) {
    GRAPE_LOG(kInfo) << "distributed load: " << meta.total_edges
                     << " edges across " << n << " shards, " << total
                     << " vertices (" << meta.shard_seconds << "s scan)";
  }

  // Phase 2: broadcast the vertex count; workers exchange edges, assemble,
  // resolve mirrors peer-to-peer, and ack their fragment shapes.
  WallTimer build_timer;
  for (uint32_t i = 0; i < n; ++i) {
    Encoder enc(world->buffer_pool().Acquire());
    enc.WriteU64(meta.token);
    enc.WriteU32(total);
    GRAPE_RETURN_NOT_OK(
        world->Send(kCoordinatorRank, i + 1, kTagWkBuild, enc.TakeBuffer()));
  }
  GRAPE_RETURN_NOT_OK(AwaitFromAllWorkers(
      world, n, kTagWkBuildAck, options.timeout_ms, "build acks",
      &meta.coordinator_data_frames, [&](uint32_t frag, Decoder& dec) {
        WkBuildAck ack;
        GRAPE_RETURN_NOT_OK(WkBuildAck::DecodeFrom(dec, &ack));
        if (ack.token != meta.token) {
          return Status::Internal("build ack for a different build");
        }
        meta.shapes[frag].num_inner = ack.num_inner;
        meta.shapes[frag].num_local = ack.num_local;
        meta.shapes[frag].num_arcs = ack.num_arcs;
        return Status::OK();
      }));
  meta.build_seconds = build_timer.ElapsedSeconds();
  if (options.verbose) {
    GRAPE_LOG(kInfo) << "distributed load: fragments resident ("
                     << meta.build_seconds << "s exchange+assembly)";
  }
  return meta;
}

}  // namespace grape
