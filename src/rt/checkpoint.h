#ifndef GRAPE_RT_CHECKPOINT_H_
#define GRAPE_RT_CHECKPOINT_H_

#include <cstdint>
#include <map>
#include <string>
#include <utility>
#include <vector>

#include "util/result.h"
#include "util/status.h"

namespace grape {

/// A worker's snapshot at a superstep barrier. `state` is the opaque blob
/// produced by WorkerAppServerBase::EncodeCheckpoint (query + fragment +
/// WorkerCore store + app state); `pending` are the buffered worker-to-worker
/// direct frames the worker had already received for the *next* round —
/// replaying them is what keeps merge order, and therefore output hashes,
/// bit-identical after recovery.
struct CheckpointImage {
  uint32_t rank = 0;
  uint32_t round = 0;  // superstep count at the barrier
  std::vector<uint8_t> state;
  struct PendingWireFrame {
    uint32_t from = 0;
    uint32_t tag = 0;
    std::vector<uint8_t> payload;
  };
  std::vector<PendingWireFrame> pending;
};

/// Serializes an image with a self-describing envelope:
/// magic + version + body + FNV-1a checksum over the body. Decoding is
/// strict — bad magic, unknown version, truncation, trailing garbage, or a
/// checksum mismatch all fail with InvalidArgument and never return a
/// half-restored image.
std::vector<uint8_t> EncodeCheckpointImage(const CheckpointImage& image);
Result<CheckpointImage> DecodeCheckpointImage(const uint8_t* data,
                                              size_t size);

/// Keeps checkpoint images per (worker rank, superstep round). Two modes:
///  - in-memory (default): images live in the coordinator process; cheap,
///    but lost if rank 0 dies (rank-0 death is out of scope — see README).
///  - disk (`dir` non-empty): each Put writes
///    `<dir>/grape_ckpt_r<rank>_s<round>.bin` via a temp file + atomic
///    rename, so a crash mid-write leaves the previous file intact.
///
/// Both modes retain the TWO most recent rounds per rank and garbage-
/// collect older ones. Two, not one, because a checkpoint barrier can be
/// torn by the very crash it guards against: some workers commit round k
/// while others die before doing so. The last *complete* barrier (k-1 or
/// earlier) must then still be restorable for every rank, so the newest
/// image alone is never trusted — the coordinator's snapshot names the
/// round it wants, and this store still has it.
class CheckpointStore {
 public:
  CheckpointStore() = default;
  explicit CheckpointStore(std::string dir) : dir_(std::move(dir)) {}

  bool disk_backed() const { return !dir_.empty(); }
  const std::string& dir() const { return dir_; }

  /// Stores the encoded image for (`rank`, `round`), dropping all but the
  /// two most recent rounds for that rank. The blob must already be a
  /// valid encoded image (callers receive it from the worker and validate
  /// by decoding before committing).
  Status Put(uint32_t rank, uint32_t round, std::vector<uint8_t> encoded);

  /// Loads and decodes the image for (`rank`, `round`).
  Result<CheckpointImage> Get(uint32_t rank, uint32_t round) const;

  /// Loads the raw encoded blob Put stored for (`rank`, `round`), without
  /// decoding — what an engine inlines into a restore command when the
  /// store is memory-resident and the worker cannot read it from disk.
  Result<std::vector<uint8_t>> GetEncoded(uint32_t rank,
                                          uint32_t round) const;

  bool Has(uint32_t rank, uint32_t round) const;

  /// Drops all stored images (memory) / unlinks every checkpoint file in
  /// the directory, including ones written by other store instances
  /// (disk) — end-of-run cleanup.
  void Clear();

  /// Total encoded bytes currently resident (memory mode) or written and
  /// not yet garbage-collected by this instance (disk mode).
  uint64_t TotalBytes() const;

  std::string PathFor(uint32_t rank, uint32_t round) const;

 private:
  std::string dir_;
  // memory mode: rank -> round -> encoded image (two newest rounds kept)
  std::map<uint32_t, std::map<uint32_t, std::vector<uint8_t>>> images_;
  // disk mode bookkeeping for TotalBytes, same keep-two GC as the files
  std::map<uint32_t, std::map<uint32_t, uint64_t>> disk_bytes_;
};

}  // namespace grape

#endif  // GRAPE_RT_CHECKPOINT_H_
