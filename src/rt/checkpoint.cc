#include "rt/checkpoint.h"

#include <dirent.h>
#include <fcntl.h>
#include <stdio.h>
#include <sys/stat.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstdio>
#include <cstring>

#include "util/serializer.h"

namespace grape {

namespace {

constexpr uint32_t kCkptMagic = 0x504b4347;  // "GCKP" little-endian
constexpr uint32_t kCkptVersion = 1;

uint64_t Fnv1a(const uint8_t* data, size_t n) {
  uint64_t h = 1469598103934665603ULL;
  for (size_t i = 0; i < n; ++i) {
    h ^= data[i];
    h *= 1099511628211ULL;
  }
  return h;
}

}  // namespace

std::vector<uint8_t> EncodeCheckpointImage(const CheckpointImage& image) {
  // Body first, so the checksum can cover exactly the body bytes.
  Encoder body;
  body.WriteU32(image.rank);
  body.WriteU32(image.round);
  body.WriteVarint(image.state.size());
  body.WritePodSpan(image.state.data(), image.state.size());
  body.WriteVarint(image.pending.size());
  for (const auto& frame : image.pending) {
    body.WriteU32(frame.from);
    body.WriteU32(frame.tag);
    body.WriteVarint(frame.payload.size());
    body.WritePodSpan(frame.payload.data(), frame.payload.size());
  }

  Encoder enc;
  enc.WriteU32(kCkptMagic);
  enc.WriteU32(kCkptVersion);
  enc.WriteVarint(body.size());
  enc.WritePodSpan(body.buffer().data(), body.size());
  enc.WriteU64(Fnv1a(body.buffer().data(), body.size()));
  return enc.TakeBuffer();
}

Result<CheckpointImage> DecodeCheckpointImage(const uint8_t* data,
                                              size_t size) {
  Decoder dec(data, size);
  uint32_t magic = 0, version = 0;
  GRAPE_RETURN_NOT_OK(dec.ReadU32(&magic));
  if (magic != kCkptMagic) {
    return Status::InvalidArgument("checkpoint image: bad magic");
  }
  GRAPE_RETURN_NOT_OK(dec.ReadU32(&version));
  if (version != kCkptVersion) {
    return Status::InvalidArgument("checkpoint image: unsupported version " +
                                   std::to_string(version));
  }
  uint64_t body_len = 0;
  GRAPE_RETURN_NOT_OK(dec.ReadVarint(&body_len));
  if (body_len > dec.Remaining()) {
    return Status::InvalidArgument("checkpoint image: truncated body");
  }
  const uint8_t* body = data + dec.position();
  Decoder body_dec(body, body_len);
  // Skip over the body in the outer decoder, then verify the checksum
  // BEFORE interpreting a single body byte — a corrupt image must never
  // yield a half-restored result.
  std::vector<uint8_t> skip(body_len);
  GRAPE_RETURN_NOT_OK(dec.ReadPodSpan(skip.data(), body_len));
  uint64_t checksum = 0;
  GRAPE_RETURN_NOT_OK(dec.ReadU64(&checksum));
  if (!dec.AtEnd()) {
    return Status::InvalidArgument("checkpoint image: trailing bytes");
  }
  if (Fnv1a(body, body_len) != checksum) {
    return Status::InvalidArgument("checkpoint image: checksum mismatch");
  }

  CheckpointImage image;
  GRAPE_RETURN_NOT_OK(body_dec.ReadU32(&image.rank));
  GRAPE_RETURN_NOT_OK(body_dec.ReadU32(&image.round));
  uint64_t state_len = 0;
  GRAPE_RETURN_NOT_OK(body_dec.ReadVarint(&state_len));
  if (state_len > body_dec.Remaining()) {
    return Status::InvalidArgument("checkpoint image: truncated state");
  }
  image.state.resize(state_len);
  GRAPE_RETURN_NOT_OK(body_dec.ReadPodSpan(image.state.data(), state_len));
  uint64_t n_frames = 0;
  GRAPE_RETURN_NOT_OK(body_dec.ReadVarint(&n_frames));
  if (n_frames > body_dec.Remaining()) {
    return Status::InvalidArgument("checkpoint image: frame count overflow");
  }
  image.pending.reserve(n_frames);
  for (uint64_t i = 0; i < n_frames; ++i) {
    CheckpointImage::PendingWireFrame frame;
    GRAPE_RETURN_NOT_OK(body_dec.ReadU32(&frame.from));
    GRAPE_RETURN_NOT_OK(body_dec.ReadU32(&frame.tag));
    uint64_t len = 0;
    GRAPE_RETURN_NOT_OK(body_dec.ReadVarint(&len));
    if (len > body_dec.Remaining()) {
      return Status::InvalidArgument("checkpoint image: truncated frame");
    }
    frame.payload.resize(len);
    GRAPE_RETURN_NOT_OK(body_dec.ReadPodSpan(frame.payload.data(), len));
    image.pending.push_back(std::move(frame));
  }
  if (!body_dec.AtEnd()) {
    return Status::InvalidArgument("checkpoint image: trailing body bytes");
  }
  return image;
}

std::string CheckpointStore::PathFor(uint32_t rank, uint32_t round) const {
  return dir_ + "/grape_ckpt_r" + std::to_string(rank) + "_s" +
         std::to_string(round) + ".bin";
}

namespace {

/// Parses `grape_ckpt_r<rank>_s<round>.bin`; false for anything else.
bool ParseCheckpointName(const char* name, uint32_t* rank, uint32_t* round) {
  unsigned long r = 0, s = 0;
  char tail[8] = {0};
  if (std::sscanf(name, "grape_ckpt_r%lu_s%lu.bi%1[n]", &r, &s, tail) != 3) {
    return false;
  }
  *rank = static_cast<uint32_t>(r);
  *round = static_cast<uint32_t>(s);
  return true;
}

}  // namespace

Status CheckpointStore::Put(uint32_t rank, uint32_t round,
                            std::vector<uint8_t> encoded) {
  if (!disk_backed()) {
    auto& rounds = images_[rank];
    rounds[round] = std::move(encoded);
    while (rounds.size() > 2) rounds.erase(rounds.begin());
    return Status::OK();
  }
  const std::string path = PathFor(rank, round);
  const std::string tmp = path + ".tmp";
  // One level of mkdir so --ckpt-dir may name a directory that does not
  // exist yet; a missing parent still surfaces as the open error below.
  ::mkdir(dir_.c_str(), 0755);
  int fd = ::open(tmp.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (fd < 0) {
    return Status::IOError("checkpoint open " + tmp + ": " +
                           std::strerror(errno));
  }
  size_t off = 0;
  while (off < encoded.size()) {
    ssize_t n = ::write(fd, encoded.data() + off, encoded.size() - off);
    if (n < 0) {
      if (errno == EINTR) continue;
      int err = errno;
      ::close(fd);
      ::unlink(tmp.c_str());
      return Status::IOError("checkpoint write " + tmp + ": " +
                             std::strerror(err));
    }
    off += static_cast<size_t>(n);
  }
  if (::fsync(fd) != 0 || ::close(fd) != 0) {
    ::unlink(tmp.c_str());
    return Status::IOError("checkpoint sync " + tmp + ": " +
                           std::strerror(errno));
  }
  if (::rename(tmp.c_str(), path.c_str()) != 0) {
    ::unlink(tmp.c_str());
    return Status::IOError("checkpoint rename " + path + ": " +
                           std::strerror(errno));
  }
  auto& rounds = disk_bytes_[rank];
  rounds[round] = encoded.size();
  while (rounds.size() > 2) rounds.erase(rounds.begin());

  // GC on-disk rounds by directory scan, not instance bookkeeping:
  // workers construct a fresh store per checkpoint (and a respawned
  // worker starts with no memory at all), so the files themselves are the
  // only durable record of what exists. Keep the two newest rounds.
  DIR* d = ::opendir(dir_.c_str());
  if (d != nullptr) {
    std::vector<uint32_t> seen;
    while (struct dirent* e = ::readdir(d)) {
      uint32_t r = 0, s = 0;
      if (ParseCheckpointName(e->d_name, &r, &s) && r == rank) {
        seen.push_back(s);
      }
    }
    ::closedir(d);
    std::sort(seen.begin(), seen.end());
    for (size_t i = 0; i + 2 < seen.size(); ++i) {
      ::unlink(PathFor(rank, seen[i]).c_str());
    }
  }
  return Status::OK();
}

Result<CheckpointImage> CheckpointStore::Get(uint32_t rank,
                                             uint32_t round) const {
  Result<std::vector<uint8_t>> encoded = GetEncoded(rank, round);
  GRAPE_RETURN_NOT_OK(encoded.status());
  return DecodeCheckpointImage(encoded->data(), encoded->size());
}

Result<std::vector<uint8_t>> CheckpointStore::GetEncoded(
    uint32_t rank, uint32_t round) const {
  if (!disk_backed()) {
    auto it = images_.find(rank);
    if (it == images_.end() || it->second.count(round) == 0) {
      return Status::NotFound("no checkpoint for rank " +
                              std::to_string(rank) + " round " +
                              std::to_string(round));
    }
    return it->second.at(round);
  }
  const std::string path = PathFor(rank, round);
  int fd = ::open(path.c_str(), O_RDONLY);
  if (fd < 0) {
    return Status::NotFound("no checkpoint file " + path + ": " +
                            std::strerror(errno));
  }
  std::vector<uint8_t> bytes;
  uint8_t buf[1 << 16];
  while (true) {
    ssize_t n = ::read(fd, buf, sizeof(buf));
    if (n < 0) {
      if (errno == EINTR) continue;
      int err = errno;
      ::close(fd);
      return Status::IOError("checkpoint read " + path + ": " +
                             std::strerror(err));
    }
    if (n == 0) break;
    bytes.insert(bytes.end(), buf, buf + n);
  }
  ::close(fd);
  return bytes;
}

bool CheckpointStore::Has(uint32_t rank, uint32_t round) const {
  if (!disk_backed()) {
    auto it = images_.find(rank);
    return it != images_.end() && it->second.count(round) != 0;
  }
  return ::access(PathFor(rank, round).c_str(), R_OK) == 0;
}

void CheckpointStore::Clear() {
  images_.clear();
  disk_bytes_.clear();
  if (!disk_backed()) return;
  // Unlink every checkpoint file in the directory, whoever wrote it — a
  // fresh store instance must be able to clean up a finished run.
  DIR* d = ::opendir(dir_.c_str());
  if (d == nullptr) return;
  std::vector<std::string> doomed;
  while (struct dirent* e = ::readdir(d)) {
    uint32_t rank = 0, round = 0;
    if (ParseCheckpointName(e->d_name, &rank, &round)) {
      doomed.push_back(dir_ + "/" + e->d_name);
    }
  }
  ::closedir(d);
  for (const std::string& path : doomed) ::unlink(path.c_str());
}

uint64_t CheckpointStore::TotalBytes() const {
  uint64_t total = 0;
  for (const auto& [rank, rounds] : images_) {
    for (const auto& [round, img] : rounds) total += img.size();
  }
  for (const auto& [rank, rounds] : disk_bytes_) {
    for (const auto& [round, bytes] : rounds) total += bytes;
  }
  return total;
}

}  // namespace grape
