#ifndef GRAPE_RT_TCP_TRANSPORT_H_
#define GRAPE_RT_TCP_TRANSPORT_H_

#include <sys/types.h>

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "rt/cluster.h"
#include "rt/transport.h"
#include "util/result.h"
#include "util/status.h"

namespace grape {

/// Options for TcpTransport::Create. The default — an empty roster — is
/// single-host auto-spawn: every endpoint is forked locally and the whole
/// mesh lives on loopback with ephemeral ports (what CI smokes). A
/// non-empty roster (one HostPort per rank, see ClusterSpec in
/// rt/cluster.h) switches to cluster mode: only rank 0's endpoint is
/// forked locally; the others are standalone processes started on their
/// machines via RunClusterEndpoint, and the rendezvous listener binds
/// hosts[0].port so they can find us.
struct TcpOptions {
  std::vector<HostPort> hosts;
  /// Budget for the whole rendezvous (all endpoints dialed in and the
  /// roster handed out). Generous by default: in cluster mode remote
  /// ranks may be launched by hand.
  int rendezvous_timeout_ms = 30000;
  /// Shared-secret rank admission (drivers resolve --cluster-token /
  /// GRAPE_CLUSTER_TOKEN here). When non-empty, every rendezvous and mesh
  /// hello carries an 8-byte digest of the token, verified before the
  /// connection can claim a rank — a process that does not know the token
  /// is dropped like any other malformed hello, and never admitted to the
  /// world. Empty (the default) disables the check and keeps every hello
  /// byte-identical to the historical wire format. Endpoints must be
  /// launched with the same token (RunClusterEndpoint / --cluster-token).
  std::string cluster_token;
};

/// Multi-process Transport backend over TCP: the distributed twin of
/// SocketTransport. Every rank's endpoint is its own OS process holding a
/// full-mesh of TCP connections, and every message crosses the mesh as
/// the same 16-byte FrameHeader frame (core/codec.h), so CommStats
/// counted bytes remain wire bytes and a fixed workload reports
/// bit-identical counters on inproc, socket, and tcp.
///
/// Topology, for a world of n ranks:
///
///   Send(from, to)        endpoint `from`        endpoint `to`     parent
///   ─ frame ─────────▶  demux by header.to  ─▶  TCP mesh conn  ─▶ link `to`
///     [link `from`]      onto mesh conns         relays frames     receiver
///                                                up its link       thread →
///                                                                  mailbox
///
///  * Rendezvous: the engine process listens (the "rank-0 listener");
///    every endpoint dials it, reports its mesh listener's bound address,
///    and receives the frozen rank→address roster back on the same
///    connection, which then becomes that rank's bidirectional frame
///    link (engine→endpoint: frames Sent from that rank;
///    endpoint→engine: frames delivered to it).
///  * Mesh: after the roster, rank r dials every rank below it and
///    accepts from every rank above it — one TCP connection per
///    unordered pair, full duplex, so FIFO per ordered (from, to)
///    channel is the stream guarantee end to end: link `from` orders the
///    engine's sends, the (from, to) mesh direction preserves it, and
///    link `to` orders delivery.
///  * Framing is hardened against the stream realities loopback hides:
///    writev-gathered header+payload writes with short-write loops on
///    the send side, and an incremental FrameDecoder (rt/frame_decoder.h)
///    on the receive side that accepts split headers, coalesced frames,
///    and 1-byte arrivals. A dead endpoint surfaces as Unavailable from
///    Send/Flush within a bounded time — never a hang (frozen by
///    tests/transport_fault_test.cc).
///
/// Under remote compute (EngineOptions::remote_app), an endpoint is more
/// than a relay: worker-protocol frames addressed to its rank drive an
/// in-process RemoteWorkerHost running that fragment's PEval/IncEval, so
/// in cluster mode compute executes on the worker's machine. Rank 0's
/// endpoint always stays a pure relay fronting the engine.
///
/// Forked endpoint children run only async-signal-safe code (raw
/// syscalls over memory preallocated before fork), so construction is
/// safe in a multi-threaded parent; the single exception is a lazily
/// created worker host on the first kTagWkLoad frame (remote compute
/// only), which relies on glibc's fork handlers keeping malloc usable.
class TcpTransport final : public MailboxTransport {
 public:
  static Result<std::unique_ptr<TcpTransport>> Create(uint32_t size,
                                                      TcpOptions options = {});

  ~TcpTransport() override;

  TcpTransport(const TcpTransport&) = delete;
  TcpTransport& operator=(const TcpTransport&) = delete;

  std::string name() const override { return "tcp"; }

  /// Endpoint processes host remote-compute workers themselves.
  bool has_remote_endpoints() const override { return true; }

  Status Send(uint32_t from, uint32_t to, uint32_t tag,
              std::vector<uint8_t> payload) override;

  /// Blocks until every frame accepted by Send has crossed the mesh and
  /// been parsed back into its destination mailbox.
  Status Flush() override;

  void Close() override;

  /// Locally forked endpoint process ids (all ranks in auto-spawn mode,
  /// only rank 0 in cluster mode), for tests that kill real endpoints.
  const std::vector<pid_t>& endpoint_pids() const { return children_; }

  /// Auto-spawn forks one endpoint per rank in rank order. Cluster-mode
  /// remote ranks are other machines' processes — not probeable here.
  std::vector<int64_t> endpoint_process_ids() const override {
    if (cluster_) return {};
    return std::vector<int64_t>(children_.begin(), children_.end());
  }

  /// Auto-spawn worlds can be rebuilt whole: every endpoint is a local
  /// fork, so recovery kills the lot, drains the receivers, and reruns the
  /// constructor-time Init (fresh rendezvous, fresh mesh, fresh forks).
  /// Cluster worlds cannot — the remote RunClusterEndpoint processes are
  /// launched out-of-band and cannot be respawned from here, so Recover
  /// reports Unavailable and the failure surfaces to the caller.
  bool supports_recovery() const override { return !cluster_; }
  Status Recover() override;

 private:
  /// Per-rank frame link: parent-side fd of the rendezvous connection.
  /// Serialized writers; the receiver thread owns the read half.
  struct Link {
    std::mutex mu;
    int fd = -1;
    bool shut = false;  // Close() shut the write side
  };

  explicit TcpTransport(uint32_t size);

  Status Init(const TcpOptions& options);
  void ReceiverLoop(uint32_t rank);
  void MarkBroken(const char* what);
  void ReapChildren();

  std::vector<std::unique_ptr<Link>> links_;  // one per rank
  std::vector<pid_t> children_;
  std::vector<std::thread> receivers_;
  TcpOptions options_;    // kept so Recover can rerun Init verbatim
  bool cluster_ = false;  // non-empty roster: endpoints launched remotely

  // Flush barrier: frames accepted by Send vs. frames parsed into
  // mailboxes by receiver threads (socket_transport's scheme).
  std::mutex flush_mu_;
  std::condition_variable flush_cv_;
  std::atomic<uint64_t> frames_sent_{0};
  std::atomic<uint64_t> frames_delivered_{0};
  std::atomic<bool> broken_{false};  // an endpoint died with frames in flight

  std::once_flag close_once_;
};

/// Runs rank `rank`'s endpoint in THIS process (cluster mode, rank > 0):
/// binds the mesh listener on `mesh_bind_port` (0 = ephemeral), joins the
/// rendezvous at `coordinator`, relays frames until the coordinator shuts
/// the mesh down. Blocks for the lifetime of the world. Used by
/// RunClusterEndpoint (rt/cluster.h); exposed here so the endpoint logic
/// has exactly one implementation, shared with the forked children.
Status RunTcpEndpointProcess(uint32_t rank, uint32_t world_size,
                             const HostPort& coordinator,
                             uint16_t mesh_bind_port, int timeout_ms,
                             const std::string& cluster_token = "");

}  // namespace grape

#endif  // GRAPE_RT_TCP_TRANSPORT_H_
