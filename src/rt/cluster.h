#ifndef GRAPE_RT_CLUSTER_H_
#define GRAPE_RT_CLUSTER_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "rt/transport.h"
#include "util/flags.h"
#include "util/result.h"
#include "util/status.h"

namespace grape {

/// One rank's place in a tcp roster: where its machine is reachable.
struct HostPort {
  std::string host;
  uint16_t port = 0;

  std::string ToString() const;
  bool operator==(const HostPort&) const = default;
};

/// Parses "a:p,b:p,..." (the --hosts flag) into one HostPort per rank.
/// A bare "host" entry gets port 0 (= pick an ephemeral port).
Result<std::vector<HostPort>> ParseHostList(const std::string& spec);

std::string FormatHostList(const std::vector<HostPort>& hosts);

/// How one process of a multi-machine launch sees the world, parsed from
/// `--rank=N --hosts=a:p,b:p`. Exactly one process runs with rank 0 — it
/// hosts the engine AND the tcp rendezvous listener at hosts[0]; every
/// other rank is a pure endpoint process started with the same --hosts
/// and its own --rank. An empty `hosts` means single-machine auto-spawn:
/// the tcp transport forks every endpoint locally on loopback (the mode
/// CI smokes), and --rank must be 0.
///
/// Roster semantics: hosts[0] is the coordinator address every endpoint
/// dials (the only port that must be reachable from all machines up
/// front). hosts[r] for r > 0 names rank r's machine and the port its
/// mesh listener binds there (0 = ephemeral). Actual mesh addresses are
/// collected by the rank-0 listener during rendezvous and handed back to
/// every endpoint as the frozen roster, so ephemeral ports work on a
/// single machine without configuration.
struct ClusterSpec {
  uint32_t rank = 0;
  std::vector<HostPort> hosts;
  /// Shared secret for rank admission (TcpOptions::cluster_token): every
  /// process of the launch — rank 0 and all endpoints — must carry the
  /// same value. Empty disables authentication.
  std::string token;

  bool single_host() const { return hosts.empty(); }

  /// Reads --rank / --hosts / --cluster-token (the latter falling back to
  /// the GRAPE_CLUSTER_TOKEN environment variable, so the secret can stay
  /// out of process listings). Fails on a non-zero rank without --hosts
  /// or a rank outside the host list.
  static Result<ClusterSpec> FromFlags(const FlagParser& flags);
};

/// Checks that a non-empty roster's entry 0 — the coordinator address
/// every endpoint dials — carries an explicit port (':0' is only valid
/// for mesh entries, ranks >= 1). The single source of this rule for the
/// flag parser, the endpoint entry point, and TcpTransport::Create; an
/// ephemeral coordinator port would make both sides burn the rendezvous
/// timeout against an unknowable address.
Status ValidateCoordinatorAddress(const std::vector<HostPort>& hosts);

/// Runs this process as rank `spec.rank`'s tcp endpoint: binds its mesh
/// listener, joins the rendezvous at hosts[0], relays frames between the
/// engine and the mesh, and returns once the coordinator shuts the world
/// down (or with a Status when the mesh dies). The entry point every
/// bench/example calls when launched with --transport=tcp --rank=N, N>0.
Status RunClusterEndpoint(const ClusterSpec& spec);

/// Endpoint-mode preamble shared by every bench/example main. When this
/// process was launched with --rank > 0 it is a cluster endpoint, not an
/// engine: validates that --transport is tcp (failing as fast as the
/// rank-0 process will on any other backend), serves the rank's place in
/// the mesh via RunClusterEndpoint, and returns true with *exit_code set
/// for main to return. Rank-0 processes get false and proceed to run the
/// engine.
bool RanAsClusterEndpoint(const ClusterSpec& spec,
                          const std::string& transport, int* exit_code);

/// Builds the transport the rank-0 (engine) process should use: plain
/// MakeTransport for inproc/socket, and for tcp either auto-spawned
/// loopback endpoints (spec.single_host()) or the rendezvous for
/// `spec.hosts`, which must list exactly `size` ranks.
Result<std::unique_ptr<Transport>> MakeClusterTransport(
    const std::string& name, uint32_t size, const ClusterSpec& spec);

}  // namespace grape

#endif  // GRAPE_RT_CLUSTER_H_
