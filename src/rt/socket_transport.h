#ifndef GRAPE_RT_SOCKET_TRANSPORT_H_
#define GRAPE_RT_SOCKET_TRANSPORT_H_

#include <sys/types.h>

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "rt/transport.h"
#include "util/result.h"
#include "util/status.h"

namespace grape {

/// Multi-process Transport backend: every rank's inbound endpoint is a
/// forked OS process, and every message physically leaves the engine's
/// address space as a length-prefixed frame (core/codec.h FrameHeader)
/// over AF_UNIX stream sockets.
///
/// Topology, for a world of n ranks:
///
///   Send(from, to)            endpoint process `to`           parent
///   ─ frame ──────────────▶  per-peer channel (from→to)  ─▶  uplink `to`
///        [socketpair]            relays whole frames          receiver
///                                in arrival order             thread →
///                                                             mailbox[to]
///
///  * One dedicated socketpair per ordered (from, to) channel, so FIFO per
///    channel is the kernel's stream guarantee, and senders never contend
///    on a shared connection.
///  * Rank r's endpoint process owns the read ends of channels (*, r),
///    relays complete frames — header first, then the payload streamed in
///    chunks — onto r's uplink, and exits when every channel reaches EOF.
///  * A per-rank receiver thread in the parent parses the uplink stream
///    back into RtMessages. PEval/IncEval execution itself still runs in
///    the parent (moving compute into the endpoint processes is the next
///    step on the roadmap); what this backend makes real is the substrate:
///    framing, kernel-buffer backpressure, asynchronous delivery, and the
///    Flush() barrier the engine must use between supersteps.
///
/// Fidelity: frames carry exactly the same payload bytes as the in-process
/// backend and the wire envelope is the same 16 bytes CommStats charges,
/// so a fixed workload reports bit-identical CommStats on both backends
/// (frozen by tests/message_path_golden_test.cc).
///
/// The endpoint children run only async-signal-safe code (read/write/poll
/// on buffers preallocated before fork), so construction is safe in a
/// multi-threaded parent.
class SocketTransport final : public MailboxTransport {
 public:
  /// Builds the full mesh (n² channel socketpairs, n endpoint processes,
  /// n receiver threads). Fails with IOError if sockets or fork are
  /// exhausted.
  static Result<std::unique_ptr<SocketTransport>> Create(uint32_t size);

  ~SocketTransport() override;

  SocketTransport(const SocketTransport&) = delete;
  SocketTransport& operator=(const SocketTransport&) = delete;

  std::string name() const override { return "socket"; }

  Status Send(uint32_t from, uint32_t to, uint32_t tag,
              std::vector<uint8_t> payload) override;

  /// Blocks until every frame accepted by Send has been parsed back into
  /// its destination mailbox (frames cross two process boundaries, so
  /// delivery is genuinely asynchronous).
  Status Flush() override;

  void Close() override;

  /// Endpoint process ids, for tests asserting real child processes.
  const std::vector<pid_t>& endpoint_pids() const { return children_; }

 private:
  /// Per-channel sender state: parent-side write end, serialized writers.
  struct Channel {
    std::mutex mu;
    int fd = -1;
  };

  explicit SocketTransport(uint32_t size);

  Status Init();             // sockets + forks + receiver threads
  void ReceiverLoop(uint32_t rank);
  void CloseSendSide();      // shuts channel write ends; children see EOF
  void ReapChildren();

  std::vector<std::unique_ptr<Channel>> channels_;  // from * size() + to
  std::vector<int> uplink_read_fds_;                // one per rank
  std::vector<pid_t> children_;
  std::vector<std::thread> receivers_;

  // Flush barrier: frames accepted by Send vs. frames parsed into
  // mailboxes by receiver threads.
  std::mutex flush_mu_;
  std::condition_variable flush_cv_;
  std::atomic<uint64_t> frames_sent_{0};
  std::atomic<uint64_t> frames_delivered_{0};
  std::atomic<bool> broken_{false};  // endpoint died with frames in flight

  std::once_flag close_once_;
};

}  // namespace grape

#endif  // GRAPE_RT_SOCKET_TRANSPORT_H_
