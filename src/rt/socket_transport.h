#ifndef GRAPE_RT_SOCKET_TRANSPORT_H_
#define GRAPE_RT_SOCKET_TRANSPORT_H_

#include <sys/types.h>

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "core/codec.h"
#include "rt/transport.h"
#include "util/result.h"
#include "util/status.h"

namespace grape {

/// Multi-process Transport backend: every rank's inbound endpoint is a
/// forked OS process, and every message physically leaves the engine's
/// address space as a length-prefixed frame (core/codec.h FrameHeader)
/// over AF_UNIX stream sockets.
///
/// Topology, for a world of n ranks:
///
///   Send(from, to)            endpoint process `to`           parent
///   ─ frame ──────────────▶  per-peer channel (from→to)  ─▶  uplink `to`
///        [socketpair]            relays whole frames          receiver
///                                in arrival order             thread →
///                                                             mailbox[to]
///
///  * One dedicated socketpair per ordered (from, to) channel, so FIFO per
///    channel is the kernel's stream guarantee, and senders never contend
///    on a shared connection.
///  * Rank r's endpoint process owns the read ends of channels (*, r),
///    relays complete frames — header first, then the payload streamed in
///    chunks — onto r's uplink, and exits when every channel reaches EOF.
///  * A per-rank receiver thread in the parent parses the uplink stream
///    back into RtMessages — routing by the header's destination, because
///    under remote compute (EngineOptions::remote_app) an endpoint is not
///    just a relay: worker-protocol frames addressed to its rank drive an
///    in-child RemoteWorkerHost running PEval/IncEval, whose output
///    frames (acks and owner-bound updates for rank 0, direct mirror
///    refreshes for peers, which the parent re-injects into the right
///    channel) surface on the same uplink.
///
/// Fidelity: frames carry exactly the same payload bytes as the in-process
/// backend and the wire envelope is the same 16 bytes CommStats charges,
/// so a fixed workload reports bit-identical CommStats on both backends
/// (frozen by tests/message_path_golden_test.cc).
///
/// The endpoint children run only async-signal-safe code (read/write/poll
/// on buffers preallocated before fork), so construction is safe in a
/// multi-threaded parent.
class SocketTransport final : public MailboxTransport {
 public:
  /// Builds the full mesh (n² channel socketpairs, n endpoint processes,
  /// n receiver threads). Fails with IOError if sockets or fork are
  /// exhausted.
  static Result<std::unique_ptr<SocketTransport>> Create(uint32_t size);

  ~SocketTransport() override;

  SocketTransport(const SocketTransport&) = delete;
  SocketTransport& operator=(const SocketTransport&) = delete;

  std::string name() const override { return "socket"; }

  /// Endpoint children host remote-compute workers themselves.
  bool has_remote_endpoints() const override { return true; }

  Status Send(uint32_t from, uint32_t to, uint32_t tag,
              std::vector<uint8_t> payload) override;

  /// Blocks until every frame accepted by Send has been parsed back into
  /// its destination mailbox (frames cross two process boundaries, so
  /// delivery is genuinely asynchronous).
  Status Flush() override;

  void Close() override;

  /// Endpoint process ids, for tests asserting real child processes.
  const std::vector<pid_t>& endpoint_pids() const { return children_; }

  /// One forked endpoint per rank, in rank order (liveness pid probe).
  std::vector<int64_t> endpoint_process_ids() const override {
    return std::vector<int64_t>(children_.begin(), children_.end());
  }

  /// Full-world rebuild after an endpoint death: kills whatever children
  /// remain, drains all threads, closes every channel, then reruns the
  /// constructor-time Init over the same slots — fresh sockets, fresh
  /// forks, empty mailboxes. See Transport::Recover for the contract.
  bool supports_recovery() const override { return true; }
  Status Recover() override;

 private:
  /// Per-channel sender state: parent-side write end, serialized writers.
  struct Channel {
    std::mutex mu;
    int fd = -1;
  };

  explicit SocketTransport(uint32_t size);

  Status Init();             // sockets + forks + receiver threads
  void ReceiverLoop(uint32_t rank);
  /// Re-injects a worker host's worker-to-worker frame (surfaced on its
  /// endpoint's uplink) into the (from, to) channel so the destination
  /// endpoint's worker consumes it. Returns false when the channel is
  /// gone (world closing / broken). Runs ONLY on the forwarder thread:
  /// the write blocks when the channel is full, and a receiver thread
  /// blocking here would close a four-party circular wait (receiver r
  /// stops draining uplink r -> child r wedges writing it -> child r
  /// stops reading its channels -> the peer receiver's forward into
  /// those channels never completes, and symmetrically). With receivers
  /// never blocking, uplinks always drain, children always return to
  /// their channel reads, and the forwarder's writes always progress.
  bool ForwardWorkerFrame(const FrameHeader& fh,
                          const std::vector<uint8_t>& payload);
  void ForwarderLoop();
  void CloseSendSide();      // shuts channel write ends; children see EOF
  void ReapChildren();

  std::vector<std::unique_ptr<Channel>> channels_;  // from * size() + to
  std::vector<int> uplink_read_fds_;                // one per rank
  std::vector<pid_t> children_;
  std::vector<std::thread> receivers_;

  // Worker-to-worker re-injection (remote compute): receiver threads
  // enqueue, the forwarder thread drains with (safely) blocking writes.
  // Per-channel order is preserved: one queue, one drainer.
  struct ForwardJob {
    FrameHeader fh;
    std::vector<uint8_t> payload;
  };
  std::mutex fwd_mu_;
  std::condition_variable fwd_cv_;
  std::deque<ForwardJob> fwd_queue_;
  bool fwd_stop_ = false;
  std::thread forwarder_;

  // Flush barrier: frames accepted by Send vs. frames parsed into
  // mailboxes by receiver threads.
  std::mutex flush_mu_;
  std::condition_variable flush_cv_;
  std::atomic<uint64_t> frames_sent_{0};
  std::atomic<uint64_t> frames_delivered_{0};
  std::atomic<bool> broken_{false};  // endpoint died with frames in flight

  std::once_flag close_once_;
};

}  // namespace grape

#endif  // GRAPE_RT_SOCKET_TRANSPORT_H_
