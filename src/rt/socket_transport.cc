#include "rt/socket_transport.h"

#include <poll.h>
#include <signal.h>
#include <sys/socket.h>
#include <sys/wait.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <string>
#include <utility>

#include "core/codec.h"
#include "rt/fd_registry.h"
#include "rt/net_util.h"
#include "rt/remote_worker.h"
#include "rt/worker_protocol.h"

namespace grape {
namespace {

using net::ReadFullFd;
using net::RelayPayload;
using net::WriteFullFd;
using rt_internal::FdRegistry;
using rt_internal::FdRegistryMutex;
using rt_internal::CloseAndUnregisterFds;

// ---------------------------------------------------------------------------
// Endpoint child. Forked from a (possibly multi-threaded) parent. The
// relay path runs only async-signal-safe code: raw syscalls over memory
// preallocated before fork — no malloc, no stdio, no locks. The one
// exception is remote compute: the first worker-protocol frame
// (kTagWkLoad, sent only when the engine runs with
// EngineOptions::remote_app) lazily constructs a full C++ worker host in
// the child. That relies on glibc's fork handlers leaving malloc usable
// in the child of a multi-threaded parent — the same bet every
// fork-based worker system makes — and local-compute worlds never take
// the branch, so the strict AS-safe guarantee is unchanged for them.
// ---------------------------------------------------------------------------

/// Everything a child needs, sized and allocated before fork.
struct ChildPlan {
  uint32_t rank = 0;
  std::vector<int> in_fds;        // read ends of channels (*, rank)
  std::vector<struct pollfd> pfds;
  std::vector<int> pfd_idx;       // pfds position -> in_fds index
  std::vector<uint8_t> buf;       // payload relay chunks
  std::vector<int> close_fds;     // inherited fds this child must drop
  int uplink = -1;                // write end toward the parent receiver
};

/// Reads exactly `len` payload bytes into a fresh buffer (worker frames
/// are handed to the host whole, unlike relayed frames which stream).
bool ReadWholePayload(int fd, uint32_t len, std::vector<uint8_t>* out) {
  out->resize(len);
  return len == 0 || ReadFullFd(fd, out->data(), len) == 1;
}

/// The endpoint process: relays complete frames from the rank's per-peer
/// channels onto its uplink, preserving per-channel order, until every
/// channel reaches EOF (the parent closed its write ends). Worker-protocol
/// frames are not relayed: they drive this process's RemoteWorkerHost,
/// whose output frames (param updates, acks, partials) go up the uplink
/// tagged with their true destination — the parent receiver routes them.
[[noreturn]] void ChildMain(ChildPlan& plan) {
  for (int fd : plan.close_fds) close(fd);
  std::unique_ptr<RemoteWorkerHost> worker;
  for (;;) {
    nfds_t live = 0;
    for (size_t i = 0; i < plan.in_fds.size(); ++i) {
      if (plan.in_fds[i] < 0) continue;
      plan.pfds[live] = {plan.in_fds[i], POLLIN, 0};
      plan.pfd_idx[live] = static_cast<int>(i);
      ++live;
    }
    if (live == 0) _exit(0);
    int rc = poll(plan.pfds.data(), live, -1);
    if (rc < 0) {
      if (errno == EINTR) continue;
      _exit(1);
    }
    for (nfds_t j = 0; j < live; ++j) {
      if (plan.pfds[j].revents == 0) continue;
      const int i = plan.pfd_idx[j];
      const int fd = plan.in_fds[i];
      uint8_t header[kFrameHeaderBytes];
      int h = ReadFullFd(fd, header, sizeof(header));
      if (h == 0) {  // clean channel shutdown
        close(fd);
        plan.in_fds[i] = -1;
        continue;
      }
      if (h < 0) _exit(1);
      const uint32_t from = static_cast<uint32_t>(header[0]) |
                            static_cast<uint32_t>(header[1]) << 8 |
                            static_cast<uint32_t>(header[2]) << 16 |
                            static_cast<uint32_t>(header[3]) << 24;
      const uint32_t tag = static_cast<uint32_t>(header[8]) |
                           static_cast<uint32_t>(header[9]) << 8 |
                           static_cast<uint32_t>(header[10]) << 16 |
                           static_cast<uint32_t>(header[11]) << 24;
      const uint32_t len = static_cast<uint32_t>(header[12]) |
                           static_cast<uint32_t>(header[13]) << 8 |
                           static_cast<uint32_t>(header[14]) << 16 |
                           static_cast<uint32_t>(header[15]) << 24;
      if (len > kMaxFramePayloadBytes) _exit(1);
      if (IsWorkerTag(tag) && plan.rank != 0) {
        // Remote compute: this frame is FOR this endpoint, not a relay
        // (rank 0's endpoint fronts the engine and never hosts a worker).
        std::vector<uint8_t> payload;
        if (!ReadWholePayload(fd, len, &payload)) _exit(1);
        if (!worker) {
          const uint32_t rank = plan.rank;
          const int uplink = plan.uplink;
          worker = std::make_unique<RemoteWorkerHost>(
              rank, [rank, uplink](uint32_t to, uint32_t out_tag,
                                   std::vector<uint8_t> out_payload) {
                uint8_t out_header[kFrameHeaderBytes];
                EncodeFrameHeader(
                    FrameHeader{rank, to, out_tag,
                                static_cast<uint32_t>(out_payload.size())},
                    out_header);
                if (!WriteFullFd(uplink, out_header, sizeof(out_header)) ||
                    !WriteFullFd(uplink, out_payload.data(),
                                 out_payload.size())) {
                  return Status::IOError("endpoint uplink write failed");
                }
                return Status::OK();
              });
        }
        if (!worker->OnFrame(from, tag, std::move(payload)).ok()) _exit(1);
        continue;
      }
      if (!WriteFullFd(plan.uplink, header, sizeof(header))) _exit(1);
      if (!RelayPayload(fd, plan.uplink, plan.buf.data(), plan.buf.size(),
                        len)) {
        _exit(1);
      }
    }
  }
}

constexpr size_t kRelayChunkBytes = 64 * 1024;

}  // namespace

SocketTransport::SocketTransport(uint32_t size)
    : MailboxTransport(size) {
  channels_.reserve(static_cast<size_t>(size) * size);
  for (size_t i = 0; i < static_cast<size_t>(size) * size; ++i) {
    channels_.push_back(std::make_unique<Channel>());
  }
  uplink_read_fds_.assign(size, -1);
}

Result<std::unique_ptr<SocketTransport>> SocketTransport::Create(
    uint32_t size) {
  if (size == 0) {
    return Status::InvalidArgument("transport size must be positive");
  }
  std::unique_ptr<SocketTransport> t(new SocketTransport(size));
  GRAPE_RETURN_NOT_OK(t->Init());
  return t;
}

Status SocketTransport::Init() {
  const uint32_t n = size();
  // Held for the whole setup: other transports' registered fds are closed
  // by our children, and our fds are registered before anyone else forks.
  std::lock_guard<std::mutex> registry_lock(FdRegistryMutex());
  std::vector<int> chan_read(static_cast<size_t>(n) * n, -1);
  std::vector<int> chan_write(static_cast<size_t>(n) * n, -1);
  std::vector<int> up_read(n, -1);
  std::vector<int> up_write(n, -1);

  auto cleanup = [&](const std::string& what) {
    for (int fd : chan_read) {
      if (fd >= 0) close(fd);
    }
    for (int fd : chan_write) {
      if (fd >= 0) close(fd);
    }
    for (int fd : up_read) {
      if (fd >= 0) close(fd);
    }
    for (int fd : up_write) {
      if (fd >= 0) close(fd);
    }
    for (pid_t pid : children_) {
      kill(pid, SIGKILL);
      waitpid(pid, nullptr, 0);
    }
    children_.clear();
    return Status::IOError("socket transport setup failed: " + what + ": " +
                           std::strerror(errno));
  };

  for (size_t c = 0; c < chan_read.size(); ++c) {
    int sv[2];
    if (socketpair(AF_UNIX, SOCK_STREAM, 0, sv) != 0) {
      return cleanup("socketpair(channel)");
    }
    chan_read[c] = sv[0];
    chan_write[c] = sv[1];
  }
  for (uint32_t r = 0; r < n; ++r) {
    int sv[2];
    if (socketpair(AF_UNIX, SOCK_STREAM, 0, sv) != 0) {
      return cleanup("socketpair(uplink)");
    }
    up_read[r] = sv[0];
    up_write[r] = sv[1];
  }

  // Everything a child must NOT keep: computed per rank before its fork so
  // the child only closes fds, never allocates.
  std::vector<ChildPlan> plans(n);
  for (uint32_t r = 0; r < n; ++r) {
    ChildPlan& plan = plans[r];
    plan.rank = r;
    plan.in_fds.resize(n);
    plan.pfds.resize(n);
    plan.pfd_idx.resize(n);
    plan.buf.resize(kRelayChunkBytes);
    plan.uplink = up_write[r];
    for (uint32_t s = 0; s < n; ++s) {
      plan.in_fds[s] = chan_read[static_cast<size_t>(s) * n + r];
    }
    plan.close_fds.reserve(chan_read.size() + chan_write.size() + 2 * n +
                           FdRegistry().size());
    for (int fd : FdRegistry()) plan.close_fds.push_back(fd);
    for (size_t c = 0; c < chan_read.size(); ++c) {
      if (c % n != r) plan.close_fds.push_back(chan_read[c]);
      plan.close_fds.push_back(chan_write[c]);
    }
    for (uint32_t u = 0; u < n; ++u) {
      plan.close_fds.push_back(up_read[u]);
      if (u != r) plan.close_fds.push_back(up_write[u]);
    }
  }

  for (uint32_t r = 0; r < n; ++r) {
    pid_t pid = fork();
    if (pid < 0) return cleanup("fork(endpoint)");
    if (pid == 0) ChildMain(plans[r]);  // never returns
    children_.push_back(pid);
  }

  // Parent keeps only the channel write ends and the uplink read ends;
  // register them so later-created transports' children close them too.
  for (size_t c = 0; c < chan_read.size(); ++c) {
    close(chan_read[c]);
    channels_[c]->fd = chan_write[c];
    FdRegistry().insert(chan_write[c]);
  }
  for (uint32_t r = 0; r < n; ++r) {
    close(up_write[r]);
    uplink_read_fds_[r] = up_read[r];
    FdRegistry().insert(up_read[r]);
  }

  receivers_.reserve(n);
  for (uint32_t r = 0; r < n; ++r) {
    receivers_.emplace_back([this, r] { ReceiverLoop(r); });
  }
  forwarder_ = std::thread([this] { ForwarderLoop(); });
  return Status::OK();
}

SocketTransport::~SocketTransport() {
  Close();
  for (std::thread& t : receivers_) {
    if (t.joinable()) t.join();
  }
  if (forwarder_.joinable()) forwarder_.join();
  std::vector<int> closed;
  for (int& fd : uplink_read_fds_) {
    if (fd >= 0) {
      closed.push_back(fd);
      fd = -1;
    }
  }
  CloseAndUnregisterFds(closed);
  ReapChildren();
}

Status SocketTransport::Send(uint32_t from, uint32_t to, uint32_t tag,
                             std::vector<uint8_t> payload) {
  if (from >= size() || to >= size()) {
    return Status::InvalidArgument("rank out of range");
  }
  if (payload.size() > kMaxFramePayloadBytes) {
    return Status::InvalidArgument("payload exceeds the frame bound");
  }
  // broken_ before closed(): a dead endpoint marks the world closed too
  // (to unblock Recv), but the death is the recoverable condition and
  // must win the status race — Unavailable drives the engine's recovery
  // path, Cancelled is terminal.
  if (broken_.load(std::memory_order_acquire)) {
    return Status::Unavailable("socket transport endpoint died");
  }
  if (closed()) return Status::Cancelled("transport closed");

  uint8_t header[kFrameHeaderBytes];
  EncodeFrameHeader(
      FrameHeader{from, to, tag, static_cast<uint32_t>(payload.size())},
      header);
  Channel& ch = *channels_[static_cast<size_t>(from) * size() + to];
  {
    std::lock_guard<std::mutex> lock(ch.mu);
    if (ch.fd < 0) return Status::Cancelled("transport closed");
    // Count the frame as sent BEFORE it hits the wire: a concurrently
    // delivered frame must never let Flush observe delivered >= sent
    // while a Send that already returned is still in flight. A failed
    // write leaves sent permanently ahead of delivered, which is fine —
    // broken_ short-circuits the Flush predicate. Worker-protocol frames
    // are excluded: they terminate inside the endpoint (or answer from
    // it), so they can never balance the barrier.
    if (!IsWorkerTag(tag)) {
      frames_sent_.fetch_add(1, std::memory_order_acq_rel);
    }
    if (!WriteFullFd(ch.fd, header, sizeof(header)) ||
        !WriteFullFd(ch.fd, payload.data(), payload.size())) {
      broken_.store(true, std::memory_order_release);
      {
        std::lock_guard<std::mutex> flush_lock(flush_mu_);
      }
      flush_cv_.notify_all();  // wake any Flush blocked on this frame
      // A write failure here is EPIPE from a dead peer — the same
      // recoverable condition the receiver loop detects, just caught
      // mid-send before broken_ was observed.
      return Status::Unavailable("socket transport write failed");
    }
  }
  CountSendTagged(tag, payload.size());
  // The frame is on the wire; the payload buffer can cycle immediately.
  buffer_pool().Release(std::move(payload));
  return Status::OK();
}

void SocketTransport::ReceiverLoop(uint32_t rank) {
  const int fd = uplink_read_fds_[rank];
  uint8_t header[kFrameHeaderBytes];
  bool clean = true;
  for (;;) {
    int h = ReadFullFd(fd, header, sizeof(header));
    if (h == 0) {
      // EOF is clean only after Close(): an endpoint never closes its
      // uplink while the world is live, so a premature EOF — even on a
      // frame boundary (e.g. the endpoint was SIGKILLed between frames)
      // — means delivery stopped and Flush must fail, not hang.
      clean = closed();
      break;
    }
    if (h < 0) {
      clean = false;
      break;
    }
    FrameHeader fh;
    if (!DecodeFrameHeader(header, sizeof(header), &fh).ok()) {
      clean = false;
      break;
    }
    const bool to_self = fh.to == rank;
    // Worker-host output leaves the endpoint through its own uplink with
    // the true destination in the header: acks/updates for the engine
    // (to == 0) and direct mirror refreshes for peer workers, which the
    // parent re-injects into the (from, to) channel so the destination
    // endpoint's worker consumes them.
    const bool worker_origin =
        !to_self && IsWorkerTag(fh.tag) && fh.from == rank && fh.to < size();
    if (!to_self && !worker_origin) {
      clean = false;
      break;
    }
    std::vector<uint8_t> payload = buffer_pool().Acquire();
    payload.resize(fh.payload_len);
    if (fh.payload_len > 0 &&
        ReadFullFd(fd, payload.data(), fh.payload_len) != 1) {
      clean = false;
      break;
    }
    if (worker_origin && fh.to != kCoordinatorRank) {
      // Hand off to the forwarder thread: the channel write can block on
      // a full buffer, and a blocked receiver would wedge the world (see
      // ForwardWorkerFrame). Unbounded queue, but bounded in practice by
      // one round's direct traffic.
      {
        std::lock_guard<std::mutex> lock(fwd_mu_);
        fwd_queue_.push_back(ForwardJob{fh, std::move(payload)});
      }
      fwd_cv_.notify_one();
      continue;
    }
    Deliver(RtMessage{fh.from, fh.to, fh.tag, std::move(payload)});
    if (!IsWorkerTag(fh.tag)) {
      // Worker-protocol frames never entered the sent side of the Flush
      // barrier, so they must not advance the delivered side either.
      {
        std::lock_guard<std::mutex> lock(flush_mu_);
        frames_delivered_.fetch_add(1, std::memory_order_acq_rel);
      }
      flush_cv_.notify_all();
    }
  }
  if (!clean) {
    broken_.store(true, std::memory_order_release);
    MarkClosed();  // a broken substrate must not leave Recv blocked
  }
  {
    std::lock_guard<std::mutex> lock(flush_mu_);
  }
  flush_cv_.notify_all();
}

bool SocketTransport::ForwardWorkerFrame(const FrameHeader& fh,
                                         const std::vector<uint8_t>& payload) {
  Channel& ch = *channels_[static_cast<size_t>(fh.from) * size() + fh.to];
  std::lock_guard<std::mutex> lock(ch.mu);
  if (ch.fd < 0) return false;
  uint8_t header[kFrameHeaderBytes];
  EncodeFrameHeader(fh, header);
  return WriteFullFd(ch.fd, header, sizeof(header)) &&
         (payload.empty() ||
          WriteFullFd(ch.fd, payload.data(), payload.size()));
}

void SocketTransport::ForwarderLoop() {
  for (;;) {
    ForwardJob job;
    {
      std::unique_lock<std::mutex> lock(fwd_mu_);
      fwd_cv_.wait(lock, [this] { return fwd_stop_ || !fwd_queue_.empty(); });
      if (fwd_queue_.empty()) return;  // stop requested and drained
      job = std::move(fwd_queue_.front());
      fwd_queue_.pop_front();
    }
    if (!ForwardWorkerFrame(job.fh, job.payload)) {
      // Channel gone mid-world: same treatment as a dead endpoint. On a
      // clean Close the fd check fails before any write, and closed()
      // already shields Flush/Recv, so this only bites a live world.
      if (!closed()) {
        broken_.store(true, std::memory_order_release);
        MarkClosed();
        {
          std::lock_guard<std::mutex> lock(flush_mu_);
        }
        flush_cv_.notify_all();
      }
      return;
    }
    buffer_pool().Release(std::move(job.payload));
  }
}

Status SocketTransport::Flush() {
  std::unique_lock<std::mutex> lock(flush_mu_);
  flush_cv_.wait(lock, [this] {
    return broken_.load(std::memory_order_acquire) || closed() ||
           frames_delivered_.load(std::memory_order_acquire) >=
               frames_sent_.load(std::memory_order_acquire);
  });
  if (broken_.load(std::memory_order_acquire)) {
    return Status::Unavailable("socket transport endpoint died in flight");
  }
  if (closed()) return Status::Cancelled("transport closed");
  return Status::OK();
}

void SocketTransport::Close() {
  std::call_once(close_once_, [this] {
    MarkClosed();
    CloseSendSide();
    {
      std::lock_guard<std::mutex> lock(flush_mu_);
    }
    flush_cv_.notify_all();
    {
      std::lock_guard<std::mutex> lock(fwd_mu_);
      fwd_stop_ = true;
    }
    fwd_cv_.notify_all();
  });
}

void SocketTransport::CloseSendSide() {
  // Deregister in the same registry-locked step as the close: a later
  // Create could be handed the same fd number by the kernel the moment
  // it closes, and a stale registry entry (or a late erase hitting the
  // new owner's registration) would make some transport's children
  // mishandle a channel that is not theirs.
  std::vector<int> closed;
  for (auto& ch : channels_) {
    std::lock_guard<std::mutex> lock(ch->mu);
    if (ch->fd >= 0) {
      closed.push_back(ch->fd);
      ch->fd = -1;
    }
  }
  CloseAndUnregisterFds(closed);
}

void SocketTransport::ReapChildren() {
  for (pid_t pid : children_) {
    waitpid(pid, nullptr, 0);
  }
  children_.clear();
}

Status SocketTransport::Recover() {
  // Kill whatever endpoints are still alive: recovery rebuilds the whole
  // world from fresh forks, so survivors of the broken world must not
  // keep reading the old channels (and their death EOFs the uplinks,
  // unblocking the receiver threads below).
  for (pid_t pid : children_) kill(pid, SIGKILL);
  // Stop the forwarder without draining: its writes target dead channels.
  {
    std::lock_guard<std::mutex> lock(fwd_mu_);
    for (ForwardJob& job : fwd_queue_) {
      buffer_pool().Release(std::move(job.payload));
    }
    fwd_queue_.clear();
    fwd_stop_ = true;
  }
  fwd_cv_.notify_all();
  if (forwarder_.joinable()) forwarder_.join();
  // Deliberately NOT Close(): close_once_ must stay armed so the eventual
  // final Close still tears down the world Init() rebuilds below. The
  // manual sequence covers the same ground.
  MarkClosed();
  CloseSendSide();
  {
    std::lock_guard<std::mutex> lock(flush_mu_);
  }
  flush_cv_.notify_all();
  for (std::thread& t : receivers_) {
    if (t.joinable()) t.join();
  }
  receivers_.clear();
  std::vector<int> closed_fds;
  for (int& fd : uplink_read_fds_) {
    if (fd >= 0) {
      closed_fds.push_back(fd);
      fd = -1;
    }
  }
  CloseAndUnregisterFds(closed_fds);
  ReapChildren();
  // Back to just-constructed state, then bring up the fresh world.
  {
    std::lock_guard<std::mutex> lock(fwd_mu_);
    fwd_stop_ = false;
  }
  frames_sent_.store(0, std::memory_order_release);
  frames_delivered_.store(0, std::memory_order_release);
  broken_.store(false, std::memory_order_release);
  ResetForRecovery();  // empties mailboxes, clears the closed flag
  return Init();
}

}  // namespace grape
