#include "serve/serve.h"

#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdio>
#include <cstring>
#include <deque>
#include <mutex>
#include <optional>
#include <thread>
#include <utility>
#include <vector>

#include "apps/cc.h"
#include "apps/ms_bfs.h"
#include "apps/ms_sssp.h"
#include "apps/pagerank.h"
#include "core/engine.h"
#include "rt/frame_decoder.h"
#include "rt/net_util.h"
#include "rt/remote_worker.h"

namespace grape {

namespace {

/// Stash-token namespace for coordinator-loaded epochs, far away from the
/// tokens distributed builds mint, so a serve epoch can never collide with
/// a build that ran earlier on the same world.
constexpr uint64_t kSvResidentTokenBase = 0x5345525645ull << 16;  // "SERVE"

}  // namespace

struct ServeServer::Impl {
  // ------------------------------------------------------------ plumbing

  struct Connection {
    int fd = -1;
    std::mutex write_mu;
    std::atomic<bool> open{true};
  };

  struct PendingRequest {
    std::shared_ptr<Connection> conn;
    uint32_t request_id = 0;
    uint32_t tag = 0;
    std::vector<uint8_t> payload;
  };

  enum Class { kNone, kSssp, kBfs, kCc, kPageRank };

  explicit Impl(ServeOptions options) : options_(std::move(options)) {}

  ~Impl() { Shutdown(); }

  // -------------------------------------------------------------- control

  Status Start() {
    if (options_.transport == nullptr) {
      return Status::InvalidArgument("ServeOptions::transport is required");
    }
    if (options_.num_fragments == 0) {
      return Status::InvalidArgument("ServeOptions::num_fragments must be > 0");
    }
    const bool coord = static_cast<bool>(options_.load_coordinator);
    const bool dist = static_cast<bool>(options_.load_distributed);
    if (coord == dist) {
      return Status::InvalidArgument(
          "set exactly one of load_coordinator / load_distributed");
    }
    GRAPE_RETURN_NOT_OK(LoadEpoch());

    // Client listener: loopback only — the serve protocol authenticates
    // nothing; exposure beyond the host is the operator's business (ssh
    // tunnel, reverse proxy), not a default.
    listen_fd_ = socket(AF_INET, SOCK_STREAM, 0);
    if (listen_fd_ < 0) {
      return Status::IOError(std::string("serve listener socket: ") +
                             std::strerror(errno));
    }
    int one = 1;
    setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
    sockaddr_in baddr{};
    baddr.sin_family = AF_INET;
    baddr.sin_port = htons(options_.listen_port);
    baddr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    if (bind(listen_fd_, reinterpret_cast<const sockaddr*>(&baddr),
             sizeof(baddr)) != 0 ||
        listen(listen_fd_, 64) != 0) {
      Status st = Status::IOError(std::string("serve listener: ") +
                                  std::strerror(errno));
      close(listen_fd_);
      listen_fd_ = -1;
      return st;
    }
    sockaddr_in bound{};
    socklen_t blen = sizeof(bound);
    if (getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&bound), &blen) !=
        0) {
      close(listen_fd_);
      listen_fd_ = -1;
      return Status::IOError("serve listener getsockname failed");
    }
    port_ = ntohs(bound.sin_port);

    accept_thread_ = std::thread([this] { AcceptLoop(); });
    dispatcher_thread_ = std::thread([this] { DispatcherLoop(); });
    started_ = true;
    if (options_.verbose) {
      std::fprintf(stderr, "grape_serve: serving on 127.0.0.1:%u (epoch %llu)\n",
                   port_, static_cast<unsigned long long>(epoch_.load()));
    }
    return Status::OK();
  }

  void Shutdown() {
    bool expected = false;
    if (!shut_.compare_exchange_strong(expected, true)) return;
    stop_.store(true);
    {
      std::lock_guard<std::mutex> lk(qu_mu_);
    }
    qu_cv_.notify_all();
    if (listen_fd_ >= 0) {
      ::shutdown(listen_fd_, SHUT_RDWR);
      close(listen_fd_);
      listen_fd_ = -1;
    }
    {
      std::lock_guard<std::mutex> lk(conns_mu_);
      for (auto& conn : conns_) {
        if (conn->fd >= 0) ::shutdown(conn->fd, SHUT_RDWR);
      }
    }
    if (accept_thread_.joinable()) accept_thread_.join();
    // No new readers can be spawned once the accept thread is gone.
    for (auto& t : reader_threads_) {
      if (t.joinable()) t.join();
    }
    if (dispatcher_thread_.joinable()) dispatcher_thread_.join();
    for (auto& conn : conns_) {
      if (conn->fd >= 0) {
        close(conn->fd);
        conn->fd = -1;
      }
    }
    SwitchClass(kNone);  // retire the live worker session
  }

  // ---------------------------------------------------------- graph epoch

  /// Loads the next epoch: tears the per-class engines down, runs the
  /// loader, rebuilds, primes residency. On failure the server keeps its
  /// (bumped) epoch but no engines — queries error until a reload works.
  Status LoadEpoch() {
    SwitchClass(kNone);
    sssp_.reset();
    bfs_.reset();
    cc_.reset();
    pr_.reset();
    cc_cache_.reset();
    pr_cache_.reset();
    mut_seq_ = 0;  // versions are (epoch << 32) | seq; a new epoch restarts seq
    const uint64_t old_token = token_;

    EngineOptions base;
    base.transport = options_.transport;
    base.compute_threads = options_.compute_threads;

    if (options_.load_coordinator) {
      auto fg = options_.load_coordinator();
      GRAPE_RETURN_NOT_OK(fg.status());
      fg_ = std::move(fg).value();
      epoch_.fetch_add(1);
      token_ = kSvResidentTokenBase + epoch_.load();

      meta_ = DistributedGraphMeta{};
      meta_.token = token_;
      meta_.num_fragments = fg_.num_fragments();
      meta_.total_vertices = fg_.total_vertices;
      meta_.directed = fg_.directed;
      for (const Fragment& f : fg_.fragments) {
        meta_.shapes.push_back(
            FragmentShape{f.num_inner(), f.num_local(), f.num_edges()});
      }

      // The SSSP engine is the epoch's stasher: its first load ships each
      // fragment with the epoch token and the worker deposits it in its
      // ResidentFragmentStore. Every other class attaches by token only.
      EngineOptions eo = base;
      eo.remote_app = "ms_sssp";
      eo.resident_stash_token = token_;
      sssp_ = std::make_unique<GrapeEngine<MsSsspApp>>(fg_, MsSsspApp{}, eo);
    } else {
      auto meta = options_.load_distributed(options_.transport);
      GRAPE_RETURN_NOT_OK(meta.status());
      meta_ = std::move(meta).value();
      fg_ = FragmentedGraph{};
      epoch_.fetch_add(1);
      token_ = meta_.token;

      EngineOptions eo = base;
      eo.remote_app = "ms_sssp";
      sssp_ = std::make_unique<GrapeEngine<MsSsspApp>>(meta_, eo);
    }

    EngineOptions eo = base;
    eo.remote_app = "ms_bfs";
    bfs_ = std::make_unique<GrapeEngine<MsBfsApp>>(meta_, eo);
    eo.remote_app = "cc";
    cc_ = std::make_unique<GrapeEngine<CcApp>>(meta_, eo);
    eo.remote_app = "pagerank";
    pr_ = std::make_unique<GrapeEngine<PageRankApp>>(meta_, eo);

    // Prime: a zero-lane wave through the stashing engine makes the
    // fragments resident before any attach-by-token class can load, and
    // leaves the SSSP session warm for the first real query. (Under
    // distributed loading the build already deposited the fragments, so
    // this only warms the session.)
    auto primed = sssp_->SessionRun(MsSsspQuery{});
    GRAPE_RETURN_NOT_OK(primed.status());
    active_ = kSssp;

    // The previous epoch's fragments are dead weight now. Erase reaches
    // in-process stores (inproc worlds); forked endpoints free theirs when
    // the next load at each rank drops the last shared_ptr.
    if (old_token != 0) ResidentFragmentStore::Global().Erase(old_token);
    if (options_.verbose) {
      std::fprintf(stderr,
                   "grape_serve: epoch %llu loaded (%u fragments, token %llx)\n",
                   static_cast<unsigned long long>(epoch_.load()),
                   meta_.num_fragments,
                   static_cast<unsigned long long>(token_));
    }
    return Status::OK();
  }

  /// One live query session per world: retire the active class's session
  /// before another class (or a reload, or shutdown) touches the
  /// mailboxes.
  void SwitchClass(Class next) {
    if (active_ == next) return;
    switch (active_) {
      case kSssp:
        if (sssp_) sssp_->EndSession();
        break;
      case kBfs:
        if (bfs_) bfs_->EndSession();
        break;
      case kCc:
        if (cc_) cc_->EndSession();
        break;
      case kPageRank:
        if (pr_) pr_->EndSession();
        break;
      case kNone:
        break;
    }
    active_ = next;
  }

  // ------------------------------------------------------------ listener

  void AcceptLoop() {
    for (;;) {
      sockaddr_in addr{};
      socklen_t alen = sizeof(addr);
      int fd = accept(listen_fd_, reinterpret_cast<sockaddr*>(&addr), &alen);
      if (fd < 0) {
        if (errno == EINTR && !stop_.load()) continue;
        break;
      }
      if (stop_.load()) {
        close(fd);
        break;
      }
      int one = 1;
      setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
      auto conn = std::make_shared<Connection>();
      conn->fd = fd;
      std::lock_guard<std::mutex> lk(conns_mu_);
      conns_.push_back(conn);
      reader_threads_.emplace_back(
          [this, conn]() mutable { ReaderLoop(std::move(conn)); });
    }
  }

  void ReaderLoop(std::shared_ptr<Connection> conn) {
    FrameDecoder decoder;
    decoder.set_max_payload_bytes(options_.max_client_frame_bytes);
    std::vector<uint8_t> buf(64 * 1024);
    bool fatal = false;
    while (!stop_.load() && !fatal) {
      ssize_t k = read(conn->fd, buf.data(), buf.size());
      if (k == 0) break;
      if (k < 0) {
        if (errno == EINTR) continue;
        break;
      }
      if (!decoder.Feed(buf.data(), static_cast<size_t>(k)).ok()) {
        // Oversized or garbage frame: one error frame, then the
        // connection dies — the stream has lost sync, so nothing later
        // on it can be trusted.
        rejected_frames_.fetch_add(1);
        SendError(*conn, 0, decoder.status());
        fatal = true;
        break;
      }
      while (auto msg = decoder.Next()) {
        if (!IsServeRequestTag(msg->tag)) {
          rejected_frames_.fetch_add(1);
          SendError(*conn, msg->from,
                    Status::InvalidArgument("unknown request tag " +
                                            std::to_string(msg->tag)));
          fatal = true;
          break;
        }
        if ((msg->tag == kTagSvReload || msg->tag == kTagSvMutate) &&
            wave_active_.load()) {
          // The transition is not lost — it waits in FIFO order behind
          // the wave — but the deferral is observable (epoch transitions
          // serialize against in-flight waves, never under them).
          deferred_transitions_.fetch_add(1);
        }
        {
          std::lock_guard<std::mutex> lk(qu_mu_);
          queue_.push_back(PendingRequest{conn, msg->from, msg->tag,
                                          std::move(msg->payload)});
        }
        qu_cv_.notify_one();
      }
    }
    ::shutdown(conn->fd, SHUT_RDWR);
    conn->open.store(false);
  }

  // ----------------------------------------------------------- responses

  void SendFrame(Connection& conn, uint32_t request_id, uint32_t tag,
                 const std::vector<uint8_t>& payload) {
    FrameHeader h;
    h.from = request_id;
    h.to = 0;
    h.tag = tag;
    h.payload_len = static_cast<uint32_t>(payload.size());
    uint8_t hdr[kFrameHeaderBytes];
    EncodeFrameHeader(h, hdr);
    std::lock_guard<std::mutex> lk(conn.write_mu);
    if (!conn.open.load()) return;
    if (!net::WriteFullFd(conn.fd, hdr, sizeof(hdr)) ||
        (!payload.empty() &&
         !net::WriteFullFd(conn.fd, payload.data(), payload.size()))) {
      conn.open.store(false);
    }
  }

  void SendOk(const PendingRequest& req, std::vector<uint8_t> payload) {
    queries_.fetch_add(1);
    SendFrame(*req.conn, req.request_id, kTagSvOk, payload);
  }

  void SendError(Connection& conn, uint32_t request_id, const Status& error) {
    errors_.fetch_add(1);
    Encoder enc;
    EncodeServeError(enc, error);
    SendFrame(conn, request_id, kTagSvError, enc.buffer());
  }

  void FailBatch(const std::vector<PendingRequest>& batch,
                 const Status& error) {
    for (const PendingRequest& req : batch) {
      queries_.fetch_add(1);
      SendError(*req.conn, req.request_id, error);
    }
  }

  // ----------------------------------------------------------- dispatcher

  void DispatcherLoop() {
    std::unique_lock<std::mutex> lk(qu_mu_);
    while (!stop_.load()) {
      qu_cv_.wait(lk, [this] { return stop_.load() || !queue_.empty(); });
      if (stop_.load()) break;
      std::vector<PendingRequest> batch;
      batch.push_back(std::move(queue_.front()));
      queue_.pop_front();
      const uint32_t tag = batch[0].tag;
      const bool batchable = tag == kTagSvSssp || tag == kTagSvBfs ||
                             tag == kTagSvCcLabel || tag == kTagSvPageRank;
      if (batchable && options_.batch_window_ms > 0 && options_.max_batch > 1) {
        // Admission window: same-class arrivals within it fuse into one
        // wave. Different-class requests stay queued in order.
        const auto deadline =
            std::chrono::steady_clock::now() +
            std::chrono::milliseconds(options_.batch_window_ms);
        for (;;) {
          DrainSameTag(tag, &batch);
          if (batch.size() >= options_.max_batch || stop_.load()) break;
          if (qu_cv_.wait_until(lk, deadline) == std::cv_status::timeout) {
            DrainSameTag(tag, &batch);
            break;
          }
        }
      }
      lk.unlock();
      Execute(tag, batch);
      lk.lock();
    }
  }

  void DrainSameTag(uint32_t tag, std::vector<PendingRequest>* batch) {
    for (auto it = queue_.begin();
         it != queue_.end() && batch->size() < options_.max_batch;) {
      if (it->tag == tag) {
        batch->push_back(std::move(*it));
        it = queue_.erase(it);
      } else {
        ++it;
      }
    }
  }

  void Execute(uint32_t tag, std::vector<PendingRequest>& batch) {
    switch (tag) {
      case kTagSvPing: {
        for (const PendingRequest& req : batch) SendOk(req, {});
        return;
      }
      case kTagSvReload: {
        ExecuteReload(batch);
        return;
      }
      case kTagSvMutate: {
        ExecuteMutate(batch);
        return;
      }
      case kTagSvSssp: {
        WaveGuard g(this);
        ExecuteWave<MsSsspApp>(batch, sssp_.get(), kSssp,
                               [](MsSsspOutput&& out) {
                                 return std::move(out.dist);
                               });
        return;
      }
      case kTagSvBfs: {
        WaveGuard g(this);
        ExecuteWave<MsBfsApp>(batch, bfs_.get(), kBfs, [](MsBfsOutput&& out) {
          return std::move(out.depth);
        });
        return;
      }
      case kTagSvCcLabel: {
        WaveGuard g(this);
        ExecuteCached<CcApp>(batch, cc_.get(), kCc, CcQuery{}, &cc_cache_,
                             [](CcOutput&& out) { return std::move(out.label); });
        return;
      }
      case kTagSvPageRank: {
        WaveGuard g(this);
        ExecuteCached<PageRankApp>(
            batch, pr_.get(), kPageRank, PageRankQuery{}, &pr_cache_,
            [](PageRankOutput&& out) { return std::move(out.rank); });
        return;
      }
      default: {
        FailBatch(batch, Status::Internal("dispatcher saw unknown tag"));
        return;
      }
    }
  }

  void ExecuteReload(std::vector<PendingRequest>& batch) {
    Status s = LoadEpoch();
    if (!s.ok()) {
      FailBatch(batch, s);
      return;
    }
    reloads_.fetch_add(1);
    Encoder enc;
    enc.WriteU64(epoch_.load());
    for (const PendingRequest& req : batch) SendOk(req, enc.buffer());
  }

  /// Epoch transitions (reload, mutation) only ever run here, on the
  /// dispatcher thread, BETWEEN waves: a transition frame that arrives
  /// while a wave executes waits in the admission queue (counted as
  /// deferred), so fragments are never swapped and the epoch never bumps
  /// under a running engine session. WaveGuard makes the invariant
  /// observable to the reader threads.
  struct WaveGuard {
    explicit WaveGuard(Impl* impl) : impl_(impl) {
      impl_->wave_active_.store(true);
    }
    ~WaveGuard() { impl_->wave_active_.store(false); }
    Impl* impl_;
  };

  void ExecuteMutate(std::vector<PendingRequest>& batch) {
    // Mutations are never fused: each batch is one version step and the
    // order of consecutive batches is part of the contract (the
    // dispatcher admits them one at a time).
    for (PendingRequest& req : batch) {
      MutationBatch m;
      Decoder dec(req.payload);
      Status s = MutationBatch::DecodeFrom(dec, &m);
      if (s.ok() && !dec.AtEnd()) {
        s = Status::Corruption("trailing bytes after mutation batch");
      }
      if (s.ok()) {
        Result<uint64_t> version = ApplyOneMutation(m);
        if (version.ok()) {
          mutations_.fetch_add(1);
          Encoder enc;
          enc.WriteU64(*version);
          SendOk(req, enc.TakeBuffer());
          continue;
        }
        s = version.status();
      }
      queries_.fetch_add(1);
      SendError(*req.conn, req.request_id, s);
    }
  }

  /// One mutation batch, end to end: rank 0's copy first (coordinator
  /// mode), then the resident fragments inside the endpoints through the
  /// active class's live session, then routing-slot refresh of every
  /// engine and standing-answer maintenance. Returns the new version,
  /// (epoch << 32) | intra-epoch sequence.
  Result<uint64_t> ApplyOneMutation(const MutationBatch& m) {
    if (!sssp_) {
      return Status::FailedPrecondition(
          "no loaded graph (did the last reload fail?)");
    }
    GRAPE_RETURN_NOT_OK(m.Validate(meta_.total_vertices));

    // Coordinator mode keeps rank 0's FragmentedGraph in lockstep: a
    // later cold load re-ships fg_ under the epoch token, and shipping
    // the pre-mutation graph would silently roll the endpoints back.
    if (options_.load_coordinator) {
      GRAPE_RETURN_NOT_OK(FragmentBuilder::MutateFragmentedGraph(&fg_, m));
    }

    // The mutation frames ride the one live session (the active
    // class's). When CC itself carries the batch its standing answer can
    // additionally be refreshed by a bounded delta below.
    bool cc_carried = false;
    Result<std::vector<WkBuildAck>> shapes =
        Status::FailedPrecondition("no live session");
    switch (active_) {
      case kSssp:
        shapes = sssp_->ApplyMutations(m);
        break;
      case kBfs:
        shapes = bfs_->ApplyMutations(m);
        break;
      case kCc:
        cc_carried = true;
        shapes = cc_->ApplyMutations(m);
        break;
      case kPageRank:
        shapes = pr_->ApplyMutations(m);
        break;
      case kNone:
        break;
    }
    if (!shapes.ok() &&
        shapes.status().code() == StatusCode::kFailedPrecondition) {
      // No live session (fresh kNone, or the last wave failed and tore
      // its session down): prime a zero-lane SSSP wave to make one.
      SwitchClass(kNone);
      SwitchClass(kSssp);
      GRAPE_RETURN_NOT_OK(sssp_->SessionRun(MsSsspQuery{}).status());
      cc_carried = false;
      shapes = sssp_->ApplyMutations(m);
    }
    GRAPE_RETURN_NOT_OK(shapes.status());

    // Every fragment was rebuilt: new shapes for the metadata and for
    // every engine's routing slots. The applier refreshed its own inside
    // ApplyMutations; the call is idempotent, so refresh all four.
    for (FragmentId i = 0; i < meta_.num_fragments; ++i) {
      const WkBuildAck& a = (*shapes)[i];
      meta_.shapes[i] = FragmentShape{a.num_inner, a.num_local, a.num_arcs};
    }
    sssp_->RefreshShapes(*shapes);
    if (bfs_) bfs_->RefreshShapes(*shapes);
    if (cc_) cc_->RefreshShapes(*shapes);
    if (pr_) pr_->RefreshShapes(*shapes);

    // Standing answers: PageRank is non-monotonic, so its cache can only
    // be invalidated. CC refreshes through the bounded delta when its own
    // warm session carried the batch and the batch is insertion-only; any
    // other combination invalidates precisely and the next read
    // recomputes.
    pr_cache_.reset();
    if (cc_carried && cc_cache_.has_value() && !m.has_deletions()) {
      auto out = cc_->RunIncremental(CcQuery{}, m);
      if (out.ok()) {
        waves_.fetch_add(1);
        delta_refreshes_.fetch_add(1);
        cc_cache_.emplace(std::move(out->label));
      } else {
        cc_cache_.reset();
      }
    } else {
      cc_cache_.reset();
    }
    return (epoch_.load() << 32) | static_cast<uint64_t>(++mut_seq_);
  }

  /// Fused multi-source wave: one lane per admitted request, answers split
  /// back per lane. Lane k's bits equal a standalone single-source run's
  /// (apps/ms_sssp.h), so fusion is invisible to clients.
  template <typename App, typename Split>
  void ExecuteWave(std::vector<PendingRequest>& batch,
                   GrapeEngine<App>* engine, Class cls, Split split) {
    if (engine == nullptr) {
      FailBatch(batch, Status::FailedPrecondition(
                           "no loaded graph (did the last reload fail?)"));
      return;
    }
    typename App::QueryType query;
    std::vector<PendingRequest> admitted;
    admitted.reserve(batch.size());
    for (PendingRequest& req : batch) {
      Decoder dec(req.payload);
      uint32_t source = 0;
      if (!dec.ReadU32(&source).ok()) {
        queries_.fetch_add(1);
        SendError(*req.conn, req.request_id,
                  Status::InvalidArgument("query payload: expected u32 source"));
        continue;
      }
      query.sources.push_back(source);
      admitted.push_back(std::move(req));
    }
    if (admitted.empty()) return;
    SwitchClass(cls);
    auto out = engine->SessionRun(query);
    if (!out.ok()) {
      FailBatch(admitted, out.status());
      return;
    }
    waves_.fetch_add(1);
    if (admitted.size() >= 2) fused_queries_.fetch_add(admitted.size());
    auto lanes = split(std::move(out).value());
    for (size_t k = 0; k < admitted.size(); ++k) {
      Encoder enc;
      enc.WritePodVector(lanes[k]);
      SendOk(admitted[k], enc.TakeBuffer());
    }
  }

  /// CC / PageRank: the answer is a property of the graph, so the first
  /// read of an epoch computes it and every later read is a cache hit
  /// until a reload invalidates.
  template <typename App, typename Cache, typename Extract>
  void ExecuteCached(std::vector<PendingRequest>& batch,
                     GrapeEngine<App>* engine, Class cls,
                     typename App::QueryType query,
                     std::optional<Cache>* cache, Extract extract) {
    if (engine == nullptr) {
      FailBatch(batch, Status::FailedPrecondition(
                           "no loaded graph (did the last reload fail?)"));
      return;
    }
    if (!cache->has_value()) {
      SwitchClass(cls);
      auto out = engine->SessionRun(query);
      if (!out.ok()) {
        FailBatch(batch, out.status());
        return;
      }
      waves_.fetch_add(1);
      cache->emplace(extract(std::move(out).value()));
    } else {
      cache_hits_.fetch_add(batch.size());
    }
    Encoder enc;
    enc.WritePodVector(cache->value());
    for (const PendingRequest& req : batch) SendOk(req, enc.buffer());
  }

  // -------------------------------------------------------------- members

  ServeOptions options_;

  // Graph epoch state (dispatcher-owned after Start).
  FragmentedGraph fg_;
  DistributedGraphMeta meta_;
  uint64_t token_ = 0;
  std::atomic<uint64_t> epoch_{0};
  std::unique_ptr<GrapeEngine<MsSsspApp>> sssp_;
  std::unique_ptr<GrapeEngine<MsBfsApp>> bfs_;
  std::unique_ptr<GrapeEngine<CcApp>> cc_;
  std::unique_ptr<GrapeEngine<PageRankApp>> pr_;
  Class active_ = kNone;
  std::optional<std::vector<VertexId>> cc_cache_;
  std::optional<std::vector<double>> pr_cache_;

  // Listener / connections.
  int listen_fd_ = -1;
  uint16_t port_ = 0;
  bool started_ = false;
  std::atomic<bool> stop_{false};
  std::atomic<bool> shut_{false};
  std::thread accept_thread_;
  std::thread dispatcher_thread_;
  std::mutex conns_mu_;
  std::vector<std::shared_ptr<Connection>> conns_;
  std::vector<std::thread> reader_threads_;

  // Admission queue.
  std::mutex qu_mu_;
  std::condition_variable qu_cv_;
  std::deque<PendingRequest> queue_;

  // Mutation versioning (dispatcher-owned): intra-epoch sequence of
  // applied batches.
  uint32_t mut_seq_ = 0;
  // True while the dispatcher is inside a superstep wave; reader threads
  // consult it to count deferred epoch transitions.
  std::atomic<bool> wave_active_{false};

  // Stats.
  std::atomic<uint64_t> queries_{0};
  std::atomic<uint64_t> waves_{0};
  std::atomic<uint64_t> fused_queries_{0};
  std::atomic<uint64_t> cache_hits_{0};
  std::atomic<uint64_t> errors_{0};
  std::atomic<uint64_t> rejected_frames_{0};
  std::atomic<uint64_t> reloads_{0};
  std::atomic<uint64_t> mutations_{0};
  std::atomic<uint64_t> deferred_transitions_{0};
  std::atomic<uint64_t> delta_refreshes_{0};
};

ServeServer::ServeServer(ServeOptions options)
    : impl_(std::make_unique<Impl>(std::move(options))) {}

ServeServer::~ServeServer() = default;

Status ServeServer::Start() { return impl_->Start(); }

uint16_t ServeServer::port() const { return impl_->port_; }

uint64_t ServeServer::epoch() const { return impl_->epoch_.load(); }

ServeStats ServeServer::stats() const {
  ServeStats s;
  s.queries = impl_->queries_.load();
  s.waves = impl_->waves_.load();
  s.fused_queries = impl_->fused_queries_.load();
  s.cache_hits = impl_->cache_hits_.load();
  s.errors = impl_->errors_.load();
  s.rejected_frames = impl_->rejected_frames_.load();
  s.reloads = impl_->reloads_.load();
  s.mutations = impl_->mutations_.load();
  s.deferred_transitions = impl_->deferred_transitions_.load();
  s.delta_refreshes = impl_->delta_refreshes_.load();
  return s;
}

void ServeServer::Shutdown() { impl_->Shutdown(); }

}  // namespace grape
