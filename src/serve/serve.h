#ifndef GRAPE_SERVE_SERVE_H_
#define GRAPE_SERVE_SERVE_H_

#include <cstdint>
#include <functional>
#include <memory>

#include "partition/fragment.h"
#include "rt/distributed_load.h"
#include "rt/transport.h"
#include "serve/protocol.h"
#include "util/result.h"
#include "util/status.h"

namespace grape {

/// Configuration of a ServeServer. The transport is borrowed, exactly as
/// EngineOptions::transport: a world of num_fragments + 1 ranks that must
/// outlive the server, built once by the driver (MakeClusterTransport) so
/// all query classes share the same resident endpoint processes.
struct ServeOptions {
  Transport* transport = nullptr;
  uint32_t num_fragments = 0;

  /// Exactly one loader must be set; it runs once at Start() and again on
  /// every kTagSvReload, defining a new graph epoch each time.
  ///
  /// Coordinator loading: rank 0 materializes the whole FragmentedGraph;
  /// the first superstep wave of the epoch ships each fragment to its
  /// worker together with a stash token (kWkLoadStashResident), after
  /// which every query class attaches to the resident copies by token —
  /// the graph crosses the world exactly once per epoch.
  std::function<Result<FragmentedGraph>()> load_coordinator;
  /// Distributed loading: the workers build their fragments themselves
  /// (rt/distributed_load.h) and rank 0 only ever holds the returned
  /// metadata — no fragment bytes cross the world at all.
  std::function<Result<DistributedGraphMeta>(Transport*)> load_distributed;

  /// Admission batching: once the dispatcher picks up a query it waits
  /// this long for same-class queries to arrive, then fuses the whole
  /// batch into one multi-source superstep wave. 0 disables fusion
  /// (every query runs alone — useful for golden tests).
  int batch_window_ms = 2;
  /// Lanes per fused wave; excess queries wait for the next wave.
  uint32_t max_batch = 64;
  /// Client listener port on loopback; 0 picks an ephemeral port (read it
  /// back with port() after Start()).
  uint16_t listen_port = 0;
  /// Per-frame payload bound for client connections (serve/protocol.h).
  uint32_t max_client_frame_bytes = kSvDefaultMaxClientFrameBytes;
  /// Frontier-parallel lanes inside each worker (EngineOptions).
  uint32_t compute_threads = 0;
  bool verbose = false;
};

/// Monotonic counters, readable while serving (stats() snapshots).
struct ServeStats {
  uint64_t queries = 0;          // requests answered (ok or error)
  uint64_t waves = 0;            // superstep waves executed
  uint64_t fused_queries = 0;    // queries answered by a wave of >= 2 lanes
  uint64_t cache_hits = 0;       // CC/PageRank reads served from cache
  uint64_t errors = 0;           // error responses sent
  uint64_t rejected_frames = 0;  // malformed/oversized client frames
  uint64_t reloads = 0;          // successful reloads (epoch bumps)
  uint64_t mutations = 0;        // successful mutation batches applied
  /// Epoch transitions (reload/mutate) that arrived while a superstep
  /// wave was executing and were therefore held in the admission queue
  /// until the wave finished: the dispatcher never swaps fragments or
  /// bumps the epoch under a running engine session.
  uint64_t deferred_transitions = 0;
  /// CC answers refreshed by a bounded incremental delta after a
  /// mutation (instead of cache invalidation + full recompute).
  uint64_t delta_refreshes = 0;
};

/// The grape_serve daemon core: loads a graph once, keeps the fragments
/// resident in the worker endpoints, and serves concurrent client queries
/// over the serve/protocol.h wire format.
///
/// Threading model: an accept thread admits connections, one reader thread
/// per connection parses frames through a bounded FrameDecoder, and a
/// single dispatcher thread — the rank-0 admission loop — executes queries
/// against the engines. One dispatcher is not a bottleneck but the
/// correctness anchor: engines share one transport world, so exactly one
/// query session may be live at a time, and the dispatcher's batching
/// window is what turns concurrent same-class queries into one fused
/// multi-source wave (apps/ms_sssp.h, apps/ms_bfs.h). Answers are
/// bit-identical to one-at-a-time execution because every lane of a fused
/// wave runs the single-source algorithm's exact arithmetic
/// (tests/serving_test.cc pins this on every transport).
class ServeServer {
 public:
  explicit ServeServer(ServeOptions options);
  ~ServeServer();

  ServeServer(const ServeServer&) = delete;
  ServeServer& operator=(const ServeServer&) = delete;

  /// Loads epoch 1, builds the per-class engines, binds the client
  /// listener, and starts serving. Fails without side threads on a bad
  /// configuration or a failed initial load.
  Status Start();

  /// Bound client port (valid after a successful Start()).
  uint16_t port() const;

  /// Current graph epoch: 1 after Start(), +1 per successful reload.
  uint64_t epoch() const;

  ServeStats stats() const;

  /// Stops serving: closes the listener and every connection, joins all
  /// threads, retires the worker sessions. Idempotent; the destructor
  /// calls it.
  void Shutdown();

 private:
  struct Impl;
  std::unique_ptr<Impl> impl_;
};

}  // namespace grape

#endif  // GRAPE_SERVE_SERVE_H_
