#ifndef GRAPE_SERVE_PROTOCOL_H_
#define GRAPE_SERVE_PROTOCOL_H_

#include <cstdint>
#include <string>
#include <vector>

#include "core/codec.h"
#include "util/serializer.h"
#include "util/status.h"

namespace grape {

// Client-facing wire protocol of grape_serve (src/serve/serve.h): the same
// 16-byte FrameHeader envelope the runtime uses everywhere (core/codec.h),
// repurposed for untrusted connections. Field mapping:
//
//   from        client-chosen request id, echoed verbatim on the response so
//               a client can pipeline requests over one connection
//   to          0 (reserved)
//   tag         request/response type below
//   payload_len bounded by ServeOptions::max_client_frame_bytes on the
//               server side — a client declaring more is answered with one
//               kTagSvError frame and disconnected
//
// Requests and responses are strictly paired per connection in FIFO order.
// The serve tags live in their own 0x300 block so a serve frame can never
// be mistaken for a worker-protocol frame (0x101.. in rt/worker_protocol.h)
// in a trace.

/// Liveness probe. Payload: empty. Response: empty.
inline constexpr uint32_t kTagSvPing = 0x301;
/// Single-source shortest paths. Payload: u32 source gid. Response:
/// WritePodVector<double> — dist[gid], kInfDistance when unreachable.
inline constexpr uint32_t kTagSvSssp = 0x302;
/// BFS hop counts. Payload: u32 source gid. Response:
/// WritePodVector<uint32_t> — depth[gid], UINT32_MAX when unreachable.
inline constexpr uint32_t kTagSvBfs = 0x303;
/// Connected-component membership. Payload: empty (the labeling is a
/// property of the graph, which is what lets the server answer from its
/// per-epoch cache). Response: WritePodVector<VertexId> — label[gid].
inline constexpr uint32_t kTagSvCcLabel = 0x304;
/// PageRank with the server's fixed default parameters (fixed so results
/// are cacheable per graph epoch). Payload: empty. Response:
/// WritePodVector<double> — rank[gid].
inline constexpr uint32_t kTagSvPageRank = 0x305;
/// Re-runs the server's loader, bumps the graph epoch, and invalidates
/// every cache. Payload: empty. Response: u64 new epoch.
inline constexpr uint32_t kTagSvReload = 0x306;
/// Streams an edge-mutation batch into the resident graph (graph/mutation.h
/// wire format: varint count, then per-op u8 kind + u32 src + u32 dst +
/// double weight + u32 label). The fragments are rebuilt in place inside
/// the worker endpoints and standing answers are refreshed by bounded
/// incremental evaluation where the monotonicity contract allows (inserts
/// under a min-style order), by full recompute otherwise — never left
/// stale. Response: u64 graph version, (epoch << 32) | seq, where seq
/// counts mutations within the epoch (a reload starts a new epoch and
/// resets seq).
inline constexpr uint32_t kTagSvMutate = 0x307;

/// Success response; payload is the per-request answer documented above.
inline constexpr uint32_t kTagSvOk = 0x381;
/// Failure response; payload decodes with DecodeServeError. Sent with
/// request id 0 when the failure is connection-level (malformed frame)
/// rather than per-request — the connection is closed right after.
inline constexpr uint32_t kTagSvError = 0x382;

inline bool IsServeRequestTag(uint32_t tag) {
  return tag >= kTagSvPing && tag <= kTagSvMutate;
}

/// Default per-frame payload bound for client connections: generous for
/// every legitimate request (the largest is a handful of bytes) while
/// keeping a garbage or hostile length field from reserving real memory.
inline constexpr uint32_t kSvDefaultMaxClientFrameBytes = 1u << 20;

/// kTagSvError payload: status code + message (the worker protocol's error
/// shape, without its "remote worker:" framing).
inline void EncodeServeError(Encoder& enc, const Status& error) {
  enc.WriteI32(static_cast<int32_t>(error.code()));
  enc.WriteString(error.message());
}

inline Status DecodeServeError(const std::vector<uint8_t>& payload) {
  Decoder dec(payload);
  int32_t code = 0;
  std::string message;
  if (!dec.ReadI32(&code).ok() || !dec.ReadString(&message).ok()) {
    return Status::Internal("serve error frame unparseable");
  }
  return Status(static_cast<StatusCode>(code), "serve: " + message);
}

}  // namespace grape

#endif  // GRAPE_SERVE_PROTOCOL_H_
