#include "serve/client.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <utility>

#include "core/codec.h"
#include "rt/net_util.h"
#include "util/serializer.h"

namespace grape {

namespace {

/// Responses can carry a full per-vertex vector, so the client's read
/// bound is the protocol-wide frame ceiling, not the request-side bound.
constexpr uint32_t kClientMaxResponseBytes = kMaxFramePayloadBytes;

template <typename T>
Result<std::vector<T>> DecodePodVectorPayload(
    const std::vector<uint8_t>& payload) {
  Decoder dec(payload);
  std::vector<T> out;
  GRAPE_RETURN_NOT_OK(dec.ReadPodVector(&out));
  if (!dec.AtEnd()) {
    return Status::Corruption("trailing bytes after response vector");
  }
  return out;
}

}  // namespace

ServeClient::~ServeClient() {
  if (fd_ >= 0) close(fd_);
}

ServeClient::ServeClient(ServeClient&& other) noexcept
    : fd_(other.fd_), next_id_(other.next_id_) {
  other.fd_ = -1;
}

ServeClient& ServeClient::operator=(ServeClient&& other) noexcept {
  if (this != &other) {
    if (fd_ >= 0) close(fd_);
    fd_ = other.fd_;
    next_id_ = other.next_id_;
    other.fd_ = -1;
  }
  return *this;
}

Result<ServeClient> ServeClient::Connect(const std::string& host,
                                         uint16_t port) {
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    return Status::InvalidArgument("serve client: bad host '" + host +
                                   "' (dotted quad expected)");
  }
  int fd = socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    return Status::IOError(std::string("serve client socket: ") +
                           std::strerror(errno));
  }
  if (connect(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) !=
      0) {
    Status st = Status::Unavailable("serve client connect to " + host + ":" +
                                    std::to_string(port) + ": " +
                                    std::strerror(errno));
    close(fd);
    return st;
  }
  int one = 1;
  setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  ServeClient client;
  client.fd_ = fd;
  return client;
}

Status ServeClient::SendRawBytes(const uint8_t* data, size_t n) {
  if (fd_ < 0) return Status::FailedPrecondition("client not connected");
  if (!net::WriteFullFd(fd_, data, n)) {
    return Status::Unavailable("serve client write failed");
  }
  return Status::OK();
}

Status ServeClient::ReadRawFrame(uint32_t* request_id, uint32_t* tag,
                                 std::vector<uint8_t>* payload) {
  if (fd_ < 0) return Status::FailedPrecondition("client not connected");
  uint8_t hdr[kFrameHeaderBytes];
  int rc = net::ReadFullFd(fd_, hdr, sizeof(hdr));
  if (rc == 0) return Status::Unavailable("server closed the connection");
  if (rc < 0) return Status::Unavailable("serve client read failed");
  FrameHeader h;
  GRAPE_RETURN_NOT_OK(DecodeFrameHeader(hdr, sizeof(hdr), &h));
  if (h.payload_len > kClientMaxResponseBytes) {
    return Status::Corruption("response payload exceeds frame bound");
  }
  payload->resize(h.payload_len);
  if (h.payload_len > 0 &&
      net::ReadFullFd(fd_, payload->data(), h.payload_len) != 1) {
    return Status::Unavailable("server closed mid-response");
  }
  *request_id = h.from;
  *tag = h.tag;
  return Status::OK();
}

Result<std::vector<uint8_t>> ServeClient::Request(
    uint32_t tag, const std::vector<uint8_t>& payload) {
  if (fd_ < 0) return Status::FailedPrecondition("client not connected");
  const uint32_t id = next_id_++;
  FrameHeader h;
  h.from = id;
  h.to = 0;
  h.tag = tag;
  h.payload_len = static_cast<uint32_t>(payload.size());
  uint8_t hdr[kFrameHeaderBytes];
  EncodeFrameHeader(h, hdr);
  if (!net::WriteFullFd(fd_, hdr, sizeof(hdr)) ||
      (!payload.empty() &&
       !net::WriteFullFd(fd_, payload.data(), payload.size()))) {
    return Status::Unavailable("serve client write failed");
  }
  uint32_t resp_id = 0;
  uint32_t resp_tag = 0;
  std::vector<uint8_t> resp;
  GRAPE_RETURN_NOT_OK(ReadRawFrame(&resp_id, &resp_tag, &resp));
  if (resp_tag == kTagSvError) return DecodeServeError(resp);
  if (resp_tag != kTagSvOk) {
    return Status::Corruption("unexpected response tag " +
                              std::to_string(resp_tag));
  }
  if (resp_id != id) {
    return Status::Corruption("response id " + std::to_string(resp_id) +
                              " does not match request id " +
                              std::to_string(id));
  }
  return resp;
}

Status ServeClient::Ping() { return Request(kTagSvPing, {}).status(); }

Result<std::vector<double>> ServeClient::Sssp(VertexId source) {
  Encoder enc;
  enc.WriteU32(source);
  auto resp = Request(kTagSvSssp, enc.buffer());
  GRAPE_RETURN_NOT_OK(resp.status());
  return DecodePodVectorPayload<double>(*resp);
}

Result<std::vector<uint32_t>> ServeClient::Bfs(VertexId source) {
  Encoder enc;
  enc.WriteU32(source);
  auto resp = Request(kTagSvBfs, enc.buffer());
  GRAPE_RETURN_NOT_OK(resp.status());
  return DecodePodVectorPayload<uint32_t>(*resp);
}

Result<std::vector<VertexId>> ServeClient::ComponentLabels() {
  auto resp = Request(kTagSvCcLabel, {});
  GRAPE_RETURN_NOT_OK(resp.status());
  return DecodePodVectorPayload<VertexId>(*resp);
}

Result<std::vector<double>> ServeClient::PageRank() {
  auto resp = Request(kTagSvPageRank, {});
  GRAPE_RETURN_NOT_OK(resp.status());
  return DecodePodVectorPayload<double>(*resp);
}

Result<uint64_t> ServeClient::Reload() {
  auto resp = Request(kTagSvReload, {});
  GRAPE_RETURN_NOT_OK(resp.status());
  Decoder dec(*resp);
  uint64_t epoch = 0;
  GRAPE_RETURN_NOT_OK(dec.ReadU64(&epoch));
  return epoch;
}

Result<uint64_t> ServeClient::Mutate(const MutationBatch& batch) {
  Encoder enc;
  batch.EncodeTo(enc);
  auto resp = Request(kTagSvMutate, enc.buffer());
  GRAPE_RETURN_NOT_OK(resp.status());
  Decoder dec(*resp);
  uint64_t version = 0;
  GRAPE_RETURN_NOT_OK(dec.ReadU64(&version));
  return version;
}

}  // namespace grape
