#ifndef GRAPE_SERVE_CLIENT_H_
#define GRAPE_SERVE_CLIENT_H_

#include <cstdint>
#include <string>
#include <vector>

#include "graph/mutation.h"
#include "graph/types.h"
#include "serve/protocol.h"
#include "util/result.h"
#include "util/status.h"

namespace grape {

/// Synchronous client for a ServeServer: one connection, one request in
/// flight. Concurrency comes from holding several clients (one per
/// thread), which is also how the batching window sees concurrent
/// arrivals. Movable, not copyable.
class ServeClient {
 public:
  ServeClient() = default;
  ~ServeClient();

  ServeClient(ServeClient&& other) noexcept;
  ServeClient& operator=(ServeClient&& other) noexcept;
  ServeClient(const ServeClient&) = delete;
  ServeClient& operator=(const ServeClient&) = delete;

  /// Dials `host:port` (dotted-quad host; the server listens on loopback).
  static Result<ServeClient> Connect(const std::string& host, uint16_t port);
  static Result<ServeClient> Connect(uint16_t port) {
    return Connect("127.0.0.1", port);
  }

  bool connected() const { return fd_ >= 0; }

  Status Ping();
  /// dist[gid] from `source`; kInfDistance when unreachable.
  Result<std::vector<double>> Sssp(VertexId source);
  /// depth[gid] from `source`; UINT32_MAX when unreachable.
  Result<std::vector<uint32_t>> Bfs(VertexId source);
  /// label[gid] = smallest vertex id in gid's weakly connected component.
  Result<std::vector<VertexId>> ComponentLabels();
  /// rank[gid] under the server's fixed default PageRank parameters.
  Result<std::vector<double>> PageRank();
  /// Asks the server to rerun its loader; returns the new graph epoch.
  Result<uint64_t> Reload();
  /// Streams an edge-mutation batch into the resident graph; later
  /// queries answer over G ⊕ M. Returns the new graph version,
  /// (epoch << 32) | intra-epoch mutation sequence.
  Result<uint64_t> Mutate(const MutationBatch& batch);

  /// One framed request → one response payload (kTagSvError decodes into
  /// the returned Status). The typed calls above are sugar over this.
  Result<std::vector<uint8_t>> Request(uint32_t tag,
                                       const std::vector<uint8_t>& payload);

  /// Test hooks: ship arbitrary bytes (not necessarily a valid frame) and
  /// read back one raw frame, so protocol tests can probe the server's
  /// rejection path from a real client socket.
  Status SendRawBytes(const uint8_t* data, size_t n);
  Status ReadRawFrame(uint32_t* request_id, uint32_t* tag,
                      std::vector<uint8_t>* payload);

 private:
  int fd_ = -1;
  uint32_t next_id_ = 1;
};

}  // namespace grape

#endif  // GRAPE_SERVE_CLIENT_H_
