#include "graph/generators.h"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <unordered_set>
#include <vector>

#include "util/random.h"

namespace grape {

namespace {

/// Pairs (src, dst) packed into one word for dedup sets.
uint64_t PackEdge(VertexId src, VertexId dst) {
  return (static_cast<uint64_t>(src) << 32) | dst;
}

double RandomWeight(Rng& rng, double max_weight) {
  // Integer weights in [1, max_weight]; road/SSSP benches assume positive.
  return static_cast<double>(rng.NextInt(1, static_cast<int64_t>(max_weight)));
}

}  // namespace

Result<Graph> GenerateErdosRenyi(VertexId num_vertices, size_t num_edges,
                                 bool directed, uint64_t seed,
                                 double max_weight) {
  if (num_vertices < 2) {
    return Status::InvalidArgument("ErdosRenyi requires >= 2 vertices");
  }
  Rng rng(seed);
  GraphBuilder builder(directed);
  builder.ReserveEdges(num_edges);
  std::unordered_set<uint64_t> seen;
  seen.reserve(num_edges * 2);
  size_t added = 0;
  size_t attempts = 0;
  const size_t max_attempts = num_edges * 50 + 1000;
  while (added < num_edges && attempts < max_attempts) {
    ++attempts;
    auto src = static_cast<VertexId>(rng.NextBounded(num_vertices));
    auto dst = static_cast<VertexId>(rng.NextBounded(num_vertices));
    if (src == dst) continue;
    uint64_t key = directed ? PackEdge(src, dst)
                            : PackEdge(std::min(src, dst), std::max(src, dst));
    if (!seen.insert(key).second) continue;
    builder.AddEdge(src, dst, RandomWeight(rng, max_weight));
    ++added;
  }
  if (added < num_edges) {
    return Status::InvalidArgument(
        "requested edge count denser than the vertex set permits");
  }
  builder.AddVertex(num_vertices - 1);
  return std::move(builder).Build(num_vertices);
}

Result<Graph> GenerateRMat(const RMatOptions& options) {
  if (options.scale == 0 || options.scale > 28) {
    return Status::InvalidArgument("RMat scale must be in [1, 28]");
  }
  double d = 1.0 - options.a - options.b - options.c;
  if (options.a <= 0 || options.b < 0 || options.c < 0 || d < 0) {
    return Status::InvalidArgument("RMat probabilities must be a valid pmf");
  }

  const VertexId n = 1u << options.scale;
  const size_t m = static_cast<size_t>(options.edge_factor) * n;
  Rng rng(options.seed);

  std::vector<VertexId> perm(n);
  std::iota(perm.begin(), perm.end(), 0);
  if (options.permute) std::shuffle(perm.begin(), perm.end(), rng);

  GraphBuilder builder(options.directed);
  builder.ReserveEdges(m);
  for (size_t i = 0; i < m; ++i) {
    VertexId src = 0;
    VertexId dst = 0;
    for (uint32_t bit = 0; bit < options.scale; ++bit) {
      double r = rng.NextDouble();
      int quadrant;
      if (r < options.a) {
        quadrant = 0;
      } else if (r < options.a + options.b) {
        quadrant = 1;
      } else if (r < options.a + options.b + options.c) {
        quadrant = 2;
      } else {
        quadrant = 3;
      }
      src = (src << 1) | (quadrant >> 1);
      dst = (dst << 1) | (quadrant & 1);
    }
    if (src == dst) {
      dst = (dst + 1) % n;  // repair self loops instead of rejecting
    }
    builder.AddEdge(perm[src], perm[dst], RandomWeight(rng, options.max_weight));
  }
  builder.AddVertex(n - 1);
  return std::move(builder).Build(n);
}

Result<Graph> GenerateGridRoad(uint32_t rows, uint32_t cols, uint64_t seed,
                               double max_weight, double shortcut_fraction) {
  if (rows == 0 || cols == 0) {
    return Status::InvalidArgument("grid dimensions must be positive");
  }
  const uint64_t n64 = static_cast<uint64_t>(rows) * cols;
  if (n64 >= kInvalidVertex) {
    return Status::InvalidArgument("grid too large for 32-bit vertex ids");
  }
  const auto n = static_cast<VertexId>(n64);
  Rng rng(seed);
  GraphBuilder builder(/*directed=*/true);
  builder.ReserveEdges(4 * n64);

  auto id = [cols](uint32_t r, uint32_t c) -> VertexId {
    return static_cast<VertexId>(r) * cols + c;
  };
  for (uint32_t r = 0; r < rows; ++r) {
    for (uint32_t c = 0; c < cols; ++c) {
      if (c + 1 < cols) {
        double w = RandomWeight(rng, max_weight);
        builder.AddEdge(id(r, c), id(r, c + 1), w);
        builder.AddEdge(id(r, c + 1), id(r, c), w);
      }
      if (r + 1 < rows) {
        double w = RandomWeight(rng, max_weight);
        builder.AddEdge(id(r, c), id(r + 1, c), w);
        builder.AddEdge(id(r + 1, c), id(r, c), w);
      }
    }
  }
  auto shortcuts = static_cast<size_t>(shortcut_fraction * n);
  for (size_t i = 0; i < shortcuts; ++i) {
    auto u = static_cast<VertexId>(rng.NextBounded(n));
    auto v = static_cast<VertexId>(rng.NextBounded(n));
    if (u == v) continue;
    // Highways are longer links but cheaper per hop than the local detour.
    double w = RandomWeight(rng, max_weight) * 3.0;
    builder.AddEdge(u, v, w);
    builder.AddEdge(v, u, w);
  }
  builder.AddVertex(n - 1);
  return std::move(builder).Build(n);
}

Result<Graph> GeneratePath(VertexId n, bool directed) {
  if (n == 0) return Status::InvalidArgument("empty path");
  GraphBuilder builder(directed);
  for (VertexId v = 0; v + 1 < n; ++v) builder.AddEdge(v, v + 1, 1.0);
  builder.AddVertex(n - 1);
  return std::move(builder).Build(n);
}

Result<Graph> GenerateCycle(VertexId n, bool directed) {
  if (n < 3) return Status::InvalidArgument("cycle needs >= 3 vertices");
  GraphBuilder builder(directed);
  for (VertexId v = 0; v < n; ++v) builder.AddEdge(v, (v + 1) % n, 1.0);
  return std::move(builder).Build(n);
}

Result<Graph> GenerateStar(VertexId leaves, bool directed) {
  if (leaves == 0) return Status::InvalidArgument("star needs >= 1 leaf");
  GraphBuilder builder(directed);
  for (VertexId v = 1; v <= leaves; ++v) builder.AddEdge(0, v, 1.0);
  return std::move(builder).Build(leaves + 1);
}

Result<Graph> GenerateComplete(VertexId n, bool directed) {
  if (n < 2) return Status::InvalidArgument("complete graph needs >= 2");
  GraphBuilder builder(directed);
  for (VertexId u = 0; u < n; ++u) {
    for (VertexId v = directed ? 0 : u + 1; v < n; ++v) {
      if (u != v) builder.AddEdge(u, v, 1.0);
    }
  }
  return std::move(builder).Build(n);
}

Result<Graph> GenerateRandomTree(VertexId n, uint64_t seed, bool directed) {
  if (n == 0) return Status::InvalidArgument("empty tree");
  Rng rng(seed);
  GraphBuilder builder(directed);
  for (VertexId v = 1; v < n; ++v) {
    auto parent = static_cast<VertexId>(rng.NextBounded(v));
    builder.AddEdge(parent, v, RandomWeight(rng, 10.0));
  }
  builder.AddVertex(n - 1);
  return std::move(builder).Build(n);
}

Result<Graph> GenerateBipartiteRatings(const BipartiteOptions& options) {
  if (options.num_users == 0 || options.num_items == 0) {
    return Status::InvalidArgument("bipartite graph needs users and items");
  }
  if (options.ratings_per_user > options.num_items) {
    return Status::InvalidArgument("ratings_per_user exceeds item count");
  }
  Rng rng(options.seed);

  // Planted low-rank model: rating(u, i) ~ clamp(round(p_u . q_i), 1, 5).
  const uint32_t k = std::max(1u, options.latent_rank);
  auto latent = [&](size_t count) {
    std::vector<std::vector<double>> f(count, std::vector<double>(k));
    for (auto& row : f) {
      for (auto& x : row) x = 0.4 + 0.6 * rng.NextDouble();
    }
    return f;
  };
  auto user_f = latent(options.num_users);
  auto item_f = latent(options.num_items);

  GraphBuilder builder(/*directed=*/false);
  std::vector<VertexId> items(options.num_items);
  std::iota(items.begin(), items.end(), 0);
  for (VertexId u = 0; u < options.num_users; ++u) {
    std::shuffle(items.begin(), items.end(), rng);
    for (uint32_t j = 0; j < options.ratings_per_user; ++j) {
      VertexId item = items[j];
      double dot = 0;
      for (uint32_t t = 0; t < k; ++t) dot += user_f[u][t] * item_f[item][t];
      double rating =
          std::clamp(std::round(dot * 5.0 / k + rng.NextGaussian() * 0.3), 1.0,
                     5.0);
      builder.AddEdge(u, options.num_users + item, rating);
    }
    builder.SetVertexLabel(u, kPersonLabel);
  }
  for (VertexId i = 0; i < options.num_items; ++i) {
    builder.SetVertexLabel(options.num_users + i, kItemLabel);
  }
  return std::move(builder).Build(options.num_users + options.num_items);
}

Result<Graph> GenerateCommunityGraph(const CommunityGraphOptions& options) {
  const VertexId n = options.num_vertices;
  if (n < 2 || options.num_communities == 0) {
    return Status::InvalidArgument("community graph needs vertices & groups");
  }
  if (options.intra_fraction < 0.0 || options.intra_fraction > 1.0) {
    return Status::InvalidArgument("intra_fraction must be in [0, 1]");
  }
  Rng rng(options.seed);

  // Power-law-ish community sizes: split the id space by a random recursive
  // proportional scheme, then shuffle vertex membership so ids don't encode
  // the community (keeping range partitioning honest).
  const uint32_t c = options.num_communities;
  std::vector<VertexId> community(n);
  for (VertexId v = 0; v < n; ++v) {
    // Two-level sampling skews sizes: communities with small indices are
    // proportionally larger.
    uint64_t r = rng.NextBounded(c * (c + 1) / 2);
    uint32_t g = 0;
    uint64_t acc = c;
    while (r >= acc) {
      ++g;
      acc += c - g;
    }
    community[v] = g;
  }
  std::vector<std::vector<VertexId>> members(c);
  for (VertexId v = 0; v < n; ++v) members[community[v]].push_back(v);

  GraphBuilder builder(options.directed);
  const size_t m = static_cast<size_t>(options.avg_degree) * n / 2;
  builder.ReserveEdges(m);
  size_t added = 0;
  size_t attempts = 0;
  while (added < m && attempts < m * 20) {
    ++attempts;
    auto u = static_cast<VertexId>(rng.NextBounded(n));
    VertexId v;
    const std::vector<VertexId>& group = members[community[u]];
    if (group.size() > 1 && rng.NextDouble() < options.intra_fraction) {
      v = group[rng.NextBounded(group.size())];
    } else {
      v = static_cast<VertexId>(rng.NextBounded(n));
    }
    if (u == v) continue;
    builder.AddEdge(u, v, RandomWeight(rng, options.max_weight));
    ++added;
  }
  builder.AddVertex(n - 1);
  return std::move(builder).Build(n);
}

Result<Graph> GenerateLabeledGraph(const LabeledGraphOptions& options) {
  RMatOptions rmat;
  rmat.scale = options.scale;
  rmat.edge_factor = options.edge_factor;
  rmat.directed = options.directed;
  rmat.seed = options.seed;
  auto base = GenerateRMat(rmat);
  if (!base.ok()) return base.status();

  Rng rng(options.seed ^ 0x9e3779b97f4a7c15ULL);
  GraphBuilder builder(options.directed);
  for (const Edge& e : base->ToEdgeList()) {
    Edge labeled = e;
    labeled.label = options.num_edge_labels <= 1
                        ? 0
                        : static_cast<Label>(
                              rng.NextBounded(options.num_edge_labels));
    builder.AddEdge(labeled);
  }
  for (VertexId v = 0; v < base->num_vertices(); ++v) {
    builder.SetVertexLabel(
        v, static_cast<Label>(rng.NextBounded(options.num_vertex_labels)));
  }
  return std::move(builder).Build(base->num_vertices());
}

Result<Graph> GenerateSocialGraph(const SocialGraphOptions& options) {
  if (options.num_persons < 10 || options.num_items == 0) {
    return Status::InvalidArgument("social graph too small");
  }
  Rng rng(options.seed);
  GraphBuilder builder(/*directed=*/true);
  const VertexId np = options.num_persons;
  const VertexId item_base = np;

  // Power-law-ish follow graph via preferential attachment on a ring base.
  std::vector<VertexId> endpoint_pool;
  endpoint_pool.reserve(np * options.avg_follows / 2);
  std::unordered_set<uint64_t> follow_seen;
  for (VertexId p = 0; p < np; ++p) {
    uint32_t follows =
        1 + static_cast<uint32_t>(rng.NextBounded(2 * options.avg_follows - 1));
    for (uint32_t f = 0; f < follows; ++f) {
      VertexId target;
      if (!endpoint_pool.empty() && rng.NextBool(0.6)) {
        target = endpoint_pool[rng.NextBounded(endpoint_pool.size())];
      } else {
        target = static_cast<VertexId>(rng.NextBounded(np));
      }
      if (target == p) continue;
      if (!follow_seen.insert(PackEdge(p, target)).second) continue;
      builder.AddEdge(p, target, 1.0, kFollowsLabel);
      endpoint_pool.push_back(target);
    }
  }

  // Random person->item interactions.
  for (VertexId p = 0; p < np; ++p) {
    for (VertexId i = 0; i < options.num_items; ++i) {
      double r = rng.NextDouble();
      if (r < options.recommend_prob * 2.0 / options.num_items) {
        builder.AddEdge(p, item_base + i, 1.0, kRecommendsLabel);
      } else if (r < (options.recommend_prob + options.bad_rating_prob) * 2.0 /
                         options.num_items) {
        builder.AddEdge(p, item_base + i, 1.0, kRatesBadLabel);
      }
    }
  }

  // Plant customers whose followees all (or >= 80%) recommend item 0 and
  // none rates it badly, so the demo GPAR has guaranteed matches.
  auto planted =
      static_cast<VertexId>(options.planted_customer_fraction * np);
  for (VertexId j = 0; j < planted; ++j) {
    VertexId x = static_cast<VertexId>(rng.NextBounded(np));
    // Give x a clean set of fresh followees who recommend item 0. Fresh
    // followees are drawn from a reserved id range tail to avoid bad edges.
    uint32_t fan = 5 + static_cast<uint32_t>(rng.NextBounded(5));
    for (uint32_t f = 0; f < fan; ++f) {
      VertexId followee = static_cast<VertexId>(rng.NextBounded(np));
      if (followee == x) continue;
      if (follow_seen.insert(PackEdge(x, followee)).second) {
        builder.AddEdge(x, followee, 1.0, kFollowsLabel);
      }
      builder.AddEdge(followee, item_base, 1.0, kRecommendsLabel);
    }
  }

  for (VertexId p = 0; p < np; ++p) builder.SetVertexLabel(p, kPersonLabel);
  for (VertexId i = 0; i < options.num_items; ++i) {
    builder.SetVertexLabel(item_base + i, kItemLabel);
  }
  return std::move(builder).Build(np + options.num_items);
}

}  // namespace grape
