#ifndef GRAPE_GRAPH_ID_INDEXER_H_
#define GRAPE_GRAPH_ID_INDEXER_H_

#include <unordered_map>
#include <vector>

#include "graph/types.h"

namespace grape {

/// Bidirectional mapping between global vertex ids and dense local indices.
/// Fragments use one indexer for inner vertices and one for outer (mirror)
/// vertices.
class IdIndexer {
 public:
  /// Returns the local index of `gid`, inserting it if unseen.
  LocalId GetOrInsert(VertexId gid) {
    auto [it, inserted] = index_.try_emplace(
        gid, static_cast<LocalId>(gid_by_lid_.size()));
    if (inserted) gid_by_lid_.push_back(gid);
    return it->second;
  }

  /// Returns the local index of `gid`, or kInvalidLocal if absent.
  LocalId Find(VertexId gid) const {
    auto it = index_.find(gid);
    return it == index_.end() ? kInvalidLocal : it->second;
  }

  bool Contains(VertexId gid) const { return index_.count(gid) > 0; }

  VertexId GidOf(LocalId lid) const { return gid_by_lid_[lid]; }

  size_t size() const { return gid_by_lid_.size(); }

  const std::vector<VertexId>& gids() const { return gid_by_lid_; }

 private:
  std::unordered_map<VertexId, LocalId> index_;
  std::vector<VertexId> gid_by_lid_;
};

}  // namespace grape

#endif  // GRAPE_GRAPH_ID_INDEXER_H_
