#ifndef GRAPE_GRAPH_MUTATION_H_
#define GRAPE_GRAPH_MUTATION_H_

#include <algorithm>
#include <cstdint>
#include <vector>

#include "graph/graph.h"
#include "graph/types.h"
#include "util/result.h"
#include "util/serializer.h"
#include "util/status.h"

namespace grape {

/// One streaming update ΔG: insert (upsert) or delete an edge. The batch
/// is the paper's M in Q(G ⊕ M) — IncEval answers under it with work
/// proportional to the region it touches (Sec. 2.1).
enum class MutationOp : uint8_t {
  kInsertEdge = 0,
  kDeleteEdge = 1,
};

struct EdgeMutation {
  MutationOp op = MutationOp::kInsertEdge;
  Edge edge;
};

/// True when `e` connects (src, dst); undirected graphs match either
/// orientation. Weight and label never participate in matching — they are
/// the payload an upsert replaces.
inline bool EdgeConnects(const Edge& e, VertexId src, VertexId dst,
                         bool directed) {
  if (e.src == src && e.dst == dst) return true;
  return !directed && e.src == dst && e.dst == src;
}

/// An ordered batch of edge mutations, the wire unit of the streaming
/// update path (kTagSvMutate / kTagWkMutate). Semantics, identical on the
/// coordinator and inside worker endpoints because both run
/// ApplyMutationsToEdges:
///
///   - insert is an UPSERT: if an edge with the same endpoints exists
///     (either orientation when undirected) its weight/label are replaced
///     in place; otherwise the edge is appended. This keeps graphs simple,
///     which keeps CSR adjacency order — sorted by target id — unique and
///     therefore bit-reproducible across rebuilds.
///   - delete removes every edge matching the endpoints; deleting an
///     absent edge is a no-op.
///   - the vertex set is fixed: endpoints must name existing vertices
///     (the owner routing tables are immutable), and self-loops are
///     rejected (an undirected self-loop would double on every rebuild).
struct MutationBatch {
  std::vector<EdgeMutation> ops;

  bool empty() const { return ops.empty(); }
  size_t size() const { return ops.size(); }

  void InsertEdge(VertexId src, VertexId dst, EdgeWeight weight = 1.0,
                  Label label = 0) {
    ops.push_back(EdgeMutation{MutationOp::kInsertEdge,
                               Edge{src, dst, weight, label}});
  }
  void DeleteEdge(VertexId src, VertexId dst) {
    ops.push_back(
        EdgeMutation{MutationOp::kDeleteEdge, Edge{src, dst, 0.0, 0}});
  }

  bool has_deletions() const {
    for (const EdgeMutation& m : ops) {
      if (m.op == MutationOp::kDeleteEdge) return true;
    }
    return false;
  }

  /// Sorted unique endpoints of every op — the seed set of the incremental
  /// run (IncEval's initial M_i is the lids of these vertices).
  std::vector<VertexId> TouchedVertices() const {
    std::vector<VertexId> touched;
    touched.reserve(ops.size() * 2);
    for (const EdgeMutation& m : ops) {
      touched.push_back(m.edge.src);
      touched.push_back(m.edge.dst);
    }
    std::sort(touched.begin(), touched.end());
    touched.erase(std::unique(touched.begin(), touched.end()), touched.end());
    return touched;
  }

  Status Validate(VertexId num_vertices) const {
    for (const EdgeMutation& m : ops) {
      if (m.op != MutationOp::kInsertEdge &&
          m.op != MutationOp::kDeleteEdge) {
        return Status::InvalidArgument("unknown mutation op");
      }
      if (m.edge.src >= num_vertices || m.edge.dst >= num_vertices) {
        return Status::InvalidArgument(
            "mutation endpoint " +
            std::to_string(std::max(m.edge.src, m.edge.dst)) +
            " outside the fixed vertex set [0, " +
            std::to_string(num_vertices) + ")");
      }
      if (m.edge.src == m.edge.dst) {
        return Status::InvalidArgument("self-loop mutations are not supported");
      }
    }
    return Status::OK();
  }

  void EncodeTo(Encoder& enc) const {
    enc.WriteVarint(ops.size());
    for (const EdgeMutation& m : ops) {
      enc.WriteU8(static_cast<uint8_t>(m.op));
      enc.WriteU32(m.edge.src);
      enc.WriteU32(m.edge.dst);
      enc.WriteDouble(m.edge.weight);
      enc.WriteU32(m.edge.label);
    }
  }

  static Status DecodeFrom(Decoder& dec, MutationBatch* out) {
    uint64_t n = 0;
    GRAPE_RETURN_NOT_OK(dec.ReadVarint(&n));
    // Each op occupies at least 17 payload bytes; reject corrupt counts
    // before reserve() can throw.
    if (n > dec.Remaining() / 17) {
      return Status::Corruption("mutation batch extends past end of buffer");
    }
    out->ops.clear();
    out->ops.reserve(n);
    for (uint64_t k = 0; k < n; ++k) {
      uint8_t op = 0;
      EdgeMutation m;
      GRAPE_RETURN_NOT_OK(dec.ReadU8(&op));
      GRAPE_RETURN_NOT_OK(dec.ReadU32(&m.edge.src));
      GRAPE_RETURN_NOT_OK(dec.ReadU32(&m.edge.dst));
      GRAPE_RETURN_NOT_OK(dec.ReadDouble(&m.edge.weight));
      GRAPE_RETURN_NOT_OK(dec.ReadU32(&m.edge.label));
      if (op > static_cast<uint8_t>(MutationOp::kDeleteEdge)) {
        return Status::Corruption("unknown mutation op on the wire");
      }
      m.op = static_cast<MutationOp>(op);
      out->ops.push_back(m);
    }
    return Status::OK();
  }
};

/// Applies `batch` in order to a materialized edge list. `keep(edge)`
/// filters *new* insertions only (a worker keeps just the edges incident
/// to its fragment); upsert-replacement and deletion always apply to
/// whatever is present. Linear scans per op: mutation batches are small
/// relative to the graph, and correctness (identical results at every
/// placement) beats micro-speed here.
template <typename KeepFn>
void ApplyMutationsToEdges(std::vector<Edge>* edges,
                           const MutationBatch& batch, bool directed,
                           const KeepFn& keep) {
  for (const EdgeMutation& m : batch.ops) {
    if (m.op == MutationOp::kInsertEdge) {
      bool matched = false;
      for (Edge& e : *edges) {
        if (EdgeConnects(e, m.edge.src, m.edge.dst, directed)) {
          e.weight = m.edge.weight;
          e.label = m.edge.label;
          matched = true;
        }
      }
      if (!matched && keep(m.edge)) edges->push_back(m.edge);
    } else {
      std::erase_if(*edges, [&](const Edge& e) {
        return EdgeConnects(e, m.edge.src, m.edge.dst, directed);
      });
    }
  }
}

/// G ⊕ M over a whole graph: the coordinator-side (and oracle) mutation
/// path. Rebuilds the CSR from the mutated edge list, preserving
/// directedness, the exact vertex count, and vertex labels.
inline Result<Graph> ApplyMutations(const Graph& graph,
                                    const MutationBatch& batch) {
  GRAPE_RETURN_NOT_OK(batch.Validate(graph.num_vertices()));
  std::vector<Edge> edges = graph.ToEdgeList();
  ApplyMutationsToEdges(&edges, batch, graph.is_directed(),
                        [](const Edge&) { return true; });
  GraphBuilder builder(graph.is_directed());
  builder.ReserveEdges(edges.size());
  for (const Edge& e : edges) builder.AddEdge(e);
  if (graph.has_vertex_labels()) {
    for (VertexId v = 0; v < graph.num_vertices(); ++v) {
      builder.SetVertexLabel(v, graph.vertex_label(v));
    }
  }
  if (graph.num_vertices() > 0) builder.AddVertex(graph.num_vertices() - 1);
  return std::move(builder).Build(graph.num_vertices());
}

}  // namespace grape

#endif  // GRAPE_GRAPH_MUTATION_H_
