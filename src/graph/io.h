#ifndef GRAPE_GRAPH_IO_H_
#define GRAPE_GRAPH_IO_H_

#include <cstdint>
#include <string>
#include <vector>

#include "graph/graph.h"
#include "util/result.h"

namespace grape {

/// Options for text edge-list parsing.
struct EdgeListFormat {
  bool directed = true;
  /// Whether the third whitespace-separated column is a weight.
  bool has_weight = false;
  /// Whether the column after the weight (or third, if no weight) is an
  /// integer edge label.
  bool has_label = false;
  /// Lines beginning with this character are skipped.
  char comment_char = '#';
};

/// Loads a whitespace-separated edge list ("src dst [weight] [label]").
Result<Graph> LoadEdgeListFile(const std::string& path,
                               const EdgeListFormat& format);

/// One shard of an edge-list file: a contiguous byte range. A line belongs
/// to the shard containing its first byte, so readers of adjacent shards
/// never split, drop, or double-read a line.
struct ShardRange {
  uint64_t offset = 0;
  uint64_t length = 0;
};

/// Splits `path` into `num_shards` byte ranges aligned to line boundaries:
/// the ranges tile [0, file size) exactly, every range starts at the first
/// byte of a line (or at EOF), and trailing shards of a small file may be
/// empty. Only reads a handful of bytes around each nominal cut — the
/// coordinator's whole view of the input is this metadata.
Result<std::vector<ShardRange>> ComputeShardRanges(const std::string& path,
                                                   uint32_t num_shards);

/// One edge parsed from a shard, keyed by the absolute byte offset of its
/// line. Keys are globally unique and ascend in file order, so edges merged
/// from many shards can be restored to exact whole-file parse order —
/// the property that makes distributed fragment builds bit-identical to
/// coordinator builds from the same file.
struct ShardEdge {
  uint64_t key = 0;
  Edge edge;
};

/// What one shard read produced.
struct EdgeShard {
  std::vector<ShardEdge> edges;  // ascending key (file order)
  /// max(endpoint id) + 1 over the shard's edges; 0 for an empty shard.
  VertexId max_vertex_plus1 = 0;
};

/// Parses the lines whose first byte lies in `range` (the last such line is
/// followed to completion even when it crosses the range end). Grammar and
/// error codes match LoadEdgeListFile exactly: blank lines and
/// `format.comment_char` lines are skipped, malformed lines are Corruption.
Result<EdgeShard> ReadEdgeShard(const std::string& path,
                                const ShardRange& range,
                                const EdgeListFormat& format);

/// Writes "src dst weight label" lines; the inverse of LoadEdgeListFile with
/// has_weight = has_label = true.
Status SaveEdgeListFile(const Graph& graph, const std::string& path);

/// Compact binary snapshot (magic, version, vertex/edge counts, CSR arrays,
/// labels). The storage-layer stand-in for the paper's DFS graph store.
Status SaveBinary(const Graph& graph, const std::string& path);
Result<Graph> LoadBinary(const std::string& path);

/// Compressed binary snapshot: adjacency stored as per-vertex delta-varint
/// gap lists with weights quantized to their 1-decimal generator grid when
/// lossless (falls back to raw doubles otherwise). The "graph compression"
/// optimization the paper lists among GRAPE's graph-level strategies;
/// typically 2-4x smaller than SaveBinary on our workloads.
Status SaveBinaryCompressed(const Graph& graph, const std::string& path);
Result<Graph> LoadBinaryCompressed(const std::string& path);

}  // namespace grape

#endif  // GRAPE_GRAPH_IO_H_
