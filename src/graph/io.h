#ifndef GRAPE_GRAPH_IO_H_
#define GRAPE_GRAPH_IO_H_

#include <string>

#include "graph/graph.h"
#include "util/result.h"

namespace grape {

/// Options for text edge-list parsing.
struct EdgeListFormat {
  bool directed = true;
  /// Whether the third whitespace-separated column is a weight.
  bool has_weight = false;
  /// Whether the column after the weight (or third, if no weight) is an
  /// integer edge label.
  bool has_label = false;
  /// Lines beginning with this character are skipped.
  char comment_char = '#';
};

/// Loads a whitespace-separated edge list ("src dst [weight] [label]").
Result<Graph> LoadEdgeListFile(const std::string& path,
                               const EdgeListFormat& format);

/// Writes "src dst weight label" lines; the inverse of LoadEdgeListFile with
/// has_weight = has_label = true.
Status SaveEdgeListFile(const Graph& graph, const std::string& path);

/// Compact binary snapshot (magic, version, vertex/edge counts, CSR arrays,
/// labels). The storage-layer stand-in for the paper's DFS graph store.
Status SaveBinary(const Graph& graph, const std::string& path);
Result<Graph> LoadBinary(const std::string& path);

/// Compressed binary snapshot: adjacency stored as per-vertex delta-varint
/// gap lists with weights quantized to their 1-decimal generator grid when
/// lossless (falls back to raw doubles otherwise). The "graph compression"
/// optimization the paper lists among GRAPE's graph-level strategies;
/// typically 2-4x smaller than SaveBinary on our workloads.
Status SaveBinaryCompressed(const Graph& graph, const std::string& path);
Result<Graph> LoadBinaryCompressed(const std::string& path);

}  // namespace grape

#endif  // GRAPE_GRAPH_IO_H_
