#include "graph/io.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <fstream>
#include <sstream>

#include "util/serializer.h"
#include "util/string_util.h"

namespace grape {

namespace {
constexpr uint32_t kBinaryMagic = 0x47524150;    // "GRAP"
constexpr uint32_t kCompressedMagic = 0x4752435a;  // "GRCZ"
constexpr uint32_t kBinaryVersion = 1;

Status WriteFile(const std::string& path, const Encoder& enc) {
  std::ofstream out(path, std::ios::binary);
  if (!out) {
    return Status::IOError("cannot open " + path + " for writing");
  }
  out.write(reinterpret_cast<const char*>(enc.buffer().data()),
            static_cast<std::streamsize>(enc.size()));
  if (!out) {
    return Status::IOError("short write to " + path);
  }
  return Status::OK();
}

Result<std::vector<uint8_t>> ReadFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    return Status::IOError("cannot open " + path);
  }
  return std::vector<uint8_t>((std::istreambuf_iterator<char>(in)),
                              std::istreambuf_iterator<char>());
}
}  // namespace

namespace {

/// Parses one trimmed edge line. `where` names the line in errors.
Status ParseEdgeLine(std::string_view sv, const EdgeListFormat& format,
                     const std::string& where, Edge* out) {
  std::istringstream ss{std::string(sv)};
  uint64_t src = 0;
  uint64_t dst = 0;
  if (!(ss >> src >> dst)) {
    return Status::Corruption(where + ": malformed edge line");
  }
  Edge e{static_cast<VertexId>(src), static_cast<VertexId>(dst), 1.0, 0};
  if (format.has_weight) {
    if (!(ss >> e.weight)) {
      return Status::Corruption(where + ": missing weight column");
    }
  }
  if (format.has_label) {
    uint64_t label = 0;
    if (!(ss >> label)) {
      return Status::Corruption(where + ": missing label column");
    }
    e.label = static_cast<Label>(label);
  }
  *out = e;
  return Status::OK();
}

}  // namespace

Result<std::vector<ShardRange>> ComputeShardRanges(const std::string& path,
                                                   uint32_t num_shards) {
  if (num_shards == 0) {
    return Status::InvalidArgument("num_shards must be positive");
  }
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    return Status::IOError("cannot open " + path);
  }
  in.seekg(0, std::ios::end);
  const uint64_t size = static_cast<uint64_t>(in.tellg());

  // Shard i nominally starts at size*i/n; the actual start is the first
  // line boundary at or after that, so a line belongs to the shard holding
  // its first byte. Starts are found by scanning forward from the byte
  // before the nominal cut for a newline — O(line length) per cut.
  std::vector<uint64_t> starts(num_shards + 1, size);
  starts[0] = 0;
  for (uint32_t i = 1; i < num_shards; ++i) {
    const uint64_t nominal = size / num_shards * i +
                             size % num_shards * i / num_shards;
    if (nominal == 0) {
      starts[i] = 0;
      continue;
    }
    in.clear();
    in.seekg(static_cast<std::streamoff>(nominal - 1));
    uint64_t pos = nominal - 1;
    int c;
    while ((c = in.get()) != EOF && c != '\n') ++pos;
    starts[i] = (c == EOF) ? size : pos + 1;
  }
  if (in.bad()) {
    return Status::IOError("read error scanning " + path + " for shard cuts");
  }

  std::vector<ShardRange> ranges(num_shards);
  for (uint32_t i = 0; i < num_shards; ++i) {
    // Monotone by construction ("first line start >= x" is monotone in x),
    // so adjacent ranges tile without overlap.
    ranges[i].offset = starts[i];
    ranges[i].length = starts[i + 1] - starts[i];
  }
  return ranges;
}

Result<EdgeShard> ReadEdgeShard(const std::string& path,
                                const ShardRange& range,
                                const EdgeListFormat& format) {
  EdgeShard shard;
  if (range.length == 0) return shard;
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    return Status::IOError("cannot open " + path);
  }
  in.seekg(static_cast<std::streamoff>(range.offset));
  const uint64_t end = range.offset + range.length;
  uint64_t line_start = range.offset;
  std::string line;
  // Every line starting inside [offset, end) belongs to this shard; the
  // last one is read to completion even when it continues past `end`.
  while (line_start < end && std::getline(in, line)) {
    const uint64_t next_start = line_start + line.size() + 1;
    std::string_view sv = Trim(line);
    if (!sv.empty() && sv[0] != format.comment_char) {
      Edge e;
      GRAPE_RETURN_NOT_OK(ParseEdgeLine(
          sv, format, path + " @" + std::to_string(line_start), &e));
      shard.edges.push_back(ShardEdge{line_start, e});
      const VertexId hi = std::max(e.src, e.dst);
      shard.max_vertex_plus1 = std::max(shard.max_vertex_plus1, hi + 1);
    }
    line_start = next_start;
  }
  if (in.bad()) {
    return Status::IOError("read error in shard of " + path);
  }
  return shard;
}

Result<Graph> LoadEdgeListFile(const std::string& path,
                               const EdgeListFormat& format) {
  std::ifstream in(path);
  if (!in) {
    return Status::IOError("cannot open " + path);
  }
  GraphBuilder builder(format.directed);
  std::string line;
  size_t line_no = 0;
  while (std::getline(in, line)) {
    ++line_no;
    std::string_view sv = Trim(line);
    if (sv.empty() || sv[0] == format.comment_char) continue;
    Edge e;
    GRAPE_RETURN_NOT_OK(ParseEdgeLine(
        sv, format, path + ":" + std::to_string(line_no), &e));
    builder.AddEdge(e);
  }
  return std::move(builder).Build();
}

Status SaveEdgeListFile(const Graph& graph, const std::string& path) {
  std::ofstream out(path);
  if (!out) {
    return Status::IOError("cannot open " + path + " for writing");
  }
  for (const Edge& e : graph.ToEdgeList()) {
    out << e.src << ' ' << e.dst << ' ' << e.weight << ' ' << e.label << '\n';
  }
  if (!out) {
    return Status::IOError("short write to " + path);
  }
  return Status::OK();
}

Status SaveBinary(const Graph& graph, const std::string& path) {
  Encoder enc;
  enc.WriteU32(kBinaryMagic);
  enc.WriteU32(kBinaryVersion);
  enc.WriteBool(graph.is_directed());
  enc.WriteU32(graph.num_vertices());

  std::vector<Edge> edges = graph.ToEdgeList();
  enc.WriteVarint(edges.size());
  for (const Edge& e : edges) {
    enc.WriteU32(e.src);
    enc.WriteU32(e.dst);
    enc.WriteDouble(e.weight);
    enc.WriteU32(e.label);
  }
  enc.WriteBool(graph.has_vertex_labels());
  if (graph.has_vertex_labels()) {
    for (VertexId v = 0; v < graph.num_vertices(); ++v) {
      enc.WriteU32(graph.vertex_label(v));
    }
  }
  return WriteFile(path, enc);
}

Result<Graph> LoadBinary(const std::string& path) {
  std::vector<uint8_t> bytes;
  {
    auto read = ReadFile(path);
    if (!read.ok()) return read.status();
    bytes = std::move(read).value();
  }
  Decoder dec(bytes);

  uint32_t magic = 0;
  uint32_t version = 0;
  GRAPE_RETURN_NOT_OK(dec.ReadU32(&magic));
  if (magic != kBinaryMagic) {
    return Status::Corruption(path + ": bad magic");
  }
  GRAPE_RETURN_NOT_OK(dec.ReadU32(&version));
  if (version != kBinaryVersion) {
    return Status::Corruption(path + ": unsupported version");
  }
  bool directed = true;
  uint32_t num_vertices = 0;
  GRAPE_RETURN_NOT_OK(dec.ReadBool(&directed));
  GRAPE_RETURN_NOT_OK(dec.ReadU32(&num_vertices));

  GraphBuilder builder(directed);
  uint64_t num_edges = 0;
  GRAPE_RETURN_NOT_OK(dec.ReadVarint(&num_edges));
  builder.ReserveEdges(num_edges);
  for (uint64_t i = 0; i < num_edges; ++i) {
    Edge e;
    GRAPE_RETURN_NOT_OK(dec.ReadU32(&e.src));
    GRAPE_RETURN_NOT_OK(dec.ReadU32(&e.dst));
    GRAPE_RETURN_NOT_OK(dec.ReadDouble(&e.weight));
    GRAPE_RETURN_NOT_OK(dec.ReadU32(&e.label));
    builder.AddEdge(e);
  }
  bool has_labels = false;
  GRAPE_RETURN_NOT_OK(dec.ReadBool(&has_labels));
  if (has_labels) {
    for (VertexId v = 0; v < num_vertices; ++v) {
      uint32_t label = 0;
      GRAPE_RETURN_NOT_OK(dec.ReadU32(&label));
      builder.SetVertexLabel(v, label);
    }
  }
  return std::move(builder).Build(num_vertices);
}

Status SaveBinaryCompressed(const Graph& graph, const std::string& path) {
  // Check whether every weight sits on the 0.1 grid within [0, 400k]; then
  // it round-trips exactly through a varint of 10*w.
  bool quantizable = true;
  for (VertexId v = 0; v < graph.num_vertices() && quantizable; ++v) {
    for (const Neighbor& nb : graph.OutNeighbors(v)) {
      double scaled = nb.weight * 10.0;
      if (scaled < 0 || scaled > 4e6 ||
          scaled != std::floor(scaled)) {
        quantizable = false;
        break;
      }
    }
  }

  Encoder enc;
  enc.WriteU32(kCompressedMagic);
  enc.WriteU32(kBinaryVersion);
  enc.WriteBool(graph.is_directed());
  enc.WriteBool(quantizable);
  enc.WriteU32(graph.num_vertices());

  // Per-vertex delta-encoded adjacency: degree, then ascending-target gap
  // list. Undirected graphs emit each edge from its smaller endpoint.
  for (VertexId v = 0; v < graph.num_vertices(); ++v) {
    // Collect emitted targets (sorted by construction of the CSR).
    std::vector<const Neighbor*> row;
    for (const Neighbor& nb : graph.OutNeighbors(v)) {
      if (!graph.is_directed() && nb.vertex < v) continue;
      row.push_back(&nb);
    }
    enc.WriteVarint(row.size());
    VertexId prev = 0;
    for (const Neighbor* nb : row) {
      enc.WriteVarint(nb->vertex - prev);  // gaps within a sorted row
      prev = nb->vertex;
      if (quantizable) {
        enc.WriteVarint(static_cast<uint64_t>(nb->weight * 10.0 + 0.5));
      } else {
        enc.WriteDouble(nb->weight);
      }
      enc.WriteVarint(nb->label);
    }
  }

  enc.WriteBool(graph.has_vertex_labels());
  if (graph.has_vertex_labels()) {
    for (VertexId v = 0; v < graph.num_vertices(); ++v) {
      enc.WriteVarint(graph.vertex_label(v));
    }
  }
  return WriteFile(path, enc);
}

Result<Graph> LoadBinaryCompressed(const std::string& path) {
  std::vector<uint8_t> bytes;
  {
    auto read = ReadFile(path);
    if (!read.ok()) return read.status();
    bytes = std::move(read).value();
  }
  Decoder dec(bytes);

  uint32_t magic = 0;
  uint32_t version = 0;
  GRAPE_RETURN_NOT_OK(dec.ReadU32(&magic));
  if (magic != kCompressedMagic) {
    return Status::Corruption(path + ": bad magic for compressed graph");
  }
  GRAPE_RETURN_NOT_OK(dec.ReadU32(&version));
  if (version != kBinaryVersion) {
    return Status::Corruption(path + ": unsupported version");
  }
  bool directed = true;
  bool quantized = false;
  uint32_t num_vertices = 0;
  GRAPE_RETURN_NOT_OK(dec.ReadBool(&directed));
  GRAPE_RETURN_NOT_OK(dec.ReadBool(&quantized));
  GRAPE_RETURN_NOT_OK(dec.ReadU32(&num_vertices));

  GraphBuilder builder(directed);
  for (VertexId v = 0; v < num_vertices; ++v) {
    uint64_t degree = 0;
    GRAPE_RETURN_NOT_OK(dec.ReadVarint(&degree));
    VertexId prev = 0;
    for (uint64_t j = 0; j < degree; ++j) {
      uint64_t gap = 0;
      GRAPE_RETURN_NOT_OK(dec.ReadVarint(&gap));
      VertexId target = prev + static_cast<VertexId>(gap);
      prev = target;
      double weight = 1.0;
      if (quantized) {
        uint64_t scaled = 0;
        GRAPE_RETURN_NOT_OK(dec.ReadVarint(&scaled));
        weight = static_cast<double>(scaled) / 10.0;
      } else {
        GRAPE_RETURN_NOT_OK(dec.ReadDouble(&weight));
      }
      uint64_t label = 0;
      GRAPE_RETURN_NOT_OK(dec.ReadVarint(&label));
      if (target >= num_vertices) {
        return Status::Corruption(path + ": edge target out of range");
      }
      builder.AddEdge(v, target, weight, static_cast<Label>(label));
    }
  }

  bool has_labels = false;
  GRAPE_RETURN_NOT_OK(dec.ReadBool(&has_labels));
  if (has_labels) {
    for (VertexId v = 0; v < num_vertices; ++v) {
      uint64_t label = 0;
      GRAPE_RETURN_NOT_OK(dec.ReadVarint(&label));
      builder.SetVertexLabel(v, static_cast<Label>(label));
    }
  }
  return std::move(builder).Build(num_vertices);
}

}  // namespace grape
