#ifndef GRAPE_GRAPH_GRAPH_H_
#define GRAPE_GRAPH_GRAPH_H_

#include <span>
#include <string>
#include <vector>

#include "graph/types.h"
#include "util/result.h"
#include "util/status.h"

namespace grape {

/// A directed edge endpoint as stored in adjacency lists.
struct Neighbor {
  VertexId vertex;
  EdgeWeight weight;
  Label label;
};

/// A fully specified edge, the unit of graph construction and I/O.
struct Edge {
  VertexId src;
  VertexId dst;
  EdgeWeight weight = 1.0;
  Label label = 0;

  friend bool operator==(const Edge& a, const Edge& b) {
    return a.src == b.src && a.dst == b.dst && a.weight == b.weight &&
           a.label == b.label;
  }
};

class Graph;

/// Accumulates edges and vertex attributes, then freezes them into an
/// immutable CSR Graph. For undirected graphs each added edge is stored in
/// both directions.
class GraphBuilder {
 public:
  explicit GraphBuilder(bool directed = true) : directed_(directed) {}

  void ReserveEdges(size_t n) { edges_.reserve(n); }

  void AddEdge(VertexId src, VertexId dst, EdgeWeight weight = 1.0,
               Label label = 0) {
    edges_.push_back(Edge{src, dst, weight, label});
  }
  void AddEdge(const Edge& e) { edges_.push_back(e); }

  /// Removes every pending edge connecting src and dst (either orientation
  /// when the builder is undirected), returning how many were erased.
  /// AddEdge's long-missing inverse: both the coordinator and worker-side
  /// mutation paths express deletions through this one primitive.
  size_t RemoveEdge(VertexId src, VertexId dst);

  /// Ensures the vertex exists even if isolated.
  void AddVertex(VertexId v) { TouchVertex(v); }

  /// Sets the label of a vertex (default 0). Implies AddVertex.
  void SetVertexLabel(VertexId v, Label label);

  /// Builds the CSR representation. num_vertices is max id + 1 (or the
  /// explicit value passed, which must cover all ids). Fails on
  /// self-consistency violations (e.g. edges referencing vertices beyond an
  /// explicit vertex count).
  Result<Graph> Build(VertexId num_vertices = 0) &&;

  size_t num_edges() const { return edges_.size(); }

 private:
  void TouchVertex(VertexId v);

  bool directed_;
  std::vector<Edge> edges_;
  std::vector<Label> labels_;  // indexed by vertex id; lazily grown
  VertexId max_vertex_ = 0;
  bool has_vertices_ = false;
};

/// Immutable graph in CSR form. Directed graphs carry both out- and
/// in-adjacency so incremental algorithms can walk predecessors. Undirected
/// graphs store each edge twice in the out-CSR and report is_directed() ==
/// false.
class Graph {
 public:
  Graph() = default;

  Graph(const Graph&) = delete;
  Graph& operator=(const Graph&) = delete;
  Graph(Graph&&) = default;
  Graph& operator=(Graph&&) = default;

  VertexId num_vertices() const { return num_vertices_; }
  /// Number of stored directed arcs (2x logical edges when undirected).
  size_t num_edges() const { return out_neighbors_.size(); }
  bool is_directed() const { return directed_; }

  std::span<const Neighbor> OutNeighbors(VertexId v) const {
    return {out_neighbors_.data() + out_offsets_[v],
            out_offsets_[v + 1] - out_offsets_[v]};
  }

  /// For directed graphs: incoming arcs. For undirected graphs this aliases
  /// OutNeighbors.
  std::span<const Neighbor> InNeighbors(VertexId v) const {
    if (!directed_) return OutNeighbors(v);
    return {in_neighbors_.data() + in_offsets_[v],
            in_offsets_[v + 1] - in_offsets_[v]};
  }

  size_t OutDegree(VertexId v) const {
    return out_offsets_[v + 1] - out_offsets_[v];
  }
  size_t InDegree(VertexId v) const {
    if (!directed_) return OutDegree(v);
    return in_offsets_[v + 1] - in_offsets_[v];
  }

  Label vertex_label(VertexId v) const {
    return labels_.empty() ? 0 : labels_[v];
  }
  bool has_vertex_labels() const { return !labels_.empty(); }

  /// Materializes the edge list (one entry per stored arc for directed
  /// graphs; one per logical edge for undirected).
  std::vector<Edge> ToEdgeList() const;

  /// Sum of all stored arc weights.
  double TotalEdgeWeight() const;

 private:
  friend class GraphBuilder;

  VertexId num_vertices_ = 0;
  bool directed_ = true;
  std::vector<size_t> out_offsets_;
  std::vector<Neighbor> out_neighbors_;
  std::vector<size_t> in_offsets_;
  std::vector<Neighbor> in_neighbors_;
  std::vector<Label> labels_;
};

}  // namespace grape

#endif  // GRAPE_GRAPH_GRAPH_H_
