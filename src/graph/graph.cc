#include "graph/graph.h"

#include <algorithm>

namespace grape {

void GraphBuilder::TouchVertex(VertexId v) {
  max_vertex_ = std::max(max_vertex_, v);
  has_vertices_ = true;
}

size_t GraphBuilder::RemoveEdge(VertexId src, VertexId dst) {
  const bool directed = directed_;
  const size_t before = edges_.size();
  std::erase_if(edges_, [&](const Edge& e) {
    if (e.src == src && e.dst == dst) return true;
    return !directed && e.src == dst && e.dst == src;
  });
  return before - edges_.size();
}

void GraphBuilder::SetVertexLabel(VertexId v, Label label) {
  TouchVertex(v);
  if (labels_.size() <= v) labels_.resize(v + 1, 0);
  labels_[v] = label;
}

Result<Graph> GraphBuilder::Build(VertexId num_vertices) && {
  for (const Edge& e : edges_) {
    TouchVertex(e.src);
    TouchVertex(e.dst);
  }
  VertexId n = has_vertices_ ? max_vertex_ + 1 : 0;
  if (num_vertices > 0) {
    if (n > num_vertices) {
      return Status::InvalidArgument(
          "explicit vertex count does not cover all referenced vertices");
    }
    n = num_vertices;
  }

  Graph g;
  g.num_vertices_ = n;
  g.directed_ = directed_;
  if (!labels_.empty()) {
    labels_.resize(n, 0);
    g.labels_ = std::move(labels_);
  }

  // Counting sort into CSR. Undirected edges are mirrored.
  size_t arcs = directed_ ? edges_.size() : edges_.size() * 2;
  g.out_offsets_.assign(n + 1, 0);
  for (const Edge& e : edges_) {
    g.out_offsets_[e.src + 1]++;
    if (!directed_) g.out_offsets_[e.dst + 1]++;
  }
  for (VertexId v = 0; v < n; ++v) g.out_offsets_[v + 1] += g.out_offsets_[v];
  g.out_neighbors_.resize(arcs);
  {
    std::vector<size_t> cursor(g.out_offsets_.begin(),
                               g.out_offsets_.end() - 1);
    for (const Edge& e : edges_) {
      g.out_neighbors_[cursor[e.src]++] = Neighbor{e.dst, e.weight, e.label};
      if (!directed_) {
        g.out_neighbors_[cursor[e.dst]++] = Neighbor{e.src, e.weight, e.label};
      }
    }
  }

  if (directed_) {
    g.in_offsets_.assign(n + 1, 0);
    for (const Edge& e : edges_) g.in_offsets_[e.dst + 1]++;
    for (VertexId v = 0; v < n; ++v) g.in_offsets_[v + 1] += g.in_offsets_[v];
    g.in_neighbors_.resize(edges_.size());
    std::vector<size_t> cursor(g.in_offsets_.begin(), g.in_offsets_.end() - 1);
    for (const Edge& e : edges_) {
      g.in_neighbors_[cursor[e.dst]++] = Neighbor{e.src, e.weight, e.label};
    }
  }

  // Sort adjacency lists by target id for deterministic iteration and
  // binary-searchable neighbor lookups.
  auto sort_csr = [n](std::vector<size_t>& offsets,
                      std::vector<Neighbor>& neighbors) {
    for (VertexId v = 0; v < n; ++v) {
      std::sort(neighbors.begin() + offsets[v],
                neighbors.begin() + offsets[v + 1],
                [](const Neighbor& a, const Neighbor& b) {
                  return a.vertex < b.vertex;
                });
    }
  };
  sort_csr(g.out_offsets_, g.out_neighbors_);
  if (directed_) sort_csr(g.in_offsets_, g.in_neighbors_);

  edges_.clear();
  return g;
}

std::vector<Edge> Graph::ToEdgeList() const {
  std::vector<Edge> edges;
  edges.reserve(directed_ ? num_edges() : num_edges() / 2);
  for (VertexId v = 0; v < num_vertices_; ++v) {
    for (const Neighbor& nb : OutNeighbors(v)) {
      if (!directed_ && nb.vertex < v) continue;  // emit each edge once
      edges.push_back(Edge{v, nb.vertex, nb.weight, nb.label});
    }
  }
  return edges;
}

double Graph::TotalEdgeWeight() const {
  double total = 0.0;
  for (const Neighbor& nb : out_neighbors_) total += nb.weight;
  return total;
}

}  // namespace grape
