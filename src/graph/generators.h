#ifndef GRAPE_GRAPH_GENERATORS_H_
#define GRAPE_GRAPH_GENERATORS_H_

#include <cstdint>

#include "graph/graph.h"
#include "util/result.h"

namespace grape {

/// Deterministic synthetic graph generators. They stand in for the paper's
/// datasets: GridRoad for the US road network (large diameter, bounded
/// degree), RMat for LiveJournal/Weibo (power-law, small diameter), and
/// BipartiteRatings for the collaborative-filtering workload. All take an
/// explicit seed so tests and benches are reproducible.

/// G(n, m) Erdős–Rényi multigraph-free random graph with uniform weights in
/// [1, max_weight]. Self loops are excluded.
Result<Graph> GenerateErdosRenyi(VertexId num_vertices, size_t num_edges,
                                 bool directed, uint64_t seed,
                                 double max_weight = 10.0);

/// R-MAT power-law generator (Graph500-style recursive quadrant sampling)
/// with 2^scale vertices and edge_factor * 2^scale edges.
struct RMatOptions {
  uint32_t scale = 14;
  uint32_t edge_factor = 16;
  double a = 0.57;
  double b = 0.19;
  double c = 0.19;  // d = 1 - a - b - c
  bool directed = true;
  uint64_t seed = 1;
  double max_weight = 10.0;
  /// Shuffle vertex ids so degree does not correlate with id (as in
  /// Graph500), which keeps range/streaming partitioners honest.
  bool permute = true;
};
Result<Graph> GenerateRMat(const RMatOptions& options);

/// rows x cols 4-neighbour lattice with integer-ish weights in
/// [1, max_weight]; models a road network (large diameter). Both directions
/// of each road segment are present. shortcut_fraction adds that fraction of
/// |V| random long-range "highway" edges.
Result<Graph> GenerateGridRoad(uint32_t rows, uint32_t cols, uint64_t seed,
                               double max_weight = 10.0,
                               double shortcut_fraction = 0.0);

/// Deterministic small graphs for tests.
Result<Graph> GeneratePath(VertexId n, bool directed = false);
Result<Graph> GenerateCycle(VertexId n, bool directed = true);
Result<Graph> GenerateStar(VertexId leaves, bool directed = false);
Result<Graph> GenerateComplete(VertexId n, bool directed = false);

/// Uniform random recursive tree on n vertices (connected by construction).
Result<Graph> GenerateRandomTree(VertexId n, uint64_t seed,
                                 bool directed = false);

/// Bipartite user-item rating graph for collaborative filtering. Users take
/// ids [0, num_users); items [num_users, num_users + num_items). Edge weight
/// is an integer rating in [1, 5] drawn from a planted low-rank model so the
/// factorization has signal to recover.
struct BipartiteOptions {
  VertexId num_users = 1000;
  VertexId num_items = 200;
  uint32_t ratings_per_user = 20;
  uint32_t latent_rank = 4;
  uint64_t seed = 7;
};
Result<Graph> GenerateBipartiteRatings(const BipartiteOptions& options);

/// Social-network-like graph with planted community structure (a stochastic
/// block model with skewed degrees): vertices belong to one of
/// `num_communities` groups; each edge stays inside its endpoint's group
/// with probability `intra_fraction`. LiveJournal-style inputs are
/// community-rich, which is exactly what offline partitioners exploit in
/// the paper's Sec. 3 partition-impact demo.
struct CommunityGraphOptions {
  VertexId num_vertices = 1 << 15;
  uint32_t avg_degree = 12;
  uint32_t num_communities = 64;
  double intra_fraction = 0.9;
  bool directed = true;
  uint64_t seed = 5;
  double max_weight = 10.0;
};
Result<Graph> GenerateCommunityGraph(const CommunityGraphOptions& options);

/// Power-law graph with vertex labels drawn uniformly from
/// [0, num_vertex_labels) and edge labels from [0, num_edge_labels); the
/// workload for Sim / SubIso / Keyword.
struct LabeledGraphOptions {
  uint32_t scale = 12;
  uint32_t edge_factor = 8;
  uint32_t num_vertex_labels = 8;
  uint32_t num_edge_labels = 1;
  bool directed = true;
  uint64_t seed = 11;
};
Result<Graph> GenerateLabeledGraph(const LabeledGraphOptions& options);

/// Edge/vertex label vocabulary of the social-media-marketing workload
/// (Example 2 / Fig. 4 of the paper).
inline constexpr Label kPersonLabel = 1;
inline constexpr Label kItemLabel = 2;
inline constexpr Label kFollowsLabel = 1;
inline constexpr Label kRecommendsLabel = 2;
inline constexpr Label kRatesBadLabel = 3;
inline constexpr Label kLikesLabel = 4;

/// Social graph with "person --follows--> person" edges (power-law follower
/// counts) and "person --recommends/rates_bad/likes--> item" edges. A
/// fraction of persons is planted to satisfy the demo GPAR (>= 80% of their
/// followees recommend item 0 and none rates it badly) so the marketing
/// benchmark has guaranteed hits.
struct SocialGraphOptions {
  VertexId num_persons = 10000;
  VertexId num_items = 50;
  uint32_t avg_follows = 12;
  double recommend_prob = 0.3;
  double bad_rating_prob = 0.05;
  double planted_customer_fraction = 0.02;
  uint64_t seed = 13;
};
Result<Graph> GenerateSocialGraph(const SocialGraphOptions& options);

}  // namespace grape

#endif  // GRAPE_GRAPH_GENERATORS_H_
