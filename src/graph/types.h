#ifndef GRAPE_GRAPH_TYPES_H_
#define GRAPE_GRAPH_TYPES_H_

#include <cstdint>
#include <limits>

namespace grape {

/// Global vertex identifier. 32 bits covers the graph sizes this in-process
/// reproduction targets while halving message volume versus 64-bit ids.
using VertexId = uint32_t;

/// Fragment-local vertex index (position in a fragment's vertex arrays).
using LocalId = uint32_t;

/// Identifier of a fragment / worker (P_1 .. P_n in the paper).
using FragmentId = uint32_t;

/// Edge weight. SSSP/CF interpret it as distance/rating; other apps may
/// ignore it.
using EdgeWeight = double;

/// Vertex and edge labels, used by pattern matching (Sim/SubIso/GPAR) and
/// keyword search.
using Label = uint32_t;

inline constexpr VertexId kInvalidVertex =
    std::numeric_limits<VertexId>::max();
inline constexpr LocalId kInvalidLocal = std::numeric_limits<LocalId>::max();
inline constexpr FragmentId kInvalidFragment =
    std::numeric_limits<FragmentId>::max();
inline constexpr double kInfDistance = std::numeric_limits<double>::infinity();

}  // namespace grape

#endif  // GRAPE_GRAPH_TYPES_H_
