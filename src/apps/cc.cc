#include "apps/cc.h"

#include <algorithm>
#include <deque>

namespace grape {

namespace {

/// Min-label propagation over the undirected view of the fragment from the
/// queued seeds until the local fixed point.
void Propagate(const Fragment& frag, ParamStore<VertexId>& params,
               std::deque<LocalId>& worklist) {
  while (!worklist.empty()) {
    LocalId v = worklist.front();
    worklist.pop_front();
    VertexId label = params.Get(v);
    auto relax = [&](const FragNeighbor& nb) {
      if (label < params.Get(nb.local)) {
        params.Set(nb.local, label);
        worklist.push_back(nb.local);
      }
    };
    for (const FragNeighbor& nb : frag.OutNeighbors(v)) relax(nb);
    if (frag.is_directed()) {
      for (const FragNeighbor& nb : frag.InNeighbors(v)) relax(nb);
    }
  }
}

/// Frontier-parallel min-label fixed point, the undirected view like the
/// sequential Propagate: each round pushes members' labels to their
/// neighbors with AtomicMin; lowered vertices join the next frontier and
/// the dirty set.
void ParallelPropagate(const Fragment& frag, ParamStore<VertexId>& params,
                       Frontier& cur, Frontier& next,
                       const ParallelContext& par) {
  for (;;) {
    cur.Finalize();
    if (cur.empty()) return;
    next.Reset(frag.num_local());
    cur.ForAll(par, [&](LocalId v) {
      const VertexId label = AtomicLoad(params.Get(v));
      auto relax = [&](const FragNeighbor& nb) {
        if (AtomicMin(params.UntrackedRef(nb.local), label)) {
          params.MarkChangedAtomic(nb.local);
          next.AddAtomic(nb.local);
        }
      };
      for (const FragNeighbor& nb : frag.OutNeighbors(v)) relax(nb);
      if (frag.is_directed()) {
        for (const FragNeighbor& nb : frag.InNeighbors(v)) relax(nb);
      }
    });
    cur.Swap(next);
  }
}

}  // namespace

void CcApp::PEval(const QueryType& query, const Fragment& frag,
                  ParamStore<VertexId>& params) {
  (void)query;
  // Declare the parameters: every local vertex starts with its own id.
  // Initialization is not a "change", so it does not generate messages.
  for (LocalId lid = 0; lid < frag.num_local(); ++lid) {
    params.UntrackedRef(lid) = frag.Gid(lid);
  }
  std::deque<LocalId> worklist;
  for (LocalId lid = 0; lid < frag.num_local(); ++lid) {
    worklist.push_back(lid);
  }
  Propagate(frag, params, worklist);
}

void CcApp::IncEval(const QueryType& query, const Fragment& frag,
                    ParamStore<VertexId>& params,
                    const std::vector<LocalId>& updated) {
  (void)query;
  std::deque<LocalId> worklist(updated.begin(), updated.end());
  Propagate(frag, params, worklist);
}

void CcApp::ParallelPEval(const QueryType& query, const Fragment& frag,
                          ParamStore<VertexId>& params,
                          const ParallelContext& par) {
  (void)query;
  // Untracked init, like the sequential PEval: starting labels are not a
  // "change". 64-aligned chunks keep plain stores race-free.
  par.ForChunks(frag.num_local(), [&](size_t, size_t lo, size_t hi) {
    for (size_t lid = lo; lid < hi; ++lid) {
      params.UntrackedRef(static_cast<LocalId>(lid)) =
          frag.Gid(static_cast<LocalId>(lid));
    }
  });
  Frontier cur;
  Frontier next;
  cur.Reset(frag.num_local());
  cur.FillAll();
  ParallelPropagate(frag, params, cur, next, par);
}

void CcApp::ParallelIncEval(const QueryType& query, const Fragment& frag,
                            ParamStore<VertexId>& params,
                            const std::vector<LocalId>& updated,
                            const ParallelContext& par) {
  (void)query;
  Frontier cur;
  Frontier next;
  cur.Reset(frag.num_local());
  for (LocalId lid : updated) cur.Add(lid);
  ParallelPropagate(frag, params, cur, next, par);
}

CcApp::PartialType CcApp::GetPartial(const QueryType& query,
                                     const Fragment& frag,
                                     const ParamStore<VertexId>& params) const {
  (void)query;
  PartialType partial;
  partial.reserve(frag.num_inner());
  for (LocalId lid = 0; lid < frag.num_inner(); ++lid) {
    partial.emplace_back(frag.Gid(lid), params.Get(lid));
  }
  return partial;
}

CcApp::OutputType CcApp::Assemble(const QueryType& query,
                                  std::vector<PartialType>&& partials) {
  (void)query;
  VertexId max_gid = 0;
  bool any = false;
  for (const PartialType& p : partials) {
    for (const auto& [gid, label] : p) {
      max_gid = std::max(max_gid, gid);
      any = true;
    }
  }
  CcOutput out;
  out.label.assign(any ? max_gid + 1 : 0, kInvalidVertex);
  for (PartialType& p : partials) {
    for (const auto& [gid, label] : p) out.label[gid] = label;
  }
  return out;
}

}  // namespace grape
