#include "apps/cf.h"

#include <algorithm>
#include <cmath>

#include "util/random.h"

namespace grape {

namespace {

std::vector<float> InitFactors(VertexId gid, uint32_t rank, uint64_t seed) {
  std::vector<float> f(rank);
  uint64_t h = seed ^ (static_cast<uint64_t>(gid) + 1) * 0x9e3779b97f4a7c15ULL;
  for (uint32_t t = 0; t < rank; ++t) {
    h = SplitMix64(h);
    // Uniform in [0, 0.5): small positive start keeps early predictions in
    // range for 1..5 ratings.
    f[t] = static_cast<float>((h >> 11) * 0x1.0p-53) * 0.5f;
  }
  return f;
}

float Dot(const std::vector<float>& a, const std::vector<float>& b) {
  float s = 0.0f;
  for (size_t t = 0; t < a.size(); ++t) s += a[t] * b[t];
  return s;
}

}  // namespace

void CfApp::RunEpoch(const QueryType& query, const Fragment& frag,
                     ParamStore<ValueType>& params) {
  const float lr = static_cast<float>(
      query.learning_rate / (1.0 + 0.1 * static_cast<double>(epoch_)));
  const float reg = static_cast<float>(query.regularization);
  last_epoch_sse_ = 0.0;
  size_t ratings = 0;

  for (LocalId v = 0; v < frag.num_inner(); ++v) {
    for (const FragNeighbor& nb : frag.OutNeighbors(v)) {
      const bool partner_inner = frag.IsInner(nb.local);
      // Inner-inner edges are stored twice in the fragment; visit once
      // (from the smaller lid) and update both endpoints. Cross edges have
      // one inner endpoint per fragment: update it against the mirror (the
      // mirror's owner updates the other side symmetrically).
      if (partner_inner && nb.local < v) continue;
      const std::vector<float> partner = params.Get(nb.local);  // snapshot
      if (partner.empty()) continue;
      std::vector<float>& mine = params.UntrackedRef(v);
      float err = static_cast<float>(nb.weight) - Dot(mine, partner);
      last_epoch_sse_ += static_cast<double>(err) * err;
      ++ratings;
      for (uint32_t t = 0; t < query.rank; ++t) {
        float g = -2.0f * err * partner[t] + 2.0f * reg * mine[t];
        mine[t] -= lr * g;
      }
      params.MarkChanged(v);
      if (partner_inner) {
        std::vector<float>& theirs = params.UntrackedRef(nb.local);
        for (uint32_t t = 0; t < query.rank; ++t) {
          float g = -2.0f * err * mine[t] + 2.0f * reg * theirs[t];
          theirs[t] -= lr * g;
        }
        params.MarkChanged(nb.local);
      }
    }
  }
  (void)ratings;
}

void CfApp::PEval(const QueryType& query, const Fragment& frag,
                  ParamStore<ValueType>& params) {
  epoch_ = 0;
  // Deterministic init: owner and mirror copies agree without messages.
  for (LocalId lid = 0; lid < frag.num_local(); ++lid) {
    params.UntrackedRef(lid) =
        InitFactors(frag.Gid(lid), query.rank, query.seed);
  }
  RunEpoch(query, frag, params);
  ++epoch_;
}

void CfApp::IncEval(const QueryType& query, const Fragment& frag,
                    ParamStore<ValueType>& params,
                    const std::vector<LocalId>& updated) {
  (void)updated;  // mirror refreshes are already in the store
  if (epoch_ >= query.epochs) return;  // training done: reach fixed point
  RunEpoch(query, frag, params);
  ++epoch_;
}

CfApp::PartialType CfApp::GetPartial(const QueryType& query,
                                     const Fragment& frag,
                                     const ParamStore<ValueType>& params) const {
  PartialType partial;
  partial.factors.reserve(frag.num_inner());
  for (LocalId lid = 0; lid < frag.num_inner(); ++lid) {
    partial.factors.emplace_back(frag.Gid(lid), params.Get(lid));
  }
  // Final training error over inner-endpoint ratings, each edge counted
  // once globally: inner-inner edges from the smaller lid, cross edges from
  // the endpoint with the smaller gid (so exactly one fragment counts it).
  double sse = 0.0;
  size_t count = 0;
  for (LocalId v = 0; v < frag.num_inner(); ++v) {
    for (const FragNeighbor& nb : frag.OutNeighbors(v)) {
      if (frag.IsInner(nb.local)) {
        if (nb.local < v) continue;
      } else if (frag.Gid(nb.local) < frag.Gid(v)) {
        continue;
      }
      const std::vector<float>& partner = params.Get(nb.local);
      if (partner.empty()) continue;
      float err =
          static_cast<float>(nb.weight) - Dot(params.Get(v), partner);
      sse += static_cast<double>(err) * err;
      ++count;
    }
  }
  partial.squared_error = sse;
  partial.num_ratings = count;
  (void)query;
  return partial;
}

CfApp::OutputType CfApp::Assemble(const QueryType& query,
                                  std::vector<PartialType>&& partials) {
  (void)query;
  CfOutput out;
  VertexId max_gid = 0;
  bool any = false;
  double sse = 0.0;
  size_t count = 0;
  for (const PartialType& p : partials) {
    sse += p.squared_error;
    count += p.num_ratings;
    for (const auto& [gid, f] : p.factors) {
      max_gid = std::max(max_gid, gid);
      any = true;
    }
  }
  out.factors.resize(any ? max_gid + 1 : 0);
  for (PartialType& p : partials) {
    for (auto& [gid, f] : p.factors) out.factors[gid] = std::move(f);
  }
  out.train_rmse = count == 0 ? 0.0 : std::sqrt(sse / count);
  return out;
}

}  // namespace grape
