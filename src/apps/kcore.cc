#include "apps/kcore.h"

#include <algorithm>
#include <deque>

namespace grape {

namespace {

/// Incident arc count in the undirected view (parallel edges count).
size_t LocalDegree(const Fragment& frag, LocalId v) {
  size_t d = frag.OutNeighbors(v).size();
  if (frag.is_directed()) d += frag.InNeighbors(v).size();
  return d;
}

/// h-index of v's neighbour bounds: the largest h such that at least h
/// incident arcs lead to bounds >= h.
uint32_t HIndex(const Fragment& frag, const ParamStore<uint32_t>& params,
                LocalId v) {
  const size_t d = LocalDegree(frag, v);
  std::vector<uint32_t> count(d + 1, 0);
  auto tally = [&](const FragNeighbor& nb) {
    uint64_t b = params.Get(nb.local);
    count[std::min<uint64_t>(b, d)]++;
  };
  for (const FragNeighbor& nb : frag.OutNeighbors(v)) tally(nb);
  if (frag.is_directed()) {
    for (const FragNeighbor& nb : frag.InNeighbors(v)) tally(nb);
  }
  uint32_t cumulative = 0;
  for (size_t h = d; h > 0; --h) {
    cumulative += count[h];
    if (cumulative >= h) return static_cast<uint32_t>(h);
  }
  return 0;
}

/// Worklist refinement of inner bounds until the local fixed point.
void RefineLoop(const Fragment& frag, ParamStore<uint32_t>& params,
                std::deque<LocalId> worklist) {
  std::vector<uint8_t> queued(frag.num_local(), 0);
  for (LocalId v : worklist) queued[v] = 1;
  while (!worklist.empty()) {
    LocalId v = worklist.front();
    worklist.pop_front();
    queued[v] = 0;
    uint32_t h = HIndex(frag, params, v);
    if (h >= params.Get(v)) continue;
    params.Set(v, h);
    auto schedule = [&](const FragNeighbor& nb) {
      if (frag.IsInner(nb.local) && !queued[nb.local]) {
        queued[nb.local] = 1;
        worklist.push_back(nb.local);
      }
    };
    for (const FragNeighbor& nb : frag.OutNeighbors(v)) schedule(nb);
    if (frag.is_directed()) {
      for (const FragNeighbor& nb : frag.InNeighbors(v)) schedule(nb);
    }
  }
}

}  // namespace

void KCoreApp::PEval(const QueryType& query, const Fragment& frag,
                     ParamStore<uint32_t>& params) {
  (void)query;
  // Inner bounds start at the degree; outer copies stay at the optimistic
  // InitValue (infinity) until their owner's first refresh arrives, which
  // preserves the upper-bound invariant.
  std::deque<LocalId> worklist;
  for (LocalId v = 0; v < frag.num_inner(); ++v) {
    params.Set(v, static_cast<uint32_t>(LocalDegree(frag, v)));
    worklist.push_back(v);
  }
  RefineLoop(frag, params, std::move(worklist));
}

void KCoreApp::IncEval(const QueryType& query, const Fragment& frag,
                       ParamStore<uint32_t>& params,
                       const std::vector<LocalId>& updated) {
  (void)query;
  std::deque<LocalId> worklist;
  std::vector<uint8_t> queued(frag.num_local(), 0);
  auto schedule = [&](LocalId w) {
    if (frag.IsInner(w) && !queued[w]) {
      queued[w] = 1;
      worklist.push_back(w);
    }
  };
  for (LocalId w : updated) {
    for (const FragNeighbor& nb : frag.OutNeighbors(w)) schedule(nb.local);
    if (frag.is_directed()) {
      for (const FragNeighbor& nb : frag.InNeighbors(w)) schedule(nb.local);
    }
    schedule(w);
  }
  RefineLoop(frag, params, std::move(worklist));
}

KCoreApp::PartialType KCoreApp::GetPartial(
    const QueryType& query, const Fragment& frag,
    const ParamStore<uint32_t>& params) const {
  (void)query;
  PartialType partial;
  partial.reserve(frag.num_inner());
  for (LocalId v = 0; v < frag.num_inner(); ++v) {
    partial.emplace_back(frag.Gid(v), params.Get(v));
  }
  return partial;
}

KCoreApp::OutputType KCoreApp::Assemble(const QueryType& query,
                                        std::vector<PartialType>&& partials) {
  (void)query;
  VertexId max_gid = 0;
  bool any = false;
  for (const PartialType& p : partials) {
    for (const auto& [gid, c] : p) {
      max_gid = std::max(max_gid, gid);
      any = true;
    }
  }
  KCoreOutput out;
  out.coreness.assign(any ? max_gid + 1 : 0, 0);
  for (const PartialType& p : partials) {
    for (const auto& [gid, c] : p) out.coreness[gid] = c;
  }
  return out;
}

std::vector<uint32_t> SeqKCore(const Graph& graph) {
  const VertexId n = graph.num_vertices();
  // Undirected-view adjacency with multiplicity.
  std::vector<std::vector<VertexId>> adj(n);
  for (VertexId v = 0; v < n; ++v) {
    for (const Neighbor& nb : graph.OutNeighbors(v)) {
      adj[v].push_back(nb.vertex);
    }
    if (graph.is_directed()) {
      for (const Neighbor& nb : graph.InNeighbors(v)) {
        adj[v].push_back(nb.vertex);
      }
    }
  }
  std::vector<uint32_t> degree(n);
  uint32_t max_degree = 0;
  for (VertexId v = 0; v < n; ++v) {
    degree[v] = static_cast<uint32_t>(adj[v].size());
    max_degree = std::max(max_degree, degree[v]);
  }

  // Batagelj–Zaversnik bin-sort peeling.
  std::vector<VertexId> bin(max_degree + 2, 0);
  for (VertexId v = 0; v < n; ++v) bin[degree[v] + 1]++;
  for (size_t d = 1; d < bin.size(); ++d) bin[d] += bin[d - 1];
  std::vector<VertexId> vert(n);
  std::vector<VertexId> pos(n);
  {
    std::vector<VertexId> cursor(bin.begin(), bin.end() - 1);
    for (VertexId v = 0; v < n; ++v) {
      pos[v] = cursor[degree[v]]++;
      vert[pos[v]] = v;
    }
  }

  std::vector<uint32_t> core(n, 0);
  std::vector<uint32_t> current = degree;
  for (VertexId i = 0; i < n; ++i) {
    VertexId v = vert[i];
    core[v] = current[v];
    for (VertexId u : adj[v]) {
      if (current[u] > current[v]) {
        // Move u one bucket down: swap it to the front of its bucket.
        uint32_t du = current[u];
        VertexId pu = pos[u];
        VertexId pw = bin[du];
        VertexId w = vert[pw];
        if (u != w) {
          pos[u] = pw;
          vert[pw] = u;
          pos[w] = pu;
          vert[pu] = w;
        }
        bin[du]++;
        current[u]--;
      }
    }
  }
  return core;
}

}  // namespace grape
