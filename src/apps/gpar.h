#ifndef GRAPE_APPS_GPAR_H_
#define GRAPE_APPS_GPAR_H_

#include <cstdint>
#include <utility>
#include <vector>

#include "core/aggregators.h"
#include "core/pie.h"
#include "graph/generators.h"

namespace grape {

/// Graph pattern association rule Q(x, y) => p(x, y) for the social-media-
/// marketing demo (Example 2 / Fig. 4): "if at least `support` of the people
/// x follows recommend `item`, and none of them rates it badly, then x is
/// likely to buy `item`".
struct GparQuery {
  /// Global vertex id of the item (y).
  VertexId item = 0;
  /// Minimum fraction of followees recommending the item.
  double support = 0.8;
  /// Minimum number of followees for the rule to be meaningful.
  uint32_t min_followees = 3;
};

struct GparCandidate {
  VertexId person;
  /// recommending followees / total followees.
  double confidence;
  uint32_t followees;
  uint32_t recommending;
};

struct GparOutput {
  /// Potential customers ranked by confidence (descending), then id.
  std::vector<GparCandidate> candidates;
};

/// PIE program evaluating the demo GPAR.
///   Update parameter of a person vertex: a bitfield — bit 0 "recommends the
///   item", bit 1 "rates it badly" — broadcast from owners to mirrors so
///   every worker can evaluate the rule over its inner persons' followees.
///   PEval  : scan inner persons' item edges to compute the flags, then
///            evaluate the rule with the (possibly default) mirror flags.
///   IncEval: re-evaluate exactly the inner persons following a mirror
///            whose flags changed — a bounded incremental step.
/// Two supersteps total; matching the paper's claim that GPAR evaluation
/// parallelizes with provable speedup as workers are added.
class GparApp {
 public:
  using QueryType = GparQuery;
  using ValueType = uint8_t;
  using AggregatorType = OverwriteAggregator<uint8_t>;
  using PartialType = std::vector<GparCandidate>;
  using OutputType = GparOutput;
  static constexpr MessageScope kScope = MessageScope::kToMirrors;
  static constexpr bool kResetAfterFlush = false;

  static constexpr uint8_t kRecommendsBit = 1;
  static constexpr uint8_t kRatesBadBit = 2;

  ValueType InitValue() const { return 0; }

  void PEval(const QueryType& query, const Fragment& frag,
             ParamStore<uint8_t>& params);
  void IncEval(const QueryType& query, const Fragment& frag,
               ParamStore<uint8_t>& params,
               const std::vector<LocalId>& updated);
  PartialType GetPartial(const QueryType& query, const Fragment& frag,
                         const ParamStore<uint8_t>& params) const;
  static OutputType Assemble(const QueryType& query,
                             std::vector<PartialType>&& partials);

  double GlobalValue() const { return 0.0; }
  bool ShouldTerminate(uint32_t round, double global) const {
    (void)round;
    (void)global;
    return false;
  }

 private:
  /// Re-evaluates the rule for inner person `lid`; records or erases the
  /// candidate entry.
  void Evaluate(const QueryType& query, const Fragment& frag,
                const ParamStore<uint8_t>& params, LocalId lid);

  /// Candidate decision per inner lid (confidence < 0 = not a candidate).
  std::vector<GparCandidate> decisions_;
  std::vector<uint8_t> is_candidate_;
};

}  // namespace grape

#endif  // GRAPE_APPS_GPAR_H_
