#ifndef GRAPE_APPS_MSF_H_
#define GRAPE_APPS_MSF_H_

#include <memory>
#include <utility>
#include <vector>

#include "core/aggregators.h"
#include "core/engine.h"
#include "core/pie.h"
#include "graph/graph.h"
#include "util/serializer.h"

namespace grape {

/// A candidate minimum-weight outgoing edge (MWOE) of a component, with a
/// deterministic lexicographic order (weight, endpoints) so that Borůvka
/// with ties still produces a forest. Demonstrates the SelfCodable
/// extension point of the codec.
struct MwoeCandidate {
  double weight = kInfDistance;
  VertexId u = kInvalidVertex;
  VertexId v = kInvalidVertex;

  bool valid() const { return u != kInvalidVertex; }

  friend bool operator==(const MwoeCandidate& a, const MwoeCandidate& b) {
    return a.weight == b.weight && a.u == b.u && a.v == b.v;
  }
  friend bool operator<(const MwoeCandidate& a, const MwoeCandidate& b) {
    if (a.weight != b.weight) return a.weight < b.weight;
    if (a.u != b.u) return a.u < b.u;
    return a.v < b.v;
  }

  void EncodeTo(Encoder& enc) const {
    enc.WriteDouble(weight);
    enc.WriteU32(u);
    enc.WriteU32(v);
  }
  static Status DecodeFrom(Decoder& dec, MwoeCandidate* out) {
    GRAPE_RETURN_NOT_OK(dec.ReadDouble(&out->weight));
    GRAPE_RETURN_NOT_OK(dec.ReadU32(&out->u));
    return dec.ReadU32(&out->v);
  }
};

/// One Borůvka phase as a PIE program: every component finds its
/// minimum-weight outgoing edge by a min-reduction keyed on the component's
/// root vertex (roots are vertex ids, so the engine's owner routing IS the
/// reduction tree: candidates are posted to the root's owner and merged by
/// the aggregate function). Two supersteps per phase.
class MwoePhaseApp {
 public:
  struct Query {
    /// labels[gid] = component root of gid (from the driver's union-find).
    std::shared_ptr<const std::vector<VertexId>> labels;
  };

  using QueryType = Query;
  using ValueType = MwoeCandidate;
  using AggregatorType = MinAggregator<MwoeCandidate>;
  using PartialType = std::vector<MwoeCandidate>;
  using OutputType = std::vector<MwoeCandidate>;
  static constexpr MessageScope kScope = MessageScope::kToOwner;
  static constexpr bool kResetAfterFlush = false;

  ValueType InitValue() const { return MwoeCandidate{}; }

  void PEval(const QueryType& query, const Fragment& frag,
             ParamStore<MwoeCandidate>& params);
  void IncEval(const QueryType& query, const Fragment& frag,
               ParamStore<MwoeCandidate>& params,
               const std::vector<LocalId>& updated);
  PartialType GetPartial(const QueryType& query, const Fragment& frag,
                         const ParamStore<MwoeCandidate>& params) const;
  static OutputType Assemble(const QueryType& query,
                             std::vector<PartialType>&& partials);

  double GlobalValue() const { return 0.0; }
  bool ShouldTerminate(uint32_t round, double global) const {
    (void)round;
    (void)global;
    return false;
  }
};

struct MsfOutput {
  /// Chosen forest edges (undirected, u < v).
  std::vector<Edge> edges;
  double total_weight = 0.0;
  /// Number of connected components of the input (trees in the forest).
  size_t num_components = 0;
  /// Borůvka phases executed.
  uint32_t phases = 0;
};

/// Minimum spanning forest by distributed Borůvka: repeatedly runs the
/// MWOE phase program to its fixed point, merges components along the
/// chosen edges (driver-side union-find) and stops when no component has an
/// outgoing edge — a *composition* of PIE fixed points, the pattern the
/// demo uses for multi-stage analytics. Works on the undirected view;
/// parallel edges are fine (the lexicographic order picks one).
class MsfSolver {
 public:
  static Result<MsfOutput> Solve(const FragmentedGraph& fg,
                                 EngineOptions options = {});
};

/// Sequential reference: Kruskal with union-find over the undirected view.
MsfOutput SeqKruskal(const Graph& graph);

}  // namespace grape

#endif  // GRAPE_APPS_MSF_H_
