#ifndef GRAPE_APPS_BFS_H_
#define GRAPE_APPS_BFS_H_

#include <cstdint>
#include <utility>
#include <vector>

#include "core/aggregators.h"
#include "core/codec.h"
#include "core/pie.h"

namespace grape {

struct BfsQuery {
  VertexId source = 0;

  // Wire codec: lets the query ship to remote worker hosts.
  void EncodeTo(Encoder& enc) const { enc.WriteU32(source); }
  static Status DecodeFrom(Decoder& dec, BfsQuery* out) {
    return dec.ReadU32(&out->source);
  }
};

struct BfsOutput {
  /// depth[gid] = hop count from the source; UINT32_MAX when unreachable.
  std::vector<uint32_t> depth;
};

/// PIE program for BFS hop counts: structurally SSSP with unit weights —
/// PEval is a plain sequential BFS, IncEval continues from message-improved
/// vertices, and min aggregation keeps depths monotonically decreasing.
class BfsApp {
 public:
  using QueryType = BfsQuery;
  using ValueType = uint32_t;
  using AggregatorType = MinAggregator<uint32_t>;
  using PartialType = std::vector<std::pair<VertexId, uint32_t>>;
  using OutputType = BfsOutput;
  static constexpr MessageScope kScope = MessageScope::kToOwner;
  static constexpr bool kResetAfterFlush = false;

  ValueType InitValue() const { return UINT32_MAX; }

  void PEval(const QueryType& query, const Fragment& frag,
             ParamStore<uint32_t>& params);
  void IncEval(const QueryType& query, const Fragment& frag,
               ParamStore<uint32_t>& params,
               const std::vector<LocalId>& updated);
  PartialType GetPartial(const QueryType& query, const Fragment& frag,
                         const ParamStore<uint32_t>& params) const;
  static OutputType Assemble(const QueryType& query,
                             std::vector<PartialType>&& partials);

  double GlobalValue() const { return 0.0; }
  bool ShouldTerminate(uint32_t round, double global) const {
    (void)round;
    (void)global;
    return false;
  }
};

}  // namespace grape

#endif  // GRAPE_APPS_BFS_H_
