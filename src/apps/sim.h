#ifndef GRAPE_APPS_SIM_H_
#define GRAPE_APPS_SIM_H_

#include <cstdint>
#include <vector>

#include "apps/pattern.h"
#include "core/aggregators.h"
#include "core/pie.h"

namespace grape {

struct SimQuery {
  Pattern pattern;
};

struct SimOutput {
  /// sim[u] = sorted data vertices simulating pattern vertex u.
  std::vector<std::vector<VertexId>> sim;
};

/// PIE program for graph pattern matching via simulation (Sim).
///   Update parameter of data vertex v: a 64-bit mask, bit u set iff v
///   currently simulates pattern vertex u. Masks only shrink, aggregated
///   with bitwise AND — a monotonic computation under set inclusion, so the
///   Assurance Theorem applies.
///   PEval  : the sequential Henzinger-Henzinger-Kopke refinement restricted
///            to the fragment, with outer masks optimistically initialized
///            by label (a superset of the truth, so no sound candidate is
///            ever lost).
///   IncEval: worklist refinement re-seeded at inner predecessors of outer
///            vertices whose masks shrank at their owner.
class SimApp {
 public:
  using QueryType = SimQuery;
  using ValueType = uint64_t;
  using AggregatorType = BitAndAggregator;
  using PartialType = std::vector<std::vector<VertexId>>;
  using OutputType = SimOutput;
  static constexpr MessageScope kScope = MessageScope::kToMirrors;
  static constexpr bool kResetAfterFlush = false;

  ValueType InitValue() const { return ~0ULL; }

  void PEval(const QueryType& query, const Fragment& frag,
             ParamStore<uint64_t>& params);
  void IncEval(const QueryType& query, const Fragment& frag,
               ParamStore<uint64_t>& params,
               const std::vector<LocalId>& updated);
  PartialType GetPartial(const QueryType& query, const Fragment& frag,
                         const ParamStore<uint64_t>& params) const;
  static OutputType Assemble(const QueryType& query,
                             std::vector<PartialType>&& partials);

  double GlobalValue() const { return 0.0; }
  bool ShouldTerminate(uint32_t round, double global) const {
    (void)round;
    (void)global;
    return false;
  }
};

}  // namespace grape

#endif  // GRAPE_APPS_SIM_H_
