#include "apps/bfs.h"

#include <algorithm>
#include <queue>

namespace grape {

namespace {

using HeapEntry = std::pair<uint32_t, LocalId>;
using MinHeap =
    std::priority_queue<HeapEntry, std::vector<HeapEntry>, std::greater<>>;

/// Seeds may sit at different depths after message application, so the
/// local pass is a unit-weight Dijkstra rather than a plain queue BFS.
void LocalBfs(const Fragment& frag, ParamStore<uint32_t>& params,
              MinHeap& heap) {
  while (!heap.empty()) {
    auto [d, v] = heap.top();
    heap.pop();
    if (d > params.Get(v)) continue;
    for (const FragNeighbor& nb : frag.OutNeighbors(v)) {
      uint32_t nd = d + 1;
      if (nd < params.Get(nb.local)) {
        params.Set(nb.local, nd);
        heap.push({nd, nb.local});
      }
    }
  }
}

}  // namespace

void BfsApp::PEval(const QueryType& query, const Fragment& frag,
                   ParamStore<uint32_t>& params) {
  MinHeap heap;
  LocalId lid = frag.Lid(query.source);
  if (lid != kInvalidLocal && frag.IsInner(lid)) {
    params.Set(lid, 0);
    heap.push({0, lid});
  }
  LocalBfs(frag, params, heap);
}

void BfsApp::IncEval(const QueryType& query, const Fragment& frag,
                     ParamStore<uint32_t>& params,
                     const std::vector<LocalId>& updated) {
  (void)query;
  MinHeap heap;
  for (LocalId lid : updated) heap.push({params.Get(lid), lid});
  LocalBfs(frag, params, heap);
}

BfsApp::PartialType BfsApp::GetPartial(const QueryType& query,
                                       const Fragment& frag,
                                       const ParamStore<uint32_t>& params) const {
  (void)query;
  PartialType partial;
  partial.reserve(frag.num_inner());
  for (LocalId lid = 0; lid < frag.num_inner(); ++lid) {
    partial.emplace_back(frag.Gid(lid), params.Get(lid));
  }
  return partial;
}

BfsApp::OutputType BfsApp::Assemble(const QueryType& query,
                                    std::vector<PartialType>&& partials) {
  (void)query;
  VertexId max_gid = 0;
  bool any = false;
  for (const PartialType& p : partials) {
    for (const auto& [gid, depth] : p) {
      max_gid = std::max(max_gid, gid);
      any = true;
    }
  }
  BfsOutput out;
  out.depth.assign(any ? max_gid + 1 : 0, UINT32_MAX);
  for (PartialType& p : partials) {
    for (const auto& [gid, depth] : p) out.depth[gid] = depth;
  }
  return out;
}

}  // namespace grape
