#ifndef GRAPE_APPS_PAGERANK_H_
#define GRAPE_APPS_PAGERANK_H_

#include <utility>
#include <vector>

#include "core/aggregators.h"
#include "core/codec.h"
#include "core/parallel.h"
#include "core/pie.h"

namespace grape {

struct PageRankQuery {
  double damping = 0.85;
  uint32_t max_iterations = 50;
  /// Stop once the global L1 delta of the rank vector drops below epsilon.
  double epsilon = 1e-9;

  // Wire codec: lets the query ship to remote worker hosts (whose
  // ShouldTerminate hook reads max_iterations/epsilon).
  void EncodeTo(Encoder& enc) const {
    enc.WriteDouble(damping);
    enc.WriteU32(max_iterations);
    enc.WriteDouble(epsilon);
  }
  static Status DecodeFrom(Decoder& dec, PageRankQuery* out) {
    GRAPE_RETURN_NOT_OK(dec.ReadDouble(&out->damping));
    GRAPE_RETURN_NOT_OK(dec.ReadU32(&out->max_iterations));
    return dec.ReadDouble(&out->epsilon);
  }
};

struct PageRankOutput {
  std::vector<double> rank;
};

/// PIE program for PageRank. Unlike SSSP/CC this computation is *not*
/// monotonic, so it terminates through the ShouldTerminate hook (coordinator
/// checks the summed L1 delta) rather than the fixed-point-of-parameters
/// rule — demonstrating that GRAPE also hosts iterative numeric algorithms
/// (the Simulation Theorem direction).
///
///   Update parameter of v: its out-contribution c(v) = rank(v)/outdeg(v).
///   PEval broadcasts initial contributions of border vertices to mirrors;
///   each IncEval round pulls in-neighbour contributions (mirrors included)
///   and refreshes changed border contributions. Dangling (sink) mass is
///   dropped, matching SeqPageRank exactly.
class PageRankApp {
 public:
  using QueryType = PageRankQuery;
  using ValueType = double;
  using AggregatorType = OverwriteAggregator<double>;
  using PartialType = std::vector<std::pair<VertexId, double>>;
  using OutputType = PageRankOutput;
  static constexpr MessageScope kScope = MessageScope::kToMirrors;
  static constexpr bool kResetAfterFlush = false;

  ValueType InitValue() const { return 0.0; }

  void PEval(const QueryType& query, const Fragment& frag,
             ParamStore<double>& params);
  void IncEval(const QueryType& query, const Fragment& frag,
               ParamStore<double>& params,
               const std::vector<LocalId>& updated);

  // Frontier-parallel variants (FrontierParallelApp). PageRank's floating
  // point is order-sensitive, so instead of atomics the pull phase runs
  // over disjoint 64-aligned inner-lid chunks: each vertex sums its
  // in-neighbor contributions in adjacency order (the sequential order),
  // and the round's L1 residual is folded sequentially over a per-vertex
  // scratch array in lid order — reproducing the sequential delta_ (and
  // hence the termination round) to the last bit at any thread count.
  void ParallelPEval(const QueryType& query, const Fragment& frag,
                     ParamStore<double>& params, const ParallelContext& par);
  void ParallelIncEval(const QueryType& query, const Fragment& frag,
                       ParamStore<double>& params,
                       const std::vector<LocalId>& updated,
                       const ParallelContext& par);
  PartialType GetPartial(const QueryType& query, const Fragment& frag,
                         const ParamStore<double>& params) const;
  static OutputType Assemble(const QueryType& query,
                             std::vector<PartialType>&& partials);

  double GlobalValue() const { return delta_; }
  bool ShouldTerminate(uint32_t round, double global) const {
    if (round < 2) return false;  // at least one rank update
    return global < query_.epsilon || round >= query_.max_iterations + 1;
  }

  // Checkpoint hooks (CheckpointableApp): PageRank keeps the rank vector
  // and residual outside the ParamStore, so fault-tolerant recovery must
  // capture them or a resumed run would restart the power iteration.
  void EncodeState(Encoder& enc) const {
    query_.EncodeTo(enc);
    enc.WritePodVector(rank_);
    enc.WriteDouble(delta_);
  }
  Status DecodeState(Decoder& dec) {
    GRAPE_RETURN_NOT_OK(PageRankQuery::DecodeFrom(dec, &query_));
    GRAPE_RETURN_NOT_OK(dec.ReadPodVector(&rank_));
    return dec.ReadDouble(&delta_);
  }

 private:
  QueryType query_;
  std::vector<double> rank_;  // by inner lid
  double delta_ = 0.0;
  // Frontier-parallel scratch (not state: rebuilt every round, never
  // checkpointed): next round's ranks and per-vertex |next - rank| terms
  // awaiting the sequential lid-order fold into delta_.
  std::vector<double> next_scratch_;
  std::vector<double> diff_scratch_;
};

}  // namespace grape

#endif  // GRAPE_APPS_PAGERANK_H_
