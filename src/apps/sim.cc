#include "apps/sim.h"

#include <algorithm>
#include <deque>

namespace grape {

namespace {

/// Recomputes the mask of inner vertex v from its local out-neighbourhood;
/// returns true if the mask shrank. Outer neighbours' masks are whatever the
/// owner last broadcast (a superset of the truth between rounds, which
/// preserves soundness of the refinement).
bool RefineVertex(const Pattern& pattern, const Fragment& frag,
                  ParamStore<uint64_t>& params, LocalId v) {
  uint64_t m = params.Get(v);
  if (m == 0) return false;
  uint64_t next = m;
  for (uint32_t u = 0; u < pattern.num_vertices(); ++u) {
    if (!(m & (1ULL << u))) continue;
    for (const auto& [u2, elabel] : pattern.Out(u)) {
      bool witness = false;
      for (const FragNeighbor& nb : frag.OutNeighbors(v)) {
        if (nb.label == elabel && (params.Get(nb.local) & (1ULL << u2))) {
          witness = true;
          break;
        }
      }
      if (!witness) {
        next &= ~(1ULL << u);
        break;
      }
    }
  }
  if (next == m) return false;
  params.Set(v, next);
  return true;
}

/// Worklist refinement until the local fixed point; seeds are inner
/// vertices to re-check.
void RefineLoop(const Pattern& pattern, const Fragment& frag,
                ParamStore<uint64_t>& params, std::deque<LocalId> worklist) {
  std::vector<uint8_t> queued(frag.num_local(), 0);
  for (LocalId v : worklist) queued[v] = 1;
  while (!worklist.empty()) {
    LocalId v = worklist.front();
    worklist.pop_front();
    queued[v] = 0;
    if (!RefineVertex(pattern, frag, params, v)) continue;
    // v's mask shrank: every inner predecessor may lose a witness.
    for (const FragNeighbor& nb : frag.InNeighbors(v)) {
      if (frag.IsInner(nb.local) && !queued[nb.local]) {
        queued[nb.local] = 1;
        worklist.push_back(nb.local);
      }
    }
  }
}

uint64_t LabelMask(const Pattern& pattern, Label label) {
  uint64_t m = 0;
  for (uint32_t u = 0; u < pattern.num_vertices(); ++u) {
    if (pattern.vertex_label(u) == label) m |= (1ULL << u);
  }
  return m;
}

}  // namespace

void SimApp::PEval(const QueryType& query, const Fragment& frag,
                   ParamStore<uint64_t>& params) {
  // Declare parameters: label-based candidate masks for every local vertex.
  // Outer copies start from the same deterministic value their owner uses,
  // so the initial state is globally consistent without any message.
  for (LocalId lid = 0; lid < frag.num_local(); ++lid) {
    params.UntrackedRef(lid) =
        LabelMask(query.pattern, frag.vertex_label(lid));
  }
  std::deque<LocalId> worklist;
  for (LocalId lid = 0; lid < frag.num_inner(); ++lid) {
    worklist.push_back(lid);
  }
  RefineLoop(query.pattern, frag, params, std::move(worklist));
}

void SimApp::IncEval(const QueryType& query, const Fragment& frag,
                     ParamStore<uint64_t>& params,
                     const std::vector<LocalId>& updated) {
  // `updated` lists outer vertices whose masks shrank at their owner;
  // re-check their inner predecessors.
  std::deque<LocalId> worklist;
  std::vector<uint8_t> queued(frag.num_local(), 0);
  for (LocalId w : updated) {
    for (const FragNeighbor& nb : frag.InNeighbors(w)) {
      if (frag.IsInner(nb.local) && !queued[nb.local]) {
        queued[nb.local] = 1;
        worklist.push_back(nb.local);
      }
    }
    // In the full-re-evaluation ablation the engine passes inner vertices
    // here as well; re-check them directly.
    if (frag.IsInner(w) && !queued[w]) {
      queued[w] = 1;
      worklist.push_back(w);
    }
  }
  RefineLoop(query.pattern, frag, params, std::move(worklist));
}

SimApp::PartialType SimApp::GetPartial(const QueryType& query,
                                       const Fragment& frag,
                                       const ParamStore<uint64_t>& params) const {
  PartialType partial(query.pattern.num_vertices());
  for (LocalId lid = 0; lid < frag.num_inner(); ++lid) {
    uint64_t m = params.Get(lid);
    while (m != 0) {
      int u = __builtin_ctzll(m);
      partial[u].push_back(frag.Gid(lid));
      m &= m - 1;
    }
  }
  return partial;
}

SimApp::OutputType SimApp::Assemble(const QueryType& query,
                                    std::vector<PartialType>&& partials) {
  SimOutput out;
  out.sim.resize(query.pattern.num_vertices());
  for (PartialType& p : partials) {
    for (uint32_t u = 0; u < p.size(); ++u) {
      out.sim[u].insert(out.sim[u].end(), p[u].begin(), p[u].end());
    }
  }
  for (auto& v : out.sim) std::sort(v.begin(), v.end());
  return out;
}

}  // namespace grape
