#ifndef GRAPE_APPS_KEYWORD_H_
#define GRAPE_APPS_KEYWORD_H_

#include <utility>
#include <vector>

#include "core/aggregators.h"
#include "core/pie.h"

namespace grape {

struct KeywordQuery {
  /// The keywords (vertex labels) that must all be nearby.
  std::vector<Label> keywords;
  /// A vertex answers the query when, for every keyword, some vertex
  /// carrying it reaches the vertex within this distance.
  double radius = 2.0;
};

struct KeywordMatch {
  VertexId vertex;
  /// dist[i] = distance from the nearest vertex labelled keywords[i].
  std::vector<double> dist;
  /// max over dist — the ranking key (smaller = better).
  double score;
};

struct KeywordOutput {
  /// Matches sorted by score then vertex id.
  std::vector<KeywordMatch> matches;
};

/// PIE program for keyword search in graphs (Keyword): a vertex v matches
/// {k_1..k_m} within radius d when every keyword has a witness vertex at
/// distance <= d that reaches v.
///   PEval  : one sequential multi-source Dijkstra per keyword over the
///            fragment (sources: local vertices carrying the keyword).
///   IncEval: Dijkstra continued from message-improved vertices.
///   Update parameters: the m-vector of keyword distances per border/outer
///            vertex under element-wise min — monotonic, so the Assurance
///            Theorem applies exactly as for SSSP.
class KeywordApp {
 public:
  using QueryType = KeywordQuery;
  using ValueType = std::vector<double>;
  using AggregatorType = ElementwiseMinAggregator;
  using PartialType = std::vector<KeywordMatch>;
  using OutputType = KeywordOutput;
  static constexpr MessageScope kScope = MessageScope::kToOwner;
  static constexpr bool kResetAfterFlush = false;

  ValueType InitValue() const { return {}; }

  void PEval(const QueryType& query, const Fragment& frag,
             ParamStore<ValueType>& params);
  void IncEval(const QueryType& query, const Fragment& frag,
               ParamStore<ValueType>& params,
               const std::vector<LocalId>& updated);
  PartialType GetPartial(const QueryType& query, const Fragment& frag,
                         const ParamStore<ValueType>& params) const;
  static OutputType Assemble(const QueryType& query,
                             std::vector<PartialType>&& partials);

  double GlobalValue() const { return 0.0; }
  bool ShouldTerminate(uint32_t round, double global) const {
    (void)round;
    (void)global;
    return false;
  }
};

}  // namespace grape

#endif  // GRAPE_APPS_KEYWORD_H_
