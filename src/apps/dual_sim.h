#ifndef GRAPE_APPS_DUAL_SIM_H_
#define GRAPE_APPS_DUAL_SIM_H_

#include <cstdint>
#include <vector>

#include "apps/pattern.h"
#include "apps/sim.h"
#include "core/aggregators.h"
#include "core/pie.h"

namespace grape {

/// PIE program for *dual* graph simulation — the stronger matching notion
/// behind graph pattern association rules (the paper's GPAR application,
/// ref [1]): v dual-simulates pattern vertex u iff label(v) == label(u),
/// every pattern child edge u -> u' has a data witness v -> v' with v' in
/// sim(u') (as in plain simulation), AND every pattern parent edge u'' -> u
/// has a data witness v'' -> v with v'' in sim(u'').
///
/// Same machinery as SimApp — 64-bit candidate masks shrinking under
/// bitwise AND, owner-to-mirror refreshes — with refinement conditions in
/// both directions, so a mask change re-schedules both predecessor and
/// successor neighbours.
class DualSimApp {
 public:
  using QueryType = SimQuery;
  using ValueType = uint64_t;
  using AggregatorType = BitAndAggregator;
  using PartialType = std::vector<std::vector<VertexId>>;
  using OutputType = SimOutput;
  static constexpr MessageScope kScope = MessageScope::kToMirrors;
  static constexpr bool kResetAfterFlush = false;

  ValueType InitValue() const { return ~0ULL; }

  void PEval(const QueryType& query, const Fragment& frag,
             ParamStore<uint64_t>& params);
  void IncEval(const QueryType& query, const Fragment& frag,
               ParamStore<uint64_t>& params,
               const std::vector<LocalId>& updated);
  PartialType GetPartial(const QueryType& query, const Fragment& frag,
                         const ParamStore<uint64_t>& params) const;
  static OutputType Assemble(const QueryType& query,
                             std::vector<PartialType>&& partials);

  double GlobalValue() const { return 0.0; }
  bool ShouldTerminate(uint32_t round, double global) const {
    (void)round;
    (void)global;
    return false;
  }
};

/// Sequential reference: dual simulation over the whole graph.
std::vector<std::vector<VertexId>> SeqDualSimulation(const Graph& graph,
                                                     const Pattern& pattern);

}  // namespace grape

#endif  // GRAPE_APPS_DUAL_SIM_H_
