#include "apps/pattern.h"

#include <deque>
#include <sstream>

namespace grape {

Result<Pattern> Pattern::Create(std::vector<Label> vertex_labels,
                                std::vector<PatternEdge> edges) {
  if (vertex_labels.empty()) {
    return Status::InvalidArgument("pattern must have at least one vertex");
  }
  if (vertex_labels.size() > 64) {
    return Status::InvalidArgument("patterns are limited to 64 vertices");
  }
  Pattern p;
  p.vertex_labels_ = std::move(vertex_labels);
  p.edges_ = std::move(edges);
  p.out_.resize(p.vertex_labels_.size());
  p.in_.resize(p.vertex_labels_.size());
  for (const PatternEdge& e : p.edges_) {
    if (e.src >= p.num_vertices() || e.dst >= p.num_vertices()) {
      return Status::InvalidArgument("pattern edge references unknown vertex");
    }
    p.out_[e.src].emplace_back(e.dst, e.label);
    p.in_[e.dst].emplace_back(e.src, e.label);
  }
  return p;
}

bool Pattern::IsConnected() const {
  if (num_vertices() == 0) return false;
  std::vector<bool> seen(num_vertices(), false);
  std::deque<uint32_t> frontier{0};
  seen[0] = true;
  size_t visited = 1;
  while (!frontier.empty()) {
    uint32_t u = frontier.front();
    frontier.pop_front();
    auto visit = [&](uint32_t v) {
      if (!seen[v]) {
        seen[v] = true;
        ++visited;
        frontier.push_back(v);
      }
    };
    for (const auto& [v, l] : out_[u]) visit(v);
    for (const auto& [v, l] : in_[u]) visit(v);
  }
  return visited == num_vertices();
}

std::string Pattern::ToString() const {
  std::ostringstream os;
  os << "Pattern(" << num_vertices() << " vertices: [";
  for (uint32_t u = 0; u < num_vertices(); ++u) {
    if (u > 0) os << ", ";
    os << vertex_labels_[u];
  }
  os << "]; edges: ";
  for (size_t i = 0; i < edges_.size(); ++i) {
    if (i > 0) os << ", ";
    os << edges_[i].src << "->" << edges_[i].dst;
    if (edges_[i].label != 0) os << ":" << edges_[i].label;
  }
  os << ")";
  return os.str();
}

}  // namespace grape
