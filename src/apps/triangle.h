#ifndef GRAPE_APPS_TRIANGLE_H_
#define GRAPE_APPS_TRIANGLE_H_

#include <cstdint>
#include <vector>

#include "core/aggregators.h"
#include "core/pie.h"

namespace grape {

struct TriangleQuery {};

struct TriangleOutput {
  uint64_t triangles = 0;
};

/// PIE program counting triangles in the undirected view of the graph — an
/// extension query class beyond the paper's six, showcasing wedge
/// forwarding over the same update-parameter machinery SubIso uses.
///
/// Each triangle {u < v < w} (by global id) is found exactly once at its
/// middle vertex v: PEval enumerates wedges u - v - w with u < v < w and
/// verifies the closing edge u - w wherever an endpoint's full adjacency is
/// local; otherwise the wedge travels to u's owner (kToOwner + reset
/// outboxes), whose IncEval closes it. The triangle count grows
/// monotonically, and the fixed point is reached when no wedge is in
/// flight — typically three supersteps.
class TriangleApp {
 public:
  using QueryType = TriangleQuery;
  /// Per-vertex outbox of wedge partners: for messages addressed to u, each
  /// entry w asks "does edge (u, w) exist?".
  using ValueType = std::vector<VertexId>;
  using AggregatorType = AppendAggregator<VertexId>;
  using PartialType = uint64_t;
  using OutputType = TriangleOutput;
  static constexpr MessageScope kScope = MessageScope::kToOwner;
  static constexpr bool kResetAfterFlush = true;

  ValueType InitValue() const { return {}; }

  void PEval(const QueryType& query, const Fragment& frag,
             ParamStore<ValueType>& params);
  void IncEval(const QueryType& query, const Fragment& frag,
               ParamStore<ValueType>& params,
               const std::vector<LocalId>& updated);
  PartialType GetPartial(const QueryType& query, const Fragment& frag,
                         const ParamStore<ValueType>& params) const;
  static OutputType Assemble(const QueryType& query,
                             std::vector<PartialType>&& partials);

  double GlobalValue() const { return 0.0; }
  bool ShouldTerminate(uint32_t round, double global) const {
    (void)round;
    (void)global;
    return false;
  }

 private:
  uint64_t local_count_ = 0;
};

}  // namespace grape

#endif  // GRAPE_APPS_TRIANGLE_H_
