#ifndef GRAPE_APPS_SUBISO_H_
#define GRAPE_APPS_SUBISO_H_

#include <cstdint>
#include <vector>

#include "apps/pattern.h"
#include "apps/seq/seq_matching.h"
#include "core/aggregators.h"
#include "core/pie.h"
#include "partition/label_index.h"

namespace grape {

struct SubIsoQuery {
  Pattern pattern;
  /// Per-worker cap on enumerated embeddings (0 = unlimited).
  size_t max_results = 0;
};

struct SubIsoOutput {
  /// Sorted, deduplicated embeddings; embedding[u] = data vertex matched to
  /// pattern vertex u.
  std::vector<Embedding> embeddings;
};

/// PIE program for subgraph isomorphism (SubIso) by partial-embedding
/// forwarding:
///   PEval  : sequential ordered backtracking (the same procedure as
///            SeqSubgraphIsomorphism) over the local fragment, rooted at
///            inner candidates of the first order vertex.
///   IncEval: resumes received partial embeddings — each message carries an
///            embedding whose next anchor (or pending-verification vertex)
///            is owned by this worker, where its full adjacency is visible.
///   Update parameters: per-vertex embedding outboxes, union-aggregated and
///            drained after each flush (kResetAfterFlush). The set of
///            discovered embeddings grows monotonically, so the computation
///            reaches a fixed point once no embedding is in flight.
class SubIsoApp {
 public:
  using QueryType = SubIsoQuery;
  /// A travelling partial match: positions [0, k) hold the data vertex per
  /// pattern vertex (kInvalidVertex = unmatched); position k holds
  /// 1 + order-position pending verification, or 0 if none.
  using ValueType = std::vector<std::vector<VertexId>>;
  using AggregatorType = AppendAggregator<std::vector<VertexId>>;
  using PartialType = std::vector<Embedding>;
  using OutputType = SubIsoOutput;
  static constexpr MessageScope kScope = MessageScope::kToOwner;
  static constexpr bool kResetAfterFlush = true;

  ValueType InitValue() const { return {}; }

  void PEval(const QueryType& query, const Fragment& frag,
             ParamStore<ValueType>& params);
  void IncEval(const QueryType& query, const Fragment& frag,
               ParamStore<ValueType>& params,
               const std::vector<LocalId>& updated);
  PartialType GetPartial(const QueryType& query, const Fragment& frag,
                         const ParamStore<ValueType>& params) const;
  static OutputType Assemble(const QueryType& query,
                             std::vector<PartialType>&& partials);

  double GlobalValue() const { return 0.0; }
  bool ShouldTerminate(uint32_t round, double global) const {
    (void)round;
    (void)global;
    return false;
  }

 private:
  /// Continues the backtracking search for one partial embedding.
  void Extend(const QueryType& query, const Fragment& frag,
              ParamStore<ValueType>& params, std::vector<VertexId>& match,
              size_t depth);

  std::vector<uint32_t> order_;       // shared matching order
  std::vector<Embedding> results_;    // completed embeddings at this worker
  LabelIndex index_;                  // label -> inner candidates
};

}  // namespace grape

#endif  // GRAPE_APPS_SUBISO_H_
