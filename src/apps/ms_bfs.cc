#include "apps/ms_bfs.h"

#include <algorithm>
#include <queue>

namespace grape {

namespace {

using HeapEntry = std::pair<uint32_t, LocalId>;
using MinHeap =
    std::priority_queue<HeapEntry, std::vector<HeapEntry>, std::greater<>>;

uint32_t LaneOf(const std::vector<uint32_t>& v, size_t k) {
  return k < v.size() ? v[k] : UINT32_MAX;
}

/// BfsApp's LocalBfs transposed onto lane k: seeds may sit at different
/// depths after message application, so it is a unit-weight lazy-deletion
/// Dijkstra, identical to the single-source pass.
void LaneBfs(const Fragment& frag, ParamStore<std::vector<uint32_t>>& params,
             size_t k, MinHeap& heap) {
  while (!heap.empty()) {
    auto [d, v] = heap.top();
    heap.pop();
    if (d > LaneOf(params.Get(v), k)) continue;
    for (const FragNeighbor& nb : frag.OutNeighbors(v)) {
      uint32_t nd = d + 1;
      if (nd < LaneOf(params.Get(nb.local), k)) {
        std::vector<uint32_t>& val = params.Mutate(nb.local);
        if (val.size() <= k) val.resize(k + 1, UINT32_MAX);
        val[k] = nd;
        heap.push({nd, nb.local});
      }
    }
  }
}

}  // namespace

void MsBfsApp::PEval(const QueryType& query, const Fragment& frag,
                     ParamStore<ValueType>& params) {
  const size_t m = query.sources.size();
  for (size_t k = 0; k < m; ++k) {
    MinHeap heap;
    LocalId lid = frag.Lid(query.sources[k]);
    // Only the owner seeds, exactly as in BfsApp.
    if (lid != kInvalidLocal && frag.IsInner(lid)) {
      std::vector<uint32_t>& val = params.Mutate(lid);
      if (val.size() <= k) val.resize(k + 1, UINT32_MAX);
      val[k] = 0;
      heap.push({0, lid});
    }
    LaneBfs(frag, params, k, heap);
  }
}

void MsBfsApp::IncEval(const QueryType& query, const Fragment& frag,
                       ParamStore<ValueType>& params,
                       const std::vector<LocalId>& updated) {
  const size_t m = query.sources.size();
  for (size_t k = 0; k < m; ++k) {
    MinHeap heap;
    for (LocalId lid : updated) {
      uint32_t d = LaneOf(params.Get(lid), k);
      // An unreachable lane didn't improve this round; skip it.
      if (d != UINT32_MAX) heap.push({d, lid});
    }
    LaneBfs(frag, params, k, heap);
  }
}

MsBfsApp::PartialType MsBfsApp::GetPartial(
    const QueryType& query, const Fragment& frag,
    const ParamStore<ValueType>& params) const {
  const size_t m = query.sources.size();
  PartialType partial;
  partial.reserve(frag.num_inner());
  for (LocalId lid = 0; lid < frag.num_inner(); ++lid) {
    const std::vector<uint32_t>& val = params.Get(lid);
    std::vector<uint32_t> lanes(m, UINT32_MAX);
    for (size_t k = 0; k < std::min(val.size(), m); ++k) lanes[k] = val[k];
    partial.emplace_back(frag.Gid(lid), std::move(lanes));
  }
  return partial;
}

MsBfsApp::OutputType MsBfsApp::Assemble(const QueryType& query,
                                        std::vector<PartialType>&& partials) {
  const size_t m = query.sources.size();
  VertexId max_gid = 0;
  bool any = false;
  for (const PartialType& p : partials) {
    for (const auto& [gid, lanes] : p) {
      max_gid = std::max(max_gid, gid);
      any = true;
    }
  }
  MsBfsOutput out;
  out.depth.assign(m,
                   std::vector<uint32_t>(any ? max_gid + 1 : 0, UINT32_MAX));
  for (PartialType& p : partials) {
    for (const auto& [gid, lanes] : p) {
      for (size_t k = 0; k < m; ++k) out.depth[k][gid] = lanes[k];
    }
  }
  return out;
}

}  // namespace grape
