#ifndef GRAPE_APPS_PATTERN_H_
#define GRAPE_APPS_PATTERN_H_

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "graph/types.h"
#include "util/result.h"

namespace grape {

/// A directed edge of a query pattern.
struct PatternEdge {
  uint32_t src;
  uint32_t dst;
  Label label = 0;
};

/// A small query pattern for graph pattern matching (Sim, SubIso, GPAR).
/// Pattern vertices are dense ids [0, num_vertices); each carries a vertex
/// label matched against data-vertex labels. At most 64 pattern vertices
/// (simulation encodes candidate sets as 64-bit masks).
class Pattern {
 public:
  Pattern() = default;

  /// Builds a pattern and its adjacency index; fails on dangling ids or
  /// size > 64.
  static Result<Pattern> Create(std::vector<Label> vertex_labels,
                                std::vector<PatternEdge> edges);

  uint32_t num_vertices() const {
    return static_cast<uint32_t>(vertex_labels_.size());
  }
  size_t num_edges() const { return edges_.size(); }

  Label vertex_label(uint32_t u) const { return vertex_labels_[u]; }
  const std::vector<PatternEdge>& edges() const { return edges_; }

  /// (neighbor, edge label) pairs.
  const std::vector<std::pair<uint32_t, Label>>& Out(uint32_t u) const {
    return out_[u];
  }
  const std::vector<std::pair<uint32_t, Label>>& In(uint32_t u) const {
    return in_[u];
  }

  /// True if the pattern, viewed as undirected, is connected (required by
  /// the SubIso matching-order construction).
  bool IsConnected() const;

  std::string ToString() const;

 private:
  std::vector<Label> vertex_labels_;
  std::vector<PatternEdge> edges_;
  std::vector<std::vector<std::pair<uint32_t, Label>>> out_;
  std::vector<std::vector<std::pair<uint32_t, Label>>> in_;
};

}  // namespace grape

#endif  // GRAPE_APPS_PATTERN_H_
