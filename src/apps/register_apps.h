#ifndef GRAPE_APPS_REGISTER_APPS_H_
#define GRAPE_APPS_REGISTER_APPS_H_

namespace grape {

/// Registers every built-in PIE program (sssp, bfs, cc, pagerank, sim,
/// subiso, keyword, cf, gpar) in AppRegistry::Global(). Idempotent.
/// Examples and benches call this once at startup — the programmatic
/// equivalent of the demo's pre-populated GRAPE library.
void RegisterBuiltinApps();

}  // namespace grape

#endif  // GRAPE_APPS_REGISTER_APPS_H_
