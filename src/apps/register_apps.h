#ifndef GRAPE_APPS_REGISTER_APPS_H_
#define GRAPE_APPS_REGISTER_APPS_H_

namespace grape {

/// Registers every built-in PIE program (sssp, bfs, cc, pagerank, sim,
/// subiso, keyword, cf, gpar) in AppRegistry::Global(). Idempotent.
/// Examples and benches call this once at startup — the programmatic
/// equivalent of the demo's pre-populated GRAPE library. Also registers
/// the remote worker factories (RegisterBuiltinWorkerApps below).
void RegisterBuiltinApps();

/// Registers the wire-codable subset (sssp, bfs, cc, pagerank) in
/// WorkerAppRegistry::Global() so endpoint processes can instantiate them
/// by name for remote compute. Idempotent. IMPORTANT: the multi-process
/// transports fork their endpoints at Create time and a fork snapshots
/// the registry — call this BEFORE building the transport in any process
/// that should host remote workers (engine processes cover their own app
/// for the in-thread inproc case automatically).
void RegisterBuiltinWorkerApps();

}  // namespace grape

#endif  // GRAPE_APPS_REGISTER_APPS_H_
