#include "apps/ms_sssp.h"

#include <algorithm>
#include <queue>

namespace grape {

namespace {

using HeapEntry = std::pair<double, LocalId>;
using MinHeap =
    std::priority_queue<HeapEntry, std::vector<HeapEntry>, std::greater<>>;

double LaneOf(const std::vector<double>& v, size_t k) {
  return k < v.size() ? v[k] : kInfDistance;
}

/// SsspApp's LocalDijkstra transposed onto lane k: identical lazy-deletion
/// heap, identical `d + nb.weight` fold in identical neighbor order, so the
/// lane converges to the same bits as the single-source run.
void LaneDijkstra(const Fragment& frag,
                  ParamStore<std::vector<double>>& params, size_t k,
                  MinHeap& heap) {
  while (!heap.empty()) {
    auto [d, v] = heap.top();
    heap.pop();
    if (d > LaneOf(params.Get(v), k)) continue;
    for (const FragNeighbor& nb : frag.OutNeighbors(v)) {
      double nd = d + nb.weight;
      if (nd < LaneOf(params.Get(nb.local), k)) {
        std::vector<double>& val = params.Mutate(nb.local);
        if (val.size() <= k) val.resize(k + 1, kInfDistance);
        val[k] = nd;
        heap.push({nd, nb.local});
      }
    }
  }
}

}  // namespace

void MsSsspApp::PEval(const QueryType& query, const Fragment& frag,
                      ParamStore<ValueType>& params) {
  const size_t m = query.sources.size();
  for (size_t k = 0; k < m; ++k) {
    MinHeap heap;
    LocalId lid = frag.Lid(query.sources[k]);
    // Only the owner seeds — same rule as SsspApp: a mirror would relay a
    // stale infinite value, and its true distance arrives via messages.
    if (lid != kInvalidLocal && frag.IsInner(lid)) {
      std::vector<double>& val = params.Mutate(lid);
      if (val.size() <= k) val.resize(k + 1, kInfDistance);
      val[k] = 0.0;
      heap.push({0.0, lid});
    }
    LaneDijkstra(frag, params, k, heap);
  }
}

void MsSsspApp::IncEval(const QueryType& query, const Fragment& frag,
                        ParamStore<ValueType>& params,
                        const std::vector<LocalId>& updated) {
  const size_t m = query.sources.size();
  for (size_t k = 0; k < m; ++k) {
    MinHeap heap;
    for (LocalId lid : updated) {
      double d = LaneOf(params.Get(lid), k);
      // An +inf lane didn't improve this round; seeding it relaxes nothing.
      if (d < kInfDistance) heap.push({d, lid});
    }
    LaneDijkstra(frag, params, k, heap);
  }
}

MsSsspApp::PartialType MsSsspApp::GetPartial(
    const QueryType& query, const Fragment& frag,
    const ParamStore<ValueType>& params) const {
  const size_t m = query.sources.size();
  PartialType partial;
  partial.reserve(frag.num_inner());
  for (LocalId lid = 0; lid < frag.num_inner(); ++lid) {
    const std::vector<double>& val = params.Get(lid);
    std::vector<double> lanes(m, kInfDistance);
    for (size_t k = 0; k < std::min(val.size(), m); ++k) lanes[k] = val[k];
    partial.emplace_back(frag.Gid(lid), std::move(lanes));
  }
  return partial;
}

MsSsspApp::OutputType MsSsspApp::Assemble(const QueryType& query,
                                          std::vector<PartialType>&& partials) {
  const size_t m = query.sources.size();
  VertexId max_gid = 0;
  bool any = false;
  for (const PartialType& p : partials) {
    for (const auto& [gid, lanes] : p) {
      max_gid = std::max(max_gid, gid);
      any = true;
    }
  }
  MsSsspOutput out;
  out.dist.assign(m, std::vector<double>(any ? max_gid + 1 : 0, kInfDistance));
  for (PartialType& p : partials) {
    for (const auto& [gid, lanes] : p) {
      for (size_t k = 0; k < m; ++k) out.dist[k][gid] = lanes[k];
    }
  }
  return out;
}

}  // namespace grape
