#ifndef GRAPE_APPS_CF_H_
#define GRAPE_APPS_CF_H_

#include <cstdint>
#include <utility>
#include <vector>

#include "core/aggregators.h"
#include "core/pie.h"

namespace grape {

struct CfQuery {
  /// Latent factor dimensionality.
  uint32_t rank = 8;
  double learning_rate = 0.01;
  double regularization = 0.05;
  uint32_t epochs = 10;
  uint64_t seed = 1234;
};

struct CfOutput {
  /// factors[gid] = latent vector (empty for ids absent from the graph).
  std::vector<std::vector<float>> factors;
  /// Root-mean-square error over all ratings after training.
  double train_rmse = 0.0;
};

/// PIE program for collaborative filtering (CF): matrix factorization over a
/// bipartite user-item rating graph by distributed SGD.
///   PEval  : deterministic factor initialization (hash of the vertex id, so
///            owner and mirror copies agree without messages) plus one local
///            SGD epoch over the fragment's inner-endpoint ratings.
///   IncEval: mirrors carry the partner factors refreshed each round
///            (kToMirrors / overwrite); each round runs the next epoch.
///   Termination: after `epochs` rounds the parameters stop changing and the
///            fixed point is reached (no ShouldTerminate hook needed).
/// This is the classic "stale mirror" SGD of distributed ML frameworks; each
/// rating edge appears in both endpoint fragments, and each side updates
/// only its inner endpoint.
class CfApp {
 public:
  using QueryType = CfQuery;
  using ValueType = std::vector<float>;
  using AggregatorType = OverwriteAggregator<std::vector<float>>;
  struct CfPartial {
    std::vector<std::pair<VertexId, std::vector<float>>> factors;
    double squared_error = 0.0;
    size_t num_ratings = 0;
  };
  using PartialType = CfPartial;
  using OutputType = CfOutput;
  static constexpr MessageScope kScope = MessageScope::kToMirrors;
  static constexpr bool kResetAfterFlush = false;

  ValueType InitValue() const { return {}; }

  void PEval(const QueryType& query, const Fragment& frag,
             ParamStore<ValueType>& params);
  void IncEval(const QueryType& query, const Fragment& frag,
               ParamStore<ValueType>& params,
               const std::vector<LocalId>& updated);
  PartialType GetPartial(const QueryType& query, const Fragment& frag,
                         const ParamStore<ValueType>& params) const;
  static OutputType Assemble(const QueryType& query,
                             std::vector<PartialType>&& partials);

  double GlobalValue() const { return last_epoch_sse_; }
  bool ShouldTerminate(uint32_t round, double global) const {
    (void)round;
    (void)global;
    return false;
  }

 private:
  void RunEpoch(const QueryType& query, const Fragment& frag,
                ParamStore<ValueType>& params);

  uint32_t epoch_ = 0;
  double last_epoch_sse_ = 0.0;
};

}  // namespace grape

#endif  // GRAPE_APPS_CF_H_
