#include "apps/triangle.h"

#include <algorithm>

namespace grape {

namespace {

/// Unique neighbour gids of `lid` in the undirected view, excluding self.
std::vector<VertexId> NeighborGids(const Fragment& frag, LocalId lid) {
  std::vector<VertexId> gids;
  VertexId self = frag.Gid(lid);
  for (const FragNeighbor& nb : frag.OutNeighbors(lid)) {
    if (frag.Gid(nb.local) != self) gids.push_back(frag.Gid(nb.local));
  }
  if (frag.is_directed()) {
    for (const FragNeighbor& nb : frag.InNeighbors(lid)) {
      if (frag.Gid(nb.local) != self) gids.push_back(frag.Gid(nb.local));
    }
  }
  std::sort(gids.begin(), gids.end());
  gids.erase(std::unique(gids.begin(), gids.end()), gids.end());
  return gids;
}

/// Does the undirected edge (x, y_gid) exist, judged from inner vertex x's
/// full adjacency?
bool HasUndirectedEdge(const Fragment& frag, LocalId x, VertexId y_gid) {
  for (const FragNeighbor& nb : frag.OutNeighbors(x)) {
    if (frag.Gid(nb.local) == y_gid) return true;
  }
  if (frag.is_directed()) {
    for (const FragNeighbor& nb : frag.InNeighbors(x)) {
      if (frag.Gid(nb.local) == y_gid) return true;
    }
  }
  return false;
}

}  // namespace

void TriangleApp::PEval(const QueryType& query, const Fragment& frag,
                        ParamStore<ValueType>& params) {
  (void)query;
  local_count_ = 0;
  for (LocalId v = 0; v < frag.num_inner(); ++v) {
    const VertexId v_gid = frag.Gid(v);
    std::vector<VertexId> nbrs = NeighborGids(frag, v);
    // Wedges u - v - w with u < v < w; `nbrs` is sorted, so split it around
    // v's id.
    auto mid = std::lower_bound(nbrs.begin(), nbrs.end(), v_gid);
    for (auto u_it = nbrs.begin(); u_it != mid; ++u_it) {
      const LocalId u_lid = frag.Lid(*u_it);
      const bool u_inner = u_lid != kInvalidLocal && frag.IsInner(u_lid);
      for (auto w_it = mid; w_it != nbrs.end(); ++w_it) {
        if (*w_it == v_gid) continue;
        const LocalId w_lid = frag.Lid(*w_it);
        if (u_inner) {
          if (HasUndirectedEdge(frag, u_lid, *w_it)) ++local_count_;
        } else if (w_lid != kInvalidLocal && frag.IsInner(w_lid)) {
          if (HasUndirectedEdge(frag, w_lid, *u_it)) ++local_count_;
        } else {
          // Neither endpoint's full adjacency is local: ask u's owner.
          params.Mutate(u_lid).push_back(*w_it);
        }
      }
    }
  }
}

void TriangleApp::IncEval(const QueryType& query, const Fragment& frag,
                          ParamStore<ValueType>& params,
                          const std::vector<LocalId>& updated) {
  (void)query;
  for (LocalId u : updated) {
    if (!frag.IsInner(u)) continue;
    ValueType inbox = std::move(params.UntrackedRef(u));
    params.UntrackedRef(u).clear();
    for (VertexId w : inbox) {
      if (HasUndirectedEdge(frag, u, w)) ++local_count_;
    }
  }
}

TriangleApp::PartialType TriangleApp::GetPartial(
    const QueryType& query, const Fragment& frag,
    const ParamStore<ValueType>& params) const {
  (void)query;
  (void)frag;
  (void)params;
  return local_count_;
}

TriangleApp::OutputType TriangleApp::Assemble(
    const QueryType& query, std::vector<PartialType>&& partials) {
  (void)query;
  TriangleOutput out;
  for (uint64_t c : partials) out.triangles += c;
  return out;
}

}  // namespace grape
