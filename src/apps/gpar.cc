#include "apps/gpar.h"

#include <algorithm>

namespace grape {

void GparApp::Evaluate(const QueryType& query, const Fragment& frag,
                       const ParamStore<uint8_t>& params, LocalId lid) {
  if (frag.vertex_label(lid) != kPersonLabel) return;
  uint32_t followees = 0;
  uint32_t recommending = 0;
  bool bad = false;
  for (const FragNeighbor& nb : frag.OutNeighbors(lid)) {
    if (nb.label != kFollowsLabel) continue;
    ++followees;
    uint8_t flags = params.Get(nb.local);
    if (flags & kRecommendsBit) ++recommending;
    if (flags & kRatesBadBit) {
      bad = true;
      break;
    }
  }
  GparCandidate& d = decisions_[lid];
  d.person = frag.Gid(lid);
  d.followees = followees;
  d.recommending = recommending;
  d.confidence = followees == 0
                     ? 0.0
                     : static_cast<double>(recommending) / followees;
  is_candidate_[lid] =
      (!bad && followees >= query.min_followees &&
       d.confidence >= query.support)
          ? 1
          : 0;
}

void GparApp::PEval(const QueryType& query, const Fragment& frag,
                    ParamStore<uint8_t>& params) {
  decisions_.assign(frag.num_inner(), GparCandidate{});
  is_candidate_.assign(frag.num_inner(), 0);

  // Phase A: flags of inner persons w.r.t. the item.
  for (LocalId lid = 0; lid < frag.num_inner(); ++lid) {
    if (frag.vertex_label(lid) != kPersonLabel) continue;
    uint8_t flags = 0;
    for (const FragNeighbor& nb : frag.OutNeighbors(lid)) {
      if (frag.Gid(nb.local) != query.item) continue;
      if (nb.label == kRecommendsLabel) flags |= kRecommendsBit;
      if (nb.label == kRatesBadLabel) flags |= kRatesBadBit;
    }
    // Non-zero flags are changes (init is 0) and flush to mirrors; zero
    // flags match every mirror's default, needing no message.
    if (flags != 0) {
      params.Set(lid, flags);
    }
  }

  // Phase B: optimistic rule evaluation with current (possibly default)
  // mirror flags; persons affected by mirror refreshes are re-evaluated in
  // IncEval.
  for (LocalId lid = 0; lid < frag.num_inner(); ++lid) {
    Evaluate(query, frag, params, lid);
  }
}

void GparApp::IncEval(const QueryType& query, const Fragment& frag,
                      ParamStore<uint8_t>& params,
                      const std::vector<LocalId>& updated) {
  // Bounded incremental step: only followers of changed mirrors re-run.
  std::vector<uint8_t> dirty(frag.num_inner(), 0);
  for (LocalId w : updated) {
    if (frag.IsInner(w)) {
      // Full re-evaluation mode (ablation): the engine passes inner ids.
      dirty[w] = 1;
      continue;
    }
    for (const FragNeighbor& nb : frag.InNeighbors(w)) {
      if (nb.label == kFollowsLabel && frag.IsInner(nb.local)) {
        dirty[nb.local] = 1;
      }
    }
  }
  for (LocalId lid = 0; lid < frag.num_inner(); ++lid) {
    if (dirty[lid]) Evaluate(query, frag, params, lid);
  }
}

GparApp::PartialType GparApp::GetPartial(const QueryType& query,
                                         const Fragment& frag,
                                         const ParamStore<uint8_t>& params) const {
  (void)query;
  (void)params;
  PartialType out;
  for (LocalId lid = 0; lid < frag.num_inner(); ++lid) {
    if (is_candidate_[lid]) out.push_back(decisions_[lid]);
  }
  return out;
}

GparApp::OutputType GparApp::Assemble(const QueryType& query,
                                      std::vector<PartialType>&& partials) {
  (void)query;
  GparOutput out;
  for (PartialType& p : partials) {
    out.candidates.insert(out.candidates.end(), p.begin(), p.end());
  }
  std::sort(out.candidates.begin(), out.candidates.end(),
            [](const GparCandidate& a, const GparCandidate& b) {
              if (a.confidence != b.confidence) {
                return a.confidence > b.confidence;
              }
              return a.person < b.person;
            });
  return out;
}

}  // namespace grape
