#include "apps/msf.h"

#include <algorithm>
#include <numeric>
#include <unordered_map>

namespace grape {

namespace {

/// Union-find keeping the smallest member id as the representative, so
/// component labels remain valid vertex ids (the reduction keys).
class MinUnionFind {
 public:
  explicit MinUnionFind(VertexId n) : parent_(n) {
    std::iota(parent_.begin(), parent_.end(), 0);
  }

  VertexId Find(VertexId v) {
    while (parent_[v] != v) {
      parent_[v] = parent_[parent_[v]];
      v = parent_[v];
    }
    return v;
  }

  /// Returns true if a merge happened.
  bool Union(VertexId a, VertexId b) {
    a = Find(a);
    b = Find(b);
    if (a == b) return false;
    if (a < b) {
      parent_[b] = a;
    } else {
      parent_[a] = b;
    }
    return true;
  }

 private:
  std::vector<VertexId> parent_;
};

}  // namespace

void MwoePhaseApp::PEval(const QueryType& query, const Fragment& frag,
                         ParamStore<MwoeCandidate>& params) {
  const std::vector<VertexId>& labels = *query.labels;
  // Pre-reduce locally per component root before posting, so each worker
  // ships at most one candidate per component it touches.
  std::unordered_map<VertexId, MwoeCandidate> best;
  for (LocalId u = 0; u < frag.num_inner(); ++u) {
    const VertexId gu = frag.Gid(u);
    const VertexId root = labels[gu];
    auto consider = [&](const FragNeighbor& nb) {
      const VertexId gv = frag.Gid(nb.local);
      if (labels[gv] == root) return;  // not an outgoing edge
      MwoeCandidate cand{nb.weight, std::min(gu, gv), std::max(gu, gv)};
      auto [it, inserted] = best.try_emplace(root, cand);
      if (!inserted && cand < it->second) it->second = cand;
    };
    for (const FragNeighbor& nb : frag.OutNeighbors(u)) consider(nb);
    if (frag.is_directed()) {
      for (const FragNeighbor& nb : frag.InNeighbors(u)) consider(nb);
    }
  }
  for (const auto& [root, cand] : best) {
    params.PostRemote(root, cand);
  }
}

void MwoePhaseApp::IncEval(const QueryType& query, const Fragment& frag,
                           ParamStore<MwoeCandidate>& params,
                           const std::vector<LocalId>& updated) {
  // The reduction happens in the aggregate function as candidates arrive at
  // the root's owner; there is nothing to propagate further.
  (void)query;
  (void)frag;
  (void)params;
  (void)updated;
}

MwoePhaseApp::PartialType MwoePhaseApp::GetPartial(
    const QueryType& query, const Fragment& frag,
    const ParamStore<MwoeCandidate>& params) const {
  const std::vector<VertexId>& labels = *query.labels;
  PartialType out;
  for (LocalId lid = 0; lid < frag.num_inner(); ++lid) {
    const VertexId gid = frag.Gid(lid);
    if (labels[gid] != gid) continue;  // only roots hold reductions
    const MwoeCandidate& cand = params.Get(lid);
    if (cand.valid()) out.push_back(cand);
  }
  return out;
}

MwoePhaseApp::OutputType MwoePhaseApp::Assemble(
    const QueryType& query, std::vector<PartialType>&& partials) {
  (void)query;
  OutputType out;
  for (PartialType& p : partials) {
    out.insert(out.end(), p.begin(), p.end());
  }
  return out;
}

Result<MsfOutput> MsfSolver::Solve(const FragmentedGraph& fg,
                                   EngineOptions options) {
  const VertexId n = fg.total_vertices;
  MsfOutput result;
  if (n == 0) return result;

  MinUnionFind components(n);
  auto labels = std::make_shared<std::vector<VertexId>>(n);
  std::iota(labels->begin(), labels->end(), 0);

  GrapeEngine<MwoePhaseApp> engine(fg, MwoePhaseApp{}, options);
  // Components at least halve per phase: log2(n) + slack bounds the loop.
  const uint32_t max_phases = 2 * 32 + 2;
  for (uint32_t phase = 0; phase < max_phases; ++phase) {
    MwoePhaseApp::Query query;
    query.labels = labels;
    auto candidates = engine.Run(query);
    if (!candidates.ok()) return candidates.status();
    if (candidates->empty()) break;  // no outgoing edges anywhere

    bool merged_any = false;
    for (const MwoeCandidate& cand : *candidates) {
      if (components.Union(cand.u, cand.v)) {
        result.edges.push_back(Edge{cand.u, cand.v, cand.weight, 0});
        result.total_weight += cand.weight;
        merged_any = true;
      }
    }
    result.phases = phase + 1;
    if (!merged_any) break;
    auto next = std::make_shared<std::vector<VertexId>>(n);
    for (VertexId v = 0; v < n; ++v) (*next)[v] = components.Find(v);
    labels = std::move(next);
  }

  for (VertexId v = 0; v < n; ++v) {
    if (components.Find(v) == v) ++result.num_components;
  }
  std::sort(result.edges.begin(), result.edges.end(),
            [](const Edge& a, const Edge& b) {
              return std::tie(a.src, a.dst) < std::tie(b.src, b.dst);
            });
  return result;
}

MsfOutput SeqKruskal(const Graph& graph) {
  const VertexId n = graph.num_vertices();
  MsfOutput result;
  if (n == 0) return result;

  // Undirected view, one entry per arc pair, deterministic tie order.
  struct Candidate {
    double weight;
    VertexId u;
    VertexId v;
  };
  std::vector<Candidate> edges;
  for (VertexId x = 0; x < n; ++x) {
    for (const Neighbor& nb : graph.OutNeighbors(x)) {
      VertexId a = std::min(x, nb.vertex);
      VertexId b = std::max(x, nb.vertex);
      if (a == b) continue;
      // Directed graphs emit each arc once; undirected CSRs emit both
      // directions — keep the canonical orientation only.
      if (!graph.is_directed() && x != a) continue;
      edges.push_back({nb.weight, a, b});
    }
  }
  std::sort(edges.begin(), edges.end(),
            [](const Candidate& a, const Candidate& b) {
              return std::tie(a.weight, a.u, a.v) <
                     std::tie(b.weight, b.u, b.v);
            });

  MinUnionFind components(n);
  for (const Candidate& e : edges) {
    if (components.Union(e.u, e.v)) {
      result.edges.push_back(Edge{e.u, e.v, e.weight, 0});
      result.total_weight += e.weight;
    }
  }
  for (VertexId v = 0; v < n; ++v) {
    if (components.Find(v) == v) ++result.num_components;
  }
  std::sort(result.edges.begin(), result.edges.end(),
            [](const Edge& a, const Edge& b) {
              return std::tie(a.src, a.dst) < std::tie(b.src, b.dst);
            });
  return result;
}

}  // namespace grape
