#ifndef GRAPE_APPS_CC_H_
#define GRAPE_APPS_CC_H_

#include <utility>
#include <vector>

#include "core/aggregators.h"
#include "core/codec.h"
#include "core/parallel.h"
#include "core/pie.h"

namespace grape {

struct CcQuery {
  // Wire codec: CC takes no query parameters, but remote worker hosts
  // still round-trip the (empty) query.
  void EncodeTo(Encoder& enc) const { (void)enc; }
  static Status DecodeFrom(Decoder& dec, CcQuery* out) {
    (void)dec;
    (void)out;
    return Status::OK();
  }
};

struct CcOutput {
  /// label[gid] = smallest vertex id in gid's (weakly) connected component.
  std::vector<VertexId> label;
};

/// PIE program for connected components (CC in the paper's library).
///   PEval  : sequential min-label propagation over the whole fragment
///            (each vertex starts with its own id).
///   IncEval: propagation re-seeded only from vertices whose label dropped
///            via messages.
///   Update parameters: component labels on border/outer vertices,
///            aggregated with min — a textbook monotonic computation.
/// Directed graphs are treated as their undirected (weakly connected) view.
class CcApp {
 public:
  using QueryType = CcQuery;
  using ValueType = VertexId;
  using AggregatorType = MinAggregator<VertexId>;
  using PartialType = std::vector<std::pair<VertexId, VertexId>>;
  using OutputType = CcOutput;
  static constexpr MessageScope kScope = MessageScope::kToOwner;
  static constexpr bool kResetAfterFlush = false;

  ValueType InitValue() const { return kInvalidVertex; }

  void PEval(const QueryType& query, const Fragment& frag,
             ParamStore<VertexId>& params);
  void IncEval(const QueryType& query, const Fragment& frag,
               ParamStore<VertexId>& params,
               const std::vector<LocalId>& updated);

  // Frontier-parallel variants (FrontierParallelApp): min-label rounds
  // with AtomicMin over exact integer labels — a unique fixed point, so
  // the converged store, the dirty set, and every flushed byte match the
  // sequential worklist propagation bitwise at any thread count.
  void ParallelPEval(const QueryType& query, const Fragment& frag,
                     ParamStore<VertexId>& params,
                     const ParallelContext& par);
  void ParallelIncEval(const QueryType& query, const Fragment& frag,
                       ParamStore<VertexId>& params,
                       const std::vector<LocalId>& updated,
                       const ParallelContext& par);
  PartialType GetPartial(const QueryType& query, const Fragment& frag,
                         const ParamStore<VertexId>& params) const;
  static OutputType Assemble(const QueryType& query,
                             std::vector<PartialType>&& partials);

  double GlobalValue() const { return 0.0; }
  bool ShouldTerminate(uint32_t round, double global) const {
    (void)round;
    (void)global;
    return false;
  }
};

}  // namespace grape

#endif  // GRAPE_APPS_CC_H_
