#ifndef GRAPE_APPS_SSSP_H_
#define GRAPE_APPS_SSSP_H_

#include <utility>
#include <vector>

#include "core/aggregators.h"
#include "core/codec.h"
#include "core/parallel.h"
#include "core/pie.h"

namespace grape {

struct SsspQuery {
  VertexId source = 0;

  // Wire codec: lets the query ship to remote worker hosts.
  void EncodeTo(Encoder& enc) const { enc.WriteU32(source); }
  static Status DecodeFrom(Decoder& dec, SsspQuery* out) {
    return dec.ReadU32(&out->source);
  }
};

struct SsspOutput {
  /// dist[gid] = shortest distance from the source; kInfDistance when
  /// unreachable.
  std::vector<double> dist;
};

/// PIE program for single-source shortest paths — the paper's Example 1.
///   PEval  : sequential Dijkstra on the local fragment, seeded at the
///            source if this worker owns it.
///   IncEval: the incremental shortest-path algorithm of Ramalingam–Reps —
///            Dijkstra re-seeded only at vertices whose distance decreased
///            via messages, so its cost is bounded by |M_i| + |ΔO_i|.
///   Update parameters: the distance variable x_v of every border/outer
///            vertex, aggregated with min (monotonically decreasing).
class SsspApp {
 public:
  using QueryType = SsspQuery;
  using ValueType = double;
  using AggregatorType = MinAggregator<double>;
  using PartialType = std::vector<std::pair<VertexId, double>>;
  using OutputType = SsspOutput;
  static constexpr MessageScope kScope = MessageScope::kToOwner;
  static constexpr bool kResetAfterFlush = false;

  ValueType InitValue() const { return kInfDistance; }

  void PEval(const QueryType& query, const Fragment& frag,
             ParamStore<double>& params);
  void IncEval(const QueryType& query, const Fragment& frag,
               ParamStore<double>& params,
               const std::vector<LocalId>& updated);

  // Frontier-parallel variants (FrontierParallelApp): Bellman-Ford-style
  // rounds over a dense/sparse frontier with AtomicMin relaxation. Both
  // converge to the least fixed point of the same relaxation operator the
  // sequential Dijkstra computes — non-negative weights make float
  // addition monotone, so every path cost is a left fold evaluated
  // identically in both — which is why the final store, the dirty set
  // {v : dist(v) dropped}, and hence every flushed byte are bit-identical
  // to the sequential oracle at any thread count.
  void ParallelPEval(const QueryType& query, const Fragment& frag,
                     ParamStore<double>& params, const ParallelContext& par);
  void ParallelIncEval(const QueryType& query, const Fragment& frag,
                       ParamStore<double>& params,
                       const std::vector<LocalId>& updated,
                       const ParallelContext& par);
  PartialType GetPartial(const QueryType& query, const Fragment& frag,
                         const ParamStore<double>& params) const;
  static OutputType Assemble(const QueryType& query,
                             std::vector<PartialType>&& partials);

  double GlobalValue() const { return 0.0; }
  bool ShouldTerminate(uint32_t round, double global) const {
    (void)round;
    (void)global;
    return false;
  }
};

}  // namespace grape

#endif  // GRAPE_APPS_SSSP_H_
