#include "apps/pagerank.h"

#include <algorithm>
#include <cmath>

namespace grape {

void PageRankApp::PEval(const QueryType& query, const Fragment& frag,
                        ParamStore<double>& params) {
  query_ = query;
  const double n = static_cast<double>(frag.total_num_vertices());
  rank_.assign(frag.num_inner(), 1.0 / n);
  delta_ = 1.0;  // force at least one iteration

  // Inner rows carry the full global out-adjacency, so OutDegree(lid) is the
  // true global out-degree for inner vertices.
  for (LocalId lid = 0; lid < frag.num_inner(); ++lid) {
    size_t deg = frag.OutDegree(lid);
    double c = deg == 0 ? 0.0 : rank_[lid] / static_cast<double>(deg);
    params.Set(lid, c);  // border contributions flush to mirrors
  }
}

void PageRankApp::IncEval(const QueryType& query, const Fragment& frag,
                          ParamStore<double>& params,
                          const std::vector<LocalId>& updated) {
  (void)updated;  // every mirror refresh is already applied to the store
  const double n = static_cast<double>(frag.total_num_vertices());
  const double base = (1.0 - query.damping) / n;

  delta_ = 0.0;
  std::vector<double> next(frag.num_inner());
  for (LocalId lid = 0; lid < frag.num_inner(); ++lid) {
    double sum = 0.0;
    for (const FragNeighbor& nb : frag.InNeighbors(lid)) {
      sum += params.Get(nb.local);
    }
    next[lid] = base + query.damping * sum;
    delta_ += std::abs(next[lid] - rank_[lid]);
  }
  rank_ = std::move(next);
  for (LocalId lid = 0; lid < frag.num_inner(); ++lid) {
    size_t deg = frag.OutDegree(lid);
    double c = deg == 0 ? 0.0 : rank_[lid] / static_cast<double>(deg);
    params.SetIfChanged(lid, c);
  }
}

void PageRankApp::ParallelPEval(const QueryType& query, const Fragment& frag,
                                ParamStore<double>& params,
                                const ParallelContext& par) {
  query_ = query;
  const double n = static_cast<double>(frag.total_num_vertices());
  rank_.assign(frag.num_inner(), 1.0 / n);
  delta_ = 1.0;  // force at least one iteration

  // 64-aligned chunks: params.Set's changed-bitset words are chunk-local,
  // so the plain (non-atomic) stores never race.
  par.ForChunks(frag.num_inner(), [&](size_t, size_t lo, size_t hi) {
    for (size_t lid = lo; lid < hi; ++lid) {
      size_t deg = frag.OutDegree(static_cast<LocalId>(lid));
      double c = deg == 0 ? 0.0 : rank_[lid] / static_cast<double>(deg);
      params.Set(static_cast<LocalId>(lid), c);
    }
  });
}

void PageRankApp::ParallelIncEval(const QueryType& query, const Fragment& frag,
                                  ParamStore<double>& params,
                                  const std::vector<LocalId>& updated,
                                  const ParallelContext& par) {
  (void)updated;  // every mirror refresh is already applied to the store
  const double n = static_cast<double>(frag.total_num_vertices());
  const double base = (1.0 - query.damping) / n;
  const size_t inner = frag.num_inner();

  // Pull phase: per-vertex in-neighbor sums in adjacency order (the
  // sequential order); the store is read-only until the contribution pass.
  next_scratch_.resize(inner);
  diff_scratch_.resize(inner);
  par.ForChunks(inner, [&](size_t, size_t lo, size_t hi) {
    for (size_t lid = lo; lid < hi; ++lid) {
      double sum = 0.0;
      for (const FragNeighbor& nb :
           frag.InNeighbors(static_cast<LocalId>(lid))) {
        sum += params.Get(nb.local);
      }
      next_scratch_[lid] = base + query.damping * sum;
      diff_scratch_[lid] = std::abs(next_scratch_[lid] - rank_[lid]);
    }
  });
  // The residual feeds GlobalValue and the coordinator's termination
  // check, so it must match the sequential left fold bitwise: fold the
  // per-vertex terms in lid order, single-threaded.
  delta_ = 0.0;
  for (size_t lid = 0; lid < inner; ++lid) delta_ += diff_scratch_[lid];
  rank_.swap(next_scratch_);
  par.ForChunks(inner, [&](size_t, size_t lo, size_t hi) {
    for (size_t lid = lo; lid < hi; ++lid) {
      size_t deg = frag.OutDegree(static_cast<LocalId>(lid));
      double c = deg == 0 ? 0.0 : rank_[lid] / static_cast<double>(deg);
      params.SetIfChanged(static_cast<LocalId>(lid), c);
    }
  });
}

PageRankApp::PartialType PageRankApp::GetPartial(
    const QueryType& query, const Fragment& frag,
    const ParamStore<double>& params) const {
  (void)query;
  (void)params;
  PartialType partial;
  partial.reserve(frag.num_inner());
  for (LocalId lid = 0; lid < frag.num_inner(); ++lid) {
    partial.emplace_back(frag.Gid(lid), rank_[lid]);
  }
  return partial;
}

PageRankApp::OutputType PageRankApp::Assemble(
    const QueryType& query, std::vector<PartialType>&& partials) {
  (void)query;
  VertexId max_gid = 0;
  bool any = false;
  for (const PartialType& p : partials) {
    for (const auto& [gid, r] : p) {
      max_gid = std::max(max_gid, gid);
      any = true;
    }
  }
  PageRankOutput out;
  out.rank.assign(any ? max_gid + 1 : 0, 0.0);
  for (PartialType& p : partials) {
    for (const auto& [gid, r] : p) out.rank[gid] = r;
  }
  return out;
}

}  // namespace grape
