#include "apps/seq/seq_algorithms.h"

#include <algorithm>
#include <deque>
#include <numeric>
#include <queue>

namespace grape {

namespace {

using HeapEntry = std::pair<double, VertexId>;
using MinHeap =
    std::priority_queue<HeapEntry, std::vector<HeapEntry>, std::greater<>>;

void RunDijkstra(const Graph& graph, std::vector<double>& dist,
                 MinHeap& heap) {
  while (!heap.empty()) {
    auto [d, v] = heap.top();
    heap.pop();
    if (d > dist[v]) continue;  // stale entry (lazy deletion)
    for (const Neighbor& nb : graph.OutNeighbors(v)) {
      double nd = d + nb.weight;
      if (nd < dist[nb.vertex]) {
        dist[nb.vertex] = nd;
        heap.push({nd, nb.vertex});
      }
    }
  }
}

}  // namespace

std::vector<double> SeqDijkstra(const Graph& graph, VertexId source) {
  std::vector<double> dist(graph.num_vertices(), kInfDistance);
  if (source >= graph.num_vertices()) return dist;
  MinHeap heap;
  dist[source] = 0.0;
  heap.push({0.0, source});
  RunDijkstra(graph, dist, heap);
  return dist;
}

size_t SeqIncrementalSssp(const Graph& graph, std::vector<double>& dist,
                          const std::vector<VertexId>& decreased) {
  MinHeap heap;
  for (VertexId v : decreased) heap.push({dist[v], v});
  // Count changes by monitoring improvements during propagation.
  size_t changed = 0;
  while (!heap.empty()) {
    auto [d, v] = heap.top();
    heap.pop();
    if (d > dist[v]) continue;
    for (const Neighbor& nb : graph.OutNeighbors(v)) {
      double nd = d + nb.weight;
      if (nd < dist[nb.vertex]) {
        dist[nb.vertex] = nd;
        heap.push({nd, nb.vertex});
        ++changed;
      }
    }
  }
  return changed;
}

std::vector<uint32_t> SeqBfs(const Graph& graph, VertexId source) {
  std::vector<uint32_t> depth(graph.num_vertices(), UINT32_MAX);
  if (source >= graph.num_vertices()) return depth;
  std::deque<VertexId> frontier{source};
  depth[source] = 0;
  while (!frontier.empty()) {
    VertexId v = frontier.front();
    frontier.pop_front();
    for (const Neighbor& nb : graph.OutNeighbors(v)) {
      if (depth[nb.vertex] == UINT32_MAX) {
        depth[nb.vertex] = depth[v] + 1;
        frontier.push_back(nb.vertex);
      }
    }
  }
  return depth;
}

std::vector<VertexId> SeqConnectedComponents(const Graph& graph) {
  const VertexId n = graph.num_vertices();
  std::vector<VertexId> parent(n);
  std::iota(parent.begin(), parent.end(), 0);

  // Union-find with path halving; roots keep the smallest member id by
  // always attaching the larger root under the smaller.
  auto find = [&parent](VertexId v) {
    while (parent[v] != v) {
      parent[v] = parent[parent[v]];
      v = parent[v];
    }
    return v;
  };
  for (VertexId v = 0; v < n; ++v) {
    for (const Neighbor& nb : graph.OutNeighbors(v)) {
      VertexId a = find(v);
      VertexId b = find(nb.vertex);
      if (a == b) continue;
      if (a < b) {
        parent[b] = a;
      } else {
        parent[a] = b;
      }
    }
  }
  std::vector<VertexId> label(n);
  for (VertexId v = 0; v < n; ++v) label[v] = find(v);
  return label;
}

std::vector<double> SeqPageRank(const Graph& graph,
                                const PageRankConfig& config) {
  const VertexId n = graph.num_vertices();
  if (n == 0) return {};
  const double base = (1.0 - config.damping) / n;
  std::vector<double> rank(n, 1.0 / n);
  std::vector<double> contribution(n, 0.0);

  for (uint32_t iter = 0; iter < config.max_iterations; ++iter) {
    for (VertexId v = 0; v < n; ++v) {
      size_t deg = graph.OutDegree(v);
      contribution[v] = deg == 0 ? 0.0 : rank[v] / static_cast<double>(deg);
    }
    double delta = 0.0;
    for (VertexId v = 0; v < n; ++v) {
      double sum = 0.0;
      for (const Neighbor& nb : graph.InNeighbors(v)) {
        sum += contribution[nb.vertex];
      }
      double next = base + config.damping * sum;
      delta += std::abs(next - rank[v]);
      rank[v] = next;
    }
    if (delta < config.epsilon) break;
  }
  return rank;
}

uint64_t SeqTriangleCount(const Graph& graph) {
  const VertexId n = graph.num_vertices();
  // Unique undirected neighbour sets.
  std::vector<std::vector<VertexId>> nbrs(n);
  for (VertexId v = 0; v < n; ++v) {
    for (const Neighbor& nb : graph.OutNeighbors(v)) {
      if (nb.vertex != v) nbrs[v].push_back(nb.vertex);
    }
    if (graph.is_directed()) {
      for (const Neighbor& nb : graph.InNeighbors(v)) {
        if (nb.vertex != v) nbrs[v].push_back(nb.vertex);
      }
    }
    std::sort(nbrs[v].begin(), nbrs[v].end());
    nbrs[v].erase(std::unique(nbrs[v].begin(), nbrs[v].end()),
                  nbrs[v].end());
  }
  uint64_t count = 0;
  for (VertexId v = 0; v < n; ++v) {
    auto mid = std::lower_bound(nbrs[v].begin(), nbrs[v].end(), v);
    for (auto u = nbrs[v].begin(); u != mid; ++u) {
      for (auto w = mid; w != nbrs[v].end(); ++w) {
        if (*w == v) continue;
        if (std::binary_search(nbrs[*u].begin(), nbrs[*u].end(), *w)) {
          ++count;
        }
      }
    }
  }
  return count;
}

std::vector<double> SeqKeywordDistance(const Graph& graph, Label keyword) {
  std::vector<double> dist(graph.num_vertices(), kInfDistance);
  MinHeap heap;
  for (VertexId v = 0; v < graph.num_vertices(); ++v) {
    if (graph.vertex_label(v) == keyword) {
      dist[v] = 0.0;
      heap.push({0.0, v});
    }
  }
  RunDijkstra(graph, dist, heap);
  return dist;
}

}  // namespace grape
