#ifndef GRAPE_APPS_SEQ_SEQ_ALGORITHMS_H_
#define GRAPE_APPS_SEQ_SEQ_ALGORITHMS_H_

#include <cstdint>
#include <vector>

#include "graph/graph.h"
#include "graph/types.h"

namespace grape {

/// Whole-graph sequential algorithms: exactly the "existing sequential
/// algorithms" a GRAPE user would plug into PEval/IncEval, and the ground
/// truth the test suite compares every parallel run against.

/// Dijkstra from `source`; dist[v] = kInfDistance when unreachable.
/// (PEval of the paper's Example 1; binary heap with lazy deletion.)
std::vector<double> SeqDijkstra(const Graph& graph, VertexId source);

/// Incremental SSSP in the spirit of Ramalingam–Reps: given current dist
/// values and a set of vertices whose dist just decreased, propagates the
/// improvements. Touches only the affected region — the "bounded IncEval"
/// of Example 1. Returns the number of vertices whose value changed.
size_t SeqIncrementalSssp(const Graph& graph, std::vector<double>& dist,
                          const std::vector<VertexId>& decreased);

/// BFS hop counts from `source` (unweighted); kInvalidVertex-sized graphs
/// unreachable entries are UINT32_MAX.
std::vector<uint32_t> SeqBfs(const Graph& graph, VertexId source);

/// Connected components over the undirected view; label[v] = smallest
/// vertex id in v's component.
std::vector<VertexId> SeqConnectedComponents(const Graph& graph);

struct PageRankConfig {
  double damping = 0.85;
  uint32_t max_iterations = 50;
  /// Stop when the L1 delta of successive rank vectors drops below epsilon.
  double epsilon = 1e-9;
};

/// Synchronous power iteration. Dangling mass is dropped (same policy as
/// the PIE program, so results are directly comparable).
std::vector<double> SeqPageRank(const Graph& graph,
                                const PageRankConfig& config);

/// Multi-source Dijkstra: dist to the nearest vertex whose label equals
/// `keyword`.
std::vector<double> SeqKeywordDistance(const Graph& graph, Label keyword);

/// Triangles in the undirected view of the graph (node-iterator with id
/// ordering; parallel edges and self loops ignored).
uint64_t SeqTriangleCount(const Graph& graph);

}  // namespace grape

#endif  // GRAPE_APPS_SEQ_SEQ_ALGORITHMS_H_
