#ifndef GRAPE_APPS_SEQ_SEQ_MATCHING_H_
#define GRAPE_APPS_SEQ_SEQ_MATCHING_H_

#include <cstdint>
#include <vector>

#include "apps/pattern.h"
#include "graph/graph.h"

namespace grape {

/// Graph simulation (Henzinger–Henzinger–Kopke refinement): returns
/// sim[u] = sorted data vertices that simulate pattern vertex u. A data
/// vertex v simulates u iff label(v) == label(u) and for every pattern edge
/// u -> u' there is a data edge v -> v' (with matching edge label) such that
/// v' simulates u'.
std::vector<std::vector<VertexId>> SeqSimulation(const Graph& graph,
                                                 const Pattern& pattern);

/// One subgraph-isomorphism embedding: mapping[u] = data vertex matched to
/// pattern vertex u.
using Embedding = std::vector<VertexId>;

/// Enumerates subgraph-isomorphism embeddings of `pattern` in `graph` by
/// ordered backtracking (VF2-style feasibility checks). Stops after
/// max_results embeddings when max_results > 0.
std::vector<Embedding> SeqSubgraphIsomorphism(const Graph& graph,
                                              const Pattern& pattern,
                                              size_t max_results = 0);

/// Computes a connected matching order for `pattern`: a permutation of
/// pattern vertices such that every vertex (after the first) has at least
/// one earlier neighbour. Starts from the vertex with the most constraints
/// (highest degree). Shared by the sequential and distributed matchers.
std::vector<uint32_t> BuildMatchingOrder(const Pattern& pattern);

}  // namespace grape

#endif  // GRAPE_APPS_SEQ_SEQ_MATCHING_H_
