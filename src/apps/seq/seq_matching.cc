#include "apps/seq/seq_matching.h"

#include <algorithm>
#include <deque>

namespace grape {

std::vector<std::vector<VertexId>> SeqSimulation(const Graph& graph,
                                                 const Pattern& pattern) {
  const VertexId n = graph.num_vertices();
  const uint32_t k = pattern.num_vertices();
  // mask[v] bit u <=> v currently simulates pattern vertex u.
  std::vector<uint64_t> mask(n, 0);
  for (VertexId v = 0; v < n; ++v) {
    for (uint32_t u = 0; u < k; ++u) {
      if (graph.vertex_label(v) == pattern.vertex_label(u)) {
        mask[v] |= (1ULL << u);
      }
    }
  }

  // Worklist refinement: when v loses a bit, its predecessors must be
  // re-checked.
  std::deque<VertexId> worklist;
  std::vector<uint8_t> queued(n, 1);
  for (VertexId v = 0; v < n; ++v) worklist.push_back(v);

  auto refine = [&](VertexId v) -> bool {
    uint64_t m = mask[v];
    if (m == 0) return false;
    uint64_t next = m;
    for (uint32_t u = 0; u < k; ++u) {
      if (!(m & (1ULL << u))) continue;
      for (const auto& [u2, elabel] : pattern.Out(u)) {
        bool witness = false;
        for (const Neighbor& nb : graph.OutNeighbors(v)) {
          if (nb.label == elabel && (mask[nb.vertex] & (1ULL << u2))) {
            witness = true;
            break;
          }
        }
        if (!witness) {
          next &= ~(1ULL << u);
          break;
        }
      }
    }
    if (next == m) return false;
    mask[v] = next;
    return true;
  };

  while (!worklist.empty()) {
    VertexId v = worklist.front();
    worklist.pop_front();
    queued[v] = 0;
    if (refine(v)) {
      for (const Neighbor& nb : graph.InNeighbors(v)) {
        if (!queued[nb.vertex]) {
          queued[nb.vertex] = 1;
          worklist.push_back(nb.vertex);
        }
      }
    }
  }

  std::vector<std::vector<VertexId>> sim(k);
  for (VertexId v = 0; v < n; ++v) {
    for (uint32_t u = 0; u < k; ++u) {
      if (mask[v] & (1ULL << u)) sim[u].push_back(v);
    }
  }
  return sim;
}

std::vector<uint32_t> BuildMatchingOrder(const Pattern& pattern) {
  const uint32_t k = pattern.num_vertices();
  std::vector<uint32_t> degree(k, 0);
  for (const PatternEdge& e : pattern.edges()) {
    degree[e.src]++;
    degree[e.dst]++;
  }
  std::vector<uint32_t> order;
  std::vector<bool> placed(k, false);
  // Seed: highest-degree vertex (most constrained first).
  uint32_t seed = 0;
  for (uint32_t u = 1; u < k; ++u) {
    if (degree[u] > degree[seed]) seed = u;
  }
  order.push_back(seed);
  placed[seed] = true;
  while (order.size() < k) {
    // Next: unplaced vertex with the most placed neighbours; ties by degree.
    uint32_t best = kInvalidVertex;
    uint32_t best_conn = 0;
    for (uint32_t u = 0; u < k; ++u) {
      if (placed[u]) continue;
      uint32_t conn = 0;
      for (const auto& [v, l] : pattern.Out(u)) conn += placed[v] ? 1 : 0;
      for (const auto& [v, l] : pattern.In(u)) conn += placed[v] ? 1 : 0;
      if (best == kInvalidVertex || conn > best_conn ||
          (conn == best_conn && degree[u] > degree[best])) {
        best = u;
        best_conn = conn;
      }
    }
    order.push_back(best);
    placed[best] = true;
  }
  return order;
}

namespace {

/// Checks that `candidate` can play pattern vertex `u` given the partial
/// embedding: label match plus every pattern edge between u and an
/// already-matched vertex must exist in the data graph.
bool Feasible(const Graph& graph, const Pattern& pattern,
              const std::vector<VertexId>& embedding, uint32_t u,
              VertexId candidate) {
  if (graph.vertex_label(candidate) != pattern.vertex_label(u)) return false;
  for (uint32_t w = 0; w < pattern.num_vertices(); ++w) {
    if (w == u || embedding[w] == kInvalidVertex) continue;
    if (embedding[w] == candidate) return false;  // injectivity
  }
  auto has_edge = [&graph](VertexId a, VertexId b, Label label) {
    for (const Neighbor& nb : graph.OutNeighbors(a)) {
      if (nb.vertex == b && nb.label == label) return true;
    }
    return false;
  };
  for (const auto& [v, l] : pattern.Out(u)) {
    if (embedding[v] != kInvalidVertex &&
        !has_edge(candidate, embedding[v], l)) {
      return false;
    }
  }
  for (const auto& [v, l] : pattern.In(u)) {
    if (embedding[v] != kInvalidVertex &&
        !has_edge(embedding[v], candidate, l)) {
      return false;
    }
  }
  return true;
}

void Backtrack(const Graph& graph, const Pattern& pattern,
               const std::vector<uint32_t>& order, size_t depth,
               std::vector<VertexId>& embedding,
               std::vector<Embedding>& results, size_t max_results) {
  if (max_results > 0 && results.size() >= max_results) return;
  if (depth == order.size()) {
    results.push_back(embedding);
    return;
  }
  uint32_t u = order[depth];
  if (depth == 0) {
    for (VertexId v = 0; v < graph.num_vertices(); ++v) {
      if (!Feasible(graph, pattern, embedding, u, v)) continue;
      embedding[u] = v;
      Backtrack(graph, pattern, order, depth + 1, embedding, results,
                max_results);
      embedding[u] = kInvalidVertex;
    }
    return;
  }
  // Candidates come from the adjacency of an already-matched anchor.
  uint32_t anchor = kInvalidVertex;
  bool anchor_out = true;  // anchor -> u in the pattern?
  Label anchor_label = 0;
  for (size_t d = 0; d < depth && anchor == kInvalidVertex; ++d) {
    uint32_t w = order[d];
    for (const auto& [v, l] : pattern.Out(w)) {
      if (v == u) {
        anchor = w;
        anchor_out = true;
        anchor_label = l;
        break;
      }
    }
    if (anchor != kInvalidVertex) break;
    for (const auto& [v, l] : pattern.In(w)) {
      if (v == u) {
        anchor = w;
        anchor_out = false;
        anchor_label = l;
        break;
      }
    }
  }
  VertexId a = embedding[anchor];
  std::span<const Neighbor> candidates =
      anchor_out ? graph.OutNeighbors(a) : graph.InNeighbors(a);
  for (const Neighbor& nb : candidates) {
    if (nb.label != anchor_label) continue;
    if (!Feasible(graph, pattern, embedding, u, nb.vertex)) continue;
    embedding[u] = nb.vertex;
    Backtrack(graph, pattern, order, depth + 1, embedding, results,
              max_results);
    embedding[u] = kInvalidVertex;
  }
}

}  // namespace

std::vector<Embedding> SeqSubgraphIsomorphism(const Graph& graph,
                                              const Pattern& pattern,
                                              size_t max_results) {
  std::vector<Embedding> results;
  if (pattern.num_vertices() == 0 || !pattern.IsConnected()) return results;
  std::vector<uint32_t> order = BuildMatchingOrder(pattern);
  std::vector<VertexId> embedding(pattern.num_vertices(), kInvalidVertex);
  Backtrack(graph, pattern, order, 0, embedding, results, max_results);
  std::sort(results.begin(), results.end());
  results.erase(std::unique(results.begin(), results.end()), results.end());
  return results;
}

}  // namespace grape
