#ifndef GRAPE_APPS_MS_BFS_H_
#define GRAPE_APPS_MS_BFS_H_

#include <cstdint>
#include <utility>
#include <vector>

#include "core/aggregators.h"
#include "core/codec.h"
#include "core/pie.h"

namespace grape {

struct MsBfsQuery {
  /// One value lane per source; lane k answers BfsQuery{sources[k]}.
  std::vector<VertexId> sources;

  // Wire codec: lets the query ship to remote worker hosts.
  void EncodeTo(Encoder& enc) const { EncodeValue(enc, sources); }
  static Status DecodeFrom(Decoder& dec, MsBfsQuery* out) {
    return DecodeValue(dec, &out->sources);
  }
};

struct MsBfsOutput {
  /// depth[k][gid] = hop count from sources[k]; UINT32_MAX when
  /// unreachable. depth[k] matches a single-source BfsApp run exactly.
  std::vector<std::vector<uint32_t>> depth;
};

/// Multi-source BFS: MsSsspApp with unit weights — K BfsApp queries fused
/// into one wave, one value lane per source, each lane running BfsApp's
/// exact unit-weight Dijkstra independently under element-wise min. Lane
/// k's depths are bit-identical to a standalone BfsApp run from sources[k].
class MsBfsApp {
 public:
  using QueryType = MsBfsQuery;
  using ValueType = std::vector<uint32_t>;
  using AggregatorType = ElementwiseMinAggregatorT<uint32_t>;
  using PartialType = std::vector<std::pair<VertexId, std::vector<uint32_t>>>;
  using OutputType = MsBfsOutput;
  static constexpr MessageScope kScope = MessageScope::kToOwner;
  static constexpr bool kResetAfterFlush = false;

  /// Lanes are lazy: a missing tail means unreachable (UINT32_MAX).
  ValueType InitValue() const { return {}; }

  void PEval(const QueryType& query, const Fragment& frag,
             ParamStore<ValueType>& params);
  void IncEval(const QueryType& query, const Fragment& frag,
               ParamStore<ValueType>& params,
               const std::vector<LocalId>& updated);
  PartialType GetPartial(const QueryType& query, const Fragment& frag,
                         const ParamStore<ValueType>& params) const;
  static OutputType Assemble(const QueryType& query,
                             std::vector<PartialType>&& partials);

  double GlobalValue() const { return 0.0; }
  bool ShouldTerminate(uint32_t round, double global) const {
    (void)round;
    (void)global;
    return false;
  }
};

}  // namespace grape

#endif  // GRAPE_APPS_MS_BFS_H_
