#include "apps/dual_sim.h"

#include <algorithm>
#include <deque>

namespace grape {

namespace {

uint64_t LabelMask(const Pattern& pattern, Label label) {
  uint64_t m = 0;
  for (uint32_t u = 0; u < pattern.num_vertices(); ++u) {
    if (pattern.vertex_label(u) == label) m |= (1ULL << u);
  }
  return m;
}

/// Recomputes the dual-simulation mask of inner vertex v; returns true if
/// it shrank. Child conditions read v's out-neighbourhood, parent
/// conditions its in-neighbourhood; both are complete for inner vertices.
bool RefineVertex(const Pattern& pattern, const Fragment& frag,
                  ParamStore<uint64_t>& params, LocalId v) {
  uint64_t m = params.Get(v);
  if (m == 0) return false;
  uint64_t next = m;
  for (uint32_t u = 0; u < pattern.num_vertices(); ++u) {
    if (!(m & (1ULL << u))) continue;
    bool alive = true;
    for (const auto& [u2, elabel] : pattern.Out(u)) {
      bool witness = false;
      for (const FragNeighbor& nb : frag.OutNeighbors(v)) {
        if (nb.label == elabel && (params.Get(nb.local) & (1ULL << u2))) {
          witness = true;
          break;
        }
      }
      if (!witness) {
        alive = false;
        break;
      }
    }
    if (alive) {
      for (const auto& [u0, elabel] : pattern.In(u)) {
        bool witness = false;
        for (const FragNeighbor& nb : frag.InNeighbors(v)) {
          if (nb.label == elabel && (params.Get(nb.local) & (1ULL << u0))) {
            witness = true;
            break;
          }
        }
        if (!witness) {
          alive = false;
          break;
        }
      }
    }
    if (!alive) next &= ~(1ULL << u);
  }
  if (next == m) return false;
  params.Set(v, next);
  return true;
}

void RefineLoop(const Pattern& pattern, const Fragment& frag,
                ParamStore<uint64_t>& params, std::deque<LocalId> worklist) {
  std::vector<uint8_t> queued(frag.num_local(), 0);
  for (LocalId v : worklist) queued[v] = 1;
  while (!worklist.empty()) {
    LocalId v = worklist.front();
    worklist.pop_front();
    queued[v] = 0;
    if (!RefineVertex(pattern, frag, params, v)) continue;
    // Both directions can lose a witness when v's mask shrinks.
    auto schedule = [&](LocalId w) {
      if (frag.IsInner(w) && !queued[w]) {
        queued[w] = 1;
        worklist.push_back(w);
      }
    };
    for (const FragNeighbor& nb : frag.InNeighbors(v)) schedule(nb.local);
    for (const FragNeighbor& nb : frag.OutNeighbors(v)) schedule(nb.local);
  }
}

}  // namespace

void DualSimApp::PEval(const QueryType& query, const Fragment& frag,
                       ParamStore<uint64_t>& params) {
  for (LocalId lid = 0; lid < frag.num_local(); ++lid) {
    params.UntrackedRef(lid) =
        LabelMask(query.pattern, frag.vertex_label(lid));
  }
  std::deque<LocalId> worklist;
  for (LocalId lid = 0; lid < frag.num_inner(); ++lid) {
    worklist.push_back(lid);
  }
  RefineLoop(query.pattern, frag, params, std::move(worklist));
}

void DualSimApp::IncEval(const QueryType& query, const Fragment& frag,
                         ParamStore<uint64_t>& params,
                         const std::vector<LocalId>& updated) {
  std::deque<LocalId> worklist;
  std::vector<uint8_t> queued(frag.num_local(), 0);
  auto schedule = [&](LocalId w) {
    if (frag.IsInner(w) && !queued[w]) {
      queued[w] = 1;
      worklist.push_back(w);
    }
  };
  for (LocalId w : updated) {
    for (const FragNeighbor& nb : frag.InNeighbors(w)) schedule(nb.local);
    for (const FragNeighbor& nb : frag.OutNeighbors(w)) schedule(nb.local);
    schedule(w);
  }
  RefineLoop(query.pattern, frag, params, std::move(worklist));
}

DualSimApp::PartialType DualSimApp::GetPartial(
    const QueryType& query, const Fragment& frag,
    const ParamStore<uint64_t>& params) const {
  PartialType partial(query.pattern.num_vertices());
  for (LocalId lid = 0; lid < frag.num_inner(); ++lid) {
    uint64_t m = params.Get(lid);
    while (m != 0) {
      int u = __builtin_ctzll(m);
      partial[u].push_back(frag.Gid(lid));
      m &= m - 1;
    }
  }
  return partial;
}

DualSimApp::OutputType DualSimApp::Assemble(
    const QueryType& query, std::vector<PartialType>&& partials) {
  SimOutput out;
  out.sim.resize(query.pattern.num_vertices());
  for (PartialType& p : partials) {
    for (uint32_t u = 0; u < p.size(); ++u) {
      out.sim[u].insert(out.sim[u].end(), p[u].begin(), p[u].end());
    }
  }
  for (auto& v : out.sim) std::sort(v.begin(), v.end());
  return out;
}

std::vector<std::vector<VertexId>> SeqDualSimulation(const Graph& graph,
                                                     const Pattern& pattern) {
  const VertexId n = graph.num_vertices();
  const uint32_t k = pattern.num_vertices();
  std::vector<uint64_t> mask(n, 0);
  for (VertexId v = 0; v < n; ++v) {
    for (uint32_t u = 0; u < k; ++u) {
      if (graph.vertex_label(v) == pattern.vertex_label(u)) {
        mask[v] |= (1ULL << u);
      }
    }
  }
  bool changed = true;
  while (changed) {
    changed = false;
    for (VertexId v = 0; v < n; ++v) {
      uint64_t m = mask[v];
      if (m == 0) continue;
      uint64_t next = m;
      for (uint32_t u = 0; u < k; ++u) {
        if (!(m & (1ULL << u))) continue;
        bool alive = true;
        for (const auto& [u2, elabel] : pattern.Out(u)) {
          bool witness = false;
          for (const Neighbor& nb : graph.OutNeighbors(v)) {
            if (nb.label == elabel && (mask[nb.vertex] & (1ULL << u2))) {
              witness = true;
              break;
            }
          }
          if (!witness) {
            alive = false;
            break;
          }
        }
        if (alive) {
          for (const auto& [u0, elabel] : pattern.In(u)) {
            bool witness = false;
            for (const Neighbor& nb : graph.InNeighbors(v)) {
              if (nb.label == elabel && (mask[nb.vertex] & (1ULL << u0))) {
                witness = true;
                break;
              }
            }
            if (!witness) {
              alive = false;
              break;
            }
          }
        }
        if (!alive) next &= ~(1ULL << u);
      }
      if (next != m) {
        mask[v] = next;
        changed = true;
      }
    }
  }
  std::vector<std::vector<VertexId>> sim(k);
  for (VertexId v = 0; v < n; ++v) {
    for (uint32_t u = 0; u < k; ++u) {
      if (mask[v] & (1ULL << u)) sim[u].push_back(v);
    }
  }
  return sim;
}

}  // namespace grape
