#ifndef GRAPE_APPS_MS_SSSP_H_
#define GRAPE_APPS_MS_SSSP_H_

#include <utility>
#include <vector>

#include "core/aggregators.h"
#include "core/codec.h"
#include "core/pie.h"

namespace grape {

struct MsSsspQuery {
  /// One value lane per source; lane k answers SsspQuery{sources[k]}.
  std::vector<VertexId> sources;

  // Wire codec: lets the query ship to remote worker hosts.
  void EncodeTo(Encoder& enc) const { EncodeValue(enc, sources); }
  static Status DecodeFrom(Decoder& dec, MsSsspQuery* out) {
    return DecodeValue(dec, &out->sources);
  }
};

struct MsSsspOutput {
  /// dist[k][gid] = shortest distance from sources[k]; kInfDistance when
  /// unreachable. dist[k] is element-for-element the dist vector a
  /// single-source SsspApp run from sources[k] would assemble.
  std::vector<std::vector<double>> dist;
};

/// Multi-source SSSP: the serving layer's batching vehicle. K single-source
/// queries fuse into one superstep wave by giving every vertex a K-lane
/// distance vector; lane k runs SsspApp's exact sequential Dijkstra (same
/// heap discipline, same left-fold of double additions in the same neighbor
/// order), and lanes never interact — element-wise min aggregation keeps
/// each lane an independent monotonic fixed point. Hence lane k's converged
/// distances are bit-identical to a standalone SsspApp run from sources[k];
/// only the superstep count (the max over lanes) differs.
class MsSsspApp {
 public:
  using QueryType = MsSsspQuery;
  using ValueType = std::vector<double>;
  using AggregatorType = ElementwiseMinAggregatorT<double>;
  using PartialType = std::vector<std::pair<VertexId, std::vector<double>>>;
  using OutputType = MsSsspOutput;
  static constexpr MessageScope kScope = MessageScope::kToOwner;
  static constexpr bool kResetAfterFlush = false;

  /// Lanes are lazy: a missing tail means +inf, so untouched vertices cost
  /// no K-vector storage or wire bytes.
  ValueType InitValue() const { return {}; }

  void PEval(const QueryType& query, const Fragment& frag,
             ParamStore<ValueType>& params);
  void IncEval(const QueryType& query, const Fragment& frag,
               ParamStore<ValueType>& params,
               const std::vector<LocalId>& updated);
  PartialType GetPartial(const QueryType& query, const Fragment& frag,
                         const ParamStore<ValueType>& params) const;
  static OutputType Assemble(const QueryType& query,
                             std::vector<PartialType>&& partials);

  double GlobalValue() const { return 0.0; }
  bool ShouldTerminate(uint32_t round, double global) const {
    (void)round;
    (void)global;
    return false;
  }
};

}  // namespace grape

#endif  // GRAPE_APPS_MS_SSSP_H_
