#include "apps/sssp.h"

#include <algorithm>
#include <queue>

namespace grape {

namespace {

using HeapEntry = std::pair<double, LocalId>;
using MinHeap =
    std::priority_queue<HeapEntry, std::vector<HeapEntry>, std::greater<>>;

/// Dijkstra over the local fragment with lazy deletion. Relaxes the local
/// edges of every popped vertex (outer vertices relax their edges into the
/// inner set, shaving off one superstep of latency per crossing).
void LocalDijkstra(const Fragment& frag, ParamStore<double>& params,
                   MinHeap& heap) {
  while (!heap.empty()) {
    auto [d, v] = heap.top();
    heap.pop();
    if (d > params.Get(v)) continue;
    for (const FragNeighbor& nb : frag.OutNeighbors(v)) {
      double nd = d + nb.weight;
      if (nd < params.Get(nb.local)) {
        params.Set(nb.local, nd);
        heap.push({nd, nb.local});
      }
    }
  }
}

/// One frontier-parallel relaxation fixed point: each round relaxes every
/// member's out-edges with AtomicMin; a vertex whose distance drops joins
/// the next frontier (and the store's dirty set). Visit order within a
/// round is thread-dependent, but the fixed point — min over all path
/// costs — is not, so the converged store matches LocalDijkstra bitwise.
void ParallelRelax(const Fragment& frag, ParamStore<double>& params,
                   Frontier& cur, Frontier& next,
                   const ParallelContext& par) {
  for (;;) {
    cur.Finalize();
    if (cur.empty()) return;
    next.Reset(frag.num_local());
    cur.ForAll(par, [&](LocalId v) {
      const double d = AtomicLoad(params.Get(v));
      for (const FragNeighbor& nb : frag.OutNeighbors(v)) {
        const double nd = d + nb.weight;
        if (AtomicMin(params.UntrackedRef(nb.local), nd)) {
          params.MarkChangedAtomic(nb.local);
          next.AddAtomic(nb.local);
        }
      }
    });
    cur.Swap(next);
  }
}

}  // namespace

void SsspApp::PEval(const QueryType& query, const Fragment& frag,
                    ParamStore<double>& params) {
  MinHeap heap;
  LocalId lid = frag.Lid(query.source);
  // Only the owner seeds; a mirror of the source would relay a stale
  // infinite value otherwise, and its true distance arrives via messages.
  if (lid != kInvalidLocal && frag.IsInner(lid)) {
    params.Set(lid, 0.0);
    heap.push({0.0, lid});
  }
  LocalDijkstra(frag, params, heap);
}

void SsspApp::IncEval(const QueryType& query, const Fragment& frag,
                      ParamStore<double>& params,
                      const std::vector<LocalId>& updated) {
  (void)query;
  MinHeap heap;
  for (LocalId lid : updated) heap.push({params.Get(lid), lid});
  LocalDijkstra(frag, params, heap);
}

void SsspApp::ParallelPEval(const QueryType& query, const Fragment& frag,
                            ParamStore<double>& params,
                            const ParallelContext& par) {
  Frontier cur;
  Frontier next;
  cur.Reset(frag.num_local());
  LocalId lid = frag.Lid(query.source);
  // Same seeding rule as the sequential PEval: only the owner starts.
  if (lid != kInvalidLocal && frag.IsInner(lid)) {
    params.Set(lid, 0.0);
    cur.Add(lid);
  }
  ParallelRelax(frag, params, cur, next, par);
}

void SsspApp::ParallelIncEval(const QueryType& query, const Fragment& frag,
                              ParamStore<double>& params,
                              const std::vector<LocalId>& updated,
                              const ParallelContext& par) {
  (void)query;
  Frontier cur;
  Frontier next;
  cur.Reset(frag.num_local());
  for (LocalId lid : updated) cur.Add(lid);
  ParallelRelax(frag, params, cur, next, par);
}

SsspApp::PartialType SsspApp::GetPartial(
    const QueryType& query, const Fragment& frag,
    const ParamStore<double>& params) const {
  (void)query;
  PartialType partial;
  partial.reserve(frag.num_inner());
  for (LocalId lid = 0; lid < frag.num_inner(); ++lid) {
    partial.emplace_back(frag.Gid(lid), params.Get(lid));
  }
  return partial;
}

SsspApp::OutputType SsspApp::Assemble(const QueryType& query,
                                      std::vector<PartialType>&& partials) {
  (void)query;
  VertexId max_gid = 0;
  bool any = false;
  for (const PartialType& p : partials) {
    for (const auto& [gid, dist] : p) {
      max_gid = std::max(max_gid, gid);
      any = true;
    }
  }
  SsspOutput out;
  out.dist.assign(any ? max_gid + 1 : 0, kInfDistance);
  for (PartialType& p : partials) {
    for (const auto& [gid, dist] : p) out.dist[gid] = dist;
  }
  return out;
}

}  // namespace grape
