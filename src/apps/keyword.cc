#include "apps/keyword.h"

#include <algorithm>
#include <queue>

namespace grape {

namespace {

using HeapEntry = std::pair<double, LocalId>;
using MinHeap =
    std::priority_queue<HeapEntry, std::vector<HeapEntry>, std::greater<>>;

double DistOf(const std::vector<double>& v, size_t k) {
  return k < v.size() ? v[k] : kInfDistance;
}

/// Dijkstra for keyword k over the fragment, bounded by the query radius
/// (distances beyond it can never contribute to an answer).
void LocalKeywordDijkstra(const Fragment& frag,
                          ParamStore<std::vector<double>>& params, size_t k,
                          double radius, MinHeap& heap) {
  while (!heap.empty()) {
    auto [d, v] = heap.top();
    heap.pop();
    if (d > DistOf(params.Get(v), k) || d > radius) continue;
    for (const FragNeighbor& nb : frag.OutNeighbors(v)) {
      double nd = d + nb.weight;
      if (nd > radius) continue;
      if (nd < DistOf(params.Get(nb.local), k)) {
        std::vector<double>& val = params.Mutate(nb.local);
        if (val.size() <= k) val.resize(k + 1, kInfDistance);
        val[k] = nd;
        heap.push({nd, nb.local});
      }
    }
  }
}

}  // namespace

void KeywordApp::PEval(const QueryType& query, const Fragment& frag,
                       ParamStore<ValueType>& params) {
  const size_t m = query.keywords.size();
  for (size_t k = 0; k < m; ++k) {
    MinHeap heap;
    for (LocalId lid = 0; lid < frag.num_local(); ++lid) {
      if (frag.vertex_label(lid) == query.keywords[k]) {
        // Keyword sources are label-determined, hence globally consistent
        // without messages; declare them without dirty-marking. Outer
        // sources are correct too (labels are replicated onto mirrors).
        std::vector<double>& val = params.UntrackedRef(lid);
        if (val.size() <= k) val.resize(k + 1, kInfDistance);
        val[k] = 0.0;
        heap.push({0.0, lid});
      }
    }
    LocalKeywordDijkstra(frag, params, k, query.radius, heap);
  }
}

void KeywordApp::IncEval(const QueryType& query, const Fragment& frag,
                         ParamStore<ValueType>& params,
                         const std::vector<LocalId>& updated) {
  const size_t m = query.keywords.size();
  for (size_t k = 0; k < m; ++k) {
    MinHeap heap;
    for (LocalId lid : updated) {
      double d = DistOf(params.Get(lid), k);
      if (d <= query.radius) heap.push({d, lid});
    }
    LocalKeywordDijkstra(frag, params, k, query.radius, heap);
  }
}

KeywordApp::PartialType KeywordApp::GetPartial(
    const QueryType& query, const Fragment& frag,
    const ParamStore<ValueType>& params) const {
  const size_t m = query.keywords.size();
  PartialType matches;
  for (LocalId lid = 0; lid < frag.num_inner(); ++lid) {
    const std::vector<double>& val = params.Get(lid);
    double score = 0.0;
    bool all = true;
    for (size_t k = 0; k < m; ++k) {
      double d = DistOf(val, k);
      if (d > query.radius) {
        all = false;
        break;
      }
      score = std::max(score, d);
    }
    if (!all) continue;
    KeywordMatch match;
    match.vertex = frag.Gid(lid);
    match.dist.resize(m);
    for (size_t k = 0; k < m; ++k) match.dist[k] = DistOf(val, k);
    match.score = score;
    matches.push_back(std::move(match));
  }
  return matches;
}

KeywordApp::OutputType KeywordApp::Assemble(
    const QueryType& query, std::vector<PartialType>&& partials) {
  (void)query;
  KeywordOutput out;
  for (PartialType& p : partials) {
    out.matches.insert(out.matches.end(), std::make_move_iterator(p.begin()),
                       std::make_move_iterator(p.end()));
  }
  std::sort(out.matches.begin(), out.matches.end(),
            [](const KeywordMatch& a, const KeywordMatch& b) {
              if (a.score != b.score) return a.score < b.score;
              return a.vertex < b.vertex;
            });
  return out;
}

}  // namespace grape
