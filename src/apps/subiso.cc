#include "apps/subiso.h"

#include <algorithm>

namespace grape {

namespace {

/// Number of matched order positions; embeddings always fill a prefix of
/// the matching order.
size_t DepthOf(const std::vector<uint32_t>& order,
               const std::vector<VertexId>& match) {
  size_t depth = 0;
  while (depth < order.size() && match[order[depth]] != kInvalidVertex) {
    ++depth;
  }
  return depth;
}

bool UsesVertex(const std::vector<VertexId>& match, uint32_t k,
                VertexId gid) {
  for (uint32_t u = 0; u < k; ++u) {
    if (match[u] == gid) return true;
  }
  return false;
}

/// Scans `rows` for an edge to a *local* endpoint with the given label.
bool HasEdgeToLocal(std::span<const FragNeighbor> rows, LocalId target,
                    Label label) {
  for (const FragNeighbor& nb : rows) {
    if (nb.local == target && nb.label == label) return true;
  }
  return false;
}

/// Scans `rows` for an edge to a *global* endpoint with the given label.
bool HasEdgeToGid(const Fragment& frag, std::span<const FragNeighbor> rows,
                  VertexId gid, Label label) {
  for (const FragNeighbor& nb : rows) {
    if (frag.Gid(nb.local) == gid && nb.label == label) return true;
  }
  return false;
}

/// Verifies every pattern edge between u and already-matched vertices from
/// vertex b's side. Requires b to be inner (full adjacency).
bool VerifyFromB(const Fragment& frag, const Pattern& pattern,
                 const std::vector<VertexId>& match, uint32_t u,
                 LocalId b_lid) {
  for (const auto& [w, l] : pattern.Out(u)) {
    if (w == u || match[w] == kInvalidVertex) continue;
    if (!HasEdgeToGid(frag, frag.OutNeighbors(b_lid), match[w], l)) {
      return false;
    }
  }
  for (const auto& [w, l] : pattern.In(u)) {
    if (w == u || match[w] == kInvalidVertex) continue;
    if (!HasEdgeToGid(frag, frag.InNeighbors(b_lid), match[w], l)) {
      return false;
    }
  }
  return true;
}

}  // namespace

void SubIsoApp::Extend(const QueryType& query, const Fragment& frag,
                       ParamStore<ValueType>& params,
                       std::vector<VertexId>& match, size_t depth) {
  const Pattern& pattern = query.pattern;
  const uint32_t k = pattern.num_vertices();
  if (query.max_results > 0 && results_.size() >= query.max_results) return;
  if (depth == k) {
    results_.emplace_back(match.begin(), match.begin() + k);
    return;
  }

  const uint32_t u = order_[depth];
  // Anchor: the first earlier order vertex adjacent to u in the pattern
  // (BuildMatchingOrder guarantees one exists for depth >= 1).
  uint32_t anchor = kInvalidVertex;
  bool anchor_out = true;
  Label anchor_label = 0;
  for (size_t t = 0; t < depth && anchor == kInvalidVertex; ++t) {
    uint32_t w = order_[t];
    for (const auto& [x, l] : pattern.Out(w)) {
      if (x == u) {
        anchor = w;
        anchor_out = true;
        anchor_label = l;
        break;
      }
    }
    if (anchor != kInvalidVertex) break;
    for (const auto& [x, l] : pattern.In(w)) {
      if (x == u) {
        anchor = w;
        anchor_out = false;
        anchor_label = l;
        break;
      }
    }
  }

  const VertexId a_gid = match[anchor];
  const LocalId a_lid = frag.Lid(a_gid);
  if (a_lid == kInvalidLocal || !frag.IsInner(a_lid)) {
    // The anchor's full adjacency lives at its owner: forward the embedding
    // there and resume (flag 0: nothing pending verification).
    match[k] = 0;
    if (a_lid != kInvalidLocal) {
      params.Mutate(a_lid).push_back(match);
    } else {
      params.PostRemote(a_gid, {match});
    }
    return;
  }

  std::span<const FragNeighbor> rows =
      anchor_out ? frag.OutNeighbors(a_lid) : frag.InNeighbors(a_lid);
  for (const FragNeighbor& nb : rows) {
    if (nb.label != anchor_label) continue;
    const LocalId b_lid = nb.local;
    const VertexId b_gid = frag.Gid(b_lid);
    if (frag.vertex_label(b_lid) != pattern.vertex_label(u)) continue;
    if (UsesVertex(match, k, b_gid)) continue;  // injectivity

    // Verify the remaining pattern edges between u and matched vertices.
    // Each edge is checkable from whichever endpoint is inner; if neither
    // is, verification is deferred to b's owner.
    bool ok = true;
    bool defer = false;
    const bool b_inner = frag.IsInner(b_lid);
    auto check = [&](uint32_t w, Label l, bool u_to_w) {
      if (!ok || defer) return;
      if (w == u || match[w] == kInvalidVertex) return;
      const VertexId c_gid = match[w];
      if (w == anchor && c_gid == a_gid) {
        // The anchor edge that generated this candidate may still need a
        // direction/label distinct from (anchor_out, anchor_label); check
        // cheaply below like any other edge.
      }
      const LocalId c_lid = frag.Lid(c_gid);
      if (b_inner) {
        ok = u_to_w
                 ? HasEdgeToGid(frag, frag.OutNeighbors(b_lid), c_gid, l)
                 : HasEdgeToGid(frag, frag.InNeighbors(b_lid), c_gid, l);
      } else if (c_lid != kInvalidLocal && frag.IsInner(c_lid)) {
        // From c's side: pattern edge u->w is a data edge b->c, i.e. an
        // in-edge of c (and vice versa).
        ok = u_to_w ? HasEdgeToLocal(frag.InNeighbors(c_lid), b_lid, l)
                    : HasEdgeToLocal(frag.OutNeighbors(c_lid), b_lid, l);
      } else {
        defer = true;
      }
    };
    for (const auto& [w, l] : pattern.Out(u)) check(w, l, /*u_to_w=*/true);
    for (const auto& [w, l] : pattern.In(u)) check(w, l, /*u_to_w=*/false);
    if (!ok) continue;

    match[u] = b_gid;
    if (defer) {
      // b's owner verifies position `depth` before extending.
      match[k] = static_cast<VertexId>(depth + 1);
      params.Mutate(b_lid).push_back(match);
      match[k] = 0;
    } else {
      Extend(query, frag, params, match, depth + 1);
    }
    match[u] = kInvalidVertex;
  }
}

void SubIsoApp::PEval(const QueryType& query, const Fragment& frag,
                      ParamStore<ValueType>& params) {
  results_.clear();
  if (query.pattern.num_vertices() == 0 || !query.pattern.IsConnected()) {
    return;
  }
  order_ = BuildMatchingOrder(query.pattern);
  const uint32_t k = query.pattern.num_vertices();
  std::vector<VertexId> match(k + 1, kInvalidVertex);
  match[k] = 0;

  // Graph-level optimization the paper highlights: root candidates come
  // from the fragment's label index instead of a full vertex scan.
  index_ = LabelIndex(frag);
  const uint32_t root = order_[0];
  for (LocalId lid : index_.InnerWithLabel(query.pattern.vertex_label(root))) {
    match[root] = frag.Gid(lid);
    Extend(query, frag, params, match, 1);
    match[root] = kInvalidVertex;
  }
}

void SubIsoApp::IncEval(const QueryType& query, const Fragment& frag,
                        ParamStore<ValueType>& params,
                        const std::vector<LocalId>& updated) {
  if (order_.empty()) return;  // degenerate pattern
  const uint32_t k = query.pattern.num_vertices();
  for (LocalId lid : updated) {
    if (!frag.IsInner(lid)) continue;
    ValueType inbox = std::move(params.UntrackedRef(lid));
    params.UntrackedRef(lid).clear();
    for (std::vector<VertexId>& match : inbox) {
      if (match.size() != k + 1) continue;  // malformed, drop
      const VertexId flag = match[k];
      size_t depth = DepthOf(order_, match);
      if (flag != 0) {
        const uint32_t pos = static_cast<uint32_t>(flag - 1);
        if (pos >= k) continue;
        const uint32_t u = order_[pos];
        const LocalId b_lid = frag.Lid(match[u]);
        if (b_lid == kInvalidLocal || !frag.IsInner(b_lid)) continue;
        if (!VerifyFromB(frag, query.pattern, match, u, b_lid)) continue;
        match[k] = 0;
      }
      Extend(query, frag, params, match, depth);
    }
  }
}

SubIsoApp::PartialType SubIsoApp::GetPartial(
    const QueryType& query, const Fragment& frag,
    const ParamStore<ValueType>& params) const {
  (void)query;
  (void)frag;
  (void)params;
  return results_;
}

SubIsoApp::OutputType SubIsoApp::Assemble(const QueryType& query,
                                          std::vector<PartialType>&& partials) {
  (void)query;
  SubIsoOutput out;
  for (PartialType& p : partials) {
    out.embeddings.insert(out.embeddings.end(),
                          std::make_move_iterator(p.begin()),
                          std::make_move_iterator(p.end()));
  }
  std::sort(out.embeddings.begin(), out.embeddings.end());
  out.embeddings.erase(
      std::unique(out.embeddings.begin(), out.embeddings.end()),
      out.embeddings.end());
  return out;
}

}  // namespace grape
