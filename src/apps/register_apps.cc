#include "apps/register_apps.h"

#include <sstream>

#include "apps/bfs.h"
#include "apps/cc.h"
#include "apps/cf.h"
#include "apps/dual_sim.h"
#include "apps/gpar.h"
#include "apps/kcore.h"
#include "apps/keyword.h"
#include "apps/ms_bfs.h"
#include "apps/ms_sssp.h"
#include "apps/pagerank.h"
#include "apps/sim.h"
#include "apps/sssp.h"
#include "apps/subiso.h"
#include "apps/triangle.h"
#include "core/app_registry.h"
#include "core/engine.h"
#include "rt/remote_worker.h"
#include "util/string_util.h"

namespace grape {

namespace {

uint64_t ArgInt(const QueryArgs& args, const std::string& key,
                uint64_t fallback) {
  auto it = args.find(key);
  if (it == args.end()) return fallback;
  uint64_t v = 0;
  return ParseUint64(it->second, &v) ? v : fallback;
}

double ArgDouble(const QueryArgs& args, const std::string& key,
                 double fallback) {
  auto it = args.find(key);
  if (it == args.end()) return fallback;
  double v = 0;
  return ParseDouble(it->second, &v) ? v : fallback;
}

/// A small fixed pattern library for the sim/subiso play panel: "edge",
/// "path3", "triangle", "star3". Labels refer to data vertex labels.
Result<Pattern> PatternByName(const std::string& name, Label l0, Label l1,
                              Label l2) {
  if (name == "edge") {
    return Pattern::Create({l0, l1}, {{0, 1, 0}});
  }
  if (name == "path3") {
    return Pattern::Create({l0, l1, l2}, {{0, 1, 0}, {1, 2, 0}});
  }
  if (name == "triangle") {
    return Pattern::Create({l0, l1, l2}, {{0, 1, 0}, {1, 2, 0}, {2, 0, 0}});
  }
  if (name == "star3") {
    return Pattern::Create({l0, l1, l1, l1},
                           {{0, 1, 0}, {0, 2, 0}, {0, 3, 0}});
  }
  return Status::NotFound("unknown pattern: " + name);
}

template <typename App, typename MakeQuery, typename Describe>
RegisteredApp MakeEntry(std::string name, std::string description,
                        MakeQuery make_query, Describe describe) {
  RegisteredApp entry;
  entry.name = std::move(name);
  entry.description = std::move(description);
  entry.run = [make_query, describe](const FragmentedGraph& fg,
                                     const QueryArgs& args,
                                     const EngineOptions& options,
                                     EngineMetrics* metrics)
      -> Result<std::string> {
    auto query = make_query(fg, args);
    if (!query.ok()) return query.status();
    GrapeEngine<App> engine(fg, App{}, options);
    auto output = engine.Run(*query);
    if (!output.ok()) return output.status();
    if (metrics != nullptr) *metrics = engine.metrics();
    return describe(*output);
  };
  return entry;
}

/// Wire-codable apps additionally get a distributed-load entry point: the
/// engine holds only DistributedGraphMeta, so the query must be buildable
/// from args alone (there is no graph at rank 0 to inspect).
template <typename App, typename MakeQuery, typename Describe>
RegisteredApp MakeRemoteEntry(std::string name, std::string description,
                              MakeQuery make_query, Describe describe) {
  RegisteredApp entry = MakeEntry<App>(
      std::move(name), std::move(description),
      [make_query](const FragmentedGraph&, const QueryArgs& args) {
        return make_query(args);
      },
      describe);
  entry.run_distributed =
      [make_query, describe](const DistributedGraphMeta& meta,
                             const QueryArgs& args,
                             const EngineOptions& options,
                             EngineMetrics* metrics) -> Result<std::string> {
    auto query = make_query(args);
    if (!query.ok()) return query.status();
    GrapeEngine<App> engine(meta, options);
    auto output = engine.Run(*query);
    if (!output.ok()) return output.status();
    if (metrics != nullptr) *metrics = engine.metrics();
    return describe(*output);
  };
  return entry;
}

}  // namespace

void RegisterBuiltinWorkerApps() {
  // The wire-codable subset: apps whose Query/Partial/Value types cross
  // process boundaries, so their PEval/IncEval can execute inside an
  // endpoint process (EngineOptions::remote_app).
  RegisterRemoteWorker<SsspApp>("sssp");
  RegisterRemoteWorker<BfsApp>("bfs");
  RegisterRemoteWorker<CcApp>("cc");
  RegisterRemoteWorker<PageRankApp>("pagerank");
  // Batched waves for the serving layer: K single-source queries fused
  // into one superstep run, one value lane per source.
  RegisterRemoteWorker<MsSsspApp>("ms_sssp");
  RegisterRemoteWorker<MsBfsApp>("ms_bfs");
}

void RegisterBuiltinApps() {
  RegisterBuiltinWorkerApps();
  AppRegistry& registry = AppRegistry::Global();

  registry.Register(MakeRemoteEntry<SsspApp>(
      "sssp", "single-source shortest paths (args: source)",
      [](const QueryArgs& args) -> Result<SsspQuery> {
        return SsspQuery{static_cast<VertexId>(ArgInt(args, "source", 0))};
      },
      [](const SsspOutput& out) {
        size_t reached = 0;
        double max_dist = 0;
        for (double d : out.dist) {
          if (d < kInfDistance) {
            ++reached;
            max_dist = std::max(max_dist, d);
          }
        }
        std::ostringstream os;
        os << "reached " << reached << " vertices, eccentricity " << max_dist;
        return os.str();
      }));

  registry.Register(MakeRemoteEntry<BfsApp>(
      "bfs", "breadth-first hop counts (args: source)",
      [](const QueryArgs& args) -> Result<BfsQuery> {
        return BfsQuery{static_cast<VertexId>(ArgInt(args, "source", 0))};
      },
      [](const BfsOutput& out) {
        size_t reached = 0;
        uint32_t depth = 0;
        for (uint32_t d : out.depth) {
          if (d != UINT32_MAX) {
            ++reached;
            depth = std::max(depth, d);
          }
        }
        std::ostringstream os;
        os << "reached " << reached << " vertices, depth " << depth;
        return os.str();
      }));

  registry.Register(MakeRemoteEntry<CcApp>(
      "cc", "connected components (no args)",
      [](const QueryArgs&) -> Result<CcQuery> { return CcQuery{}; },
      [](const CcOutput& out) {
        size_t components = 0;
        for (VertexId v = 0; v < out.label.size(); ++v) {
          if (out.label[v] == v) ++components;
        }
        std::ostringstream os;
        os << components << " components over " << out.label.size()
           << " vertices";
        return os.str();
      }));

  registry.Register(MakeRemoteEntry<PageRankApp>(
      "pagerank", "PageRank (args: damping, iters, epsilon)",
      [](const QueryArgs& args) -> Result<PageRankQuery> {
        PageRankQuery q;
        q.damping = ArgDouble(args, "damping", q.damping);
        q.max_iterations = static_cast<uint32_t>(
            ArgInt(args, "iters", q.max_iterations));
        q.epsilon = ArgDouble(args, "epsilon", q.epsilon);
        return q;
      },
      [](const PageRankOutput& out) {
        double sum = 0;
        for (double r : out.rank) sum += r;
        std::ostringstream os;
        os << out.rank.size() << " ranks, mass " << sum;
        return os.str();
      }));

  registry.Register(MakeEntry<SimApp>(
      "sim", "graph simulation (args: pattern, l0, l1, l2)",
      [](const FragmentedGraph&, const QueryArgs& args) -> Result<SimQuery> {
        auto pattern = PatternByName(
            args.count("pattern") ? args.at("pattern") : "edge",
            static_cast<Label>(ArgInt(args, "l0", 0)),
            static_cast<Label>(ArgInt(args, "l1", 1)),
            static_cast<Label>(ArgInt(args, "l2", 2)));
        if (!pattern.ok()) return pattern.status();
        return SimQuery{*pattern};
      },
      [](const SimOutput& out) {
        std::ostringstream os;
        os << "sim sets:";
        for (size_t u = 0; u < out.sim.size(); ++u) {
          os << " |sim(" << u << ")|=" << out.sim[u].size();
        }
        return os.str();
      }));

  registry.Register(MakeEntry<DualSimApp>(
      "dualsim", "dual graph simulation (args: pattern, l0, l1, l2)",
      [](const FragmentedGraph&, const QueryArgs& args) -> Result<SimQuery> {
        auto pattern = PatternByName(
            args.count("pattern") ? args.at("pattern") : "edge",
            static_cast<Label>(ArgInt(args, "l0", 0)),
            static_cast<Label>(ArgInt(args, "l1", 1)),
            static_cast<Label>(ArgInt(args, "l2", 2)));
        if (!pattern.ok()) return pattern.status();
        return SimQuery{*pattern};
      },
      [](const SimOutput& out) {
        std::ostringstream os;
        os << "dual-sim sets:";
        for (size_t u = 0; u < out.sim.size(); ++u) {
          os << " |sim(" << u << ")|=" << out.sim[u].size();
        }
        return os.str();
      }));

  registry.Register(MakeEntry<SubIsoApp>(
      "subiso", "subgraph isomorphism (args: pattern, l0, l1, l2, limit)",
      [](const FragmentedGraph&,
         const QueryArgs& args) -> Result<SubIsoQuery> {
        auto pattern = PatternByName(
            args.count("pattern") ? args.at("pattern") : "edge",
            static_cast<Label>(ArgInt(args, "l0", 0)),
            static_cast<Label>(ArgInt(args, "l1", 1)),
            static_cast<Label>(ArgInt(args, "l2", 2)));
        if (!pattern.ok()) return pattern.status();
        return SubIsoQuery{*pattern, ArgInt(args, "limit", 0)};
      },
      [](const SubIsoOutput& out) {
        std::ostringstream os;
        os << out.embeddings.size() << " embeddings";
        return os.str();
      }));

  registry.Register(MakeEntry<KeywordApp>(
      "keyword", "keyword search (args: k0, k1, ..., radius)",
      [](const FragmentedGraph&,
         const QueryArgs& args) -> Result<KeywordQuery> {
        KeywordQuery q;
        for (int i = 0; i < 8; ++i) {
          std::string key = "k" + std::to_string(i);
          if (!args.count(key)) break;
          q.keywords.push_back(static_cast<Label>(ArgInt(args, key, 0)));
        }
        if (q.keywords.empty()) q.keywords = {0, 1};
        q.radius = ArgDouble(args, "radius", q.radius);
        return q;
      },
      [](const KeywordOutput& out) {
        std::ostringstream os;
        os << out.matches.size() << " matching vertices";
        if (!out.matches.empty()) {
          os << ", best " << out.matches.front().vertex << " (score "
             << out.matches.front().score << ")";
        }
        return os.str();
      }));

  registry.Register(MakeEntry<CfApp>(
      "cf", "collaborative filtering (args: rank, epochs, lr, reg)",
      [](const FragmentedGraph&, const QueryArgs& args) -> Result<CfQuery> {
        CfQuery q;
        q.rank = static_cast<uint32_t>(ArgInt(args, "rank", q.rank));
        q.epochs = static_cast<uint32_t>(ArgInt(args, "epochs", q.epochs));
        q.learning_rate = ArgDouble(args, "lr", q.learning_rate);
        q.regularization = ArgDouble(args, "reg", q.regularization);
        return q;
      },
      [](const CfOutput& out) {
        std::ostringstream os;
        os << "trained " << out.factors.size() << " factor vectors, RMSE "
           << out.train_rmse;
        return os.str();
      }));

  registry.Register(MakeEntry<KCoreApp>(
      "kcore", "k-core decomposition (no args)",
      [](const FragmentedGraph&, const QueryArgs&) -> Result<KCoreQuery> {
        return KCoreQuery{};
      },
      [](const KCoreOutput& out) {
        uint32_t max_core = 0;
        for (uint32_t c : out.coreness) max_core = std::max(max_core, c);
        std::ostringstream os;
        os << "degeneracy " << max_core << " over " << out.coreness.size()
           << " vertices";
        return os.str();
      }));

  registry.Register(MakeEntry<TriangleApp>(
      "triangle", "triangle counting (no args)",
      [](const FragmentedGraph&, const QueryArgs&) -> Result<TriangleQuery> {
        return TriangleQuery{};
      },
      [](const TriangleOutput& out) {
        std::ostringstream os;
        os << out.triangles << " triangles";
        return os.str();
      }));

  registry.Register(MakeEntry<GparApp>(
      "gpar", "GPAR social-media marketing (args: item, support)",
      [](const FragmentedGraph&, const QueryArgs& args) -> Result<GparQuery> {
        GparQuery q;
        q.item = static_cast<VertexId>(ArgInt(args, "item", 0));
        q.support = ArgDouble(args, "support", q.support);
        q.min_followees = static_cast<uint32_t>(
            ArgInt(args, "min_followees", q.min_followees));
        return q;
      },
      [](const GparOutput& out) {
        std::ostringstream os;
        os << out.candidates.size() << " potential customers";
        if (!out.candidates.empty()) {
          os << ", top confidence " << out.candidates.front().confidence;
        }
        return os.str();
      }));
}

}  // namespace grape
