#ifndef GRAPE_APPS_KCORE_H_
#define GRAPE_APPS_KCORE_H_

#include <cstdint>
#include <utility>
#include <vector>

#include "core/aggregators.h"
#include "core/pie.h"
#include "graph/graph.h"

namespace grape {

struct KCoreQuery {};

struct KCoreOutput {
  /// coreness[gid] = largest k such that gid belongs to the k-core.
  std::vector<uint32_t> coreness;
};

/// PIE program for k-core decomposition — an extension query class built on
/// the distributed coreness algorithm of Montresor et al. (one-hop h-index
/// refinement): every vertex maintains an upper bound on its coreness,
/// initialized to its degree, and repeatedly lowers it to the h-index of
/// its neighbours' bounds. Bounds decrease monotonically to the exact
/// coreness, so the computation is a textbook GRAPE fixed point:
///   PEval  : local h-index iteration to the fragment-local fixed point.
///   IncEval: re-refine only neighbours of mirrors whose bound dropped.
///   Update parameters: the bounds of border vertices, owner-to-mirror,
///   min-aggregated (a bound can only tighten).
class KCoreApp {
 public:
  using QueryType = KCoreQuery;
  using ValueType = uint32_t;
  using AggregatorType = MinAggregator<uint32_t>;
  using PartialType = std::vector<std::pair<VertexId, uint32_t>>;
  using OutputType = KCoreOutput;
  static constexpr MessageScope kScope = MessageScope::kToMirrors;
  static constexpr bool kResetAfterFlush = false;

  ValueType InitValue() const { return UINT32_MAX; }

  void PEval(const QueryType& query, const Fragment& frag,
             ParamStore<uint32_t>& params);
  void IncEval(const QueryType& query, const Fragment& frag,
               ParamStore<uint32_t>& params,
               const std::vector<LocalId>& updated);
  PartialType GetPartial(const QueryType& query, const Fragment& frag,
                         const ParamStore<uint32_t>& params) const;
  static OutputType Assemble(const QueryType& query,
                             std::vector<PartialType>&& partials);

  double GlobalValue() const { return 0.0; }
  bool ShouldTerminate(uint32_t round, double global) const {
    (void)round;
    (void)global;
    return false;
  }
};

/// Sequential reference: exact coreness by the classic peeling algorithm
/// (repeatedly remove a minimum-degree vertex). Directed graphs use the
/// undirected view; parallel edges count toward the degree.
std::vector<uint32_t> SeqKCore(const Graph& graph);

}  // namespace grape

#endif  // GRAPE_APPS_KCORE_H_
