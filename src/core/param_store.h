#ifndef GRAPE_CORE_PARAM_STORE_H_
#define GRAPE_CORE_PARAM_STORE_H_

#include <utility>
#include <vector>

#include "graph/types.h"
#include "util/bitset.h"

namespace grape {

/// The update parameters x̄_i of a fragment (Sec. 2.2): one value per local
/// vertex (inner and outer). PEval declares them by writing initial values;
/// IncEval revises them. The store tracks which entries changed since the
/// last engine flush — that dirty set is what becomes messages, which is
/// exactly the paper's "messages are generated automatically from update
/// parameters whose values are changed".
template <typename V>
class ParamStore {
 public:
  ParamStore() = default;

  void Init(LocalId num_local, V init_value) {
    values_.assign(num_local, init_value);
    changed_.Resize(num_local);
    changed_.Clear();
  }

  LocalId size() const { return static_cast<LocalId>(values_.size()); }

  const V& Get(LocalId lid) const { return values_[lid]; }

  /// Assigns unconditionally and marks the entry changed.
  void Set(LocalId lid, V value) {
    values_[lid] = std::move(value);
    changed_.Set(lid);
  }

  /// Assigns only if different; returns whether a change happened.
  bool SetIfChanged(LocalId lid, const V& value) {
    if (values_[lid] == value) return false;
    values_[lid] = value;
    changed_.Set(lid);
    return true;
  }

  /// Mutable access that conservatively marks the entry changed.
  V& Mutate(LocalId lid) {
    changed_.Set(lid);
    return values_[lid];
  }

  /// Read-write access with no change tracking; callers must MarkChanged()
  /// themselves if they modify the value.
  V& UntrackedRef(LocalId lid) { return values_[lid]; }
  void MarkChanged(LocalId lid) { changed_.Set(lid); }

  /// Thread-safe MarkChanged for frontier-parallel writers (which update
  /// values through AtomicMin on UntrackedRef). The resulting dirty set —
  /// and therefore the flush — is identical to sequential marking: the
  /// bitset orders it by lid, not by insertion.
  void MarkChangedAtomic(LocalId lid) { changed_.SetAtomic(lid); }

  bool IsChanged(LocalId lid) const { return changed_.Test(lid); }

  /// Snapshots and clears the dirty set (engine flush).
  std::vector<LocalId> TakeChanged() {
    std::vector<LocalId> out;
    TakeChangedInto(&out);
    return out;
  }

  /// Allocation-free variant: fills a caller-owned scratch vector whose
  /// capacity survives across supersteps.
  void TakeChangedInto(std::vector<LocalId>* out) {
    out->clear();
    changed_.ForEach(
        [out](size_t lid) { out->push_back(static_cast<LocalId>(lid)); });
    changed_.Clear();
  }

  /// Posts an update addressed to an arbitrary *global* vertex; the engine
  /// routes it to that vertex's owner and folds it in with the app's
  /// aggregate function. Used by programs whose data flows along matched
  /// structures rather than fragment borders (e.g. SubIso forwarding a
  /// partial embedding to the owner of its next anchor vertex).
  void PostRemote(VertexId gid, V value) {
    remote_.emplace_back(gid, std::move(value));
  }

  std::vector<std::pair<VertexId, V>> TakeRemote() {
    return std::move(remote_);
  }

  /// Hands a drained TakeRemote() vector back so PostRemote can reuse its
  /// capacity instead of growing a fresh allocation every superstep.
  void RecycleRemote(std::vector<std::pair<VertexId, V>>&& storage) {
    if (!remote_.empty()) return;  // posts raced in; keep them
    storage.clear();
    remote_ = std::move(storage);
  }

  const std::vector<V>& values() const { return values_; }

 private:
  std::vector<V> values_;
  std::vector<std::pair<VertexId, V>> remote_;
  Bitset changed_;
};

}  // namespace grape

#endif  // GRAPE_CORE_PARAM_STORE_H_
