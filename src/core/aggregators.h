#ifndef GRAPE_CORE_AGGREGATORS_H_
#define GRAPE_CORE_AGGREGATORS_H_

#include <algorithm>
#include <cstdint>
#include <vector>

namespace grape {

/// Aggregate functions resolve conflicts when several workers assign values
/// to the same update parameter (Sec. 2.2: "an aggregate function to resolve
/// conflicts"). An aggregator defines:
///   - Aggregate(cur, in): folds `in` into `cur`; returns true iff `cur`
///     changed (drives the fixed-point/termination test).
///   - kMonotonic / InOrder(next, prev): the partial order of the Assurance
///     Theorem. When kMonotonic, every accepted change must satisfy
///     InOrder(next, prev); the engine counts violations in debug mode.

template <typename V>
struct MinAggregator {
  static constexpr bool kMonotonic = true;
  static bool Aggregate(V& cur, const V& in) {
    if (in < cur) {
      cur = in;
      return true;
    }
    return false;
  }
  static bool InOrder(const V& next, const V& prev) { return !(prev < next); }
};

template <typename V>
struct MaxAggregator {
  static constexpr bool kMonotonic = true;
  static bool Aggregate(V& cur, const V& in) {
    if (cur < in) {
      cur = in;
      return true;
    }
    return false;
  }
  static bool InOrder(const V& next, const V& prev) { return !(next < prev); }
};

/// Accumulating sum; not monotonic in general (negative deltas).
template <typename V>
struct SumAggregator {
  static constexpr bool kMonotonic = false;
  static bool Aggregate(V& cur, const V& in) {
    if (in == V{}) return false;
    cur += in;
    return true;
  }
  static bool InOrder(const V&, const V&) { return true; }
};

/// Last-writer-wins; used where the owner is the sole writer (PageRank/CF
/// mirror refresh), so no true conflict exists.
template <typename V>
struct OverwriteAggregator {
  static constexpr bool kMonotonic = false;
  static bool Aggregate(V& cur, const V& in) {
    if (cur == in) return false;
    cur = in;
    return true;
  }
  static bool InOrder(const V&, const V&) { return true; }
};

/// Bitwise intersection over a set encoded as a mask; values only shrink
/// (graph-simulation refinement).
struct BitAndAggregator {
  static constexpr bool kMonotonic = true;
  static bool Aggregate(uint64_t& cur, const uint64_t& in) {
    uint64_t next = cur & in;
    if (next == cur) return false;
    cur = next;
    return true;
  }
  static bool InOrder(const uint64_t& next, const uint64_t& prev) {
    return (next & prev) == next;  // next is a subset of prev
  }
};

/// Grow-only union by concatenation (duplicate suppression is the app's
/// concern); used for partial-match forwarding in SubIso.
template <typename T>
struct AppendAggregator {
  static constexpr bool kMonotonic = true;
  static bool Aggregate(std::vector<T>& cur, const std::vector<T>& in) {
    if (in.empty()) return false;
    cur.insert(cur.end(), in.begin(), in.end());
    return true;
  }
  static bool InOrder(const std::vector<T>& next,
                      const std::vector<T>& prev) {
    return next.size() >= prev.size();
  }
};

/// Element-wise minimum over per-lane value vectors (multi-source distance
/// propagation: keyword search, and the serving layer's batched
/// multi-source SSSP/BFS waves). A shorter vector is a vector whose
/// missing tail is +inf: the incoming tail is adopted wholesale. Each lane
/// is an independent monotonically-decreasing min fixed point, so the
/// Assurance Theorem applies per lane exactly as for single-source SSSP.
template <typename V>
struct ElementwiseMinAggregatorT {
  static constexpr bool kMonotonic = true;
  static bool Aggregate(std::vector<V>& cur, const std::vector<V>& in) {
    bool changed = false;
    if (cur.size() < in.size()) {
      // Treat missing entries as +inf: adopt the incoming tail.
      size_t old = cur.size();
      cur.resize(in.size());
      for (size_t i = old; i < in.size(); ++i) {
        cur[i] = in[i];
        changed = true;
      }
    }
    for (size_t i = 0; i < std::min(cur.size(), in.size()); ++i) {
      if (in[i] < cur[i]) {
        cur[i] = in[i];
        changed = true;
      }
    }
    return changed;
  }
  static bool InOrder(const std::vector<V>& next, const std::vector<V>& prev) {
    for (size_t i = 0; i < std::min(next.size(), prev.size()); ++i) {
      if (prev[i] < next[i]) return false;
    }
    return true;
  }
};

/// The historical name (keyword search's aggregator).
using ElementwiseMinAggregator = ElementwiseMinAggregatorT<double>;

}  // namespace grape

#endif  // GRAPE_CORE_AGGREGATORS_H_
