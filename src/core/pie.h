#ifndef GRAPE_CORE_PIE_H_
#define GRAPE_CORE_PIE_H_

#include <cstdint>
#include <vector>

#include "core/param_store.h"
#include "graph/types.h"
#include "partition/fragment.h"

namespace grape {

/// Routing of changed update parameters at the coordinator.
enum class MessageScope : uint8_t {
  /// Changes on *outer* (mirror) vertices are shipped to the vertex's owner
  /// fragment (SSSP/CC/Keyword: mirrors relay improvements to the owner).
  kToOwner,
  /// Changes on *inner border* vertices are shipped to every fragment that
  /// mirrors them (PageRank/CF/Sim: owners refresh read-only mirror copies).
  kToMirrors,
  /// Both of the above (apps whose values flow in both directions).
  kBoth,
};

/// A resolved update parameter in flight: the paper's message unit.
template <typename V>
struct ParamUpdate {
  VertexId gid;
  V value;
};

// ---------------------------------------------------------------------------
// The PIE programming model (Sec. 2.1).
//
// A PIE program is a class App with:
//
//   using QueryType  = ...;   // Q: the query
//   using ValueType  = ...;   // domain of the update parameters x̄_i
//   using AggregatorType = ...;          // conflict resolution (min, ...)
//   using PartialType = ...;  // per-fragment partial answer Q(F_i)
//   using OutputType  = ...;  // assembled answer Q(G)
//
//   static constexpr MessageScope kScope = ...;
//   // Reset a parameter to InitValue() after it is flushed into a message
//   // (outbox semantics, used by match-forwarding apps like SubIso).
//   static constexpr bool kResetAfterFlush = false;
//
//   ValueType InitValue() const;
//
//   // (1) Partial evaluation: any sequential algorithm for Q, run on F_i.
//   void PEval(const QueryType&, const Fragment&, ParamStore<ValueType>&);
//
//   // (2) Incremental evaluation: a sequential incremental algorithm
//   // applied to the message-induced updates; `updated` lists local
//   // vertices whose parameters changed when messages M_i were applied.
//   void IncEval(const QueryType&, const Fragment&, ParamStore<ValueType>&,
//                const std::vector<LocalId>& updated);
//
//   // (3) Partial answer extraction and assembly.
//   PartialType GetPartial(const QueryType&, const Fragment&,
//                          const ParamStore<ValueType>&) const;
//   static OutputType Assemble(const QueryType&,
//                              std::vector<PartialType>&& partials);
//
//   // Optional extras for non-monotonic computations: a per-worker scalar
//   // contribution summed by the coordinator each round, and a termination
//   // override evaluated on the sum (e.g. PageRank's L1 delta).
//   double GlobalValue() const;
//   bool ShouldTerminate(uint32_t round, double global) const;
//
// The engine (core/engine.h) evaluates the simultaneous fixed point
//   R_i^0     = PEval(Q, F_i),
//   R_i^{r+1} = IncEval(Q, R_i^r, F_i[x̄_i], M_i)
// and calls Assemble once no parameter changes anywhere (or the app's
// termination hook fires).
// ---------------------------------------------------------------------------

/// Concept checked by the engine; mirrors the contract above.
template <typename App>
concept PIEProgram = requires(App app, const App capp,
                              const typename App::QueryType& q,
                              const Fragment& frag,
                              ParamStore<typename App::ValueType>& params,
                              const std::vector<LocalId>& updated) {
  typename App::QueryType;
  typename App::ValueType;
  typename App::AggregatorType;
  typename App::PartialType;
  typename App::OutputType;
  { App::kScope } -> std::convertible_to<MessageScope>;
  { App::kResetAfterFlush } -> std::convertible_to<bool>;
  { capp.InitValue() } -> std::convertible_to<typename App::ValueType>;
  { app.PEval(q, frag, params) };
  { app.IncEval(q, frag, params, updated) };
  { capp.GetPartial(q, frag, params) } ->
      std::convertible_to<typename App::PartialType>;
  { capp.GlobalValue() } -> std::convertible_to<double>;
  { capp.ShouldTerminate(uint32_t{}, double{}) } ->
      std::convertible_to<bool>;
};

}  // namespace grape

#endif  // GRAPE_CORE_PIE_H_
