#ifndef GRAPE_CORE_WORKER_CORE_H_
#define GRAPE_CORE_WORKER_CORE_H_

#include <algorithm>
#include <concepts>
#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "core/codec.h"
#include "core/parallel.h"
#include "core/pie.h"
#include "rt/message.h"
#include "util/status.h"

namespace grape {

/// Apps that additionally ship frontier-parallel phase implementations
/// (GBBS/Ligra-style vertex maps over core/parallel.h). The sequential
/// PEval/IncEval stay mandatory — they are the differential oracle — and
/// the parallel variants MUST be bit-identical to them: same final store,
/// same dirty set, same GlobalValue, at every thread count. Selected at
/// run time by EngineOptions::compute_threads via
/// WorkerCore::EnableParallel.
template <typename App>
concept FrontierParallelApp =
    requires(App& app, const typename App::QueryType& query,
             const Fragment& frag,
             ParamStore<typename App::ValueType>& params,
             const std::vector<LocalId>& updated,
             const ParallelContext& par) {
      { app.ParallelPEval(query, frag, params, par) } -> std::same_as<void>;
      {
        app.ParallelIncEval(query, frag, params, updated, par)
      } -> std::same_as<void>;
    };

/// Apps that carry private cross-superstep state beyond the ParamStore
/// (e.g. PageRank's rank vector and residual) expose it to the checkpoint
/// path through these hooks. Stateless apps (SSSP, CC, BFS) need nothing —
/// their entire resumable state is the parameter store, which WorkerCore
/// checkpoints unconditionally.
template <typename App>
concept CheckpointableApp = requires(const App& capp, App& app, Encoder& enc,
                                     Decoder& dec) {
  { capp.EncodeState(enc) } -> std::same_as<void>;
  { app.DecodeState(dec) } -> std::same_as<Status>;
};

/// One buffer a worker wants shipped after a flush. dst_rank is a
/// transport rank: kCoordinatorRank for owner-bound updates (the payload
/// then starts with the destination fragment id, exactly what
/// CoordinatorRoute decodes), or the destination worker's rank for
/// owner-to-mirror refreshes (direct_updates > 0, payload is a bare
/// record block).
struct WorkerSend {
  uint32_t dst_rank = 0;
  uint64_t direct_updates = 0;  // 0 for coordinator-bound buffers
  std::vector<uint8_t> payload;
};

/// The per-fragment half of the GRAPE engine (Sec. 2.2): one worker P_i's
/// update-parameter store, its PEval/IncEval invocations, message
/// application, and the flush that turns changed parameters into staged
/// record blocks. Extracted from GrapeEngine so the exact same code runs
/// in BOTH execution modes — inline in the rank-0 engine process (local
/// compute) and inside a remote worker host in the rank's endpoint
/// process (remote compute). Observable behaviour (payload bytes, send
/// order, merge order, update sets) must not depend on where it runs;
/// tests/message_path_golden_test.cc freezes that equivalence.
template <PIEProgram App>
class WorkerCore {
 public:
  using Query = typename App::QueryType;
  using Value = typename App::ValueType;
  using Agg = typename App::AggregatorType;
  using Partial = typename App::PartialType;

  WorkerCore(const Fragment& frag, App app)
      : frag_(&frag), app_(std::move(app)) {
    staging_.resize(frag.num_fragments());
  }

  /// (Re)initializes the store for a fresh run.
  void Reset(bool track_monotonicity) {
    store_.Init(frag_->num_local(), app_.InitValue());
    updated_.clear();
    track_mono_ = track_monotonicity;
    if (track_mono_) {
      prev_flushed_.assign(frag_->num_local(), app_.InitValue());
    }
    mono_violations_ = 0;
    flush_dirty_ = 0;
  }

  /// Opts this core into frontier-parallel phase execution (apps without
  /// the parallel methods silently keep their sequential path). `pool` is
  /// borrowed and must outlive the core; `threads` is the chunking factor
  /// — parallel flush staging and the app's vertex maps split work
  /// `threads` ways regardless of the pool's actual size.
  void EnableParallel(ThreadPool* pool, uint32_t threads) {
    par_.Enable(pool, threads);
  }

  void PEval(const Query& query) {
    if constexpr (FrontierParallelApp<App>) {
      if (par_.enabled()) {
        app_.ParallelPEval(query, *frag_, store_, par_);
        return;
      }
    }
    app_.PEval(query, *frag_, store_);
  }

  /// Clears M_i before a round's message application.
  void BeginApply() { updated_.clear(); }

  /// Applies one routed record block (a coordinator consolidated batch or
  /// a peer's direct mirror refresh) via the aggregate function; vertices
  /// whose value actually changed extend M_i.
  Status ApplyBatch(const std::vector<uint8_t>& payload) {
    Decoder dec(payload);
    // Messages carry destination-local ids straight off the routing
    // plan, so application is a direct array index — no gid hash.
    GRAPE_RETURN_NOT_OK(DecodeRecordBlock(dec, &apply_lids_, &apply_values_));
    for (size_t k = 0; k < apply_lids_.size(); ++k) {
      const LocalId lid = apply_lids_[k];
      if (lid >= static_cast<LocalId>(store_.size())) {
        return Status::Internal("routed update addresses lid " +
                                std::to_string(lid) + " outside fragment " +
                                std::to_string(frag_->fid()));
      }
      // No dirty-marking here: message application is not a local change
      // to re-broadcast; only IncEval's own writes are.
      if (Agg::Aggregate(store_.UntrackedRef(lid), apply_values_[k])) {
        updated_.push_back(lid);
      }
    }
    return Status::OK();
  }

  /// Sorts and dedups M_i (multiple batches can touch a vertex).
  void FinishApply() {
    std::sort(updated_.begin(), updated_.end());
    updated_.erase(std::unique(updated_.begin(), updated_.end()),
                   updated_.end());
  }

  /// Seeds M_i directly (the warm-start path: after a mutation batch, the
  /// touched vertices ARE the initial update set — no messages involved).
  void SeedUpdated(const std::vector<LocalId>& lids) {
    updated_.insert(updated_.end(), lids.begin(), lids.end());
    FinishApply();
  }

  /// Re-baselines monotonicity tracking on the current store values. After
  /// a fragment rebuild migrates a converged store into this core, the old
  /// baseline (InitValue everywhere) would make the first incremental
  /// flush look like a fresh descent; the warm values are the new floor.
  void SyncMonotonicityBaseline() {
    if (track_mono_) {
      prev_flushed_.assign(store_.values().begin(), store_.values().end());
    }
  }

  /// Runs IncEval on the current M_i. `incremental == false` is the
  /// ablation: pretend everything changed, forcing IncEval to re-evaluate
  /// the entire fragment (bench_inceval_bounded's "no IncEval" mode).
  void IncEval(const Query& query, bool incremental) {
    if (!incremental) {
      updated_.clear();
      for (LocalId v = 0; v < frag_->num_inner(); ++v) {
        updated_.push_back(v);
      }
    }
    if constexpr (FrontierParallelApp<App>) {
      if (par_.enabled()) {
        app_.ParallelIncEval(query, *frag_, store_, updated_, par_);
        return;
      }
    }
    app_.IncEval(query, *frag_, store_, updated_);
  }

  /// Extracts changed in-scope parameters, stages them into one reusable
  /// (dst_lid, value) block per destination fragment — addressed by the
  /// routing plan precomputed at FragmentBuilder time, so the hot path
  /// never hashes a gid — and appends the encoded buffers to `out`.
  /// Mirror refreshes have a single writer (the owner), so they need no
  /// conflict resolution and travel directly worker-to-worker;
  /// owner-bound values carry potential conflicts and go through the
  /// coordinator's aggregate function.
  void Flush(BufferPool& pool, std::vector<WorkerSend>* out) {
    const Fragment& frag = *frag_;
    std::vector<LocalId>& changed = changed_scratch_;
    store_.TakeChangedInto(&changed);
    std::vector<std::pair<VertexId, Value>> remote = store_.TakeRemote();
    flush_dirty_ = changed.size() + remote.size();
    if (changed.empty() && remote.empty()) return;

    std::vector<RecordBlock<Value>>& staging = staging_;
    std::vector<FragmentId>& dsts = staged_dsts_;
    auto stage = [&staging, &dsts](FragmentId dst, LocalId dst_lid,
                                   const Value& value) {
      RecordBlock<Value>& block = staging[dst];
      if (block.empty()) dsts.push_back(dst);
      block.Append(dst_lid, value);
    };

    std::vector<LocalId>& reset_list = reset_scratch_;
    if (par_.enabled()) {
      StageChangedParallel(changed, &reset_list);
    } else {
      for (LocalId lid : changed) {
        StageChangedVertex(lid, stage, &reset_list, &mono_violations_);
      }
    }
    for (const auto& [gid, value] : remote) {
      stage(frag.OwnerOf(gid), frag.LidAtOwner(gid), value);
    }

    // Deterministic destination order.
    std::sort(dsts.begin(), dsts.end());

    const bool direct = App::kScope == MessageScope::kToMirrors;
    for (FragmentId dst : dsts) {
      RecordBlock<Value>& block = staging[dst];
      Encoder enc(pool.Acquire());
      if (!direct) enc.WriteU32(dst);
      EncodeRecordBlock(enc, block);
      out->push_back(WorkerSend{direct ? dst + 1 : kCoordinatorRank,
                                direct ? block.size() : 0, enc.TakeBuffer()});
      block.clear();
    }
    dsts.clear();
    for (LocalId lid : reset_list) {
      store_.UntrackedRef(lid) = app_.InitValue();
    }
    reset_list.clear();
    store_.RecycleRemote(std::move(remote));
  }

  Partial GetPartial(const Query& query) const {
    return app_.GetPartial(query, *frag_, store_);
  }

  double GlobalValue() const { return app_.GlobalValue(); }
  bool ShouldTerminate(uint32_t round, double global) const {
    return app_.ShouldTerminate(round, global);
  }

  /// Serializes the cross-superstep state a recovered worker resumes
  /// with: the full parameter store, monotonicity tracking, and any
  /// private app state. Only valid at a superstep barrier (post-flush,
  /// pre-apply), where the store's dirty set and remote queue are empty
  /// and M_i is dead (the next BeginApply clears it) — so neither is
  /// captured, and restore leaves them empty.
  void EncodeCheckpoint(Encoder& enc) const {
    enc.WriteVarint(store_.values().size());
    for (const Value& v : store_.values()) EncodeValue(enc, v);
    enc.WriteBool(track_mono_);
    enc.WriteVarint(prev_flushed_.size());
    for (const Value& v : prev_flushed_) EncodeValue(enc, v);
    enc.WriteU64(mono_violations_);
    enc.WriteU64(flush_dirty_);
    if constexpr (CheckpointableApp<App>) app_.EncodeState(enc);
  }

  /// Inverse of EncodeCheckpoint over a freshly constructed core for the
  /// same fragment. All-or-nothing: any decode failure leaves the caller
  /// free to discard the core, never a half-restored store.
  Status RestoreCheckpoint(Decoder& dec) {
    uint64_t n = 0;
    GRAPE_RETURN_NOT_OK(dec.ReadVarint(&n));
    if (n != static_cast<uint64_t>(frag_->num_local())) {
      return Status::Corruption("checkpoint store size " + std::to_string(n) +
                                " != fragment num_local " +
                                std::to_string(frag_->num_local()));
    }
    store_.Init(frag_->num_local(), app_.InitValue());
    for (LocalId lid = 0; lid < static_cast<LocalId>(n); ++lid) {
      GRAPE_RETURN_NOT_OK(DecodeValue(dec, &store_.UntrackedRef(lid)));
    }
    updated_.clear();
    GRAPE_RETURN_NOT_OK(dec.ReadBool(&track_mono_));
    uint64_t prev_n = 0;
    GRAPE_RETURN_NOT_OK(dec.ReadVarint(&prev_n));
    if (prev_n != 0 && prev_n != static_cast<uint64_t>(frag_->num_local())) {
      return Status::Corruption("checkpoint prev-flush size mismatch");
    }
    prev_flushed_.resize(prev_n);
    for (uint64_t k = 0; k < prev_n; ++k) {
      GRAPE_RETURN_NOT_OK(DecodeValue(dec, &prev_flushed_[k]));
    }
    GRAPE_RETURN_NOT_OK(dec.ReadU64(&mono_violations_));
    GRAPE_RETURN_NOT_OK(dec.ReadU64(&flush_dirty_));
    if constexpr (CheckpointableApp<App>) {
      GRAPE_RETURN_NOT_OK(app_.DecodeState(dec));
    }
    return Status::OK();
  }

  /// Parameters changed by the last flush (this worker's share of the
  /// engine's TotalDirty termination term).
  uint64_t flush_dirty() const { return flush_dirty_; }
  uint64_t monotonicity_violations() const { return mono_violations_; }

  const Fragment& fragment() const { return *frag_; }
  App& app() { return app_; }
  const App& app() const { return app_; }
  ParamStore<Value>& store() { return store_; }
  const ParamStore<Value>& store() const { return store_; }
  std::vector<LocalId>& updated() { return updated_; }
  const std::vector<LocalId>& updated() const { return updated_; }

 private:
  /// Stages one changed lid's outgoing records through `stage` and applies
  /// reset/monotonicity bookkeeping. `reset_list` and `mono` are the
  /// caller's (possibly per-chunk) accumulators; store_ values and
  /// prev_flushed_[lid] are only ever touched for this lid, so concurrent
  /// calls on distinct lids need no further synchronization.
  template <typename StageFn>
  void StageChangedVertex(LocalId lid, const StageFn& stage,
                          std::vector<LocalId>* reset_list, uint64_t* mono) {
    const Fragment& frag = *frag_;
    const bool to_owner =
        App::kScope != MessageScope::kToMirrors && frag.IsOuter(lid);
    const bool to_mirrors =
        App::kScope != MessageScope::kToOwner && frag.IsBorder(lid);
    if (to_owner) {
      stage(frag.OuterOwner(lid), frag.OuterOwnerLid(lid), store_.Get(lid));
      if (App::kResetAfterFlush) reset_list->push_back(lid);
    }
    if (to_mirrors) {
      auto mirror_frags = frag.MirrorFragments(lid);
      auto mirror_lids = frag.MirrorDstLids(lid);
      for (size_t k = 0; k < mirror_frags.size(); ++k) {
        stage(mirror_frags[k], mirror_lids[k], store_.Get(lid));
      }
    }
    if (track_mono_ && Agg::kMonotonic && (to_owner || to_mirrors)) {
      if (!Agg::InOrder(store_.Get(lid), prev_flushed_[lid])) {
        (*mono)++;
      }
      prev_flushed_[lid] = store_.Get(lid);
    }
  }

  /// Frontier-parallel staging: contiguous chunks of the (ascending)
  /// changed list stage into per-chunk buffers, merged back in chunk-index
  /// order. Chunk c's lids all precede chunk c+1's, so concatenating the
  /// per-chunk blocks per destination reproduces the sequential record
  /// order — and therefore the payload bytes — exactly, at any thread
  /// count.
  void StageChangedParallel(const std::vector<LocalId>& changed,
                            std::vector<LocalId>* reset_list) {
    const size_t lanes = par_.num_threads();
    if (par_staging_.size() < lanes) {
      par_staging_.resize(lanes);
      par_dsts_.resize(lanes);
      par_reset_.resize(lanes);
      par_mono_.resize(lanes, 0);
      for (auto& lane : par_staging_) lane.resize(frag_->num_fragments());
    }
    par_.ForChunks(changed.size(), [&](size_t c, size_t lo, size_t hi) {
      std::vector<RecordBlock<Value>>& lane = par_staging_[c];
      std::vector<FragmentId>& lane_dsts = par_dsts_[c];
      auto lane_stage = [&lane, &lane_dsts](FragmentId dst, LocalId dst_lid,
                                            const Value& value) {
        RecordBlock<Value>& block = lane[dst];
        if (block.empty()) lane_dsts.push_back(dst);
        block.Append(dst_lid, value);
      };
      for (size_t k = lo; k < hi; ++k) {
        StageChangedVertex(changed[k], lane_stage, &par_reset_[c],
                           &par_mono_[c]);
      }
    });
    for (size_t c = 0; c < lanes; ++c) {
      for (FragmentId dst : par_dsts_[c]) {
        RecordBlock<Value>& src = par_staging_[c][dst];
        RecordBlock<Value>& block = staging_[dst];
        if (block.empty()) staged_dsts_.push_back(dst);
        block.lids.insert(block.lids.end(), src.lids.begin(), src.lids.end());
        block.values.insert(block.values.end(), src.values.begin(),
                            src.values.end());
        src.clear();
      }
      par_dsts_[c].clear();
      reset_list->insert(reset_list->end(), par_reset_[c].begin(),
                         par_reset_[c].end());
      par_reset_[c].clear();
      mono_violations_ += par_mono_[c];
      par_mono_[c] = 0;
    }
  }

  const Fragment* frag_;
  App app_;
  ParamStore<Value> store_;     // x̄_i
  std::vector<LocalId> updated_;  // M_i

  bool track_mono_ = false;
  std::vector<Value> prev_flushed_;  // monotonicity tracking
  uint64_t mono_violations_ = 0;
  uint64_t flush_dirty_ = 0;

  // Dense message-path scratch, allocated once and reused every superstep.
  std::vector<LocalId> changed_scratch_;
  std::vector<LocalId> reset_scratch_;
  std::vector<RecordBlock<Value>> staging_;  // one block per destination
  std::vector<FragmentId> staged_dsts_;
  std::vector<uint32_t> apply_lids_;
  std::vector<Value> apply_values_;

  // Frontier-parallel execution (disabled unless EnableParallel ran):
  // per-chunk staging lanes merged in chunk order by StageChangedParallel.
  ParallelContext par_;
  std::vector<std::vector<RecordBlock<Value>>> par_staging_;
  std::vector<std::vector<FragmentId>> par_dsts_;
  std::vector<std::vector<LocalId>> par_reset_;
  std::vector<uint64_t> par_mono_;
};

/// Compile-time gate for remote execution: everything the engine must
/// ship to (query) or pull back from (partial) an endpoint process has to
/// be wire codable. Apps failing this still run locally; asking for
/// remote compute yields an InvalidArgument at run time.
template <typename App>
concept RemoteCompatibleApp =
    PIEProgram<App> && WireCodable<typename App::QueryType> &&
    WireCodable<typename App::PartialType> &&
    WireCodable<typename App::ValueType>;

}  // namespace grape

#endif  // GRAPE_CORE_WORKER_CORE_H_
