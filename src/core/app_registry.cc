#include "core/app_registry.h"

#include "util/string_util.h"

namespace grape {

AppRegistry& AppRegistry::Global() {
  // Function-local static reference: safe under the static-initialization
  // rules (never destroyed, constructed on first use).
  static AppRegistry& registry = *new AppRegistry();
  return registry;
}

void AppRegistry::Register(RegisteredApp app) {
  apps_[app.name] = std::move(app);
}

Result<RegisteredApp> AppRegistry::Get(const std::string& name) const {
  auto it = apps_.find(name);
  if (it == apps_.end()) {
    return Status::NotFound("no PIE program registered under '" + name + "'");
  }
  return it->second;
}

std::vector<std::string> AppRegistry::Names() const {
  std::vector<std::string> names;
  names.reserve(apps_.size());
  for (const auto& [name, app] : apps_) names.push_back(name);
  return names;
}

QueryArgs ParseQueryArgs(const std::vector<std::string>& kvs) {
  QueryArgs args;
  for (const std::string& kv : kvs) {
    size_t eq = kv.find('=');
    if (eq == std::string::npos) {
      args[kv] = "true";
    } else {
      args[kv.substr(0, eq)] = kv.substr(eq + 1);
    }
  }
  return args;
}

}  // namespace grape
