#ifndef GRAPE_CORE_APP_REGISTRY_H_
#define GRAPE_CORE_APP_REGISTRY_H_

#include <functional>
#include <map>
#include <string>
#include <vector>

#include "core/engine.h"
#include "partition/fragment.h"
#include "util/result.h"

namespace grape {

/// Free-form query arguments ("source=3", "pattern=triangle", ...), the
/// string form a demo user would type into the play panel.
using QueryArgs = std::map<std::string, std::string>;

/// A PIE program registered in the GRAPE library (the demo's plug panel).
/// `run` executes the program end to end and returns a printable summary;
/// engine metrics are written to *metrics when non-null.
struct RegisteredApp {
  std::string name;
  std::string description;
  std::function<Result<std::string>(const FragmentedGraph&, const QueryArgs&,
                                    const EngineOptions&,
                                    EngineMetrics* metrics)>
      run;
  /// Runs on fragments built in place by DistributedLoad (rank 0 holds
  /// only `meta`; compute is remote by construction). Null for apps whose
  /// types are not wire-codable — those cannot leave the engine process.
  std::function<Result<std::string>(const DistributedGraphMeta&,
                                    const QueryArgs&, const EngineOptions&,
                                    EngineMetrics* metrics)>
      run_distributed;
};

/// Process-wide registry keyed by query-class name ("sssp", "cc", "sim",
/// "subiso", "keyword", "cf", ...). Developers plug programs in; end users
/// pick one by name and play it on a fragmented graph.
class AppRegistry {
 public:
  static AppRegistry& Global();

  /// Registers (or replaces) a PIE program.
  void Register(RegisteredApp app);

  Result<RegisteredApp> Get(const std::string& name) const;
  std::vector<std::string> Names() const;

 private:
  std::map<std::string, RegisteredApp> apps_;
};

/// Parses "k=v" strings into QueryArgs.
QueryArgs ParseQueryArgs(const std::vector<std::string>& kvs);

}  // namespace grape

#endif  // GRAPE_CORE_APP_REGISTRY_H_
