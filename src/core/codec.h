#ifndef GRAPE_CORE_CODEC_H_
#define GRAPE_CORE_CODEC_H_

#include <string>
#include <type_traits>
#include <utility>
#include <vector>

#include "util/serializer.h"
#include "util/status.h"

namespace grape {

/// Serialization of update-parameter values. Arithmetic types, enums, pairs,
/// strings and vectors work out of the box; app-specific structs opt in by
/// providing members
///   void EncodeTo(Encoder&) const;
///   static Status DecodeFrom(Decoder&, T*);
template <typename T>
concept SelfCodable = requires(const T ct, T t, Encoder& enc, Decoder& dec) {
  { ct.EncodeTo(enc) };
  { T::DecodeFrom(dec, &t) } -> std::same_as<Status>;
};

namespace codec_internal {

template <typename T>
struct IsVector : std::false_type {};
template <typename T>
struct IsVector<std::vector<T>> : std::true_type {};

template <typename T>
struct IsPair : std::false_type {};
template <typename A, typename B>
struct IsPair<std::pair<A, B>> : std::true_type {};

}  // namespace codec_internal

template <typename T>
void EncodeValue(Encoder& enc, const T& value) {
  if constexpr (SelfCodable<T>) {
    value.EncodeTo(enc);
  } else if constexpr (std::is_arithmetic_v<T> || std::is_enum_v<T>) {
    enc.WritePod(value);
  } else if constexpr (codec_internal::IsVector<T>::value) {
    enc.WriteVarint(value.size());
    for (const auto& e : value) EncodeValue(enc, e);
  } else if constexpr (codec_internal::IsPair<T>::value) {
    EncodeValue(enc, value.first);
    EncodeValue(enc, value.second);
  } else if constexpr (std::is_same_v<T, std::string>) {
    enc.WriteString(value);
  } else {
    static_assert(SelfCodable<T>,
                  "type lacks EncodeTo/DecodeFrom and no built-in codec");
  }
}

template <typename T>
Status DecodeValue(Decoder& dec, T* out) {
  if constexpr (SelfCodable<T>) {
    return T::DecodeFrom(dec, out);
  } else if constexpr (std::is_arithmetic_v<T> || std::is_enum_v<T>) {
    return dec.ReadPod(out);
  } else if constexpr (codec_internal::IsVector<T>::value) {
    uint64_t n = 0;
    GRAPE_RETURN_NOT_OK(dec.ReadVarint(&n));
    out->clear();
    out->reserve(n);
    for (uint64_t i = 0; i < n; ++i) {
      typename T::value_type e{};
      GRAPE_RETURN_NOT_OK(DecodeValue(dec, &e));
      out->push_back(std::move(e));
    }
    return Status::OK();
  } else if constexpr (codec_internal::IsPair<T>::value) {
    GRAPE_RETURN_NOT_OK(DecodeValue(dec, &out->first));
    return DecodeValue(dec, &out->second);
  } else if constexpr (std::is_same_v<T, std::string>) {
    return dec.ReadString(out);
  } else {
    static_assert(SelfCodable<T>,
                  "type lacks EncodeTo/DecodeFrom and no built-in codec");
  }
}

}  // namespace grape

#endif  // GRAPE_CORE_CODEC_H_
