#ifndef GRAPE_CORE_CODEC_H_
#define GRAPE_CORE_CODEC_H_

#include <cstdint>
#include <string>
#include <type_traits>
#include <utility>
#include <vector>

#include "util/serializer.h"
#include "util/status.h"

namespace grape {

/// Serialization of update-parameter values. Arithmetic types, enums, pairs,
/// strings and vectors work out of the box; app-specific structs opt in by
/// providing members
///   void EncodeTo(Encoder&) const;
///   static Status DecodeFrom(Decoder&, T*);
template <typename T>
concept SelfCodable = requires(const T ct, T t, Encoder& enc, Decoder& dec) {
  { ct.EncodeTo(enc) };
  { T::DecodeFrom(dec, &t) } -> std::same_as<Status>;
};

namespace codec_internal {

template <typename T>
struct IsVector : std::false_type {};
template <typename T>
struct IsVector<std::vector<T>> : std::true_type {};

template <typename T>
struct IsPair : std::false_type {};
template <typename A, typename B>
struct IsPair<std::pair<A, B>> : std::true_type {};

}  // namespace codec_internal

template <typename T>
void EncodeValue(Encoder& enc, const T& value) {
  if constexpr (SelfCodable<T>) {
    value.EncodeTo(enc);
  } else if constexpr (std::is_arithmetic_v<T> || std::is_enum_v<T>) {
    enc.WritePod(value);
  } else if constexpr (codec_internal::IsVector<T>::value) {
    enc.WriteVarint(value.size());
    for (const auto& e : value) EncodeValue(enc, e);
  } else if constexpr (codec_internal::IsPair<T>::value) {
    EncodeValue(enc, value.first);
    EncodeValue(enc, value.second);
  } else if constexpr (std::is_same_v<T, std::string>) {
    enc.WriteString(value);
  } else {
    static_assert(SelfCodable<T>,
                  "type lacks EncodeTo/DecodeFrom and no built-in codec");
  }
}

namespace codec_internal {

template <typename T>
struct IsWireCodable
    : std::bool_constant<SelfCodable<T> || std::is_arithmetic_v<T> ||
                         std::is_enum_v<T> || std::is_same_v<T, std::string>> {
};
template <typename A, typename B>
struct IsWireCodable<std::pair<A, B>>
    : std::bool_constant<IsWireCodable<A>::value && IsWireCodable<B>::value> {
};
template <typename T>
struct IsWireCodable<std::vector<T>> : IsWireCodable<T> {};

}  // namespace codec_internal

/// True when EncodeValue/DecodeValue handle T — i.e. T can cross a process
/// boundary. A compile-time mirror of EncodeValue's dispatch (which
/// static_asserts instead of SFINAE-failing), so remote-compute support
/// can be gated per app: an app whose Query/Partial types are not wire
/// codable simply cannot be executed in an endpoint process.
template <typename T>
concept WireCodable = codec_internal::IsWireCodable<T>::value;

/// True when EncodeValue writes exactly the value's object representation
/// (sizeof(T) raw little-endian bytes, via WritePod) — i.e. when a block of
/// values can be shipped with one memcpy without changing a single wire
/// byte. SelfCodable types may use varints or skip fields, so they are
/// excluded even when trivially copyable.
template <typename T>
inline constexpr bool kHasPodWireFormat =
    !SelfCodable<T> && (std::is_arithmetic_v<T> || std::is_enum_v<T>);

template <typename T>
Status DecodeValue(Decoder& dec, T* out) {
  if constexpr (SelfCodable<T>) {
    return T::DecodeFrom(dec, out);
  } else if constexpr (std::is_arithmetic_v<T> || std::is_enum_v<T>) {
    return dec.ReadPod(out);
  } else if constexpr (codec_internal::IsVector<T>::value) {
    uint64_t n = 0;
    GRAPE_RETURN_NOT_OK(dec.ReadVarint(&n));
    out->clear();
    out->reserve(n);
    for (uint64_t i = 0; i < n; ++i) {
      typename T::value_type e{};
      GRAPE_RETURN_NOT_OK(DecodeValue(dec, &e));
      out->push_back(std::move(e));
    }
    return Status::OK();
  } else if constexpr (codec_internal::IsPair<T>::value) {
    GRAPE_RETURN_NOT_OK(DecodeValue(dec, &out->first));
    return DecodeValue(dec, &out->second);
  } else if constexpr (std::is_same_v<T, std::string>) {
    return dec.ReadString(out);
  } else {
    static_assert(SelfCodable<T>,
                  "type lacks EncodeTo/DecodeFrom and no built-in codec");
  }
}

// ---------------------------------------------------------------------------
// Frame header: the envelope that carries one message payload across a
// process boundary (the socket transport's length-prefixed frames). Exactly
// 16 bytes on the wire — four little-endian u32 fields: from, to, tag,
// payload length — matching the 16-byte envelope CommStats has always
// charged per message, so socket wire bytes equal the counted bytes.
// ---------------------------------------------------------------------------

struct FrameHeader {
  uint32_t from = 0;
  uint32_t to = 0;
  uint32_t tag = 0;
  uint32_t payload_len = 0;
};

inline constexpr size_t kFrameHeaderBytes = 16;

/// Hard ceiling on a single frame's payload. Real batches are far smaller;
/// the bound exists so a corrupt length field surfaces as a Status instead
/// of a gigantic allocation in the receiver.
inline constexpr uint32_t kMaxFramePayloadBytes = 1u << 30;

/// Serializes `h` into exactly kFrameHeaderBytes at `out`.
inline void EncodeFrameHeader(const FrameHeader& h,
                              uint8_t out[kFrameHeaderBytes]) {
  auto put = [&out](size_t at, uint32_t v) {
    out[at + 0] = static_cast<uint8_t>(v);
    out[at + 1] = static_cast<uint8_t>(v >> 8);
    out[at + 2] = static_cast<uint8_t>(v >> 16);
    out[at + 3] = static_cast<uint8_t>(v >> 24);
  };
  put(0, h.from);
  put(4, h.to);
  put(8, h.tag);
  put(12, h.payload_len);
}

/// Parses a header from `data` (which must hold at least `n` bytes),
/// validating length and payload bound.
inline Status DecodeFrameHeader(const uint8_t* data, size_t n,
                                FrameHeader* out) {
  if (n < kFrameHeaderBytes) {
    return Status::Corruption("frame header truncated");
  }
  auto get = [data](size_t at) {
    return static_cast<uint32_t>(data[at]) |
           static_cast<uint32_t>(data[at + 1]) << 8 |
           static_cast<uint32_t>(data[at + 2]) << 16 |
           static_cast<uint32_t>(data[at + 3]) << 24;
  };
  out->from = get(0);
  out->to = get(4);
  out->tag = get(8);
  out->payload_len = get(12);
  if (out->payload_len > kMaxFramePayloadBytes) {
    return Status::Corruption("frame payload length " +
                              std::to_string(out->payload_len) +
                              " exceeds the frame bound");
  }
  return Status::OK();
}

// ---------------------------------------------------------------------------
// Record-block batch codec: the engine's message unit is a run of
// (dst_lid, value) records for one destination fragment. Values with a POD
// wire format are staged by value in structure-of-arrays form and encoded as
// two memcpy blocks (all lids, then all values); other values are staged by
// pointer and encoded per record through EncodeValue. Both layouts write
// exactly varint(count) + count * (4 + wire_size(value)) bytes, i.e. the
// same byte count as the seed's interleaved (gid, value) format, which keeps
// the CommStats byte counters comparable across the refactor.
// ---------------------------------------------------------------------------

/// Outgoing staging buffer for one destination fragment. Reused across
/// supersteps: clear() keeps capacity, so the steady state appends into
/// already-allocated storage.
template <typename V>
struct RecordBlock {
  static constexpr bool kPod = kHasPodWireFormat<V>;
  using Slot = std::conditional_t<kPod, V, const V*>;

  std::vector<uint32_t> lids;
  std::vector<Slot> values;

  size_t size() const { return lids.size(); }
  bool empty() const { return lids.empty(); }
  void clear() {
    lids.clear();
    values.clear();
  }
  void Append(uint32_t dst_lid, const V& value) {
    lids.push_back(dst_lid);
    if constexpr (kPod) {
      values.push_back(value);
    } else {
      values.push_back(&value);
    }
  }
};

template <typename V>
void EncodeRecordBlock(Encoder& enc, const RecordBlock<V>& block) {
  enc.WriteVarint(block.size());
  if constexpr (RecordBlock<V>::kPod) {
    enc.WritePodSpan(block.lids.data(), block.lids.size());
    enc.WritePodSpan(block.values.data(), block.values.size());
  } else {
    for (size_t k = 0; k < block.size(); ++k) {
      enc.WriteU32(block.lids[k]);
      EncodeValue(enc, *block.values[k]);
    }
  }
}

/// Same wire format, but over owned values (the coordinator's aggregated
/// batches own their merged values rather than pointing into a store).
template <typename V>
void EncodeOwnedRecords(Encoder& enc, const std::vector<uint32_t>& lids,
                        const std::vector<V>& values) {
  enc.WriteVarint(lids.size());
  if constexpr (kHasPodWireFormat<V>) {
    enc.WritePodSpan(lids.data(), lids.size());
    enc.WritePodSpan(values.data(), values.size());
  } else {
    for (size_t k = 0; k < lids.size(); ++k) {
      enc.WriteU32(lids[k]);
      EncodeValue(enc, values[k]);
    }
  }
}

/// Decodes one record block into reusable scratch vectors (resized, not
/// reallocated once capacities stabilize). Always produces owned values.
template <typename V>
Status DecodeRecordBlock(Decoder& dec, std::vector<uint32_t>* lids,
                         std::vector<V>* values) {
  uint64_t count = 0;
  GRAPE_RETURN_NOT_OK(dec.ReadVarint(&count));
  if constexpr (kHasPodWireFormat<V>) {
    if (count > dec.Remaining() / (sizeof(uint32_t) + sizeof(V))) {
      return Status::Corruption("record block extends past end of buffer");
    }
    lids->resize(count);
    values->resize(count);
    GRAPE_RETURN_NOT_OK(dec.ReadPodSpan(lids->data(), count));
    return dec.ReadPodSpan(values->data(), count);
  } else {
    // Every record carries at least its 4-byte lid, so a count beyond
    // Remaining()/4 is corrupt; check before reserve() can throw.
    if (count > dec.Remaining() / sizeof(uint32_t)) {
      return Status::Corruption("record block extends past end of buffer");
    }
    lids->clear();
    values->clear();
    lids->reserve(count);
    values->reserve(count);
    for (uint64_t k = 0; k < count; ++k) {
      uint32_t lid = 0;
      V value{};
      GRAPE_RETURN_NOT_OK(dec.ReadU32(&lid));
      GRAPE_RETURN_NOT_OK(DecodeValue(dec, &value));
      lids->push_back(lid);
      values->push_back(std::move(value));
    }
    return Status::OK();
  }
}

}  // namespace grape

#endif  // GRAPE_CORE_CODEC_H_
