#ifndef GRAPE_CORE_ENGINE_H_
#define GRAPE_CORE_ENGINE_H_

#include <sys/wait.h>

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <functional>
#include <memory>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "core/codec.h"
#include "core/pie.h"
#include "graph/mutation.h"
#include "core/worker_core.h"
#include "rt/checkpoint.h"
#include "rt/comm_world.h"
#include "rt/distributed_load.h"
#include "rt/liveness.h"
#include "rt/remote_worker.h"
#include "rt/transport.h"
#include "rt/worker_protocol.h"
#include "util/logging.h"
#include "util/thread_pool.h"
#include "util/timer.h"

namespace grape {

/// Fault-tolerance policy for remote compute. Off by default (every_k ==
/// 0), in which case the engine behaves — and counts — exactly as it did
/// without this subsystem: no control frames beyond the existing protocol,
/// no pings, no retries. When enabled, the remote superstep loop
/// checkpoints every k supersteps, monitors worker liveness (leases +
/// pid probes, rt/liveness.h), and on an Unavailable failure rebuilds the
/// world in place (Transport::Recover) and resumes from the last completed
/// checkpoint — bit-identically, because each worker image carries the
/// exact buffered message frontier alongside its state.
struct CheckpointPolicy {
  /// Checkpoint every k supersteps; 0 disables checkpointing AND recovery.
  uint32_t every_k = 0;
  /// Empty: worker images ship inline to rank 0's memory (lost if rank 0
  /// dies — out of scope, see README). Non-empty: each worker persists its
  /// image under this directory via CheckpointStore's tmp+rename files,
  /// and restores read them back locally.
  std::string dir;
  /// Give up after this many world rebuilds within one Run.
  uint32_t max_recoveries = 3;
  /// Quiet time before the coordinator pings a worker (rt/liveness.h).
  /// Keep well above a superstep's compute time; pings only fire while an
  /// await loop is idle, so a busy worker is never flooded.
  uint32_t lease_ms = 1000;

  bool enabled() const { return every_k > 0; }
};

/// Polling cadence shared by every remote await loop — the engine's
/// coordinator side and the in-thread worker hosts: poll at
/// `poll_interval_us` for `idle_spins` empty polls, then back off to
/// `idle_poll_interval_us` until the next frame resets the spin budget.
/// Hoisted into one knob set (previously scattered hard-coded constants)
/// so deadlines and poll rates are tuned — and tested — in one place.
struct EngineTimingOptions {
  uint32_t poll_interval_us = 50;
  uint32_t idle_spins = 40;
  uint32_t idle_poll_interval_us = 1000;
};

/// Engine configuration (the demo's "play panel" knobs).
struct EngineOptions {
  /// Worker threads; 0 means one per fragment.
  uint32_t num_threads = 0;
  /// Intra-fragment frontier parallelism (opt-in, ROADMAP item 2): when
  /// > 1, apps implementing the FrontierParallelApp concept run their
  /// ParallelPEval/ParallelIncEval with this many lanes, and WorkerCore
  /// stages its flush in parallel. 0 and 1 keep the historical sequential
  /// path byte-for-byte. Results, message payloads, CommStats, and
  /// superstep counts are bit-identical to sequential at every value —
  /// frozen by tests/parallel_compute_test.cc. Plumbed to remote worker
  /// hosts through the kTagWkLoad/kTagWkRestore frames, so placement does
  /// not change the contract. Apps without the parallel methods silently
  /// run sequentially.
  uint32_t compute_threads = 0;
  /// Hard stop against non-terminating (non-monotonic, mis-specified) apps.
  uint32_t max_supersteps = 1000000;
  /// When false, every round re-evaluates from *all* inner vertices instead
  /// of only the message-affected ones — the "no IncEval" ablation used by
  /// bench_inceval_bounded to demonstrate boundedness (Sec. 2.2(2)).
  bool incremental = true;
  /// Track the partial order of monotonic aggregators and count violations
  /// (the Assurance Theorem's side condition).
  bool check_monotonicity = false;
  bool verbose = false;
  /// Message-passing substrate. When null the engine owns a private
  /// in-process CommWorld (the historical behaviour); otherwise it runs
  /// over the supplied backend — a SocketTransport from
  /// MakeTransport("socket", n+1), a TcpTransport from
  /// MakeTransport("tcp", n+1) (auto-spawned loopback endpoints), or a
  /// multi-machine tcp world from rt/cluster.h's MakeClusterTransport —
  /// which must be sized num_fragments()+1 and outlive the engine. Not
  /// owned. The engine is substrate-agnostic: it only ever Sends, Flushes
  /// between supersteps, and drains mailboxes, so any backend passing
  /// tests/transport_conformance_test.cc slots in with bit-identical
  /// results (tests/message_path_golden_test.cc).
  Transport* transport = nullptr;
  /// Remote compute: when non-empty, PEval/IncEval/GetPartial do NOT run
  /// inline in this (rank-0) process. Each fragment is serialized and
  /// shipped to its rank's worker host — the endpoint process on
  /// socket/tcp backends, an in-process worker thread on inproc — which
  /// executes the phases against its own store and ships back messages,
  /// per-phase counters, and a final remote partial (rt/worker_protocol.h).
  /// The value names the PIE program in WorkerAppRegistry ("sssp", ...);
  /// endpoint processes must have registered it before the transport
  /// forked them (apps/register_apps.h RegisterBuiltinWorkerApps).
  /// Results, CommStats, and superstep counts are bit-identical to local
  /// compute — frozen by tests/message_path_golden_test.cc.
  std::string remote_app;
  /// Per-phase budget for remote workers to answer before the engine
  /// gives up with Unavailable (a dead endpoint usually surfaces faster
  /// through the transport's health tracking).
  int remote_timeout_ms = 120000;
  /// How the graph reached the workers — drivers resolve their --load
  /// flag here. "coordinator": rank 0 loaded and partitioned the whole
  /// graph and constructs the engine from a FragmentedGraph (the
  /// historical path). "distributed": the graph was built in place by
  /// rt/distributed_load.h — each worker assembled its own fragment from
  /// its shard of the input — and the engine is constructed from the
  /// DistributedGraphMeta, never holding a fragment; requires remote_app
  /// and an endpoint-backed transport sharing the build's world.
  std::string load_mode = "coordinator";
  /// Query sessions (SessionRun) on a coordinator-loaded engine only:
  /// when non-zero, the session's first load ships each fragment together
  /// with this token and the worker deposits it in its process-local
  /// ResidentFragmentStore (kWkLoadStashResident) before loading from the
  /// deposited copy. Other engines — grape_serve's other query classes —
  /// can then attach to the very same resident fragments by constructing
  /// from a DistributedGraphMeta carrying this token, without the graph
  /// ever being serialized again. Ignored by Run() and by
  /// distributed-load engines (whose fragments are already resident).
  uint64_t resident_stash_token = 0;
  /// Superstep checkpointing + automatic recovery (remote compute only;
  /// drivers resolve --ckpt-every / --ckpt-dir here).
  CheckpointPolicy checkpoint;
  /// Await-loop poll cadence, also handed to in-thread worker hosts.
  EngineTimingOptions timing;
  /// Observability/test hook: invoked after each remote superstep's round
  /// is recorded (and after its checkpoint, when one was due) with the
  /// completed superstep count. Fault-injection tests use it to kill
  /// endpoints at exact barriers.
  std::function<void(uint32_t)> on_superstep;
};

/// Per-superstep observability (drives the Fig. 3(4)-style analytics).
struct RoundMetrics {
  uint32_t round = 0;
  double seconds = 0;
  uint64_t messages = 0;
  uint64_t bytes = 0;
  /// Update parameters whose values changed in this round's messages.
  uint64_t updated_params = 0;
  double global = 0;
};

struct EngineMetrics {
  uint32_t supersteps = 0;
  /// Remote runs only: time from the first kTagWkLoad frame until every
  /// worker acked its load — fragment ship (coordinator-loaded) or
  /// resident-token attach (distributed-loaded). Zero on local compute,
  /// where fragments are resident from engine construction.
  double load_seconds = 0;
  double peval_seconds = 0;
  double inceval_seconds = 0;
  double coordinator_seconds = 0;
  double assemble_seconds = 0;
  double total_seconds = 0;
  uint64_t messages = 0;
  uint64_t bytes = 0;
  uint64_t monotonicity_violations = 0;
  /// Set when RunIncremental's enforced monotonicity contract rejected the
  /// warm start (non-monotonic aggregator, or a batch with deletions under
  /// a min-style order) and the answer came from a full re-run instead.
  /// The answer is always correct; this records that it was not bounded.
  bool incremental_fallback = false;
  std::vector<RoundMetrics> rounds;

  /// Remote-compute observability (empty after a local-compute run): the
  /// OS process id each worker's phases executed in, and how many
  /// PEval/IncEval invocations each worker acknowledged. The pids are the
  /// proof of placement — on socket/tcp backends they are endpoint
  /// processes, not the engine's pid (asserted by tests/cluster_test.cc).
  std::vector<uint64_t> remote_worker_pids;
  std::vector<uint32_t> remote_peval_runs;
  std::vector<uint32_t> remote_inceval_runs;

  /// Fault tolerance (all zero when CheckpointPolicy is off): completed
  /// checkpoint barriers, total encoded image bytes, wall time spent at
  /// those barriers, and world rebuilds this run survived.
  uint32_t checkpoints = 0;
  uint64_t checkpoint_bytes = 0;
  double checkpoint_seconds = 0;
  uint32_t recoveries = 0;

  std::string ToString() const {
    char buf[256];
    std::snprintf(buf, sizeof(buf),
                  "supersteps=%u total=%.3fs (peval=%.3fs inceval=%.3fs "
                  "coord=%.3fs assemble=%.3fs) msgs=%llu bytes=%llu",
                  supersteps, total_seconds, peval_seconds, inceval_seconds,
                  coordinator_seconds, assemble_seconds,
                  static_cast<unsigned long long>(messages),
                  static_cast<unsigned long long>(bytes));
    std::string out = buf;
    // Appended only when fault tolerance did something, so policy-off
    // output is byte-identical to what it always was.
    if (checkpoints > 0 || recoveries > 0) {
      std::snprintf(buf, sizeof(buf),
                    " ckpts=%u ckpt_bytes=%llu ckpt=%.3fs recoveries=%u",
                    checkpoints,
                    static_cast<unsigned long long>(checkpoint_bytes),
                    checkpoint_seconds, recoveries);
      out += buf;
    }
    return out;
  }
};

/// GRAPE's parallel engine (Sec. 2.2): a coordinator P0 plus n workers
/// executing the PIE fixed point under BSP. Workers run the *sequential*
/// PEval / IncEval of the plugged-in program on whole fragments; the engine
/// extracts changed update parameters, serializes them, routes them through
/// the coordinator (which resolves conflicts with the app's aggregate
/// function), and terminates when no parameter changes anywhere.
///
/// Two execution modes share the superstep loop and the coordinator:
///
///  * local compute (default): each worker is a WorkerCore driven inline
///    by this process's thread pool — the historical single-process mode.
///  * remote compute (EngineOptions::remote_app): each worker is the same
///    WorkerCore, but executing inside its rank's worker host — the
///    endpoint OS process on socket/tcp, an in-process thread on inproc —
///    driven through the control frames of rt/worker_protocol.h. The
///    engine keeps only the coordinator role: route, aggregate, decide
///    termination, assemble.
template <PIEProgram App>
class GrapeEngine {
 public:
  using Query = typename App::QueryType;
  using Value = typename App::ValueType;
  using Agg = typename App::AggregatorType;
  using Partial = typename App::PartialType;
  using Output = typename App::OutputType;

  GrapeEngine(const FragmentedGraph& fg, App prototype,
              EngineOptions options = {})
      : fg_(&fg),
        n_frags_(fg.num_fragments()),
        options_(options),
        owned_world_(options.transport ? nullptr
                                       : std::make_unique<CommWorld>(
                                             fg.num_fragments() + 1)),
        world_(options.transport ? options.transport : owned_world_.get()),
        pool_(options.num_threads == 0
                  ? fg.num_fragments() *
                        std::max<uint32_t>(1, options.compute_threads)
                  : options.num_threads) {
    const FragmentId n = n_frags_;
    GRAPE_CHECK(world_->size() == n + 1)
        << "transport sized " << world_->size() << " for " << n
        << " fragments (need num_fragments()+1 ranks)";
    cores_.reserve(n);
    for (FragmentId i = 0; i < n; ++i) {
      cores_.emplace_back(fg_->fragments[i], prototype);
      if (options_.compute_threads > 1) {
        cores_.back().EnableParallel(&pool_, options_.compute_threads);
      }
    }
    phase_status_.assign(n, Status::OK());
    pending_sends_.resize(n);

    coord_batches_.resize(n);
    for (FragmentId i = 0; i < n; ++i) {
      coord_batches_[i].slot_round.assign(fg_->fragments[i].num_local(), 0);
      coord_batches_[i].slot_pos.resize(fg_->fragments[i].num_local());
    }
  }

  /// Distributed-load engine: the graph was built in place by
  /// DistributedLoad on the same `options.transport` world; this engine
  /// holds only `meta` — fragment shapes and the build token — and runs
  /// the pure coordinator role. Every query executes remotely
  /// (options.remote_app must name the app); the load frame ships the
  /// build token instead of a serialized fragment, and each worker
  /// attaches to the fragment resident in its own process. Rank 0 never
  /// constructs, decodes, or serializes a fragment on this path.
  GrapeEngine(const DistributedGraphMeta& meta, EngineOptions options)
      : fg_(nullptr),
        n_frags_(meta.num_fragments),
        resident_token_(meta.token),
        options_(options),
        owned_world_(nullptr),
        world_(options.transport),
        pool_(options.num_threads == 0 ? meta.num_fragments
                                       : options.num_threads) {
    const FragmentId n = n_frags_;
    GRAPE_CHECK(world_ != nullptr)
        << "a distributed-load engine reuses the build's transport";
    GRAPE_CHECK(world_->size() == n + 1)
        << "transport sized " << world_->size() << " for " << n
        << " fragments (need num_fragments()+1 ranks)";
    GRAPE_CHECK(!options_.remote_app.empty())
        << "distributed-load engines execute remotely; set remote_app";
    GRAPE_CHECK(meta.shapes.size() == n)
        << "distributed meta carries " << meta.shapes.size()
        << " fragment shapes for " << n << " fragments";
    phase_status_.assign(n, Status::OK());
    pending_sends_.resize(n);
    coord_batches_.resize(n);
    for (FragmentId i = 0; i < n; ++i) {
      coord_batches_[i].slot_round.assign(meta.shapes[i].num_local, 0);
      coord_batches_[i].slot_pos.resize(meta.shapes[i].num_local);
    }
  }

  GrapeEngine(const GrapeEngine&) = delete;
  GrapeEngine& operator=(const GrapeEngine&) = delete;

  /// Runs the full PEval → IncEval* → Assemble pipeline for one query.
  Result<Output> Run(const Query& query) {
    // A live session's resident hosts would race this run for the same
    // mailboxes; retire them first. No-op unless SessionRun was used.
    EndSession();
    if (!options_.remote_app.empty()) {
      if constexpr (RemoteCompatibleApp<App>) {
        return RunRemote(query);
      } else {
        return Status::InvalidArgument(
            "remote compute requires wire-codable Query/Partial/Value "
            "types; this app must run locally");
      }
    }
    if (fg_ == nullptr) {
      return Status::InvalidArgument(
          "a distributed-load engine has no local fragments; local compute "
          "is impossible (set remote_app)");
    }
    WallTimer total_timer;
    metrics_ = EngineMetrics{};
    world_->ResetStats();
    recorded_messages_ = 0;
    recorded_bytes_ = 0;
    extra_messages_ = 0;
    extra_bytes_ = 0;
    const FragmentId n = n_frags_;

    for (FragmentId i = 0; i < n; ++i) {
      cores_[i].Reset(options_.check_monotonicity);
    }

    // Superstep 1: partial evaluation on every fragment in parallel.
    // Messages are staged inside the parallel phase and dispatched after
    // the barrier, so nothing a worker sends can be consumed in the same
    // superstep (BSP delivery semantics).
    {
      ScopedTimer t(&metrics_.peval_seconds);
      pool_.ParallelFor(0, n, [&](size_t i) {
        cores_[i].PEval(query);
        cores_[i].Flush(world_->buffer_pool(), &pending_sends_[i]);
      });
      metrics_.supersteps = 1;
    }
    GRAPE_RETURN_NOT_OK(CheckPhase());
    uint64_t direct = 0;
    GRAPE_ASSIGN_OR_RETURN(direct, DispatchSends());
    RecordRound(0.0, TotalUpdated());
    uint64_t dirty = TotalDirty();

    // Supersteps 2..: coordinator routes, workers incrementally evaluate.
    // Termination per Sec. 2.2(3): every worker inactive and no update
    // parameter changed anywhere — i.e. neither in-flight messages (routed
    // through the coordinator or sent directly) nor local parameter changes
    // (dirty) remain.
    while (metrics_.supersteps < options_.max_supersteps) {
      double global = 0;
      for (FragmentId i = 0; i < n; ++i) global += cores_[i].GlobalValue();
      if (!metrics_.rounds.empty()) metrics_.rounds.back().global = global;
      if (cores_[0].ShouldTerminate(metrics_.supersteps, global)) break;

      uint64_t routed = 0;
      {
        ScopedTimer t(&metrics_.coordinator_seconds);
        GRAPE_ASSIGN_OR_RETURN(routed, CoordinatorRoute());
      }
      if (routed + direct == 0 && dirty == 0) break;  // simultaneous fixpoint

      WallTimer round_timer;
      {
        ScopedTimer t(&metrics_.inceval_seconds);
        pool_.ParallelFor(0, n, [&](size_t i) {
          auto fid = static_cast<FragmentId>(i);
          Status s = ApplyMessages(fid);
          if (!s.ok()) {
            phase_status_[i] = s;
            return;
          }
          cores_[i].IncEval(query, options_.incremental);
          cores_[i].Flush(world_->buffer_pool(), &pending_sends_[i]);
        });
      }
      metrics_.supersteps++;
      GRAPE_RETURN_NOT_OK(CheckPhase());
      GRAPE_ASSIGN_OR_RETURN(direct, DispatchSends());
      RecordRound(round_timer.ElapsedSeconds(), TotalUpdated());
      dirty = TotalDirty();
      if (options_.verbose) {
        GRAPE_LOG(kInfo) << "superstep " << metrics_.supersteps << ": "
                         << metrics_.rounds.back().messages << " msgs";
      }
    }

    // Termination: pull partial results and Assemble at the coordinator.
    Output output;
    {
      ScopedTimer t(&metrics_.assemble_seconds);
      std::vector<Partial> partials(n);
      pool_.ParallelFor(0, n, [&](size_t i) {
        partials[i] = cores_[i].GetPartial(query);
      });
      output = App::Assemble(query, std::move(partials));
    }

    FinishMetrics(total_timer);
    return output;
  }

  /// Incremental evaluation across *graph updates* (Sec. 2.1: IncEval
  /// computes Q(G ⊕ M) from Q(G)): re-answers `query` on THIS engine's
  /// (already updated) fragmented graph, warm-started from the converged
  /// parameters of `previous` — an engine that ran the same query on the
  /// pre-update graph. `touched` lists the global endpoints of the update M
  /// (e.g. inserted edges' endpoints); only they seed IncEval, so the work
  /// is proportional to the affected region, not |G|.
  ///
  /// Soundness: for monotonic apps this supports change that moves
  /// parameters down the partial order (e.g. edge insertions for SSSP/CC).
  /// Updates that could move values against the order (deletions under min)
  /// require a dedicated IncEval; the MutationBatch overloads below enforce
  /// that contract and fall back to a full run.
  ///
  /// Placement follows the engine: remote engines run the delta inside
  /// their endpoint processes against the state already resident there
  /// (the live session's last answer takes the role of `previous`, whose
  /// in-process stores are never read); local engines warm-start from
  /// `previous`'s stores — the differential oracle the remote path is
  /// tested against.
  Result<Output> RunIncremental(const Query& query,
                                const GrapeEngine& previous,
                                const std::vector<VertexId>& touched) {
    if (!options_.remote_app.empty()) {
      if constexpr (RemoteCompatibleApp<App>) {
        (void)previous;  // the endpoints hold the warm state, not `previous`
        Result<Output> out = RunIncrementalRemote(query, touched);
        // Same invalidation contract as SessionRun: a failed delta leaves
        // workers mid-phase, so the next call must cold-start.
        if (!out.ok()) EndSession();
        return out;
      } else {
        return Status::InvalidArgument(
            "remote incremental evaluation requires wire-codable "
            "Query/Partial/Value types");
      }
    }
    // Local-oracle preconditions: the warm start below reads `previous`'s
    // in-process stores, so previous must have computed locally, and both
    // engines need coordinator-held fragments.
    if (!previous.metrics_.remote_worker_pids.empty()) {
      return Status::InvalidArgument(
          "previous engine ran with remote compute: its converged stores "
          "live in the worker hosts — answer over the live session instead "
          "(SessionRun, ApplyMutations, then RunIncremental(query, batch))");
    }
    if (fg_ == nullptr || previous.fg_ == nullptr) {
      return Status::InvalidArgument(
          "the local oracle path needs coordinator-loaded graphs on both "
          "engines; distributed-load engines answer incrementally over "
          "their live session (RunIncremental(query, batch))");
    }
    WallTimer total_timer;
    metrics_ = EngineMetrics{};
    world_->ResetStats();
    recorded_messages_ = 0;
    recorded_bytes_ = 0;
    extra_messages_ = 0;
    extra_bytes_ = 0;
    const FragmentId n = n_frags_;

    // Warm start: every local copy adopts the owner's converged value from
    // the previous run (unseen vertices keep InitValue).
    for (FragmentId i = 0; i < n; ++i) {
      const Fragment& frag = fg_->fragments[i];
      cores_[i].Reset(options_.check_monotonicity);
      ParamStore<Value>& store = cores_[i].store();
      for (LocalId lid = 0; lid < frag.num_local(); ++lid) {
        VertexId gid = frag.Gid(lid);
        if (gid >= previous.fg_->owner->size()) continue;  // new vertex
        FragmentId prev_owner = (*previous.fg_->owner)[gid];
        const Fragment& prev_frag = previous.fg_->fragments[prev_owner];
        LocalId prev_lid = prev_frag.Lid(gid);
        if (prev_lid == kInvalidLocal) continue;
        store.UntrackedRef(lid) =
            previous.cores_[prev_owner].store().Get(prev_lid);
      }
    }
    // Seed M: the update's touched vertices (all local copies).
    for (VertexId gid : touched) {
      for (FragmentId i = 0; i < n; ++i) {
        LocalId lid = fg_->fragments[i].Lid(gid);
        if (lid != kInvalidLocal) cores_[i].updated().push_back(lid);
      }
    }

    // IncEval-only fixed point (superstep 1 is the first IncEval).
    {
      ScopedTimer t(&metrics_.inceval_seconds);
      pool_.ParallelFor(0, n, [&](size_t i) {
        cores_[i].IncEval(query, true);
        cores_[i].Flush(world_->buffer_pool(), &pending_sends_[i]);
      });
      metrics_.supersteps = 1;
    }
    GRAPE_RETURN_NOT_OK(CheckPhase());
    uint64_t direct = 0;
    GRAPE_ASSIGN_OR_RETURN(direct, DispatchSends());
    RecordRound(0.0, TotalUpdated());
    uint64_t dirty = TotalDirty();

    while (metrics_.supersteps < options_.max_supersteps) {
      double global = 0;
      for (FragmentId i = 0; i < n; ++i) global += cores_[i].GlobalValue();
      if (cores_[0].ShouldTerminate(metrics_.supersteps, global)) break;
      uint64_t routed = 0;
      {
        ScopedTimer t(&metrics_.coordinator_seconds);
        GRAPE_ASSIGN_OR_RETURN(routed, CoordinatorRoute());
      }
      if (routed + direct == 0 && dirty == 0) break;
      WallTimer round_timer;
      {
        ScopedTimer t(&metrics_.inceval_seconds);
        pool_.ParallelFor(0, n, [&](size_t i) {
          auto fid = static_cast<FragmentId>(i);
          Status s = ApplyMessages(fid);
          if (!s.ok()) {
            phase_status_[i] = s;
            return;
          }
          cores_[i].IncEval(query, true);
          cores_[i].Flush(world_->buffer_pool(), &pending_sends_[i]);
        });
      }
      metrics_.supersteps++;
      GRAPE_RETURN_NOT_OK(CheckPhase());
      GRAPE_ASSIGN_OR_RETURN(direct, DispatchSends());
      RecordRound(round_timer.ElapsedSeconds(), TotalUpdated());
      dirty = TotalDirty();
    }

    Output output;
    {
      ScopedTimer t(&metrics_.assemble_seconds);
      std::vector<Partial> partials(n);
      pool_.ParallelFor(0, n, [&](size_t i) {
        partials[i] = cores_[i].GetPartial(query);
      });
      output = App::Assemble(query, std::move(partials));
    }
    FinishMetrics(total_timer);
    return output;
  }

  /// Streams one edge-mutation batch into the live session: every endpoint
  /// rebuilds its fragment in place around the batch (graph/mutation.h
  /// semantics — upsert inserts, delete-all-matches deletions), re-resolves
  /// its routing plan peer-to-peer, and adopts warm parameter values for
  /// its rebuilt outer set from the owners, so the converged answer state
  /// survives the topology change. Returns each fragment's rebuilt shape.
  /// This engine's routing slots are refreshed here; any OTHER engine
  /// attached to the same resident fragments must be handed the shapes via
  /// RefreshShapes(). Coordinator-loaded engines: the caller owns keeping
  /// its FragmentedGraph consistent (FragmentBuilder::MutateFragmentedGraph)
  /// — the workers rebuild from their own resident state, never from fg_.
  Result<std::vector<WkBuildAck>> ApplyMutations(const MutationBatch& batch) {
    if constexpr (RemoteCompatibleApp<App>) {
      if (options_.remote_app.empty()) {
        return Status::InvalidArgument(
            "ApplyMutations streams updates into remote workers; local "
            "engines mutate their graph directly "
            "(FragmentBuilder::MutateFragmentedGraph)");
      }
      if (!session_live_) {
        return Status::FailedPrecondition(
            "ApplyMutations requires a live session (SessionRun first): "
            "the batch applies to the state resident in the endpoints");
      }
      Result<std::vector<WkBuildAck>> shapes = ApplyMutationsImpl(batch);
      // A half-applied mutation leaves the endpoints inconsistent with
      // each other; the session is unusable and must cold-start.
      if (!shapes.ok()) EndSession();
      return shapes;
    } else {
      return Status::InvalidArgument(
          "query sessions require wire-codable Query/Partial/Value types");
    }
  }

  /// Q(G ⊕ M) over a live session — the streaming-serving product path.
  /// `batch` must already have been applied with ApplyMutations(); this
  /// re-answers the session's LAST query (which must equal `query`),
  /// warm-starting IncEval inside the endpoints from the converged state
  /// resident there, seeded with the batch's touched vertices.
  ///
  /// Enforced monotonicity contract (the Assurance Theorem's side
  /// condition): a min-style warm start is only sound for change that
  /// moves values down the order. Non-monotonic aggregators, and any
  /// batch containing deletions, take a full re-run of the query instead
  /// (reported via metrics().incremental_fallback) — never a silently
  /// stale answer.
  Result<Output> RunIncremental(const Query& query,
                                const MutationBatch& batch) {
    if constexpr (RemoteCompatibleApp<App>) {
      if (options_.remote_app.empty()) {
        return Status::InvalidArgument(
            "the session overload answers over remote workers; local "
            "engines pass (query, previous, batch)");
      }
      if (!Agg::kMonotonic || batch.has_deletions()) {
        Result<Output> out = SessionRun(query);
        metrics_.incremental_fallback = true;
        return out;
      }
      Result<Output> out = RunIncrementalRemote(query,
                                                batch.TouchedVertices());
      if (!out.ok()) EndSession();
      return out;
    } else {
      return Status::InvalidArgument(
          "query sessions require wire-codable Query/Partial/Value types");
    }
  }

  /// Local twin of the session overload (the differential oracle): same
  /// enforcement, then the touched-vertex warm start above. `previous` ran
  /// `query` on the pre-update graph; THIS engine holds G ⊕ M.
  Result<Output> RunIncremental(const Query& query,
                                const GrapeEngine& previous,
                                const MutationBatch& batch) {
    if (!Agg::kMonotonic || batch.has_deletions()) {
      Result<Output> out = Run(query);
      metrics_.incremental_fallback = true;
      return out;
    }
    return RunIncremental(query, previous, batch.TouchedVertices());
  }

  /// Re-sizes the coordinator's routing slots to new fragment shapes (a
  /// mutation changes per-fragment num_local). The engine that applied the
  /// batch refreshes itself inside ApplyMutations; serving keeps several
  /// engines attached to the same resident fragments and refreshes the
  /// others through this. Safe only between runs — slots carry no
  /// cross-run state (RouteInbox's round counter advances past every
  /// stale slot_round on its first use).
  void RefreshShapes(const std::vector<WkBuildAck>& shapes) {
    GRAPE_CHECK(shapes.size() == coord_batches_.size());
    for (FragmentId i = 0; i < n_frags_; ++i) {
      coord_batches_[i].slot_round.assign(shapes[i].num_local, 0);
      coord_batches_[i].slot_pos.assign(shapes[i].num_local, 0);
      coord_batches_[i].round = 0;
      coord_batches_[i].lids.clear();
      coord_batches_[i].values.clear();
    }
  }

  /// Query-session entry point (the serving layer's hot path): like
  /// Run(), but the remote workers stay loaded between calls. The first
  /// SessionRun performs the full load (shipping fragments or attaching to
  /// resident ones); every later call re-seeds the already-resident
  /// workers with just the next query over kTagWkQuery — no app name, no
  /// fragment bytes — then runs the identical PEval → IncEval* → Assemble
  /// superstep loop. Answers are bit-identical to Run(): the per-query
  /// state (parameter store, update sets, message expectations) is rebuilt
  /// from scratch on both paths; only the fragment survives between
  /// queries. Sessions reject CheckpointPolicy (a session's unit of retry
  /// is the query — the caller just re-runs it; on failure the session is
  /// torn down and the next call cold-starts with a full load). Only one
  /// engine's session may be live on a shared transport at a time; call
  /// EndSession() before running another engine over the same world.
  Result<Output> SessionRun(const Query& query) {
    if constexpr (RemoteCompatibleApp<App>) {
      if (options_.remote_app.empty()) {
        return Status::InvalidArgument(
            "query sessions execute remotely; set remote_app");
      }
      if (options_.checkpoint.enabled()) {
        return Status::InvalidArgument(
            "query sessions do not support checkpoint/recovery; the retry "
            "unit is the query itself");
      }
      Result<Output> out = RunSessionQuery(query);
      // Any failure invalidates the session wholesale: workers may be
      // mid-phase with frames in flight. The next call reloads from
      // scratch (and the stale-drain swallows whatever this run left).
      if (!out.ok()) EndSession();
      return out;
    } else {
      return Status::InvalidArgument(
          "query sessions require wire-codable Query/Partial/Value types");
    }
  }

  /// Retires a live session: best-effort shutdown frames to the resident
  /// workers, then the in-thread hosts (inproc) are joined. Idempotent;
  /// also runs on destruction and before any Run() on this engine.
  void EndSession() {
    if (session_live_) {
      for (FragmentId i = 0; i < n_frags_; ++i) {
        (void)world_->Send(kCoordinatorRank, RankOf(i), kTagWkShutdown, {});
      }
    }
    session_workers_.reset();
    session_live_ = false;
  }

  ~GrapeEngine() { EndSession(); }

  const EngineMetrics& metrics() const { return metrics_; }

  /// Post-run parameter access (tests assert on converged stores). Only
  /// meaningful after local compute: remote workers keep their stores in
  /// their own processes.
  const ParamStore<Value>& params(FragmentId i) const {
    return cores_[i].store();
  }

  FragmentId num_workers() const { return n_frags_; }

 private:
  /// Rank of worker i in the comm world (rank 0 is the coordinator).
  static uint32_t RankOf(FragmentId i) { return i + 1; }

  Status CheckPhase() {
    for (Status& s : phase_status_) {
      if (!s.ok()) {
        Status out = s;
        s = Status::OK();
        return out;
      }
    }
    return Status::OK();
  }

  void RecordRound(double seconds, uint64_t updated_params) {
    // Running totals, not a re-sum of all prior rounds (which made this
    // O(rounds^2) over a long fixed point). Remote compute adds the
    // ack-reported worker flush traffic, which never passes through a
    // rank-0 Send on multi-process backends.
    // base_* splice a pre-recovery world's totals in front of the rebuilt
    // transport's counters (zero until the first recovery), so replayed
    // rounds re-count identically to the fault-free run.
    CommStats cs = world_->stats();
    RoundMetrics rm;
    rm.round = metrics_.supersteps;
    rm.seconds = seconds;
    rm.messages =
        base_messages_ + cs.messages + extra_messages_ - recorded_messages_;
    rm.bytes = base_bytes_ + cs.bytes + extra_bytes_ - recorded_bytes_;
    recorded_messages_ = base_messages_ + cs.messages + extra_messages_;
    recorded_bytes_ = base_bytes_ + cs.bytes + extra_bytes_;
    rm.updated_params = updated_params;
    metrics_.rounds.push_back(rm);
  }

  void FinishMetrics(const WallTimer& total_timer) {
    CommStats cs = world_->stats();
    metrics_.messages = base_messages_ + cs.messages + extra_messages_;
    metrics_.bytes = base_bytes_ + cs.bytes + extra_bytes_;
    uint64_t mono = 0;
    if (metrics_.remote_worker_pids.empty()) {
      for (const auto& core : cores_) mono += core.monotonicity_violations();
    } else {
      for (uint64_t v : remote_mono_) mono += v;
    }
    metrics_.monotonicity_violations = mono;
    metrics_.total_seconds = total_timer.ElapsedSeconds();
  }

  uint64_t TotalDirty() const {
    uint64_t total = 0;
    for (const auto& core : cores_) total += core.flush_dirty();
    return total;
  }

  uint64_t TotalUpdated() const {
    uint64_t total = 0;
    for (const auto& core : cores_) total += core.updated().size();
    return total;
  }

  /// Ships every staged buffer (runs between parallel phases); returns the
  /// number of directly-sent updates (coordinator-bound updates are counted
  /// when routed). A failed Send surfaces as a Status like every other
  /// engine phase rather than aborting the process. The trailing Flush is
  /// the BSP delivery barrier: on asynchronous backends (socket) it blocks
  /// until every frame is visible at its destination, so the next phase
  /// observes exactly what an in-process mailbox would.
  Result<uint64_t> DispatchSends() {
    uint64_t direct = 0;
    for (FragmentId i = 0; i < n_frags_; ++i) {
      for (WorkerSend& p : pending_sends_[i]) {
        direct += p.direct_updates;
        GRAPE_RETURN_NOT_OK(world_->Send(RankOf(i), p.dst_rank,
                                         kTagParamUpdate,
                                         std::move(p.payload)));
      }
      pending_sends_[i].clear();
    }
    GRAPE_RETURN_NOT_OK(world_->Flush());
    return direct;
  }

  /// Coordinator step: collects all pending parameter updates, resolves
  /// conflicts per (destination, vertex) with the app's aggregate function,
  /// and forwards one consolidated buffer to each destination worker.
  /// Returns the number of routed updates (0 signals the fixed point).
  Result<uint64_t> CoordinatorRoute() {
    std::vector<RtMessage> inbox = world_->DrainAll(kCoordinatorRank);
    if (inbox.empty()) return uint64_t{0};
    uint64_t routed = 0;
    GRAPE_ASSIGN_OR_RETURN(
        routed, RouteInbox(std::move(inbox), kTagParamUpdate, nullptr));
    // Delivery barrier: consolidated batches must reach the workers before
    // the ApplyMessages phase starts polling its mailboxes.
    GRAPE_RETURN_NOT_OK(world_->Flush());
    return routed;
  }

  /// The mode-independent coordinator: aggregates an inbox of owner-bound
  /// record batches and sends one consolidated buffer per destination
  /// worker under `send_tag` (kTagParamUpdate locally, kTagWkApply for
  /// remote workers — the one worker-protocol frame CommStats counts,
  /// because this Send exists identically in both modes). When
  /// `apply_counts` is non-null it receives the number of batches sent to
  /// each fragment — the remote round's per-worker delivery expectation.
  Result<uint64_t> RouteInbox(std::vector<RtMessage> inbox, uint32_t send_tag,
                              std::vector<uint32_t>* apply_counts) {
    if (apply_counts != nullptr) {
      apply_counts->assign(n_frags_, 0);
    }
    if (inbox.empty()) return uint64_t{0};
    // Mailbox order is FIFO per sender; sort by sender for a deterministic
    // merge independent of thread scheduling.
    std::stable_sort(inbox.begin(), inbox.end(),
                     [](const RtMessage& a, const RtMessage& b) {
                       return a.from < b.from;
                     });

    // Dense aggregation: one persistent slot array per destination,
    // indexed by dst_lid. Round tags take the place of clearing — a slot
    // holding an older round number is vacant this round — so the O(|F_i|)
    // arrays are never re-initialized. First-seen append order plus the
    // sender sort above reproduces the seed path's merge order exactly.
    ++coord_round_;
    coord_touched_.clear();
    for (RtMessage& msg : inbox) {
      Decoder dec(msg.payload);
      uint32_t dst = 0;
      GRAPE_RETURN_NOT_OK(dec.ReadU32(&dst));
      if (dst >= coord_batches_.size()) {
        return Status::Corruption("routed batch for unknown fragment " +
                                  std::to_string(dst));
      }
      GRAPE_RETURN_NOT_OK(
          DecodeRecordBlock(dec, &route_lids_, &route_values_));
      CoordBatch& batch = coord_batches_[dst];
      if (batch.round != coord_round_) {
        batch.round = coord_round_;
        batch.lids.clear();
        batch.values.clear();
        coord_touched_.push_back(dst);
      }
      for (size_t k = 0; k < route_lids_.size(); ++k) {
        const LocalId lid = route_lids_[k];
        if (lid >= batch.slot_round.size()) {
          return Status::Corruption("routed update addresses lid " +
                                    std::to_string(lid) +
                                    " outside fragment " +
                                    std::to_string(dst));
        }
        if (batch.slot_round[lid] != coord_round_) {
          batch.slot_round[lid] = coord_round_;
          batch.slot_pos[lid] = static_cast<uint32_t>(batch.lids.size());
          batch.lids.push_back(lid);
          batch.values.push_back(std::move(route_values_[k]));
        } else {
          Agg::Aggregate(batch.values[batch.slot_pos[lid]],
                         route_values_[k]);
        }
      }
      world_->buffer_pool().Release(std::move(msg.payload));
    }

    std::sort(coord_touched_.begin(), coord_touched_.end());

    uint64_t routed = 0;
    for (FragmentId dst : coord_touched_) {
      CoordBatch& batch = coord_batches_[dst];
      Encoder enc(world_->buffer_pool().Acquire());
      EncodeOwnedRecords(enc, batch.lids, batch.values);
      routed += batch.lids.size();
      if (apply_counts != nullptr) (*apply_counts)[dst]++;
      GRAPE_RETURN_NOT_OK(world_->Send(kCoordinatorRank, RankOf(dst),
                                       send_tag, enc.TakeBuffer()));
    }
    return routed;
  }

  /// Applies routed updates to worker i's parameters via the aggregate
  /// function; vertices whose value actually changed form M_i, the update
  /// set handed to IncEval.
  Status ApplyMessages(FragmentId i) {
    cores_[i].BeginApply();
    while (auto msg = world_->TryRecv(RankOf(i), kTagParamUpdate)) {
      GRAPE_RETURN_NOT_OK(cores_[i].ApplyBatch(msg->payload));
      world_->buffer_pool().Release(std::move(msg->payload));
    }
    cores_[i].FinishApply();
    return Status::OK();
  }

  // ------------------------------------------------------ remote compute

  /// One awaited remote phase: every worker's ack folded together, with
  /// per-fragment detail where the engine needs it.
  struct RemoteRound {
    uint64_t dirty = 0;
    uint64_t direct_updates = 0;
    uint64_t updated_count = 0;
    uint64_t sent_messages = 0;
    uint64_t sent_bytes = 0;
    std::vector<double> global_by_frag;  // summed in fragment order
    std::vector<uint64_t> mono_by_frag;  // cumulative per worker
    /// direct_matrix[src][dst]: kTagWkDirect frames worker src shipped to
    /// worker dst this phase — next round's delivery expectations.
    std::vector<std::vector<uint32_t>> direct_matrix;

    double GlobalSum() const {
      // Fragment order, matching the local loop's summation order, so a
      // borderline floating-point termination check cannot diverge.
      double g = 0;
      for (double v : global_by_frag) g += v;
      return g;
    }
  };

  /// Coordinator state at a checkpoint barrier — everything the superstep
  /// loop needs to resume exactly where a failed attempt left off, paired
  /// with the worker images in ckpt_store_. The comm_* bases keep
  /// CommStats-derived views continuous across a world rebuild, whose
  /// fresh transport counts from zero.
  struct CoordSnapshot {
    bool valid = false;
    uint32_t supersteps = 0;
    /// The barrier round whole: dirty/direct/global resume from it and its
    /// direct_matrix seeds the next round's delivery expectations.
    RemoteRound round;
    /// Deep copies of the routed-but-unconsumed worker data frames
    /// (remote_inbox_), as (from, payload) pairs.
    std::vector<std::pair<uint32_t, std::vector<uint8_t>>> inbox;
    EngineMetrics metrics;
    uint64_t extra_messages = 0;
    uint64_t extra_bytes = 0;
    uint64_t recorded_messages = 0;
    uint64_t recorded_bytes = 0;
    uint64_t comm_messages = 0;
    uint64_t comm_bytes = 0;
    std::vector<uint64_t> remote_mono;
  };

  /// Remote compute with fault tolerance: each attempt runs the full
  /// PEval → IncEval* → Assemble pipeline; when a CheckpointPolicy is
  /// enabled and an attempt dies with Unavailable (endpoint SIGKILLed,
  /// transport broken, liveness probe fired), the world is rebuilt in
  /// place (Transport::Recover) and the next attempt resumes from the
  /// last completed checkpoint. With the policy off this degenerates to
  /// exactly one attempt with no added control traffic.
  Result<Output> RunRemote(const Query& query)
    requires RemoteCompatibleApp<App>
  {
    run_recoveries_ = 0;
    snapshot_ = CoordSnapshot{};
    ckpt_store_ = CheckpointStore(options_.checkpoint.dir);
    // A previous run's images must never satisfy this run's restores: a
    // stale file with a matching (rank, round) would restore cleanly and
    // silently compute over the wrong graph/query. Start from nothing.
    ckpt_store_.Clear();
    for (;;) {
      Result<Output> out = RunRemoteAttempt(query, run_recoveries_ > 0);
      if (out.ok()) return out;
      const CheckpointPolicy& cp = options_.checkpoint;
      // Recoverable means: the failure is a death, not an app error; the
      // policy allows another attempt; the backend can rebuild the world;
      // and there is something to resume from — a checkpoint, or (lacking
      // one yet) a coordinator-held graph to cold-restart with. A
      // distributed-load engine that dies before its first checkpoint is
      // unrecoverable: the resident fragments died with the endpoints.
      if (!out.status().IsUnavailable() || !cp.enabled() ||
          run_recoveries_ >= cp.max_recoveries ||
          !world_->supports_recovery() ||
          !(snapshot_.valid || fg_ != nullptr)) {
        return out;
      }
      if (options_.verbose) {
        GRAPE_LOG(kInfo) << "recovering world after: "
                         << out.status().ToString();
      }
      if (Status r = world_->Recover(); !r.ok()) {
        return out;  // rebuild failed: surface the original death
      }
      ++run_recoveries_;
    }
  }

  Result<Output> RunRemoteAttempt(const Query& query, bool resume)
    requires RemoteCompatibleApp<App>
  {
    WallTimer total_timer;
    metrics_ = EngineMetrics{};
    world_->ResetStats();
    recorded_messages_ = 0;
    recorded_bytes_ = 0;
    extra_messages_ = 0;
    extra_bytes_ = 0;
    base_messages_ = 0;
    base_bytes_ = 0;
    remote_inbox_.clear();
    const FragmentId n = n_frags_;
    metrics_.remote_worker_pids.assign(n, 0);
    metrics_.remote_peval_runs.assign(n, 0);
    metrics_.remote_inceval_runs.assign(n, 0);
    metrics_.recoveries = run_recoveries_;
    remote_mono_.assign(n, 0);

    const CheckpointPolicy& cp = options_.checkpoint;
    if (cp.enabled()) {
      monitor_.Reset(n, cp.lease_ms);
      const std::vector<int64_t> pids = world_->endpoint_process_ids();
      monitor_.set_pid_probe([pids](uint32_t frag) {
        const uint32_t rank = frag + 1;
        if (rank >= pids.size() || pids[rank] <= 0) return false;
        // waitpid over kill(pid, 0): a SIGKILLed child stays a zombie
        // until reaped and kill(zombie, 0) still succeeds. WNOHANG
        // returning the pid (just died) or -1/ECHILD (already reaped)
        // both mean dead; 0 means alive.
        int st = 0;
        return ::waitpid(static_cast<pid_t>(pids[rank]), &st, WNOHANG) != 0;
      });
    }

    // Cover the in-thread host path even when nobody pre-registered this
    // app; endpoint processes snapshot the registry at fork, so for
    // socket/tcp the registration must already have happened there.
    if (!WorkerAppRegistry::Global().Has(options_.remote_app)) {
      RegisterRemoteWorker<App>(options_.remote_app);
    }
    // A previous run on this world may have left worker-protocol frames
    // behind (an abandoned phase after an error): drain them before any
    // worker host can see them, so they cannot masquerade as this run's
    // traffic. Only worker tags are touched.
    for (uint32_t tag = kTagWkLoad; tag < kTagWkEnd_; ++tag) {
      for (uint32_t rank = 0; rank <= n; ++rank) {
        while (auto stale = world_->TryRecv(rank, tag)) {
          world_->buffer_pool().Release(std::move(stale->payload));
        }
      }
    }
    InThreadWorkers in_thread(world_, n, !world_->has_remote_endpoints(),
                              options_.timing.poll_interval_us,
                              options_.timing.idle_spins,
                              options_.timing.idle_poll_interval_us);

    RemoteRound round;
    uint64_t dirty = 0;
    uint64_t direct = 0;
    double global = 0;
    if (resume && snapshot_.valid) {
      // Rebuilt world: re-seed every (fresh) worker from its checkpoint
      // image and roll the coordinator back to the barrier.
      GRAPE_RETURN_NOT_OK(
          RestoreFromSnapshot(&round, &dirty, &direct, &global));
    } else {
      // Load: app name + flags + query + the fragment. Coordinator-loaded
      // engines serialize the fragment (with its routing plan and the
      // shared owner tables); distributed-load engines ship only the build
      // token, and each worker attaches to the fragment already resident
      // in its own process — the graph never transits rank 0.
      {
        ScopedTimer t(&metrics_.load_seconds);
        for (FragmentId i = 0; i < n; ++i) {
          Encoder enc(world_->buffer_pool().Acquire());
          enc.WriteString(options_.remote_app);
          uint8_t flags =
              options_.check_monotonicity ? kWkLoadCheckMonotonicity : 0;
          if (fg_ == nullptr) flags |= kWkLoadUseResident;
          if (options_.compute_threads > 1) flags |= kWkLoadComputeThreads;
          enc.WriteU8(flags);
          // Gated on the flag so compute_threads <= 1 load frames stay
          // byte-identical to every frame this engine ever sent.
          if (options_.compute_threads > 1) {
            enc.WriteU32(options_.compute_threads);
          }
          EncodeValue(enc, query);
          if (fg_ == nullptr) {
            enc.WriteU64(resident_token_);
          } else {
            fg_->fragments[i].EncodeTo(enc);
          }
          GRAPE_RETURN_NOT_OK(world_->Send(kCoordinatorRank, RankOf(i),
                                           kTagWkLoad, enc.TakeBuffer()));
        }
        RemoteRound load;
        GRAPE_RETURN_NOT_OK(AwaitPhase(kWkPhaseLoad, 0, &load));
      }

      // Superstep 1: remote PEval everywhere.
      {
        ScopedTimer t(&metrics_.peval_seconds);
        for (FragmentId i = 0; i < n; ++i) {
          GRAPE_RETURN_NOT_OK(world_->Send(kCoordinatorRank, RankOf(i),
                                           kTagWkRunPEval, {}));
        }
        GRAPE_RETURN_NOT_OK(AwaitPhase(kWkPhasePEval, 1, &round));
        metrics_.supersteps = 1;
      }
      extra_messages_ += round.sent_messages;
      extra_bytes_ += round.sent_bytes;
      RecordRound(0.0, round.updated_count);
      dirty = round.dirty;
      direct = round.direct_updates;
      global = round.GlobalSum();
      GRAPE_RETURN_NOT_OK(MaybeTakeCheckpoint(round));
      if (options_.on_superstep) options_.on_superstep(metrics_.supersteps);
    }

    while (metrics_.supersteps < options_.max_supersteps) {
      if (!metrics_.rounds.empty()) metrics_.rounds.back().global = global;
      // apps_[0]'s termination hook lives in worker rank 1 now; one
      // control round-trip evaluates it against the summed global.
      bool terminate = false;
      GRAPE_ASSIGN_OR_RETURN(
          terminate, RemoteCheckTerminate(metrics_.supersteps, global));
      if (terminate) break;

      uint64_t routed = 0;
      std::vector<uint32_t> apply_counts;
      {
        ScopedTimer t(&metrics_.coordinator_seconds);
        std::vector<RtMessage> inbox = std::move(remote_inbox_);
        remote_inbox_.clear();
        GRAPE_ASSIGN_OR_RETURN(
            routed, RouteInbox(std::move(inbox), kTagWkApply, &apply_counts));
      }
      if (routed + direct == 0 && dirty == 0) break;  // simultaneous fixpoint

      WallTimer round_timer;
      RemoteRound next;
      {
        ScopedTimer t(&metrics_.inceval_seconds);
        for (FragmentId i = 0; i < n; ++i) {
          IncEvalCommand cmd;
          cmd.round = metrics_.supersteps + 1;
          cmd.incremental = options_.incremental;
          cmd.apply_frames = apply_counts[i];
          for (FragmentId s = 0; s < n; ++s) {
            const uint32_t frames = round.direct_matrix[s][i];
            if (frames > 0) cmd.expect_direct.emplace_back(RankOf(s), frames);
          }
          Encoder enc(world_->buffer_pool().Acquire());
          cmd.EncodeTo(enc);
          GRAPE_RETURN_NOT_OK(world_->Send(kCoordinatorRank, RankOf(i),
                                           kTagWkRunIncEval,
                                           enc.TakeBuffer()));
        }
        GRAPE_RETURN_NOT_OK(
            AwaitPhase(kWkPhaseIncEval, metrics_.supersteps + 1, &next));
      }
      round = std::move(next);
      metrics_.supersteps++;
      extra_messages_ += round.sent_messages;
      extra_bytes_ += round.sent_bytes;
      RecordRound(round_timer.ElapsedSeconds(), round.updated_count);
      dirty = round.dirty;
      direct = round.direct_updates;
      global = round.GlobalSum();
      if (options_.verbose) {
        GRAPE_LOG(kInfo) << "superstep " << metrics_.supersteps << ": "
                         << metrics_.rounds.back().messages
                         << " msgs (remote)";
      }
      GRAPE_RETURN_NOT_OK(MaybeTakeCheckpoint(round));
      if (options_.on_superstep) options_.on_superstep(metrics_.supersteps);
    }
    remote_mono_ = round.mono_by_frag.empty() ? remote_mono_
                                              : round.mono_by_frag;

    // Termination: remote GetPartial everywhere, Assemble here.
    Output output;
    {
      ScopedTimer t(&metrics_.assemble_seconds);
      for (FragmentId i = 0; i < n; ++i) {
        GRAPE_RETURN_NOT_OK(world_->Send(kCoordinatorRank, RankOf(i),
                                         kTagWkGetPartial, {}));
      }
      std::vector<Partial> partials(n);
      GRAPE_RETURN_NOT_OK(AwaitPartials(&partials));
      output = App::Assemble(query, std::move(partials));
    }

    // Retire the workers (best effort: the run already succeeded; an
    // endpoint that died here surfaces through the transport anyway).
    for (FragmentId i = 0; i < n; ++i) {
      (void)world_->Send(kCoordinatorRank, RankOf(i), kTagWkShutdown, {});
    }

    FinishMetrics(total_timer);
    return output;
  }

  /// One query over a persistent worker session. Structurally
  /// RunRemoteAttempt minus checkpointing, recovery, and worker
  /// retirement: the load step runs once per session (full fragment ship
  /// or resident attach, optionally stashing under
  /// options_.resident_stash_token), and later queries replace it with a
  /// kTagWkQuery re-seed that reuses the worker's resident fragment. The
  /// superstep loop, routing, and assembly are identical, which is what
  /// makes session answers bit-identical to Run()'s.
  Result<Output> RunSessionQuery(const Query& query)
    requires RemoteCompatibleApp<App>
  {
    WallTimer total_timer;
    metrics_ = EngineMetrics{};
    world_->ResetStats();
    recorded_messages_ = 0;
    recorded_bytes_ = 0;
    extra_messages_ = 0;
    extra_bytes_ = 0;
    base_messages_ = 0;
    base_bytes_ = 0;
    remote_inbox_.clear();
    const FragmentId n = n_frags_;
    metrics_.remote_worker_pids.assign(n, 0);
    metrics_.remote_peval_runs.assign(n, 0);
    metrics_.remote_inceval_runs.assign(n, 0);
    remote_mono_.assign(n, 0);

    if (!session_live_) {
      if (!WorkerAppRegistry::Global().Has(options_.remote_app)) {
        RegisterRemoteWorker<App>(options_.remote_app);
      }
      // Same stale-drain as a fresh Run: an abandoned query (or a prior
      // engine's session on this shared world) may have left
      // worker-protocol frames behind.
      for (uint32_t tag = kTagWkLoad; tag < kTagWkEnd_; ++tag) {
        for (uint32_t rank = 0; rank <= n; ++rank) {
          while (auto stale = world_->TryRecv(rank, tag)) {
            world_->buffer_pool().Release(std::move(stale->payload));
          }
        }
      }
      session_workers_ = std::make_unique<InThreadWorkers>(
          world_, n, !world_->has_remote_endpoints(),
          options_.timing.poll_interval_us, options_.timing.idle_spins,
          options_.timing.idle_poll_interval_us);
      {
        ScopedTimer t(&metrics_.load_seconds);
        for (FragmentId i = 0; i < n; ++i) {
          Encoder enc(world_->buffer_pool().Acquire());
          enc.WriteString(options_.remote_app);
          uint8_t flags =
              options_.check_monotonicity ? kWkLoadCheckMonotonicity : 0;
          if (fg_ == nullptr) {
            flags |= kWkLoadUseResident;
          } else if (options_.resident_stash_token != 0) {
            flags |= kWkLoadStashResident;
          }
          if (options_.compute_threads > 1) flags |= kWkLoadComputeThreads;
          enc.WriteU8(flags);
          if (options_.compute_threads > 1) {
            enc.WriteU32(options_.compute_threads);
          }
          EncodeValue(enc, query);
          if (fg_ == nullptr) {
            enc.WriteU64(resident_token_);
          } else if (options_.resident_stash_token != 0) {
            enc.WriteU64(options_.resident_stash_token);
            fg_->fragments[i].EncodeTo(enc);
          } else {
            fg_->fragments[i].EncodeTo(enc);
          }
          GRAPE_RETURN_NOT_OK(world_->Send(kCoordinatorRank, RankOf(i),
                                           kTagWkLoad, enc.TakeBuffer()));
        }
        RemoteRound load;
        GRAPE_RETURN_NOT_OK(AwaitPhase(kWkPhaseLoad, 0, &load));
      }
      session_live_ = true;
    } else {
      // Warm path: just the query crosses the wire. The worker re-seeds
      // its parameter store from the fragment it already holds and acks
      // with the same load-phase ack a full load would produce.
      ScopedTimer t(&metrics_.load_seconds);
      for (FragmentId i = 0; i < n; ++i) {
        Encoder enc(world_->buffer_pool().Acquire());
        EncodeValue(enc, query);
        GRAPE_RETURN_NOT_OK(world_->Send(kCoordinatorRank, RankOf(i),
                                         kTagWkQuery, enc.TakeBuffer()));
      }
      RemoteRound load;
      GRAPE_RETURN_NOT_OK(AwaitPhase(kWkPhaseLoad, 0, &load));
    }

    // Superstep 1: remote PEval everywhere.
    RemoteRound round;
    {
      ScopedTimer t(&metrics_.peval_seconds);
      for (FragmentId i = 0; i < n; ++i) {
        GRAPE_RETURN_NOT_OK(world_->Send(kCoordinatorRank, RankOf(i),
                                         kTagWkRunPEval, {}));
      }
      GRAPE_RETURN_NOT_OK(AwaitPhase(kWkPhasePEval, 1, &round));
      metrics_.supersteps = 1;
    }
    extra_messages_ += round.sent_messages;
    extra_bytes_ += round.sent_bytes;
    RecordRound(0.0, round.updated_count);
    uint64_t dirty = round.dirty;
    uint64_t direct = round.direct_updates;
    double global = round.GlobalSum();
    if (options_.on_superstep) options_.on_superstep(metrics_.supersteps);

    while (metrics_.supersteps < options_.max_supersteps) {
      if (!metrics_.rounds.empty()) metrics_.rounds.back().global = global;
      bool terminate = false;
      GRAPE_ASSIGN_OR_RETURN(
          terminate, RemoteCheckTerminate(metrics_.supersteps, global));
      if (terminate) break;

      uint64_t routed = 0;
      std::vector<uint32_t> apply_counts;
      {
        ScopedTimer t(&metrics_.coordinator_seconds);
        std::vector<RtMessage> inbox = std::move(remote_inbox_);
        remote_inbox_.clear();
        GRAPE_ASSIGN_OR_RETURN(
            routed, RouteInbox(std::move(inbox), kTagWkApply, &apply_counts));
      }
      if (routed + direct == 0 && dirty == 0) break;  // simultaneous fixpoint

      WallTimer round_timer;
      RemoteRound next;
      {
        ScopedTimer t(&metrics_.inceval_seconds);
        for (FragmentId i = 0; i < n; ++i) {
          IncEvalCommand cmd;
          cmd.round = metrics_.supersteps + 1;
          cmd.incremental = options_.incremental;
          cmd.apply_frames = apply_counts[i];
          for (FragmentId s = 0; s < n; ++s) {
            const uint32_t frames = round.direct_matrix[s][i];
            if (frames > 0) cmd.expect_direct.emplace_back(RankOf(s), frames);
          }
          Encoder enc(world_->buffer_pool().Acquire());
          cmd.EncodeTo(enc);
          GRAPE_RETURN_NOT_OK(world_->Send(kCoordinatorRank, RankOf(i),
                                           kTagWkRunIncEval,
                                           enc.TakeBuffer()));
        }
        GRAPE_RETURN_NOT_OK(
            AwaitPhase(kWkPhaseIncEval, metrics_.supersteps + 1, &next));
      }
      round = std::move(next);
      metrics_.supersteps++;
      extra_messages_ += round.sent_messages;
      extra_bytes_ += round.sent_bytes;
      RecordRound(round_timer.ElapsedSeconds(), round.updated_count);
      dirty = round.dirty;
      direct = round.direct_updates;
      global = round.GlobalSum();
      if (options_.on_superstep) options_.on_superstep(metrics_.supersteps);
    }
    remote_mono_ = round.mono_by_frag.empty() ? remote_mono_
                                              : round.mono_by_frag;

    // Termination: remote GetPartial everywhere, Assemble here. No
    // shutdown frames — the workers stay resident for the next query.
    Output output;
    {
      ScopedTimer t(&metrics_.assemble_seconds);
      for (FragmentId i = 0; i < n; ++i) {
        GRAPE_RETURN_NOT_OK(world_->Send(kCoordinatorRank, RankOf(i),
                                         kTagWkGetPartial, {}));
      }
      std::vector<Partial> partials(n);
      GRAPE_RETURN_NOT_OK(AwaitPartials(&partials));
      output = App::Assemble(query, std::move(partials));
    }

    FinishMetrics(total_timer);
    return output;
  }

  /// Ships the encoded batch to every endpoint and collects the rebuilt
  /// shapes. The mutate ack (kTagWkMutateAck, a WkBuildAck) only arrives
  /// after the worker finished its peer-to-peer mirror/warm-value
  /// exchange, so a complete ack set means every routing plan is resolved
  /// and every outer copy holds its owner's converged value.
  Result<std::vector<WkBuildAck>> ApplyMutationsImpl(const MutationBatch& b)
    requires RemoteCompatibleApp<App>
  {
    if (fg_ != nullptr) {
      GRAPE_RETURN_NOT_OK(b.Validate(fg_->total_vertices));
    }
    const FragmentId n = n_frags_;
    for (FragmentId i = 0; i < n; ++i) {
      Encoder enc(world_->buffer_pool().Acquire());
      b.EncodeTo(enc);
      GRAPE_RETURN_NOT_OK(world_->Send(kCoordinatorRank, RankOf(i),
                                       kTagWkMutate, enc.TakeBuffer()));
    }
    std::vector<WkBuildAck> shapes(n);
    std::vector<uint8_t> seen(n, 0);
    FragmentId have = 0;
    uint32_t idle = 0;
    const auto deadline =
        std::chrono::steady_clock::now() +
        std::chrono::milliseconds(options_.remote_timeout_ms);
    while (have < n) {
      std::optional<RtMessage> msg = world_->TryRecv(kCoordinatorRank);
      if (!msg) {
        GRAPE_RETURN_NOT_OK(
            CheckRemoteLiveness(deadline, "mutation acks", &idle));
        continue;
      }
      idle = 0;
      if (msg->from >= 1 && msg->from <= n) monitor_.Heard(msg->from - 1);
      if (msg->tag == kTagWkError) return DecodeWorkerError(msg->payload);
      if (msg->tag == kTagWkMutateAck && msg->from >= 1 && msg->from <= n &&
          !seen[msg->from - 1]) {
        Decoder dec(msg->payload);
        WkBuildAck ack;
        Status s = WkBuildAck::DecodeFrom(dec, &ack);
        world_->buffer_pool().Release(std::move(msg->payload));
        GRAPE_RETURN_NOT_OK(s);
        shapes[msg->from - 1] = ack;
        seen[msg->from - 1] = 1;
        have++;
        continue;
      }
      world_->buffer_pool().Release(std::move(msg->payload));
    }
    RefreshShapes(shapes);
    return shapes;
  }

  /// The bounded delta: IncEval warm-started inside the endpoints from
  /// the state the session's last query left there, seeded with the
  /// mutation's touched vertices. Deliberately NO kTagWkQuery frame — a
  /// query re-seed resets the parameter store, destroying exactly the
  /// state this path exists to exploit. From superstep 1 onward this is
  /// RunSessionQuery's loop verbatim: route, aggregate, terminate,
  /// assemble.
  Result<Output> RunIncrementalRemote(const Query& query,
                                      const std::vector<VertexId>& touched)
    requires RemoteCompatibleApp<App>
  {
    if (!session_live_) {
      return Status::FailedPrecondition(
          "incremental evaluation rides a live query session: SessionRun "
          "the query, ApplyMutations the batch, then RunIncremental "
          "re-answers that same query");
    }
    WallTimer total_timer;
    metrics_ = EngineMetrics{};
    world_->ResetStats();
    recorded_messages_ = 0;
    recorded_bytes_ = 0;
    extra_messages_ = 0;
    extra_bytes_ = 0;
    base_messages_ = 0;
    base_bytes_ = 0;
    remote_inbox_.clear();
    const FragmentId n = n_frags_;
    metrics_.remote_worker_pids.assign(n, 0);
    metrics_.remote_peval_runs.assign(n, 0);
    metrics_.remote_inceval_runs.assign(n, 0);
    remote_mono_.assign(n, 0);

    // Superstep 1: warm IncEval everywhere (PEval's slot in the loop).
    RemoteRound round;
    {
      ScopedTimer t(&metrics_.inceval_seconds);
      for (FragmentId i = 0; i < n; ++i) {
        Encoder enc(world_->buffer_pool().Acquire());
        enc.WritePodVector(touched);
        GRAPE_RETURN_NOT_OK(world_->Send(kCoordinatorRank, RankOf(i),
                                         kTagWkIncStart, enc.TakeBuffer()));
      }
      GRAPE_RETURN_NOT_OK(AwaitPhase(kWkPhaseIncEval, 1, &round));
      metrics_.supersteps = 1;
    }
    extra_messages_ += round.sent_messages;
    extra_bytes_ += round.sent_bytes;
    RecordRound(0.0, round.updated_count);
    uint64_t dirty = round.dirty;
    uint64_t direct = round.direct_updates;
    double global = round.GlobalSum();
    if (options_.on_superstep) options_.on_superstep(metrics_.supersteps);

    while (metrics_.supersteps < options_.max_supersteps) {
      if (!metrics_.rounds.empty()) metrics_.rounds.back().global = global;
      bool terminate = false;
      GRAPE_ASSIGN_OR_RETURN(
          terminate, RemoteCheckTerminate(metrics_.supersteps, global));
      if (terminate) break;

      uint64_t routed = 0;
      std::vector<uint32_t> apply_counts;
      {
        ScopedTimer t(&metrics_.coordinator_seconds);
        std::vector<RtMessage> inbox = std::move(remote_inbox_);
        remote_inbox_.clear();
        GRAPE_ASSIGN_OR_RETURN(
            routed, RouteInbox(std::move(inbox), kTagWkApply, &apply_counts));
      }
      if (routed + direct == 0 && dirty == 0) break;  // simultaneous fixpoint

      WallTimer round_timer;
      RemoteRound next;
      {
        ScopedTimer t(&metrics_.inceval_seconds);
        for (FragmentId i = 0; i < n; ++i) {
          IncEvalCommand cmd;
          cmd.round = metrics_.supersteps + 1;
          cmd.incremental = options_.incremental;
          cmd.apply_frames = apply_counts[i];
          for (FragmentId s = 0; s < n; ++s) {
            const uint32_t frames = round.direct_matrix[s][i];
            if (frames > 0) cmd.expect_direct.emplace_back(RankOf(s), frames);
          }
          Encoder enc(world_->buffer_pool().Acquire());
          cmd.EncodeTo(enc);
          GRAPE_RETURN_NOT_OK(world_->Send(kCoordinatorRank, RankOf(i),
                                           kTagWkRunIncEval,
                                           enc.TakeBuffer()));
        }
        GRAPE_RETURN_NOT_OK(
            AwaitPhase(kWkPhaseIncEval, metrics_.supersteps + 1, &next));
      }
      round = std::move(next);
      metrics_.supersteps++;
      extra_messages_ += round.sent_messages;
      extra_bytes_ += round.sent_bytes;
      RecordRound(round_timer.ElapsedSeconds(), round.updated_count);
      dirty = round.dirty;
      direct = round.direct_updates;
      global = round.GlobalSum();
      if (options_.on_superstep) options_.on_superstep(metrics_.supersteps);
    }
    remote_mono_ = round.mono_by_frag.empty() ? remote_mono_
                                              : round.mono_by_frag;

    Output output;
    {
      ScopedTimer t(&metrics_.assemble_seconds);
      for (FragmentId i = 0; i < n; ++i) {
        GRAPE_RETURN_NOT_OK(world_->Send(kCoordinatorRank, RankOf(i),
                                         kTagWkGetPartial, {}));
      }
      std::vector<Partial> partials(n);
      GRAPE_RETURN_NOT_OK(AwaitPartials(&partials));
      output = App::Assemble(query, std::move(partials));
    }

    FinishMetrics(total_timer);
    return output;
  }

  /// Checkpoint barrier, entered right after a round's acks (and therefore
  /// its whole message frontier) are in. Each worker is told how many
  /// direct frames it should already hold buffered (this round's
  /// direct_matrix column); it snapshots state + buffered frames WITHOUT
  /// consuming them and acks with the image (inline in memory mode, via
  /// its local CheckpointStore in disk mode). Once every ack is in, the
  /// coordinator rolls its own loop state into snapshot_.
  Status MaybeTakeCheckpoint(const RemoteRound& round) {
    const CheckpointPolicy& cp = options_.checkpoint;
    if (!cp.enabled() || metrics_.supersteps % cp.every_k != 0) {
      return Status::OK();
    }
    ScopedTimer timer(&metrics_.checkpoint_seconds);
    const FragmentId n = n_frags_;
    for (FragmentId i = 0; i < n; ++i) {
      WkCheckpointCommand cmd;
      cmd.round = metrics_.supersteps;
      cmd.dir = cp.dir;
      for (FragmentId s = 0; s < n; ++s) {
        const uint32_t frames = round.direct_matrix[s][i];
        if (frames > 0) cmd.expect_direct.emplace_back(RankOf(s), frames);
      }
      Encoder enc(world_->buffer_pool().Acquire());
      cmd.EncodeTo(enc);
      GRAPE_RETURN_NOT_OK(world_->Send(kCoordinatorRank, RankOf(i),
                                       kTagWkCheckpoint, enc.TakeBuffer()));
    }
    uint64_t bytes = 0;
    GRAPE_RETURN_NOT_OK(AwaitCheckpointAcks(metrics_.supersteps, &bytes));
    metrics_.checkpoints++;
    metrics_.checkpoint_bytes += bytes;

    snapshot_.valid = false;  // not valid while half-written
    snapshot_.supersteps = metrics_.supersteps;
    snapshot_.round = round;
    snapshot_.inbox.clear();
    snapshot_.inbox.reserve(remote_inbox_.size());
    for (const RtMessage& m : remote_inbox_) {
      snapshot_.inbox.emplace_back(m.from, m.payload);  // deep copy
    }
    snapshot_.metrics = metrics_;
    snapshot_.extra_messages = extra_messages_;
    snapshot_.extra_bytes = extra_bytes_;
    snapshot_.recorded_messages = recorded_messages_;
    snapshot_.recorded_bytes = recorded_bytes_;
    const CommStats cs = world_->stats();
    snapshot_.comm_messages = base_messages_ + cs.messages;
    snapshot_.comm_bytes = base_bytes_ + cs.bytes;
    snapshot_.remote_mono = remote_mono_;
    snapshot_.valid = true;
    return Status::OK();
  }

  /// Collects one kTagWkCheckpointAck per worker for barrier `round`.
  /// Inline images are validated by a full decode BEFORE being committed
  /// to the store: a corrupt image must never become the recovery point.
  /// No kTagWkData can legitimately arrive here (the barrier sits between
  /// a round's acks and the next round's commands), so anything else is
  /// stale and released.
  Status AwaitCheckpointAcks(uint32_t round, uint64_t* bytes) {
    const FragmentId n = n_frags_;
    std::vector<uint8_t> seen(n, 0);
    FragmentId have = 0;
    uint32_t idle = 0;
    const auto deadline =
        std::chrono::steady_clock::now() +
        std::chrono::milliseconds(options_.remote_timeout_ms);
    while (have < n) {
      std::optional<RtMessage> msg = world_->TryRecv(kCoordinatorRank);
      if (!msg) {
        GRAPE_RETURN_NOT_OK(
            CheckRemoteLiveness(deadline, "checkpoint acks", &idle));
        continue;
      }
      idle = 0;
      if (msg->from >= 1 && msg->from <= n) monitor_.Heard(msg->from - 1);
      if (msg->tag == kTagWkError) return DecodeWorkerError(msg->payload);
      if (msg->tag == kTagWkCheckpointAck && msg->from >= 1 &&
          msg->from <= n && !seen[msg->from - 1]) {
        Decoder dec(msg->payload);
        WkCheckpointAck ack;
        GRAPE_RETURN_NOT_OK(WkCheckpointAck::DecodeFrom(dec, &ack));
        world_->buffer_pool().Release(std::move(msg->payload));
        if (ack.round != round) continue;  // stale duplicate
        seen[msg->from - 1] = 1;
        have++;
        *bytes += ack.bytes;
        if (!ack.image.empty()) {
          GRAPE_RETURN_NOT_OK(
              DecodeCheckpointImage(ack.image.data(), ack.image.size())
                  .status());
          GRAPE_RETURN_NOT_OK(
              ckpt_store_.Put(msg->from, round, std::move(ack.image)));
        }
        continue;
      }
      world_->buffer_pool().Release(std::move(msg->payload));
    }
    return Status::OK();
  }

  /// Re-seeds a rebuilt world from snapshot_ + ckpt_store_: ships each
  /// worker its image (inline in memory mode; by directory in disk mode),
  /// awaits the restore acks — which report the NEW endpoint pids — then
  /// rolls the coordinator's counters, metrics, and routed inbox back to
  /// the barrier. The loop resumes exactly as the fault-free run would
  /// have continued from that superstep.
  Status RestoreFromSnapshot(RemoteRound* round, uint64_t* dirty,
                             uint64_t* direct, double* global) {
    const FragmentId n = n_frags_;
    const CheckpointPolicy& cp = options_.checkpoint;
    double restore_seconds = 0;
    {
      ScopedTimer t(&restore_seconds);
      for (FragmentId i = 0; i < n; ++i) {
        WkRestoreCommand cmd;
        cmd.app_name = options_.remote_app;
        cmd.flags = options_.check_monotonicity ? kWkLoadCheckMonotonicity : 0;
        if (options_.compute_threads > 1) {
          cmd.flags |= kWkLoadComputeThreads;
          cmd.compute_threads = options_.compute_threads;
        }
        // Name the barrier explicitly: a crash during a later checkpoint
        // can leave newer images committed for SOME ranks, and those must
        // not be restored over the last complete cut.
        cmd.round = snapshot_.supersteps;
        cmd.dir = cp.dir;
        if (cp.dir.empty()) {
          GRAPE_ASSIGN_OR_RETURN(
              cmd.image,
              ckpt_store_.GetEncoded(RankOf(i), snapshot_.supersteps));
        }
        Encoder enc(world_->buffer_pool().Acquire());
        cmd.EncodeTo(enc);
        GRAPE_RETURN_NOT_OK(world_->Send(kCoordinatorRank, RankOf(i),
                                         kTagWkRestore, enc.TakeBuffer()));
      }
      RemoteRound acks;
      GRAPE_RETURN_NOT_OK(
          AwaitPhase(kWkPhaseRestore, snapshot_.supersteps, &acks));
    }
    // The restore acks deposited the fresh worker pids into this attempt's
    // cold metrics_; carry them over the snapshot's metrics, which are
    // authoritative for everything else.
    std::vector<uint64_t> pids = std::move(metrics_.remote_worker_pids);
    metrics_ = snapshot_.metrics;
    metrics_.remote_worker_pids = std::move(pids);
    metrics_.recoveries = run_recoveries_;
    metrics_.load_seconds += restore_seconds;
    extra_messages_ = snapshot_.extra_messages;
    extra_bytes_ = snapshot_.extra_bytes;
    recorded_messages_ = snapshot_.recorded_messages;
    recorded_bytes_ = snapshot_.recorded_bytes;
    // The rebuilt transport's counters restart at zero; the bases splice
    // the old world's totals back in so RecordRound deltas stay exact.
    world_->ResetStats();
    base_messages_ = snapshot_.comm_messages;
    base_bytes_ = snapshot_.comm_bytes;
    remote_mono_ = snapshot_.remote_mono;
    remote_inbox_.clear();
    for (const auto& [from, payload] : snapshot_.inbox) {
      std::vector<uint8_t> copy = world_->buffer_pool().Acquire();
      copy.assign(payload.begin(), payload.end());
      remote_inbox_.push_back(
          RtMessage{from, kCoordinatorRank, kTagWkData, std::move(copy)});
    }
    *round = snapshot_.round;
    *dirty = snapshot_.round.dirty;
    *direct = snapshot_.round.direct_updates;
    *global = snapshot_.round.GlobalSum();
    return Status::OK();
  }

  /// Pulls rank-0 frames until every worker acked `phase` (round-tagged
  /// for IncEval). kTagWkData frames are buffered into remote_inbox_ —
  /// FIFO per channel guarantees a worker's data precedes its ack, so a
  /// complete ack set means a complete round inbox. Never blocks in Recv:
  /// a dead endpoint or a dropped control frame must surface as a Status
  /// within bounded time, not hang the superstep loop.
  Status AwaitPhase(uint8_t phase, uint32_t round, RemoteRound* out) {
    const FragmentId n = n_frags_;
    out->global_by_frag.assign(n, 0.0);
    out->mono_by_frag.assign(n, 0);
    out->direct_matrix.assign(n, std::vector<uint32_t>(n, 0));
    std::vector<uint8_t> seen(n, 0);
    FragmentId have = 0;
    uint32_t idle = 0;
    const auto deadline = std::chrono::steady_clock::now() +
                          std::chrono::milliseconds(options_.remote_timeout_ms);
    while (have < n) {
      std::optional<RtMessage> msg = world_->TryRecv(kCoordinatorRank);
      if (!msg) {
        GRAPE_RETURN_NOT_OK(
            CheckRemoteLiveness(deadline, "phase acks", &idle));
        continue;
      }
      idle = 0;
      // Any frame from a worker — data, ack, vote, pong — is proof of
      // life for the lease monitor (pongs then fall to the stale branch).
      if (msg->from >= 1 && msg->from <= n) monitor_.Heard(msg->from - 1);
      switch (msg->tag) {
        case kTagWkData:
          remote_inbox_.push_back(std::move(*msg));
          break;
        case kTagWkError:
          return DecodeWorkerError(msg->payload);
        case kTagWkAck: {
          Decoder dec(msg->payload);
          WorkerAck ack;
          GRAPE_RETURN_NOT_OK(WorkerAck::DecodeFrom(dec, &ack));
          world_->buffer_pool().Release(std::move(msg->payload));
          if (msg->from < 1 || msg->from > n) {
            return Status::Internal("worker ack from rank " +
                                    std::to_string(msg->from));
          }
          const FragmentId frag = msg->from - 1;
          if (ack.phase != phase || ack.round != round || seen[frag]) {
            break;  // stale or duplicated (flaky substrate); ignore
          }
          seen[frag] = 1;
          have++;
          out->dirty += ack.dirty;
          out->direct_updates += ack.direct_updates;
          out->updated_count += ack.updated_count;
          out->sent_messages += ack.sent_messages;
          out->sent_bytes += ack.sent_bytes;
          out->global_by_frag[frag] = ack.global;
          out->mono_by_frag[frag] = ack.mono_violations;
          for (const auto& [dst_rank, frames] : ack.direct_frames) {
            if (dst_rank < 1 || dst_rank > n) {
              return Status::Internal("worker reported direct frames to "
                                      "rank " +
                                      std::to_string(dst_rank));
            }
            out->direct_matrix[frag][dst_rank - 1] += frames;
          }
          metrics_.remote_worker_pids[frag] = ack.worker_pid;
          if (ack.phase == kWkPhasePEval) {
            metrics_.remote_peval_runs[frag]++;
          } else if (ack.phase == kWkPhaseIncEval) {
            metrics_.remote_inceval_runs[frag]++;
          }
          break;
        }
        default:
          // Stale vote/partial after a duplicated control frame: ignore.
          world_->buffer_pool().Release(std::move(msg->payload));
          break;
      }
    }
    return Status::OK();
  }

  Result<bool> RemoteCheckTerminate(uint32_t round, double global) {
    Encoder enc(world_->buffer_pool().Acquire());
    enc.WriteU32(round);
    enc.WriteDouble(global);
    GRAPE_RETURN_NOT_OK(world_->Send(kCoordinatorRank, RankOf(0),
                                     kTagWkCheckTerm, enc.TakeBuffer()));
    uint32_t idle = 0;
    const auto deadline = std::chrono::steady_clock::now() +
                          std::chrono::milliseconds(options_.remote_timeout_ms);
    for (;;) {
      std::optional<RtMessage> msg = world_->TryRecv(kCoordinatorRank);
      if (!msg) {
        GRAPE_RETURN_NOT_OK(
            CheckRemoteLiveness(deadline, "termination vote", &idle));
        continue;
      }
      idle = 0;
      if (msg->from >= 1 && msg->from <= n_frags_) {
        monitor_.Heard(msg->from - 1);
      }
      if (msg->tag == kTagWkVote) {
        Decoder dec(msg->payload);
        uint32_t vote_round = 0;
        bool vote = false;
        GRAPE_RETURN_NOT_OK(dec.ReadU32(&vote_round));
        GRAPE_RETURN_NOT_OK(dec.ReadBool(&vote));
        world_->buffer_pool().Release(std::move(msg->payload));
        // A duplicated CheckTerm (flaky substrate) leaves a stale vote
        // for an earlier round behind; only this round's verdict counts.
        if (vote_round != round) continue;
        return vote;
      }
      if (msg->tag == kTagWkError) return DecodeWorkerError(msg->payload);
      if (msg->tag == kTagWkData) {
        remote_inbox_.push_back(std::move(*msg));
        continue;
      }
      world_->buffer_pool().Release(std::move(msg->payload));  // stale
    }
  }

  Status AwaitPartials(std::vector<Partial>* partials)
    requires RemoteCompatibleApp<App>
  {
    const FragmentId n = n_frags_;
    std::vector<uint8_t> seen(n, 0);
    FragmentId have = 0;
    uint32_t idle = 0;
    const auto deadline = std::chrono::steady_clock::now() +
                          std::chrono::milliseconds(options_.remote_timeout_ms);
    while (have < n) {
      std::optional<RtMessage> msg = world_->TryRecv(kCoordinatorRank);
      if (!msg) {
        GRAPE_RETURN_NOT_OK(
            CheckRemoteLiveness(deadline, "partials", &idle));
        continue;
      }
      idle = 0;
      if (msg->from >= 1 && msg->from <= n) monitor_.Heard(msg->from - 1);
      if (msg->tag == kTagWkError) return DecodeWorkerError(msg->payload);
      if (msg->tag == kTagWkPartial && msg->from >= 1 && msg->from <= n &&
          !seen[msg->from - 1]) {
        Decoder dec(msg->payload);
        GRAPE_RETURN_NOT_OK(DecodeValue(dec, &(*partials)[msg->from - 1]));
        seen[msg->from - 1] = 1;
        have++;
      }
      world_->buffer_pool().Release(std::move(msg->payload));
    }
    return Status::OK();
  }

  /// The await loops' idle step: fail fast on a dead transport (a killed
  /// endpoint marks it unhealthy within its bounded detection time), fail
  /// with Unavailable past the per-phase deadline (a dropped control
  /// frame on a flaky-but-alive substrate), otherwise yield. The yield
  /// backs off adaptively per EngineTimingOptions — fast polls while a
  /// phase is actively completing (sub-millisecond inproc rounds stay
  /// snappy), the idle cadence once the wait is clearly compute-bound —
  /// so a long remote PEval does not burn an engine core on TryRecv
  /// polling. Callers reset *idle on every received frame. Under a
  /// CheckpointPolicy the step also runs the failure detector: leases
  /// that expired get a ping (a control frame invisible to CommStats),
  /// and the pid probe turns a SIGKILLed local endpoint into Unavailable
  /// within one poll instead of waiting out the phase deadline.
  Status CheckRemoteLiveness(
      const std::chrono::steady_clock::time_point& deadline,
      const char* what, uint32_t* idle) {
    if (!world_->healthy()) {
      return Status::Unavailable(
          std::string("transport died while awaiting remote ") + what);
    }
    if (std::chrono::steady_clock::now() > deadline) {
      return Status::Unavailable(
          std::string("timed out awaiting remote ") + what + " after " +
          std::to_string(options_.remote_timeout_ms) + "ms");
    }
    if (options_.checkpoint.enabled()) {
      for (FragmentId i = 0; i < n_frags_; ++i) {
        if (monitor_.ShouldPing(i)) {
          // Best effort: a failed ping send means the world is dying, and
          // the healthy() check above surfaces that next pass.
          (void)world_->Send(kCoordinatorRank, RankOf(i), kTagWkPing, {});
        }
      }
      GRAPE_RETURN_NOT_OK(monitor_.Check());
    }
    if (*idle < options_.timing.idle_spins) {
      ++*idle;
      std::this_thread::sleep_for(
          std::chrono::microseconds(options_.timing.poll_interval_us));
    } else {
      std::this_thread::sleep_for(
          std::chrono::microseconds(options_.timing.idle_poll_interval_us));
    }
    return Status::OK();
  }

  /// The coordinator-loaded graph, or nullptr for a distributed-load
  /// engine (which holds only shapes and the resident-build token).
  const FragmentedGraph* fg_;
  FragmentId n_frags_;
  /// ResidentFragmentStore key of the distributed build (fg_ == nullptr).
  uint64_t resident_token_ = 0;
  EngineOptions options_;
  std::unique_ptr<Transport> owned_world_;  // only when no external substrate
  Transport* world_;                        // the substrate actually used
  ThreadPool pool_;

  std::vector<WorkerCore<App>> cores_;  // one worker per fragment
  std::vector<Status> phase_status_;
  std::vector<std::vector<WorkerSend>> pending_sends_;
  EngineMetrics metrics_;

  // Coordinator: per-destination aggregation with round-tagged slots.
  struct CoordBatch {
    std::vector<uint32_t> lids;    // first-seen order, the merge order
    std::vector<Value> values;     // parallel to lids
    std::vector<uint32_t> slot_round;  // by dst_lid: last round seen
    std::vector<uint32_t> slot_pos;    // by dst_lid: index into lids/values
    uint32_t round = 0;
  };
  std::vector<CoordBatch> coord_batches_;
  std::vector<FragmentId> coord_touched_;
  std::vector<uint32_t> route_lids_;   // coordinator decode scratch
  std::vector<Value> route_values_;
  uint32_t coord_round_ = 0;

  // Remote compute: buffered worker->coordinator data frames of the
  // current round, ack-reported flush traffic (folded into CommStats
  // views), and the last per-worker monotonicity totals.
  std::vector<RtMessage> remote_inbox_;
  uint64_t extra_messages_ = 0;
  uint64_t extra_bytes_ = 0;
  std::vector<uint64_t> remote_mono_;

  // Per-round communication totals already attributed to a RoundMetrics.
  uint64_t recorded_messages_ = 0;
  uint64_t recorded_bytes_ = 0;

  // Query sessions (SessionRun): persistent in-thread hosts (inproc
  // backends; endpoint backends keep their workers in the endpoint
  // processes) and whether the remote workers currently hold a loaded
  // app + fragment.
  std::unique_ptr<InThreadWorkers> session_workers_;
  bool session_live_ = false;

  // Fault tolerance (CheckpointPolicy): failure detector, worker image
  // store, the coordinator snapshot the retry loop resumes from, and
  // counter bases restoring CommStats continuity after a world rebuild.
  // All inert — and the counters zero — while the policy is off.
  WorkerLivenessMonitor monitor_;
  CheckpointStore ckpt_store_;
  CoordSnapshot snapshot_;
  uint32_t run_recoveries_ = 0;
  uint64_t base_messages_ = 0;
  uint64_t base_bytes_ = 0;
};

}  // namespace grape

#endif  // GRAPE_CORE_ENGINE_H_
