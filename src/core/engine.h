#ifndef GRAPE_CORE_ENGINE_H_
#define GRAPE_CORE_ENGINE_H_

#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "core/codec.h"
#include "core/pie.h"
#include "rt/comm_world.h"
#include "rt/transport.h"
#include "util/logging.h"
#include "util/thread_pool.h"
#include "util/timer.h"

namespace grape {

/// Engine configuration (the demo's "play panel" knobs).
struct EngineOptions {
  /// Worker threads; 0 means one per fragment.
  uint32_t num_threads = 0;
  /// Hard stop against non-terminating (non-monotonic, mis-specified) apps.
  uint32_t max_supersteps = 1000000;
  /// When false, every round re-evaluates from *all* inner vertices instead
  /// of only the message-affected ones — the "no IncEval" ablation used by
  /// bench_inceval_bounded to demonstrate boundedness (Sec. 2.2(2)).
  bool incremental = true;
  /// Track the partial order of monotonic aggregators and count violations
  /// (the Assurance Theorem's side condition).
  bool check_monotonicity = false;
  bool verbose = false;
  /// Message-passing substrate. When null the engine owns a private
  /// in-process CommWorld (the historical behaviour); otherwise it runs
  /// over the supplied backend — a SocketTransport from
  /// MakeTransport("socket", n+1), a TcpTransport from
  /// MakeTransport("tcp", n+1) (auto-spawned loopback endpoints), or a
  /// multi-machine tcp world from rt/cluster.h's MakeClusterTransport —
  /// which must be sized num_fragments()+1 and outlive the engine. Not
  /// owned. The engine is substrate-agnostic: it only ever Sends, Flushes
  /// between supersteps, and drains mailboxes, so any backend passing
  /// tests/transport_conformance_test.cc slots in with bit-identical
  /// results (tests/message_path_golden_test.cc).
  Transport* transport = nullptr;
};

/// Per-superstep observability (drives the Fig. 3(4)-style analytics).
struct RoundMetrics {
  uint32_t round = 0;
  double seconds = 0;
  uint64_t messages = 0;
  uint64_t bytes = 0;
  /// Update parameters whose values changed in this round's messages.
  uint64_t updated_params = 0;
  double global = 0;
};

struct EngineMetrics {
  uint32_t supersteps = 0;
  double peval_seconds = 0;
  double inceval_seconds = 0;
  double coordinator_seconds = 0;
  double assemble_seconds = 0;
  double total_seconds = 0;
  uint64_t messages = 0;
  uint64_t bytes = 0;
  uint64_t monotonicity_violations = 0;
  std::vector<RoundMetrics> rounds;

  std::string ToString() const {
    char buf[256];
    std::snprintf(buf, sizeof(buf),
                  "supersteps=%u total=%.3fs (peval=%.3fs inceval=%.3fs "
                  "coord=%.3fs assemble=%.3fs) msgs=%llu bytes=%llu",
                  supersteps, total_seconds, peval_seconds, inceval_seconds,
                  coordinator_seconds, assemble_seconds,
                  static_cast<unsigned long long>(messages),
                  static_cast<unsigned long long>(bytes));
    return buf;
  }
};

/// GRAPE's parallel engine (Sec. 2.2): a coordinator P0 plus n workers
/// executing the PIE fixed point under BSP. Workers run the *sequential*
/// PEval / IncEval of the plugged-in program on whole fragments; the engine
/// extracts changed update parameters, serializes them, routes them through
/// the coordinator (which resolves conflicts with the app's aggregate
/// function), and terminates when no parameter changes anywhere.
template <PIEProgram App>
class GrapeEngine {
 public:
  using Query = typename App::QueryType;
  using Value = typename App::ValueType;
  using Agg = typename App::AggregatorType;
  using Partial = typename App::PartialType;
  using Output = typename App::OutputType;

  GrapeEngine(const FragmentedGraph& fg, App prototype,
              EngineOptions options = {})
      : fg_(fg),
        options_(options),
        owned_world_(options.transport ? nullptr
                                       : std::make_unique<CommWorld>(
                                             fg.num_fragments() + 1)),
        world_(options.transport ? options.transport : owned_world_.get()),
        pool_(options.num_threads == 0 ? fg.num_fragments()
                                       : options.num_threads) {
    const FragmentId n = fg_.num_fragments();
    GRAPE_CHECK(world_->size() == n + 1)
        << "transport sized " << world_->size() << " for " << n
        << " fragments (need num_fragments()+1 ranks)";
    apps_.assign(n, prototype);
    stores_.resize(n);
    updated_.resize(n);
    phase_status_.assign(n, Status::OK());
    flush_dirty_.assign(n, 0);
    pending_sends_.resize(n);
    if (options_.check_monotonicity) prev_flushed_.resize(n);

    // Dense message-path state, all sized once and reused every superstep.
    changed_scratch_.resize(n);
    reset_scratch_.resize(n);
    staging_.resize(n);
    staged_dsts_.resize(n);
    for (FragmentId i = 0; i < n; ++i) staging_[i].resize(n);
    apply_lids_.resize(n);
    apply_values_.resize(n);
    coord_batches_.resize(n);
    for (FragmentId i = 0; i < n; ++i) {
      coord_batches_[i].slot_round.assign(fg_.fragments[i].num_local(), 0);
      coord_batches_[i].slot_pos.resize(fg_.fragments[i].num_local());
    }
  }

  GrapeEngine(const GrapeEngine&) = delete;
  GrapeEngine& operator=(const GrapeEngine&) = delete;

  /// Runs the full PEval → IncEval* → Assemble pipeline for one query.
  Result<Output> Run(const Query& query) {
    WallTimer total_timer;
    metrics_ = EngineMetrics{};
    world_->ResetStats();
    recorded_messages_ = 0;
    recorded_bytes_ = 0;
    const FragmentId n = fg_.num_fragments();

    for (FragmentId i = 0; i < n; ++i) {
      stores_[i].Init(fg_.fragments[i].num_local(), apps_[i].InitValue());
      updated_[i].clear();
      if (options_.check_monotonicity) {
        prev_flushed_[i].assign(fg_.fragments[i].num_local(),
                                apps_[i].InitValue());
      }
    }

    // Superstep 1: partial evaluation on every fragment in parallel.
    // Messages are staged inside the parallel phase and dispatched after
    // the barrier, so nothing a worker sends can be consumed in the same
    // superstep (BSP delivery semantics).
    {
      ScopedTimer t(&metrics_.peval_seconds);
      pool_.ParallelFor(0, n, [&](size_t i) {
        apps_[i].PEval(query, fg_.fragments[i], stores_[i]);
        FlushWorker(static_cast<FragmentId>(i));
      });
      metrics_.supersteps = 1;
    }
    GRAPE_RETURN_NOT_OK(CheckPhase());
    uint64_t direct = 0;
    GRAPE_ASSIGN_OR_RETURN(direct, DispatchSends());
    RecordRound(0.0);
    uint64_t dirty = TotalDirty();

    // Supersteps 2..: coordinator routes, workers incrementally evaluate.
    // Termination per Sec. 2.2(3): every worker inactive and no update
    // parameter changed anywhere — i.e. neither in-flight messages (routed
    // through the coordinator or sent directly) nor local parameter changes
    // (dirty) remain.
    while (metrics_.supersteps < options_.max_supersteps) {
      double global = 0;
      for (FragmentId i = 0; i < n; ++i) global += apps_[i].GlobalValue();
      if (!metrics_.rounds.empty()) metrics_.rounds.back().global = global;
      if (apps_[0].ShouldTerminate(metrics_.supersteps, global)) break;

      uint64_t routed = 0;
      {
        ScopedTimer t(&metrics_.coordinator_seconds);
        GRAPE_ASSIGN_OR_RETURN(routed, CoordinatorRoute());
      }
      if (routed + direct == 0 && dirty == 0) break;  // simultaneous fixpoint

      WallTimer round_timer;
      {
        ScopedTimer t(&metrics_.inceval_seconds);
        pool_.ParallelFor(0, n, [&](size_t i) {
          auto fid = static_cast<FragmentId>(i);
          Status s = ApplyMessages(fid);
          if (!s.ok()) {
            phase_status_[i] = s;
            return;
          }
          if (!options_.incremental) {
            // Ablation: pretend everything changed, forcing IncEval to
            // re-evaluate the entire fragment every round.
            updated_[i].clear();
            for (LocalId v = 0; v < fg_.fragments[i].num_inner(); ++v) {
              updated_[i].push_back(v);
            }
          }
          apps_[i].IncEval(query, fg_.fragments[i], stores_[i], updated_[i]);
          FlushWorker(fid);
        });
      }
      metrics_.supersteps++;
      GRAPE_RETURN_NOT_OK(CheckPhase());
      GRAPE_ASSIGN_OR_RETURN(direct, DispatchSends());
      RecordRound(round_timer.ElapsedSeconds());
      dirty = TotalDirty();
      if (options_.verbose) {
        GRAPE_LOG(kInfo) << "superstep " << metrics_.supersteps << ": "
                         << metrics_.rounds.back().messages << " msgs";
      }
    }

    // Termination: pull partial results and Assemble at the coordinator.
    Output output;
    {
      ScopedTimer t(&metrics_.assemble_seconds);
      std::vector<Partial> partials(n);
      pool_.ParallelFor(0, n, [&](size_t i) {
        partials[i] =
            apps_[i].GetPartial(query, fg_.fragments[i], stores_[i]);
      });
      output = App::Assemble(query, std::move(partials));
    }

    CommStats cs = world_->stats();
    metrics_.messages = cs.messages;
    metrics_.bytes = cs.bytes;
    metrics_.total_seconds = total_timer.ElapsedSeconds();
    return output;
  }

  /// Incremental evaluation across *graph updates* (Sec. 2.1: IncEval
  /// computes Q(G ⊕ M) from Q(G)): re-answers `query` on THIS engine's
  /// (already updated) fragmented graph, warm-started from the converged
  /// parameters of `previous` — an engine that ran the same query on the
  /// pre-update graph. `touched` lists the global endpoints of the update M
  /// (e.g. inserted edges' endpoints); only they seed IncEval, so the work
  /// is proportional to the affected region, not |G|.
  ///
  /// Soundness: for monotonic apps this supports change that moves
  /// parameters down the partial order (e.g. edge insertions for SSSP/CC).
  /// Updates that could move values against the order (deletions under min)
  /// require a dedicated IncEval and should fall back to Run().
  Result<Output> RunIncremental(const Query& query,
                                const GrapeEngine& previous,
                                const std::vector<VertexId>& touched) {
    WallTimer total_timer;
    metrics_ = EngineMetrics{};
    world_->ResetStats();
    recorded_messages_ = 0;
    recorded_bytes_ = 0;
    const FragmentId n = fg_.num_fragments();

    // Warm start: every local copy adopts the owner's converged value from
    // the previous run (unseen vertices keep InitValue).
    for (FragmentId i = 0; i < n; ++i) {
      const Fragment& frag = fg_.fragments[i];
      stores_[i].Init(frag.num_local(), apps_[i].InitValue());
      for (LocalId lid = 0; lid < frag.num_local(); ++lid) {
        VertexId gid = frag.Gid(lid);
        if (gid >= previous.fg_.owner->size()) continue;  // new vertex
        FragmentId prev_owner = (*previous.fg_.owner)[gid];
        const Fragment& prev_frag = previous.fg_.fragments[prev_owner];
        LocalId prev_lid = prev_frag.Lid(gid);
        if (prev_lid == kInvalidLocal) continue;
        stores_[i].UntrackedRef(lid) =
            previous.stores_[prev_owner].Get(prev_lid);
      }
      updated_[i].clear();
      if (options_.check_monotonicity) {
        prev_flushed_[i].assign(frag.num_local(), apps_[i].InitValue());
      }
    }
    // Seed M: the update's touched vertices (all local copies).
    for (VertexId gid : touched) {
      for (FragmentId i = 0; i < n; ++i) {
        LocalId lid = fg_.fragments[i].Lid(gid);
        if (lid != kInvalidLocal) updated_[i].push_back(lid);
      }
    }

    // IncEval-only fixed point (superstep 1 is the first IncEval).
    {
      ScopedTimer t(&metrics_.inceval_seconds);
      pool_.ParallelFor(0, n, [&](size_t i) {
        apps_[i].IncEval(query, fg_.fragments[i], stores_[i], updated_[i]);
        FlushWorker(static_cast<FragmentId>(i));
      });
      metrics_.supersteps = 1;
    }
    GRAPE_RETURN_NOT_OK(CheckPhase());
    uint64_t direct = 0;
    GRAPE_ASSIGN_OR_RETURN(direct, DispatchSends());
    RecordRound(0.0);
    uint64_t dirty = TotalDirty();

    while (metrics_.supersteps < options_.max_supersteps) {
      double global = 0;
      for (FragmentId i = 0; i < n; ++i) global += apps_[i].GlobalValue();
      if (apps_[0].ShouldTerminate(metrics_.supersteps, global)) break;
      uint64_t routed = 0;
      {
        ScopedTimer t(&metrics_.coordinator_seconds);
        GRAPE_ASSIGN_OR_RETURN(routed, CoordinatorRoute());
      }
      if (routed + direct == 0 && dirty == 0) break;
      WallTimer round_timer;
      {
        ScopedTimer t(&metrics_.inceval_seconds);
        pool_.ParallelFor(0, n, [&](size_t i) {
          auto fid = static_cast<FragmentId>(i);
          Status s = ApplyMessages(fid);
          if (!s.ok()) {
            phase_status_[i] = s;
            return;
          }
          apps_[i].IncEval(query, fg_.fragments[i], stores_[i], updated_[i]);
          FlushWorker(fid);
        });
      }
      metrics_.supersteps++;
      GRAPE_RETURN_NOT_OK(CheckPhase());
      GRAPE_ASSIGN_OR_RETURN(direct, DispatchSends());
      RecordRound(round_timer.ElapsedSeconds());
      dirty = TotalDirty();
    }

    Output output;
    {
      ScopedTimer t(&metrics_.assemble_seconds);
      std::vector<Partial> partials(n);
      pool_.ParallelFor(0, n, [&](size_t i) {
        partials[i] =
            apps_[i].GetPartial(query, fg_.fragments[i], stores_[i]);
      });
      output = App::Assemble(query, std::move(partials));
    }
    CommStats cs = world_->stats();
    metrics_.messages = cs.messages;
    metrics_.bytes = cs.bytes;
    metrics_.total_seconds = total_timer.ElapsedSeconds();
    return output;
  }

  const EngineMetrics& metrics() const { return metrics_; }

  /// Post-run parameter access (tests assert on converged stores).
  const ParamStore<Value>& params(FragmentId i) const { return stores_[i]; }

  FragmentId num_workers() const { return fg_.num_fragments(); }

 private:
  /// Rank of worker i in the comm world (rank 0 is the coordinator).
  static uint32_t RankOf(FragmentId i) { return i + 1; }

  Status CheckPhase() {
    for (Status& s : phase_status_) {
      if (!s.ok()) {
        Status out = s;
        s = Status::OK();
        return out;
      }
    }
    return Status::OK();
  }

  void RecordRound(double seconds) {
    // Running totals, not a re-sum of all prior rounds (which made this
    // O(rounds^2) over a long fixed point).
    CommStats cs = world_->stats();
    RoundMetrics rm;
    rm.round = metrics_.supersteps;
    rm.seconds = seconds;
    rm.messages = cs.messages - recorded_messages_;
    rm.bytes = cs.bytes - recorded_bytes_;
    recorded_messages_ = cs.messages;
    recorded_bytes_ = cs.bytes;
    uint64_t updated = 0;
    for (const auto& u : updated_) updated += u.size();
    rm.updated_params = updated;
    metrics_.rounds.push_back(rm);
  }

  /// Extracts changed in-scope parameters of worker i, serializes them and
  /// ships them to the coordinator, one buffer per destination fragment.
  uint64_t TotalDirty() const {
    uint64_t total = 0;
    for (uint64_t d : flush_dirty_) total += d;
    return total;
  }

  void FlushWorker(FragmentId i) {
    const Fragment& frag = fg_.fragments[i];
    ParamStore<Value>& store = stores_[i];
    std::vector<LocalId>& changed = changed_scratch_[i];
    store.TakeChangedInto(&changed);
    std::vector<std::pair<VertexId, Value>> remote = store.TakeRemote();
    flush_dirty_[i] = changed.size() + remote.size();
    if (changed.empty() && remote.empty()) return;

    // Dense staging: one reusable (dst_lid, value) block per destination
    // fragment, addressed by the routing plan precomputed at
    // FragmentBuilder time — the hot path never hashes a gid.
    std::vector<RecordBlock<Value>>& staging = staging_[i];
    std::vector<FragmentId>& dsts = staged_dsts_[i];
    auto stage = [&staging, &dsts](FragmentId dst, LocalId dst_lid,
                                   const Value& value) {
      RecordBlock<Value>& block = staging[dst];
      if (block.empty()) dsts.push_back(dst);
      block.Append(dst_lid, value);
    };

    std::vector<LocalId>& reset_list = reset_scratch_[i];
    for (LocalId lid : changed) {
      const bool to_owner =
          App::kScope != MessageScope::kToMirrors && frag.IsOuter(lid);
      const bool to_mirrors =
          App::kScope != MessageScope::kToOwner && frag.IsBorder(lid);
      if (to_owner) {
        stage(frag.OuterOwner(lid), frag.OuterOwnerLid(lid), store.Get(lid));
        if (App::kResetAfterFlush) reset_list.push_back(lid);
      }
      if (to_mirrors) {
        auto mirror_frags = frag.MirrorFragments(lid);
        auto mirror_lids = frag.MirrorDstLids(lid);
        for (size_t k = 0; k < mirror_frags.size(); ++k) {
          stage(mirror_frags[k], mirror_lids[k], store.Get(lid));
        }
      }
      if (options_.check_monotonicity && Agg::kMonotonic &&
          (to_owner || to_mirrors)) {
        if (!Agg::InOrder(store.Get(lid), prev_flushed_[i][lid])) {
          metrics_.monotonicity_violations++;
        }
        prev_flushed_[i][lid] = store.Get(lid);
      }
    }
    for (const auto& [gid, value] : remote) {
      stage(frag.OwnerOf(gid), frag.LidAtOwner(gid), value);
    }

    // Deterministic destination order. Mirror refreshes have a single
    // writer (the owner), so they need no conflict resolution and travel
    // directly worker-to-worker; owner-bound values carry potential
    // conflicts and go through the coordinator's aggregate function.
    std::sort(dsts.begin(), dsts.end());

    const bool direct = App::kScope == MessageScope::kToMirrors;
    for (FragmentId dst : dsts) {
      RecordBlock<Value>& block = staging[dst];
      Encoder enc(world_->buffer_pool().Acquire());
      if (!direct) enc.WriteU32(dst);
      EncodeRecordBlock(enc, block);
      pending_sends_[i].push_back(
          PendingSend{direct ? RankOf(dst) : kCoordinatorRank,
                      direct ? block.size() : 0, enc.TakeBuffer()});
      block.clear();
    }
    dsts.clear();
    for (LocalId lid : reset_list) {
      store.UntrackedRef(lid) = apps_[i].InitValue();
    }
    reset_list.clear();
    store.RecycleRemote(std::move(remote));
  }

  /// Ships every staged buffer (runs between parallel phases); returns the
  /// number of directly-sent updates (coordinator-bound updates are counted
  /// when routed). A failed Send surfaces as a Status like every other
  /// engine phase rather than aborting the process. The trailing Flush is
  /// the BSP delivery barrier: on asynchronous backends (socket) it blocks
  /// until every frame is visible at its destination, so the next phase
  /// observes exactly what an in-process mailbox would.
  Result<uint64_t> DispatchSends() {
    uint64_t direct = 0;
    for (FragmentId i = 0; i < fg_.num_fragments(); ++i) {
      for (PendingSend& p : pending_sends_[i]) {
        direct += p.direct_updates;
        GRAPE_RETURN_NOT_OK(world_->Send(RankOf(i), p.rank, kTagParamUpdate,
                                        std::move(p.payload)));
      }
      pending_sends_[i].clear();
    }
    GRAPE_RETURN_NOT_OK(world_->Flush());
    return direct;
  }

  /// Coordinator step: collects all pending parameter updates, resolves
  /// conflicts per (destination, vertex) with the app's aggregate function,
  /// and forwards one consolidated buffer to each destination worker.
  /// Returns the number of routed updates (0 signals the fixed point).
  Result<uint64_t> CoordinatorRoute() {
    std::vector<RtMessage> inbox = world_->DrainAll(kCoordinatorRank);
    if (inbox.empty()) return uint64_t{0};
    // Mailbox order is FIFO per sender; sort by sender for a deterministic
    // merge independent of thread scheduling.
    std::stable_sort(inbox.begin(), inbox.end(),
                     [](const RtMessage& a, const RtMessage& b) {
                       return a.from < b.from;
                     });

    // Dense aggregation: one persistent slot array per destination,
    // indexed by dst_lid. Round tags take the place of clearing — a slot
    // holding an older round number is vacant this round — so the O(|F_i|)
    // arrays are never re-initialized. First-seen append order plus the
    // sender sort above reproduces the seed path's merge order exactly.
    ++coord_round_;
    coord_touched_.clear();
    for (RtMessage& msg : inbox) {
      Decoder dec(msg.payload);
      uint32_t dst = 0;
      GRAPE_RETURN_NOT_OK(dec.ReadU32(&dst));
      if (dst >= coord_batches_.size()) {
        return Status::Corruption("routed batch for unknown fragment " +
                                  std::to_string(dst));
      }
      GRAPE_RETURN_NOT_OK(
          DecodeRecordBlock(dec, &route_lids_, &route_values_));
      CoordBatch& batch = coord_batches_[dst];
      if (batch.round != coord_round_) {
        batch.round = coord_round_;
        batch.lids.clear();
        batch.values.clear();
        coord_touched_.push_back(dst);
      }
      for (size_t k = 0; k < route_lids_.size(); ++k) {
        const LocalId lid = route_lids_[k];
        if (lid >= batch.slot_round.size()) {
          return Status::Corruption("routed update addresses lid " +
                                    std::to_string(lid) +
                                    " outside fragment " +
                                    std::to_string(dst));
        }
        if (batch.slot_round[lid] != coord_round_) {
          batch.slot_round[lid] = coord_round_;
          batch.slot_pos[lid] = static_cast<uint32_t>(batch.lids.size());
          batch.lids.push_back(lid);
          batch.values.push_back(std::move(route_values_[k]));
        } else {
          Agg::Aggregate(batch.values[batch.slot_pos[lid]],
                         route_values_[k]);
        }
      }
      world_->buffer_pool().Release(std::move(msg.payload));
    }

    std::sort(coord_touched_.begin(), coord_touched_.end());

    uint64_t routed = 0;
    for (FragmentId dst : coord_touched_) {
      CoordBatch& batch = coord_batches_[dst];
      Encoder enc(world_->buffer_pool().Acquire());
      EncodeOwnedRecords(enc, batch.lids, batch.values);
      routed += batch.lids.size();
      GRAPE_RETURN_NOT_OK(world_->Send(kCoordinatorRank, RankOf(dst),
                                      kTagParamUpdate, enc.TakeBuffer()));
    }
    // Delivery barrier: consolidated batches must reach the workers before
    // the ApplyMessages phase starts polling its mailboxes.
    GRAPE_RETURN_NOT_OK(world_->Flush());
    return routed;
  }

  /// Applies routed updates to worker i's parameters via the aggregate
  /// function; vertices whose value actually changed form M_i, the update
  /// set handed to IncEval.
  Status ApplyMessages(FragmentId i) {
    updated_[i].clear();
    ParamStore<Value>& store = stores_[i];
    std::vector<uint32_t>& lids = apply_lids_[i];
    std::vector<Value>& values = apply_values_[i];
    while (auto msg = world_->TryRecv(RankOf(i), kTagParamUpdate)) {
      Decoder dec(msg->payload);
      // Messages carry destination-local ids straight off the routing
      // plan, so application is a direct array index — no gid hash.
      GRAPE_RETURN_NOT_OK(DecodeRecordBlock(dec, &lids, &values));
      for (size_t k = 0; k < lids.size(); ++k) {
        const LocalId lid = lids[k];
        if (lid >= static_cast<LocalId>(store.size())) {
          return Status::Internal("routed update addresses lid " +
                                  std::to_string(lid) +
                                  " outside fragment " + std::to_string(i));
        }
        // No dirty-marking here: message application is not a local change
        // to re-broadcast; only IncEval's own writes are.
        if (Agg::Aggregate(store.UntrackedRef(lid), values[k])) {
          updated_[i].push_back(lid);
        }
      }
      world_->buffer_pool().Release(std::move(msg->payload));
    }
    std::sort(updated_[i].begin(), updated_[i].end());
    updated_[i].erase(std::unique(updated_[i].begin(), updated_[i].end()),
                      updated_[i].end());
    return Status::OK();
  }

  const FragmentedGraph& fg_;
  EngineOptions options_;
  std::unique_ptr<Transport> owned_world_;  // only when no external substrate
  Transport* world_;                        // the substrate actually used
  ThreadPool pool_;

  std::vector<App> apps_;                    // one instance per worker
  std::vector<ParamStore<Value>> stores_;    // x̄_i per fragment
  std::vector<std::vector<LocalId>> updated_;  // M_i per fragment
  struct PendingSend {
    uint32_t rank;
    uint64_t direct_updates;  // 0 for coordinator-bound buffers
    std::vector<uint8_t> payload;
  };

  std::vector<Status> phase_status_;
  std::vector<uint64_t> flush_dirty_;  // parameters changed at last flush
  std::vector<std::vector<PendingSend>> pending_sends_;
  std::vector<std::vector<Value>> prev_flushed_;  // monotonicity tracking
  EngineMetrics metrics_;

  // --- Dense message-path state (allocated once, reused every superstep).

  // Flush: per-worker scratch and per-(worker, destination) staging blocks.
  std::vector<std::vector<LocalId>> changed_scratch_;
  std::vector<std::vector<LocalId>> reset_scratch_;
  std::vector<std::vector<RecordBlock<Value>>> staging_;
  std::vector<std::vector<FragmentId>> staged_dsts_;

  // Apply: per-worker decode scratch.
  std::vector<std::vector<uint32_t>> apply_lids_;
  std::vector<std::vector<Value>> apply_values_;

  // Coordinator: per-destination aggregation with round-tagged slots.
  struct CoordBatch {
    std::vector<uint32_t> lids;    // first-seen order, the merge order
    std::vector<Value> values;     // parallel to lids
    std::vector<uint32_t> slot_round;  // by dst_lid: last round seen
    std::vector<uint32_t> slot_pos;    // by dst_lid: index into lids/values
    uint32_t round = 0;
  };
  std::vector<CoordBatch> coord_batches_;
  std::vector<FragmentId> coord_touched_;
  std::vector<uint32_t> route_lids_;   // coordinator decode scratch
  std::vector<Value> route_values_;
  uint32_t coord_round_ = 0;

  // Per-round communication totals already attributed to a RoundMetrics.
  uint64_t recorded_messages_ = 0;
  uint64_t recorded_bytes_ = 0;
};

}  // namespace grape

#endif  // GRAPE_CORE_ENGINE_H_
