#ifndef GRAPE_CORE_ENGINE_H_
#define GRAPE_CORE_ENGINE_H_

#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <string>
#include <unordered_map>
#include <vector>

#include "core/codec.h"
#include "core/pie.h"
#include "rt/comm_world.h"
#include "util/logging.h"
#include "util/thread_pool.h"
#include "util/timer.h"

namespace grape {

/// Engine configuration (the demo's "play panel" knobs).
struct EngineOptions {
  /// Worker threads; 0 means one per fragment.
  uint32_t num_threads = 0;
  /// Hard stop against non-terminating (non-monotonic, mis-specified) apps.
  uint32_t max_supersteps = 1000000;
  /// When false, every round re-evaluates from *all* inner vertices instead
  /// of only the message-affected ones — the "no IncEval" ablation used by
  /// bench_inceval_bounded to demonstrate boundedness (Sec. 2.2(2)).
  bool incremental = true;
  /// Track the partial order of monotonic aggregators and count violations
  /// (the Assurance Theorem's side condition).
  bool check_monotonicity = false;
  bool verbose = false;
};

/// Per-superstep observability (drives the Fig. 3(4)-style analytics).
struct RoundMetrics {
  uint32_t round = 0;
  double seconds = 0;
  uint64_t messages = 0;
  uint64_t bytes = 0;
  /// Update parameters whose values changed in this round's messages.
  uint64_t updated_params = 0;
  double global = 0;
};

struct EngineMetrics {
  uint32_t supersteps = 0;
  double peval_seconds = 0;
  double inceval_seconds = 0;
  double coordinator_seconds = 0;
  double assemble_seconds = 0;
  double total_seconds = 0;
  uint64_t messages = 0;
  uint64_t bytes = 0;
  uint64_t monotonicity_violations = 0;
  std::vector<RoundMetrics> rounds;

  std::string ToString() const {
    char buf[256];
    std::snprintf(buf, sizeof(buf),
                  "supersteps=%u total=%.3fs (peval=%.3fs inceval=%.3fs "
                  "coord=%.3fs assemble=%.3fs) msgs=%llu bytes=%llu",
                  supersteps, total_seconds, peval_seconds, inceval_seconds,
                  coordinator_seconds, assemble_seconds,
                  static_cast<unsigned long long>(messages),
                  static_cast<unsigned long long>(bytes));
    return buf;
  }
};

/// GRAPE's parallel engine (Sec. 2.2): a coordinator P0 plus n workers
/// executing the PIE fixed point under BSP. Workers run the *sequential*
/// PEval / IncEval of the plugged-in program on whole fragments; the engine
/// extracts changed update parameters, serializes them, routes them through
/// the coordinator (which resolves conflicts with the app's aggregate
/// function), and terminates when no parameter changes anywhere.
template <PIEProgram App>
class GrapeEngine {
 public:
  using Query = typename App::QueryType;
  using Value = typename App::ValueType;
  using Agg = typename App::AggregatorType;
  using Partial = typename App::PartialType;
  using Output = typename App::OutputType;

  GrapeEngine(const FragmentedGraph& fg, App prototype,
              EngineOptions options = {})
      : fg_(fg),
        options_(options),
        world_(fg.num_fragments() + 1),
        pool_(options.num_threads == 0 ? fg.num_fragments()
                                       : options.num_threads) {
    const FragmentId n = fg_.num_fragments();
    apps_.assign(n, prototype);
    stores_.resize(n);
    updated_.resize(n);
    phase_status_.assign(n, Status::OK());
    flush_dirty_.assign(n, 0);
    pending_sends_.resize(n);
    if (options_.check_monotonicity) prev_flushed_.resize(n);
  }

  GrapeEngine(const GrapeEngine&) = delete;
  GrapeEngine& operator=(const GrapeEngine&) = delete;

  /// Runs the full PEval → IncEval* → Assemble pipeline for one query.
  Result<Output> Run(const Query& query) {
    WallTimer total_timer;
    metrics_ = EngineMetrics{};
    world_.ResetStats();
    const FragmentId n = fg_.num_fragments();

    for (FragmentId i = 0; i < n; ++i) {
      stores_[i].Init(fg_.fragments[i].num_local(), apps_[i].InitValue());
      updated_[i].clear();
      if (options_.check_monotonicity) {
        prev_flushed_[i].assign(fg_.fragments[i].num_local(),
                                apps_[i].InitValue());
      }
    }

    // Superstep 1: partial evaluation on every fragment in parallel.
    // Messages are staged inside the parallel phase and dispatched after
    // the barrier, so nothing a worker sends can be consumed in the same
    // superstep (BSP delivery semantics).
    {
      ScopedTimer t(&metrics_.peval_seconds);
      pool_.ParallelFor(0, n, [&](size_t i) {
        apps_[i].PEval(query, fg_.fragments[i], stores_[i]);
        FlushWorker(static_cast<FragmentId>(i));
      });
      metrics_.supersteps = 1;
    }
    GRAPE_RETURN_NOT_OK(CheckPhase());
    uint64_t direct = DispatchSends();
    RecordRound(0.0);
    uint64_t dirty = TotalDirty();

    // Supersteps 2..: coordinator routes, workers incrementally evaluate.
    // Termination per Sec. 2.2(3): every worker inactive and no update
    // parameter changed anywhere — i.e. neither in-flight messages (routed
    // through the coordinator or sent directly) nor local parameter changes
    // (dirty) remain.
    while (metrics_.supersteps < options_.max_supersteps) {
      double global = 0;
      for (FragmentId i = 0; i < n; ++i) global += apps_[i].GlobalValue();
      if (!metrics_.rounds.empty()) metrics_.rounds.back().global = global;
      if (apps_[0].ShouldTerminate(metrics_.supersteps, global)) break;

      uint64_t routed = 0;
      {
        ScopedTimer t(&metrics_.coordinator_seconds);
        GRAPE_ASSIGN_OR_RETURN(routed, CoordinatorRoute());
      }
      if (routed + direct == 0 && dirty == 0) break;  // simultaneous fixpoint

      WallTimer round_timer;
      {
        ScopedTimer t(&metrics_.inceval_seconds);
        pool_.ParallelFor(0, n, [&](size_t i) {
          auto fid = static_cast<FragmentId>(i);
          Status s = ApplyMessages(fid);
          if (!s.ok()) {
            phase_status_[i] = s;
            return;
          }
          if (!options_.incremental) {
            // Ablation: pretend everything changed, forcing IncEval to
            // re-evaluate the entire fragment every round.
            updated_[i].clear();
            for (LocalId v = 0; v < fg_.fragments[i].num_inner(); ++v) {
              updated_[i].push_back(v);
            }
          }
          apps_[i].IncEval(query, fg_.fragments[i], stores_[i], updated_[i]);
          FlushWorker(fid);
        });
      }
      metrics_.supersteps++;
      GRAPE_RETURN_NOT_OK(CheckPhase());
      direct = DispatchSends();
      RecordRound(round_timer.ElapsedSeconds());
      dirty = TotalDirty();
      if (options_.verbose) {
        GRAPE_LOG(kInfo) << "superstep " << metrics_.supersteps << ": "
                         << metrics_.rounds.back().messages << " msgs";
      }
    }

    // Termination: pull partial results and Assemble at the coordinator.
    Output output;
    {
      ScopedTimer t(&metrics_.assemble_seconds);
      std::vector<Partial> partials(n);
      pool_.ParallelFor(0, n, [&](size_t i) {
        partials[i] =
            apps_[i].GetPartial(query, fg_.fragments[i], stores_[i]);
      });
      output = App::Assemble(query, std::move(partials));
    }

    CommStats cs = world_.stats();
    metrics_.messages = cs.messages;
    metrics_.bytes = cs.bytes;
    metrics_.total_seconds = total_timer.ElapsedSeconds();
    return output;
  }

  /// Incremental evaluation across *graph updates* (Sec. 2.1: IncEval
  /// computes Q(G ⊕ M) from Q(G)): re-answers `query` on THIS engine's
  /// (already updated) fragmented graph, warm-started from the converged
  /// parameters of `previous` — an engine that ran the same query on the
  /// pre-update graph. `touched` lists the global endpoints of the update M
  /// (e.g. inserted edges' endpoints); only they seed IncEval, so the work
  /// is proportional to the affected region, not |G|.
  ///
  /// Soundness: for monotonic apps this supports change that moves
  /// parameters down the partial order (e.g. edge insertions for SSSP/CC).
  /// Updates that could move values against the order (deletions under min)
  /// require a dedicated IncEval and should fall back to Run().
  Result<Output> RunIncremental(const Query& query,
                                const GrapeEngine& previous,
                                const std::vector<VertexId>& touched) {
    WallTimer total_timer;
    metrics_ = EngineMetrics{};
    world_.ResetStats();
    const FragmentId n = fg_.num_fragments();

    // Warm start: every local copy adopts the owner's converged value from
    // the previous run (unseen vertices keep InitValue).
    for (FragmentId i = 0; i < n; ++i) {
      const Fragment& frag = fg_.fragments[i];
      stores_[i].Init(frag.num_local(), apps_[i].InitValue());
      for (LocalId lid = 0; lid < frag.num_local(); ++lid) {
        VertexId gid = frag.Gid(lid);
        if (gid >= previous.fg_.owner->size()) continue;  // new vertex
        FragmentId prev_owner = (*previous.fg_.owner)[gid];
        const Fragment& prev_frag = previous.fg_.fragments[prev_owner];
        LocalId prev_lid = prev_frag.Lid(gid);
        if (prev_lid == kInvalidLocal) continue;
        stores_[i].UntrackedRef(lid) =
            previous.stores_[prev_owner].Get(prev_lid);
      }
      updated_[i].clear();
      if (options_.check_monotonicity) {
        prev_flushed_[i].assign(frag.num_local(), apps_[i].InitValue());
      }
    }
    // Seed M: the update's touched vertices (all local copies).
    for (VertexId gid : touched) {
      for (FragmentId i = 0; i < n; ++i) {
        LocalId lid = fg_.fragments[i].Lid(gid);
        if (lid != kInvalidLocal) updated_[i].push_back(lid);
      }
    }

    // IncEval-only fixed point (superstep 1 is the first IncEval).
    {
      ScopedTimer t(&metrics_.inceval_seconds);
      pool_.ParallelFor(0, n, [&](size_t i) {
        apps_[i].IncEval(query, fg_.fragments[i], stores_[i], updated_[i]);
        FlushWorker(static_cast<FragmentId>(i));
      });
      metrics_.supersteps = 1;
    }
    GRAPE_RETURN_NOT_OK(CheckPhase());
    uint64_t direct = DispatchSends();
    RecordRound(0.0);
    uint64_t dirty = TotalDirty();

    while (metrics_.supersteps < options_.max_supersteps) {
      double global = 0;
      for (FragmentId i = 0; i < n; ++i) global += apps_[i].GlobalValue();
      if (apps_[0].ShouldTerminate(metrics_.supersteps, global)) break;
      uint64_t routed = 0;
      {
        ScopedTimer t(&metrics_.coordinator_seconds);
        GRAPE_ASSIGN_OR_RETURN(routed, CoordinatorRoute());
      }
      if (routed + direct == 0 && dirty == 0) break;
      WallTimer round_timer;
      {
        ScopedTimer t(&metrics_.inceval_seconds);
        pool_.ParallelFor(0, n, [&](size_t i) {
          auto fid = static_cast<FragmentId>(i);
          Status s = ApplyMessages(fid);
          if (!s.ok()) {
            phase_status_[i] = s;
            return;
          }
          apps_[i].IncEval(query, fg_.fragments[i], stores_[i], updated_[i]);
          FlushWorker(fid);
        });
      }
      metrics_.supersteps++;
      GRAPE_RETURN_NOT_OK(CheckPhase());
      direct = DispatchSends();
      RecordRound(round_timer.ElapsedSeconds());
      dirty = TotalDirty();
    }

    Output output;
    {
      ScopedTimer t(&metrics_.assemble_seconds);
      std::vector<Partial> partials(n);
      pool_.ParallelFor(0, n, [&](size_t i) {
        partials[i] =
            apps_[i].GetPartial(query, fg_.fragments[i], stores_[i]);
      });
      output = App::Assemble(query, std::move(partials));
    }
    CommStats cs = world_.stats();
    metrics_.messages = cs.messages;
    metrics_.bytes = cs.bytes;
    metrics_.total_seconds = total_timer.ElapsedSeconds();
    return output;
  }

  const EngineMetrics& metrics() const { return metrics_; }

  /// Post-run parameter access (tests assert on converged stores).
  const ParamStore<Value>& params(FragmentId i) const { return stores_[i]; }

  FragmentId num_workers() const { return fg_.num_fragments(); }

 private:
  /// Rank of worker i in the comm world (rank 0 is the coordinator).
  static uint32_t RankOf(FragmentId i) { return i + 1; }

  Status CheckPhase() {
    for (Status& s : phase_status_) {
      if (!s.ok()) {
        Status out = s;
        s = Status::OK();
        return out;
      }
    }
    return Status::OK();
  }

  void RecordRound(double seconds) {
    CommStats cs = world_.stats();
    RoundMetrics rm;
    rm.round = metrics_.supersteps;
    rm.seconds = seconds;
    uint64_t prev_msgs = 0;
    uint64_t prev_bytes = 0;
    for (const RoundMetrics& r : metrics_.rounds) {
      prev_msgs += r.messages;
      prev_bytes += r.bytes;
    }
    rm.messages = cs.messages - prev_msgs;
    rm.bytes = cs.bytes - prev_bytes;
    uint64_t updated = 0;
    for (const auto& u : updated_) updated += u.size();
    rm.updated_params = updated;
    metrics_.rounds.push_back(rm);
  }

  /// Extracts changed in-scope parameters of worker i, serializes them and
  /// ships them to the coordinator, one buffer per destination fragment.
  uint64_t TotalDirty() const {
    uint64_t total = 0;
    for (uint64_t d : flush_dirty_) total += d;
    return total;
  }

  void FlushWorker(FragmentId i) {
    const Fragment& frag = fg_.fragments[i];
    ParamStore<Value>& store = stores_[i];
    std::vector<LocalId> changed = store.TakeChanged();
    std::vector<std::pair<VertexId, Value>> remote = store.TakeRemote();
    flush_dirty_[i] = changed.size() + remote.size();
    if (changed.empty() && remote.empty()) return;

    // Destination fragment -> flat list of (gid, value) updates.
    struct Outgoing {
      VertexId gid;
      const Value* value;
    };
    std::unordered_map<FragmentId, std::vector<Outgoing>> by_dst;
    std::vector<LocalId> reset_list;
    for (LocalId lid : changed) {
      const bool to_owner =
          App::kScope != MessageScope::kToMirrors && frag.IsOuter(lid);
      const bool to_mirrors =
          App::kScope != MessageScope::kToOwner && frag.IsBorder(lid);
      const VertexId gid = frag.Gid(lid);
      if (to_owner) {
        by_dst[frag.OwnerOf(gid)].push_back({gid, &store.Get(lid)});
        if (App::kResetAfterFlush) reset_list.push_back(lid);
      }
      if (to_mirrors) {
        for (FragmentId dst : frag.MirrorFragments(lid)) {
          by_dst[dst].push_back({gid, &store.Get(lid)});
        }
      }
      if (options_.check_monotonicity && Agg::kMonotonic &&
          (to_owner || to_mirrors)) {
        if (!Agg::InOrder(store.Get(lid), prev_flushed_[i][lid])) {
          metrics_.monotonicity_violations++;
        }
        prev_flushed_[i][lid] = store.Get(lid);
      }
    }
    for (const auto& [gid, value] : remote) {
      by_dst[frag.OwnerOf(gid)].push_back({gid, &value});
    }

    // Deterministic destination order. Mirror refreshes have a single
    // writer (the owner), so they need no conflict resolution and travel
    // directly worker-to-worker; owner-bound values carry potential
    // conflicts and go through the coordinator's aggregate function.
    std::vector<FragmentId> dsts;
    dsts.reserve(by_dst.size());
    for (const auto& [dst, outgoing] : by_dst) dsts.push_back(dst);
    std::sort(dsts.begin(), dsts.end());

    for (FragmentId dst : dsts) {
      const std::vector<Outgoing>& outgoing = by_dst[dst];
      const bool direct = App::kScope == MessageScope::kToMirrors;
      Encoder enc;
      if (!direct) enc.WriteU32(dst);
      enc.WriteVarint(outgoing.size());
      for (const Outgoing& o : outgoing) {
        enc.WriteU32(o.gid);
        EncodeValue(enc, *o.value);
      }
      pending_sends_[i].push_back(
          PendingSend{direct ? RankOf(dst) : kCoordinatorRank,
                      direct ? outgoing.size() : 0, enc.TakeBuffer()});
    }
    for (LocalId lid : reset_list) {
      store.UntrackedRef(lid) = apps_[i].InitValue();
    }
  }

  /// Ships every staged buffer (runs between parallel phases); returns the
  /// number of directly-sent updates (coordinator-bound updates are counted
  /// when routed).
  uint64_t DispatchSends() {
    uint64_t direct = 0;
    for (FragmentId i = 0; i < fg_.num_fragments(); ++i) {
      for (PendingSend& p : pending_sends_[i]) {
        direct += p.direct_updates;
        Status s = world_.Send(RankOf(i), p.rank, kTagParamUpdate,
                               std::move(p.payload));
        GRAPE_CHECK(s.ok()) << s.ToString();
      }
      pending_sends_[i].clear();
    }
    return direct;
  }

  /// Coordinator step: collects all pending parameter updates, resolves
  /// conflicts per (destination, vertex) with the app's aggregate function,
  /// and forwards one consolidated buffer to each destination worker.
  /// Returns the number of routed updates (0 signals the fixed point).
  Result<uint64_t> CoordinatorRoute() {
    std::vector<RtMessage> inbox = world_.DrainAll(kCoordinatorRank);
    if (inbox.empty()) return uint64_t{0};
    // Mailbox order is FIFO per sender; sort by sender for a deterministic
    // merge independent of thread scheduling.
    std::stable_sort(inbox.begin(), inbox.end(),
                     [](const RtMessage& a, const RtMessage& b) {
                       return a.from < b.from;
                     });

    struct DstBatch {
      std::vector<ParamUpdate<Value>> updates;
      std::unordered_map<VertexId, size_t> index;
    };
    std::unordered_map<FragmentId, DstBatch> batches;

    for (const RtMessage& msg : inbox) {
      Decoder dec(msg.payload);
      uint32_t dst = 0;
      uint64_t count = 0;
      GRAPE_RETURN_NOT_OK(dec.ReadU32(&dst));
      GRAPE_RETURN_NOT_OK(dec.ReadVarint(&count));
      DstBatch& batch = batches[dst];
      for (uint64_t k = 0; k < count; ++k) {
        VertexId gid = 0;
        Value value{};
        GRAPE_RETURN_NOT_OK(dec.ReadU32(&gid));
        GRAPE_RETURN_NOT_OK(DecodeValue(dec, &value));
        auto [it, inserted] =
            batch.index.try_emplace(gid, batch.updates.size());
        if (inserted) {
          batch.updates.push_back(ParamUpdate<Value>{gid, std::move(value)});
        } else {
          Agg::Aggregate(batch.updates[it->second].value, value);
        }
      }
    }

    std::vector<FragmentId> dsts;
    for (const auto& [dst, batch] : batches) dsts.push_back(dst);
    std::sort(dsts.begin(), dsts.end());

    uint64_t routed = 0;
    for (FragmentId dst : dsts) {
      DstBatch& batch = batches[dst];
      Encoder enc;
      enc.WriteVarint(batch.updates.size());
      for (const ParamUpdate<Value>& u : batch.updates) {
        enc.WriteU32(u.gid);
        EncodeValue(enc, u.value);
      }
      routed += batch.updates.size();
      GRAPE_RETURN_NOT_OK(world_.Send(kCoordinatorRank, RankOf(dst),
                                      kTagParamUpdate, enc.TakeBuffer()));
    }
    return routed;
  }

  /// Applies routed updates to worker i's parameters via the aggregate
  /// function; vertices whose value actually changed form M_i, the update
  /// set handed to IncEval.
  Status ApplyMessages(FragmentId i) {
    updated_[i].clear();
    const Fragment& frag = fg_.fragments[i];
    ParamStore<Value>& store = stores_[i];
    while (auto msg = world_.TryRecv(RankOf(i), kTagParamUpdate)) {
      Decoder dec(msg->payload);
      uint64_t count = 0;
      GRAPE_RETURN_NOT_OK(dec.ReadVarint(&count));
      for (uint64_t k = 0; k < count; ++k) {
        VertexId gid = 0;
        Value value{};
        GRAPE_RETURN_NOT_OK(dec.ReadU32(&gid));
        GRAPE_RETURN_NOT_OK(DecodeValue(dec, &value));
        LocalId lid = frag.Lid(gid);
        if (lid == kInvalidLocal) {
          return Status::Internal("routed update for unknown vertex " +
                                  std::to_string(gid));
        }
        // No dirty-marking here: message application is not a local change
        // to re-broadcast; only IncEval's own writes are.
        if (Agg::Aggregate(store.UntrackedRef(lid), value)) {
          updated_[i].push_back(lid);
        }
      }
    }
    std::sort(updated_[i].begin(), updated_[i].end());
    updated_[i].erase(std::unique(updated_[i].begin(), updated_[i].end()),
                      updated_[i].end());
    return Status::OK();
  }

  const FragmentedGraph& fg_;
  EngineOptions options_;
  CommWorld world_;
  ThreadPool pool_;

  std::vector<App> apps_;                    // one instance per worker
  std::vector<ParamStore<Value>> stores_;    // x̄_i per fragment
  std::vector<std::vector<LocalId>> updated_;  // M_i per fragment
  struct PendingSend {
    uint32_t rank;
    uint64_t direct_updates;  // 0 for coordinator-bound buffers
    std::vector<uint8_t> payload;
  };

  std::vector<Status> phase_status_;
  std::vector<uint64_t> flush_dirty_;  // parameters changed at last flush
  std::vector<std::vector<PendingSend>> pending_sends_;
  std::vector<std::vector<Value>> prev_flushed_;  // monotonicity tracking
  EngineMetrics metrics_;
};

}  // namespace grape

#endif  // GRAPE_CORE_ENGINE_H_
