#ifndef GRAPE_CORE_PARALLEL_H_
#define GRAPE_CORE_PARALLEL_H_

// Opt-in intra-fragment parallelism under the GRAPE contract (ROADMAP
// item 2). A WorkerCore normally runs its plug-in's *sequential* PEval /
// IncEval on one thread; apps that additionally implement
// ParallelPEval/ParallelIncEval (the FrontierParallelApp concept in
// core/worker_core.h) can execute GBBS/Ligra-style vertex maps over a
// dense/sparse frontier instead, selected at run time by
// EngineOptions::compute_threads.
//
// The contract is strict determinism: a parallel run must be bit-identical
// — output bytes, message payloads, CommStats, superstep count — to the
// sequential oracle at every thread count. The helpers here are designed
// around that:
//
//  * AtomicMin/AtomicLoad give racing relaxations a unique fixed point
//    (min over a fixed set of candidate values is schedule-independent);
//  * Frontier tracks membership in a Bitset, so iteration order is always
//    ascending lid no matter which thread inserted a vertex;
//  * ForChunks cuts index ranges at multiples of 64, so chunk-local
//    non-atomic writes (ParamStore values and their changed-bitset words)
//    never share a word across threads.

#include <algorithm>
#include <atomic>
#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

#include "graph/types.h"
#include "util/bitset.h"
#include "util/thread_pool.h"

namespace grape {

/// Atomically lowers `slot` to `value` if value compares smaller; returns
/// whether the slot was lowered. Concurrent callers converge on the
/// minimum of everything offered — the schedule-independent primitive
/// behind parallel SSSP/CC relaxation.
template <typename T>
inline bool AtomicMin(T& slot, T value) {
  std::atomic_ref<T> ref(slot);
  T cur = ref.load(std::memory_order_relaxed);
  while (value < cur) {
    if (ref.compare_exchange_weak(cur, value, std::memory_order_relaxed)) {
      return true;
    }
  }
  return false;
}

/// Race-free read of a slot that concurrent AtomicMin writers may touch.
/// (std::atomic_ref<const T> only lands in C++26, hence the const_cast —
/// the load itself never writes.)
template <typename T>
inline T AtomicLoad(const T& slot) {
  std::atomic_ref<T> ref(const_cast<T&>(slot));
  return ref.load(std::memory_order_relaxed);
}

/// Execution handle a frontier-parallel app receives: how many ways to
/// split a loop and which pool to split it over. Disabled (sequential)
/// unless the engine plumbed compute_threads > 1 through
/// WorkerCore::EnableParallel. The chunk layout depends only on
/// (n, num_threads()), never on the pool size, and every helper here is
/// order-preserving — two runs with the same num_threads() (and, for the
/// ported apps, ANY num_threads()) produce bit-identical stores.
class ParallelContext {
 public:
  ParallelContext() = default;

  void Enable(ThreadPool* pool, uint32_t threads) {
    pool_ = pool;
    threads_ = threads;
  }

  bool enabled() const { return pool_ != nullptr && threads_ > 1; }
  uint32_t num_threads() const { return enabled() ? threads_ : 1; }
  ThreadPool* pool() const { return pool_; }

  /// Splits [0, n) into up to num_threads() contiguous chunks whose
  /// boundaries are multiples of 64 and runs fn(chunk_index, lo, hi) for
  /// each in parallel. 64-alignment means chunk-local writes to a Bitset
  /// (one word per 64 indices) or a value array never straddle a word two
  /// chunks share, so per-chunk bodies may use plain non-atomic stores.
  template <typename Fn>
  void ForChunks(size_t n, const Fn& fn) const {
    if (n == 0) return;
    const size_t threads = num_threads();
    // Round the chunk width up to a multiple of 64.
    const size_t width = ((n + threads - 1) / threads + 63) & ~size_t{63};
    const size_t chunks = (n + width - 1) / width;
    if (chunks <= 1 || !enabled()) {
      for (size_t c = 0; c < chunks; ++c) {
        const size_t lo = c * width;
        fn(c, lo, std::min(n, lo + width));
      }
      return;
    }
    pool_->ParallelFor(0, chunks, [&](size_t c) {
      const size_t lo = c * width;
      fn(c, lo, std::min(n, lo + width));
    });
  }

 private:
  ThreadPool* pool_ = nullptr;
  uint32_t threads_ = 0;
};

/// A vertex subset with Ligra-style dense/sparse switching. Membership
/// lives in a Bitset (thread-safe inserts via SetAtomic); iteration either
/// walks an extracted ascending lid list (sparse) or the bitset words
/// directly (dense), chosen by density at Finalize time. The switch is a
/// pure performance decision: both representations visit the same set, and
/// the ported apps' results do not depend on visit order.
class Frontier {
 public:
  /// Fraction of the vertex range above which iteration goes dense.
  static constexpr size_t kDenseDenominator = 20;

  void Reset(size_t n) {
    bits_.Resize(n);
    bits_.Clear();
    sparse_.clear();
    dense_ = false;
    size_ = 0;
  }

  /// Single-threaded insert (seeding before the parallel region).
  void Add(LocalId v) { bits_.Set(v); }

  /// Makes every vertex a member (PEval-style "start everywhere" rounds).
  void FillAll() { bits_.SetAll(); }

  /// Thread-safe insert; true when v was not already a member.
  bool AddAtomic(LocalId v) { return bits_.SetAtomic(v); }

  /// Counts members and picks the iteration representation. Call once per
  /// round, after all inserts and before ForAll.
  void Finalize() {
    size_ = bits_.Count();
    dense_ = size_ * kDenseDenominator >= bits_.size();
    sparse_.clear();
    if (!dense_ && size_ > 0) {
      sparse_.reserve(size_);
      bits_.ForEach(
          [this](size_t v) { sparse_.push_back(static_cast<LocalId>(v)); });
    }
  }

  bool empty() const { return size_ == 0; }
  size_t size() const { return size_; }
  bool dense() const { return dense_; }

  /// Calls fn(lid) for every member, in parallel chunks. fn runs
  /// concurrently across chunks and must tolerate any visit order.
  template <typename Fn>
  void ForAll(const ParallelContext& par, const Fn& fn) const {
    if (size_ == 0) return;
    if (!dense_) {
      par.ForChunks(sparse_.size(), [&](size_t, size_t lo, size_t hi) {
        for (size_t k = lo; k < hi; ++k) fn(sparse_[k]);
      });
      return;
    }
    par.ForChunks(bits_.size(), [&](size_t, size_t lo, size_t hi) {
      for (size_t v = lo; v < hi; ++v) {
        if (bits_.Test(v)) fn(static_cast<LocalId>(v));
      }
    });
  }

  void Swap(Frontier& other) {
    bits_.Swap(other.bits_);
    sparse_.swap(other.sparse_);
    std::swap(dense_, other.dense_);
    std::swap(size_, other.size_);
  }

 private:
  Bitset bits_;
  std::vector<LocalId> sparse_;
  bool dense_ = false;
  size_t size_ = 0;
};

}  // namespace grape

#endif  // GRAPE_CORE_PARALLEL_H_
