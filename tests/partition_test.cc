#include <algorithm>
#include <string>
#include <vector>

#include "graph/generators.h"
#include "gtest/gtest.h"
#include "partition/basic_partitioners.h"
#include "partition/metis_partitioner.h"
#include "partition/partitioner.h"
#include "partition/quality.h"
#include "partition/streaming_partitioners.h"

namespace grape {
namespace {

/// Property suite over every built-in strategy: full coverage, valid
/// fragment ids and sane balance on representative graphs.
class PartitionerPropertyTest
    : public ::testing::TestWithParam<std::string> {};

TEST_P(PartitionerPropertyTest, CoversAllVerticesOnPowerLaw) {
  RMatOptions opts;
  opts.scale = 10;
  opts.edge_factor = 8;
  opts.seed = 17;
  auto g = GenerateRMat(opts);
  ASSERT_TRUE(g.ok());

  auto partitioner = MakePartitioner(GetParam());
  ASSERT_TRUE(partitioner.ok());
  auto assignment = (*partitioner)->Partition(*g, 8);
  ASSERT_TRUE(assignment.ok());
  ASSERT_EQ(assignment->size(), g->num_vertices());
  std::vector<size_t> counts(8, 0);
  for (FragmentId f : *assignment) {
    ASSERT_LT(f, 8u);
    counts[f]++;
  }
  for (size_t c : counts) EXPECT_GT(c, 0u);
}

TEST_P(PartitionerPropertyTest, BalanceWithinTolerance) {
  auto g = GenerateGridRoad(40, 40, 23);
  ASSERT_TRUE(g.ok());
  auto partitioner = MakePartitioner(GetParam());
  ASSERT_TRUE(partitioner.ok());
  auto assignment = (*partitioner)->Partition(*g, 4);
  ASSERT_TRUE(assignment.ok());
  PartitionQuality q = EvaluatePartition(*g, *assignment, 4);
  // Even streaming heuristics should stay within 2x of perfect balance on a
  // uniform lattice.
  EXPECT_LT(q.vertex_balance, 2.0);
  EXPECT_EQ(q.num_fragments, 4u);
  EXPECT_GT(q.total_edges, 0u);
}

TEST_P(PartitionerPropertyTest, SingleFragmentHasNoCut) {
  auto g = GenerateErdosRenyi(200, 1000, true, 29);
  ASSERT_TRUE(g.ok());
  auto partitioner = MakePartitioner(GetParam());
  ASSERT_TRUE(partitioner.ok());
  auto assignment = (*partitioner)->Partition(*g, 1);
  ASSERT_TRUE(assignment.ok());
  PartitionQuality q = EvaluatePartition(*g, *assignment, 1);
  EXPECT_EQ(q.cut_edges, 0u);
  EXPECT_EQ(q.replication, 0u);
}

TEST_P(PartitionerPropertyTest, RejectsZeroFragments) {
  auto g = GeneratePath(4);
  ASSERT_TRUE(g.ok());
  auto partitioner = MakePartitioner(GetParam());
  ASSERT_TRUE(partitioner.ok());
  EXPECT_FALSE((*partitioner)->Partition(*g, 0).ok());
}

INSTANTIATE_TEST_SUITE_P(AllStrategies, PartitionerPropertyTest,
                         ::testing::ValuesIn(BuiltinPartitionerNames()),
                         [](const auto& info) { return info.param; });

TEST(PartitionerRegistryTest, UnknownNameFails) {
  EXPECT_FALSE(MakePartitioner("no-such-strategy").ok());
}

TEST(PartitionerRegistryTest, NamesMatchInstances) {
  for (const std::string& name : BuiltinPartitionerNames()) {
    auto p = MakePartitioner(name);
    ASSERT_TRUE(p.ok());
    EXPECT_EQ((*p)->name(), name);
  }
}

TEST(HashPartitionerTest, DeterministicAssignment) {
  auto g = GenerateErdosRenyi(100, 300, true, 31);
  ASSERT_TRUE(g.ok());
  HashPartitioner p;
  auto a = p.Partition(*g, 4);
  auto b = p.Partition(*g, 4);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(*a, *b);
}

TEST(RangePartitionerTest, ContiguousRanges) {
  auto g = GeneratePath(100);
  ASSERT_TRUE(g.ok());
  RangePartitioner p;
  auto a = p.Partition(*g, 4);
  ASSERT_TRUE(a.ok());
  // Assignment must be monotone non-decreasing over ids.
  for (size_t v = 1; v < a->size(); ++v) {
    EXPECT_GE((*a)[v], (*a)[v - 1]);
  }
  // A contiguous range over a path cuts at most n_fragments - 1 edges
  // (per direction).
  PartitionQuality q = EvaluatePartition(*g, *a, 4);
  EXPECT_LE(q.cut_edges, 6u);
}

TEST(Grid2DPartitionerTest, LowCutOnLattice) {
  auto g = GenerateGridRoad(32, 32, 37);
  ASSERT_TRUE(g.ok());
  Grid2DPartitioner grid;
  HashPartitioner hash;
  auto ga = grid.Partition(*g, 4);
  auto ha = hash.Partition(*g, 4);
  ASSERT_TRUE(ga.ok());
  ASSERT_TRUE(ha.ok());
  PartitionQuality gq = EvaluatePartition(*g, *ga, 4);
  PartitionQuality hq = EvaluatePartition(*g, *ha, 4);
  // Spatial tiling cuts a tiny fraction of a lattice; hashing cuts ~75%.
  EXPECT_LT(gq.cut_fraction, 0.2);
  EXPECT_LT(gq.cut_fraction, hq.cut_fraction / 3.0);
}

TEST(LdgPartitionerTest, BeatsHashOnCommunityGraph) {
  RMatOptions opts;
  opts.scale = 11;
  opts.edge_factor = 8;
  opts.seed = 41;
  auto g = GenerateRMat(opts);
  ASSERT_TRUE(g.ok());
  LdgPartitioner ldg;
  HashPartitioner hash;
  auto la = ldg.Partition(*g, 8);
  auto ha = hash.Partition(*g, 8);
  ASSERT_TRUE(la.ok());
  ASSERT_TRUE(ha.ok());
  PartitionQuality lq = EvaluatePartition(*g, *la, 8);
  PartitionQuality hq = EvaluatePartition(*g, *ha, 8);
  EXPECT_LT(lq.cut_edges, hq.cut_edges);
}

TEST(FennelPartitionerTest, RespectsBalanceSlack) {
  RMatOptions opts;
  opts.scale = 10;
  opts.seed = 43;
  auto g = GenerateRMat(opts);
  ASSERT_TRUE(g.ok());
  FennelPartitioner fennel(1.5, 1.1);
  auto a = fennel.Partition(*g, 8);
  ASSERT_TRUE(a.ok());
  PartitionQuality q = EvaluatePartition(*g, *a, 8);
  EXPECT_LT(q.vertex_balance, 1.25);
}

TEST(MetisPartitionerTest, LowCutOnGrid) {
  auto g = GenerateGridRoad(48, 48, 47);
  ASSERT_TRUE(g.ok());
  MetisPartitioner metis;
  HashPartitioner hash;
  auto ma = metis.Partition(*g, 8);
  auto ha = hash.Partition(*g, 8);
  ASSERT_TRUE(ma.ok());
  ASSERT_TRUE(ha.ok());
  PartitionQuality mq = EvaluatePartition(*g, *ma, 8);
  PartitionQuality hq = EvaluatePartition(*g, *ha, 8);
  // The multilevel partitioner must dramatically beat hashing on a lattice.
  EXPECT_LT(mq.cut_fraction, hq.cut_fraction / 4.0);
  EXPECT_LT(mq.vertex_balance, 1.4);
}

TEST(MetisPartitionerTest, BeatsLdgOnPowerLaw) {
  RMatOptions opts;
  opts.scale = 11;
  opts.edge_factor = 8;
  opts.seed = 53;
  auto g = GenerateRMat(opts);
  ASSERT_TRUE(g.ok());
  MetisPartitioner metis;
  LdgPartitioner ldg;
  HashPartitioner hash;
  auto ma = metis.Partition(*g, 8);
  auto la = ldg.Partition(*g, 8);
  auto ha = hash.Partition(*g, 8);
  ASSERT_TRUE(ma.ok());
  ASSERT_TRUE(la.ok());
  ASSERT_TRUE(ha.ok());
  PartitionQuality mq = EvaluatePartition(*g, *ma, 8);
  PartitionQuality lq = EvaluatePartition(*g, *la, 8);
  PartitionQuality hq = EvaluatePartition(*g, *ha, 8);
  // Power-law graphs are inherently hard to cut; offline multilevel must be
  // at least competitive with streaming greedy (within 10%) and both must
  // clearly beat locality-oblivious hashing.
  EXPECT_LE(mq.cut_edges, lq.cut_edges * 11 / 10);
  EXPECT_LT(mq.cut_edges, hq.cut_edges);
  EXPECT_LT(lq.cut_edges, hq.cut_edges);
}

TEST(MetisPartitionerTest, SingleFragmentShortCircuit) {
  auto g = GeneratePath(10);
  ASSERT_TRUE(g.ok());
  MetisPartitioner metis;
  auto a = metis.Partition(*g, 1);
  ASSERT_TRUE(a.ok());
  for (FragmentId f : *a) EXPECT_EQ(f, 0u);
}

TEST(QualityTest, HandDraftedPartition) {
  // 0-1-2  3-4-5 with one bridge 2-3, split in the middle.
  GraphBuilder builder(false);
  builder.AddEdge(0, 1);
  builder.AddEdge(1, 2);
  builder.AddEdge(2, 3);
  builder.AddEdge(3, 4);
  builder.AddEdge(4, 5);
  auto g = std::move(builder).Build();
  ASSERT_TRUE(g.ok());
  std::vector<FragmentId> assignment = {0, 0, 0, 1, 1, 1};
  PartitionQuality q = EvaluatePartition(*g, assignment, 2);
  EXPECT_EQ(q.cut_edges, 2u);  // both arc directions of the bridge
  EXPECT_EQ(q.replication, 2u);  // 2 mirrored at frag 1, 3 mirrored at 0
  EXPECT_DOUBLE_EQ(q.vertex_balance, 1.0);
}

}  // namespace
}  // namespace grape
