// Differential guard for the dense zero-hash message path: the golden rows
// below were captured from the seed (hash-map) flush/route/apply at commit
// ec95ff1, running the scenarios in tests/message_path_scenarios.h. The
// dense path must reproduce them exactly — same message count, same byte
// count (the wire format was redesigned to be byte-count-preserving), same
// superstep count, and bit-identical outputs. A mismatch means routing
// semantics changed, which is a correctness bug, not a perf trade-off.

#include <map>
#include <string>

#include "gtest/gtest.h"
#include "tests/message_path_scenarios.h"

namespace grape {
namespace {

struct GoldenRow {
  const char* name;
  uint64_t messages;
  uint64_t bytes;
  uint32_t supersteps;
  uint64_t output_hash;
};

// Captured from the seed engine; see file comment.
const GoldenRow kGolden[] = {
    {"sssp_grid_hash4", 447ull, 485123ull, 31u, 0xc5bc6ee7b40deb61ull},
    {"sssp_grid_metis4", 20ull, 4108ull, 4u, 0xc5bc6ee7b40deb61ull},
    {"sssp_rmat_hash5", 85ull, 16365ull, 6u, 0x34f7a4ad403aaa9ull},
    {"sssp_rmat_metis7", 92ull, 11636ull, 5u, 0x34f7a4ad403aaa9ull},
    {"cc_er_hash6", 51ull, 13699ull, 3u, 0xcd7c9ef3fc5a729full},
    {"cc_er_metis6", 57ull, 13141ull, 3u, 0xcd7c9ef3fc5a729full},
    {"pagerank_rmat_hash4", 372ull, 142428ull, 31u, 0x4414656a78cc731full},
    {"pagerank_rmat_metis5", 434ull, 113566ull, 31u, 0x4414656a78cc731full},
};

class MessagePathGoldenTest
    : public ::testing::TestWithParam<testing::MessagePathScenario> {};

TEST_P(MessagePathGoldenTest, MatchesSeedSemantics) {
  const auto& s = GetParam();
  const GoldenRow* golden = nullptr;
  for (const GoldenRow& row : kGolden) {
    if (std::string(row.name) == s.name) golden = &row;
  }
  ASSERT_NE(golden, nullptr) << "no golden row for scenario " << s.name;

  testing::MessagePathObservation obs =
      testing::RunMessagePathScenario(s.app, s.graph, s.strategy, s.workers);
  EXPECT_EQ(obs.messages, golden->messages) << s.name;
  EXPECT_EQ(obs.bytes, golden->bytes) << s.name;
  EXPECT_EQ(obs.supersteps, golden->supersteps) << s.name;
  EXPECT_EQ(obs.output_hash, golden->output_hash)
      << s.name << ": output is not bit-identical to the seed path";
}

// Determinism of the path itself: two runs of the same scenario must agree
// on every observable (the golden rows above are only meaningful if so).
TEST(MessagePathGoldenTest, RunsAreDeterministic) {
  for (const auto& s : testing::AllMessagePathScenarios()) {
    auto a = testing::RunMessagePathScenario(s.app, s.graph, s.strategy,
                                             s.workers);
    auto b = testing::RunMessagePathScenario(s.app, s.graph, s.strategy,
                                             s.workers);
    EXPECT_EQ(a.messages, b.messages) << s.name;
    EXPECT_EQ(a.bytes, b.bytes) << s.name;
    EXPECT_EQ(a.output_hash, b.output_hash) << s.name;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Matrix, MessagePathGoldenTest,
    ::testing::ValuesIn(testing::AllMessagePathScenarios()),
    [](const auto& info) { return std::string(info.param.name); });

}  // namespace
}  // namespace grape
