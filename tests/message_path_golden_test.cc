// Differential guard for the engine's message path: the golden rows below
// were captured from the seed (hash-map) flush/route/apply at commit
// ec95ff1, running the scenarios in tests/message_path_scenarios.h. Every
// (scenario, transport backend, compute placement) combination — inproc,
// socket, and tcp, each with local compute (PEval/IncEval inline in the
// engine process) AND remote compute (the phases execute inside each
// rank's worker host: endpoint processes on socket/tcp, in-thread workers
// on inproc) — must reproduce them exactly: same message count, same byte
// count (the wire format is byte-count preserving, the socket/tcp frame
// envelope equals the counted 16-byte header, and the worker protocol's
// control frames are invisible to the counters), same superstep count,
// and bit-identical outputs. A mismatch means routing semantics changed —
// or the substrate/placement leaked into the computation — which is a
// correctness bug, not a perf trade-off.

#include <chrono>
#include <map>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "gtest/gtest.h"
#include "rt/remote_worker.h"
#include "rt/transport.h"
#include "tests/message_path_scenarios.h"

namespace grape {
namespace {

struct GoldenRow {
  const char* name;
  uint64_t messages;
  uint64_t bytes;
  uint32_t supersteps;
  uint64_t output_hash;
};

// Captured from the seed engine; see file comment.
const GoldenRow kGolden[] = {
    {"sssp_grid_hash4", 447ull, 485123ull, 31u, 0xc5bc6ee7b40deb61ull},
    {"sssp_grid_metis4", 20ull, 4108ull, 4u, 0xc5bc6ee7b40deb61ull},
    {"sssp_rmat_hash5", 85ull, 16365ull, 6u, 0x34f7a4ad403aaa9ull},
    {"sssp_rmat_metis7", 92ull, 11636ull, 5u, 0x34f7a4ad403aaa9ull},
    {"cc_er_hash6", 51ull, 13699ull, 3u, 0xcd7c9ef3fc5a729full},
    {"cc_er_metis6", 57ull, 13141ull, 3u, 0xcd7c9ef3fc5a729full},
    {"pagerank_rmat_hash4", 372ull, 142428ull, 31u, 0x4414656a78cc731full},
    {"pagerank_rmat_metis5", 434ull, 113566ull, 31u, 0x4414656a78cc731full},
};

const std::vector<std::string>& ComputeModes() {
  static const std::vector<std::string> kModes = {"local", "remote"};
  return kModes;
}

/// One (scenario, backend, compute placement) cell of the matrix.
struct GoldenCase {
  testing::MessagePathScenario scenario;
  std::string transport;
  std::string compute;
};

std::vector<GoldenCase> AllGoldenCases() {
  std::vector<GoldenCase> cases;
  for (const auto& s : testing::AllMessagePathScenarios()) {
    for (const std::string& t : TransportNames()) {
      for (const std::string& c : ComputeModes()) {
        cases.push_back(GoldenCase{s, t, c});
      }
    }
  }
  return cases;
}

class MessagePathGoldenTest : public ::testing::TestWithParam<GoldenCase> {};

TEST_P(MessagePathGoldenTest, MatchesSeedSemantics) {
  const auto& s = GetParam().scenario;
  const std::string& transport = GetParam().transport;
  const std::string& compute = GetParam().compute;
  const GoldenRow* golden = nullptr;
  for (const GoldenRow& row : kGolden) {
    if (std::string(row.name) == s.name) golden = &row;
  }
  ASSERT_NE(golden, nullptr) << "no golden row for scenario " << s.name;

  testing::MessagePathObservation obs = testing::RunMessagePathScenario(
      s.app, s.graph, s.strategy, s.workers, transport, compute);
  EXPECT_EQ(obs.messages, golden->messages)
      << s.name << " on " << transport << "/" << compute;
  EXPECT_EQ(obs.bytes, golden->bytes)
      << s.name << " on " << transport << "/" << compute;
  EXPECT_EQ(obs.supersteps, golden->supersteps)
      << s.name << " on " << transport << "/" << compute;
  EXPECT_EQ(obs.output_hash, golden->output_hash)
      << s.name << " on " << transport << "/" << compute
      << ": output is not bit-identical to the seed path";
}

// Determinism of the path itself: two runs of the same scenario must agree
// on every observable (the golden rows above are only meaningful if so).
// Runs once per backend, so socket-transport scheduling nondeterminism
// (poll order across senders) is shown not to leak into observables.
TEST(MessagePathGoldenTest, RunsAreDeterministic) {
  for (const std::string& transport : TransportNames()) {
    for (const auto& s : testing::AllMessagePathScenarios()) {
      auto a = testing::RunMessagePathScenario(s.app, s.graph, s.strategy,
                                               s.workers, transport);
      auto b = testing::RunMessagePathScenario(s.app, s.graph, s.strategy,
                                               s.workers, transport);
      EXPECT_EQ(a.messages, b.messages) << s.name << " on " << transport;
      EXPECT_EQ(a.bytes, b.bytes) << s.name << " on " << transport;
      EXPECT_EQ(a.output_hash, b.output_hash) << s.name << " on " << transport;
    }
  }
}

// Remote-compute determinism: worker acks and data frames arrive in
// scheduling-dependent order; none of it may leak into observables.
TEST(MessagePathGoldenTest, RemoteRunsAreDeterministic) {
  for (const std::string& transport : TransportNames()) {
    for (const auto& s : testing::AllMessagePathScenarios()) {
      auto a = testing::RunMessagePathScenario(s.app, s.graph, s.strategy,
                                               s.workers, transport, "remote");
      auto b = testing::RunMessagePathScenario(s.app, s.graph, s.strategy,
                                               s.workers, transport, "remote");
      EXPECT_EQ(a.messages, b.messages)
          << s.name << " on " << transport << "/remote";
      EXPECT_EQ(a.bytes, b.bytes) << s.name << " on " << transport
                                  << "/remote";
      EXPECT_EQ(a.output_hash, b.output_hash)
          << s.name << " on " << transport << "/remote";
    }
  }
}

// Worlds are multi-query: local compute has always supported repeated
// Run() calls over one transport, and remote compute must too — worker
// hosts reload on each run's kTagWkLoad and a retired in-thread worker
// must not leave frames behind that poison the next run.
TEST(MessagePathGoldenTest, RemoteWorldsAreReusableAcrossRuns) {
  for (const std::string& transport : TransportNames()) {
    RegisterBuiltinWorkerApps();
    auto world = MakeTransport(transport, 5);
    ASSERT_TRUE(world.ok()) << world.status();
    Graph g = testing::ScenarioGraph("grid");
    FragmentedGraph fg = testing::ScenarioFragments(g, "hash", 4);
    EngineOptions options;
    options.transport = world->get();
    options.remote_app = "sssp";
    GrapeEngine<SsspApp> engine(fg, SsspApp{}, options);
    auto first = engine.Run(SsspQuery{3});
    ASSERT_TRUE(first.ok()) << transport << ": " << first.status();
    auto second = engine.Run(SsspQuery{3});
    ASSERT_TRUE(second.ok())
        << transport << ": second run over the same world: "
        << second.status();
    EXPECT_EQ(first->dist, second->dist)
        << transport << ": reruns over one world diverged";
  }
}

// SSSP whose PEval stalls long past the impatient engine's phase budget:
// the deterministic way to abandon a remote run AFTER the worker hosts
// loaded successfully.
struct StallingPEvalSssp : SsspApp {
  void PEval(const SsspQuery& query, const Fragment& frag,
             ParamStore<double>& params) {
    std::this_thread::sleep_for(std::chrono::milliseconds(300));
    SsspApp::PEval(query, frag, params);
  }
};

// A failed remote run must not poison the world: endpoints that already
// loaded their worker keep it when the engine gives up (no shutdown is
// sent on error paths), and the next run's kTagWkLoad must be honored as
// an implicit reload — not rejected as a duplicate.
TEST(MessagePathGoldenTest, FailedRemoteRunDoesNotPoisonTheWorld) {
  RegisterBuiltinWorkerApps();
  RegisterRemoteWorker<StallingPEvalSssp>("stall_sssp");
  for (const std::string& transport : TransportNames()) {
    auto world = MakeTransport(transport, 5);
    ASSERT_TRUE(world.ok()) << world.status();
    Graph g = testing::ScenarioGraph("grid");
    FragmentedGraph fg = testing::ScenarioFragments(g, "hash", 4);

    // Run 1: loads complete (they're fast), then every worker stalls in
    // PEval far past the 50ms phase budget — the engine abandons the run
    // with the workers loaded and mid-phase.
    EngineOptions impatient;
    impatient.transport = world->get();
    impatient.remote_app = "stall_sssp";
    impatient.remote_timeout_ms = 50;
    GrapeEngine<StallingPEvalSssp> doomed(fg, StallingPEvalSssp{},
                                          impatient);
    auto failed = doomed.Run(SsspQuery{3});
    ASSERT_FALSE(failed.ok()) << transport << ": stalled run succeeded?";
    EXPECT_TRUE(failed.status().IsUnavailable()) << failed.status();

    // Run 2 on the SAME world must recover and produce the right answer.
    EngineOptions options;
    options.transport = world->get();
    options.remote_app = "sssp";
    GrapeEngine<SsspApp> engine(fg, SsspApp{}, options);
    auto out = engine.Run(SsspQuery{3});
    ASSERT_TRUE(out.ok()) << transport
                          << ": world poisoned by a failed run: "
                          << out.status();

    GrapeEngine<SsspApp> local(fg, SsspApp{}, EngineOptions{});
    auto expected = local.Run(SsspQuery{3});
    ASSERT_TRUE(expected.ok());
    EXPECT_EQ(out->dist, expected->dist) << transport;
  }
}

// The full differential in one place: for every scenario, run all three
// backends × both compute placements side by side and compare the full
// observation structs pairwise — output hash AND CommStats (messages,
// bytes, supersteps). The matrix above already pins each cell to the seed
// goldens; this test additionally proves the cells agree with EACH OTHER,
// so it keeps discriminating even for scenarios added without golden
// rows. This is the merge gate remote compute rides in on: the substrate
// may change how bytes travel, and the placement may change where
// PEval/IncEval execute — never what is computed or counted.
TEST(MessagePathGoldenTest, BackendsAndPlacementsAgreeBitForBit) {
  ASSERT_GE(TransportNames().size(), 3u);
  for (const auto& s : testing::AllMessagePathScenarios()) {
    std::vector<std::pair<std::string, testing::MessagePathObservation>> runs;
    for (const std::string& transport : TransportNames()) {
      for (const std::string& compute : ComputeModes()) {
        runs.emplace_back(transport + "/" + compute,
                          testing::RunMessagePathScenario(
                              s.app, s.graph, s.strategy, s.workers,
                              transport, compute));
      }
    }
    const auto& base = runs.front();
    for (size_t i = 1; i < runs.size(); ++i) {
      EXPECT_EQ(runs[i].second.messages, base.second.messages)
          << s.name << ": " << runs[i].first << " vs " << base.first;
      EXPECT_EQ(runs[i].second.bytes, base.second.bytes)
          << s.name << ": " << runs[i].first << " vs " << base.first;
      EXPECT_EQ(runs[i].second.supersteps, base.second.supersteps)
          << s.name << ": " << runs[i].first << " vs " << base.first;
      EXPECT_EQ(runs[i].second.output_hash, base.second.output_hash)
          << s.name << ": " << runs[i].first << " computed different bits "
          << "than " << base.first;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Matrix, MessagePathGoldenTest,
                         ::testing::ValuesIn(AllGoldenCases()),
                         [](const auto& info) {
                           return std::string(info.param.scenario.name) + "_" +
                                  info.param.transport + "_" +
                                  info.param.compute;
                         });

}  // namespace
}  // namespace grape
