// Differential guard for the engine's message path: the golden rows below
// were captured from the seed (hash-map) flush/route/apply at commit
// ec95ff1, running the scenarios in tests/message_path_scenarios.h. Every
// (scenario, transport backend) combination — inproc, socket, and tcp —
// must reproduce them exactly: same message count, same byte count (the
// wire format is byte-count preserving and the socket/tcp frame envelope
// equals the counted 16-byte header), same superstep count, and
// bit-identical outputs. A mismatch
// means routing semantics changed — or the substrate leaked into the
// computation — which is a correctness bug, not a perf trade-off.

#include <map>
#include <string>
#include <utility>
#include <vector>

#include "gtest/gtest.h"
#include "rt/transport.h"
#include "tests/message_path_scenarios.h"

namespace grape {
namespace {

struct GoldenRow {
  const char* name;
  uint64_t messages;
  uint64_t bytes;
  uint32_t supersteps;
  uint64_t output_hash;
};

// Captured from the seed engine; see file comment.
const GoldenRow kGolden[] = {
    {"sssp_grid_hash4", 447ull, 485123ull, 31u, 0xc5bc6ee7b40deb61ull},
    {"sssp_grid_metis4", 20ull, 4108ull, 4u, 0xc5bc6ee7b40deb61ull},
    {"sssp_rmat_hash5", 85ull, 16365ull, 6u, 0x34f7a4ad403aaa9ull},
    {"sssp_rmat_metis7", 92ull, 11636ull, 5u, 0x34f7a4ad403aaa9ull},
    {"cc_er_hash6", 51ull, 13699ull, 3u, 0xcd7c9ef3fc5a729full},
    {"cc_er_metis6", 57ull, 13141ull, 3u, 0xcd7c9ef3fc5a729full},
    {"pagerank_rmat_hash4", 372ull, 142428ull, 31u, 0x4414656a78cc731full},
    {"pagerank_rmat_metis5", 434ull, 113566ull, 31u, 0x4414656a78cc731full},
};

/// One (scenario, backend) cell of the differential matrix.
struct GoldenCase {
  testing::MessagePathScenario scenario;
  std::string transport;
};

std::vector<GoldenCase> AllGoldenCases() {
  std::vector<GoldenCase> cases;
  for (const auto& s : testing::AllMessagePathScenarios()) {
    for (const std::string& t : TransportNames()) {
      cases.push_back(GoldenCase{s, t});
    }
  }
  return cases;
}

class MessagePathGoldenTest : public ::testing::TestWithParam<GoldenCase> {};

TEST_P(MessagePathGoldenTest, MatchesSeedSemantics) {
  const auto& s = GetParam().scenario;
  const std::string& transport = GetParam().transport;
  const GoldenRow* golden = nullptr;
  for (const GoldenRow& row : kGolden) {
    if (std::string(row.name) == s.name) golden = &row;
  }
  ASSERT_NE(golden, nullptr) << "no golden row for scenario " << s.name;

  testing::MessagePathObservation obs = testing::RunMessagePathScenario(
      s.app, s.graph, s.strategy, s.workers, transport);
  EXPECT_EQ(obs.messages, golden->messages) << s.name << " on " << transport;
  EXPECT_EQ(obs.bytes, golden->bytes) << s.name << " on " << transport;
  EXPECT_EQ(obs.supersteps, golden->supersteps)
      << s.name << " on " << transport;
  EXPECT_EQ(obs.output_hash, golden->output_hash)
      << s.name << " on " << transport
      << ": output is not bit-identical to the seed path";
}

// Determinism of the path itself: two runs of the same scenario must agree
// on every observable (the golden rows above are only meaningful if so).
// Runs once per backend, so socket-transport scheduling nondeterminism
// (poll order across senders) is shown not to leak into observables.
TEST(MessagePathGoldenTest, RunsAreDeterministic) {
  for (const std::string& transport : TransportNames()) {
    for (const auto& s : testing::AllMessagePathScenarios()) {
      auto a = testing::RunMessagePathScenario(s.app, s.graph, s.strategy,
                                               s.workers, transport);
      auto b = testing::RunMessagePathScenario(s.app, s.graph, s.strategy,
                                               s.workers, transport);
      EXPECT_EQ(a.messages, b.messages) << s.name << " on " << transport;
      EXPECT_EQ(a.bytes, b.bytes) << s.name << " on " << transport;
      EXPECT_EQ(a.output_hash, b.output_hash) << s.name << " on " << transport;
    }
  }
}

// The three-backend differential in one place: for every scenario, run
// inproc, socket, and tcp side by side and compare the full observation
// structs pairwise — output hash AND CommStats (messages, bytes,
// supersteps). The matrix above already pins each cell to the seed
// goldens; this test additionally proves the backends agree with EACH
// OTHER, so it keeps discriminating even for scenarios added without
// golden rows. This is the merge gate the tcp backend rides in on: the
// substrate may change how bytes travel, never what is computed or
// counted.
TEST(MessagePathGoldenTest, ThreeBackendsAgreeBitForBit) {
  ASSERT_GE(TransportNames().size(), 3u);
  for (const auto& s : testing::AllMessagePathScenarios()) {
    std::vector<std::pair<std::string, testing::MessagePathObservation>> runs;
    for (const std::string& transport : TransportNames()) {
      runs.emplace_back(transport,
                        testing::RunMessagePathScenario(
                            s.app, s.graph, s.strategy, s.workers, transport));
    }
    const auto& base = runs.front();
    for (size_t i = 1; i < runs.size(); ++i) {
      EXPECT_EQ(runs[i].second.messages, base.second.messages)
          << s.name << ": " << runs[i].first << " vs " << base.first;
      EXPECT_EQ(runs[i].second.bytes, base.second.bytes)
          << s.name << ": " << runs[i].first << " vs " << base.first;
      EXPECT_EQ(runs[i].second.supersteps, base.second.supersteps)
          << s.name << ": " << runs[i].first << " vs " << base.first;
      EXPECT_EQ(runs[i].second.output_hash, base.second.output_hash)
          << s.name << ": " << runs[i].first << " computed different bits "
          << "than " << base.first;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Matrix, MessagePathGoldenTest,
                         ::testing::ValuesIn(AllGoldenCases()),
                         [](const auto& info) {
                           return std::string(info.param.scenario.name) + "_" +
                                  info.param.transport;
                         });

}  // namespace
}  // namespace grape
