#include <string>
#include <tuple>

#include "apps/seq/seq_algorithms.h"
#include "apps/sssp.h"
#include "core/engine.h"
#include "graph/generators.h"
#include "gtest/gtest.h"
#include "tests/test_util.h"

namespace grape {
namespace {

Graph SsspTestGraph(const std::string& kind) {
  if (kind == "grid") {
    auto g = GenerateGridRoad(20, 25, 101);
    EXPECT_TRUE(g.ok());
    return std::move(g).value();
  }
  if (kind == "rmat") {
    RMatOptions opts;
    opts.scale = 9;
    opts.edge_factor = 6;
    opts.seed = 103;
    auto g = GenerateRMat(opts);
    EXPECT_TRUE(g.ok());
    return std::move(g).value();
  }
  if (kind == "disconnected") {
    // Two ER islands with no bridge.
    GraphBuilder builder(true);
    auto a = GenerateErdosRenyi(60, 200, true, 107);
    EXPECT_TRUE(a.ok());
    for (const Edge& e : a->ToEdgeList()) builder.AddEdge(e);
    auto b = GenerateErdosRenyi(40, 120, true, 109);
    EXPECT_TRUE(b.ok());
    for (const Edge& e : b->ToEdgeList()) {
      builder.AddEdge(e.src + 60, e.dst + 60, e.weight, e.label);
    }
    auto g = std::move(builder).Build();
    EXPECT_TRUE(g.ok());
    return std::move(g).value();
  }
  auto g = GenerateRandomTree(150, 113, /*directed=*/false);
  EXPECT_TRUE(g.ok());
  return std::move(g).value();
}

using SsspParam = std::tuple<std::string, std::string, FragmentId>;

class SsspMatrixTest : public ::testing::TestWithParam<SsspParam> {};

TEST_P(SsspMatrixTest, MatchesSequentialDijkstra) {
  const auto& [kind, strategy, nfrag] = GetParam();
  Graph g = SsspTestGraph(kind);
  FragmentedGraph fg = testing::MakeFragments(g, strategy, nfrag);

  std::vector<double> expected = SeqDijkstra(g, 0);

  GrapeEngine<SsspApp> engine(fg, SsspApp{});
  auto out = engine.Run(SsspQuery{0});
  ASSERT_TRUE(out.ok()) << out.status();
  ASSERT_EQ(out->dist.size(), g.num_vertices());
  for (VertexId v = 0; v < g.num_vertices(); ++v) {
    EXPECT_DOUBLE_EQ(out->dist[v], expected[v]) << "vertex " << v;
  }
  EXPECT_GE(engine.metrics().supersteps, 1u);
}

INSTANTIATE_TEST_SUITE_P(
    Matrix, SsspMatrixTest,
    ::testing::Combine(::testing::Values("grid", "rmat", "disconnected",
                                         "tree"),
                       ::testing::Values("hash", "metis", "ldg", "grid2d"),
                       ::testing::Values(FragmentId{1}, FragmentId{4},
                                         FragmentId{9})),
    [](const auto& info) {
      return std::get<0>(info.param) + "_" + std::get<1>(info.param) + "_" +
             std::to_string(std::get<2>(info.param));
    });

TEST(SsspTest, NonZeroSource) {
  Graph g = SsspTestGraph("grid");
  FragmentedGraph fg = testing::MakeFragments(g, "hash", 4);
  const VertexId source = 123;
  std::vector<double> expected = SeqDijkstra(g, source);
  GrapeEngine<SsspApp> engine(fg, SsspApp{});
  auto out = engine.Run(SsspQuery{source});
  ASSERT_TRUE(out.ok());
  for (VertexId v = 0; v < g.num_vertices(); ++v) {
    EXPECT_DOUBLE_EQ(out->dist[v], expected[v]);
  }
}

TEST(SsspTest, RecomputeAblationAgreesWithIncremental) {
  Graph g = SsspTestGraph("rmat");
  FragmentedGraph fg = testing::MakeFragments(g, "hash", 4);

  GrapeEngine<SsspApp> inc(fg, SsspApp{});
  auto inc_out = inc.Run(SsspQuery{0});
  ASSERT_TRUE(inc_out.ok());

  EngineOptions opts;
  opts.incremental = false;
  GrapeEngine<SsspApp> full(fg, SsspApp{}, opts);
  auto full_out = full.Run(SsspQuery{0});
  ASSERT_TRUE(full_out.ok());

  ASSERT_EQ(inc_out->dist.size(), full_out->dist.size());
  for (size_t v = 0; v < inc_out->dist.size(); ++v) {
    EXPECT_DOUBLE_EQ(inc_out->dist[v], full_out->dist[v]);
  }
}

TEST(SsspTest, MonotonicityHolds) {
  Graph g = SsspTestGraph("grid");
  FragmentedGraph fg = testing::MakeFragments(g, "metis", 4);
  EngineOptions opts;
  opts.check_monotonicity = true;
  GrapeEngine<SsspApp> engine(fg, SsspApp{}, opts);
  auto out = engine.Run(SsspQuery{0});
  ASSERT_TRUE(out.ok());
  // The Assurance Theorem's side condition: parameters only decrease.
  EXPECT_EQ(engine.metrics().monotonicity_violations, 0u);
}

TEST(SsspTest, QueryReuseOnSameEngine) {
  // The demo's "play" mode issues several queries against one deployment.
  Graph g = SsspTestGraph("tree");
  FragmentedGraph fg = testing::MakeFragments(g, "hash", 4);
  GrapeEngine<SsspApp> engine(fg, SsspApp{});
  for (VertexId source : {0u, 7u, 149u}) {
    std::vector<double> expected = SeqDijkstra(g, source);
    auto out = engine.Run(SsspQuery{source});
    ASSERT_TRUE(out.ok());
    for (VertexId v = 0; v < g.num_vertices(); ++v) {
      EXPECT_DOUBLE_EQ(out->dist[v], expected[v]);
    }
  }
}

TEST(SsspTest, CommunicationIsBorderBounded) {
  // Messages carry only border-vertex parameters: on a grid with a spatial
  // partition, bytes shipped must be far below what per-edge messaging
  // would need.
  auto g = GenerateGridRoad(40, 40, 127);
  ASSERT_TRUE(g.ok());
  FragmentedGraph fg = testing::MakeFragments(*g, "grid2d", 4);
  GrapeEngine<SsspApp> engine(fg, SsspApp{});
  auto out = engine.Run(SsspQuery{0});
  ASSERT_TRUE(out.ok());
  // Upper bound: every vertex re-shipped once per superstep would be
  // n * supersteps * entry size; border-bounded traffic is much smaller.
  uint64_t loose_bound = static_cast<uint64_t>(g->num_vertices()) *
                         engine.metrics().supersteps * 12;
  EXPECT_LT(engine.metrics().bytes, loose_bound / 4);
}

TEST(SsspTest, MetricsAreConsistent) {
  Graph g = SsspTestGraph("rmat");
  FragmentedGraph fg = testing::MakeFragments(g, "hash", 4);
  GrapeEngine<SsspApp> engine(fg, SsspApp{});
  ASSERT_TRUE(engine.Run(SsspQuery{0}).ok());
  const EngineMetrics& m = engine.metrics();
  EXPECT_EQ(m.rounds.size(), m.supersteps);
  uint64_t sum_msgs = 0;
  for (const RoundMetrics& r : m.rounds) sum_msgs += r.messages;
  EXPECT_EQ(sum_msgs, m.messages);
  EXPECT_GT(m.total_seconds, 0.0);
}

TEST(SeqIncrementalSsspTest, PropagatesDecreases) {
  auto g = GenerateGridRoad(10, 10, 131);
  ASSERT_TRUE(g.ok());
  std::vector<double> dist = SeqDijkstra(*g, 0);
  // Lower the distance of vertex 55 artificially and propagate.
  std::vector<double> hacked = dist;
  hacked[55] = 0.0;
  SeqIncrementalSssp(*g, hacked, {55});
  // Result must equal a two-source shortest path.
  for (VertexId v = 0; v < g->num_vertices(); ++v) {
    std::vector<double> from55 = SeqDijkstra(*g, 55);
    EXPECT_DOUBLE_EQ(hacked[v], std::min(dist[v], from55[v]));
  }
}

}  // namespace
}  // namespace grape
