#include <string>
#include <tuple>

#include "apps/seq/seq_algorithms.h"
#include "apps/triangle.h"
#include "core/engine.h"
#include "graph/generators.h"
#include "gtest/gtest.h"
#include "partition/advisor.h"
#include "partition/label_index.h"
#include "tests/test_util.h"

namespace grape {
namespace {

TEST(SeqTriangleTest, KnownCounts) {
  // A 4-clique (undirected) has C(4,3) = 4 triangles.
  auto k4 = GenerateComplete(4, /*directed=*/false);
  ASSERT_TRUE(k4.ok());
  EXPECT_EQ(SeqTriangleCount(*k4), 4u);

  // A cycle of length 5 has none.
  auto c5 = GenerateCycle(5, /*directed=*/true);
  ASSERT_TRUE(c5.ok());
  EXPECT_EQ(SeqTriangleCount(*c5), 0u);

  // Directed triangle counts once in the undirected view.
  GraphBuilder builder(true);
  builder.AddEdge(0, 1);
  builder.AddEdge(1, 2);
  builder.AddEdge(0, 2);
  auto tri = std::move(builder).Build();
  ASSERT_TRUE(tri.ok());
  EXPECT_EQ(SeqTriangleCount(*tri), 1u);
}

using TriangleParam = std::tuple<std::string, FragmentId>;

class TriangleMatrixTest : public ::testing::TestWithParam<TriangleParam> {};

TEST_P(TriangleMatrixTest, MatchesSequentialCount) {
  const auto& [strategy, nfrag] = GetParam();
  auto g = GenerateErdosRenyi(300, 2500, /*directed=*/false, 901);
  ASSERT_TRUE(g.ok());
  uint64_t expected = SeqTriangleCount(*g);
  ASSERT_GT(expected, 0u);

  FragmentedGraph fg = testing::MakeFragments(*g, strategy, nfrag);
  GrapeEngine<TriangleApp> engine(fg, TriangleApp{});
  auto out = engine.Run(TriangleQuery{});
  ASSERT_TRUE(out.ok()) << out.status();
  EXPECT_EQ(out->triangles, expected);
}

INSTANTIATE_TEST_SUITE_P(
    Matrix, TriangleMatrixTest,
    ::testing::Combine(::testing::Values("hash", "metis", "ldg"),
                       ::testing::Values(FragmentId{1}, FragmentId{4},
                                         FragmentId{7})),
    [](const auto& info) {
      return std::get<0>(info.param) + "_" +
             std::to_string(std::get<1>(info.param));
    });

TEST(TriangleTest, DirectedGraphUsesUndirectedView) {
  RMatOptions opts;
  opts.scale = 8;
  opts.edge_factor = 8;
  opts.seed = 911;
  auto g = GenerateRMat(opts);
  ASSERT_TRUE(g.ok());
  uint64_t expected = SeqTriangleCount(*g);
  FragmentedGraph fg = testing::MakeFragments(*g, "hash", 5);
  GrapeEngine<TriangleApp> engine(fg, TriangleApp{});
  auto out = engine.Run(TriangleQuery{});
  ASSERT_TRUE(out.ok());
  EXPECT_EQ(out->triangles, expected);
}

TEST(TriangleTest, ConvergesInFewSupersteps) {
  auto g = GenerateErdosRenyi(200, 1500, false, 919);
  ASSERT_TRUE(g.ok());
  FragmentedGraph fg = testing::MakeFragments(*g, "hash", 6);
  GrapeEngine<TriangleApp> engine(fg, TriangleApp{});
  ASSERT_TRUE(engine.Run(TriangleQuery{}).ok());
  EXPECT_LE(engine.metrics().supersteps, 3u);
}

TEST(LabelIndexTest, IndexesInnerVerticesByLabel) {
  LabeledGraphOptions opts;
  opts.scale = 7;
  opts.num_vertex_labels = 4;
  opts.seed = 929;
  auto g = GenerateLabeledGraph(opts);
  ASSERT_TRUE(g.ok());
  FragmentedGraph fg = testing::MakeFragments(*g, "hash", 3);
  for (const Fragment& frag : fg.fragments) {
    LabelIndex index(frag);
    size_t indexed = 0;
    for (Label label = 0; label < 4; ++label) {
      for (LocalId lid : index.InnerWithLabel(label)) {
        EXPECT_TRUE(frag.IsInner(lid));
        EXPECT_EQ(frag.vertex_label(lid), label);
        ++indexed;
      }
    }
    EXPECT_EQ(indexed, frag.num_inner());
    EXPECT_TRUE(index.InnerWithLabel(999).empty());
  }
}

TEST(AdvisorTest, ProfileOfLattice) {
  auto g = GenerateGridRoad(64, 64, 937);
  ASSERT_TRUE(g.ok());
  GraphProfile p = ProfileGraph(*g);
  EXPECT_EQ(p.num_vertices, 4096u);
  EXPECT_LT(p.degree_cv, 0.5);
  EXPECT_GT(p.id_locality, 0.8);
  EXPECT_EQ(AdvisePartitioner(p).strategy, "grid2d");
}

TEST(AdvisorTest, PowerLawGetsStreaming) {
  RMatOptions opts;
  opts.scale = 13;
  opts.edge_factor = 8;
  opts.seed = 941;
  auto g = GenerateRMat(opts);
  ASSERT_TRUE(g.ok());
  GraphProfile p = ProfileGraph(*g);
  EXPECT_GT(p.degree_cv, 1.5);
  EXPECT_EQ(AdvisePartitioner(p).strategy, "ldg");
}

TEST(AdvisorTest, CommunityGraphGetsMetis) {
  CommunityGraphOptions opts;
  opts.num_vertices = 1 << 13;
  opts.seed = 947;
  auto g = GenerateCommunityGraph(opts);
  ASSERT_TRUE(g.ok());
  PartitionAdvice advice = AdvisePartitioner(*g);
  EXPECT_EQ(advice.strategy, "metis");
  EXPECT_FALSE(advice.rationale.empty());
}

TEST(AdvisorTest, SmallGraphGetsHash) {
  auto g = GeneratePath(100);
  ASSERT_TRUE(g.ok());
  EXPECT_EQ(AdvisePartitioner(*g).strategy, "hash");
}

TEST(CommunityGraphTest, StructureAndDeterminism) {
  CommunityGraphOptions opts;
  opts.num_vertices = 4096;
  opts.avg_degree = 10;
  opts.num_communities = 16;
  opts.intra_fraction = 0.9;
  opts.seed = 953;
  auto a = GenerateCommunityGraph(opts);
  auto b = GenerateCommunityGraph(opts);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(a->num_vertices(), 4096u);
  EXPECT_GT(a->num_edges(), 4096u * 4);
  auto ea = a->ToEdgeList();
  auto eb = b->ToEdgeList();
  ASSERT_EQ(ea.size(), eb.size());
  for (size_t i = 0; i < ea.size(); ++i) EXPECT_EQ(ea[i], eb[i]);
}

TEST(CommunityGraphTest, Validation) {
  CommunityGraphOptions opts;
  opts.num_vertices = 1;
  EXPECT_FALSE(GenerateCommunityGraph(opts).ok());
  opts.num_vertices = 100;
  opts.intra_fraction = 1.5;
  EXPECT_FALSE(GenerateCommunityGraph(opts).ok());
}

TEST(VoronoiPartitionerTest, CoversAndBalances) {
  auto g = GenerateGridRoad(40, 40, 967);
  ASSERT_TRUE(g.ok());
  auto p = MakePartitioner("voronoi");
  ASSERT_TRUE(p.ok());
  auto assignment = (*p)->Partition(*g, 8);
  ASSERT_TRUE(assignment.ok());
  std::vector<size_t> counts(8, 0);
  for (FragmentId f : *assignment) {
    ASSERT_LT(f, 8u);
    counts[f]++;
  }
  for (size_t c : counts) EXPECT_GT(c, 0u);
  // Greedy cell packing keeps balance within 2x.
  size_t max_c = *std::max_element(counts.begin(), counts.end());
  EXPECT_LT(max_c, 2u * g->num_vertices() / 8);
}

TEST(VoronoiPartitionerTest, CoversDisconnectedGraphs) {
  GraphBuilder builder(false);
  builder.AddEdge(0, 1);
  builder.AddEdge(2, 3);
  builder.AddVertex(10);  // isolated
  auto g = std::move(builder).Build();
  ASSERT_TRUE(g.ok());
  auto p = MakePartitioner("voronoi");
  auto assignment = (*p)->Partition(*g, 2);
  ASSERT_TRUE(assignment.ok());
  EXPECT_EQ(assignment->size(), g->num_vertices());
}

}  // namespace
}  // namespace grape
